/**
 * @file
 * A cloud node's day: the user-mode core planner (section 3) admits
 * core-gapped CVMs onto a 16-core machine, placing their dedicated
 * cores NUMA-aware; a VM that does not fit is refused (admission
 * control, invariant I7); terminated VMs release their cores for the
 * next tenant (hotplug round trip, invariant I6).
 *
 *   $ ./examples/cloud_node
 */

#include <cstdio>
#include <memory>

#include "core/planner.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
using namespace cg::workloads;
using cg::core::CorePlanner;
using sim::Proc;
using sim::msec;

namespace {

Proc<void>
tenantWork(Testbed& bed, guest::VCpu& v, sim::Tick amount)
{
    co_await bed.started().wait();
    co_await sim::Compute{amount};
    co_await v.shutdown();
}

Proc<void>
teardown(cg::core::GappedVm& g, bool& done)
{
    co_await g.teardown();
    done = true;
}

void
printPool(const CorePlanner& planner)
{
    std::printf("  planner: %d free cores, %d dedicated\n",
                planner.freeCores(), planner.reservedCores());
}

} // namespace

int
main()
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);

    // The host keeps core 0 for itself (VMM threads, wake-up threads).
    CorePlanner planner(bed.machine(), host::CpuMask::single(0));
    std::printf("node up: %d cores, host reserves core 0\n",
                bed.machine().numCores());
    printPool(planner);

    // Tenant A wants 8 dedicated cores.
    auto a_cores = planner.reserve(8);
    std::printf("\ntenant A (8 cores): %s\n",
                a_cores ? "admitted" : "refused");
    VmInstance& vm_a = bed.createVmOn("tenant-a", *a_cores,
                                      host::CpuMask::single(0), 8);
    for (int i = 0; i < 8; ++i) {
        vm_a.vcpu(i).startGuest("a-work",
                                tenantWork(bed, vm_a.vcpu(i),
                                           100 * msec));
    }
    printPool(planner);

    // Tenant B wants 10 more: the node must refuse (7 free).
    auto b_cores = planner.reserve(10);
    std::printf("\ntenant B (10 cores): %s  <- admission control\n",
                b_cores ? "ADMITTED (bug!)" : "refused");

    // Tenant C fits with 4.
    auto c_cores = planner.reserve(4);
    std::printf("tenant C (4 cores): %s\n",
                c_cores ? "admitted" : "refused");
    VmInstance& vm_c = bed.createVmOn("tenant-c", *c_cores,
                                      host::CpuMask::single(0), 4);
    for (int i = 0; i < 4; ++i) {
        // Tenant C is a long-running service (it outlives A).
        vm_c.vcpu(i).startGuest("c-work",
                                tenantWork(bed, vm_c.vcpu(i),
                                           60 * sim::sec));
    }
    printPool(planner);

    // Run; tenant A completes, tenant C keeps serving.
    bed.spawnStart();
    bed.run(1 * sim::sec);
    std::printf("\ntenant A finished: %s; tenant C still serving: "
                "%s\n",
                vm_a.kvm->shutdownGate().isOpen() ? "yes" : "no",
                vm_c.kvm->shutdownGate().isOpen() ? "NO (bug!)"
                                                  : "yes");

    // Security bookkeeping during the run:
    std::printf("every vCPU stayed on its bound core; dedicated-core "
                "owners now: core %d -> realm %d, core %d -> realm "
                "%d\n",
                (*a_cores)[0],
                bed.rmm().dedicatedOwner((*a_cores)[0]),
                (*c_cores)[0],
                bed.rmm().dedicatedOwner((*c_cores)[0]));

    // Tenant A leaves: destroy the realm, reclaim + release cores.
    bool torn = false;
    bed.sim().spawn("teardown-a", teardown(*vm_a.gapped, torn));
    bed.run(bed.sim().now() + 2 * sim::sec);
    planner.release(*a_cores);
    std::printf("\ntenant A torn down (%s); its cores are back:\n",
                torn ? "ok" : "FAILED");
    printPool(planner);
    std::printf("  core %d online again: %s, owner: %d (none)\n",
                (*a_cores)[0],
                bed.kernel().isOnline((*a_cores)[0]) ? "yes" : "no",
                bed.rmm().dedicatedOwner((*a_cores)[0]));

    // Now tenant B fits.
    b_cores = planner.reserve(10);
    std::printf("\ntenant B retries (10 cores): %s\n",
                b_cores ? "admitted" : "refused");
    printPool(planner);

    // Defragmentation: tenant C's cores are scattered after A's
    // departure; the coarse-timescale rebinding (section 3's future
    // work) lets the planner consolidate a running CVM, one vCPU at a
    // time, without restarting it.
    const sim::CoreId free_core = 15;
    if (!planner.isReserved(free_core) &&
        bed.kernel().isOnline(free_core)) {
        std::printf("\ndefrag: migrating tenant-C vCPU 0 from core %d "
                    "to core %d while it runs...\n",
                    vm_c.gapped->coreOf(0), free_core);
        // Restart C's guests so there is something to migrate.
        bool moved = false;
        bed.sim().spawn(
            "defrag",
            [](cg::core::GappedVm& g, sim::CoreId to,
               bool& done) -> Proc<void> {
                const bool ok = co_await g.rebindVcpu(0, to);
                done = ok;
            }(*vm_c.gapped, free_core, moved));
        bed.run(bed.sim().now() + 2 * sim::sec);
        std::printf("  migration %s; vCPU 0 now on core %d, old core "
                    "scrubbed and back with the host\n",
                    moved ? "succeeded" : "REFUSED (unexpected)",
                    vm_c.gapped->coreOf(0));
    }
    return 0;
}
