/**
 * @file
 * Quickstart: boot one core-gapped confidential VM, run guest work on
 * it, verify its attestation, and inspect what the isolation machinery
 * did. Start here to learn the public API.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using sim::Proc;
using sim::msec;

namespace {

/** Guest software: attest, some compute, a memory touch, power off. */
Proc<void>
guestMain(Testbed& bed, guest::VCpu& v, int index)
{
    co_await bed.started().wait();
    std::printf("[guest %d] hello from a confidential vCPU\n", index);
    if (index == 0) {
        // Guest-driven remote attestation (RSI): serviced entirely by
        // the monitor; the host never sees this call.
        cg::rmm::AttestationToken t = co_await v.rsiAttest(0x1234);
        std::printf("[guest 0] got attestation token, RIM=%016llx, "
                    "verifies: %s\n",
                    static_cast<unsigned long long>(t.rim),
                    bed.rmm().authority().verify(t, 0x1234) ? "yes"
                                                            : "NO");
    }
    // First touch of fresh memory: a stage-2 fault the host resolves
    // through the RMI (over cross-core RPC, since we are core-gapped).
    co_await v.pageFault(0x80000000ull + 0x1000ull * index);
    co_await sim::Compute{50 * msec};
    std::printf("[guest %d] work done at t=%.1f ms (guest time)\n",
                index, sim::toMsec(v.guestCpuTime));
    co_await v.shutdown();
}

} // namespace

int
main()
{
    // 1. A 6-core machine running the core-gapped configuration:
    //    the security monitor enforces vCPU-to-core bindings and
    //    delegates interrupt handling (sections 3-4 of the paper).
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);

    // 2. A CVM on 4 physical cores: 3 dedicated vCPU cores plus one
    //    host core for its VMM threads (the paper's accounting).
    VmInstance& vm = bed.createVm("demo", 4);
    std::printf("created '%s': %d vCPUs on dedicated cores, VMM on "
                "host core(s) mask 0x%llx\n",
                vm.vm->name().c_str(), vm.numVcpus(),
                static_cast<unsigned long long>(vm.hostMask.bits()));

    // 3. Guest software is just coroutines started on vCPUs.
    for (int i = 0; i < vm.numVcpus(); ++i) {
        vm.vcpu(i).startGuest(sim::strFormat("guest%d", i),
                              guestMain(bed, vm.vcpu(i), i));
    }

    // 4. Bring it up (hotplug + monitor handoff) and run to completion.
    bed.spawnStart();
    bed.run(5 * sim::sec);
    std::printf("\nall vCPUs shut down: %s\n",
                bed.allShutdown() ? "yes" : "no");

    // 5. What the isolation machinery did.
    std::printf("\nisolation summary:\n");
    for (int i = 0; i < vm.numVcpus(); ++i) {
        std::printf("  vCPU %d bound to physical core %d\n", i,
                    bed.rmm().recBinding(vm.kvm->realmId(), i));
    }
    std::printf("  exits to host:        %llu\n",
                static_cast<unsigned long long>(
                    bed.rmm().stats().exitsToHost.value()));
    std::printf("  delegated timer work: %llu events\n",
                static_cast<unsigned long long>(
                    bed.rmm().stats().delegatedTimerEvents.value()));
    std::printf("  sync RPCs served:     %llu\n",
                static_cast<unsigned long long>(
                    vm.gapped->syncRpc().callsServed()));
    std::printf("  mean run call (incl. guest run time): %.2f us\n",
                vm.gapped->runCallRtt().meanUs());
    std::printf("  wrong-core dispatch attempts rejected so far: "
                "%llu\n",
                static_cast<unsigned long long>(
                    bed.rmm().stats().wrongCoreRejections.value()));

    // 7. Tear down: RECs destroyed, cores hotplugged back to the host.
    bool torn = false;
    bed.sim().spawn("teardown",
                    [](cg::core::GappedVm& g, bool& done) -> Proc<void> {
                        co_await g.teardown();
                        done = true;
                    }(*vm.gapped, torn));
    bed.run(10 * sim::sec);
    std::printf("\nteardown complete: %s; core 1 back online: %s\n",
                torn ? "yes" : "no",
                bed.kernel().isOnline(vm.physCores[1]) ? "yes" : "no");
    return 0;
}
