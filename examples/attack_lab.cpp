/**
 * @file
 * Attack laboratory: a co-tenant attacker VM probes microarchitectural
 * structures for a victim's residue, under three configurations. This
 * is the paper's security argument made tangible: time-slicing on
 * shared cores leaks through caches and TLBs even when firmware
 * flushes predictors; core gapping closes every per-core channel;
 * genuinely shared structures (LLC, the CrossTalk staging buffer)
 * remain out of scope.
 *
 *   $ ./examples/attack_lab
 */

#include <cstdio>

#include "attacks/catalog.hh"
#include "attacks/lab.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
using namespace cg::attacks;
using namespace cg::workloads;
using sim::msec;

namespace {

LeakReport
experiment(RunMode mode)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = mode;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.footprint = 900; // the victim has a noticeable working set
    VmInstance *victim, *attacker;
    if (isGapped(mode)) {
        victim = &bed.createVm("victim", 3, vcfg);
        attacker = &bed.createVm("attacker", 3, vcfg);
    } else {
        // Overcommitted co-tenancy: the attacker's vCPUs time-slice
        // with the victim's on the same two physical cores.
        std::vector<sim::CoreId> cores{0, 1};
        host::CpuMask mask;
        for (sim::CoreId c : cores)
            mask.set(c);
        victim = &bed.createVmOn("victim", cores, mask, 2, vcfg);
        attacker = &bed.createVmOn("attacker", cores, mask, 2, vcfg);
    }
    CoreMarkPro::Config wcfg;
    wcfg.duration = 300 * msec;
    CoreMarkPro secret_work(bed, *victim, wcfg);
    secret_work.install();
    AttackLab::Config acfg;
    acfg.duration = 300 * msec;
    AttackLab lab(bed, *attacker, victim->vm->domain(), acfg);
    lab.install();
    bed.spawnStart();
    bed.run(5 * sim::sec);
    return lab.report();
}

void
describe(const char* title, const LeakReport& r)
{
    std::printf("\n%s\n", title);
    for (Channel c :
         {Channel::L1d, Channel::Tlb, Channel::Btb, Channel::Llc,
          Channel::StagingBuffer}) {
        const ChannelReading& ch = r.at(c);
        std::printf("  %-15s: %s (%llu victim entries over %llu "
                    "probes)\n",
                    channelName(c),
                    ch.leaked() ? "LEAKED" : "closed",
                    static_cast<unsigned long long>(
                        ch.victimEntriesSeen),
                    static_cast<unsigned long long>(ch.probes));
    }
}

} // namespace

int
main()
{
    std::printf("How many of the catalogued CPU vulnerabilities does "
                "core gapping mitigate?\n");
    std::printf("  %zu of %zu (the cross-core residue: ",
                mitigatedByCoreGapping().size(),
                vulnerabilityCatalog().size());
    for (const auto& v : notMitigatedByCoreGapping())
        std::printf("%s; ", v.name.c_str());
    std::printf(")\n");

    describe("1. Shared cores, normal VMs (no mitigations at all):",
             experiment(RunMode::SharedCore));
    describe("2. Shared cores, confidential VMs (firmware flushes "
             "predictors on world switches):",
             experiment(RunMode::SharedCoreCvm));
    describe("3. Core-gapped confidential VMs (this paper):",
             experiment(RunMode::CoreGapped));

    std::printf("\nReading: with core gapping, the attacker never "
                "shares a core with the victim, so every per-core "
                "probe comes back empty; only the genuinely shared "
                "LLC and staging buffer retain residue, which the "
                "paper scopes out (partitioning / CrossTalk).\n");
    return 0;
}
