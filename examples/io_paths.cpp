/**
 * @file
 * The two I/O paths of section 5.3, side by side: emulated virtio
 * (every kick is a VM exit handled by a VMM thread) versus SR-IOV
 * passthrough (DMA straight to the guest, host only forwards the MSI).
 * Runs a small ping-pong on each path in shared-core and core-gapped
 * configurations and prints the per-path exit bills.
 *
 *   $ ./examples/io_paths
 */

#include <cstdio>
#include <memory>

#include "sim/simulation.hh"
#include "workloads/netpipe.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;

namespace {

struct Outcome {
    NetPipe::Result np;
    std::uint64_t mmioExits;
    std::uint64_t exits;
    std::uint64_t injections;
};

Outcome
run(RunMode mode, bool sriov)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = mode;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0; // leave only the I/O path's own exits
    VmInstance& vm = bed.createVm("io", 3, vcfg);
    std::unique_ptr<GuestNic> nic;
    if (sriov) {
        bed.addSriovNic(vm);
        nic = std::make_unique<SriovGuestNic>(*vm.sriov);
    } else {
        bed.addVirtioNet(vm);
        nic = std::make_unique<VirtioGuestNic>(*vm.vnet);
    }
    RemoteHost remote(bed.sim(), bed.fabric(),
                      bed.machine().costs().remoteStack);
    NetPipeResponder responder(remote);
    NetPipe::Config ncfg;
    ncfg.messageBytes = 1448;
    ncfg.iterations = 50;
    NetPipe np(bed, vm, *nic, remote, ncfg);
    np.install();
    bed.spawnStart();
    bed.run(20 * sim::sec);
    Outcome o;
    o.np = np.result();
    o.mmioExits = vm.kvm->stats().mmioExits.value();
    o.exits = vm.kvm->stats().exits.value();
    o.injections = vm.kvm->stats().injections.value();
    return o;
}

void
report(const char* label, const Outcome& o)
{
    std::printf("  %-24s rtt %7.1f us | %4llu MMIO exits, %4llu "
                "total exits, %4llu IRQ injections (for 53 "
                "round trips)\n",
                label, o.np.rttMeanUs,
                static_cast<unsigned long long>(o.mmioExits),
                static_cast<unsigned long long>(o.exits),
                static_cast<unsigned long long>(o.injections));
}

} // namespace

int
main()
{
    std::printf("1448-byte ping-pong, 50 measured round trips:\n\n");
    std::printf("virtio (emulated by a VMM thread):\n");
    report("shared-core", run(RunMode::SharedCore, false));
    report("core-gapped", run(RunMode::CoreGapped, false));
    std::printf("\nSR-IOV VF passthrough:\n");
    report("shared-core", run(RunMode::SharedCore, true));
    report("core-gapped", run(RunMode::CoreGapped, true));
    std::printf(
        "\nReading: virtio's doorbell kicks and completion interrupts "
        "are VM exits, and each core-gapped exit crosses cores "
        "through the RPC channel plus the userspace VMM turnaround -- "
        "the penalty fig. 8 shows. SR-IOV avoids exits on the data "
        "path entirely (TX causes zero MMIO exits); only interrupt "
        "forwarding still involves the host, which is why the paper "
        "expects direct interrupt delivery to close the remaining gap.\n");
    return 0;
}
