/**
 * @file
 * Workload-level integration tests: every generator runs end to end in
 * multiple modes, and cross-mode comparisons have the right sign
 * (e.g. SR-IOV beats virtio; more cores build faster; identical seeds
 * give identical results — invariant I9).
 */

#include <gtest/gtest.h>

#include "workloads/coremark.hh"
#include "workloads/iozone.hh"
#include "workloads/kbuild.hh"
#include "workloads/netpipe.hh"
#include "workloads/redis.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using sim::Tick;
using sim::msec;
using sim::usec;

namespace {

CoreMarkPro::Result
runCoreMark(RunMode mode, int phys_cores, Tick duration,
            std::uint64_t seed = 0xc0ffee)
{
    Testbed::Config cfg;
    cfg.numCores = phys_cores;
    cfg.mode = mode;
    cfg.seed = seed;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("cm", phys_cores);
    CoreMarkPro::Config wcfg;
    wcfg.duration = duration;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    bed.spawnStart();
    bed.run(duration + 2 * sim::sec);
    return cm.result();
}

} // namespace

TEST(TestbedAccounting, SharedGetsNVcpusGappedGetsNMinusOne)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::SharedCore;
    Testbed shared(cfg);
    EXPECT_EQ(shared.createVm("a", 4).numVcpus(), 4);

    cfg.mode = RunMode::CoreGapped;
    Testbed gapped(cfg);
    VmInstance& g = gapped.createVm("b", 4);
    EXPECT_EQ(g.numVcpus(), 3);
    EXPECT_EQ(g.guestCores.size(), 3u);
    EXPECT_EQ(g.hostMask.count(), 1);
    ASSERT_NE(g.gapped, nullptr);
}

TEST(CoreMark, RunsInEveryMode)
{
    for (RunMode m : {RunMode::SharedCore, RunMode::SharedCoreCvm,
                      RunMode::CoreGapped,
                      RunMode::CoreGappedNoDelegation}) {
        CoreMarkPro::Result r = runCoreMark(m, 4, 300 * msec);
        EXPECT_GT(r.score, 0.0) << runModeName(m);
        EXPECT_GT(r.iterations, 100u) << runModeName(m);
    }
}

TEST(CoreMark, DeterministicForSameSeed)
{
    CoreMarkPro::Result a =
        runCoreMark(RunMode::CoreGapped, 4, 300 * msec, 7);
    CoreMarkPro::Result b =
        runCoreMark(RunMode::CoreGapped, 4, 300 * msec, 7);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_DOUBLE_EQ(a.score, b.score);
}

TEST(CoreMark, DifferentSeedsDifferSlightly)
{
    CoreMarkPro::Result a =
        runCoreMark(RunMode::CoreGapped, 4, 300 * msec, 7);
    CoreMarkPro::Result b =
        runCoreMark(RunMode::CoreGapped, 4, 300 * msec, 8);
    // Jitter shifts exact counts but not the magnitude.
    EXPECT_NEAR(a.score, b.score, a.score * 0.05);
}

TEST(CoreMark, GappedCompetitiveWithShared)
{
    // 8 physical cores: shared runs 8 vCPUs, gapped runs 7 + host.
    CoreMarkPro::Result shared =
        runCoreMark(RunMode::SharedCore, 8, 400 * msec);
    CoreMarkPro::Result gapped =
        runCoreMark(RunMode::CoreGapped, 8, 400 * msec);
    // 7/8 of the vCPUs, so roughly 7/8 of the score; competitive
    // means within ~20% (fig. 6's story at moderate core counts).
    EXPECT_GT(gapped.score, shared.score * 0.70);
    EXPECT_LT(gapped.score, shared.score * 1.05);
}

TEST(NetPipe, SriovBeatsVirtio)
{
    auto run_netpipe = [](bool sriov) {
        Testbed::Config cfg;
        cfg.numCores = 4;
        cfg.mode = RunMode::SharedCore;
        Testbed bed(cfg);
        guest::VmConfig vcfg;
        vcfg.tickPeriod = 0;
        VmInstance& vm = bed.createVm("np", 2, vcfg);
        std::unique_ptr<GuestNic> nic;
        if (sriov) {
            bed.addSriovNic(vm);
            nic = std::make_unique<SriovGuestNic>(*vm.sriov);
        } else {
            bed.addVirtioNet(vm);
            nic = std::make_unique<VirtioGuestNic>(*vm.vnet);
        }
        RemoteHost remote(bed.sim(), bed.fabric(),
                          bed.machine().costs().remoteStack);
        NetPipeResponder responder(remote);
        NetPipe::Config ncfg;
        ncfg.messageBytes = 1448;
        ncfg.iterations = 15;
        NetPipe np(bed, vm, *nic, remote, ncfg);
        np.install();
        bed.spawnStart();
        bed.run(4 * sim::sec);
        return np.result();
    };
    NetPipe::Result virtio = run_netpipe(false);
    NetPipe::Result sriov = run_netpipe(true);
    ASSERT_EQ(virtio.completed, 15);
    ASSERT_EQ(sriov.completed, 15);
    EXPECT_LT(sriov.latencyUs, virtio.latencyUs);
    EXPECT_GT(sriov.throughputGbps, virtio.throughputGbps);
}

TEST(NetPipe, LargerMessagesHigherThroughput)
{
    auto run_size = [](std::uint64_t bytes) {
        Testbed::Config cfg;
        cfg.numCores = 4;
        cfg.mode = RunMode::SharedCore;
        Testbed bed(cfg);
        guest::VmConfig vcfg;
        vcfg.tickPeriod = 0;
        VmInstance& vm = bed.createVm("np", 2, vcfg);
        bed.addSriovNic(vm);
        SriovGuestNic nic(*vm.sriov);
        RemoteHost remote(bed.sim(), bed.fabric(),
                          bed.machine().costs().remoteStack);
        NetPipeResponder responder(remote);
        NetPipe::Config ncfg;
        ncfg.messageBytes = bytes;
        ncfg.iterations = 8;
        NetPipe np(bed, vm, nic, remote, ncfg);
        np.install();
        bed.spawnStart();
        bed.run(10 * sim::sec);
        return np.result();
    };
    NetPipe::Result small = run_size(256);
    NetPipe::Result large = run_size(64 * 1024);
    ASSERT_GT(small.completed, 0);
    ASSERT_GT(large.completed, 0);
    EXPECT_GT(large.throughputGbps, small.throughputGbps * 3);
    EXPECT_GT(large.latencyUs, small.latencyUs);
}

TEST(IoZone, ThroughputGrowsWithRecordSize)
{
    auto run_record = [](std::uint64_t record) {
        Testbed::Config cfg;
        cfg.numCores = 4;
        cfg.mode = RunMode::SharedCore;
        Testbed bed(cfg);
        guest::VmConfig vcfg;
        vcfg.tickPeriod = 0;
        VmInstance& vm = bed.createVm("io", 2, vcfg);
        bed.addVirtioBlk(vm);
        IoZone::Config icfg;
        icfg.recordBytes = record;
        icfg.fileBytes = 16ull << 20;
        icfg.maxOps = 64;
        IoZone io(bed, vm, icfg);
        io.install();
        bed.spawnStart();
        bed.run(30 * sim::sec);
        return io.result();
    };
    IoZone::Result small = run_record(16 * 1024);
    IoZone::Result large = run_record(4 << 20);
    ASSERT_GT(small.ops, 0);
    ASSERT_GT(large.ops, 0);
    EXPECT_GT(large.throughputMBps, small.throughputMBps * 4);
}

TEST(Redis, ServesRequestsWithPlausibleLatency)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("redis", 2);
    bed.addSriovNic(vm);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost clients(bed.sim(), bed.fabric(),
                       bed.machine().costs().remoteStack);
    RedisBenchmark::Config rcfg;
    rcfg.op = RedisOp::Get;
    rcfg.duration = 300 * msec;
    rcfg.clients = 20;
    RedisBenchmark rb(bed, vm, nic, clients, rcfg);
    rb.install();
    bed.spawnStart();
    bed.run(2 * sim::sec);
    RedisBenchmark::Result r = rb.result();
    EXPECT_GT(r.completed, 1000u);
    EXPECT_GT(r.throughputKrps, 5.0);
    EXPECT_GT(r.meanMs, 0.01);
    EXPECT_LT(r.meanMs, 5.0);
    EXPECT_GE(r.p99Ms, r.p95Ms);
    EXPECT_GE(r.p95Ms, r.meanMs * 0.5);
}

TEST(KernelBuild, MoreCoresBuildFaster)
{
    auto run_build = [](int cores) {
        Testbed::Config cfg;
        cfg.numCores = cores;
        cfg.mode = RunMode::SharedCore;
        Testbed bed(cfg);
        VmInstance& vm = bed.createVm("kb", cores);
        bed.addVirtioBlk(vm);
        KernelBuild::Config kcfg;
        kcfg.jobs = 48;
        kcfg.compilePerJob = 60 * msec;
        kcfg.linkCompute = 200 * msec;
        KernelBuild kb(bed, vm, kcfg);
        kb.install();
        bed.spawnStart();
        bed.run(60 * sim::sec);
        return kb.result();
    };
    KernelBuild::Result four = run_build(4);
    KernelBuild::Result eight = run_build(8);
    ASSERT_TRUE(four.finished);
    ASSERT_TRUE(eight.finished);
    EXPECT_EQ(four.jobsDone, 48);
    EXPECT_LT(eight.buildTime, four.buildTime);
}

TEST(KernelBuild, GappedCompletesOverVirtioDisk)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("kb", 4);
    bed.addVirtioBlk(vm);
    KernelBuild::Config kcfg;
    kcfg.jobs = 24;
    kcfg.compilePerJob = 40 * msec;
    kcfg.linkCompute = 100 * msec;
    KernelBuild kb(bed, vm, kcfg);
    kb.install();
    bed.spawnStart();
    bed.run(60 * sim::sec);
    KernelBuild::Result r = kb.result();
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.jobsDone, 24);
}
