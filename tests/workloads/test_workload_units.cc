/**
 * @file
 * Unit tests for workload-support pieces: NetPIPE message framing,
 * the remote host's serialised CPU, redis request/response sizing,
 * and the testbed's configuration guards.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"
#include "workloads/netpipe.hh"
#include "workloads/redis.hh"
#include "workloads/remote.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace vmm = cg::vmm;
using namespace cg::workloads;
using sim::Tick;
using sim::usec;

TEST(NetPipeFraming, CookieRoundTrip)
{
    for (std::uint64_t msg : {1ull, 77ull, 99999ull}) {
        for (std::uint64_t pkts : {1ull, 36ull, 2897ull}) {
            const std::uint64_t c = NetPipe::cookieOf(msg, pkts);
            EXPECT_EQ(NetPipe::msgIdOf(c), msg);
            EXPECT_EQ(NetPipe::packetsOf(c),
                      static_cast<int>(pkts));
        }
    }
}

TEST(NetPipeFraming, PacketCountForMessageSizes)
{
    // ceil(bytes / 1448): the basis of the fig. 8 sweep.
    EXPECT_EQ((64 + NetPipe::mtuPayload - 1) / NetPipe::mtuPayload,
              1u);
    EXPECT_EQ((1448 + NetPipe::mtuPayload - 1) / NetPipe::mtuPayload,
              1u);
    EXPECT_EQ((1449 + NetPipe::mtuPayload - 1) / NetPipe::mtuPayload,
              2u);
    EXPECT_EQ(((4ull << 20) + NetPipe::mtuPayload - 1) /
                  NetPipe::mtuPayload,
              2897u);
}

TEST(RemoteHost, SerialisesPacketsOnItsCpu)
{
    sim::Simulation s;
    vmm::NetworkFabric fab(s, vmm::NetworkFabric::Config{});
    RemoteHost host(s, fab, /*per_packet=*/10 * usec);
    std::vector<Tick> handled;
    host.setHandler([&handled, &s](const vmm::Packet&) {
        handled.push_back(s.now());
    });
    const int src = fab.attach(nullptr);
    for (int i = 0; i < 4; ++i) {
        vmm::Packet p;
        p.bytes = 100;
        p.srcPort = src;
        p.dstPort = host.port();
        fab.send(p);
    }
    s.run();
    ASSERT_EQ(handled.size(), 4u);
    // Back-to-back arrivals are processed ~10us apart (one CPU).
    for (size_t i = 1; i < handled.size(); ++i)
        EXPECT_GE(handled[i] - handled[i - 1], 9 * usec);
    EXPECT_EQ(host.received(), 4u);
}

TEST(RemoteHost, EchoSendsBack)
{
    sim::Simulation s;
    vmm::NetworkFabric fab(s, vmm::NetworkFabric::Config{});
    RemoteHost host(s, fab, 2 * usec);
    host.becomeEcho();
    std::vector<std::uint64_t> got;
    const int me = fab.attach([&got](const vmm::Packet& p) {
        got.push_back(p.cookie);
    });
    vmm::Packet p;
    p.bytes = 500;
    p.srcPort = me;
    p.dstPort = host.port();
    p.cookie = 0xabc;
    fab.send(p);
    s.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 0xabcu);
}

TEST(RedisSizing, OpNamesAndShapes)
{
    EXPECT_STREQ(redisOpName(RedisOp::Set), "SET");
    EXPECT_STREQ(redisOpName(RedisOp::Get), "GET");
    EXPECT_STREQ(redisOpName(RedisOp::Lrange100), "LRANGE 100");
}

TEST(TestbedGuards, RejectsImpossibleConfigs)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    // A gapped VM needs at least 2 physical cores (1 host + 1 guest).
    EXPECT_THROW(bed.createVm("tiny", 1), sim::FatalError);
    // And the machine only has 4 cores.
    EXPECT_THROW(bed.createVm("huge", 5), sim::FatalError);
    // Direct interrupt delivery requires a gapped VM.
    Testbed::Config scfg;
    scfg.numCores = 4;
    scfg.mode = RunMode::SharedCore;
    Testbed sbed(scfg);
    VmInstance& svm = sbed.createVm("s", 2);
    EXPECT_THROW(sbed.addSriovNic(svm, /*direct=*/true),
                 sim::FatalError);
}

TEST(TestbedGuards, CoreAccountingAcrossVms)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& a = bed.createVm("a", 4);
    VmInstance& b = bed.createVm("b", 4);
    // Disjoint physical cores, each with its own host core.
    for (sim::CoreId ca : a.physCores)
        for (sim::CoreId cb : b.physCores)
            EXPECT_NE(ca, cb);
    EXPECT_EQ(a.guestCores.size() + b.guestCores.size(), 6u);
    // A ninth core does not exist.
    EXPECT_THROW(bed.createVm("c", 2), sim::FatalError);
}
