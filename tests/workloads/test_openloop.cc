/**
 * @file
 * Regression pins for the redis workloads' reported numbers: the
 * closed-loop table-5 benchmark and the open-loop serving-path sweep.
 * Two layers of protection:
 *
 *  - identity: every reported millisecond value must equal
 *    ticksToMs() of the underlying distribution's percentile, so a
 *    hand-rolled conversion can never sneak back in;
 *  - goldens: exact outputs for a fixed seed, pinning the simulated
 *    schedule end to end (costs, device model, rng draws). A model
 *    change that shifts these is fine — update the goldens — but it
 *    must be a conscious update, not drift.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/simulation.hh"
#include "workloads/nic.hh"
#include "workloads/redis.hh"
#include "workloads/remote.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
using namespace cg::workloads;
using sim::Tick;
using sim::usec;
using sim::msec;

namespace {

RedisOpenLoop::Result
runOpenLoopSmall()
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("redis", 4);
    Testbed::MqNicOptions opt;
    opt.queues = 2;
    bed.addMqNic(vm, opt);
    MqGuestNic nic(*vm.mqnet);
    RemoteHost clients(bed.sim(), bed.fabric(),
                       bed.machine().costs().remoteStack, 4);
    RedisOpenLoop::Config rcfg;
    rcfg.op = RedisOp::Get;
    rcfg.offeredKrps = 50.0;
    rcfg.duration = 50 * msec;
    rcfg.serverThreads = 2;
    RedisOpenLoop ol(bed, vm, nic, clients, rcfg);
    ol.install();
    bed.spawnStart();
    bed.run(2 * sim::sec);
    RedisOpenLoop::Result r = ol.result();
    // Identity layer, checked here where the workload is still alive.
    EXPECT_EQ(ol.latencies().count(), r.completed);
    EXPECT_DOUBLE_EQ(
        r.p50Ms, sim::ticksToMs(ol.latencies().dist().percentile(50)));
    EXPECT_DOUBLE_EQ(
        r.p99Ms, sim::ticksToMs(ol.latencies().dist().percentile(99)));
    EXPECT_DOUBLE_EQ(
        r.p999Ms,
        sim::ticksToMs(ol.latencies().dist().percentile(99.9)));
    EXPECT_DOUBLE_EQ(r.meanMs,
                     sim::ticksToMs(ol.latencies().dist().mean()));
    return r;
}

} // namespace

TEST(RedisOpenLoopPin, FixedSeedGoldens)
{
    const RedisOpenLoop::Result r = runOpenLoopSmall();
    // ~50 krps for 50 ms: ~2500 Poisson arrivals, all completed.
    EXPECT_EQ(r.sent, r.completed);
    EXPECT_NEAR(r.achievedKrps, r.offeredKrps,
                0.2 * r.offeredKrps);
    EXPECT_GT(r.maxInFlight, 0u);
    // Goldens for the default testbed seed (0xc0ffee). Deliberate
    // model changes may update these; see the file header.
    std::printf("openloop pin: sent=%llu p50=%.9f p99=%.9f "
                "p999=%.9f mean=%.9f\n",
                static_cast<unsigned long long>(r.sent), r.p50Ms,
                r.p99Ms, r.p999Ms, r.meanMs);
    EXPECT_EQ(r.sent, 2453u);
    EXPECT_NEAR(r.p50Ms, 0.044240042, 1e-8);
    EXPECT_NEAR(r.p99Ms, 0.217824900, 1e-8);
    EXPECT_NEAR(r.p999Ms, 0.312528101, 1e-8);
}

TEST(RedisClosedLoopPin, FixedSeedGoldens)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("redis", 4);
    bed.addSriovNic(vm);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost clients(bed.sim(), bed.fabric(),
                       bed.machine().costs().remoteStack);
    RedisBenchmark::Config rcfg;
    rcfg.op = RedisOp::Get;
    rcfg.clients = 10;
    rcfg.duration = 100 * msec;
    RedisBenchmark rb(bed, vm, nic, clients, rcfg);
    rb.install();
    bed.spawnStart();
    bed.run(2 * sim::sec);
    const RedisBenchmark::Result r = rb.result();
    // Identity: the table-5 milliseconds come from ticksToMs of the
    // recorded tick distribution, nothing else.
    EXPECT_DOUBLE_EQ(r.meanMs,
                     sim::ticksToMs(rb.latencies().mean()));
    EXPECT_DOUBLE_EQ(r.p95Ms,
                     sim::ticksToMs(rb.latencies().percentile(95)));
    EXPECT_DOUBLE_EQ(r.p99Ms,
                     sim::ticksToMs(rb.latencies().percentile(99)));
    std::printf("closedloop pin: completed=%llu krps=%.9f "
                "mean=%.9f p95=%.9f p99=%.9f\n",
                static_cast<unsigned long long>(r.completed),
                r.throughputKrps, r.meanMs, r.p95Ms, r.p99Ms);
    EXPECT_EQ(r.completed, 4713u);
    EXPECT_NEAR(r.throughputKrps, 47.13, 1e-6);
    EXPECT_NEAR(r.meanMs, 0.089829544, 1e-8);
}
