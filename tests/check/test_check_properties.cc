/**
 * @file
 * Property tests for the isolation checker against the full testbed
 * and the attack suite:
 *
 *  - every core-gapped scenario (including a full terminate cycle that
 *    hands the dedicated cores back) reports ZERO leak edges — the
 *    checker has no false positives on the paper's design;
 *  - every no-mitigation scenario (shared cores, with or without CCA)
 *    reports at least one leak edge, agreeing with the attack lab and
 *    the vulnerability catalogue;
 *  - the checker is pure observation: armed runs end at the same tick
 *    as unarmed runs, and identical (seed, mode) pairs replay to
 *    identical event/edge counts;
 *  - the seeded scrub-skip fault makes the checker fire (the CI
 *    must-fire test: a broken mitigation cannot go unnoticed).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attacks/catalog.hh"
#include "attacks/lab.hh"
#include "check/checker.hh"
#include "core/migration.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
namespace check = cg::check;
using namespace cg::attacks;
using namespace cg::workloads;
using check::IsolationChecker;
using check::LeakKind;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

struct CheckedRun {
    std::uint64_t edgeTotal = 0;
    std::uint64_t probeResidue = 0;
    std::uint64_t dirtyEnter = 0;
    std::uint64_t dirtyHandback = 0;
    std::uint64_t events = 0;
    Tick endTick = 0;
    std::vector<check::LeakEdge> edges;
    LeakReport leaks;
};

Proc<void>
terminateAll(Testbed& bed)
{
    for (const auto& v : bed.vms()) {
        if (v->gapped)
            co_await v->gapped->terminate();
    }
}

/**
 * The attack-lab scenario (victim runs CPU work, attacker probes)
 * with an IsolationChecker attached; gapped VMs are terminated at the
 * end so the core-handback path is exercised too. @p with_checker
 * false measures the identical run unobserved; @p fault_plan
 * optionally arms the fault plan (e.g. "scrub-skip").
 */
CheckedRun
runChecked(RunMode mode, bool with_checker = true,
           const std::string& fault_plan = "",
           std::uint64_t seed = 0xc0ffee)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = mode;
    cfg.seed = seed;
    Testbed bed(cfg);

    std::unique_ptr<IsolationChecker> checker;
    if (with_checker) {
        checker =
            std::make_unique<IsolationChecker>(bed.sim().queue());
        bed.machine().attachChecker(checker.get());
    }
    if (!fault_plan.empty()) {
        bed.sim().faults().arm(17,
                               sim::FaultPlan::parse(fault_plan));
    }

    guest::VmConfig vcfg;
    vcfg.footprint = 900;
    VmInstance *victim, *attacker;
    if (isGapped(mode)) {
        victim = &bed.createVm("victim", 3, vcfg);
        attacker = &bed.createVm("attacker", 3, vcfg);
    } else {
        std::vector<sim::CoreId> cores{0, 1};
        host::CpuMask mask;
        for (sim::CoreId c : cores)
            mask.set(c);
        victim = &bed.createVmOn("victim", cores, mask, 2, vcfg);
        attacker = &bed.createVmOn("attacker", cores, mask, 2, vcfg);
    }

    CoreMarkPro::Config wcfg;
    wcfg.duration = 250 * msec;
    CoreMarkPro victim_work(bed, *victim, wcfg);
    victim_work.install();

    AttackLab::Config acfg;
    acfg.duration = 250 * msec;
    AttackLab lab(bed, *attacker, victim->vm->domain(), acfg);
    lab.install();

    bed.spawnStart();
    bed.run(3 * sim::sec);
    // Hand every dedicated core back: the teardown scrub (or its
    // fault-injected absence) is part of the checked surface.
    bed.sim().spawn("terminate-all", terminateAll(bed));
    const Tick end = bed.run(4 * sim::sec);

    CheckedRun r;
    r.endTick = end;
    r.leaks = lab.report();
    if (checker) {
        r.edgeTotal = checker->edgeTotal();
        r.probeResidue = checker->edgeCount(LeakKind::ProbeResidue);
        r.dirtyEnter = checker->edgeCount(LeakKind::DirtyEnter);
        r.dirtyHandback =
            checker->edgeCount(LeakKind::DirtyHandback);
        r.events = checker->eventCount();
        r.edges = checker->edges();
        bed.machine().attachChecker(nullptr);
    }
    return r;
}

/** Everything a migration-under-observation test may probe. */
struct MigrationCheckedRun {
    cg::core::MigrateResult result = cg::core::MigrateResult::Refused;
    std::uint64_t dirtyHandbackAfterMove = 0; ///< before terminate
    std::uint64_t dirtyHandback = 0;
    std::uint64_t edgeTotal = 0;
    std::uint64_t stalls = 0;
    std::uint64_t aborted = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t detected = 0;  ///< for @p site
    std::uint64_t recovered = 0; ///< for @p site
};

Proc<void>
migrateMidRun(Testbed& bed, cg::core::MigrationController& ctrl,
              std::vector<sim::CoreId> dest,
              cg::core::MigrateResult& out)
{
    co_await bed.started().wait();
    co_await sim::Delay{60 * msec};
    out = co_await ctrl.migrateTo(std::move(dest));
}

/**
 * A victim CVM runs CPU work (dirtying its dedicated cores), migrates
 * mid-run to a fresh pool, finishes, and is terminated — all under an
 * IsolationChecker, with @p fault_plan armed. The migration's source
 * handback is the checked surface: residue left by a skipped scrub
 * must show up as a dirty-handback edge.
 */
MigrationCheckedRun
runMigrationChecked(const std::string& fault_plan, sim::FaultSite site,
                    bool verify_scrubs = false)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::CoreGapped;
    cfg.verifyScrubs = verify_scrubs;
    Testbed bed(cfg);
    IsolationChecker checker(bed.sim().queue());
    bed.machine().attachChecker(&checker);
    if (!fault_plan.empty()) {
        bed.sim().faults().arm(17,
                               sim::FaultPlan::parse(fault_plan));
    }

    guest::VmConfig vcfg;
    vcfg.footprint = 900;
    VmInstance& victim = bed.createVm("victim", 3, vcfg);
    CoreMarkPro::Config wcfg;
    wcfg.duration = 250 * msec;
    CoreMarkPro work(bed, victim, wcfg);
    work.install();

    cg::core::MigrationController ctrl(*victim.gapped, nullptr);
    MigrationCheckedRun r;
    bed.spawnStart();
    bed.sim().spawn("migrate",
                    migrateMidRun(bed, ctrl, {3, 4}, r.result));
    bed.run(2 * sim::sec);
    // Snapshot between the move and the terminate: any dirty-handback
    // edge so far is the migration's, not teardown's.
    r.dirtyHandbackAfterMove =
        checker.edgeCount(LeakKind::DirtyHandback);
    bed.run(3 * sim::sec);
    bed.sim().spawn("terminate-all", terminateAll(bed));
    bed.run(4 * sim::sec);

    r.dirtyHandback = checker.edgeCount(LeakKind::DirtyHandback);
    r.edgeTotal = checker.edgeTotal();
    r.stalls = bed.rmm().stats().migrationStalls.value();
    r.aborted = bed.rmm().stats().migrationsAborted.value();
    r.scrubRepairs = bed.rmm().stats().scrubRepairs.value() +
                     victim.gapped->scrubRepairs();
    r.detected = bed.sim().faults().detectionLatency(site).count();
    r.recovered = bed.sim().faults().recoveryLatency(site).count();
    bed.machine().attachChecker(nullptr);
    return r;
}

} // namespace

TEST(CheckProperties, GappedScenariosRaiseZeroLeakEdges)
{
    // Zero false positives: the paper's design, in every evaluated
    // variant, must be silent — including the terminate/handback path.
    for (RunMode m : {RunMode::CoreGapped, RunMode::CoreGappedBusyWait,
                      RunMode::CoreGappedNoDelegation}) {
        CheckedRun r = runChecked(m);
        EXPECT_EQ(r.edgeTotal, 0u) << runModeName(m);
        EXPECT_GT(r.events, 1000u) << runModeName(m); // it did watch
        EXPECT_GT(r.leaks.at(Channel::L1d).probes, 50u)
            << runModeName(m); // and the attacker did probe
    }
}

TEST(CheckProperties, NoMitigationScenariosRaiseLeakEdges)
{
    // Sharing is leaking: both shared-core configurations must light
    // up, and the plain shared-core one via observed probe residue.
    CheckedRun shared = runChecked(RunMode::SharedCore);
    EXPECT_GE(shared.edgeTotal, 1u);
    EXPECT_GE(shared.probeResidue, 1u);

    CheckedRun cvm = runChecked(RunMode::SharedCoreCvm);
    EXPECT_GE(cvm.edgeTotal, 1u);
}

TEST(CheckProperties, CheckerAgreesWithTheAttackLabAndCatalog)
{
    CheckedRun shared = runChecked(RunMode::SharedCore);
    CheckedRun gapped = runChecked(RunMode::CoreGapped);

    // The lab observed per-core victim residue on shared cores; the
    // checker must have flagged those same channels (l1d and tlb leak
    // per the attack tests), and on the structures the catalogue's
    // same-core entries exploit.
    for (const char* structure : {"l1d", "tlb"}) {
        bool flagged = false;
        for (const auto& e : shared.edges) {
            flagged = flagged ||
                      e.structure.find(structure) != std::string::npos;
        }
        EXPECT_TRUE(flagged) << structure;
    }

    // Catalogue cross-reference: core gapping claims to mitigate every
    // same-core/SMT vulnerability — so the gapped run must be silent —
    // while the shared run leaks through structures of the same
    // classes the catalogue names.
    EXPECT_GE(mitigatedByCoreGapping().size(), 30u);
    EXPECT_TRUE(gapped.leaks.anySharedLeak()); // LLC stays out of scope
    EXPECT_EQ(gapped.edgeTotal, 0u);
    EXPECT_TRUE(shared.leaks.anySameCoreLeak());
    EXPECT_GE(shared.edgeTotal, 1u);
}

TEST(CheckProperties, CheckerIsPureObservation)
{
    // Armed and unarmed runs of the same (seed, mode) end at the same
    // simulated tick and see the same attack-lab readings.
    for (RunMode m : {RunMode::CoreGapped, RunMode::SharedCore}) {
        CheckedRun armed = runChecked(m, /*with_checker=*/true);
        CheckedRun bare = runChecked(m, /*with_checker=*/false);
        EXPECT_EQ(armed.endTick, bare.endTick) << runModeName(m);
        EXPECT_EQ(armed.leaks.at(Channel::L1d).victimEntriesSeen,
                  bare.leaks.at(Channel::L1d).victimEntriesSeen)
            << runModeName(m);
    }
}

TEST(CheckProperties, CheckedRunsReplayBitIdentically)
{
    for (RunMode m : {RunMode::CoreGapped, RunMode::SharedCore}) {
        CheckedRun a = runChecked(m);
        CheckedRun b = runChecked(m);
        EXPECT_EQ(a.endTick, b.endTick) << runModeName(m);
        EXPECT_EQ(a.events, b.events) << runModeName(m);
        EXPECT_EQ(a.edgeTotal, b.edgeTotal) << runModeName(m);
        EXPECT_EQ(a.probeResidue, b.probeResidue) << runModeName(m);
        EXPECT_EQ(a.dirtyEnter, b.dirtyEnter) << runModeName(m);
        EXPECT_EQ(a.dirtyHandback, b.dirtyHandback) << runModeName(m);
    }
}

TEST(CheckMustFire, ScrubSkipFaultIsCaughtByTheChecker)
{
    // The deliberately-broken mitigation: teardown skips the scrub of
    // one dedicated core. The checker MUST flag the handback — this is
    // the CI gate proving the checker can actually fail a run.
    CheckedRun r = runChecked(RunMode::CoreGapped,
                              /*with_checker=*/true, "scrub-skip");
    EXPECT_GE(r.dirtyHandback, 1u);
    bool on_core_structure = false;
    for (const auto& e : r.edges) {
        if (e.kind == LeakKind::DirtyHandback)
            on_core_structure = on_core_structure || e.core >= 0;
    }
    EXPECT_TRUE(on_core_structure);

    // The same run without the fault is clean: the edge is the bug's
    // signature, not checker noise.
    CheckedRun clean = runChecked(RunMode::CoreGapped);
    EXPECT_EQ(clean.edgeTotal, 0u);
}

TEST(CheckMustFire, MigrationScrubSkipFiresDirtyHandback)
{
    // The acceptance oracle for scrub-verified teardown: skipping the
    // source-core scrub on a migration handback MUST be caught by the
    // checker as a dirty-handback edge. The first scrub-skip query in
    // this scenario is the migration's (the VM never rebinds and is
    // terminated only later), so nth=1 pins the fault to the move.
    MigrationCheckedRun r = runMigrationChecked(
        "scrub-skip:nth=1", sim::FaultSite::ScrubSkip);
    EXPECT_EQ(r.result, cg::core::MigrateResult::Committed);
    EXPECT_GE(r.dirtyHandbackAfterMove, 1u);

    // The identical run without the fault is silent end to end: the
    // edge is the skipped scrub's signature, not migration noise.
    MigrationCheckedRun clean =
        runMigrationChecked("", sim::FaultSite::ScrubSkip);
    EXPECT_EQ(clean.result, cg::core::MigrateResult::Committed);
    EXPECT_EQ(clean.edgeTotal, 0u);
}

TEST(CheckMustFire, MigrationScrubVerifyRepairsTheSkippedScrub)
{
    // With verifyScrubs on, the same injection is audited, repaired,
    // and counted — and the checker stays silent.
    MigrationCheckedRun r = runMigrationChecked(
        "scrub-skip:nth=1", sim::FaultSite::ScrubSkip,
        /*verify_scrubs=*/true);
    EXPECT_EQ(r.result, cg::core::MigrateResult::Committed);
    EXPECT_EQ(r.edgeTotal, 0u);
    EXPECT_GE(r.scrubRepairs, 1u);
    EXPECT_GE(r.detected, 1u);
    EXPECT_GE(r.recovered, 1u);
}

TEST(CheckMustFire, MigrationAbortInjectionIsDetectedAndRecovered)
{
    // Abort at the post-copy boundary: the retry commits, the fault is
    // detected and recovered, and no leak edge appears anywhere along
    // the rollback (undone copies are scrubbed with the rest).
    MigrationCheckedRun r = runMigrationChecked(
        "migration-abort:nth=2", sim::FaultSite::MigrationAbort);
    EXPECT_EQ(r.result, cg::core::MigrateResult::Committed);
    EXPECT_GE(r.aborted, 1u);
    EXPECT_GE(r.detected, 1u);
    EXPECT_GE(r.recovered, 1u);
    EXPECT_EQ(r.edgeTotal, 0u);
}

TEST(CheckMustFire, RttCopyStallInjectionIsDetectedAndRecovered)
{
    MigrationCheckedRun r = runMigrationChecked(
        "rtt-copy-stall:nth=1", sim::FaultSite::RttCopyStall);
    EXPECT_EQ(r.result, cg::core::MigrateResult::Committed);
    EXPECT_GE(r.stalls, 1u);
    EXPECT_GE(r.detected, 1u);
    EXPECT_GE(r.recovered, 1u);
    EXPECT_EQ(r.edgeTotal, 0u);
}

TEST(CheckMustFire, RequestPlumbingBuildsACheckerPerTestbed)
{
    // The --check flag path: CheckRequest makes every Testbed build
    // and attach its own checker.
    check::CheckRequest::configure(/*abort_on_leak=*/false);
    {
        Testbed::Config cfg;
        cfg.numCores = 4;
        cfg.mode = RunMode::CoreGapped;
        Testbed bed(cfg);
        ASSERT_NE(bed.checker(), nullptr);
        EXPECT_EQ(bed.machine().checker(), bed.checker());
    }
    check::CheckRequest::reset();
    {
        Testbed::Config cfg;
        cfg.numCores = 4;
        Testbed bed(cfg);
        EXPECT_EQ(bed.checker(), nullptr);
    }
}
