/**
 * @file
 * Unit tests for check::IsolationChecker: leak-edge detection per
 * kind, scrub/eviction clearing residency state, self-observation and
 * shared-structure exemptions, report contents, dedup, abort mode,
 * the TaggedStructure binding, and the invalid-domain asserts.
 */

#include <gtest/gtest.h>

#include "check/checker.hh"
#include "hw/machine.hh"
#include "hw/uarch.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"
#include "sim/stat_registry.hh"

namespace sim = cg::sim;
namespace hw = cg::hw;
namespace check = cg::check;
using check::IsolationChecker;
using check::LeakKind;

namespace {

constexpr sim::DomainId vmA = sim::firstVmDomain;
constexpr sim::DomainId vmB = sim::firstVmDomain + 1;

struct CheckerFixture {
    sim::EventQueue q;
    IsolationChecker chk;
    int sid;

    explicit CheckerFixture(IsolationChecker::Config cfg = {})
        : chk(q, cfg), sid(chk.registerStructure("core0.l1d", 0))
    {}
};

} // namespace

TEST(Checker, ProbeOfRealmResidueByAnotherDomainIsALeakEdge)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    // Default occupant is the host: a host probe observes the residue.
    f.chk.onProbe(f.sid, vmA, 10);
    ASSERT_EQ(f.chk.edgeTotal(), 1u);
    EXPECT_EQ(f.chk.edgeCount(LeakKind::ProbeResidue), 1u);
    const check::LeakEdge& e = f.chk.edges().at(0);
    EXPECT_EQ(e.kind, LeakKind::ProbeResidue);
    EXPECT_EQ(e.structure, "core0.l1d");
    EXPECT_EQ(e.core, 0);
    EXPECT_EQ(e.victim, vmA);
    EXPECT_EQ(e.observer, sim::hostDomain);
}

TEST(Checker, ScrubBetweenTouchAndProbeClearsTheEdge)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onFlushDomain(f.sid, vmA);
    f.chk.onProbe(f.sid, vmA, 0);
    EXPECT_EQ(f.chk.edgeTotal(), 0u);

    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onFlushAll(f.sid);
    f.chk.onProbe(f.sid, vmA, 0);
    EXPECT_EQ(f.chk.edgeTotal(), 0u);
}

TEST(Checker, EvictionToZeroClearsResidency)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onEvict(f.sid, vmA);
    f.chk.onProbe(f.sid, vmA, 0);
    f.chk.onRecEnter(0, vmB);
    f.chk.onNormalWorldReturn(0);
    EXPECT_EQ(f.chk.edgeTotal(), 0u);
}

TEST(Checker, SelfObservationIsBenign)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onOccupant(0, vmA);
    f.chk.onProbe(f.sid, vmA, 10);
    EXPECT_EQ(f.chk.edgeTotal(), 0u);
}

TEST(Checker, HostAndMonitorResidueAreNotConfidential)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, sim::hostDomain, 10);
    f.chk.onTouch(f.sid, sim::monitorDomain, 10);
    f.chk.onProbe(f.sid, sim::hostDomain, 10);
    f.chk.onProbe(f.sid, sim::monitorDomain, 10);
    f.chk.onRecEnter(0, vmA);
    f.chk.onNormalWorldReturn(0);
    EXPECT_EQ(f.chk.edgeTotal(), 0u);
}

TEST(Checker, SharedStructuresAreOutOfScope)
{
    sim::EventQueue q;
    IsolationChecker chk(q);
    const int llc = chk.registerStructure("llc", sim::invalidCore);
    chk.onTouch(llc, vmA, 100);
    chk.onProbe(llc, vmA, 100);
    chk.onProbeForeign(llc, vmB, 100);
    EXPECT_EQ(chk.edgeTotal(), 0u);
    EXPECT_EQ(chk.eventCount(), 3u);
}

TEST(Checker, DirtyEnterFlagsAnotherRealmsResidue)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onRecEnter(0, vmA); // same realm: benign
    EXPECT_EQ(f.chk.edgeTotal(), 0u);
    f.chk.onRecEnter(0, vmB); // different realm: dirty enter
    ASSERT_EQ(f.chk.edgeTotal(), 1u);
    EXPECT_EQ(f.chk.edgeCount(LeakKind::DirtyEnter), 1u);
    EXPECT_EQ(f.chk.edges().at(0).observer, vmB);
    EXPECT_EQ(f.chk.edges().at(0).victim, vmA);
}

TEST(Checker, DirtyHandbackFiresOncePerResidue)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onNormalWorldReturn(0);
    f.chk.onNormalWorldReturn(0); // same residue: deduplicated
    f.chk.onHotplug(0, /*offline=*/false);
    EXPECT_EQ(f.chk.edgeCount(LeakKind::DirtyHandback), 1u);
    // A fresh touch re-arms the report.
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onNormalWorldReturn(0);
    EXPECT_EQ(f.chk.edgeCount(LeakKind::DirtyHandback), 2u);
}

TEST(Checker, ForeignProbeFlagsEveryOtherResidentRealm)
{
    CheckerFixture f;
    f.chk.onTouch(f.sid, vmA, 10);
    f.chk.onTouch(f.sid, vmB, 10);
    f.chk.onProbeForeign(f.sid, vmB, 10);
    ASSERT_EQ(f.chk.edgeTotal(), 1u);
    EXPECT_EQ(f.chk.edges().at(0).victim, vmA);
    EXPECT_EQ(f.chk.edges().at(0).observer, vmB);
}

TEST(Checker, ZeroCountProbesAreBenign)
{
    CheckerFixture f;
    f.chk.onProbe(f.sid, vmA, 0);
    f.chk.onProbeForeign(f.sid, vmB, 0);
    EXPECT_EQ(f.chk.edgeTotal(), 0u);
    EXPECT_EQ(f.chk.eventCount(), 2u);
}

TEST(Checker, EdgeRecordsTicksAndEventWindow)
{
    sim::EventQueue q;
    IsolationChecker chk(q);
    const int sid = chk.registerStructure("core0.tlb", 0);
    chk.onTouch(sid, vmA, 10);
    const sim::Tick touch_at = q.now();
    chk.onOccupant(0, sim::hostDomain); // 1 intervening event
    chk.onFlushDomain(sid, vmB);        // 2 intervening events
    chk.onProbe(sid, vmA, 10);
    ASSERT_EQ(chk.edgeTotal(), 1u);
    const check::LeakEdge& e = chk.edges().at(0);
    EXPECT_EQ(e.touchTick, touch_at);
    EXPECT_EQ(e.leakTick, q.now());
    EXPECT_EQ(e.eventsBetween, 2u);
    EXPECT_NE(chk.dumpText().find("probe-residue"), std::string::npos);
    EXPECT_NE(chk.dumpText().find("core0.tlb"), std::string::npos);
}

TEST(Checker, StoredEdgesAreCappedButCountersAreExact)
{
    sim::EventQueue q;
    IsolationChecker::Config cfg;
    cfg.maxStoredEdges = 2;
    IsolationChecker chk(q, cfg);
    const int sid = chk.registerStructure("core0.l1d", 0);
    chk.onTouch(sid, vmA, 10);
    for (int i = 0; i < 5; ++i)
        chk.onProbe(sid, vmA, 10);
    EXPECT_EQ(chk.edgeTotal(), 5u);
    EXPECT_EQ(chk.edges().size(), 2u);
}

TEST(Checker, RegisterStatsExposesCheckNamespace)
{
    // The registry must outlive the checker's StatGroup (groups
    // deregister on destruction), as it does in Simulation.
    sim::StatRegistry reg;
    CheckerFixture f;
    f.chk.registerStats(reg);
    EXPECT_TRUE(reg.has("check.events"));
    EXPECT_TRUE(reg.has("check.probes"));
    EXPECT_TRUE(reg.has("check.leakEdges.total"));
    EXPECT_TRUE(reg.has("check.leakEdges.probe-residue"));
    EXPECT_TRUE(reg.has("check.leakEdges.dirty-enter"));
    EXPECT_TRUE(reg.has("check.leakEdges.dirty-handback"));
}

TEST(CheckerDeathTest, AbortOnLeakPanics)
{
    sim::EventQueue q;
    IsolationChecker::Config cfg;
    cfg.abortOnLeak = true;
    IsolationChecker chk(q, cfg);
    const int sid = chk.registerStructure("core0.l1d", 0);
    chk.onTouch(sid, vmA, 10);
    EXPECT_DEATH(chk.onProbe(sid, vmA, 10), "isolation leak edge");
}

// ------------------------------------------------ TaggedStructure glue

TEST(CheckerBinding, TaggedStructureReportsThroughTheChecker)
{
    sim::EventQueue q;
    IsolationChecker chk(q);
    hw::TaggedStructure s("l1d", 1024, 1);
    s.bindChecker(&chk, chk.registerStructure("core0.l1d", 0));

    s.touch(vmA, 100);
    EXPECT_EQ(s.entriesOf(vmA), 100u); // host-observed probe
    EXPECT_EQ(chk.edgeTotal(), 1u);

    s.flushDomain(vmA);
    EXPECT_EQ(s.entriesOf(vmA), 0u);
    EXPECT_EQ(chk.edgeTotal(), 1u); // scrubbed: no new edge

    // warmupCost is an internal read, not an attacker observation.
    const std::uint64_t probes_before = chk.eventCount();
    (void)s.warmupCost(vmA, 100);
    EXPECT_EQ(chk.eventCount(), probes_before);
}

TEST(CheckerBinding, EvictionToZeroIsReportedAsEvict)
{
    sim::EventQueue q;
    IsolationChecker chk(q);
    hw::TaggedStructure s("l1d", 100, 1);
    s.bindChecker(&chk, chk.registerStructure("core0.l1d", 0));
    s.touch(vmA, 40);
    // vmB's working set fills the structure; vmA is fully evicted.
    s.touch(vmB, 100);
    // The mirror must agree vmA's residue is gone: the handback flags
    // vmB (still resident, a real edge) but never the evicted vmA.
    chk.onNormalWorldReturn(0);
    EXPECT_EQ(chk.edgeCount(check::LeakKind::DirtyHandback), 1u);
    for (const auto& e : chk.edges())
        EXPECT_NE(e.victim, vmA);
}

TEST(CheckerBinding, UnboundStructureEmitsNothing)
{
    hw::TaggedStructure s("l1d", 1024, 1);
    s.touch(vmA, 100);
    EXPECT_EQ(s.entriesOf(vmA), 100u);
    EXPECT_EQ(s.foreignEntries(vmB), 100u);
    s.flushAll();
    EXPECT_EQ(s.used(), 0u);
}

TEST(CheckerBinding, MachineAttachRegistersEveryStructure)
{
    sim::Simulation s(1);
    hw::MachineConfig mcfg;
    mcfg.numCores = 2;
    hw::Machine m(s, mcfg);
    sim::EventQueue q;
    IsolationChecker chk(q);
    m.attachChecker(&chk);
    EXPECT_EQ(m.checker(), &chk);

    // Any structure on any core reports: touch + probe as the host.
    m.core(1).uarch().l1d.touch(vmA, 10);
    (void)m.core(1).uarch().l1d.entriesOf(vmA);
    EXPECT_EQ(chk.edgeTotal(), 1u);
    EXPECT_EQ(chk.edges().at(0).structure, "core1.l1d");

    // Shared structures are registered but never produce edges.
    m.shared().llc.touch(vmA, 10);
    (void)m.shared().llc.entriesOf(vmA);
    EXPECT_EQ(chk.edgeTotal(), 1u);

    m.attachChecker(nullptr);
    EXPECT_EQ(m.checker(), nullptr);
    m.core(1).uarch().l1d.touch(vmA, 10); // no dangling emission
}

// ------------------------------------- invalid-domain rejection (bugfix)

TEST(UarchDomainDeathTest, TouchRejectsInvalidDomain)
{
    hw::TaggedStructure s("l1d", 1024, 1);
    EXPECT_DEATH(s.touch(sim::invalidDomain, 10), "invalid domain");
}

TEST(UarchDomainDeathTest, FlushDomainRejectsInvalidDomain)
{
    hw::TaggedStructure s("l1d", 1024, 1);
    EXPECT_DEATH(s.flushDomain(sim::invalidDomain), "invalid domain");
}
