/**
 * @file
 * Chaos suite: deterministic fault plans swept over the full testbed.
 * Every injection site fires against a live core-gapped CVM and the
 * control plane must detect, recover, and preserve the DESIGN.md
 * invariants — especially I6 (hotplug round trips restore capacity),
 * I7 (the planner never leaks or over-commits reservations), I9
 * (a (seed, plan) pair replays bit-identically), and I10 (reclaimed
 * cores carry zero residue).
 *
 * The guest workload page-faults throughout its run so every fault
 * site stays hot: page-fault exits ring the doorbell (SGIs), their
 * handling goes through the sync-RPC queue (pokes) and the RMI
 * transport (delegate/map calls), and bring-up/teardown exercise
 * hotplug. Suites are named Chaos* so `ctest -R Chaos` runs exactly
 * this file (the scripts/ci.sh chaos smoke).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/gapped_vm.hh"
#include "core/migration.hh"
#include "core/planner.hh"
#include "core/rpc.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace hw = cg::hw;
namespace host = cg::host;
namespace guest = cg::guest;
namespace rmm = cg::rmm;
using namespace cg::workloads;
using cg::core::CorePlanner;
using cg::core::GappedVm;
using sim::Compute;
using sim::FaultPlan;
using sim::FaultSite;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

Proc<void>
teardownThenFlag(GappedVm& g, bool& done)
{
    co_await g.teardown();
    done = true;
}

Proc<void>
terminateThenFlag(GappedVm& g, bool& done)
{
    co_await g.terminate();
    done = true;
}

/**
 * The chaos workload: rounds of page faults plus compute, so exits,
 * doorbell rings, sync RPCs, and RMI calls keep flowing for the whole
 * run — every fault site gets queried many times.
 */
Proc<void>
faultingWorker(Testbed& bed, guest::VCpu& v, int idx, int rounds,
               std::uint64_t& completed)
{
    co_await bed.started().wait();
    for (int r = 0; r < rounds; ++r) {
        for (int p = 0; p < 3; ++p) {
            co_await v.pageFault(
                0x50000000ull +
                (static_cast<std::uint64_t>(idx) * 4096 +
                 static_cast<std::uint64_t>(r) * 3 +
                 static_cast<std::uint64_t>(p)) *
                    4096);
        }
        co_await Compute{2 * msec};
        ++completed;
    }
    co_await v.shutdown();
}

/** Never shuts down; keeps faulting so the monitor keeps waking. */
Proc<void>
endlessFaultingWork(Testbed& bed, guest::VCpu& v, int idx)
{
    co_await bed.started().wait();
    for (std::uint64_t i = 0;; ++i) {
        co_await v.pageFault(0x80000000ull +
                             (static_cast<std::uint64_t>(idx) * 512 +
                              i % 256) *
                                 4096);
        co_await Compute{3 * msec};
    }
}

/** One full run under a fault plan; everything a test may probe. */
struct ChaosRun {
    std::unique_ptr<Testbed> bed;
    VmInstance* vm = nullptr;
    std::vector<std::uint64_t> rounds;
    bool shutdown = false;
    bool torn = false;
};

/**
 * Run the chaos workload on a 3-vCPU core-gapped CVM with @p plan
 * armed, then tear the VM down. Completion doubles as the no-deadlock
 * check: an exit notification that recovery failed to rescue would
 * leave a vCPU thread blocked and the guest unfinished.
 */
ChaosRun
runChaosWorkload(const std::string& plan, std::uint64_t fault_seed,
                 std::uint64_t sim_seed)
{
    ChaosRun out;
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = sim_seed;
    out.bed = std::make_unique<Testbed>(cfg);
    Testbed& bed = *out.bed;
    if (!plan.empty())
        bed.sim().faults().arm(fault_seed, FaultPlan::parse(plan));
    out.vm = &bed.createVm("chaos", 4); // 3 vCPUs + 1 host core
    out.rounds.assign(3, 0);
    for (int i = 0; i < 3; ++i) {
        out.vm->vcpu(i).startGuest(
            "w", faultingWorker(bed, out.vm->vcpu(i), i, 24,
                                out.rounds[static_cast<size_t>(i)]));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 2 * sim::sec);
    out.shutdown = out.vm->kvm->shutdownGate().isOpen();
    if (out.shutdown) {
        bed.sim().spawn("teardown",
                        teardownThenFlag(*out.vm->gapped, out.torn));
        bed.run(bed.sim().now() + 1 * sim::sec);
    }
    return out;
}

struct SitePlan {
    const char* label;
    const char* plan;
    FaultSite site;
};

class ChaosSites : public ::testing::TestWithParam<SitePlan>
{
};

} // namespace

// --------------------------------------------------- per-site recovery

TEST_P(ChaosSites, InjectsAndWorkloadStillCompletes)
{
    const SitePlan& sp = GetParam();
    ChaosRun run = runChaosWorkload(sp.plan, 17, 5);
    sim::FaultPlan& faults = run.bed->sim().faults();
    // Recovery end-to-end: the guest finished its run and shut down
    // despite the injections (no deadlock, no lost progress).
    EXPECT_TRUE(run.shutdown) << sp.plan;
    ASSERT_TRUE(run.torn) << sp.plan;
    EXPECT_GE(faults.injected(sp.site), 1u) << sp.plan;
    for (std::uint64_t r : run.rounds)
        EXPECT_EQ(r, 24u);
    // Hotplug round trip restored every core to the host (I6)...
    for (sim::CoreId c : run.vm->guestCores) {
        EXPECT_TRUE(run.bed->kernel().isOnline(c)) << c;
        EXPECT_EQ(run.bed->machine().core(c).world(),
                  hw::World::Normal);
    }
    // ...and reclaimed cores carry no residue (I10).
    for (sim::CoreId c : run.vm->guestCores) {
        for (const hw::TaggedStructure* s :
             run.bed->machine().core(c).uarch().all()) {
            EXPECT_EQ(s->entriesOf(run.vm->vm->domain()), 0u)
                << "core " << c << " " << s->name();
            EXPECT_EQ(s->entriesOf(sim::monitorDomain), 0u)
                << "core " << c << " " << s->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, ChaosSites,
    ::testing::Values(
        SitePlan{"ipi_drop", "ipi-drop:nth=4:max=1",
                 FaultSite::IpiDrop},
        SitePlan{"ipi_delay", "ipi-delay:nth=7:param=20us:max=1",
                 FaultSite::IpiDelay},
        SitePlan{"doorbell_lost", "doorbell-lost:nth=3:max=1",
                 FaultSite::DoorbellLost},
        SitePlan{"syncrpc_stall", "syncrpc-stall:nth=5:max=1",
                 FaultSite::SyncRpcStall},
        SitePlan{"rmi_transient", "rmi-transient-error:nth=6:max=1",
                 FaultSite::RmiTransientError},
        SitePlan{"hotplug_offline", "hotplug-offline-fail:nth=1:max=1",
                 FaultSite::HotplugOfflineFail},
        SitePlan{"hotplug_online", "hotplug-online-fail:nth=1:max=1",
                 FaultSite::HotplugOnlineFail}),
    [](const ::testing::TestParamInfo<SitePlan>& info) {
        return info.param.label;
    });

// ------------------------------------------------- every site at once

TEST(ChaosAllSites, FullTestbedSurvivesEverySiteInjected)
{
    // Everything except monitor-hang rides on one run; monitor-hang is
    // separate (ChaosMonitorHang) because only terminate() recovers it.
    ChaosRun run = runChaosWorkload(
        "ipi-drop:nth=5:max=1;"
        "ipi-delay:nth=9:param=10us:max=1;"
        "doorbell-lost:nth=3:max=1;"
        "syncrpc-stall:nth=3:max=1;"
        "rmi-transient-error:nth=2:max=1;"
        "hotplug-offline-fail:nth=1:max=1;"
        "hotplug-online-fail:nth=1:max=1",
        23, 9);
    sim::FaultPlan& faults = run.bed->sim().faults();
    EXPECT_TRUE(run.shutdown);
    ASSERT_TRUE(run.torn);
    for (const FaultSite s :
         {FaultSite::IpiDrop, FaultSite::IpiDelay,
          FaultSite::DoorbellLost, FaultSite::SyncRpcStall,
          FaultSite::RmiTransientError, FaultSite::HotplugOfflineFail,
          FaultSite::HotplugOnlineFail}) {
        EXPECT_GE(faults.injected(s), 1u) << sim::faultSiteName(s);
    }
    for (std::uint64_t r : run.rounds)
        EXPECT_EQ(r, 24u);
    for (sim::CoreId c : run.vm->guestCores)
        EXPECT_TRUE(run.bed->kernel().isOnline(c)) << c;
}

// --------------------------------------------------------- determinism

TEST(ChaosDeterminism, SameSeedAndPlanReplayIdentically)
{
    // Invariant I9 extended: (simulation seed, fault seed, plan) fully
    // determines the run, probabilistic triggers included.
    const char* plan =
        "ipi-drop:p=0.05:max=4;"
        "syncrpc-stall:p=0.1:max=3;"
        "rmi-transient-error:p=0.1:max=3;"
        "doorbell-lost:p=0.1:max=2";
    ChaosRun a = runChaosWorkload(plan, 31, 13);
    ChaosRun b = runChaosWorkload(plan, 31, 13);
    ASSERT_TRUE(a.shutdown);
    ASSERT_TRUE(b.shutdown);
    EXPECT_EQ(a.rounds, b.rounds);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(a.vm->vcpu(i).guestCpuTime,
                  b.vm->vcpu(i).guestCpuTime)
            << "vcpu " << i;
    }
    for (int i = 0; i < sim::numFaultSites; ++i) {
        const auto s = static_cast<FaultSite>(i);
        EXPECT_EQ(a.bed->sim().faults().injected(s),
                  b.bed->sim().faults().injected(s))
            << sim::faultSiteName(s);
        EXPECT_EQ(a.bed->sim().faults().occurrences(s),
                  b.bed->sim().faults().occurrences(s))
            << sim::faultSiteName(s);
    }
    EXPECT_EQ(a.bed->sim().stats().dumpText(),
              b.bed->sim().stats().dumpText());
}

// ----------------------------------------------- monitor-hang reclaim

TEST(ChaosMonitorHang, TerminateReclaimsTheStuckCore)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = 3;
    Testbed bed(cfg);
    bed.sim().faults().arm(
        5, FaultPlan::parse("monitor-hang:from=20ms:max=1"));
    VmInstance& vm = bed.createVm("wedged", 3); // 2 vCPUs
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest("w",
                              endlessFaultingWork(bed, vm.vcpu(i), i));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 100 * msec);
    ASSERT_GE(bed.sim().faults().injected(FaultSite::MonitorHang), 1u);

    bool done = false;
    bed.sim().spawn("killer", terminateThenFlag(*vm.gapped, done));
    bed.run(bed.sim().now() + 5 * sim::sec);
    // terminate() must not deadlock on the hung monitor: it escalates
    // after the park deadline, force-stops the REC, and tears down.
    ASSERT_TRUE(done);
    EXPECT_GE(vm.gapped->hangReclaims(), 1u);
    EXPECT_EQ(bed.rmm().realm(vm.kvm->realmId()), nullptr);
    for (sim::CoreId c : vm.guestCores) {
        // The reclaimed core is back, usable (I6), and scrubbed (I10).
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
        EXPECT_EQ(bed.machine().core(c).world(), hw::World::Normal);
        EXPECT_EQ(bed.rmm().dedicatedOwner(c), -1);
        for (const hw::TaggedStructure* s :
             bed.machine().core(c).uarch().all()) {
            EXPECT_EQ(s->entriesOf(vm.vm->domain()), 0u)
                << "core " << c << " " << s->name();
            EXPECT_EQ(s->entriesOf(sim::monitorDomain), 0u)
                << "core " << c << " " << s->name();
        }
    }
    EXPECT_GE(bed.sim()
                  .faults()
                  .recoveryLatency(FaultSite::MonitorHang)
                  .count(),
              1u);
}

// ------------------------------------------- planner reservations (I7)

namespace {

Proc<void>
computeAndShutdown(Testbed& bed, guest::VCpu& v, Tick work)
{
    co_await bed.started().wait();
    co_await Compute{work};
    co_await v.shutdown();
}

} // namespace

TEST(ChaosPlanner, FailedStartReleasesEveryReservation)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    // Both the offline attempt and its retry fail: start() rolls back.
    bed.sim().faults().arm(
        1, FaultPlan::parse("hotplug-offline-fail:max=2"));
    CorePlanner planner(bed.machine(), host::CpuMask::firstN(2));
    auto cores = planner.reserve(2);
    ASSERT_TRUE(cores.has_value());
    guest::VmConfig vcfg;
    VmInstance& vm = bed.createVmOn("doomed", *cores,
                                    host::CpuMask::single(0), 2, vcfg,
                                    &planner);
    bed.spawnStart();
    bed.run(bed.sim().now() + 5 * sim::sec);
    EXPECT_EQ(bed.startFailures(), 1);
    EXPECT_FALSE(vm.kvm->shutdownGate().isOpen());
    // No leaked reservation (I7) and no leaked core: everything the
    // failed bring-up took is back with the host.
    EXPECT_EQ(planner.reservedCores(), 0);
    for (sim::CoreId c : *cores)
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
}

TEST(ChaosPlanner, TeardownReleasesAfterOnlineRetry)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    // The first online attempt at teardown fails; the retry succeeds.
    bed.sim().faults().arm(
        1, FaultPlan::parse("hotplug-online-fail:nth=1:max=1"));
    CorePlanner planner(bed.machine(), host::CpuMask::firstN(2));
    auto cores = planner.reserve(2);
    ASSERT_TRUE(cores.has_value());
    VmInstance& vm = bed.createVmOn("vm", *cores,
                                    host::CpuMask::single(0), 2, {},
                                    &planner);
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest(
            "w", computeAndShutdown(bed, vm.vcpu(i), 20 * msec));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(vm.kvm->shutdownGate().isOpen());
    bool torn = false;
    bed.sim().spawn("teardown", teardownThenFlag(*vm.gapped, torn));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(torn);
    EXPECT_GE(bed.sim().faults().injected(FaultSite::HotplugOnlineFail),
              1u);
    EXPECT_EQ(vm.gapped->coresLost(), 0u);
    EXPECT_EQ(planner.reservedCores(), 0);
    for (sim::CoreId c : *cores)
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
}

TEST(ChaosPlanner, LostCoreStaysQuarantined)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    // One core's online attempt AND its retry both fail: the core is
    // lost and must stay reserved, so the planner never hands out an
    // offline core (I7).
    bed.sim().faults().arm(
        1, FaultPlan::parse("hotplug-online-fail:max=2"));
    CorePlanner planner(bed.machine(), host::CpuMask::firstN(2));
    auto cores = planner.reserve(2);
    ASSERT_TRUE(cores.has_value());
    VmInstance& vm = bed.createVmOn("vm", *cores,
                                    host::CpuMask::single(0), 2, {},
                                    &planner);
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest(
            "w", computeAndShutdown(bed, vm.vcpu(i), 20 * msec));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(vm.kvm->shutdownGate().isOpen());
    bool torn = false;
    bed.sim().spawn("teardown", teardownThenFlag(*vm.gapped, torn));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(torn);
    ASSERT_EQ(vm.gapped->coresLost(), 1u);
    sim::CoreId lost = sim::invalidCore;
    for (sim::CoreId c : *cores) {
        if (!bed.kernel().isOnline(c))
            lost = c;
    }
    ASSERT_NE(lost, sim::invalidCore);
    EXPECT_TRUE(planner.isReserved(lost));
    EXPECT_EQ(planner.reservedCores(), 1);
    // Whatever the planner can still hand out excludes the lost core.
    while (auto more = planner.reserve(1))
        EXPECT_NE((*more)[0], lost);
}

// ----------------------------------------------- hotplug property (I6)

namespace {

Proc<void>
hotplugCycles(host::Kernel& k, int rounds, int& completed, bool& done)
{
    for (int i = 0; i < rounds; ++i) {
        bool off = co_await k.offlineCore(2);
        if (!off)
            off = co_await k.offlineCore(2); // one retry, like GappedVm
        if (off) {
            while (!co_await k.onlineCore(2)) {
            }
        }
        // Round trip done: capacity is restored either way (I6).
        EXPECT_TRUE(k.isOnline(2)) << "round " << i;
        ++completed;
    }
    done = true;
}

} // namespace

TEST(ChaosHotplug, RoundTripRestoresCapacityUnderRepeatedFailures)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    bed.sim().faults().arm(9, FaultPlan::parse(
        "hotplug-offline-fail:p=0.3:max=0;"
        "hotplug-online-fail:p=0.3:max=0"));
    int completed = 0;
    bool done = false;
    bed.sim().spawn("cycler",
                    hotplugCycles(bed.kernel(), 40, completed, done));
    bed.run(bed.sim().now() + 30 * sim::sec);
    ASSERT_TRUE(done) << "hotplug cycling wedged";
    EXPECT_EQ(completed, 40);
    EXPECT_EQ(bed.kernel().onlineCount(), 4);
    EXPECT_GE(
        bed.sim().faults().injected(FaultSite::HotplugOfflineFail) +
            bed.sim().faults().injected(FaultSite::HotplugOnlineFail),
        1u);
}

// ------------------------------------- suspend / fault / resume

namespace {

Proc<void>
suspendThenFlag(GappedVm& g, bool& done)
{
    co_await g.suspend();
    done = true;
}

} // namespace

TEST(ChaosSuspend, FaultsAcrossSuspendResumeDoNotWedgeTheVm)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = 11;
    Testbed bed(cfg);
    // One fault lands before the suspend, two after the resume
    // (windowed), interleaving recovery with the lifecycle ops.
    bed.sim().faults().arm(7, FaultPlan::parse(
        "doorbell-lost:nth=2:max=1;"
        "syncrpc-stall:from=100ms:max=1;"
        "ipi-drop:from=100ms:max=1"));
    VmInstance& vm = bed.createVm("yoyo", 3); // 2 vCPUs
    std::vector<std::uint64_t> rounds(2, 0);
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest(
            "w", faultingWorker(bed, vm.vcpu(i), i, 40,
                                rounds[static_cast<size_t>(i)]));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 40 * msec);
    ASSERT_FALSE(bed.allShutdown());

    bool suspended = false;
    bed.sim().spawn("suspender",
                    suspendThenFlag(*vm.gapped, suspended));
    bed.run(bed.sim().now() + 20 * msec);
    ASSERT_TRUE(suspended);
    ASSERT_TRUE(vm.gapped->suspended());
    bed.run(bed.sim().now() + 30 * msec);
    vm.gapped->resume();

    bed.run(bed.sim().now() + 5 * sim::sec);
    // The guests finished their work and shut down cleanly despite
    // the faults bracketing the suspension.
    EXPECT_TRUE(bed.allShutdown());
    for (std::uint64_t r : rounds)
        EXPECT_EQ(r, 40u);
    EXPECT_GE(bed.sim().faults().injected(FaultSite::DoorbellLost), 1u);
    EXPECT_GE(bed.sim().faults().injected(FaultSite::SyncRpcStall), 1u);
    bool torn = false;
    bed.sim().spawn("teardown", teardownThenFlag(*vm.gapped, torn));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(torn);
    for (sim::CoreId c : vm.guestCores)
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
}

// --------------------------------------------------- sync-RPC timeout

namespace {

Proc<void>
callOnce(GappedVm& g, rmm::RmiStatus& status, bool& done)
{
    status = co_await g.syncRpc().call(
        [] { return rmm::RmiStatus::Success; });
    done = true;
}

} // namespace

TEST(ChaosRpc, UnservicedCallTimesOutInsteadOfSpinningForever)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    bed.sim().faults().arm(1); // bounded waits; no injections needed
    VmInstance& vm = bed.createVm("mute", 3);
    // The VM is never started: no monitor loop will ever pick the
    // call up, which models a monitor that stopped polling.
    rmm::RmiStatus status = rmm::RmiStatus::Success;
    bool done = false;
    bed.kernel().createThread("caller",
                              callOnce(*vm.gapped, status, done),
                              host::SchedClass::Fair,
                              host::CpuMask::single(0));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(done) << "bounded busy-wait never gave up";
    EXPECT_EQ(status, rmm::RmiStatus::Timeout);
}

// ------------------------------------- hotplug racing a live migration

namespace {

Proc<void>
migrateThenFlag(Testbed& bed, cg::core::MigrationController& ctrl,
                std::vector<sim::CoreId> dest,
                cg::core::MigrateResult& out)
{
    co_await bed.started().wait();
    co_await sim::Delay{30 * msec};
    out = co_await ctrl.migrateTo(std::move(dest));
}

} // namespace

TEST(ChaosMigration, HotplugFailuresRacingTheMoveStillRecover)
{
    // A migration both offlines cores (taking the destination pool)
    // and onlines them (handing the source pool back). Failing each
    // once, mid-flight, must be absorbed by the controller's single
    // retry: the move commits and no core is lost or left offline.
    // The window starts after bring-up so the injections land on the
    // migration's hotplug calls, not the VM's.
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = 21;
    Testbed bed(cfg);
    bed.sim().faults().arm(13, FaultPlan::parse(
        "hotplug-offline-fail:from=25ms:nth=1:max=1;"
        "hotplug-online-fail:from=25ms:nth=1:max=1"));
    VmInstance& vm = bed.createVm("mover", 3); // host 0, guests {1,2}
    std::vector<std::uint64_t> rounds(2, 0);
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest(
            "w", faultingWorker(bed, vm.vcpu(i), i, 24,
                                rounds[static_cast<size_t>(i)]));
    }
    bed.spawnStart();

    cg::core::MigrationController ctrl(*vm.gapped, nullptr);
    auto result = cg::core::MigrateResult::Refused;
    bed.sim().spawn("migrate",
                    migrateThenFlag(bed, ctrl, {3, 4}, result));
    bed.run(bed.sim().now() + 5 * sim::sec);

    EXPECT_EQ(result, cg::core::MigrateResult::Committed);
    EXPECT_GE(bed.sim().faults().injected(FaultSite::HotplugOfflineFail) +
                  bed.sim().faults().injected(FaultSite::HotplugOnlineFail),
              1u);
    EXPECT_TRUE(bed.allShutdown());
    for (std::uint64_t r : rounds)
        EXPECT_EQ(r, 24u);
    EXPECT_EQ(vm.gapped->coresLost(), 0u);
    // Source pool back with the host, destination pool dedicated.
    for (sim::CoreId c : {1, 2})
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
    for (sim::CoreId c : {3, 4}) {
        EXPECT_FALSE(bed.kernel().isOnline(c)) << c;
        EXPECT_EQ(bed.rmm().dedicatedOwner(c), vm.kvm->realmId()) << c;
    }

    bool torn = false;
    bed.sim().spawn("teardown", teardownThenFlag(*vm.gapped, torn));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(torn);
    for (sim::CoreId c : {1, 2, 3, 4}) {
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
        EXPECT_EQ(bed.machine().core(c).world(), hw::World::Normal);
    }
}

// ------------------------------------------------ state-machine guards

TEST(ChaosGuards, RunSlotDoublePostDies)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 1;
    hw::Machine m(s, mcfg);
    sim::Notify poke;
    cg::core::RunSlot slot(m, poke);
    slot.post({});
    EXPECT_DEATH(slot.post({}), "only Idle may post");
}

TEST(ChaosGuards, RunSlotPublishWithoutRunDies)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 1;
    hw::Machine m(s, mcfg);
    sim::Notify poke;
    cg::core::RunSlot slot(m, poke);
    EXPECT_DEATH(slot.publish({}), "only a Running slot");
}
