/**
 * @file
 * Property-based and parameterized sweeps over the whole stack:
 * DESIGN.md's invariants checked across configurations and random
 * operation sequences (TEST_P / INSTANTIATE_TEST_SUITE_P).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "attacks/lab.hh"
#include "rmm/granule.hh"
#include "rmm/rtt.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
namespace rmm = cg::rmm;
namespace hw = cg::hw;
using namespace cg::workloads;
using sim::Tick;
using sim::msec;

// ------------------------------------------------------- per-mode sweeps

namespace {

struct ModeCase {
    RunMode mode;
};

class AllModes : public ::testing::TestWithParam<ModeCase>
{
};

CoreMarkPro::Result
runCoreMark(RunMode mode, std::uint64_t seed, Testbed** out_bed,
            Tick duration = 250 * msec)
{
    static std::unique_ptr<Testbed> keeper;
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = mode;
    cfg.seed = seed;
    keeper = std::make_unique<Testbed>(cfg);
    Testbed& bed = *keeper;
    VmInstance& vm = bed.createVm("cm", 4);
    CoreMarkPro::Config wcfg;
    wcfg.duration = duration;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    bed.spawnStart();
    bed.run(duration + 3 * sim::sec);
    if (out_bed)
        *out_bed = &bed;
    return cm.result();
}

} // namespace

TEST_P(AllModes, WorkloadCompletesAndScoresSanely)
{
    Testbed* bed = nullptr;
    CoreMarkPro::Result r = runCoreMark(GetParam().mode, 1, &bed);
    ASSERT_NE(bed, nullptr);
    EXPECT_TRUE(bed->allShutdown()) << runModeName(GetParam().mode);
    EXPECT_GT(r.score, 0.0);
    // Score bounded by the hardware: at most vCPUs/iterationWork.
    const int vcpus = bed->vmAt(0).numVcpus();
    const double upper = static_cast<double>(vcpus) / 250e-6;
    EXPECT_LE(r.score, upper * 1.01);
}

TEST_P(AllModes, DeterministicAcrossReplays)
{
    // Invariant I9: identical seed => identical simulation.
    CoreMarkPro::Result a = runCoreMark(GetParam().mode, 7, nullptr);
    CoreMarkPro::Result b = runCoreMark(GetParam().mode, 7, nullptr);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST_P(AllModes, ExitAccountingIsConsistent)
{
    Testbed* bed = nullptr;
    runCoreMark(GetParam().mode, 3, &bed);
    auto& kvm = *bed->vmAt(0).kvm;
    EXPECT_LE(kvm.stats().irqRelatedExits.value(),
              kvm.stats().exits.value());
    if (GetParam().mode != RunMode::SharedCore) {
        EXPECT_LE(bed->rmm().stats().irqRelatedExitsToHost.value(),
                  bed->rmm().stats().exitsToHost.value());
    }
}

TEST_P(AllModes, GappedModesNeverRunGuestOffItsBoundCore)
{
    const RunMode mode = GetParam().mode;
    if (!isGapped(mode))
        GTEST_SKIP() << "binding only enforced when core-gapped";
    // Invariant I1, probed from outside: after the run, every REC's
    // binding matches the configured dedicated core and no dispatch
    // was ever rejected (the runner always used the right core).
    Testbed* bed = nullptr;
    runCoreMark(mode, 5, &bed);
    VmInstance& vm = bed->vmAt(0);
    for (int i = 0; i < vm.numVcpus(); ++i) {
        EXPECT_EQ(bed->rmm().recBinding(vm.kvm->realmId(), i),
                  vm.guestCores[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(bed->rmm().stats().wrongCoreRejections.value(), 0u);
    // And the dispatch check rejects every other core (WrongCore
    // while bound; BadState once the REC has stopped — never Success).
    for (sim::CoreId c = 0; c < bed->machine().numCores(); ++c) {
        if (c == vm.guestCores[0])
            continue;
        EXPECT_NE(bed->rmm().recEnterCheck(vm.kvm->realmId(), 0, c),
                  rmm::RmiStatus::Success)
            << "core " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AllModes,
    ::testing::Values(ModeCase{RunMode::SharedCore},
                      ModeCase{RunMode::SharedCoreCvm},
                      ModeCase{RunMode::CoreGapped},
                      ModeCase{RunMode::CoreGappedBusyWait},
                      ModeCase{RunMode::CoreGappedNoDelegation}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
        std::string n = runModeName(info.param.mode);
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ------------------------------------------------------ leakage property

namespace {

class GappedModes : public ::testing::TestWithParam<ModeCase>
{
};

} // namespace

TEST_P(GappedModes, NoSameCoreResidueEver)
{
    // Invariant I5 swept across every gapped variant: regardless of
    // delegation or polling strategy, an attacker VM observes zero
    // victim residue on per-core structures.
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = GetParam().mode;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.footprint = 800;
    VmInstance& victim = bed.createVm("victim", 3, vcfg);
    VmInstance& attacker = bed.createVm("attacker", 3, vcfg);
    CoreMarkPro::Config wcfg;
    wcfg.duration = 150 * msec;
    CoreMarkPro work(bed, victim, wcfg);
    work.install();
    cg::attacks::AttackLab::Config acfg;
    acfg.duration = 150 * msec;
    cg::attacks::AttackLab lab(bed, attacker, victim.vm->domain(),
                               acfg);
    lab.install();
    bed.spawnStart();
    bed.run(5 * sim::sec);
    EXPECT_FALSE(lab.report().anySameCoreLeak());
    EXPECT_GT(lab.report().at(cg::attacks::Channel::L1d).probes, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Gapped, GappedModes,
    ::testing::Values(ModeCase{RunMode::CoreGapped},
                      ModeCase{RunMode::CoreGappedBusyWait},
                      ModeCase{RunMode::CoreGappedNoDelegation}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
        std::string n = runModeName(info.param.mode);
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ------------------------------------------------------- granule fuzzing

namespace {

class GranuleFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(GranuleFuzz, StateMachineInvariantsUnderRandomOps)
{
    sim::Rng rng(GetParam());
    rmm::GranuleTracker g;
    // Shadow model: what we believe each granule's state is.
    std::map<rmm::PhysAddr, rmm::GranuleState> shadow;
    const auto addr_of = [&rng] {
        return (rng.uniformInt(0, 63)) * rmm::granuleSize;
    };
    for (int step = 0; step < 5000; ++step) {
        const rmm::PhysAddr a = addr_of();
        const auto cur = shadow.count(a)
                             ? shadow[a]
                             : rmm::GranuleState::Undelegated;
        switch (rng.uniformInt(0, 3)) {
          case 0: {
            const auto s = g.delegate(a);
            if (cur == rmm::GranuleState::Undelegated) {
                ASSERT_EQ(s, rmm::RmiStatus::Success);
                shadow[a] = rmm::GranuleState::Delegated;
            } else {
                ASSERT_NE(s, rmm::RmiStatus::Success);
            }
            break;
          }
          case 1: {
            const auto s = g.undelegate(a);
            if (cur == rmm::GranuleState::Delegated) {
                ASSERT_EQ(s, rmm::RmiStatus::Success);
                shadow.erase(a);
            } else {
                ASSERT_NE(s, rmm::RmiStatus::Success);
            }
            break;
          }
          case 2: {
            const auto s = g.assign(a, rmm::GranuleState::Data, 1);
            if (cur == rmm::GranuleState::Delegated) {
                ASSERT_EQ(s, rmm::RmiStatus::Success);
                shadow[a] = rmm::GranuleState::Data;
            } else {
                ASSERT_NE(s, rmm::RmiStatus::Success);
            }
            break;
          }
          case 3: {
            const auto s =
                g.release(a, rmm::GranuleState::Data, 1);
            if (cur == rmm::GranuleState::Data) {
                ASSERT_EQ(s, rmm::RmiStatus::Success);
                shadow[a] = rmm::GranuleState::Delegated;
            } else {
                ASSERT_NE(s, rmm::RmiStatus::Success);
            }
            break;
          }
        }
        // Invariant I4 at every step: only undelegated granules are
        // host-accessible.
        ASSERT_EQ(g.hostAccessible(a),
                  g.stateOf(a) == rmm::GranuleState::Undelegated);
        ASSERT_EQ(g.stateOf(a), shadow.count(a)
                                    ? shadow[a]
                                    : rmm::GranuleState::Undelegated);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GranuleFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ----------------------------------------------------------- RTT fuzzing

namespace {

class RttFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(RttFuzz, TranslationMatchesShadowMap)
{
    sim::Rng rng(GetParam());
    rmm::Rtt rtt;
    std::map<rmm::Ipa, rmm::PhysAddr> shadow;
    rmm::PhysAddr next_granule = 0x1000000;
    const auto fresh = [&next_granule] {
        const rmm::PhysAddr g = next_granule;
        next_granule += rmm::granuleSize;
        return g;
    };
    for (int step = 0; step < 3000; ++step) {
        // Use a small IPA pool so map/unmap/table-sharing all happen.
        const rmm::Ipa ipa =
            rng.uniformInt(0, 127) * rmm::granuleSize +
            (rng.chance(0.3) ? (1ull << 30) : 0);
        if (rng.chance(0.6)) {
            // Try to map (building tables first, as a host would).
            while (!rtt.tablesComplete(ipa)) {
                ASSERT_EQ(rtt.createTable(ipa, rtt.walkLevel(ipa),
                                          fresh()),
                          rmm::RmiStatus::Success);
            }
            const auto s = rtt.mapPage(ipa, fresh());
            if (shadow.count(ipa)) {
                ASSERT_EQ(s, rmm::RmiStatus::BadState);
            } else {
                ASSERT_EQ(s, rmm::RmiStatus::Success);
                shadow[ipa] = *rtt.translate(ipa);
            }
        } else {
            const auto s = rtt.unmapPage(ipa);
            if (shadow.count(ipa)) {
                ASSERT_EQ(s, rmm::RmiStatus::Success);
                shadow.erase(ipa);
            } else {
                ASSERT_NE(s, rmm::RmiStatus::Success);
            }
        }
        ASSERT_EQ(rtt.mappedPages(), shadow.size());
    }
    for (const auto& [ipa, pa] : shadow) {
        auto t = rtt.translate(ipa);
        ASSERT_TRUE(t.has_value());
        ASSERT_EQ(*t, pa);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RttFuzz,
                         ::testing::Values(11u, 12u, 13u));

// ------------------------------------------------------ planner fuzzing

namespace {

class PlannerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(PlannerFuzz, NeverOvercommitsOrDoubleAllocates)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 32;
    mcfg.coresPerNumaNode = 16;
    hw::Machine machine(s, mcfg);
    cg::core::CorePlanner planner(machine, host::CpuMask::firstN(2));
    sim::Rng rng(GetParam());
    std::vector<std::vector<sim::CoreId>> live;
    int reserved_total = 0;
    for (int step = 0; step < 2000; ++step) {
        if (rng.chance(0.55) || live.empty()) {
            const int want = static_cast<int>(rng.uniformInt(1, 8));
            auto r = planner.reserve(want);
            if (want <= 30 - reserved_total) {
                ASSERT_TRUE(r.has_value()) << "step " << step;
            }
            if (r) {
                // Invariant I7: no host cores, no double allocation.
                for (sim::CoreId c : *r) {
                    ASSERT_GE(c, 2);
                    for (const auto& other : live) {
                        for (sim::CoreId oc : other)
                            ASSERT_NE(c, oc);
                    }
                }
                reserved_total += want;
                live.push_back(*r);
            } else {
                ASSERT_GT(want, 30 - reserved_total);
            }
        } else {
            const auto idx = rng.uniformInt(0, live.size() - 1);
            planner.release(live[idx]);
            reserved_total -= static_cast<int>(live[idx].size());
            live.erase(live.begin() + static_cast<long>(idx));
        }
        ASSERT_EQ(planner.reservedCores(), reserved_total);
        ASSERT_EQ(planner.freeCores(), 30 - reserved_total);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerFuzz,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ------------------------------------------------- uarch eviction fuzzing

namespace {

class UarchFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(UarchFuzz, TaggedStructureConservation)
{
    sim::Rng rng(GetParam());
    hw::TaggedStructure s("fuzz", 4096, 1 * sim::nsec);
    for (int step = 0; step < 20000; ++step) {
        const auto d =
            static_cast<sim::DomainId>(rng.uniformInt(0, 5));
        if (rng.chance(0.9)) {
            s.touch(d, rng.uniformInt(1, 6000));
        } else if (rng.chance(0.5)) {
            s.flushDomain(d);
        } else {
            s.flushAll();
        }
        // Occupancy conservation: the per-domain shares sum to used(),
        // which never exceeds capacity.
        std::size_t sum = 0;
        for (sim::DomainId dom = 0; dom <= 5; ++dom)
            sum += s.entriesOf(dom);
        ASSERT_EQ(sum, s.used());
        ASSERT_LE(s.used(), s.capacity());
        // foreignEntries is exactly used - own.
        ASSERT_EQ(s.foreignEntries(d), s.used() - s.entriesOf(d));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UarchFuzz,
                         ::testing::Values(31u, 32u, 33u));
