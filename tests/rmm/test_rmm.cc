/**
 * @file
 * Unit tests for the RMM: realm lifecycle, core-gapping binding
 * enforcement (invariants I1/I3), interrupt delegation, and
 * list-register filtering — driven through a scripted fake guest.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "rmm/rmm.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
using namespace cg::rmm;
using sim::Proc;
using sim::Tick;
using sim::usec;

namespace {

/** A guest whose exits follow a fixed script. */
struct FakeGuest : GuestContext {
    std::deque<ExitInfo> script;
    std::vector<hw::IntId> injected;
    hw::ListRegFile lrs;
    int runs = 0;

    Proc<ExitInfo>
    runUntilExit(sim::CoreId core) override
    {
        (void)core;
        ++runs;
        co_await sim::Delay{10 * usec};
        if (script.empty()) {
            ExitInfo off;
            off.reason = ExitReason::Shutdown;
            co_return off;
        }
        ExitInfo e = script.front();
        script.pop_front();
        co_return e;
    }

    bool
    injectVirq(hw::IntId id) override
    {
        injected.push_back(id);
        return lrs.inject(id);
    }

    void forceExit(ExitReason) override {}
    void completeMmio(std::uint64_t) override {}
    bool entered() const override { return false; }
    hw::ListRegFile& listRegs() override { return lrs; }

    ExitInfo
    exitOf(ExitReason r)
    {
        ExitInfo e;
        e.reason = r;
        return e;
    }
};

struct RmmFixture : ::testing::Test {
    sim::Simulation sim;
    hw::MachineConfig mcfg;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<Rmm> rmm;
    FakeGuest guest;
    int realm = -1;
    int rec = -1;
    PhysAddr nextGranule = 0x10000;

    void
    boot(RmmConfig cfg = {})
    {
        mcfg.numCores = 4;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        rmm = std::make_unique<Rmm>(*machine, cfg);
    }

    PhysAddr
    granule()
    {
        PhysAddr a = nextGranule;
        nextGranule += granuleSize;
        EXPECT_EQ(rmm->granuleDelegate(a), RmiStatus::Success);
        return a;
    }

    void
    makeRealm()
    {
        ASSERT_EQ(rmm->realmCreate(granule(), RealmParams{"t"}, realm),
                  RmiStatus::Success);
        ASSERT_EQ(rmm->recCreate(realm, granule(), rec),
                  RmiStatus::Success);
        rmm->setGuestContext(realm, rec, &guest);
        ASSERT_EQ(rmm->realmActivate(realm), RmiStatus::Success);
    }

    /** Run recEnter inside a process and capture the result. */
    RecRunResult
    enter(sim::CoreId core, RecEnterArgs args = {})
    {
        RecRunResult out;
        sim.spawn("enter", enterProc(*rmm, realm, rec, args, core, out));
        sim.run();
        return out;
    }

    static Proc<void>
    enterProc(Rmm& rmm, int realm, int rec, RecEnterArgs args,
              sim::CoreId core, RecRunResult& out)
    {
        out = co_await rmm.recEnter(realm, rec, args, core);
    }
};

} // namespace

TEST_F(RmmFixture, RealmLifecycle)
{
    boot();
    int id = -1;
    PhysAddr rd = granule();
    ASSERT_EQ(rmm->realmCreate(rd, RealmParams{"vm0"}, id),
              RmiStatus::Success);
    EXPECT_EQ(id, 0);
    Realm* r = rmm->realm(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->state, RealmState::New);
    EXPECT_GE(r->domain, sim::firstVmDomain);

    int rec0 = -1;
    ASSERT_EQ(rmm->recCreate(id, granule(), rec0), RmiStatus::Success);
    ASSERT_EQ(rmm->realmActivate(id), RmiStatus::Success);
    EXPECT_EQ(r->state, RealmState::Active);
    // No RECs or data after activation.
    int rec1 = -1;
    EXPECT_EQ(rmm->recCreate(id, granule(), rec1), RmiStatus::BadState);

    EXPECT_EQ(rmm->realmDestroy(id), RmiStatus::BadState); // REC alive
    EXPECT_EQ(rmm->recDestroy(id, rec0), RmiStatus::Success);
    EXPECT_EQ(rmm->realmDestroy(id), RmiStatus::Success);
    EXPECT_EQ(rmm->realm(id), nullptr);
    // All granules scrubbed back to Delegated.
    EXPECT_EQ(rmm->granules().countInState(GranuleState::Rd), 0u);
    EXPECT_EQ(rmm->granules().countInState(GranuleState::Rec), 0u);
}

TEST_F(RmmFixture, RealmCreateNeedsDelegatedGranule)
{
    boot();
    int id = -1;
    EXPECT_EQ(rmm->realmCreate(0x99000, RealmParams{}, id),
              RmiStatus::BadState);
}

TEST_F(RmmFixture, DataCreateExtendsMeasurementOnlyBeforeActivation)
{
    boot();
    int id = -1;
    ASSERT_EQ(rmm->realmCreate(granule(), RealmParams{"vm"}, id),
              RmiStatus::Success);
    Realm* r = rmm->realm(id);
    // Build RTT tables for IPA 0.
    for (int level = 1; level <= rttLeafLevel; ++level)
        ASSERT_EQ(rmm->rttCreate(id, 0, level, granule()),
                  RmiStatus::Success);
    const Digest before = r->measurement.rim();
    ASSERT_EQ(rmm->dataCreate(id, 0, granule(), 0xabcd),
              RmiStatus::Success);
    EXPECT_NE(r->measurement.rim(), before);
    ASSERT_EQ(rmm->realmActivate(id), RmiStatus::Success);
    // Post-activation population uses dataCreateUnknown, unmeasured.
    const Digest after_activate = r->measurement.rim();
    ASSERT_EQ(rmm->dataCreateUnknown(id, granuleSize, granule()),
              RmiStatus::Success);
    EXPECT_EQ(r->measurement.rim(), after_activate);
    EXPECT_EQ(rmm->dataCreate(id, 2 * granuleSize, granule(), 1),
              RmiStatus::BadState);
}

TEST_F(RmmFixture, AttestationBindsMeasurement)
{
    boot();
    makeRealm();
    AttestationToken t;
    ASSERT_EQ(rmm->attest(realm, 42, t), RmiStatus::Success);
    EXPECT_TRUE(rmm->authority().verify(t, 42));
    EXPECT_EQ(t.rim, rmm->realm(realm)->measurement.rim());
}

TEST_F(RmmFixture, RecEnterRunsGuestToFirstHostExit)
{
    boot();
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.status, RmiStatus::Success);
    EXPECT_EQ(res.exit.reason, ExitReason::Mmio);
    EXPECT_EQ(guest.runs, 1);
    EXPECT_EQ(rmm->stats().exitsToHost.value(), 1u);
}

TEST_F(RmmFixture, CoreGappingBindsRecToFirstCore)
{
    RmmConfig cfg;
    cfg.coreGapped = true;
    boot(cfg);
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecRunResult res = enter(2);
    ASSERT_EQ(res.status, RmiStatus::Success);
    EXPECT_EQ(rmm->recBinding(realm, rec), 2);
    EXPECT_EQ(rmm->dedicatedOwner(2), realm);

    // Invariant I1/I3: dispatch on any other core is rejected without
    // running the guest.
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    const int runs_before = guest.runs;
    res = enter(3);
    EXPECT_EQ(res.status, RmiStatus::WrongCore);
    EXPECT_EQ(guest.runs, runs_before);
    EXPECT_EQ(rmm->stats().wrongCoreRejections.value(), 1u);

    // The bound core still works.
    res = enter(2);
    EXPECT_EQ(res.status, RmiStatus::Success);
}

TEST_F(RmmFixture, CoreGappingRejectsSecondCvmOnDedicatedCore)
{
    RmmConfig cfg;
    cfg.coreGapped = true;
    boot(cfg);
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    ASSERT_EQ(enter(1).status, RmiStatus::Success);

    // A second realm tries to use core 1.
    FakeGuest guest2;
    int realm2 = -1, rec2 = -1;
    ASSERT_EQ(rmm->realmCreate(granule(), RealmParams{"evil"}, realm2),
              RmiStatus::Success);
    ASSERT_EQ(rmm->recCreate(realm2, granule(), rec2),
              RmiStatus::Success);
    rmm->setGuestContext(realm2, rec2, &guest2);
    ASSERT_EQ(rmm->realmActivate(realm2), RmiStatus::Success);
    EXPECT_EQ(rmm->recEnterCheck(realm2, rec2, 1), RmiStatus::WrongCore);
    EXPECT_EQ(rmm->recEnterCheck(realm2, rec2, 3), RmiStatus::Success);
}

TEST_F(RmmFixture, RecDestroyReleasesDedicatedCore)
{
    RmmConfig cfg;
    cfg.coreGapped = true;
    boot(cfg);
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    ASSERT_EQ(enter(1).status, RmiStatus::Success);
    ASSERT_EQ(rmm->dedicatedOwner(1), realm);
    ASSERT_EQ(rmm->recDestroy(realm, rec), RmiStatus::Success);
    EXPECT_EQ(rmm->dedicatedOwner(1), -1);
    EXPECT_EQ(rmm->recBinding(realm, rec), sim::invalidCore);
}

TEST_F(RmmFixture, DelegationHandlesTimerLocally)
{
    RmmConfig cfg;
    cfg.delegateInterrupts = true;
    boot(cfg);
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::TimerIrq));
    guest.script.push_back(guest.exitOf(ExitReason::TimerWrite));
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.exit.reason, ExitReason::Mmio);
    EXPECT_EQ(guest.runs, 3); // timer events consumed internally
    EXPECT_EQ(rmm->stats().exitsToHost.value(), 1u);
    EXPECT_EQ(rmm->stats().delegatedTimerEvents.value(), 2u);
    // The timer interrupt was injected directly by the RMM.
    ASSERT_EQ(guest.injected.size(), 1u);
    EXPECT_EQ(guest.injected[0], hw::vtimerPpi);
}

TEST_F(RmmFixture, WithoutDelegationTimerExitsToHost)
{
    boot();
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::TimerIrq));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.exit.reason, ExitReason::TimerIrq);
    EXPECT_EQ(rmm->stats().exitsToHost.value(), 1u);
    EXPECT_EQ(rmm->stats().irqRelatedExitsToHost.value(), 1u);
    EXPECT_EQ(rmm->stats().delegatedTimerEvents.value(), 0u);
}

TEST_F(RmmFixture, DelegatedVIpiInjectsIntoTargetRec)
{
    RmmConfig cfg;
    cfg.delegateInterrupts = true;
    boot(cfg);
    // Realm with two RECs, second backed by its own fake guest.
    ASSERT_EQ(rmm->realmCreate(granule(), RealmParams{"vm"}, realm),
              RmiStatus::Success);
    ASSERT_EQ(rmm->recCreate(realm, granule(), rec), RmiStatus::Success);
    int rec_b = -1;
    ASSERT_EQ(rmm->recCreate(realm, granule(), rec_b),
              RmiStatus::Success);
    FakeGuest guest_b;
    rmm->setGuestContext(realm, rec, &guest);
    rmm->setGuestContext(realm, rec_b, &guest_b);
    ASSERT_EQ(rmm->realmActivate(realm), RmiStatus::Success);

    ExitInfo sgi = guest.exitOf(ExitReason::SgiWrite);
    sgi.target = rec_b;
    guest.script.push_back(sgi);
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.exit.reason, ExitReason::Mmio);
    EXPECT_EQ(rmm->stats().delegatedIpis.value(), 1u);
    ASSERT_EQ(guest_b.injected.size(), 1u);
    EXPECT_TRUE(hw::isSgi(guest_b.injected[0]));
    EXPECT_EQ(rmm->stats().exitsToHost.value(), 1u);
}

TEST_F(RmmFixture, HostLrViewFiltersDelegatedInterrupts)
{
    RmmConfig cfg;
    cfg.delegateInterrupts = true;
    boot(cfg);
    makeRealm();
    guest.lrs.inject(hw::vtimerPpi); // delegated: hidden
    guest.lrs.inject(1);             // SGI: hidden
    guest.lrs.inject(40);            // device SPI: host-managed
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.hostLrView, (std::vector<hw::IntId>{40}));
}

TEST_F(RmmFixture, HostLrViewCompleteWithoutDelegation)
{
    boot();
    makeRealm();
    guest.lrs.inject(hw::vtimerPpi);
    guest.lrs.inject(40);
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.hostLrView,
              (std::vector<hw::IntId>{hw::vtimerPpi, 40}));
}

TEST_F(RmmFixture, HostRequestedVirqsAreInjectedOnEntry)
{
    boot();
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::Mmio));
    RecEnterArgs args;
    args.injectVirqs = {40, 41};
    RecRunResult res = enter(1, args);
    ASSERT_EQ(res.status, RmiStatus::Success);
    EXPECT_EQ(guest.injected, (std::vector<hw::IntId>{40, 41}));
}

TEST_F(RmmFixture, ShutdownStopsRec)
{
    boot();
    makeRealm();
    guest.script.push_back(guest.exitOf(ExitReason::Shutdown));
    RecRunResult res = enter(1);
    EXPECT_EQ(res.exit.reason, ExitReason::Shutdown);
    // Further entries are rejected.
    EXPECT_EQ(rmm->recEnterCheck(realm, rec, 1), RmiStatus::BadState);
}

TEST_F(RmmFixture, RecEnterOnMissingRealmFails)
{
    boot();
    EXPECT_EQ(rmm->recEnterCheck(7, 0, 0), RmiStatus::BadState);
}
