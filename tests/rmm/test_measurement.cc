/** @file Unit tests for measurements and attestation. */

#include <gtest/gtest.h>

#include "rmm/measurement.hh"

using namespace cg::rmm;

TEST(Measurement, RimExtendIsOrderSensitive)
{
    Measurement a, b;
    a.extendRim(1);
    a.extendRim(2);
    b.extendRim(2);
    b.extendRim(1);
    EXPECT_NE(a.rim(), b.rim());
}

TEST(Measurement, IdenticalSequencesMatch)
{
    Measurement a, b;
    for (std::uint64_t v : {42ull, 7ull, 99ull}) {
        a.extendRim(v);
        b.extendRim(v);
    }
    EXPECT_EQ(a.rim(), b.rim());
}

TEST(Measurement, RemRegistersAreIndependent)
{
    Measurement m;
    const Digest before = m.rem(1);
    m.extendRem(0, 5);
    EXPECT_EQ(m.rem(1), before);
    EXPECT_NE(m.rem(0), before);
}

TEST(Measurement, DigestOfStrings)
{
    EXPECT_EQ(digestOf("hello"), digestOf("hello"));
    EXPECT_NE(digestOf("hello"), digestOf("hellp"));
    EXPECT_NE(digestOf(""), digestOf("x"));
}

TEST(Attestation, IssueAndVerifyRoundTrip)
{
    AttestationAuthority auth(0x1234);
    Measurement m;
    m.extendRim(99);
    const AttestationToken t = auth.issue(m, /*challenge=*/777);
    EXPECT_TRUE(auth.verify(t, 777));
}

TEST(Attestation, WrongChallengeRejected)
{
    AttestationAuthority auth(0x1234);
    Measurement m;
    const AttestationToken t = auth.issue(m, 777);
    EXPECT_FALSE(auth.verify(t, 778));
}

TEST(Attestation, TamperedMeasurementRejected)
{
    AttestationAuthority auth(0x1234);
    Measurement m;
    m.extendRim(1);
    AttestationToken t = auth.issue(m, 5);
    t.rim = digestExtend(t.rim, 666); // attacker swaps the measurement
    EXPECT_FALSE(auth.verify(t, 5));
}

TEST(Attestation, DifferentPlatformKeyRejected)
{
    AttestationAuthority real(0x1234), fake(0x9999);
    Measurement m;
    const AttestationToken t = fake.issue(m, 5);
    EXPECT_FALSE(real.verify(t, 5));
}
