/** @file Unit tests for the granule state machine (invariant I4). */

#include <gtest/gtest.h>

#include "rmm/granule.hh"

using namespace cg::rmm;

TEST(Granule, FreshMemoryIsUndelegatedAndHostAccessible)
{
    GranuleTracker g;
    EXPECT_EQ(g.stateOf(0x1000), GranuleState::Undelegated);
    EXPECT_TRUE(g.hostAccessible(0x1000));
    EXPECT_EQ(g.ownerOf(0x1000), -1);
}

TEST(Granule, DelegateRemovesHostAccess)
{
    GranuleTracker g;
    EXPECT_EQ(g.delegate(0x1000), RmiStatus::Success);
    EXPECT_EQ(g.stateOf(0x1000), GranuleState::Delegated);
    EXPECT_FALSE(g.hostAccessible(0x1000));
    // Sub-granule offsets are covered too.
    EXPECT_FALSE(g.hostAccessible(0x1800));
}

TEST(Granule, DelegateRejectsUnaligned)
{
    GranuleTracker g;
    EXPECT_EQ(g.delegate(0x1234), RmiStatus::BadAddress);
}

TEST(Granule, DoubleDelegateFails)
{
    GranuleTracker g;
    ASSERT_EQ(g.delegate(0x2000), RmiStatus::Success);
    EXPECT_EQ(g.delegate(0x2000), RmiStatus::BadState);
}

TEST(Granule, UndelegateRestoresHostAccess)
{
    GranuleTracker g;
    ASSERT_EQ(g.delegate(0x2000), RmiStatus::Success);
    EXPECT_EQ(g.undelegate(0x2000), RmiStatus::Success);
    EXPECT_TRUE(g.hostAccessible(0x2000));
}

TEST(Granule, CannotUndelegateAssignedGranule)
{
    GranuleTracker g;
    ASSERT_EQ(g.delegate(0x3000), RmiStatus::Success);
    ASSERT_EQ(g.assign(0x3000, GranuleState::Data, 0),
              RmiStatus::Success);
    // Invariant I4: an assigned (confidential) granule cannot be
    // returned to the host without going through release (scrub).
    EXPECT_EQ(g.undelegate(0x3000), RmiStatus::BadState);
    EXPECT_FALSE(g.hostAccessible(0x3000));
}

TEST(Granule, AssignRequiresDelegatedState)
{
    GranuleTracker g;
    EXPECT_EQ(g.assign(0x4000, GranuleState::Rd, 0), RmiStatus::BadState);
    ASSERT_EQ(g.delegate(0x4000), RmiStatus::Success);
    EXPECT_EQ(g.assign(0x4000, GranuleState::Rd, 0), RmiStatus::Success);
    EXPECT_EQ(g.ownerOf(0x4000), 0);
    // Cannot re-assign without release.
    EXPECT_EQ(g.assign(0x4000, GranuleState::Data, 0),
              RmiStatus::BadState);
}

TEST(Granule, AssignToUnassignedStatesRejected)
{
    GranuleTracker g;
    ASSERT_EQ(g.delegate(0x5000), RmiStatus::Success);
    EXPECT_EQ(g.assign(0x5000, GranuleState::Undelegated, 0),
              RmiStatus::BadArgs);
    EXPECT_EQ(g.assign(0x5000, GranuleState::Delegated, 0),
              RmiStatus::BadArgs);
}

TEST(Granule, ReleaseChecksStateAndOwner)
{
    GranuleTracker g;
    ASSERT_EQ(g.delegate(0x6000), RmiStatus::Success);
    ASSERT_EQ(g.assign(0x6000, GranuleState::Rec, 3), RmiStatus::Success);
    EXPECT_EQ(g.release(0x6000, GranuleState::Rec, 4),
              RmiStatus::BadState); // wrong owner
    EXPECT_EQ(g.release(0x6000, GranuleState::Data, 3),
              RmiStatus::BadState); // wrong state
    EXPECT_EQ(g.release(0x6000, GranuleState::Rec, 3),
              RmiStatus::Success);
    EXPECT_EQ(g.stateOf(0x6000), GranuleState::Delegated);
    EXPECT_EQ(g.undelegate(0x6000), RmiStatus::Success);
}

TEST(Granule, ReleaseOwnedSweepsRealm)
{
    GranuleTracker g;
    for (PhysAddr a : {0x1000ull, 0x2000ull, 0x3000ull}) {
        ASSERT_EQ(g.delegate(a), RmiStatus::Success);
        ASSERT_EQ(g.assign(a, GranuleState::Data, 7), RmiStatus::Success);
    }
    ASSERT_EQ(g.delegate(0x4000), RmiStatus::Success);
    ASSERT_EQ(g.assign(0x4000, GranuleState::Data, 8),
              RmiStatus::Success);
    g.releaseOwned(7);
    EXPECT_EQ(g.stateOf(0x1000), GranuleState::Delegated);
    EXPECT_EQ(g.stateOf(0x3000), GranuleState::Delegated);
    EXPECT_EQ(g.stateOf(0x4000), GranuleState::Data); // other realm kept
}

TEST(Granule, CountInState)
{
    GranuleTracker g;
    ASSERT_EQ(g.delegate(0x1000), RmiStatus::Success);
    ASSERT_EQ(g.delegate(0x2000), RmiStatus::Success);
    ASSERT_EQ(g.assign(0x2000, GranuleState::Rtt, 0), RmiStatus::Success);
    EXPECT_EQ(g.countInState(GranuleState::Delegated), 1u);
    EXPECT_EQ(g.countInState(GranuleState::Rtt), 1u);
    EXPECT_EQ(g.countInState(GranuleState::Data), 0u);
}
