/**
 * @file
 * Unit tests for the RMM's live-migration RMIs (DESIGN.md section 12):
 * the phase machine and its guards, granule conservation through
 * copy/commit/abort, resumable copies under injected stalls, binding
 * restoration on rollback, and reference relocation at commit.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "rmm/rmm.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
using namespace cg::rmm;
using sim::Proc;
using sim::Tick;
using sim::usec;

namespace {

/** A guest whose exits follow a fixed script. */
struct FakeGuest : GuestContext {
    std::deque<ExitInfo> script;
    hw::ListRegFile lrs;

    Proc<ExitInfo>
    runUntilExit(sim::CoreId core) override
    {
        (void)core;
        co_await sim::Delay{10 * usec};
        if (script.empty()) {
            ExitInfo off;
            off.reason = ExitReason::Shutdown;
            co_return off;
        }
        ExitInfo e = script.front();
        script.pop_front();
        co_return e;
    }

    bool
    injectVirq(hw::IntId id) override
    {
        return lrs.inject(id);
    }

    void forceExit(ExitReason) override {}
    void completeMmio(std::uint64_t) override {}
    bool entered() const override { return false; }
    hw::ListRegFile& listRegs() override { return lrs; }
};

struct MigrationFixture : ::testing::Test {
    sim::Simulation sim;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<Rmm> rmm;
    FakeGuest guest;
    int realm = -1;
    int rec = -1;
    PhysAddr nextGranule = 0x10000;

    void
    boot()
    {
        hw::MachineConfig mcfg;
        mcfg.numCores = 6;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        RmmConfig cfg;
        cfg.coreGapped = true;
        rmm = std::make_unique<Rmm>(*machine, cfg);
    }

    PhysAddr
    granule()
    {
        PhysAddr a = nextGranule;
        nextGranule += granuleSize;
        EXPECT_EQ(rmm->granuleDelegate(a), RmiStatus::Success);
        return a;
    }

    /** Realm with an RD, one REC, RTT tables, and two data pages. */
    void
    makeRealm()
    {
        ASSERT_EQ(rmm->realmCreate(granule(), RealmParams{"m"}, realm),
                  RmiStatus::Success);
        ASSERT_EQ(rmm->recCreate(realm, granule(), rec),
                  RmiStatus::Success);
        rmm->setGuestContext(realm, rec, &guest);
        for (int lvl = 1; lvl <= 3; ++lvl) {
            ASSERT_EQ(rmm->rttCreate(realm, 0, lvl, granule()),
                      RmiStatus::Success);
        }
        ASSERT_EQ(rmm->dataCreate(realm, 0x0000, granule(), 0xaa),
                  RmiStatus::Success);
        ASSERT_EQ(rmm->dataCreate(realm, 0x1000, granule(), 0xbb),
                  RmiStatus::Success);
        ASSERT_EQ(rmm->realmActivate(realm), RmiStatus::Success);
    }

    /** Dispatch once on @p core so the REC binds to it. The scripted
     * HostKick exit leaves the REC Ready (not Stopped). */
    void
    bindOn(sim::CoreId core)
    {
        ExitInfo kick;
        kick.reason = ExitReason::HostKick;
        guest.script.push_back(kick);
        sim.spawn("enter", [](Rmm& r, int rlm, int rc,
                              sim::CoreId c) -> Proc<void> {
            const RecRunResult res =
                co_await r.recEnter(rlm, rc, RecEnterArgs{}, c);
            EXPECT_EQ(res.status, RmiStatus::Success);
        }(*rmm, realm, rec, core));
        sim.run();
        ASSERT_EQ(rmm->recBinding(realm, rec), core);
    }

    /** Delegate a fresh destination window of @p n granules. */
    PhysAddr
    destWindow(std::size_t n)
    {
        const PhysAddr base = 0x40000000;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(rmm->granuleDelegate(base + i * granuleSize),
                      RmiStatus::Success);
        }
        return base;
    }
};

} // namespace

TEST_F(MigrationFixture, PhaseMachineGuardsLifecycleRmis)
{
    boot();
    makeRealm();
    bindOn(1);
    EXPECT_EQ(rmm->migrationPhase(realm), MigrationPhase::Idle);

    ASSERT_EQ(rmm->migratePrepare(realm), RmiStatus::Success);
    EXPECT_EQ(rmm->migrationPhase(realm), MigrationPhase::Prepared);
    // Double prepare is refused; so is every other lifecycle RMI.
    EXPECT_EQ(rmm->migratePrepare(realm), RmiStatus::BadState);
    EXPECT_EQ(rmm->recDestroy(realm, rec), RmiStatus::Busy);
    EXPECT_EQ(rmm->recRebind(realm, rec, 3), RmiStatus::Busy);
    EXPECT_EQ(rmm->recEnterCheck(realm, rec, 1), RmiStatus::Busy);
    // Commit before the copy finished is refused.
    EXPECT_EQ(rmm->migrateCommit(realm), RmiStatus::BadState);

    ASSERT_EQ(rmm->migrateAbort(realm), RmiStatus::Success);
    EXPECT_EQ(rmm->migrationPhase(realm), MigrationPhase::Idle);
    EXPECT_EQ(rmm->recEnterCheck(realm, rec, 1), RmiStatus::Success);
    EXPECT_EQ(rmm->migrateAbort(realm), RmiStatus::BadState);
}

TEST_F(MigrationFixture, PrepareRequiresGappedActivePausedRealm)
{
    // Without core gapping there is no binding to migrate.
    boot();
    RmmConfig shared;
    rmm = std::make_unique<Rmm>(*machine, shared);
    makeRealm();
    EXPECT_EQ(rmm->migratePrepare(realm), RmiStatus::BadState);

    boot();
    EXPECT_EQ(rmm->migratePrepare(7), RmiStatus::BadState); // no realm
}

TEST_F(MigrationFixture, CopyIsResumableAcrossInjectedStalls)
{
    boot();
    makeRealm();
    bindOn(1);
    const std::size_t total = rmm->granules().owned(realm).size();
    ASSERT_EQ(rmm->migratePrepare(realm), RmiStatus::Success);
    ASSERT_EQ(rmm->migrationGranuleCount(realm), total);
    const PhysAddr base = destWindow(total);

    // Stall the second copy batch.
    sim.faults().arm(7, sim::FaultPlan::parse("rtt-copy-stall:nth=2"));
    std::size_t copied = 0;
    ASSERT_EQ(rmm->migrateCopy(realm, base, 2, copied),
              RmiStatus::Success);
    EXPECT_EQ(copied, 2u);
    EXPECT_EQ(rmm->migrationPhase(realm), MigrationPhase::Copying);
    // The stalled batch makes no progress and the cursor holds.
    EXPECT_EQ(rmm->migrateCopy(realm, base, 2, copied),
              RmiStatus::Busy);
    EXPECT_EQ(copied, 0u);
    EXPECT_EQ(rmm->stats().migrationStalls.value(), 1u);
    // A different window mid-copy is rejected; the same one resumes.
    EXPECT_EQ(rmm->migrateCopy(realm, base + granuleSize, 0, copied),
              RmiStatus::BadArgs);
    ASSERT_EQ(rmm->migrateCopy(realm, base, 0, copied),
              RmiStatus::Success);
    EXPECT_EQ(copied, total - 2);
    EXPECT_EQ(rmm->migrationPhase(realm), MigrationPhase::Copied);
    EXPECT_EQ(rmm->stats().migrationGranulesCopied.value(), total);
}

TEST_F(MigrationFixture, AbortRestoresBindingsAndReleasesDestCopy)
{
    boot();
    makeRealm();
    bindOn(1);
    const auto before = rmm->granules().owned(realm);
    const Tick last_rebind_before = 0; // never rebound

    ASSERT_EQ(rmm->migratePrepare(realm), RmiStatus::Success);
    const PhysAddr base = destWindow(before.size());
    std::size_t copied = 0;
    ASSERT_EQ(rmm->migrateCopy(realm, base, 0, copied),
              RmiStatus::Success);
    ASSERT_EQ(rmm->migrateBindRec(realm, rec, 4), RmiStatus::Success);
    EXPECT_EQ(rmm->recBinding(realm, rec), 4);
    EXPECT_EQ(rmm->dedicatedOwner(4), realm);

    ASSERT_EQ(rmm->migrateAbort(realm), RmiStatus::Success);
    // Binding (and its rate-limiter clock) restored verbatim.
    EXPECT_EQ(rmm->recBinding(realm, rec), 1);
    EXPECT_EQ(rmm->dedicatedOwner(1), realm);
    EXPECT_EQ(rmm->dedicatedOwner(4), -1);
    EXPECT_EQ(rmm->rebindAllowedAt(realm, rec), last_rebind_before);
    // The realm owns exactly its source granules again; the whole
    // destination window is back to bare Delegated.
    EXPECT_EQ(rmm->granules().owned(realm), before);
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(rmm->granules().stateOf(base + i * granuleSize),
                  GranuleState::Delegated);
    }
    EXPECT_EQ(rmm->stats().migrationsAborted.value(), 1u);
}

TEST_F(MigrationFixture, CommitRequiresEveryBoundRecMoved)
{
    boot();
    makeRealm();
    bindOn(1);
    ASSERT_EQ(rmm->migratePrepare(realm), RmiStatus::Success);
    const PhysAddr base = destWindow(rmm->migrationGranuleCount(realm));
    std::size_t copied = 0;
    ASSERT_EQ(rmm->migrateCopy(realm, base, 0, copied),
              RmiStatus::Success);
    // A REC still bound to a source core blocks the commit.
    EXPECT_EQ(rmm->migrateCommit(realm), RmiStatus::BadState);
    ASSERT_EQ(rmm->migrateBindRec(realm, rec, 4), RmiStatus::Success);
    // One move per REC per migration.
    EXPECT_EQ(rmm->migrateBindRec(realm, rec, 5), RmiStatus::BadState);
    EXPECT_EQ(rmm->migrateCommit(realm), RmiStatus::Success);
}

TEST_F(MigrationFixture, CommitRelocatesEveryReferenceAndFreesSource)
{
    boot();
    makeRealm();
    bindOn(1);
    const auto before = rmm->granules().owned(realm);
    const Realm* r = rmm->realm(realm);
    const std::size_t tables_before = r->rtt.tableCount();
    const std::size_t pages_before = r->rtt.mappedPages();
    ASSERT_TRUE(r->rtt.translate(0x1000).has_value());

    ASSERT_EQ(rmm->migratePrepare(realm), RmiStatus::Success);
    const PhysAddr base = destWindow(before.size());
    std::size_t copied = 0;
    ASSERT_EQ(rmm->migrateCopy(realm, base, 0, copied),
              RmiStatus::Success);
    ASSERT_EQ(rmm->migrateBindRec(realm, rec, 4), RmiStatus::Success);
    ASSERT_EQ(rmm->migrateCommit(realm), RmiStatus::Success);

    // Same shape, all within the destination window, same states in
    // the same order (the copy preserves the snapshot's order).
    const auto after = rmm->granules().owned(realm);
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < after.size(); ++i) {
        EXPECT_EQ(after[i].first, base + i * granuleSize);
        EXPECT_EQ(after[i].second, before[i].second);
    }
    // Every source granule scrubbed back to Delegated (undelegatable).
    for (const auto& [addr, state] : before) {
        (void)state;
        EXPECT_EQ(rmm->granules().stateOf(addr),
                  GranuleState::Delegated);
        EXPECT_EQ(rmm->granuleUndelegate(addr), RmiStatus::Success);
    }
    // The RD and REC granule references moved with the copy.
    EXPECT_EQ(rmm->granules().stateOf(r->rdGranule), GranuleState::Rd);
    EXPECT_EQ(rmm->granules().ownerOf(r->rdGranule), realm);
    // The RTT survived relocation structurally intact and translates
    // to destination-window pages.
    EXPECT_EQ(r->rtt.tableCount(), tables_before);
    EXPECT_EQ(r->rtt.mappedPages(), pages_before);
    const auto pa = r->rtt.translate(0x1000);
    ASSERT_TRUE(pa.has_value());
    EXPECT_GE(*pa, base);
    EXPECT_LT(*pa, base + before.size() * granuleSize);
    // The realm runs on: enter on the new core works, the old core
    // is nobody's, and the migration is closed out.
    EXPECT_EQ(rmm->recEnterCheck(realm, rec, 4), RmiStatus::Success);
    EXPECT_EQ(rmm->recEnterCheck(realm, rec, 1), RmiStatus::WrongCore);
    EXPECT_EQ(rmm->migrationPhase(realm), MigrationPhase::Idle);
    EXPECT_EQ(rmm->stats().migrationsCommitted.value(), 1u);
}

TEST_F(MigrationFixture, FaultSiteNamesAreListedAndParsed)
{
    // The new sites parse, round-trip their names, and appear in the
    // --faults help list.
    const auto specs = sim::FaultPlan::parse(
        "migration-abort:nth=1;rtt-copy-stall:p=0.5");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].site, sim::FaultSite::MigrationAbort);
    EXPECT_EQ(specs[1].site, sim::FaultSite::RttCopyStall);
    const std::string all = sim::faultSiteListText();
    EXPECT_NE(all.find("migration-abort"), std::string::npos);
    EXPECT_NE(all.find("rtt-copy-stall"), std::string::npos);
    // One line per site.
    std::size_t lines = 0;
    for (char c : all)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, static_cast<std::size_t>(sim::numFaultSites));
}
