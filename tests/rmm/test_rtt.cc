/** @file Unit tests for realm translation tables. */

#include <gtest/gtest.h>

#include "rmm/rtt.hh"

using namespace cg::rmm;

namespace {

/** Build tables for the walk of @p ipa down to the leaf level. */
void
buildTables(Rtt& rtt, Ipa ipa, PhysAddr base = 0x100000)
{
    for (int level = 1; level <= rttLeafLevel; ++level) {
        const RmiStatus s = rtt.createTable(
            ipa, level, base + static_cast<PhysAddr>(level) * 0x1000);
        ASSERT_TRUE(s == RmiStatus::Success || s == RmiStatus::BadState);
    }
}

} // namespace

TEST(Rtt, EmptyTranslationFaults)
{
    Rtt rtt;
    EXPECT_FALSE(rtt.translate(0x8000).has_value());
    EXPECT_EQ(rtt.walkLevel(0x8000), 1); // first missing table
}

TEST(Rtt, MapRequiresTables)
{
    Rtt rtt;
    EXPECT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::NoMemory);
}

TEST(Rtt, CreateTablesThenMap)
{
    Rtt rtt;
    buildTables(rtt, 0x8000);
    EXPECT_EQ(rtt.walkLevel(0x8000), rttLeafLevel);
    EXPECT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::Success);
    EXPECT_EQ(rtt.walkLevel(0x8000), rttLeafLevel + 1);
    auto pa = rtt.translate(0x8000);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x200000u);
}

TEST(Rtt, TranslatePreservesPageOffset)
{
    Rtt rtt;
    buildTables(rtt, 0x8000);
    ASSERT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::Success);
    auto pa = rtt.translate(0x8abc);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x200abcu);
}

TEST(Rtt, TablesMustBeCreatedTopDown)
{
    Rtt rtt;
    // Level 2 before level 1: the parent is missing.
    EXPECT_EQ(rtt.createTable(0x8000, 2, 0x100000),
              RmiStatus::NoMemory);
    EXPECT_EQ(rtt.createTable(0x8000, 1, 0x100000), RmiStatus::Success);
    EXPECT_EQ(rtt.createTable(0x8000, 2, 0x101000), RmiStatus::Success);
}

TEST(Rtt, DuplicateTableRejected)
{
    Rtt rtt;
    ASSERT_EQ(rtt.createTable(0x8000, 1, 0x100000), RmiStatus::Success);
    EXPECT_EQ(rtt.createTable(0x8000, 1, 0x101000), RmiStatus::BadState);
}

TEST(Rtt, BadLevelOrAlignmentRejected)
{
    Rtt rtt;
    EXPECT_EQ(rtt.createTable(0x8000, 0, 0x100000), RmiStatus::BadArgs);
    EXPECT_EQ(rtt.createTable(0x8000, 4, 0x100000), RmiStatus::BadArgs);
    EXPECT_EQ(rtt.createTable(0x8000, 1, 0x100123),
              RmiStatus::BadAddress);
    buildTables(rtt, 0x8000);
    EXPECT_EQ(rtt.mapPage(0x8000, 0x200001), RmiStatus::BadAddress);
}

TEST(Rtt, DoubleMapRejected)
{
    Rtt rtt;
    buildTables(rtt, 0x8000);
    ASSERT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::Success);
    EXPECT_EQ(rtt.mapPage(0x8000, 0x300000), RmiStatus::BadState);
}

TEST(Rtt, UnmapThenFaultAgain)
{
    Rtt rtt;
    buildTables(rtt, 0x8000);
    ASSERT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::Success);
    EXPECT_EQ(rtt.unmapPage(0x8000), RmiStatus::Success);
    EXPECT_FALSE(rtt.translate(0x8000).has_value());
    EXPECT_EQ(rtt.unmapPage(0x8000), RmiStatus::BadState);
    EXPECT_EQ(rtt.mappedPages(), 0u);
}

TEST(Rtt, NeighbouringPagesShareTables)
{
    Rtt rtt;
    buildTables(rtt, 0x8000);
    ASSERT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::Success);
    // Same 2 MiB region: no new tables needed.
    EXPECT_EQ(rtt.mapPage(0x9000, 0x201000), RmiStatus::Success);
    EXPECT_EQ(rtt.tableCount(), 3u);
    EXPECT_EQ(rtt.mappedPages(), 2u);
}

TEST(Rtt, DistantPagesNeedSeparateTables)
{
    Rtt rtt;
    buildTables(rtt, 0x8000);
    ASSERT_EQ(rtt.mapPage(0x8000, 0x200000), RmiStatus::Success);
    // 1 TiB away: the level-1 walk diverges.
    const Ipa far = 1ull << 40;
    EXPECT_EQ(rtt.mapPage(far, 0x300000), RmiStatus::NoMemory);
    buildTables(rtt, far, 0x900000);
    EXPECT_EQ(rtt.mapPage(far, 0x300000), RmiStatus::Success);
    EXPECT_GT(rtt.tableCount(), 3u);
}

TEST(Rtt, IndexExtraction)
{
    // ipa = idx3 << 12 | idx2 << 21 | idx1 << 30 | idx0 << 39
    const Ipa ipa = (5ull << 39) | (17ull << 30) | (100ull << 21) |
                    (511ull << 12) | 0xabc;
    EXPECT_EQ(rttIndex(ipa, 0), 5u);
    EXPECT_EQ(rttIndex(ipa, 1), 17u);
    EXPECT_EQ(rttIndex(ipa, 2), 100u);
    EXPECT_EQ(rttIndex(ipa, 3), 511u);
}
