/**
 * @file
 * Unit tests for the guest vCPU model: entered/exited execution,
 * timer tick exits, MMIO traps, WFI, virtual IPIs, and CPU accounting.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "guest/vm.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
using namespace cg::guest;
using cg::rmm::ExitInfo;
using cg::rmm::ExitReason;
using sim::Proc;
using sim::Tick;
using sim::msec;
using sim::usec;
using sim::nsec;

namespace {

/**
 * Drives a vCPU like a (trusting) runner would: re-enters after each
 * exit, applying a synchronous policy callback per exit. Stops after
 * max_exits or on Shutdown.
 */
Proc<void>
runner(VCpu& vcpu, sim::CoreId core, std::vector<ExitInfo>& exits,
       int max_exits, std::function<void(const ExitInfo&)> policy)
{
    while (static_cast<int>(exits.size()) < max_exits) {
        ExitInfo e = co_await vcpu.runUntilExit(core);
        exits.push_back(e);
        if (policy)
            policy(e);
        if (e.reason == ExitReason::Shutdown)
            break;
    }
}

Proc<void>
computeChunks(VCpu& vcpu, Tick chunk, int n, int& done, Tick& finished)
{
    for (int i = 0; i < n; ++i) {
        co_await sim::Compute{chunk};
        ++done;
    }
    finished = vcpu.vm().machine().sim().now();
}

Proc<void>
doMmioWrite(VCpu& vcpu, bool& completed)
{
    co_await vcpu.mmioWrite(0x9000000, 0xff, 4);
    completed = true;
}

Proc<void>
doMmioRead(VCpu& vcpu, std::uint64_t& value)
{
    value = co_await vcpu.mmioRead(0x9000008, 4);
}

Proc<void>
idleLoop(VCpu& vcpu, int& wakeups, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        co_await vcpu.idle();
        ++wakeups;
    }
}

Proc<void>
sendIpiThenFlag(VCpu& vcpu, int target, bool& sent)
{
    co_await vcpu.sendVIpi(target);
    sent = true;
}

Proc<void>
shutdownAfter(VCpu& vcpu, Tick work)
{
    co_await sim::Compute{work};
    co_await vcpu.shutdown();
}

struct VCpuFixture : ::testing::Test {
    sim::Simulation sim;
    hw::MachineConfig mcfg;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<Vm> vm;

    VCpu&
    boot(VmConfig cfg = {})
    {
        mcfg.numCores = 4;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        vm = std::make_unique<Vm>(*machine, cfg, sim::firstVmDomain);
        return vm->vcpu(0);
    }
};

} // namespace

TEST_F(VCpuFixture, GuestAdvancesOnlyWhileEntered)
{
    VmConfig cfg;
    cfg.tickPeriod = 0; // no tick noise
    VCpu& vcpu = boot(cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("work", computeChunks(vcpu, 1 * msec, 3, done,
                                          finished));
    // Nobody entered the vCPU: no progress, ever.
    sim.runFor(100 * msec);
    EXPECT_EQ(done, 0);

    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 1, nullptr));
    sim.runFor(10 * msec);
    EXPECT_EQ(done, 3);
    EXPECT_GE(finished, 100 * msec + 3 * msec);
    EXPECT_GE(vcpu.guestCpuTime, 3 * msec);
}

TEST_F(VCpuFixture, TickGeneratesTimerIrqThenTimerWriteExit)
{
    VmConfig cfg;
    cfg.tickPeriod = 4 * msec;
    VCpu& vcpu = boot(cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("work",
                    computeChunks(vcpu, 20 * msec, 1, done, finished));
    vcpu.setTickPeriod(cfg.tickPeriod);

    std::vector<ExitInfo> exits;
    sim.spawn("runner",
              runner(vcpu, 1, exits, 4, [&](const ExitInfo& e) {
                  if (e.reason == ExitReason::TimerIrq)
                      vcpu.injectVirq(hw::vtimerPpi);
              }));
    sim.runFor(11 * msec);
    // Two ticks elapsed: each is a TimerIrq exit followed by a
    // TimerWrite exit (the reprogramming trap) = the two-exits-per-tick
    // behaviour of section 4.4.
    ASSERT_GE(exits.size(), 4u);
    EXPECT_EQ(exits[0].reason, ExitReason::TimerIrq);
    EXPECT_EQ(exits[1].reason, ExitReason::TimerWrite);
    EXPECT_EQ(exits[2].reason, ExitReason::TimerIrq);
    EXPECT_EQ(exits[3].reason, ExitReason::TimerWrite);
    EXPECT_EQ(vcpu.ticksHandled.value(), 2u);
}

TEST_F(VCpuFixture, TickHandlingStealsGuestCpu)
{
    VmConfig cfg;
    cfg.tickPeriod = 4 * msec;
    VCpu& vcpu = boot(cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("work",
                    computeChunks(vcpu, 10 * msec, 1, done, finished));
    vcpu.setTickPeriod(cfg.tickPeriod);
    std::vector<ExitInfo> exits;
    sim.spawn("runner",
              runner(vcpu, 1, exits, 100, [&](const ExitInfo& e) {
                  if (e.reason == ExitReason::TimerIrq)
                      vcpu.injectVirq(hw::vtimerPpi);
              }));
    sim.runFor(50 * msec);
    EXPECT_EQ(done, 1);
    // 10ms of work + 2 tick handlers pushed completion past 10ms.
    EXPECT_GT(finished, 10 * msec);
}

TEST_F(VCpuFixture, MmioWriteTrapsAndResumesOnReentry)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    bool completed = false;
    vcpu.startGuest("drv", doMmioWrite(vcpu, completed));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 1, nullptr));
    sim.run();
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0].reason, ExitReason::Mmio);
    EXPECT_EQ(exits[0].addr, 0x9000000u);
    EXPECT_EQ(exits[0].data, 0xffu);
    EXPECT_TRUE(exits[0].isWrite);
    // The instruction has not retired yet (no re-entry).
    EXPECT_FALSE(completed);
    std::vector<ExitInfo> more;
    sim.spawn("runner2", runner(vcpu, 1, more, 1, nullptr));
    sim.runFor(1 * msec);
    EXPECT_TRUE(completed);
}

TEST_F(VCpuFixture, MmioReadDeliversResponse)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    std::uint64_t value = 0;
    vcpu.startGuest("drv", doMmioRead(vcpu, value));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 2, [&](const ExitInfo& e) {
        if (e.reason == ExitReason::Mmio && !e.isWrite)
            vcpu.completeMmio(0xdeadbeef);
    }));
    sim.run();
    ASSERT_GE(exits.size(), 1u);
    EXPECT_EQ(exits[0].reason, ExitReason::Mmio);
    EXPECT_FALSE(exits[0].isWrite);
    EXPECT_EQ(value, 0xdeadbeefu);
}

TEST_F(VCpuFixture, WfiExitsAndVirqWakes)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    int wakeups = 0;
    vcpu.startGuest("idler", idleLoop(vcpu, wakeups, 1));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 3, nullptr));
    sim.runFor(1 * msec);
    // The explicit WFI plus possibly the idle-loop's own WFI.
    ASSERT_GE(exits.size(), 1u);
    for (const ExitInfo& e : exits)
        EXPECT_EQ(e.reason, ExitReason::Wfi);
    EXPECT_EQ(wakeups, 0);
    // Inject a device interrupt and re-enter: the idler wakes.
    vcpu.injectVirq(40);
    sim.run();
    EXPECT_EQ(wakeups, 1);
    EXPECT_EQ(vcpu.virqsHandled.value(), 1u);
}

TEST_F(VCpuFixture, SendVIpiTrapsWithTarget)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    cfg.numVcpus = 2;
    VCpu& vcpu = boot(cfg);
    bool sent = false;
    vcpu.startGuest("sender", sendIpiThenFlag(vcpu, 1, sent));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 0, exits, 1, nullptr));
    sim.run();
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0].reason, ExitReason::SgiWrite);
    EXPECT_EQ(exits[0].target, 1);
    EXPECT_FALSE(sent); // trap not yet retired
    std::vector<ExitInfo> more;
    sim.spawn("runner2", runner(vcpu, 0, more, 1, nullptr));
    sim.runFor(1 * msec);
    EXPECT_TRUE(sent);
}

TEST_F(VCpuFixture, ForceExitPausesAndPreservesWork)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("work",
                    computeChunks(vcpu, 10 * msec, 1, done, finished));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 2, exits, 2, nullptr));
    sim.runFor(4 * msec);
    vcpu.forceExit(ExitReason::HostKick); // host kick mid-compute
    sim.run();
    EXPECT_EQ(done, 1);
    ASSERT_GE(exits.size(), 1u);
    EXPECT_EQ(exits[0].reason, ExitReason::HostKick);
    // Work completed despite the interruption, duration >= pure work.
    EXPECT_GE(finished, 10 * msec);
    EXPECT_GE(vcpu.guestCpuTime, 10 * msec);
    EXPECT_LT(vcpu.guestCpuTime, 11 * msec);
}

TEST_F(VCpuFixture, WaitForEventWakesOnTimerWhileExited)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    vcpu.setTickPeriod(5 * msec); // timer armed, vCPU never entered
    bool woke = false;
    sim.spawn("waiter", [](VCpu& v, bool& w) -> Proc<void> {
        co_await v.waitForEvent();
        w = true;
    }(vcpu, woke));
    sim.runFor(4 * msec);
    EXPECT_FALSE(woke);
    sim.runFor(2 * msec);
    EXPECT_TRUE(woke);
    EXPECT_TRUE(vcpu.hasPendingEvent());
}

TEST_F(VCpuFixture, VirqHandlerCallbackRuns)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    int handler_calls = 0;
    vcpu.setVirqHandler(45, [&] { ++handler_calls; });
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("work",
                    computeChunks(vcpu, 20 * msec, 1, done, finished));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 1, nullptr));
    sim.runFor(5 * msec);
    vcpu.injectVirq(45); // delivered while entered: handled immediately
    sim.runFor(1 * msec);
    EXPECT_EQ(handler_calls, 1);
    sim.run();
    EXPECT_EQ(done, 1);
}

TEST_F(VCpuFixture, ShutdownExitStopsFurtherEntries)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    vcpu.startGuest("w", shutdownAfter(vcpu, 1 * msec));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 5, nullptr));
    sim.run();
    ASSERT_GE(exits.size(), 1u);
    EXPECT_EQ(exits.back().reason, ExitReason::Shutdown);
    // Re-entering a stopped vCPU immediately reports Shutdown.
    std::vector<ExitInfo> more;
    sim.spawn("runner2", runner(vcpu, 1, more, 1, nullptr));
    sim.run();
    ASSERT_EQ(more.size(), 1u);
    EXPECT_EQ(more[0].reason, ExitReason::Shutdown);
}

TEST_F(VCpuFixture, WarmupChargedAfterPollution)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    cfg.footprint = 512;
    VCpu& vcpu = boot(cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("w", computeChunks(vcpu, 1 * msec, 5, done, finished));
    // Pollute core 1 with host state first.
    machine->core(1).uarch().run(sim::hostDomain, 100000);
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 1, nullptr));
    sim.run();
    EXPECT_EQ(done, 5);
    // Finished later than pure compute because of cold structures.
    EXPECT_GT(finished, 5 * msec + 1 * cg::sim::usec);
}

TEST_F(VCpuFixture, TwoGuestProcsShareTheVcpuCooperatively)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(cfg);
    int done_a = 0, done_b = 0;
    Tick fin_a = 0, fin_b = 0;
    vcpu.startGuest("a", computeChunks(vcpu, 2 * msec, 2, done_a, fin_a));
    vcpu.startGuest("b", computeChunks(vcpu, 2 * msec, 2, done_b, fin_b));
    std::vector<ExitInfo> exits;
    sim.spawn("runner", runner(vcpu, 1, exits, 1, nullptr));
    sim.runFor(20 * msec);
    EXPECT_EQ(done_a, 2);
    EXPECT_EQ(done_b, 2);
    // Serialised on one vCPU: total is at least the sum of work.
    EXPECT_GE(std::max(fin_a, fin_b), 8 * msec);
}
