/**
 * @file
 * Integration tests for Kernel::runGuest: guest execution gated on host
 * thread scheduling (the shared-core baseline the paper compares
 * against). A preempted vCPU thread must mean a paused guest.
 */

#include <gtest/gtest.h>

#include <vector>

#include "guest/vm.hh"
#include "host/kernel.hh"
#include "sim/simulation.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
namespace host = cg::host;
using namespace cg::guest;
using cg::rmm::ExitInfo;
using cg::rmm::ExitReason;
using sim::Proc;
using sim::Tick;
using sim::msec;
using sim::usec;

namespace {

Proc<void>
guestWork(Tick chunk, int n, int& done, Tick& finished, VCpu& vcpu)
{
    for (int i = 0; i < n; ++i) {
        co_await sim::Compute{chunk};
        ++done;
    }
    finished = vcpu.vm().machine().sim().now();
}

/** A KVM-like vCPU thread: run guest, collect exits, re-enter. */
Proc<void>
vcpuThread(host::Kernel& k, VCpu& vcpu, std::vector<ExitInfo>& exits,
           int max_exits)
{
    while (static_cast<int>(exits.size()) < max_exits) {
        co_await k.runGuest(vcpu);
        ExitInfo e = vcpu.takeExit();
        exits.push_back(e);
        if (e.reason == ExitReason::Shutdown)
            break;
        if (e.reason == ExitReason::TimerIrq)
            vcpu.injectVirq(hw::vtimerPpi);
        // Small KVM handling cost per exit.
        co_await sim::Compute{2 * usec};
    }
}

Proc<void>
hogLoop(Tick chunk, int iters, int& count)
{
    for (int i = 0; i < iters; ++i) {
        co_await sim::Compute{chunk};
        ++count;
    }
}

struct SharedRunFixture : ::testing::Test {
    sim::Simulation sim;
    hw::MachineConfig mcfg;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<host::Kernel> kernel;
    std::unique_ptr<Vm> vm;

    VCpu&
    boot(int cores, VmConfig cfg = {})
    {
        mcfg.numCores = cores;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        kernel = std::make_unique<host::Kernel>(*machine);
        vm = std::make_unique<Vm>(*machine, cfg, sim::firstVmDomain);
        return vm->vcpu(0);
    }
};

} // namespace

TEST_F(SharedRunFixture, GuestRunsInsideHostThread)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(2, cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("w", guestWork(5 * msec, 2, done, finished, vcpu));
    std::vector<ExitInfo> exits;
    kernel->createThread("vcpu0", vcpuThread(*kernel, vcpu, exits, 1));
    sim.runFor(50 * msec);
    EXPECT_EQ(done, 2);
    EXPECT_GE(finished, 10 * msec);
    EXPECT_LT(finished, 12 * msec); // alone on the machine: no stalls
}

TEST_F(SharedRunFixture, PreemptionPausesGuest)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(1, cfg); // single core: vCPU contends with hog
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("w", guestWork(20 * msec, 1, done, finished, vcpu));
    std::vector<ExitInfo> exits;
    kernel->createThread("vcpu0", vcpuThread(*kernel, vcpu, exits, 1));
    int hog_count = 0;
    kernel->createThread("hog", hogLoop(20 * msec, 1, hog_count));
    sim.runFor(60 * msec);
    EXPECT_EQ(done, 1);
    EXPECT_EQ(hog_count, 1);
    // Both made progress interleaved: guest took ~2x its pure time.
    EXPECT_GE(finished, 35 * msec);
    // The guest accounted only its own CPU time.
    EXPECT_GE(vcpu.guestCpuTime, 20 * msec);
    EXPECT_LT(vcpu.guestCpuTime, 22 * msec);
}

TEST_F(SharedRunFixture, TimerExitsFlowThroughKvmLoop)
{
    VmConfig cfg;
    cfg.tickPeriod = 4 * msec;
    VCpu& vcpu = boot(2, cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("w", guestWork(10 * msec, 1, done, finished, vcpu));
    vcpu.setTickPeriod(cfg.tickPeriod);
    std::vector<ExitInfo> exits;
    kernel->createThread("vcpu0", vcpuThread(*kernel, vcpu, exits, 6));
    sim.runFor(30 * msec);
    EXPECT_EQ(done, 1);
    // Each 4ms tick: TimerIrq exit + TimerWrite exit.
    ASSERT_GE(exits.size(), 4u);
    EXPECT_EQ(exits[0].reason, ExitReason::TimerIrq);
    EXPECT_EQ(exits[1].reason, ExitReason::TimerWrite);
    EXPECT_GE(vcpu.ticksHandled.value(), 2u);
}

TEST_F(SharedRunFixture, FifoVcpuThreadBeatsFairCompetitors)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(1, cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("w", guestWork(10 * msec, 1, done, finished, vcpu));
    std::vector<ExitInfo> exits;
    kernel->createThread("vcpu0", vcpuThread(*kernel, vcpu, exits, 1),
                         host::SchedClass::Fifo);
    int hog_count = 0;
    kernel->createThread("hog", hogLoop(5 * msec, 4, hog_count));
    sim.runFor(40 * msec);
    EXPECT_EQ(done, 1);
    // FIFO vCPU ran to completion first (~10ms), hog afterwards.
    EXPECT_LT(finished, 12 * msec);
}

TEST_F(SharedRunFixture, HostKickEndsGuestRun)
{
    VmConfig cfg;
    cfg.tickPeriod = 0;
    VCpu& vcpu = boot(2, cfg);
    int done = 0;
    Tick finished = 0;
    vcpu.startGuest("w", guestWork(50 * msec, 1, done, finished, vcpu));
    std::vector<ExitInfo> exits;
    kernel->createThread("vcpu0", vcpuThread(*kernel, vcpu, exits, 2));
    sim.runFor(10 * msec);
    EXPECT_TRUE(exits.empty());
    vcpu.forceExit(ExitReason::HostKick);
    sim.runFor(1 * msec);
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0].reason, ExitReason::HostKick);
    sim.runFor(60 * msec);
    EXPECT_EQ(done, 1); // work completed after re-entry
}
