/**
 * @file
 * Randomized stress test of the host kernel: a churn of threads with
 * random scheduling classes, affinities, compute/sleep/yield patterns,
 * IPIs, and hotplug events. The invariant is simply that everything
 * completes and every thread receives at least the CPU time it asked
 * for (work conservation under preemption and migration).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/kernel.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
using namespace cg::host;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::Delay;
using sim::msec;
using sim::usec;

namespace {

struct WorkLog {
    Tick requested = 0;
    Tick startedAt = 0;
    Tick finishedAt = 0;
    bool done = false;
};

Proc<void>
churnThread(Kernel& k, sim::Rng rng, WorkLog& log, sim::Simulation& s)
{
    log.startedAt = s.now();
    const int rounds = static_cast<int>(rng.uniformInt(5, 25));
    for (int i = 0; i < rounds; ++i) {
        switch (rng.uniformInt(0, 2)) {
          case 0: {
            const Tick work =
                rng.uniformInt(50, 4000) * usec;
            log.requested += work;
            co_await Compute{work};
            break;
          }
          case 1:
            co_await Delay{rng.uniformInt(10, 2000) * usec};
            break;
          case 2:
            co_await Compute{rng.uniformInt(5, 50) * usec};
            log.requested += 0; // yield spin, unaccounted
            co_await k.yield();
            break;
        }
    }
    log.finishedAt = s.now();
    log.done = true;
}

Proc<void>
hotplugChurn(Kernel& k, sim::Rng rng, int rounds, bool& done)
{
    for (int i = 0; i < rounds; ++i) {
        co_await Delay{rng.uniformInt(1, 8) * msec};
        // Toggle one of cores 2..3; core 0..1 stay up for the churn.
        const sim::CoreId c =
            static_cast<sim::CoreId>(rng.uniformInt(2, 3));
        if (k.isOnline(c)) {
            if (k.onlineCount() > 2)
                co_await k.offlineCore(c);
        } else {
            co_await k.onlineCore(c);
        }
    }
    // Leave everything online for the drain phase.
    for (sim::CoreId c = 0; c < 4; ++c) {
        if (!k.isOnline(c))
            co_await k.onlineCore(c);
    }
    done = true;
}

class SchedStress : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(SchedStress, EverythingCompletesUnderChurn)
{
    sim::Simulation s(GetParam());
    hw::MachineConfig mcfg;
    mcfg.numCores = 4;
    hw::Machine machine(s, mcfg);
    Kernel kernel(machine);
    sim::Rng rng(GetParam() * 77 + 1);

    constexpr int numThreads = 24;
    std::vector<std::unique_ptr<WorkLog>> logs;
    for (int i = 0; i < numThreads; ++i) {
        logs.push_back(std::make_unique<WorkLog>());
        const SchedClass cls =
            rng.chance(0.25) ? SchedClass::Fifo : SchedClass::Fair;
        // Random affinity over cores 0..3, never empty; hotplug churn
        // may still break it, as in Linux.
        CpuMask mask(rng.uniformInt(1, 15));
        kernel.createThread(sim::strFormat("churn%d", i),
                            churnThread(kernel, rng.fork(), *logs[i],
                                        s),
                            cls, mask);
    }
    bool hotplug_done = false;
    kernel.createThread("hotplug",
                        hotplugChurn(kernel, rng.fork(), 10,
                                     hotplug_done),
                        SchedClass::Fair, CpuMask::firstN(2));
    const int ipi = kernel.allocateIpi();
    int ipi_count = 0;
    kernel.setIpiHandler(ipi, [&ipi_count](sim::CoreId) {
        ++ipi_count;
    });
    for (int i = 0; i < 50; ++i) {
        s.queue().schedule(
            rng.uniformInt(1, 40) * msec,
            [&kernel, &rng, ipi] {
                for (sim::CoreId c = 0; c < 4; ++c) {
                    if (kernel.isOnline(c) && rng.chance(0.5))
                        kernel.sendIpi(c, ipi);
                }
            });
    }

    s.run(120 * sim::sec);
    EXPECT_TRUE(hotplug_done);
    for (int i = 0; i < numThreads; ++i) {
        ASSERT_TRUE(logs[i]->done) << "thread " << i << " stuck";
        // Work conservation: elapsed wall time covers requested CPU.
        EXPECT_GE(logs[i]->finishedAt - logs[i]->startedAt,
                  logs[i]->requested)
            << "thread " << i;
    }
    EXPECT_GT(ipi_count, 0);
    EXPECT_GT(kernel.stats().contextSwitches.value(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedStress,
                         ::testing::Values(101u, 202u, 303u, 404u,
                                           505u));
