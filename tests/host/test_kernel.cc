/** @file Unit tests for the host kernel scheduler, threads, and IPIs. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "host/kernel.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

using namespace cg::host;
namespace hw = cg::hw;
namespace sim = cg::sim;
using cg::sim::Proc;
using cg::sim::Simulation;
using cg::sim::Tick;
using cg::sim::Delay;
using cg::sim::Compute;
using cg::sim::msec;
using cg::sim::usec;
using cg::sim::nsec;

namespace {

struct KernelFixture : ::testing::Test {
    Simulation sim;
    hw::MachineConfig cfg;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<Kernel> kernel;

    void
    boot(int cores)
    {
        cfg.numCores = cores;
        machine = std::make_unique<hw::Machine>(sim, cfg);
        kernel = std::make_unique<Kernel>(*machine);
    }
};

Proc<void>
computeOnce(Simulation& sim, Tick amount, Tick& finished_at)
{
    co_await Compute{amount};
    finished_at = sim.now();
}

Proc<void>
computeLoop(Tick chunk, int iters, int& count)
{
    for (int i = 0; i < iters; ++i) {
        co_await Compute{chunk};
        ++count;
    }
}

Proc<void>
sleepThenCompute(Simulation& sim, Tick sleep_for, Tick work,
                 Tick& finished_at)
{
    co_await Delay{sleep_for};
    co_await Compute{work};
    finished_at = sim.now();
}

Proc<void>
yieldingPoller(Kernel& k, bool& stop, int& spins)
{
    while (!stop) {
        co_await Compute{1 * usec};
        ++spins;
        co_await k.yield();
    }
}

Proc<void>
stopAfter(Simulation& sim, Tick when, bool& stop)
{
    co_await Delay{when};
    stop = true;
    (void)sim;
}

Proc<void>
waitChannel(cg::sim::Channel<int>& ch, int& got, Simulation& sim,
            Tick& when)
{
    got = co_await ch.recv();
    when = sim.now();
}

Proc<void>
sendChannelLater(cg::sim::Channel<int>& ch, Tick after, int value)
{
    co_await Delay{after};
    ch.send(value);
}

Proc<void>
offlineThenFlag(Kernel& k, sim::CoreId c, bool& done)
{
    co_await k.offlineCore(c);
    done = true;
}

Proc<void>
onlineThenFlag(Kernel& k, sim::CoreId c, bool& done)
{
    co_await k.onlineCore(c);
    done = true;
}

} // namespace

TEST_F(KernelFixture, SingleThreadComputeTakesItsTime)
{
    boot(2);
    Tick done = 0;
    kernel->createThread("t", computeOnce(sim, 10 * msec, done));
    sim.run();
    // Work plus dispatch overheads; strictly more than the pure work.
    EXPECT_GE(done, 10 * msec);
    EXPECT_LT(done, 10 * msec + 100 * usec);
}

TEST_F(KernelFixture, ThreadsSpreadAcrossIdleCores)
{
    boot(4);
    Tick d1 = 0, d2 = 0, d3 = 0, d4 = 0;
    kernel->createThread("a", computeOnce(sim, 10 * msec, d1));
    kernel->createThread("b", computeOnce(sim, 10 * msec, d2));
    kernel->createThread("c", computeOnce(sim, 10 * msec, d3));
    kernel->createThread("d", computeOnce(sim, 10 * msec, d4));
    sim.run();
    // All four ran in parallel on distinct cores.
    for (Tick d : {d1, d2, d3, d4}) {
        EXPECT_GE(d, 10 * msec);
        EXPECT_LT(d, 11 * msec);
    }
}

TEST_F(KernelFixture, AffinityConfinesThreadsToOneCore)
{
    boot(4);
    Tick d1 = 0, d2 = 0;
    kernel->createThread("a", computeOnce(sim, 10 * msec, d1),
                         SchedClass::Fair, CpuMask::single(2));
    kernel->createThread("b", computeOnce(sim, 10 * msec, d2),
                         SchedClass::Fair, CpuMask::single(2));
    sim.run();
    // Serialised on core 2: the later one takes ~20ms.
    const Tick later = std::max(d1, d2);
    EXPECT_GE(later, 20 * msec);
}

TEST_F(KernelFixture, FairThreadsTimesliceOnSharedCore)
{
    boot(1);
    int c1 = 0, c2 = 0;
    // Two long-running threads on one core: both should make progress
    // before either finishes (timeslicing), so completion counts stay
    // close as time advances.
    kernel->createThread("a", computeLoop(20 * msec, 5, c1));
    kernel->createThread("b", computeLoop(20 * msec, 5, c2));
    sim.runFor(100 * msec);
    EXPECT_GT(c1, 0);
    EXPECT_GT(c2, 0);
    sim.run();
    EXPECT_EQ(c1, 5);
    EXPECT_EQ(c2, 5);
}

TEST_F(KernelFixture, FifoPreemptsFairImmediately)
{
    boot(1);
    Tick fair_done = 0, fifo_done = 0;
    kernel->createThread("fair", computeOnce(sim, 50 * msec, fair_done),
                         SchedClass::Fair);
    // The FIFO thread wakes at 10ms and must finish long before the
    // fair thread despite arriving later.
    kernel->createThread(
        "fifo", sleepThenCompute(sim, 10 * msec, 5 * msec, fifo_done),
        SchedClass::Fifo);
    sim.run();
    EXPECT_LT(fifo_done, fair_done);
    EXPECT_GE(fifo_done, 15 * msec);
    EXPECT_LT(fifo_done, 16 * msec);
    // The fair thread paid for the preemption window.
    EXPECT_GE(fair_done, 55 * msec);
}

TEST_F(KernelFixture, BlockedThreadReleasesCore)
{
    boot(1);
    cg::sim::Channel<int> ch;
    int got = 0;
    Tick got_at = 0;
    Tick other_done = 0;
    kernel->createThread("waiter", waitChannel(ch, got, sim, got_at));
    kernel->createThread("worker",
                         computeOnce(sim, 5 * msec, other_done));
    kernel->createThread("sender", sendChannelLater(ch, 20 * msec, 7));
    sim.run();
    // The worker was not blocked behind the waiting thread.
    EXPECT_LT(other_done, 6 * msec);
    EXPECT_EQ(got, 7);
    EXPECT_GE(got_at, 20 * msec);
}

TEST_F(KernelFixture, YieldRotatesEqualPriorityThreads)
{
    boot(1);
    bool stop = false;
    int s1 = 0, s2 = 0;
    kernel->createThread("p1", yieldingPoller(*kernel, stop, s1));
    kernel->createThread("p2", yieldingPoller(*kernel, stop, s2));
    sim.spawn("stopper", stopAfter(sim, 5 * msec, stop));
    sim.run();
    EXPECT_GT(s1, 0);
    EXPECT_GT(s2, 0);
    // Round-robin: neither poller starves the other.
    EXPECT_NEAR(static_cast<double>(s1), static_cast<double>(s2),
                static_cast<double>(s1 + s2) * 0.25);
}

TEST_F(KernelFixture, HotplugOfflineMigratesThreads)
{
    boot(2);
    int count = 0;
    // Pin work to core 1, then offline core 1: affinity is broken and
    // the work completes on core 0.
    kernel->createThread("w", computeLoop(5 * msec, 10, count),
                         SchedClass::Fair, CpuMask::single(1));
    bool offlined = false;
    kernel->createThread("planner",
                         offlineThenFlag(*kernel, 1, offlined),
                         SchedClass::Fair, CpuMask::single(0));
    sim.run();
    EXPECT_TRUE(offlined);
    EXPECT_FALSE(kernel->isOnline(1));
    EXPECT_EQ(kernel->onlineCount(), 1);
    EXPECT_EQ(count, 10);
}

TEST_F(KernelFixture, HotplugRoundTripRestoresCore)
{
    boot(2);
    bool offlined = false, onlined = false;
    kernel->createThread("planner", offlineThenFlag(*kernel, 1, offlined),
                         SchedClass::Fair, CpuMask::single(0));
    sim.run();
    ASSERT_TRUE(offlined);
    kernel->createThread("planner2", onlineThenFlag(*kernel, 1, onlined),
                         SchedClass::Fair, CpuMask::single(0));
    sim.run();
    ASSERT_TRUE(onlined);
    EXPECT_TRUE(kernel->isOnline(1));
    // Invariant I6: the restored core can run threads again.
    Tick done = 0;
    kernel->createThread("w", computeOnce(sim, 1 * msec, done),
                         SchedClass::Fair, CpuMask::single(1));
    sim.run();
    EXPECT_GE(done, 1 * msec);
    EXPECT_GT(done, 0u);
}

TEST_F(KernelFixture, CannotOfflineLastCore)
{
    boot(1);
    // Validation is eager, so the guard throws at the call site.
    EXPECT_THROW(
        { auto p = kernel->offlineCore(0); (void)p; },
        cg::sim::FatalError);
}

TEST_F(KernelFixture, CannotOfflineAlreadyOfflineCore)
{
    boot(2);
    bool offlined = false;
    kernel->createThread("planner", offlineThenFlag(*kernel, 1, offlined),
                         SchedClass::Fair, CpuMask::single(0));
    sim.run();
    ASSERT_TRUE(offlined);
    EXPECT_THROW(
        { auto p = kernel->offlineCore(1); (void)p; },
        cg::sim::FatalError);
}

TEST_F(KernelFixture, IpiAllocationSkipsReservedSgis)
{
    boot(2);
    const int first = kernel->allocateIpi();
    EXPECT_GE(first, 8);
    const int second = kernel->allocateIpi();
    EXPECT_NE(first, second);
}

TEST_F(KernelFixture, IpiDeliveredToHandler)
{
    boot(2);
    const int ipi = kernel->allocateIpi();
    std::vector<sim::CoreId> fired_on;
    kernel->setIpiHandler(ipi, [&](sim::CoreId c) {
        fired_on.push_back(c);
    });
    kernel->sendIpi(1, ipi);
    sim.run();
    ASSERT_EQ(fired_on.size(), 1u);
    EXPECT_EQ(fired_on[0], 1);
    EXPECT_EQ(kernel->stats().ipis.value(), 1u);
}

TEST_F(KernelFixture, IrqHandlerStealsCpuFromCurrentThread)
{
    boot(1);
    Tick done = 0;
    kernel->createThread("w", computeOnce(sim, 10 * msec, done));
    const int ipi = kernel->allocateIpi();
    kernel->setIpiHandler(ipi, [](sim::CoreId) {});
    // Fire a burst of IPIs at the busy core.
    for (int i = 0; i < 100; ++i) {
        sim.queue().schedule(static_cast<Tick>(i + 1) * 50 * usec,
                             [this, ipi] { kernel->sendIpi(0, ipi); });
    }
    sim.run();
    // 100 x irqEntry ~= 50us pushed the completion out.
    EXPECT_GT(done, 10 * msec + 30 * usec);
}

TEST_F(KernelFixture, ContextSwitchStatsAccumulate)
{
    boot(1);
    int c1 = 0, c2 = 0;
    kernel->createThread("a", computeLoop(10 * msec, 3, c1));
    kernel->createThread("b", computeLoop(10 * msec, 3, c2));
    sim.run();
    EXPECT_GE(kernel->stats().contextSwitches.value(), 2u);
}

TEST_F(KernelFixture, ThreadFinishLeavesCoreUsable)
{
    boot(1);
    Tick d1 = 0, d2 = 0;
    kernel->createThread("a", computeOnce(sim, 1 * msec, d1));
    sim.run();
    kernel->createThread("b", computeOnce(sim, 1 * msec, d2));
    sim.run();
    EXPECT_GT(d1, 0u);
    EXPECT_GT(d2, d1);
}
