/** @file Unit tests for the inline-storage vector SmallVec. */

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "sim/small_vec.hh"

using cg::sim::SmallVec;

TEST(SmallVec, StartsEmptyWithInlineCapacity)
{
    SmallVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVec, PushBackWithinInlineStorage)
{
    SmallVec<int, 4> v;
    for (int i = 0; i < 4; ++i)
        v.push_back(i * 10);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 10);
}

TEST(SmallVec, SpillsToHeapPreservingElements)
{
    SmallVec<int, 2> v;
    for (int i = 0; i < 40; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 40u);
    EXPECT_GE(v.capacity(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, WorksWithNonTrivialElementType)
{
    SmallVec<std::string, 2> v;
    v.push_back("alpha");
    v.push_back("beta");
    v.push_back(std::string(100, 'x')); // forces heap growth
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "alpha");
    EXPECT_EQ(v[1], "beta");
    EXPECT_EQ(v[2], std::string(100, 'x'));
}

TEST(SmallVec, InsertKeepsOrder)
{
    SmallVec<int, 4> v;
    v.push_back(1);
    v.push_back(3);
    auto it = v.insert(v.begin() + 1, 2);
    EXPECT_EQ(*it, 2);
    v.insert(v.begin(), 0);
    v.insert(v.end(), 4); // also across the spill boundary
    ASSERT_EQ(v.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, EraseShiftsDown)
{
    SmallVec<int, 8> v;
    for (int i = 0; i < 5; ++i)
        v.push_back(i);
    auto it = v.erase(v.begin() + 2);
    EXPECT_EQ(*it, 3);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 0);
    EXPECT_EQ(v[1], 1);
    EXPECT_EQ(v[2], 3);
    EXPECT_EQ(v[3], 4);
    v.erase(v.begin() + 3); // erase last
    EXPECT_EQ(v.size(), 3u);
}

TEST(SmallVec, CopyAndMoveSemantics)
{
    SmallVec<std::string, 2> a;
    a.push_back("one");
    a.push_back("two");
    a.push_back("three"); // on heap

    SmallVec<std::string, 2> copy(a);
    EXPECT_EQ(copy.size(), 3u);
    EXPECT_EQ(copy[2], "three");
    EXPECT_EQ(a.size(), 3u); // source untouched

    SmallVec<std::string, 2> moved(std::move(a));
    EXPECT_EQ(moved.size(), 3u);
    EXPECT_EQ(moved[0], "one");
    EXPECT_EQ(a.size(), 0u); // moved-from is empty but usable
    a.push_back("again");
    EXPECT_EQ(a[0], "again");

    SmallVec<std::string, 2> assigned;
    assigned = copy;
    EXPECT_EQ(assigned.size(), 3u);
    assigned = std::move(moved);
    EXPECT_EQ(assigned.size(), 3u);
    EXPECT_EQ(assigned[1], "two");
}

TEST(SmallVec, ClearAllowsReuse)
{
    SmallVec<int, 2> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(i);
    v.clear();
    EXPECT_TRUE(v.empty());
    v.push_back(99);
    EXPECT_EQ(v[0], 99);
}

TEST(SmallVec, IterationMatchesContents)
{
    SmallVec<int, 4> v;
    int sum = 0;
    for (int i = 1; i <= 6; ++i)
        v.push_back(i);
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 21);
}
