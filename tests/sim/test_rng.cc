/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace cg::sim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsAboutHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectssBounds)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniformInt(10, 20);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 20u);
    }
}

TEST(Rng, UniformIntSingleValue)
{
    Rng r(17);
    EXPECT_EQ(r.uniformInt(5, 5), 5u);
}

TEST(Rng, NormalMoments)
{
    Rng r(19);
    const int n = 200000;
    double sum = 0, sumsq = 0;
    for (int i = 0; i < n; ++i) {
        double x = r.normal(10.0, 2.0);
        sum += x;
        sumsq += x * x;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng r(23);
    const int n = 200000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, JitteredStaysNearNominal)
{
    Rng r(31);
    const Tick nominal = 1000 * nsec;
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        Tick t = r.jittered(nominal, 0.05);
        sum += static_cast<double>(t);
    }
    EXPECT_NEAR(sum / n, static_cast<double>(nominal),
                0.01 * static_cast<double>(nominal));
}

TEST(Rng, JitteredZeroSpreadIsExact)
{
    Rng r(37);
    EXPECT_EQ(r.jittered(500 * nsec, 0.0), 500 * nsec);
    EXPECT_EQ(r.jittered(0, 0.3), 0u);
}

TEST(Rng, JitteredNeverNegative)
{
    Rng r(41);
    for (int i = 0; i < 10000; ++i) {
        // huge relative sd would go negative without clamping
        Tick t = r.jittered(10 * nsec, 5.0);
        ASSERT_GE(t, 0u); // Tick is unsigned; checks no wrap to huge value
        ASSERT_LT(t, 1000 * nsec);
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(43);
    Rng child = a.fork();
    // Child stream differs from the parent's continued stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == child.next64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResetsSequence)
{
    Rng a(47);
    std::uint64_t first = a.next64();
    a.next64();
    a.reseed(47);
    EXPECT_EQ(a.next64(), first);
}
