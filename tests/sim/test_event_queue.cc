/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace cg::sim;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30 * nsec, [&] { order.push_back(3); });
    q.schedule(10 * nsec, [&] { order.push_back(1); });
    q.schedule(20 * nsec, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30 * nsec);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(5 * nsec, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100 * nsec, [&] {
        q.scheduleIn(50 * nsec, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150 * nsec);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10 * nsec, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue q;
    EventId id = q.schedule(10 * nsec, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(invalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10 * nsec, [&] { ++count; });
    q.schedule(20 * nsec, [&] { ++count; });
    q.schedule(30 * nsec, [&] { ++count; });
    q.run(20 * nsec); // events at exactly the limit still run
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20 * nsec);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunToLimitAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.run(5 * usec);
    EXPECT_EQ(q.now(), 5 * usec);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleIn(1 * nsec, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 9 * nsec);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue q;
    int count = 0;
    q.schedule(1 * nsec, [&] { ++count; });
    q.schedule(2 * nsec, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountTracksCancellations)
{
    EventQueue q;
    EventId a = q.schedule(1 * nsec, [] {});
    q.schedule(2 * nsec, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInsideEventCallback)
{
    EventQueue q;
    bool second_ran = false;
    EventId second = q.schedule(20 * nsec, [&] { second_ran = true; });
    q.schedule(10 * nsec, [&] { q.cancel(second); });
    q.run();
    EXPECT_FALSE(second_ran);
}

// Regression: the pre-slot-pool queue let cancel() of an id whose event
// had already executed "succeed", undercounting pending() and leaking a
// lazy-delete set entry.
TEST(EventQueue, CancelAfterExecutionReturnsFalse)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10 * nsec, [&] { ran = true; });
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);

    // pending() must stay exact afterwards: a later event is still
    // counted and still runs.
    bool later = false;
    q.schedule(20 * nsec, [&] { later = true; });
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.cancel(id)); // still false on repeat
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(later);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelAfterStepPopReturnsFalseTwice)
{
    EventQueue q;
    EventId id = q.schedule(1 * nsec, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelOwnIdInsideCallbackReturnsFalse)
{
    EventQueue q;
    EventId self = invalidEventId;
    bool cancelled_self = true;
    self = q.schedule(5 * nsec, [&] {
        cancelled_self = q.cancel(self);
    });
    q.run();
    EXPECT_FALSE(cancelled_self);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, StaleIdOfRecycledSlotDoesNotCancelNewEvent)
{
    EventQueue q;
    // Consume a slot, then schedule again (recycling it). The stale id
    // must neither cancel nor disturb the new occupant.
    EventId old_id = q.schedule(1 * nsec, [] {});
    q.run();
    bool ran = false;
    EventId new_id = q.schedule(2 * nsec, [&] { ran = true; });
    EXPECT_NE(old_id, new_id);
    EXPECT_FALSE(q.cancel(old_id));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, PendingStaysExactUnderScheduleCancelChurn)
{
    EventQueue q;
    int ran = 0;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(q.schedule(Tick(i + 1) * nsec, [&] { ++ran; }));
    // Cancel every third; re-cancel to confirm idempotence.
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < ids.size(); i += 3) {
        EXPECT_TRUE(q.cancel(ids[i]));
        EXPECT_FALSE(q.cancel(ids[i]));
        ++cancelled;
    }
    EXPECT_EQ(q.pending(), 100u - cancelled);
    q.run();
    EXPECT_EQ(static_cast<std::size_t>(ran), 100u - cancelled);
    EXPECT_EQ(q.pending(), 0u);
    // Post-drain, every id is dead.
    for (EventId id : ids)
        EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RunLimitEventsExactlyAtLimitRun)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10 * nsec, [&] { order.push_back(1); });
    q.schedule(20 * nsec, [&] { order.push_back(2); });
    q.schedule(20 * nsec, [&] { order.push_back(3); });
    q.schedule(20 * nsec + 1, [&] { order.push_back(4); });
    q.run(20 * nsec);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 20 * nsec);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunLimitAdvancesNowWhenQueueDrainsEarly)
{
    EventQueue q;
    bool ran = false;
    q.schedule(3 * nsec, [&] { ran = true; });
    q.run(90 * nsec); // drains at t=3, then jumps to the limit
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), 90 * nsec);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunWithoutLimitLeavesNowAtLastEvent)
{
    EventQueue q;
    q.schedule(7 * nsec, [] {});
    q.run();
    EXPECT_EQ(q.now(), 7 * nsec);
}

// Out-of-order scheduling exercises the heap path; interleaved with
// in-order (sorted-run) arrivals, the pop order must still be the
// strict (when, insertion) total order.
TEST(EventQueue, TieBreakAcrossInOrderAndOutOfOrderArrivals)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(50 * nsec, [&] { order.push_back(0); }); // run
    q.schedule(10 * nsec, [&] { order.push_back(1); }); // heap
    q.schedule(50 * nsec, [&] { order.push_back(2); }); // run (tie w/ 0)
    q.schedule(10 * nsec, [&] { order.push_back(3); }); // heap (tie w/ 1)
    q.schedule(60 * nsec, [&] { order.push_back(4); }); // run
    q.schedule(30 * nsec, [&] { order.push_back(5); }); // heap
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 0, 2, 4}));
}

TEST(EventQueue, DeterministicOrderUnderHeavyChurnWithCancels)
{
    // Two identical schedules of interleaved in/out-of-order events
    // with cancellations must execute in the identical order.
    auto run_once = [] {
        EventQueue q;
        std::vector<int> order;
        std::vector<EventId> ids;
        for (int i = 0; i < 200; ++i) {
            // Times bounce around to mix the sorted run and the heap.
            const Tick t = Tick((i * 37) % 101) * nsec;
            ids.push_back(
                q.schedule(t, [&order, i] { order.push_back(i); }));
        }
        for (int i = 0; i < 200; i += 5)
            q.cancel(ids[static_cast<std::size_t>(i)]);
        q.run();
        return order;
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 160u);
}
