/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace cg::sim;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30 * nsec, [&] { order.push_back(3); });
    q.schedule(10 * nsec, [&] { order.push_back(1); });
    q.schedule(20 * nsec, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30 * nsec);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(5 * nsec, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100 * nsec, [&] {
        q.scheduleIn(50 * nsec, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150 * nsec);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10 * nsec, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue q;
    EventId id = q.schedule(10 * nsec, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(invalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10 * nsec, [&] { ++count; });
    q.schedule(20 * nsec, [&] { ++count; });
    q.schedule(30 * nsec, [&] { ++count; });
    q.run(20 * nsec); // events at exactly the limit still run
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20 * nsec);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunToLimitAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.run(5 * usec);
    EXPECT_EQ(q.now(), 5 * usec);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleIn(1 * nsec, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 9 * nsec);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue q;
    int count = 0;
    q.schedule(1 * nsec, [&] { ++count; });
    q.schedule(2 * nsec, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountTracksCancellations)
{
    EventQueue q;
    EventId a = q.schedule(1 * nsec, [] {});
    q.schedule(2 * nsec, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInsideEventCallback)
{
    EventQueue q;
    bool second_ran = false;
    EventId second = q.schedule(20 * nsec, [&] { second_ran = true; });
    q.schedule(10 * nsec, [&] { q.cancel(second); });
    q.run();
    EXPECT_FALSE(second_ran);
}
