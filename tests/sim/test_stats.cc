/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace cg::sim;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanAndStddev)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // Sample variance of this classic data set is 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.sample(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 3.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Distribution, PercentilesOfKnownData)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.median(), 50.5);
    EXPECT_NEAR(d.percentile(95), 95.05, 1e-9);
    EXPECT_NEAR(d.percentile(99), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
}

TEST(Distribution, MeanUnsortedThenSorted)
{
    Distribution d;
    d.sample(3);
    d.sample(1);
    d.sample(2);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 2.0);
    d.sample(10); // re-dirty after a sorted query
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
}

TEST(Distribution, SamplesKeepInsertionOrderAcrossQueries)
{
    // Regression: percentile() used to sort samples_ in place, so the
    // first percentile query flipped samples() from insertion order to
    // sorted order.
    Distribution d;
    d.sample(3.0);
    d.sample(1.0);
    d.sample(2.0);
    const std::vector<double> inserted{3.0, 1.0, 2.0};
    EXPECT_EQ(d.samples(), inserted);
    EXPECT_DOUBLE_EQ(d.percentile(50), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_EQ(d.samples(), inserted) << "query reordered samples()";
    d.sample(0.5); // re-dirty, query again, still insertion order
    EXPECT_DOUBLE_EQ(d.min(), 0.5);
    const std::vector<double> grown{3.0, 1.0, 2.0, 0.5};
    EXPECT_EQ(d.samples(), grown);
    d.reset();
    EXPECT_TRUE(d.samples().empty());
}

TEST(Distribution, EmptyAndSingle)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 7.0);
}

TEST(LatencyStat, UnitConversions)
{
    LatencyStat s;
    s.sample(1 * usec);
    s.sample(3 * usec);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.meanUs(), 2.0);
    EXPECT_DOUBLE_EQ(s.meanNs(), 2000.0);
    EXPECT_DOUBLE_EQ(s.maxUs(), 3.0);
}

TEST(Stats, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2757.6, 1), "2757.6");
}
