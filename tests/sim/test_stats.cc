/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/stats.hh"

using namespace cg::sim;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanAndStddev)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // Sample variance of this classic data set is 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.sample(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 3.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Distribution, PercentilesOfKnownData)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.median(), 50.5);
    EXPECT_NEAR(d.percentile(95), 95.05, 1e-9);
    EXPECT_NEAR(d.percentile(99), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
}

TEST(Distribution, MeanUnsortedThenSorted)
{
    Distribution d;
    d.sample(3);
    d.sample(1);
    d.sample(2);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 2.0);
    d.sample(10); // re-dirty after a sorted query
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
}

TEST(Distribution, SamplesKeepInsertionOrderAcrossQueries)
{
    // Regression: percentile() used to sort samples_ in place, so the
    // first percentile query flipped samples() from insertion order to
    // sorted order.
    Distribution d;
    d.sample(3.0);
    d.sample(1.0);
    d.sample(2.0);
    const std::vector<double> inserted{3.0, 1.0, 2.0};
    EXPECT_EQ(d.samples(), inserted);
    EXPECT_DOUBLE_EQ(d.percentile(50), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_EQ(d.samples(), inserted) << "query reordered samples()";
    d.sample(0.5); // re-dirty, query again, still insertion order
    EXPECT_DOUBLE_EQ(d.min(), 0.5);
    const std::vector<double> grown{3.0, 1.0, 2.0, 0.5};
    EXPECT_EQ(d.samples(), grown);
    d.reset();
    EXPECT_TRUE(d.samples().empty());
}

TEST(Distribution, P999OfKnownData)
{
    Distribution d;
    for (int i = 1; i <= 10000; ++i)
        d.sample(static_cast<double>(i));
    // rank = (n-1) * 0.999 = 9989.001 -> between 9990 and 9991.
    EXPECT_NEAR(d.percentile(99.9), 9990.001, 1e-6);
    EXPECT_NEAR(d.percentile(99), 9900.01, 1e-6);
}

TEST(Distribution, InterleavedSampleAndPercentileStaysFresh)
{
    // Regression for the sorted-cache staleness class of bug: any
    // sample()/percentile() interleaving must answer as if the cache
    // did not exist. Feed a scrambled deterministic sequence and
    // check every query against a freshly sorted reference.
    Distribution d;
    std::vector<double> ref;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 500; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const double v = static_cast<double>(x % 10007);
        d.sample(v);
        ref.push_back(v);
        if (i % 7 == 3 || i % 31 == 0) {
            std::vector<double> sorted = ref;
            std::sort(sorted.begin(), sorted.end());
            for (double p : {1.0, 50.0, 99.0, 99.9}) {
                const double rank =
                    (static_cast<double>(sorted.size()) - 1.0) * p /
                    100.0;
                const auto lo = static_cast<std::size_t>(rank);
                const std::size_t hi =
                    std::min(lo + 1, sorted.size() - 1);
                const double frac = rank - static_cast<double>(lo);
                const double expect =
                    sorted[lo] + frac * (sorted[hi] - sorted[lo]);
                EXPECT_NEAR(d.percentile(p), expect, 1e-9)
                    << "p" << p << " after " << ref.size()
                    << " samples";
            }
        }
    }
}

TEST(Distribution, QueryAfterEverySample)
{
    // The worst case for an incremental cache: a query between every
    // pair of samples, with values arriving in descending order so
    // each merge has to move the new element to the front.
    Distribution d;
    for (int i = 100; i >= 1; --i) {
        d.sample(static_cast<double>(i));
        EXPECT_DOUBLE_EQ(d.percentile(0), static_cast<double>(i));
        EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    }
    EXPECT_DOUBLE_EQ(d.median(), 50.5);
}

TEST(Distribution, EmptyAndSingle)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 7.0);
}

TEST(LatencyStat, UnitConversions)
{
    LatencyStat s;
    s.sample(1 * usec);
    s.sample(3 * usec);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.meanUs(), 2.0);
    EXPECT_DOUBLE_EQ(s.meanNs(), 2000.0);
    EXPECT_DOUBLE_EQ(s.maxUs(), 3.0);
    EXPECT_DOUBLE_EQ(s.meanMs(), 0.002);
}

TEST(LatencyStat, TailPercentilesInBothUnits)
{
    // 999 fast ops and one slow one: p99.9 lands on the boundary
    // between the fast cluster and the outlier.
    LatencyStat s;
    for (int i = 0; i < 999; ++i)
        s.sample(1 * usec);
    s.sample(10 * msec);
    // rank = 999 * 0.999 = 998.001, i.e. 0.1% of the way from the
    // last fast sample into the outlier.
    const double expect_ticks =
        static_cast<double>(1 * usec) +
        0.001 * static_cast<double>(10 * msec - 1 * usec);
    EXPECT_NEAR(s.p999Us(), expect_ticks / 1e6, 1e-6);
    EXPECT_NEAR(s.p999Ms(), expect_ticks / 1e9, 1e-9);
    EXPECT_DOUBLE_EQ(s.p50Us(), 1.0);
    EXPECT_DOUBLE_EQ(s.p50Ms(), 0.001);
}

TEST(TickConversions, Goldens)
{
    // The tick-per-picosecond convention, pinned: every latency
    // report routes through these two helpers.
    EXPECT_DOUBLE_EQ(ticksToUs(1 * usec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(1500 * nsec), 1.5);
    EXPECT_DOUBLE_EQ(ticksToMs(1 * msec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(250 * usec), 0.25);
    EXPECT_DOUBLE_EQ(ticksToUs(static_cast<double>(1 * msec)),
                     1000.0);
    EXPECT_DOUBLE_EQ(ticksToMs(static_cast<double>(1 * sec)),
                     1000.0);
    EXPECT_DOUBLE_EQ(ticksToUs(Tick{0}), 0.0);
    EXPECT_DOUBLE_EQ(ticksToMs(Tick{0}), 0.0);
}

TEST(Stats, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2757.6, 1), "2757.6");
}
