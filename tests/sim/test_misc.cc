/**
 * @file
 * Coverage for small public-API corners: name tables, unit
 * conversions, deferred process starts, and the process registry.
 */

#include <gtest/gtest.h>

#include <string>

#include "hw/machine.hh"
#include "rmm/exit.hh"
#include "rmm/granule.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace sim = cg::sim;
namespace hw = cg::hw;
namespace rmm = cg::rmm;

TEST(Misc, TimeConversions)
{
    EXPECT_DOUBLE_EQ(sim::toNsec(1 * sim::usec), 1000.0);
    EXPECT_DOUBLE_EQ(sim::toUsec(2500 * sim::nsec), 2.5);
    EXPECT_DOUBLE_EQ(sim::toMsec(1 * sim::sec), 1000.0);
    EXPECT_DOUBLE_EQ(sim::toSec(500 * sim::msec), 0.5);
    static_assert(sim::sec == 1000 * sim::msec);
    static_assert(sim::msec == 1000 * sim::usec);
    static_assert(sim::usec == 1000 * sim::nsec);
    static_assert(sim::nsec == 1000 * sim::psec);
}

TEST(Misc, NameTablesAreTotal)
{
    using rmm::ExitReason;
    for (auto r : {ExitReason::None, ExitReason::TimerIrq,
                   ExitReason::TimerWrite, ExitReason::SgiWrite,
                   ExitReason::Wfi, ExitReason::Mmio,
                   ExitReason::PageFault, ExitReason::Hypercall,
                   ExitReason::HostKick, ExitReason::Shutdown}) {
        EXPECT_STRNE(rmm::exitReasonName(r), "?");
    }
    using rmm::GranuleState;
    for (auto g : {GranuleState::Undelegated, GranuleState::Delegated,
                   GranuleState::Rd, GranuleState::Rec,
                   GranuleState::Rtt, GranuleState::Data}) {
        EXPECT_STRNE(rmm::granuleStateName(g), "?");
    }
    using rmm::RmiStatus;
    for (auto s : {RmiStatus::Success, RmiStatus::BadAddress,
                   RmiStatus::BadState, RmiStatus::BadArgs,
                   RmiStatus::WrongCore, RmiStatus::NoMemory,
                   RmiStatus::Busy}) {
        EXPECT_STRNE(rmm::rmiStatusName(s), "?");
    }
    for (auto w : {hw::World::Normal, hw::World::Realm,
                   hw::World::Root}) {
        EXPECT_STRNE(hw::worldName(w), "?");
    }
}

TEST(Misc, InterruptIdClassification)
{
    EXPECT_TRUE(hw::isSgi(0));
    EXPECT_TRUE(hw::isSgi(15));
    EXPECT_FALSE(hw::isSgi(16));
    EXPECT_TRUE(hw::isPpi(hw::vtimerPpi));
    EXPECT_TRUE(hw::isPpi(hw::ptimerPpi));
    EXPECT_FALSE(hw::isPpi(32));
    EXPECT_TRUE(hw::isSpi(64));
    EXPECT_FALSE(hw::isSpi(31));
}

namespace {

cg::sim::Proc<void>
setFlag(bool& flag)
{
    flag = true;
    co_return;
}

} // namespace

TEST(Misc, DeferredSpawnDoesNotAutoStart)
{
    sim::Simulation s;
    bool ran = false;
    sim::Process& p =
        s.spawnOn("deferred", s.freeDispatcher(), setFlag(ran), false);
    s.run();
    EXPECT_FALSE(ran);
    EXPECT_FALSE(p.done());
    s.freeDispatcher().wake(p);
    s.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(p.done());
}

TEST(Misc, ProcessRegistryKeepsCompletedProcesses)
{
    sim::Simulation s;
    bool a = false, b = false;
    s.spawn("a", setFlag(a));
    s.spawn("b", setFlag(b));
    s.run();
    ASSERT_EQ(s.processes().size(), 2u);
    EXPECT_EQ(s.processes()[0]->name(), "a");
    EXPECT_EQ(s.processes()[1]->name(), "b");
    EXPECT_TRUE(s.processes()[0]->done());
}

TEST(Misc, LatencyStatPercentiles)
{
    sim::LatencyStat l;
    for (int i = 1; i <= 100; ++i)
        l.sample(static_cast<sim::Tick>(i) * sim::usec);
    EXPECT_NEAR(l.p50Us(), 50.5, 0.01);
    EXPECT_NEAR(l.p95Us(), 95.05, 0.01);
    EXPECT_NEAR(l.p99Us(), 99.01, 0.01);
    EXPECT_DOUBLE_EQ(l.maxUs(), 100.0);
    l.reset();
    EXPECT_EQ(l.count(), 0u);
}
