/** @file Unit tests for ParallelRunner and deterministic sweep fanning. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

using namespace cg::sim;

TEST(ParallelRunner, RunsEverySubmittedJob)
{
    std::atomic<int> count{0};
    ParallelRunner pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ParallelRunner, WaitWithNoJobsReturnsImmediately)
{
    ParallelRunner pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ParallelRunner, WaitCanBeReusedAcrossBatches)
{
    std::atomic<int> count{0};
    ParallelRunner pool(3);
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ParallelRunner, MapIndexedReturnsResultsInIndexOrder)
{
    const auto out = ParallelRunner::mapIndexed<int>(
        64, [](std::size_t i) { return static_cast<int>(i * i); }, 4);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelRunner, SingleThreadPoolStillCompletes)
{
    const auto out = ParallelRunner::mapIndexed<int>(
        10, [](std::size_t i) { return static_cast<int>(i) + 1; }, 1);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 55);
}

TEST(ParallelRunner, DeriveSeedsIsDeterministicAndDistinct)
{
    const auto a = ParallelRunner::deriveSeeds(0xc0ffee, 16);
    const auto b = ParallelRunner::deriveSeeds(0xc0ffee, 16);
    EXPECT_EQ(a, b);
    const auto c = ParallelRunner::deriveSeeds(0xdead, 16);
    EXPECT_NE(a, c);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = i + 1; j < a.size(); ++j)
            EXPECT_NE(a[i], a[j]);
    }
    // A longer stream starts with the same prefix (stream property).
    const auto longer = ParallelRunner::deriveSeeds(0xc0ffee, 32);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(longer[i], a[i]);
}

namespace {

/** A tiny simulation whose end state depends only on its seed. */
std::uint64_t
seededRun(std::uint64_t seed)
{
    Simulation s(seed);
    std::uint64_t acc = 0;
    for (int i = 0; i < 50; ++i) {
        const Tick when = s.rng().jittered(Tick(i + 1) * usec, 0.1);
        s.queue().schedule(when, [&acc, &s] { acc ^= s.rng().next64(); });
    }
    s.run();
    return acc ^ s.now();
}

} // namespace

TEST(ParallelRunner, ParallelSimulationsMatchSerialBitForBit)
{
    const auto seeds = ParallelRunner::deriveSeeds(0x5eed, 12);

    std::vector<std::uint64_t> serial;
    for (std::uint64_t seed : seeds)
        serial.push_back(seededRun(seed));

    const auto par4 = ParallelRunner::mapIndexed<std::uint64_t>(
        seeds.size(), [&](std::size_t i) { return seededRun(seeds[i]); },
        4);
    EXPECT_EQ(par4, serial);

    const auto par1 = ParallelRunner::mapIndexed<std::uint64_t>(
        seeds.size(), [&](std::size_t i) { return seededRun(seeds[i]); },
        1);
    EXPECT_EQ(par1, serial);
}

TEST(ParallelRunner, DefaultThreadsIsPositive)
{
    EXPECT_GE(ParallelRunner::defaultThreads(), 1u);
    ParallelRunner pool; // default-sized pool constructs and joins
    EXPECT_GE(pool.threads(), 1u);
}

TEST(ParallelRunner, ParseThreadsAcceptsOneToHardware)
{
    EXPECT_EQ(ParallelRunner::parseThreads("1", 16), 1u);
    EXPECT_EQ(ParallelRunner::parseThreads("8", 16), 8u);
    EXPECT_EQ(ParallelRunner::parseThreads("16", 16), 16u);
}

TEST(ParallelRunner, ParseThreadsClampsOversubscription)
{
    EXPECT_EQ(ParallelRunner::parseThreads("64", 8), 8u);
    EXPECT_EQ(ParallelRunner::parseThreads("9", 8), 8u);
}

TEST(ParallelRunner, ParseThreadsRejectsZeroAndNegative)
{
    // CG_THREADS=0 / negative must not build a zero-thread pool (every
    // submit would then deadlock in wait()).
    EXPECT_EQ(ParallelRunner::parseThreads("0", 16), 16u);
    EXPECT_EQ(ParallelRunner::parseThreads("-3", 16), 16u);
    EXPECT_EQ(ParallelRunner::parseThreads("-9999999999999", 16), 16u);
}

TEST(ParallelRunner, ParseThreadsRejectsGarbage)
{
    EXPECT_EQ(ParallelRunner::parseThreads(nullptr, 16), 16u);
    EXPECT_EQ(ParallelRunner::parseThreads("", 16), 16u);
    EXPECT_EQ(ParallelRunner::parseThreads("abc", 16), 16u);
    EXPECT_EQ(ParallelRunner::parseThreads("8x", 16), 16u);
}
