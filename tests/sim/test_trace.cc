/** @file Unit tests for the Tracer ring and Chrome trace export. */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

using namespace cg::sim;

namespace {

/**
 * Minimal structural JSON validation: quotes pair up and braces /
 * brackets nest correctly outside strings. Catches the usual
 * hand-rolled-emitter failures (trailing commas are additionally
 * checked below; unbalanced nesting and unterminated strings here).
 */
bool
structurallyValidJson(const std::string& s)
{
    std::vector<char> stack;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_string) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !in_string && stack.empty();
}

} // namespace

TEST(Tracer, DisabledEmitsNothing)
{
    Simulation s;
    Tracer& t = s.tracer();
    EXPECT_FALSE(t.enabled());
    t.instant("x", Tracer::coresPid, 0);
    t.begin("y", Tracer::coresPid, 1);
    t.end("y", Tracer::coresPid, 1);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, RecordsEventsWithSimulatedTimestamps)
{
    Simulation s;
    s.tracer().enable();
    s.queue().scheduleIn(3 * usec, [&s] {
        s.tracer().begin("rec-run", Tracer::coresPid, 2);
    });
    s.queue().scheduleIn(5 * usec, [&s] {
        s.tracer().end("rec-run", Tracer::coresPid, 2, "exit", "wfi");
    });
    s.run();
    const auto evs = s.tracer().events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].ts, 3 * usec);
    EXPECT_EQ(evs[0].phase, 'B');
    EXPECT_EQ(evs[1].ts, 5 * usec);
    EXPECT_EQ(evs[1].phase, 'E');
    EXPECT_STREQ(evs[1].argName, "exit");
    EXPECT_STREQ(evs[1].argStr, "wfi");
}

TEST(Tracer, RingOverwritesOldestAndCountsDropped)
{
    Simulation s;
    Tracer& t = s.tracer();
    t.enable(4);
    for (int i = 0; i < 10; ++i)
        t.instant("e", Tracer::coresPid, i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    // The survivors are the newest four, oldest first.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(evs[static_cast<std::size_t>(i)].tid, 6 + i);
}

TEST(Tracer, ExportJsonSchema)
{
    Simulation s;
    Tracer& t = s.tracer();
    t.enable();
    t.begin("rec-run", Tracer::coresPid, 1);
    t.instant("doorbell-ring", Tracer::coresPid, 0);
    t.instant("ipi-send", Tracer::coresPid, 3, "ipi", 8);
    t.instant("syncrpc-post", Tracer::domainsPid, 2);
    t.end("rec-run", Tracer::coresPid, 1, "exit", "mmio");
    const std::string j = t.exportJson();

    EXPECT_TRUE(structurallyValidJson(j)) << j;
    EXPECT_EQ(j.find("{\"traceEvents\": ["), 0u);
    EXPECT_NE(j.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
    EXPECT_NE(j.find("\"droppedEvents\": 0"), std::string::npos);
    // No trailing commas (the other classic emitter bug).
    EXPECT_EQ(j.find(",]"), std::string::npos);
    EXPECT_EQ(j.find(",\n]"), std::string::npos);
    EXPECT_EQ(j.find(",}"), std::string::npos);

    // Metadata names both track families...
    EXPECT_NE(j.find("\"name\": \"cores\""), std::string::npos);
    EXPECT_NE(j.find("\"name\": \"vm-domains\""), std::string::npos);
    // ...and every (pid, tid) pair that appears gets a thread_name.
    EXPECT_NE(j.find("\"name\": \"core 1\""), std::string::npos);
    EXPECT_NE(j.find("\"name\": \"core 0\""), std::string::npos);
    EXPECT_NE(j.find("\"name\": \"core 3\""), std::string::npos);
    EXPECT_NE(j.find("\"name\": \"domain 2\""), std::string::npos);

    // The events themselves.
    EXPECT_NE(j.find("\"name\": \"rec-run\", \"ph\": \"B\""),
              std::string::npos);
    EXPECT_NE(j.find("\"args\": {\"ipi\": 8}"), std::string::npos);
    EXPECT_NE(j.find("\"args\": {\"exit\": \"mmio\"}"),
              std::string::npos);
    // Instants carry a scope.
    EXPECT_NE(j.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(j.find("\"s\": \"t\""), std::string::npos);
}

TEST(Tracer, TimestampsExportAsMicroseconds)
{
    Simulation s;
    s.tracer().enable();
    s.queue().scheduleIn(2500 * nsec, [&s] {
        s.tracer().instant("tick", Tracer::coresPid, 0);
    });
    s.run();
    // 2500 ns = 2.5 us.
    EXPECT_NE(s.tracer().exportJson().find("\"ts\": 2.500000"),
              std::string::npos);
}

TEST(Tracer, ReenableResetsTheRing)
{
    Simulation s;
    Tracer& t = s.tracer();
    t.enable(2);
    t.instant("a", Tracer::coresPid, 0);
    t.instant("b", Tracer::coresPid, 0);
    t.instant("c", Tracer::coresPid, 0);
    EXPECT_EQ(t.dropped(), 1u);
    t.enable(8);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.capacity(), 8u);
}

TEST(ObservabilityRequest, ClaimIsExactlyOnce)
{
    ObservabilityRequest::reset();
    EXPECT_FALSE(ObservabilityRequest::requested());
    EXPECT_FALSE(ObservabilityRequest::claim());

    ObservabilityRequest::configure("/tmp/x.txt", "");
    EXPECT_TRUE(ObservabilityRequest::requested());
    EXPECT_EQ(ObservabilityRequest::statsPath(), "/tmp/x.txt");
    EXPECT_TRUE(ObservabilityRequest::tracePath().empty());
    EXPECT_TRUE(ObservabilityRequest::claim());
    EXPECT_FALSE(ObservabilityRequest::claim());

    // A fresh configure() re-arms the claim.
    ObservabilityRequest::configure("", "/tmp/y.json");
    EXPECT_TRUE(ObservabilityRequest::claim());
    EXPECT_FALSE(ObservabilityRequest::claim());

    ObservabilityRequest::reset();
    EXPECT_FALSE(ObservabilityRequest::requested());
}
