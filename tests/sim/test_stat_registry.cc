/** @file Unit tests for the StatRegistry / StatGroup directory. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace cg::sim;

TEST(StatRegistry, RegisterLookupAndRemove)
{
    StatRegistry reg;
    Counter c;
    Accumulator a;
    Distribution d;
    LatencyStat l;
    std::uint64_t raw = 42;

    reg.add("rmm.exitsToHost", c);
    reg.add("host.latencyJitter", a);
    reg.add("net.rtt", d);
    reg.add("gapped.vm0.runToRun", l);
    reg.addValue("guest.vm0.vcpu0.guestCpuTime", raw);
    EXPECT_EQ(reg.size(), 5u);
    EXPECT_TRUE(reg.has("rmm.exitsToHost"));
    EXPECT_FALSE(reg.has("rmm.nope"));

    c.inc(7);
    ASSERT_NE(reg.counter("rmm.exitsToHost"), nullptr);
    EXPECT_EQ(reg.counter("rmm.exitsToHost")->value(), 7u);
    ASSERT_NE(reg.value("guest.vm0.vcpu0.guestCpuTime"), nullptr);
    EXPECT_EQ(*reg.value("guest.vm0.vcpu0.guestCpuTime"), 42u);

    // Typed lookup rejects kind mismatches.
    EXPECT_EQ(reg.accumulator("rmm.exitsToHost"), nullptr);
    EXPECT_EQ(reg.counter("net.rtt"), nullptr);
    EXPECT_NE(reg.distribution("net.rtt"), nullptr);
    EXPECT_NE(reg.latency("gapped.vm0.runToRun"), nullptr);
    EXPECT_NE(reg.accumulator("host.latencyJitter"), nullptr);

    reg.remove("net.rtt");
    EXPECT_FALSE(reg.has("net.rtt"));
    reg.remove("net.rtt"); // unknown name: ignored
    EXPECT_EQ(reg.size(), 4u);
}

TEST(StatRegistry, NamesAreSorted)
{
    StatRegistry reg;
    Counter c1, c2, c3;
    reg.add("zeta", c1);
    reg.add("alpha", c2);
    reg.add("mid.leaf", c3);
    const std::vector<std::string> expect{"alpha", "mid.leaf", "zeta"};
    EXPECT_EQ(reg.names(), expect);
}

TEST(StatRegistry, RemovePrefix)
{
    StatRegistry reg;
    Counter a, b, c;
    reg.add("kvm.vm0.exits", a);
    reg.add("kvm.vm0.injections", b);
    reg.add("kvm.vm1.exits", c);
    reg.removePrefix("kvm.vm0.");
    EXPECT_FALSE(reg.has("kvm.vm0.exits"));
    EXPECT_FALSE(reg.has("kvm.vm0.injections"));
    EXPECT_TRUE(reg.has("kvm.vm1.exits"));
}

TEST(StatRegistry, DumpTextGolden)
{
    StatRegistry reg;
    Counter c;
    c.inc(12);
    Distribution d;
    d.sample(1.0);
    d.sample(2.0);
    d.sample(3.0);
    reg.add("rmm.rmiCalls", c);
    reg.add("io.latency", d);
    const std::string expect =
        "io.latency                                       "
        "count 3 mean 2.000 p50 2.000 p95 2.900 p99 2.980 max 3.000\n"
        "rmm.rmiCalls                                     12\n";
    EXPECT_EQ(reg.dumpText(), expect);
}

TEST(StatRegistry, DumpJsonIsWellFormedAndTyped)
{
    StatRegistry reg;
    Counter c;
    c.inc(3);
    Accumulator a;
    a.sample(1.5);
    a.sample(2.5);
    LatencyStat l;
    l.sample(2 * usec);
    std::uint64_t raw = 9;
    reg.add("x.counter", c);
    reg.add("x.accum", a);
    reg.add("x.lat", l);
    reg.addValue("x.raw", raw);
    const std::string j = reg.dumpJson();
    EXPECT_NE(j.find("\"x.counter\": {\"kind\": \"counter\", "
                     "\"value\": 3}"),
              std::string::npos)
        << j;
    EXPECT_NE(j.find("\"x.accum\": {\"kind\": \"accumulator\""),
              std::string::npos);
    EXPECT_NE(j.find("\"x.lat\": {\"kind\": \"latency\""),
              std::string::npos);
    EXPECT_NE(j.find("\"x.raw\": {\"kind\": \"value\", \"value\": 9}"),
              std::string::npos);
    // Balanced braces, terminated by a newline.
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j[j.size() - 2], '}');
}

TEST(StatGroup, RegistersUnderPrefixAndUnregistersOnDestruction)
{
    StatRegistry reg;
    Counter keep;
    reg.add("keep.me", keep);
    {
        Counter c;
        LatencyStat l;
        StatGroup g(reg, "rmm");
        g.add("exitsToHost", c);
        g.add("runToRun", l);
        EXPECT_TRUE(reg.has("rmm.exitsToHost"));
        EXPECT_TRUE(reg.has("rmm.runToRun"));
        EXPECT_EQ(reg.size(), 3u);
    }
    // The group's entries are gone; unrelated entries survive.
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.has("keep.me"));
}

TEST(StatGroup, UnattachedGroupIsANoOp)
{
    StatGroup g;
    Counter c;
    g.add("anything", c); // must not crash or register anywhere
    EXPECT_FALSE(g.attached());
}

TEST(StatGroup, ReattachDropsPreviousEntries)
{
    StatRegistry reg;
    Counter c;
    StatGroup g(reg, "old");
    g.add("stat", c);
    EXPECT_TRUE(reg.has("old.stat"));
    g.attach(reg, "new");
    EXPECT_FALSE(reg.has("old.stat"));
    g.add("stat", c);
    EXPECT_TRUE(reg.has("new.stat"));
}

TEST(StatGroup, MoveTransfersOwnership)
{
    StatRegistry reg;
    Counter c;
    StatGroup a(reg, "grp");
    a.add("stat", c);
    StatGroup b(std::move(a));
    EXPECT_TRUE(reg.has("grp.stat"));
    a.clear(); // moved-from group owns nothing
    EXPECT_TRUE(reg.has("grp.stat"));
    b.clear();
    EXPECT_FALSE(reg.has("grp.stat"));
}
