/** @file Unit tests for the SBO callable wrapper EventFn. */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "sim/callback.hh"

using cg::sim::EventFn;

namespace {

/** Counts live instances to catch double-destroy / leaks. */
struct Tracked {
    static int live;
    int* hits;

    explicit Tracked(int* h) : hits(h) { ++live; }
    Tracked(const Tracked& o) : hits(o.hits) { ++live; }
    Tracked(Tracked&& o) noexcept : hits(o.hits) { ++live; }
    ~Tracked() { --live; }

    void operator()() const { ++*hits; }
};

int Tracked::live = 0;

} // namespace

TEST(EventFn, DefaultIsEmpty)
{
    EventFn fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    EventFn null_fn(nullptr);
    EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(EventFn, InvokesSmallLambdaInline)
{
    int hits = 0;
    EventFn fn([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(EventFn, InvokesOversizedLambdaViaHeap)
{
    // Capture well past inlineSize to force the heap fallback.
    std::array<std::uint64_t, 16> payload{};
    payload[7] = 42;
    int out = 0;
    EventFn fn([payload, &out] {
        out = static_cast<int>(payload[7]);
    });
    static_assert(sizeof(payload) > EventFn::inlineSize);
    fn();
    EXPECT_EQ(out, 42);
}

TEST(EventFn, AcceptsMoveOnlyCallable)
{
    auto p = std::make_unique<int>(5);
    int out = 0;
    EventFn fn([p = std::move(p), &out] { out = *p; });
    fn();
    EXPECT_EQ(out, 5);
}

TEST(EventFn, MoveTransfersOwnership)
{
    int hits = 0;
    EventFn a([&hits] { ++hits; });
    EventFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    EventFn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveAssignmentDestroysPreviousTarget)
{
    int hits_a = 0, hits_b = 0;
    {
        EventFn a(Tracked{&hits_a});
        EventFn b(Tracked{&hits_b});
        EXPECT_EQ(Tracked::live, 2);
        a = std::move(b); // a's Tracked must be destroyed
        EXPECT_EQ(Tracked::live, 1);
        a();
        EXPECT_EQ(hits_a, 0);
        EXPECT_EQ(hits_b, 1);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(EventFn, ResetDestroysAndEmpties)
{
    int hits = 0;
    EventFn fn(Tracked{&hits});
    EXPECT_EQ(Tracked::live, 1);
    fn.reset();
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_FALSE(static_cast<bool>(fn));
    fn.reset(); // idempotent
    EXPECT_EQ(Tracked::live, 0);
}

TEST(EventFn, HeapFallbackDestroysExactlyOnce)
{
    int hits = 0;
    struct Big {
        Tracked t;
        std::array<std::uint64_t, 8> pad{};
        explicit Big(int* h) : t(h) {}
        void operator()() const { t(); }
    };
    static_assert(sizeof(Big) > EventFn::inlineSize);
    {
        EventFn fn{Big{&hits}};
        EXPECT_EQ(Tracked::live, 1);
        EventFn other(std::move(fn));
        EXPECT_EQ(Tracked::live, 1); // pointer move, no copy
        other();
        EXPECT_EQ(hits, 1);
    }
    EXPECT_EQ(Tracked::live, 0);
}
