/**
 * @file
 * Tests for the slab recycler (sim/slab.hh) and the lifetime contracts
 * of the hot paths that were moved onto it: coroutine frames and
 * event-queue callback slots. The companion teardown-order tests for
 * the RPC tokens live in tests/core/test_rpc_teardown.cc.
 *
 * Under sanitizer builds the pool is compiled out (passthrough), so
 * the recycling assertions skip themselves and the lifetime tests run
 * against the real heap — which is exactly where ASan would catch a
 * use-after-free the pool could otherwise mask.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/proc.hh"
#include "sim/simulation.hh"
#include "sim/slab.hh"

namespace sim = cg::sim;

TEST(Slab, RecyclesWithinSizeClass)
{
    if (sim::slabPassthrough())
        GTEST_SKIP() << "sanitizer build: pool compiled out";
    void* a = sim::slabAlloc(48);
    sim::slabFree(a, 48);
    // Same 64-byte size class: the freed block must come straight back.
    void* b = sim::slabAlloc(40);
    EXPECT_EQ(a, b);
    sim::slabFree(b, 40);
}

TEST(Slab, DistinctSizeClassesDoNotShareBlocks)
{
    if (sim::slabPassthrough())
        GTEST_SKIP() << "sanitizer build: pool compiled out";
    void* a = sim::slabAlloc(64);
    sim::slabFree(a, 64);
    void* b = sim::slabAlloc(65); // next size class up
    EXPECT_NE(a, b);
    sim::slabFree(b, 65);
}

TEST(Slab, OversizedBlocksFallThroughToHeap)
{
    constexpr std::size_t big = 64 * 1024;
    void* p = sim::slabAlloc(big);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, big); // whole block must be writable
    sim::slabFree(p, big);
}

TEST(Slab, StatsTrackHitsAndLiveBlocks)
{
    if (sim::slabPassthrough())
        GTEST_SKIP() << "sanitizer build: pool compiled out";
    const sim::SlabStats before = sim::slabStats();
    void* a = sim::slabAlloc(128);
    EXPECT_EQ(sim::slabStats().liveBlocks, before.liveBlocks + 1);
    sim::slabFree(a, 128);
    void* b = sim::slabAlloc(128);
    const sim::SlabStats after = sim::slabStats();
    EXPECT_EQ(after.liveBlocks, before.liveBlocks + 1);
    EXPECT_GT(after.poolHits, before.poolHits);
    sim::slabFree(b, 128);
    EXPECT_EQ(sim::slabStats().liveBlocks, before.liveBlocks);
}

namespace {

sim::Proc<int>
addOne(int x)
{
    co_return x + 1;
}

sim::Proc<void>
churnFrames(int rounds, int& sum)
{
    for (int i = 0; i < rounds; ++i)
        sum += co_await addOne(i);
}

} // namespace

TEST(Slab, CoroutineFramesRecycleInSteadyState)
{
    if (sim::slabPassthrough())
        GTEST_SKIP() << "sanitizer build: pool compiled out";
    sim::Simulation s;
    int sum = 0;
    s.spawn("churn", churnFrames(64, sum));
    // One round warms the per-size-class free lists...
    const sim::SlabStats warm = sim::slabStats();
    s.run();
    EXPECT_EQ(sum, 64 * 65 / 2);
    // ...after which every child frame must come from the pool, not
    // the heap: misses may not grow once the first frames came back.
    const sim::SlabStats done = sim::slabStats();
    EXPECT_GT(done.poolHits, warm.poolHits);
}

namespace {

/** Canary capture: detects its own storage being overwritten. */
struct Canary {
    std::uint64_t a = 0x1122334455667788ull;
    std::uint64_t b = 0x99aabbccddeeff00ull;
    bool
    intact() const
    {
        return a == 0x1122334455667788ull && b == 0x99aabbccddeeff00ull;
    }
};

} // namespace

TEST(EventQueueSlots, RunningCallbackSlotIsNotReusedByReschedules)
{
    // The running callback's slot may only return to the free list
    // after it finishes: a callback that schedules floods of new
    // events (recycling slots, growing the pool past a chunk
    // boundary) must still see its own captures intact afterwards.
    sim::EventQueue q;
    bool checked = false;
    struct Ctx {
        sim::EventQueue* q;
        bool* checked;
    } ctx{&q, &checked};
    Canary canary;
    // 16-byte canary + one pointer: stays in the slot's inline buffer,
    // so a premature slot reuse would overwrite the canary itself.
    q.schedule(10, [&ctx, canary] {
        for (int i = 0; i < 600; ++i)
            ctx.q->schedule(ctx.q->now() + 1 + i, [] {});
        EXPECT_TRUE(canary.intact());
        *ctx.checked = true;
    });
    q.run(10);
    EXPECT_TRUE(checked);
    EXPECT_EQ(q.pending(), 600u);
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueSlots, SelfCancelFromInsideCallbackFails)
{
    sim::EventQueue q;
    sim::EventId id = sim::invalidEventId;
    bool cancelled = true;
    id = q.schedule(5, [&] { cancelled = q.cancel(id); });
    q.run();
    // By the time the callback runs, its id is consumed; a cancel must
    // fail (and must not corrupt the queue's accounting).
    EXPECT_FALSE(cancelled);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueSlots, StaleIdDoesNotCancelRecycledSlot)
{
    sim::EventQueue q;
    int fired = 0;
    const sim::EventId a = q.schedule(1, [&] { ++fired; });
    q.run(2);
    EXPECT_EQ(fired, 1);
    // The slot behind `a` is free; new events will recycle it. The
    // stale id must not cancel whichever new event got the slot.
    for (int i = 0; i < 4; ++i)
        q.schedule(10 + i, [&] { ++fired; });
    EXPECT_FALSE(q.cancel(a));
    q.run();
    EXPECT_EQ(fired, 5);
}

TEST(EventQueueSlots, ChunkGrowthInsideCallbackKeepsCapturesValid)
{
    // Growing the slot pool reallocates bookkeeping arrays but chunk
    // storage is stable: a callback scheduling enough events to force
    // multiple fresh chunks keeps executing from valid storage.
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(0, [&] {
        for (int i = 0; i < 2000; ++i)
            q.schedule(1, [&order, i] {
                if (i % 500 == 0)
                    order.push_back(i);
            });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 500, 1000, 1500}));
}
