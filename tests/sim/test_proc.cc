/**
 * @file
 * Unit tests for coroutine processes and the free dispatcher.
 *
 * Note the style: coroutines are named functions with parameters, never
 * capturing lambdas (the closure would be destroyed while the coroutine
 * frame still references it).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sync.hh"

using namespace cg::sim;

namespace {

Proc<void>
sleeper(Simulation& sim, Tick d, std::vector<Tick>& log)
{
    co_await Delay{d};
    log.push_back(sim.now());
}

Proc<int>
addLater(int a, int b)
{
    co_await Delay{1 * nsec};
    co_return a + b;
}

Proc<void>
addIntoOut(int& out)
{
    out = co_await addLater(2, 3);
}

Proc<int>
countDown(int n)
{
    if (n == 0)
        co_return 0;
    co_await Delay{1 * nsec};
    int sub = co_await countDown(n - 1);
    co_return sub + 1;
}

Proc<void>
runCountDown(int& result)
{
    result = co_await countDown(50);
}

Proc<void>
computeThenRecord(Simulation& sim, Tick amount, Tick& done)
{
    co_await Compute{amount};
    done = sim.now();
}

Proc<void>
sleepOnce(Tick d)
{
    co_await Delay{d};
}

Proc<void>
joinThenRecord(Simulation& sim, Process& target, Tick& when, bool& joined)
{
    co_await join(target);
    when = sim.now();
    joined = true;
}

Proc<void>
sleepThenFlag(Tick d, bool& flag)
{
    co_await Delay{d};
    flag = true;
}

Proc<void>
waitNotifyThenFlag(Notify& n, bool& flag)
{
    co_await n.wait();
    flag = true;
}

Proc<void>
thrower()
{
    co_await Delay{1 * nsec};
    throw std::runtime_error("boom");
}

Proc<void>
catcher(bool& caught)
{
    try {
        co_await thrower();
    } catch (const std::runtime_error& e) {
        caught = std::string(e.what()) == "boom";
    }
}

Proc<void>
delayAndCount(Tick d, int& counter)
{
    co_await Delay{d};
    ++counter;
}

Proc<void>
pushNow(std::vector<int>& log, int v)
{
    log.push_back(v);
    co_return;
}

Proc<void>
spawnerBody(Simulation& sim, std::vector<int>& log)
{
    log.push_back(1);
    sim.spawn("inner", pushNow(log, 2));
    co_await Delay{1 * nsec};
    log.push_back(3);
}

} // namespace

TEST(Proc, DelayAdvancesSimulatedTime)
{
    Simulation sim;
    std::vector<Tick> log;
    sim.spawn("s", sleeper(sim, 100 * nsec, log));
    sim.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], 100 * nsec);
}

TEST(Proc, ZeroDelayDoesNotSuspend)
{
    Simulation sim;
    std::vector<Tick> log;
    sim.spawn("s", sleeper(sim, 0, log));
    sim.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], 0u);
}

TEST(Proc, ProcessesInterleaveByTime)
{
    Simulation sim;
    std::vector<Tick> log;
    sim.spawn("a", sleeper(sim, 30 * nsec, log));
    sim.spawn("b", sleeper(sim, 10 * nsec, log));
    sim.spawn("c", sleeper(sim, 20 * nsec, log));
    sim.run();
    EXPECT_EQ(log, (std::vector<Tick>{10 * nsec, 20 * nsec, 30 * nsec}));
}

TEST(Proc, NestedProcReturnsValue)
{
    Simulation sim;
    int result = 0;
    sim.spawn("t", addIntoOut(result));
    sim.run();
    EXPECT_EQ(result, 5);
}

TEST(Proc, DeeplyNestedSubProcs)
{
    Simulation sim;
    int result = -1;
    sim.spawn("t", runCountDown(result));
    Tick end = sim.run();
    EXPECT_EQ(result, 50);
    EXPECT_EQ(end, 50 * nsec);
}

TEST(Proc, ComputeOnFreeDispatcherActsLikeDelay)
{
    Simulation sim;
    Tick done = 0;
    sim.spawn("t", computeThenRecord(sim, 7 * usec, done));
    sim.run();
    EXPECT_EQ(done, 7 * usec);
}

TEST(Proc, ProcessStateTransitions)
{
    Simulation sim;
    Process& p = sim.spawn("t", sleepOnce(10 * nsec));
    EXPECT_FALSE(p.done());
    sim.run();
    EXPECT_TRUE(p.done());
    EXPECT_EQ(p.state(), Process::State::Done);
}

TEST(Proc, JoinWaitsForCompletion)
{
    Simulation sim;
    Tick join_time = 0;
    bool joined = false;
    Process& worker = sim.spawn("w", sleepOnce(42 * nsec));
    sim.spawn("j", joinThenRecord(sim, worker, join_time, joined));
    sim.run();
    EXPECT_TRUE(joined);
    EXPECT_EQ(join_time, 42 * nsec);
}

TEST(Proc, JoinOnFinishedProcessReturnsImmediately)
{
    Simulation sim;
    Process& worker = sim.spawn("w", sleepOnce(0));
    sim.run();
    EXPECT_TRUE(worker.done());
    Tick when = 0;
    bool joined = false;
    sim.spawn("j", joinThenRecord(sim, worker, when, joined));
    sim.run();
    EXPECT_TRUE(joined);
}

TEST(Proc, KillCancelsPendingWakeup)
{
    Simulation sim;
    bool finished = false;
    Process& p = sim.spawn("t", sleepThenFlag(1 * sec, finished));
    sim.runFor(1 * msec);
    p.kill();
    sim.run();
    EXPECT_FALSE(finished);
    EXPECT_TRUE(p.done());
    EXPECT_TRUE(sim.queue().empty());
}

TEST(Proc, KillUnlinksFromWaitQueue)
{
    Simulation sim;
    Notify n;
    bool resumed = false;
    Process& p = sim.spawn("t", waitNotifyThenFlag(n, resumed));
    sim.runFor(1 * nsec);
    EXPECT_EQ(n.waiterCount(), 1u);
    p.kill();
    EXPECT_EQ(n.waiterCount(), 0u);
    n.notifyAll();
    sim.run();
    EXPECT_FALSE(resumed);
}

TEST(Proc, KillWakesJoiners)
{
    Simulation sim;
    Process& worker = sim.spawn("w", sleepOnce(1 * sec));
    Tick when = 0;
    bool joined = false;
    sim.spawn("j", joinThenRecord(sim, worker, when, joined));
    sim.runFor(1 * msec);
    worker.kill();
    sim.run();
    EXPECT_TRUE(joined);
}

TEST(Proc, ExceptionPropagatesAcrossAwait)
{
    Simulation sim;
    bool caught = false;
    sim.spawn("t", catcher(caught));
    sim.run();
    EXPECT_TRUE(caught);
}

TEST(Proc, ManyProcessesScale)
{
    Simulation sim;
    int done_count = 0;
    for (int i = 0; i < 1000; ++i) {
        sim.spawn(strFormat("p%d", i),
                  delayAndCount(static_cast<Tick>(i) * nsec, done_count));
    }
    sim.run();
    EXPECT_EQ(done_count, 1000);
}

TEST(Proc, SpawnFromInsideProcess)
{
    Simulation sim;
    std::vector<int> log;
    sim.spawn("outer", spawnerBody(sim, log));
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}
