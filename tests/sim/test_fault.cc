/** @file Unit tests for the deterministic fault-injection plan. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace cg::sim;

TEST(FaultSites, NamesRoundTrip)
{
    for (int i = 0; i < numFaultSites; ++i) {
        const auto s = static_cast<FaultSite>(i);
        const auto back = faultSiteFromName(faultSiteName(s));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, s);
    }
    EXPECT_FALSE(faultSiteFromName("no-such-site").has_value());
}

TEST(FaultPlan, DisarmedIsInert)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    EXPECT_FALSE(plan.armed());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(plan.query(FaultSite::IpiDrop).has_value());
    // Disarmed queries do not even count occurrences: the plan is a
    // single branch, indistinguishable from its absence.
    EXPECT_EQ(plan.occurrences(FaultSite::IpiDrop), 0u);
    EXPECT_EQ(plan.injectedTotal(), 0u);
}

TEST(FaultPlan, ArmedWithNoSpecsNeverFires)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(plan.query(FaultSite::DoorbellLost).has_value());
    EXPECT_EQ(plan.occurrences(FaultSite::DoorbellLost), 10u);
    EXPECT_EQ(plan.injectedTotal(), 0u);
}

TEST(FaultPlan, NthOccurrenceTrigger)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(7);
    FaultSpec spec;
    spec.site = FaultSite::IpiDrop;
    spec.nth = 3;
    spec.param = 42;
    plan.add(spec);
    for (int i = 1; i <= 5; ++i) {
        const auto hit = plan.query(FaultSite::IpiDrop);
        if (i == 3) {
            ASSERT_TRUE(hit.has_value());
            EXPECT_EQ(*hit, 42);
        } else {
            EXPECT_FALSE(hit.has_value());
        }
    }
    EXPECT_EQ(plan.injected(FaultSite::IpiDrop), 1u);
    // Other sites are untouched.
    EXPECT_FALSE(plan.query(FaultSite::IpiDelay).has_value());
}

TEST(FaultPlan, MaxInjectionsBoundsFiring)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(7);
    FaultSpec spec;
    spec.site = FaultSite::SyncRpcStall;
    spec.maxInjections = 2;
    plan.add(spec);
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        if (plan.query(FaultSite::SyncRpcStall).has_value())
            ++fired;
    }
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(plan.injected(FaultSite::SyncRpcStall), 2u);
}

TEST(FaultPlan, TickWindowGatesFiring)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(7);
    FaultSpec spec;
    spec.site = FaultSite::MonitorHang;
    spec.windowStart = 100 * nsec;
    spec.windowEnd = 200 * nsec;
    spec.maxInjections = 0; // unbounded; the window is the bound
    plan.add(spec);
    std::vector<bool> hits;
    for (const Tick t :
         {Tick{0}, 50 * nsec, 150 * nsec, 199 * nsec, 300 * nsec}) {
        sim.queue().scheduleIn(t - sim.now(), [&] {
            hits.push_back(
                plan.query(FaultSite::MonitorHang).has_value());
        });
        sim.run(t + 1);
    }
    ASSERT_EQ(hits.size(), 5u);
    EXPECT_EQ(hits, (std::vector<bool>{false, false, true, true,
                                       false}));
}

TEST(FaultPlan, ProbabilisticTriggerIsSeedDeterministic)
{
    const auto pattern = [](std::uint64_t seed) {
        Simulation sim(1);
        FaultPlan& plan = sim.faults();
        plan.arm(seed);
        FaultSpec spec;
        spec.site = FaultSite::RmiTransientError;
        spec.probability = 0.5;
        spec.maxInjections = 0;
        plan.add(spec);
        std::vector<bool> out;
        for (int i = 0; i < 200; ++i) {
            out.push_back(
                plan.query(FaultSite::RmiTransientError).has_value());
        }
        return out;
    };
    const std::vector<bool> a = pattern(11);
    EXPECT_EQ(a, pattern(11)) << "same seed must replay identically";
    EXPECT_NE(a, pattern(12)) << "different seed should differ";
    int fired = 0;
    for (const bool b : a)
        fired += b ? 1 : 0;
    EXPECT_GT(fired, 50);
    EXPECT_LT(fired, 150);
}

TEST(FaultPlan, DetectionAndRecoveryLatencyFromLastInjection)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(7);
    // A note with no injection behind it is spurious and ignored
    // (e.g. a watchdog pass that found nothing).
    plan.noteDetected(FaultSite::DoorbellLost);
    EXPECT_EQ(plan.detectionLatency(FaultSite::DoorbellLost).count(),
              0u);
    FaultSpec spec;
    spec.site = FaultSite::DoorbellLost;
    plan.add(spec);
    sim.queue().scheduleIn(10 * nsec, [&] {
        ASSERT_TRUE(plan.query(FaultSite::DoorbellLost).has_value());
    });
    sim.queue().scheduleIn(60 * nsec, [&] {
        plan.noteDetected(FaultSite::DoorbellLost);
    });
    sim.queue().scheduleIn(110 * nsec, [&] {
        plan.noteRecovered(FaultSite::DoorbellLost);
    });
    sim.run();
    ASSERT_EQ(plan.detectionLatency(FaultSite::DoorbellLost).count(),
              1u);
    ASSERT_EQ(plan.recoveryLatency(FaultSite::DoorbellLost).count(),
              1u);
    EXPECT_DOUBLE_EQ(
        plan.detectionLatency(FaultSite::DoorbellLost).meanNs(), 50.0);
    EXPECT_DOUBLE_EQ(
        plan.recoveryLatency(FaultSite::DoorbellLost).meanNs(), 100.0);
}

TEST(FaultPlan, RegisterStatsExposesDottedNames)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(7);
    FaultSpec spec;
    spec.site = FaultSite::IpiDrop;
    plan.add(spec);
    ASSERT_TRUE(plan.query(FaultSite::IpiDrop).has_value());
    plan.registerStats(sim.stats());
    const std::string dump = sim.stats().dumpText();
    EXPECT_NE(dump.find("faults.injected.ipi-drop"), std::string::npos);
    EXPECT_NE(dump.find("faults.detected.syncrpc-stall"),
              std::string::npos);
    EXPECT_NE(dump.find("faults.recovered.monitor-hang"),
              std::string::npos);
}

// ----------------------------------------------------------- plan text

TEST(FaultPlanParse, FullGrammar)
{
    const std::vector<FaultSpec> specs = FaultPlan::parse(
        "ipi-drop:nth=3;"
        "syncrpc-stall:p=0.25:max=2;"
        "ipi-delay:param=5us:from=1ms:until=2ms");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].site, FaultSite::IpiDrop);
    EXPECT_EQ(specs[0].nth, 3u);
    EXPECT_DOUBLE_EQ(specs[0].probability, 1.0);
    EXPECT_EQ(specs[1].site, FaultSite::SyncRpcStall);
    EXPECT_DOUBLE_EQ(specs[1].probability, 0.25);
    EXPECT_EQ(specs[1].maxInjections, 2u);
    EXPECT_EQ(specs[2].site, FaultSite::IpiDelay);
    EXPECT_EQ(specs[2].param, 5 * usec);
    EXPECT_EQ(specs[2].windowStart, 1 * msec);
    EXPECT_EQ(specs[2].windowEnd, 2 * msec);
}

TEST(FaultPlanParse, BareTimesAreNanoseconds)
{
    const std::vector<FaultSpec> specs =
        FaultPlan::parse("ipi-delay:param=250");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].param, 250 * nsec);
}

TEST(FaultPlanParse, EmptyClausesAreSkipped)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_EQ(FaultPlan::parse(";ipi-drop;").size(), 1u);
}

TEST(FaultPlanParse, MalformedInputThrows)
{
    EXPECT_THROW(FaultPlan::parse("no-such-site"), FatalError);
    EXPECT_THROW(FaultPlan::parse("ipi-drop:nth"), FatalError);
    EXPECT_THROW(FaultPlan::parse("ipi-drop:bogus=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("ipi-drop:p=zebra"), FatalError);
    EXPECT_THROW(FaultPlan::parse("ipi-delay:param=5lightyears"),
                 FatalError);
}

TEST(FaultPlanParse, OutOfRangeSpecsAreRejectedOnAdd)
{
    Simulation sim(1);
    FaultPlan& plan = sim.faults();
    plan.arm(1);
    FaultSpec bad_p;
    bad_p.probability = 1.5;
    EXPECT_THROW(plan.add(bad_p), FatalError);
    FaultSpec bad_window;
    bad_window.windowStart = 10;
    bad_window.windowEnd = 5;
    EXPECT_THROW(plan.add(bad_window), FatalError);
}

// ----------------------------------------------------- harness request

TEST(FaultPlanRequest, ConfigureApplyReset)
{
    FaultPlanRequest::reset();
    EXPECT_FALSE(FaultPlanRequest::requested());
    FaultPlanRequest::configure("ipi-drop:nth=1", 99);
    EXPECT_TRUE(FaultPlanRequest::requested());
    EXPECT_EQ(FaultPlanRequest::planText(), "ipi-drop:nth=1");
    EXPECT_EQ(FaultPlanRequest::seed(), 99u);
    FaultPlanRequest::reset();
    EXPECT_FALSE(FaultPlanRequest::requested());
    // An empty plan text is not a request.
    FaultPlanRequest::configure("", 1);
    EXPECT_FALSE(FaultPlanRequest::requested());
}
