/** @file Unit tests for synchronisation primitives. */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sync.hh"

using namespace cg::sim;

namespace {

Proc<void>
waitAndLog(Notify& n, std::vector<int>& order, int id)
{
    co_await n.wait();
    order.push_back(id);
}

Proc<void>
waitAndFlag(Notify& n, bool& flag)
{
    co_await n.wait();
    flag = true;
}

Proc<void>
gateWaitAndCount(Gate& g, int& count)
{
    co_await g.wait();
    ++count;
}

Proc<void>
gateWaitAndFlag(Gate& g, bool& flag)
{
    co_await g.wait();
    flag = true;
}

Proc<void>
recvInto(Channel<int>& ch, int& out)
{
    out = co_await ch.recv();
}

Proc<void>
recvStrInto(Simulation& sim, Channel<std::string>& ch, std::string& out,
            Tick& when)
{
    out = co_await ch.recv();
    when = sim.now();
}

Proc<void>
sendStrLater(Channel<std::string>& ch, Tick d, std::string msg)
{
    co_await Delay{d};
    ch.send(std::move(msg));
}

Proc<void>
recvN(Channel<int>& ch, int n, std::vector<int>& got)
{
    for (int i = 0; i < n; ++i)
        got.push_back(co_await ch.recv());
}

Proc<void>
sendNSpaced(Channel<int>& ch, int n)
{
    for (int i = 0; i < n; ++i) {
        ch.send(i);
        co_await Delay{1 * nsec};
    }
}

Proc<void>
recvOneAppend(Channel<int>& ch, std::vector<int>& got)
{
    got.push_back(co_await ch.recv());
}

Proc<void>
sumN(Channel<int>& ch, int n, int& sum)
{
    for (int i = 0; i < n; ++i)
        sum += co_await ch.recv();
}

Proc<void>
criticalSection(Semaphore& s, int& in_critical, int& max_seen)
{
    co_await s.acquire();
    ++in_critical;
    max_seen = std::max(max_seen, in_critical);
    co_await Delay{10 * nsec};
    --in_critical;
    s.release();
}

Proc<void>
acquireAndFlag(Semaphore& s, bool& flag)
{
    co_await s.acquire();
    flag = true;
}

} // namespace

TEST(Notify, NotifyOneWakesInFifoOrder)
{
    Simulation sim;
    Notify n;
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        sim.spawn(strFormat("w%d", i), waitAndLog(n, order, i));
    sim.runFor(1 * nsec);
    EXPECT_EQ(n.waiterCount(), 3u);
    n.notifyOne();
    sim.runFor(1 * nsec);
    n.notifyOne();
    n.notifyOne();
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Notify, NotifyOnEmptyQueueIsNoop)
{
    Notify n;
    EXPECT_FALSE(n.notifyOne());
    EXPECT_EQ(n.notifyAll(), 0u);
}

TEST(Notify, WaitIsEdgeTriggered)
{
    Simulation sim;
    Notify n;
    n.notifyAll(); // before anyone waits: lost, by design
    bool resumed = false;
    sim.spawn("w", waitAndFlag(n, resumed));
    sim.run();
    EXPECT_FALSE(resumed);
    n.notifyAll();
    sim.run();
    EXPECT_TRUE(resumed);
}

TEST(Gate, LevelTriggered)
{
    Simulation sim;
    Gate g;
    int passed = 0;
    sim.spawn("early", gateWaitAndCount(g, passed));
    sim.run();
    EXPECT_EQ(passed, 0);
    g.open();
    sim.run();
    EXPECT_EQ(passed, 1);
    // Late waiter passes straight through an open gate.
    sim.spawn("late", gateWaitAndCount(g, passed));
    sim.run();
    EXPECT_EQ(passed, 2);
}

TEST(Gate, ResetBlocksAgain)
{
    Simulation sim;
    Gate g;
    g.open();
    g.reset();
    bool passed = false;
    sim.spawn("w", gateWaitAndFlag(g, passed));
    sim.run();
    EXPECT_FALSE(passed);
    g.open();
    sim.run();
    EXPECT_TRUE(passed);
}

TEST(Channel, SendThenRecv)
{
    Simulation sim;
    Channel<int> ch;
    ch.send(41);
    int got = 0;
    sim.spawn("r", recvInto(ch, got));
    sim.run();
    EXPECT_EQ(got, 41);
}

TEST(Channel, RecvBlocksUntilSend)
{
    Simulation sim;
    Channel<std::string> ch;
    std::string got;
    Tick recv_time = 0;
    sim.spawn("r", recvStrInto(sim, ch, got, recv_time));
    sim.spawn("s", sendStrLater(ch, 5 * usec, "hello"));
    sim.run();
    EXPECT_EQ(got, "hello");
    EXPECT_EQ(recv_time, 5 * usec);
}

TEST(Channel, PreservesFifoOrder)
{
    Simulation sim;
    Channel<int> ch;
    std::vector<int> got;
    sim.spawn("r", recvN(ch, 5, got));
    sim.spawn("s", sendNSpaced(ch, 5));
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, MultipleReceiversEachGetOneItem)
{
    Simulation sim;
    Channel<int> ch;
    std::vector<int> got;
    for (int i = 0; i < 3; ++i)
        sim.spawn(strFormat("r%d", i), recvOneAppend(ch, got));
    sim.runFor(1 * nsec);
    ch.send(10);
    ch.send(20);
    ch.send(30);
    sim.run();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0] + got[1] + got[2], 60);
}

TEST(Channel, TryRecv)
{
    Channel<int> ch;
    int out = 0;
    EXPECT_FALSE(ch.tryRecv(out));
    ch.send(9);
    EXPECT_TRUE(ch.tryRecv(out));
    EXPECT_EQ(out, 9);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, BurstSendSingleReceiverLoop)
{
    Simulation sim;
    Channel<int> ch;
    int sum = 0;
    sim.spawn("r", sumN(ch, 10, sum));
    sim.runFor(1 * nsec);
    for (int i = 1; i <= 10; ++i)
        ch.send(i); // burst: more items than notifies consumed
    sim.run();
    EXPECT_EQ(sum, 55);
}

TEST(Semaphore, AcquireReleaseCounts)
{
    Simulation sim;
    Semaphore s(2);
    int in_critical = 0;
    int max_in_critical = 0;
    for (int i = 0; i < 5; ++i) {
        sim.spawn(strFormat("t%d", i),
                  criticalSection(s, in_critical, max_in_critical));
    }
    sim.run();
    EXPECT_EQ(in_critical, 0);
    EXPECT_LE(max_in_critical, 2);
    EXPECT_EQ(s.count(), 2u);
}

TEST(Semaphore, ZeroInitialBlocks)
{
    Simulation sim;
    Semaphore s(0);
    bool acquired = false;
    sim.spawn("t", acquireAndFlag(s, acquired));
    sim.run();
    EXPECT_FALSE(acquired);
    s.release();
    sim.run();
    EXPECT_TRUE(acquired);
}
