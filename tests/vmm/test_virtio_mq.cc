/**
 * @file
 * Multi-queue virtio-net tests: the EVENT_IDX lost-kick window and its
 * recheck-after-publish fix (must-fire both ways), doorbell batching,
 * the IPU backend's zero-exit data path, the gapped wake-up thread's
 * adaptive spin, and seed-determinism of the per-queue event order
 * across ParallelRunner thread counts and --check arming.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/checker.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "workloads/nic.hh"
#include "workloads/remote.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace vmm = cg::vmm;
namespace check = cg::check;
using namespace cg::workloads;
using guest::VCpu;
using sim::Proc;
using sim::Tick;
using sim::usec;
using sim::msec;

namespace {

/** Send two packets with the second landing inside the EVENT_IDX
 * armed-flag publish window (the historical lost-kick race). */
Proc<void>
racedPairSend(Testbed& bed, VCpu& v, vmm::MqVirtioNet& net, int dst)
{
    co_await bed.started().wait();
    co_await net.guestSend(v, 256, dst, 7);
    // The I/O thread drains the first packet within a few
    // microseconds and re-arms with a (stretched) 2 ms publish
    // delay; this send races the in-flight publish.
    co_await sim::Delay{200 * usec};
    co_await net.guestSend(v, 256, dst, 7);
    // Give the recheck (fires when the publish lands) time to
    // rescue the stranded descriptor — or not, under the fault.
    co_await sim::Delay{10 * msec};
    co_await v.shutdown();
}

struct LostKickOutcome {
    std::uint64_t delivered = 0;
    std::uint64_t rescues = 0;
    std::uint64_t injected = 0;
};

LostKickOutcome
runLostKickScenario(bool arm_lost_kick_fault)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("g", 2);
    Testbed::MqNicOptions opt;
    opt.queues = 1;
    opt.kickBatchLimit = 1; // kick per send: expose the race directly
    opt.eventIdxPublishDelay = 2 * msec; // stretch the window wide
    bed.addMqNic(vm, opt);
    if (arm_lost_kick_fault) {
        bed.sim().faults().arm(1);
        for (const auto& s : sim::FaultPlan::parse("virtio-lost-kick"))
            bed.sim().faults().add(s);
    }
    RemoteHost remote(bed.sim(), bed.fabric(), 2 * usec);
    vm.vcpu(0).startGuest("g/raced-send",
                          racedPairSend(bed, vm.vcpu(0), *vm.mqnet,
                                        remote.port()));
    bed.spawnStart();
    bed.run(1 * sim::sec);
    LostKickOutcome out;
    out.delivered = remote.received();
    out.rescues = vm.mqnet->kickRescues();
    out.injected = bed.sim().faults().injectedTotal();
    return out;
}

} // namespace

TEST(MqVirtioNetEventIdx, RecheckAfterPublishRescuesRacedKick)
{
    const LostKickOutcome out = runLostKickScenario(false);
    // Both packets arrive: the second was suppressed by EVENT_IDX
    // (armed flag not yet visible) but the recheck-after-publish
    // spotted the non-empty ring and woke the I/O thread.
    EXPECT_EQ(out.delivered, 2u);
    EXPECT_GE(out.rescues, 1u);
}

TEST(MqVirtioNetEventIdx, MustFire_LostKickStallsWithFixReverted)
{
    // Reverting the fix (the virtio-lost-kick fault site skips the
    // recheck) MUST reproduce the stall: the raced packet is never
    // delivered. This proves the companion test above exercises the
    // real race window, not a benign schedule.
    const LostKickOutcome out = runLostKickScenario(true);
    EXPECT_EQ(out.delivered, 1u) << "lost kick did not stall -- the "
                                    "race window is not being hit";
    EXPECT_GE(out.injected, 1u) << "fault site never queried";
    EXPECT_EQ(out.rescues, 0u);
}

namespace {

Proc<void>
burstSend(Testbed& bed, VCpu& v, vmm::MqVirtioNet& net, int n,
          int dst)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i)
        co_await net.guestSend(v, 512, dst, 3); // one queue, cookie 3
    co_await net.guestFlush(v, 0);
    co_await sim::Delay{5 * msec};
    co_await v.shutdown();
}

} // namespace

TEST(MqVirtioNet, DoorbellBatchingOneExitCoversBurst)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("g", 2);
    Testbed::MqNicOptions opt;
    opt.queues = 1;
    opt.kickBatchLimit = 8;
    bed.addMqNic(vm, opt);
    RemoteHost remote(bed.sim(), bed.fabric(), 2 * usec);
    vm.vcpu(0).startGuest("g/burst",
                          burstSend(bed, vm.vcpu(0), *vm.mqnet, 8,
                                    remote.port()));
    bed.spawnStart();
    bed.run(1 * sim::sec);
    EXPECT_EQ(remote.received(), 8u);
    // The burst reaches the batch limit exactly once; the trailing
    // guestFlush finds nothing pending. One trapped exit total.
    EXPECT_EQ(vm.mqnet->dataPathKickExits(), 1u);
}

namespace {

Proc<void>
spreadSend(Testbed& bed, VCpu& v, vmm::MqVirtioNet& net, int n,
           int dst)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i)
        co_await net.guestSend(v, 512, dst,
                               static_cast<std::uint64_t>(100 + i));
    for (int q = 0; q < net.numQueues(); ++q)
        co_await net.guestFlush(v, q);
    co_await v.shutdown();
}

Proc<void>
recvCount(Testbed& bed, VCpu& v, vmm::MqVirtioNet& net, int queue,
          int n, int& got)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i) {
        (void)co_await net.guestRecv(v, queue);
        ++got;
    }
    co_await v.shutdown();
}

} // namespace

TEST(MqVirtioNetIpu, OffloadDataPathTakesZeroExits)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("g", 4); // 3 vCPUs + 1 host core
    Testbed::MqNicOptions opt;
    opt.queues = 2;
    opt.ipuOffload = true;
    opt.ipuCores = 2;
    opt.directRx = true;
    bed.addMqNic(vm, opt);
    RemoteHost remote(bed.sim(), bed.fabric(), 2 * usec);
    remote.becomeEcho();
    int got0 = 0, got1 = 0;
    // 20 packets, cookies 100..119: echoes RSS back to queue
    // cookie % 2, ten per receiver. Queue q's completion interrupt
    // targets vCPU q, so receiver t serves queue t from vCPU t and
    // the sender runs on vCPU 2.
    vm.vcpu(2).startGuest("g/tx",
                          spreadSend(bed, vm.vcpu(2), *vm.mqnet, 20,
                                     remote.port()));
    vm.vcpu(0).startGuest("g/rx0",
                          recvCount(bed, vm.vcpu(0), *vm.mqnet, 0, 10,
                                    got0));
    vm.vcpu(1).startGuest("g/rx1",
                          recvCount(bed, vm.vcpu(1), *vm.mqnet, 1, 10,
                                    got1));
    bed.spawnStart();
    bed.run(1 * sim::sec);
    EXPECT_EQ(remote.received(), 20u);
    EXPECT_EQ(got0, 10);
    EXPECT_EQ(got1, 10);
    // The IPU backend's contract: posted doorbells + direct-injected
    // completions, so the whole echo round-trip traps nothing.
    EXPECT_EQ(vm.mqnet->dataPathKickExits(), 0u);
}

TEST(MqVirtioNet, AdaptiveWakeSpinStillDeliversDoorbells)
{
    // Trapped backend on a gapped VM: every kick exit relays through
    // the host-side wake-up thread. With the adaptive spin enabled
    // the relay must still function, and the spin must actually run
    // (hits + sleeps > 0).
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::CoreGapped;
    cfg.wakeSpinMax = 4 * usec;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("g", 4);
    Testbed::MqNicOptions opt;
    opt.queues = 1;
    opt.kickBatchLimit = 1;
    bed.addMqNic(vm, opt);
    RemoteHost remote(bed.sim(), bed.fabric(), 2 * usec);
    vm.vcpu(0).startGuest("g/burst",
                          burstSend(bed, vm.vcpu(0), *vm.mqnet, 6,
                                    remote.port()));
    bed.spawnStart();
    bed.run(1 * sim::sec);
    EXPECT_EQ(remote.received(), 6u);
    ASSERT_NE(vm.gapped, nullptr);
    EXPECT_GT(vm.gapped->wakeSpinHits() + vm.gapped->wakeSpinSleeps(),
              0u);
}

// ----------------------------------------------------- determinism

namespace {

Proc<void>
jitteredSpread(Testbed& bed, VCpu& v, vmm::MqVirtioNet& net, int t,
               int n, int dst)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i) {
        co_await sim::Delay{
            bed.sim().rng().jittered(2 * usec, 0.5)};
        co_await net.guestSend(
            v, 512, dst,
            static_cast<std::uint64_t>(1000 + t * n + i));
    }
    for (int q = 0; q < net.numQueues(); ++q)
        co_await net.guestFlush(v, q);
    co_await v.shutdown();
}

/** Everything the run's observable outcome consists of: per-queue TX
 * processing order plus the headline counters (the BENCH-row
 * ingredients). */
struct MqRunSnapshot {
    std::vector<std::vector<std::uint64_t>> txLogs;
    std::uint64_t tx = 0;
    std::uint64_t rx = 0;
    std::uint64_t kickExits = 0;
    Tick endTime = 0;

    bool operator==(const MqRunSnapshot& o) const
    {
        return txLogs == o.txLogs && tx == o.tx && rx == o.rx &&
               kickExits == o.kickExits && endTime == o.endTime;
    }
};

MqRunSnapshot
runMqScenario(std::uint64_t seed)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::SharedCore;
    cfg.seed = seed;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("g", 4);
    Testbed::MqNicOptions opt;
    opt.queues = 4;
    opt.kickBatchLimit = 2;
    opt.recordTxLog = true;
    bed.addMqNic(vm, opt);
    RemoteHost remote(bed.sim(), bed.fabric(), 2 * usec);
    for (int t = 0; t < 4; ++t) {
        vm.vcpu(t).startGuest(
            sim::strFormat("g/tx%d", t),
            jitteredSpread(bed, vm.vcpu(t), *vm.mqnet, t, 16,
                           remote.port()));
    }
    bed.spawnStart();
    MqRunSnapshot s;
    s.endTime = bed.run(1 * sim::sec);
    for (int q = 0; q < vm.mqnet->numQueues(); ++q)
        s.txLogs.push_back(vm.mqnet->txLog(q));
    s.tx = vm.mqnet->txPackets();
    s.rx = vm.mqnet->rxPackets();
    s.kickExits = vm.mqnet->dataPathKickExits();
    return s;
}

} // namespace

TEST(MqVirtioNetDeterminism, SameSeedSameOrderAcrossThreadCounts)
{
    // Four seeded runs fanned over pools of different widths: the
    // per-queue TX event order and the headline counters must be
    // bit-identical run for run — the sweep benches depend on it.
    const auto seeds = sim::ParallelRunner::deriveSeeds(0xfeed, 4);
    const auto runAll = [&seeds](unsigned threads) {
        return sim::ParallelRunner::mapIndexed<MqRunSnapshot>(
            seeds.size(),
            [&seeds](std::size_t i) { return runMqScenario(seeds[i]); },
            threads);
    };
    const auto narrow = runAll(1);
    const auto wide = runAll(3);
    ASSERT_EQ(narrow.size(), wide.size());
    for (std::size_t i = 0; i < narrow.size(); ++i) {
        EXPECT_TRUE(narrow[i] == wide[i])
            << "run " << i << " diverged across pool widths";
        EXPECT_EQ(narrow[i].tx, 64u);
    }
    // Different seeds must actually differ somewhere (otherwise the
    // comparison above proves nothing about seeding).
    EXPECT_FALSE(narrow[0] == narrow[1]);
}

TEST(MqVirtioNetDeterminism, CheckArmingDoesNotPerturbEventOrder)
{
    // The isolation checker is pure observation: arming it must not
    // change the simulated event order by a single tick.
    const MqRunSnapshot plain = runMqScenario(0xabc);
    check::CheckRequest::configure(/*abort_on_leak=*/false);
    const MqRunSnapshot checked = runMqScenario(0xabc);
    check::CheckRequest::reset();
    EXPECT_TRUE(plain == checked)
        << "--check arming perturbed the multi-queue event order";
}
