/** @file Unit tests for the network fabric and disk models. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"
#include "vmm/disk.hh"
#include "vmm/netfabric.hh"

namespace sim = cg::sim;
using namespace cg::vmm;
using sim::Tick;
using sim::usec;
using sim::msec;

namespace {

sim::Proc<void>
doIo(Disk& d, std::uint64_t bytes, bool write, Tick& done,
     sim::Simulation& s)
{
    co_await d.io(bytes, write);
    done = s.now();
}

} // namespace

TEST(NetworkFabric, DeliversAfterLatency)
{
    sim::Simulation s;
    NetworkFabric::Config cfg;
    cfg.latency = 5 * usec;
    NetworkFabric fab(s, cfg);
    std::vector<Packet> got;
    Tick arrival = 0;
    int a = fab.attach(nullptr);
    int b = fab.attach([&](const Packet& p) {
        got.push_back(p);
        arrival = s.now();
    });
    Packet p;
    p.bytes = 64;
    p.srcPort = a;
    p.dstPort = b;
    p.cookie = 42;
    fab.send(p);
    s.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].cookie, 42u);
    EXPECT_GT(arrival, 4 * usec);
    EXPECT_LT(arrival, 7 * usec);
}

TEST(NetworkFabric, SerialisesOnSourcePort)
{
    sim::Simulation s;
    NetworkFabric::Config cfg;
    cfg.latency = 1 * usec;
    cfg.bytesPerSec = 1e9; // 1 GB/s: 1 MiB takes ~1 ms
    NetworkFabric fab(s, cfg);
    std::vector<Tick> arrivals;
    int a = fab.attach(nullptr);
    int b = fab.attach([&](const Packet&) {
        arrivals.push_back(s.now());
    });
    for (int i = 0; i < 3; ++i) {
        Packet p;
        p.bytes = 1 << 20;
        p.srcPort = a;
        p.dstPort = b;
        fab.send(p);
    }
    s.run();
    ASSERT_EQ(arrivals.size(), 3u);
    // Back-to-back serialisation: ~1ms apart.
    EXPECT_GT(arrivals[1] - arrivals[0], 900 * usec);
    EXPECT_GT(arrivals[2] - arrivals[1], 900 * usec);
    EXPECT_EQ(fab.bytesDelivered(), 3u << 20);
}

TEST(Disk, LatencyPlusTransfer)
{
    sim::Simulation s;
    Disk::Config cfg;
    cfg.readLatency = 75 * usec;
    cfg.bytesPerSec = 2.8e9;
    Disk d(s, cfg);
    Tick done = 0;
    s.spawn("io", doIo(d, 28 << 20, false, done, s)); // ~10ms transfer
    s.run();
    EXPECT_GT(done, 10 * msec);
    EXPECT_LT(done, 11 * msec);
    EXPECT_EQ(d.opsCompleted(), 1u);
}

TEST(Disk, WritesCheaperThanReads)
{
    sim::Simulation s;
    Disk d(s, Disk::Config{});
    Tick wdone = 0;
    s.spawn("w", doIo(d, 4096, true, wdone, s));
    s.run();
    sim::Simulation s2;
    Disk d2(s2, Disk::Config{});
    Tick rdone = 0;
    s2.spawn("r", doIo(d2, 4096, false, rdone, s2));
    s2.run();
    EXPECT_LT(wdone, rdone);
}

TEST(Disk, SerialisesTransfers)
{
    sim::Simulation s;
    Disk::Config cfg;
    cfg.readLatency = 10 * usec;
    cfg.bytesPerSec = 1e9;
    Disk d(s, cfg);
    Tick d1 = 0, d2 = 0;
    s.spawn("a", doIo(d, 1 << 20, false, d1, s)); // ~1ms each
    s.spawn("b", doIo(d, 1 << 20, false, d2, s));
    s.run();
    // Second transfer waits for the first.
    EXPECT_GT(std::max(d1, d2), 2 * msec);
}
