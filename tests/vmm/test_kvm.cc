/**
 * @file
 * Integration tests for the KVM/VMM layer: shared-core VMs end to end,
 * virtio and SR-IOV data paths, virtual IPIs, and shared-core CVMs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulation.hh"
#include "vmm/kvm.hh"
#include "vmm/sriov.hh"
#include "vmm/virtio.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
namespace host = cg::host;
namespace guest = cg::guest;
using namespace cg::vmm;
using guest::VCpu;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;
using sim::usec;

namespace {

Proc<void>
computeAndShutdown(VCpu& v, Tick work)
{
    co_await Compute{work};
    co_await v.shutdown();
}

Proc<void>
blkIoAndShutdown(VCpu& v, VirtioBlk& blk, int n, std::uint64_t bytes,
                 int& completed)
{
    for (int i = 0; i < n; ++i) {
        co_await blk.guestIo(v, bytes, i % 2 == 0);
        ++completed;
    }
    co_await v.shutdown();
}

Proc<void>
netPingAndShutdown(VCpu& v, VirtioNet& net, int peer_port, int n,
                   int& echoes, Tick& last_rtt, sim::Simulation& s)
{
    for (int i = 0; i < n; ++i) {
        const Tick t0 = s.now();
        co_await net.guestSend(v, 1500, peer_port,
                               static_cast<std::uint64_t>(i));
        Packet reply = co_await net.guestRecv(v);
        last_rtt = s.now() - t0;
        if (reply.cookie == static_cast<std::uint64_t>(i))
            ++echoes;
    }
    co_await v.shutdown();
}

Proc<void>
sriovPingAndShutdown(VCpu& v, SriovNic& nic, int peer_port, int n,
                     int& echoes, Tick& last_rtt, sim::Simulation& s)
{
    for (int i = 0; i < n; ++i) {
        const Tick t0 = s.now();
        co_await nic.guestSend(v, 1500, peer_port,
                               static_cast<std::uint64_t>(i));
        Packet reply = co_await nic.guestRecv(v);
        last_rtt = s.now() - t0;
        if (reply.cookie == static_cast<std::uint64_t>(i))
            ++echoes;
    }
    co_await v.shutdown();
}

Proc<void>
vipiSender(VCpu& v, int target, int n, bool& peer_acked, int& acks)
{
    for (int i = 0; i < n; ++i) {
        peer_acked = false;
        co_await v.sendVIpi(target);
        // Spin (in guest time) until the peer's handler runs.
        while (!peer_acked)
            co_await Compute{1 * usec};
        ++acks;
    }
    co_await v.shutdown();
}

Proc<void>
idleForever(VCpu& v)
{
    for (;;)
        co_await v.idle();
}

Proc<void>
faultTouchAndShutdown(VCpu& v, int pages)
{
    for (int i = 0; i < pages; ++i) {
        co_await v.pageFault((0x40000000ull) +
                             static_cast<std::uint64_t>(i) * 4096);
        co_await Compute{50 * usec};
    }
    co_await v.shutdown();
}

struct Rig {
    sim::Simulation sim;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<host::Kernel> kernel;
    std::unique_ptr<KickBroker> kicks;
    std::unique_ptr<guest::Vm> vm;
    std::unique_ptr<KvmVm> kvm;
    std::unique_ptr<cg::rmm::Rmm> rmm;

    void
    boot(int cores, guest::VmConfig vcfg, KvmConfig kcfg)
    {
        hw::MachineConfig mcfg;
        mcfg.numCores = cores;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        kernel = std::make_unique<host::Kernel>(*machine);
        kicks = std::make_unique<KickBroker>(*kernel);
        vm = std::make_unique<guest::Vm>(*machine, vcfg,
                                         sim::firstVmDomain);
        kvm = std::make_unique<KvmVm>(*kernel, *vm, *kicks, kcfg);
    }

    void
    makeCvm()
    {
        rmm = std::make_unique<cg::rmm::Rmm>(*machine,
                                             cg::rmm::RmmConfig{});
        const int realm = createRealmFor(*rmm, *vm);
        kvm->attachRealm(*rmm, realm);
    }
};

struct KvmFixture : ::testing::Test, Rig {};

} // namespace

TEST_F(KvmFixture, SharedVmRunsToShutdown)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 2;
    boot(4, vcfg, KvmConfig{});
    for (int i = 0; i < 2; ++i) {
        vm->vcpu(i).startGuest(
            "w", computeAndShutdown(vm->vcpu(i), 50 * msec));
    }
    kvm->start();
    sim.run(5 * sim::sec);
    EXPECT_TRUE(kvm->shutdownGate().isOpen());
    // ~12 ticks per vCPU at 250 Hz over 50 ms: 2 exits per tick.
    EXPECT_GT(kvm->stats().exits.value(), 40u);
    EXPECT_GT(vm->vcpu(0).ticksHandled.value(), 8u);
    EXPECT_GE(vm->vcpu(0).guestCpuTime, 50 * msec);
}

TEST_F(KvmFixture, VirtioBlkRoundTrip)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    boot(2, vcfg, KvmConfig{});
    Disk disk(sim, Disk::Config{});
    VirtioBlk blk(*kvm, disk, VirtioBlk::Config{});
    int completed = 0;
    vm->vcpu(0).startGuest(
        "io", blkIoAndShutdown(vm->vcpu(0), blk, 8, 65536, completed));
    kvm->start();
    sim.run(5 * sim::sec);
    EXPECT_TRUE(kvm->shutdownGate().isOpen());
    EXPECT_EQ(completed, 8);
    EXPECT_EQ(disk.opsCompleted(), 8u);
    EXPECT_GT(kvm->stats().mmioExits.value(), 0u);
}

TEST_F(KvmFixture, VirtioNetEchoThroughRemotePeer)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    boot(2, vcfg, KvmConfig{});
    NetworkFabric fab(sim, NetworkFabric::Config{});
    VirtioNet net(*kvm, fab, VirtioNet::Config{});
    // Remote echo endpoint: bounce every packet back.
    struct Echo {
        NetworkFabric* fab;
        int port = -1;
    };
    auto echo = std::make_shared<Echo>();
    echo->fab = &fab;
    echo->port = fab.attach([echo](const Packet& p) {
        Packet r = p;
        r.srcPort = echo->port;
        r.dstPort = p.srcPort;
        echo->fab->send(r);
    });
    int echoes = 0;
    Tick rtt = 0;
    vm->vcpu(0).startGuest(
        "ping", netPingAndShutdown(vm->vcpu(0), net, echo->port, 5,
                                   echoes, rtt, sim));
    kvm->start();
    sim.run(5 * sim::sec);
    EXPECT_EQ(echoes, 5);
    EXPECT_GT(net.txPackets(), 0u);
    EXPECT_GT(net.rxPackets(), 0u);
    // Emulated path: tens of microseconds round trip.
    EXPECT_GT(rtt, 15 * usec);
    EXPECT_LT(rtt, 500 * usec);
}

TEST_F(KvmFixture, SriovEchoFasterThanVirtio)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    boot(2, vcfg, KvmConfig{});
    NetworkFabric fab(sim, NetworkFabric::Config{});
    SriovNic nic(*kvm, fab, SriovNic::Config{});
    struct Echo {
        NetworkFabric* fab;
        int port = -1;
    };
    auto echo = std::make_shared<Echo>();
    echo->fab = &fab;
    echo->port = fab.attach([echo](const Packet& p) {
        Packet r = p;
        r.srcPort = echo->port;
        r.dstPort = p.srcPort;
        echo->fab->send(r);
    });
    int echoes = 0;
    Tick rtt = 0;
    vm->vcpu(0).startGuest(
        "ping", sriovPingAndShutdown(vm->vcpu(0), nic, echo->port, 5,
                                     echoes, rtt, sim));
    kvm->start();
    sim.run(5 * sim::sec);
    EXPECT_EQ(echoes, 5);
    // SR-IOV TX causes no MMIO exits at all.
    EXPECT_EQ(kvm->stats().mmioExits.value(), 0u);
    EXPECT_GT(rtt, 10 * usec);
    EXPECT_LT(rtt, 60 * usec);
}

TEST_F(KvmFixture, VirtualIpiBetweenVcpus)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 2;
    vcfg.tickPeriod = 0; // quiet
    boot(4, vcfg, KvmConfig{});
    bool peer_acked = false;
    int acks = 0;
    vm->vcpu(1).setVirqHandler(hw::sgiBase + 1,
                               [&peer_acked] { peer_acked = true; });
    vm->vcpu(0).startGuest(
        "sender", vipiSender(vm->vcpu(0), 1, 3, peer_acked, acks));
    vm->vcpu(1).startGuest("idler", idleForever(vm->vcpu(1)));
    kvm->start();
    sim.run(1 * sim::sec);
    EXPECT_EQ(acks, 3);
    EXPECT_GT(kvm->stats().injections.value(), 0u);
}

TEST_F(KvmFixture, SharedCvmRunsWithRealm)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    KvmConfig kcfg;
    kcfg.mode = VmMode::SharedCoreCvm;
    boot(2, vcfg, kcfg);
    makeCvm();
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 30 * msec));
    kvm->start();
    sim.run(5 * sim::sec);
    EXPECT_TRUE(kvm->shutdownGate().isOpen());
    EXPECT_GT(rmm->stats().exitsToHost.value(), 10u);
    EXPECT_GT(rmm->stats().rmiCalls.value(), 10u);
}

TEST_F(KvmFixture, SharedCvmSlowerThanSharedVm)
{
    // Identical work; the CVM pays world switches + flushes per exit.
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    boot(2, vcfg, KvmConfig{});
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 100 * msec));
    kvm->start();
    const Tick t_shared = sim.run();

    // Fresh simulation for the CVM variant.
    Rig cvm_fix;
    guest::VmConfig vcfg2;
    vcfg2.numVcpus = 1;
    KvmConfig kcfg;
    kcfg.mode = VmMode::SharedCoreCvm;
    cvm_fix.boot(2, vcfg2, kcfg);
    cvm_fix.makeCvm();
    cvm_fix.vm->vcpu(0).startGuest(
        "w", computeAndShutdown(cvm_fix.vm->vcpu(0), 100 * msec));
    cvm_fix.kvm->start();
    const Tick t_cvm = cvm_fix.sim.run();

    EXPECT_TRUE(kvm->shutdownGate().isOpen());
    EXPECT_TRUE(cvm_fix.kvm->shutdownGate().isOpen());
    EXPECT_GT(t_cvm, t_shared);
}

TEST_F(KvmFixture, CvmPageFaultsPopulateRtt)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    vcfg.tickPeriod = 0;
    KvmConfig kcfg;
    kcfg.mode = VmMode::SharedCoreCvm;
    boot(2, vcfg, kcfg);
    makeCvm();
    vm->vcpu(0).startGuest(
        "toucher", faultTouchAndShutdown(vm->vcpu(0), 10));
    kvm->start();
    sim.run(5 * sim::sec);
    EXPECT_TRUE(kvm->shutdownGate().isOpen());
    EXPECT_EQ(kvm->stats().pageFaultExits.value(), 10u);
    cg::rmm::Realm* r = rmm->realm(kvm->realmId());
    ASSERT_NE(r, nullptr);
    // 64 boot pages + 10 faulted pages.
    EXPECT_EQ(r->rtt.mappedPages(), 74u);
}
