/**
 * @file
 * Focused device-model tests: virtio kick suppression, NAPI interrupt
 * coalescing on both NIC paths, concurrent block requests, and the
 * TDX-style page-table ablation's RPC accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulation.hh"
#include "workloads/nic.hh"
#include "workloads/remote.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
namespace vmm = cg::vmm;
using guest::VCpu;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;
using sim::usec;

namespace {

Proc<void>
burstSend(Testbed& bed, VCpu& v, vmm::VirtioNet& net, int n,
          int dst_port)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i)
        co_await net.guestSend(v, 1000, dst_port,
                               static_cast<std::uint64_t>(i));
    co_await v.shutdown();
}

Proc<void>
recvBurst(Testbed& bed, VCpu& v, vmm::VirtioNet& net, int n, int& got)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i) {
        (void)co_await net.guestRecv(v);
        ++got;
    }
    co_await v.shutdown();
}

Proc<void>
parallelBlkIo(Testbed& bed, VCpu& v, vmm::VirtioBlk& blk, int n,
              int& done, int& finished, sim::Gate& all_done)
{
    co_await bed.started().wait();
    for (int i = 0; i < n; ++i) {
        co_await blk.guestIo(v, 4096, i % 2 == 0);
        ++done;
    }
    // vCPU 0 receives the completion interrupts: nobody may shut down
    // until everyone's I/O has completed (as a real guest kernel keeps
    // its boot CPU alive).
    if (++finished == 2)
        all_done.open();
    co_await all_done.wait();
    co_await v.shutdown();
}

Proc<void>
faultBurst(Testbed& bed, VCpu& v, int pages)
{
    co_await bed.started().wait();
    for (int i = 0; i < pages; ++i) {
        co_await v.pageFault(0x200000000ull +
                             static_cast<std::uint64_t>(i) *
                                 (2ull << 20));
    }
    co_await v.shutdown();
}

} // namespace

TEST(VirtioUnit, KickSuppressionBatchesDoorbells)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    // One physical core shared by the vCPU thread and the I/O thread:
    // while the guest produces, the device cannot drain, so the ring
    // accumulates and EVENT_IDX suppression kicks in.
    std::vector<sim::CoreId> cores{0};
    cg::host::CpuMask mask = cg::host::CpuMask::single(0);
    VmInstance& vm = bed.createVmOn("v", cores, mask, 1, vcfg);
    bed.addVirtioNet(vm);
    RemoteHost sink(bed.sim(), bed.fabric(),
                    bed.machine().costs().remoteStack);
    vm.vcpu(0).startGuest(
        "tx", burstSend(bed, vm.vcpu(0), *vm.vnet, 64, sink.port()));
    bed.spawnStart();
    bed.run(5 * sim::sec);
    EXPECT_EQ(vm.vnet->txPackets(), 64u);
    EXPECT_EQ(sink.received(), 64u);
    // EVENT_IDX-style suppression: far fewer kicks than packets.
    EXPECT_LT(vm.kvm->stats().mmioExits.value(), 40u);
    EXPECT_GT(vm.kvm->stats().mmioExits.value(), 0u);
}

TEST(VirtioUnit, NapiCoalescesRxInterrupts)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("v", 2, vcfg);
    bed.addVirtioNet(vm);
    RemoteHost src(bed.sim(), bed.fabric(),
                   bed.machine().costs().remoteStack);
    int got = 0;
    vm.vcpu(0).startGuest(
        "rx", recvBurst(bed, vm.vcpu(0), *vm.vnet, 64, got));
    // Blast 64 packets at the guest back-to-back once it is up.
    struct Helper {
        static Proc<void>
        blaster(Testbed& bed, RemoteHost& src, int port)
        {
            co_await bed.started().wait();
            co_await sim::Delay{1 * msec};
            for (int i = 0; i < 64; ++i)
                src.send(port, 1000, static_cast<std::uint64_t>(i));
        }
    };
    bed.sim().spawn("blaster",
                    Helper::blaster(bed, src, vm.vnet->port()));
    bed.spawnStart();
    bed.run(5 * sim::sec);
    EXPECT_EQ(got, 64);
    // NAPI: the burst is delivered with only a handful of interrupts.
    EXPECT_LT(vm.kvm->stats().injections.value(), 20u);
    EXPECT_GT(vm.kvm->stats().injections.value(), 0u);
}

TEST(VirtioUnit, BlkRequestsFromTwoVcpusAllComplete)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCore;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("v", 3, vcfg);
    bed.addVirtioBlk(vm);
    int done0 = 0, done1 = 0, finished = 0;
    sim::Gate all_done;
    vm.vcpu(0).startGuest(
        "io0", parallelBlkIo(bed, vm.vcpu(0), *vm.vblk, 12, done0,
                             finished, all_done));
    vm.vcpu(1).startGuest(
        "io1", parallelBlkIo(bed, vm.vcpu(1), *vm.vblk, 12, done1,
                             finished, all_done));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    EXPECT_EQ(done0, 12);
    EXPECT_EQ(done1, 12);
    EXPECT_EQ(vm.vblk->requestsCompleted(), 24u);
    EXPECT_EQ(bed.disk().opsCompleted(), 24u);
}

TEST(VirtioUnit, TdxStyleHalvesFaultPathRpcs)
{
    auto run = [](bool tdx) {
        Testbed::Config cfg;
        cfg.numCores = 4;
        cfg.mode = RunMode::CoreGapped;
        Testbed bed(cfg);
        guest::VmConfig vcfg;
        vcfg.tickPeriod = 0;
        VmInstance& vm = bed.createVm("ft", 2, vcfg);
        vm.kvm->setTdxStylePageTables(tdx);
        vm.vcpu(0).startGuest("f", faultBurst(bed, vm.vcpu(0), 50));
        bed.spawnStart();
        bed.run(20 * sim::sec);
        EXPECT_TRUE(bed.allShutdown());
        return vm.gapped->syncRpc().callsServed();
    };
    const auto cca = run(false);
    const auto tdx = run(true);
    // Per 2 MiB-stride fault: CCA needs 4 RMIs (leaf-table delegate +
    // create, data delegate + create) plus one level-2 table for the
    // fresh region; TDX-style pays only the 2 data RMIs.
    EXPECT_EQ(cca, 202u);
    EXPECT_EQ(tdx, 100u);
}
