/**
 * @file
 * Unit tests for the core-gapping plumbing taken in isolation: the
 * exit doorbell, the RPC channels, the kick broker, and the CPU mask.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/doorbell.hh"
#include "core/rpc.hh"
#include "host/cpumask.hh"
#include "sim/simulation.hh"
#include "guest/vm.hh"
#include "vmm/kick.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
namespace host = cg::host;
namespace guest = cg::guest;
using namespace cg::core;
using sim::Proc;
using sim::Tick;
using sim::usec;
using sim::nsec;

// ----------------------------------------------------------------- CpuMask

TEST(CpuMask, Constructors)
{
    EXPECT_TRUE(host::CpuMask{}.empty());
    EXPECT_EQ(host::CpuMask::single(5).count(), 1);
    EXPECT_TRUE(host::CpuMask::single(5).test(5));
    EXPECT_FALSE(host::CpuMask::single(5).test(4));
    EXPECT_EQ(host::CpuMask::firstN(8).count(), 8);
    EXPECT_EQ(host::CpuMask::firstN(64).count(), 64);
    EXPECT_EQ(host::CpuMask::all().count(), 64);
}

TEST(CpuMask, SetClearAndOps)
{
    host::CpuMask m;
    m.set(3);
    m.set(7);
    EXPECT_EQ(m.count(), 2);
    m.clear(3);
    EXPECT_FALSE(m.test(3));
    EXPECT_TRUE(m.test(7));
    const host::CpuMask a = host::CpuMask::firstN(4);
    const host::CpuMask b = host::CpuMask::single(2);
    EXPECT_EQ((a & b).count(), 1);
    EXPECT_EQ((a | host::CpuMask::single(9)).count(), 5);
    EXPECT_FALSE(a.test(-1));
    EXPECT_FALSE(a.test(64));
}

// ---------------------------------------------------------------- doorbell

namespace {

struct PlumbingRig {
    sim::Simulation sim;
    hw::MachineConfig mcfg;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<host::Kernel> kernel;

    PlumbingRig(int cores = 4)
    {
        mcfg.numCores = cores;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        kernel = std::make_unique<host::Kernel>(*machine);
    }
};

} // namespace

TEST(ExitDoorbell, RingReachesSubscribersOnThatCoreOnly)
{
    PlumbingRig rig;
    ExitDoorbell bell(*rig.kernel);
    int on0 = 0, on1 = 0;
    bell.subscribe(0, [&on0] { ++on0; });
    bell.subscribe(1, [&on1] { ++on1; });
    bell.ring(0);
    bell.ring(0);
    bell.ring(1);
    rig.sim.run();
    EXPECT_EQ(on0, 2);
    EXPECT_EQ(on1, 1);
    EXPECT_EQ(bell.rings(), 3u);
}

TEST(ExitDoorbell, UnsubscribeStopsDelivery)
{
    PlumbingRig rig;
    ExitDoorbell bell(*rig.kernel);
    int hits = 0;
    const auto id = bell.subscribe(2, [&hits] { ++hits; });
    bell.ring(2);
    rig.sim.run();
    ASSERT_EQ(hits, 1);
    bell.unsubscribe(2, id);
    bell.ring(2);
    rig.sim.run();
    EXPECT_EQ(hits, 1);
}

TEST(ExitDoorbell, MultipleSubscribersShareOneIpi)
{
    // The paper's constraint: only one SGI number is available.
    PlumbingRig rig;
    ExitDoorbell bell(*rig.kernel);
    int a = 0, b = 0;
    bell.subscribe(0, [&a] { ++a; });
    bell.subscribe(0, [&b] { ++b; });
    bell.ring(0);
    rig.sim.run();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

// -------------------------------------------------------------- SyncRpc

namespace {

Proc<void>
monitorServe(SyncRpcQueue& q, sim::Notify& work, int n, bool& stop)
{
    int served = 0;
    while (served < n && !stop) {
        while (!q.pending() && !stop)
            co_await work.wait();
        if (stop)
            break;
        co_await q.serviceOne();
        ++served;
    }
}

Proc<void>
hostCall(SyncRpcQueue& q, int n, std::vector<Tick>& latencies,
         sim::Simulation& s)
{
    for (int i = 0; i < n; ++i) {
        const Tick t0 = s.now();
        const auto r =
            co_await q.call([] { return cg::rmm::RmiStatus::Success; });
        EXPECT_EQ(r, cg::rmm::RmiStatus::Success);
        latencies.push_back(s.now() - t0);
    }
}

} // namespace

TEST(SyncRpc, RoundTripFromHostThread)
{
    PlumbingRig rig;
    sim::Notify work;
    SyncRpcQueue q(*rig.machine, work);
    bool stop = false;
    rig.sim.spawn("monitor", monitorServe(q, work, 10, stop));
    std::vector<Tick> lats;
    rig.kernel->createThread("caller", hostCall(q, 10, lats, rig.sim));
    rig.sim.run(1 * sim::sec);
    ASSERT_EQ(lats.size(), 10u);
    EXPECT_EQ(q.callsServed(), 10u);
    for (Tick t : lats) {
        EXPECT_GT(t, 150 * nsec);
        EXPECT_LT(t, 600 * nsec);
    }
}

TEST(SyncRpc, CallerBusyWaitConsumesCpu)
{
    // While a sync call is outstanding the calling thread spins: a
    // second fair thread on the same core makes no progress meanwhile.
    PlumbingRig rig(1);
    sim::Notify work;
    SyncRpcQueue q(*rig.machine, work);
    bool stop = false;
    // A slow "monitor": serves only after 5ms.
    struct Helper {
        static Proc<void>
        lateServe(SyncRpcQueue& q, sim::Simulation& s)
        {
            co_await sim::Delay{5 * sim::msec};
            (void)s;
            co_await q.serviceOne();
        }
    };
    rig.sim.spawn("late-monitor", Helper::lateServe(q, rig.sim));
    std::vector<Tick> lats;
    rig.kernel->createThread("caller", hostCall(q, 1, lats, rig.sim));
    rig.sim.run(1 * sim::sec);
    ASSERT_EQ(lats.size(), 1u);
    EXPECT_GT(lats[0], 4900 * sim::usec); // spun the whole time
    (void)stop;
}

// -------------------------------------------------------------- RunSlot

namespace {

Proc<void>
slotMonitor(RunSlot& slot, sim::Notify& work, cg::rmm::RecRunResult res)
{
    while (!slot.posted())
        co_await work.wait();
    cg::rmm::RecEnterArgs args = co_await slot.takeArgs();
    EXPECT_EQ(args.injectVirqs.size(), 2u);
    slot.publish(std::move(res));
}

Proc<void>
slotHost(RunSlot& slot, bool& got, sim::Simulation& s, Tick& when)
{
    cg::rmm::RecEnterArgs args;
    args.injectVirqs = {27, 40};
    slot.post(std::move(args));
    while (!slot.responseReady())
        co_await slot.hostNotify().wait();
    cg::rmm::RecRunResult r = co_await slot.takeResponse();
    got = r.exit.reason == cg::rmm::ExitReason::Hypercall;
    when = s.now();
}

} // namespace

TEST(RunSlot, PostRunPublishConsume)
{
    PlumbingRig rig;
    sim::Notify work;
    RunSlot slot(*rig.machine, work);
    EXPECT_TRUE(slot.idle());
    cg::rmm::RecRunResult res;
    res.exit.reason = cg::rmm::ExitReason::Hypercall;
    rig.sim.spawn("monitor", slotMonitor(slot, work, res));
    bool got = false;
    Tick when = 0;
    rig.kernel->createThread("host",
                             slotHost(slot, got, rig.sim, when));
    // Nobody pokes hostNotify automatically here; emulate the wake-up
    // thread with a poller.
    struct Helper {
        static Proc<void>
        wakeup(RunSlot& slot)
        {
            for (;;) {
                co_await sim::Delay{1 * usec};
                if (slot.needsDelivery()) {
                    slot.markDelivered();
                    slot.hostNotify().notifyAll();
                    co_return;
                }
            }
        }
    };
    rig.sim.spawn("wakeup", Helper::wakeup(slot));
    rig.sim.run(1 * sim::sec);
    EXPECT_TRUE(got);
    EXPECT_TRUE(slot.idle());
    EXPECT_GT(when, 0u);
}

TEST(RunSlot, DeliveryFlagPreventsDoubleWake)
{
    PlumbingRig rig;
    sim::Notify work;
    RunSlot slot(*rig.machine, work);
    cg::rmm::RecEnterArgs args;
    args.injectVirqs = {27, 40};
    slot.post(std::move(args));
    rig.sim.run(1 * sim::msec);
    EXPECT_TRUE(slot.posted());
    EXPECT_FALSE(slot.needsDelivery());
}

// ------------------------------------------------------------ KickBroker

TEST(KickBroker, KickOnExitedVcpuIsNoop)
{
    PlumbingRig rig;
    cg::vmm::KickBroker broker(*rig.kernel);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    guest::Vm vm(*rig.machine, vcfg, sim::firstVmDomain);
    broker.kick(vm.vcpu(0)); // never entered
    rig.sim.run();
    EXPECT_FALSE(vm.vcpu(0).hasPendingEvent());
}

TEST(KickBroker, KickForcesExitOfEnteredVcpu)
{
    PlumbingRig rig;
    cg::vmm::KickBroker broker(*rig.kernel);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    guest::Vm vm(*rig.machine, vcfg, sim::firstVmDomain);
    vm.vcpu(0).enterOn(1);
    broker.kick(vm.vcpu(0));
    rig.sim.run(1 * sim::msec);
    ASSERT_TRUE(vm.vcpu(0).hasPendingEvent());
    EXPECT_EQ(vm.vcpu(0).takeExit().reason,
              cg::rmm::ExitReason::HostKick);
    vm.vcpu(0).pause();
    EXPECT_GE(broker.kicksSent(), 1u);
}
