/** @file Unit tests for the core planner (admission + placement). */

#include <gtest/gtest.h>

#include "core/planner.hh"
#include "sim/simulation.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
namespace host = cg::host;
using cg::core::CorePlanner;

namespace {

struct PlannerFixture : ::testing::Test {
    sim::Simulation s;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<CorePlanner> planner;

    void
    boot(int cores, int per_node, host::CpuMask host_mask)
    {
        hw::MachineConfig cfg;
        cfg.numCores = cores;
        cfg.coresPerNumaNode = per_node;
        machine = std::make_unique<hw::Machine>(s, cfg);
        planner = std::make_unique<CorePlanner>(*machine, host_mask);
    }
};

} // namespace

TEST_F(PlannerFixture, ReserveExcludesHostCores)
{
    boot(8, 8, host::CpuMask::firstN(2));
    auto r = planner->reserve(3);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->size(), 3u);
    for (sim::CoreId c : *r)
        EXPECT_GE(c, 2);
}

TEST_F(PlannerFixture, AdmissionControlNeverOvercommits)
{
    boot(8, 8, host::CpuMask::firstN(2));
    EXPECT_EQ(planner->freeCores(), 6);
    auto a = planner->reserve(4);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(planner->freeCores(), 2);
    // Invariant I7: a 3-core request no longer fits.
    EXPECT_FALSE(planner->reserve(3).has_value());
    auto b = planner->reserve(2);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(planner->freeCores(), 0);
    // No overlap between reservations.
    for (sim::CoreId c : *a)
        for (sim::CoreId d : *b)
            EXPECT_NE(c, d);
}

TEST_F(PlannerFixture, ReleaseReturnsCapacity)
{
    boot(4, 4, host::CpuMask::single(0));
    auto r = planner->reserve(3);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(planner->reserve(1).has_value());
    planner->release(*r);
    EXPECT_EQ(planner->freeCores(), 3);
    EXPECT_TRUE(planner->reserve(1).has_value());
}

TEST_F(PlannerFixture, PrefersSingleNumaNode)
{
    // Two 8-core nodes; host holds cores 0-1; node 0 has 6 free,
    // node 1 has 8 free.
    boot(16, 8, host::CpuMask::firstN(2));
    // Best fit for 6: node 0 exactly.
    auto r = planner->reserve(6);
    ASSERT_TRUE(r.has_value());
    for (sim::CoreId c : *r)
        EXPECT_EQ(machine->core(c).numaNode(), 0);
    // Next request lands wholly on node 1.
    auto r2 = planner->reserve(8);
    ASSERT_TRUE(r2.has_value());
    for (sim::CoreId c : *r2)
        EXPECT_EQ(machine->core(c).numaNode(), 1);
}

TEST_F(PlannerFixture, SpillsAcrossNodesWhenNeeded)
{
    boot(8, 4, host::CpuMask::single(0));
    // 7 free total (3 on node 0, 4 on node 1): a 6-core VM must span.
    auto r = planner->reserve(6);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->size(), 6u);
}

TEST_F(PlannerFixture, DoubleReleasePanics)
{
    boot(4, 4, host::CpuMask::single(0));
    auto r = planner->reserve(2);
    ASSERT_TRUE(r.has_value());
    planner->release(*r);
    EXPECT_DEATH(planner->release(*r), "not.*reserved");
}

TEST_F(PlannerFixture, ReleasingUnreservedCorePanics)
{
    boot(4, 4, host::CpuMask::single(0));
    EXPECT_DEATH(planner->release({2}), "not.*reserved");
    EXPECT_DEATH(planner->release({99}), "nonexistent");
}

TEST_F(PlannerFixture, IsReservedTracksState)
{
    boot(4, 4, host::CpuMask::single(0));
    auto r = planner->reserve(2);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(planner->isReserved((*r)[0]));
    EXPECT_FALSE(planner->isReserved(0));
    planner->release(*r);
    EXPECT_FALSE(planner->isReserved((*r)[0]));
}
