/**
 * @file
 * Tests for host-initiated suspend/resume of a core-gapped CVM — one
 * of the VM lifecycle operations section 7 credits core gapping with
 * preserving (unlike static core slicing).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::core::GappedVm;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;

namespace {

Proc<void>
computeAndShutdown(guest::VCpu& v, Tick work)
{
    co_await Compute{work};
    co_await v.shutdown();
}

Proc<void>
suspendThenFlag(GappedVm& g, bool& done)
{
    co_await g.suspend();
    done = true;
}

} // namespace

TEST(SuspendResume, GuestTimeFreezesWhileSuspended)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("s", 3); // 2 vCPUs
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest(
            "w", computeAndShutdown(vm.vcpu(i), 200 * msec));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 60 * msec);
    ASSERT_FALSE(bed.allShutdown());

    bool suspended = false;
    bed.sim().spawn("suspender",
                    suspendThenFlag(*vm.gapped, suspended));
    bed.run(bed.sim().now() + 20 * msec);
    ASSERT_TRUE(suspended);
    ASSERT_TRUE(vm.gapped->suspended());

    // While suspended, guest CPU time does not advance at all.
    const Tick t0 = vm.vcpu(0).guestCpuTime;
    const Tick t1 = vm.vcpu(1).guestCpuTime;
    bed.run(bed.sim().now() + 300 * msec);
    EXPECT_EQ(vm.vcpu(0).guestCpuTime, t0);
    EXPECT_EQ(vm.vcpu(1).guestCpuTime, t1);
    EXPECT_FALSE(bed.allShutdown());
    // The cores stay dedicated across the suspension.
    EXPECT_EQ(bed.rmm().dedicatedOwner(vm.guestCores[0]),
              vm.kvm->realmId());

    // Resume: the guests finish their remaining work.
    vm.gapped->resume();
    bed.run(bed.sim().now() + 5 * sim::sec);
    EXPECT_TRUE(bed.allShutdown());
    EXPECT_GE(vm.vcpu(0).guestCpuTime, 200 * msec);
}

TEST(SuspendResume, SuspendAfterPartialShutdownIsSafe)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("s", 3);
    // vCPU 0 finishes early; vCPU 1 runs long.
    vm.vcpu(0).startGuest("w0",
                          computeAndShutdown(vm.vcpu(0), 20 * msec));
    vm.vcpu(1).startGuest("w1",
                          computeAndShutdown(vm.vcpu(1), 400 * msec));
    bed.spawnStart();
    bed.run(bed.sim().now() + 100 * msec); // vCPU 0 already gone
    bool suspended = false;
    bed.sim().spawn("suspender",
                    suspendThenFlag(*vm.gapped, suspended));
    bed.run(bed.sim().now() + 20 * msec);
    ASSERT_TRUE(suspended);
    vm.gapped->resume();
    bed.run(bed.sim().now() + 5 * sim::sec);
    EXPECT_TRUE(bed.allShutdown());
}

TEST(SuspendResume, RepeatedCycles)
{
    Testbed::Config cfg;
    cfg.numCores = 3;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("s", 2);
    vm.vcpu(0).startGuest("w",
                          computeAndShutdown(vm.vcpu(0), 150 * msec));
    bed.spawnStart();
    for (int cycle = 0; cycle < 3; ++cycle) {
        bed.run(bed.sim().now() + 30 * msec);
        if (bed.allShutdown())
            break;
        bool s = false;
        bed.sim().spawn("sus", suspendThenFlag(*vm.gapped, s));
        bed.run(bed.sim().now() + 20 * msec);
        ASSERT_TRUE(s) << "cycle " << cycle;
        bed.run(bed.sim().now() + 50 * msec);
        vm.gapped->resume();
    }
    bed.run(bed.sim().now() + 5 * sim::sec);
    EXPECT_TRUE(bed.allShutdown());
    EXPECT_GE(vm.vcpu(0).guestCpuTime, 150 * msec);
}
