/**
 * @file
 * Teardown stress: destroy the whole stack at awkward moments — mid
 * run-call, mid page-fault RPC, mid kick — across seeds. There is
 * nothing to assert beyond "no crash / no leak": the AddressSanitizer
 * build is where this suite earns its keep.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;
using sim::usec;

namespace {

Proc<void>
noisyGuest(Testbed& bed, guest::VCpu& v, std::uint64_t ipa_base)
{
    co_await bed.started().wait();
    for (int i = 0;; ++i) {
        co_await Compute{300 * usec};
        co_await v.pageFault(ipa_base +
                             static_cast<std::uint64_t>(i) * 4096);
    }
}

Proc<void>
kickStorm(Testbed& bed, VmInstance& vm)
{
    co_await bed.started().wait();
    for (;;) {
        co_await sim::Delay{170 * usec};
        vm.kvm->queueInjection(0, 44);
    }
}

class TeardownStress : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(TeardownStress, DestroyMidFlight)
{
    // The cut-off time varies with the seed so destruction lands in
    // different phases (bring-up, steady state, mid-RPC).
    const Tick cutoff =
        (1 + GetParam() % 23) * 3 * msec + GetParam() * 7 * usec;
    {
        Testbed::Config cfg;
        cfg.numCores = 6;
        cfg.mode = GetParam() % 2 == 0
                       ? RunMode::CoreGapped
                       : RunMode::CoreGappedNoDelegation;
        cfg.seed = GetParam();
        Testbed bed(cfg);
        guest::VmConfig vcfg;
        VmInstance& a = bed.createVm("a", 3, vcfg);
        VmInstance& b = bed.createVm("b", 3, vcfg);
        a.vcpu(0).setVirqHandler(44, [] {});
        for (int i = 0; i < 2; ++i) {
            a.vcpu(i).startGuest(
                "na", noisyGuest(bed, a.vcpu(i), 0x40000000ull));
            b.vcpu(i).startGuest(
                "nb", noisyGuest(bed, b.vcpu(i), 0x50000000ull));
        }
        bed.sim().spawn("storm", kickStorm(bed, a));
        bed.spawnStart();
        bed.run(bed.sim().now() + cutoff);
        // Testbed (VMs, monitors, threads, RPC slots, simulation) is
        // destroyed right here, whatever was in flight.
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TeardownStress,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));
