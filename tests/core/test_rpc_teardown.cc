/**
 * @file
 * Focused teardown-order tests for the RPC transports and the exit
 * doorbell: each one arranges a wire-delay event to be in flight and
 * then destroys its target object before the event fires. A missing
 * cancellation turns every one of these into a use-after-free, so this
 * suite earns its keep in the AddressSanitizer build
 * (scripts/sanitize.sh); under a plain build it still catches the
 * crashes and the "handler fires after death" logic bugs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/doorbell.hh"
#include "core/rpc.hh"
#include "host/kernel.hh"
#include "hw/machine.hh"
#include "rmm/rmm.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace core = cg::core;
namespace host = cg::host;
namespace hw = cg::hw;
namespace rmm = cg::rmm;
namespace sim = cg::sim;
using sim::Proc;
using sim::nsec;
using sim::usec;

namespace {

Proc<void>
callForever(core::SyncRpcQueue& q)
{
    // Nobody services the queue in these tests, so this busy-polls
    // until killed.
    co_await q.call([] { return rmm::RmiStatus::Success; });
}

Proc<void>
monitorSide(core::RunSlot& slot, bool& published)
{
    rmm::RecEnterArgs args = co_await slot.takeArgs();
    (void)args;
    slot.publish(rmm::RecRunResult{});
    published = true;
}

} // namespace

TEST(RpcTeardown, SyncRpcQueueDiesWithPokeInFlight)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 2;
    hw::Machine machine(s, mcfg);

    auto poke = std::make_unique<sim::Notify>();
    auto q = std::make_unique<core::SyncRpcQueue>(machine, *poke);
    sim::Process& caller = s.spawn("caller", callForever(*q));

    // Let the caller run just enough to post the call; the wire-delay
    // poke (cacheLineTransfer) is now scheduled but has not fired.
    s.runFor(0);
    ASSERT_TRUE(q->pending());
    ASSERT_FALSE(caller.done());

    caller.kill();
    q.reset();    // must cancel the in-flight poke event
    poke.reset(); // the poke's target Notify dies too
    s.run();      // a dangling poke would fire (and explode) here
    SUCCEED();
}

TEST(RpcTeardown, SyncRpcQueueDiesWithManyPokesInFlight)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 2;
    hw::Machine machine(s, mcfg);

    auto poke = std::make_unique<sim::Notify>();
    auto q = std::make_unique<core::SyncRpcQueue>(machine, *poke);
    std::vector<sim::Process*> callers;
    for (int i = 0; i < 8; ++i)
        callers.push_back(&s.spawn("caller", callForever(*q)));
    s.runFor(0);
    for (sim::Process* c : callers)
        c->kill();
    q.reset();
    poke.reset();
    s.run();
    SUCCEED();
}

TEST(RpcTeardown, RunSlotDiesWithPostInFlight)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 2;
    hw::Machine machine(s, mcfg);

    auto poke = std::make_unique<sim::Notify>();
    auto slot = std::make_unique<core::RunSlot>(machine, *poke);
    slot->post(rmm::RecEnterArgs{});
    ASSERT_TRUE(slot->posted());

    slot.reset(); // must cancel the pending post event
    poke.reset();
    s.run();
    SUCCEED();
}

TEST(RpcTeardown, RunSlotDiesWithPublishInFlight)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 2;
    hw::Machine machine(s, mcfg);

    auto poke = std::make_unique<sim::Notify>();
    auto slot = std::make_unique<core::RunSlot>(machine, *poke);
    slot->post(rmm::RecEnterArgs{});
    s.run(); // drain the post wire delay

    bool published = false;
    sim::Process& mon = s.spawn("monitor", monitorSide(*slot, published));
    // Advance in fine steps so we stop right after publish() schedules
    // its wire-delay event but before that event fires.
    while (!mon.done())
        s.runFor(1 * nsec);
    ASSERT_TRUE(published);
    ASSERT_FALSE(slot->responseReady()) << "wire event already fired";

    slot.reset(); // must cancel the pending publish event
    poke.reset();
    s.run();
    SUCCEED();
}

TEST(RpcTeardown, SlabbedTokensSurviveCallerDeathThenQueueChurn)
{
    // SyncCall tokens are slab-recycled (std::allocate_shared over
    // sim::SlabAllocator). The shared_ptr keeps a dead caller's token
    // alive while its wire poke is in flight; only after the last
    // reference drops may the slab hand the block to a new call. This
    // churns new calls through the recycler immediately after killing
    // callers mid-call: a token recycled too early corrupts the
    // in-flight call's fields (plain build) or trips ASan (sanitizer
    // build, where the slab passes through to the real heap).
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 2;
    hw::Machine machine(s, mcfg);

    auto poke = std::make_unique<sim::Notify>();
    auto q = std::make_unique<core::SyncRpcQueue>(machine, *poke);
    for (int round = 0; round < 16; ++round) {
        sim::Process& caller = s.spawn("caller", callForever(*q));
        s.runFor(0);
        ASSERT_TRUE(q->pending());
        caller.kill(); // token now kept alive only by queue + poke
        // New calls immediately reuse whatever the recycler gives out.
        sim::Process& next = s.spawn("next", callForever(*q));
        s.runFor(0);
        next.kill();
    }
    q.reset();
    poke.reset();
    s.run();
    SUCCEED();
}

TEST(RpcTeardown, DoorbellDiesWithIpiInFlight)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 4;
    hw::Machine machine(s, mcfg);
    host::Kernel kernel(machine);

    auto bell = std::make_unique<core::ExitDoorbell>(kernel);
    bool woke = false;
    bell->subscribe(1, [&woke] { woke = true; });
    bell->ring(1);
    EXPECT_EQ(bell->rings(), 1u);

    // The SGI is still in flight through the GIC; destroying the bell
    // must deregister its IPI handler (which captures the dead bell).
    bell.reset();
    s.run();
    EXPECT_FALSE(woke) << "handler ran after the doorbell died";
    SUCCEED();
}

TEST(RpcTeardown, DoorbellStillWorksWhenAlive)
{
    sim::Simulation s;
    hw::MachineConfig mcfg;
    mcfg.numCores = 4;
    hw::Machine machine(s, mcfg);
    host::Kernel kernel(machine);

    core::ExitDoorbell bell(kernel);
    int wakes = 0;
    bell.subscribe(2, [&wakes] { ++wakes; });
    bell.ring(2);
    bell.ring(2);
    s.run();
    EXPECT_EQ(wakes, 2);
    EXPECT_EQ(bell.rings(), 2u);
}
