/**
 * @file
 * Tests for host-initiated termination of a running CVM (section 4.2:
 * "terminated by the host, or because it exited gracefully"), and for
 * the core-scrub on reclaim: a dedicated core handed back to the host
 * must carry no guest residue — otherwise reclaiming cores would
 * reopen the very side channel core gapping closes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace hw = cg::hw;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::core::GappedVm;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;

namespace {

Proc<void>
endlessWork(Testbed& bed, guest::VCpu& v)
{
    (void)v; // the work is CPU-only; the vCPU never exits voluntarily
    co_await bed.started().wait();
    for (;;)
        co_await Compute{10 * msec};
}

Proc<void>
computeAndShutdown(Testbed& bed, guest::VCpu& v, Tick work)
{
    co_await bed.started().wait();
    co_await Compute{work};
    co_await v.shutdown();
}

Proc<void>
terminateThenFlag(GappedVm& g, bool& done)
{
    co_await g.terminate();
    done = true;
}

Proc<void>
teardownThenFlag(GappedVm& g, bool& done)
{
    co_await g.teardown();
    done = true;
}

} // namespace

TEST(Terminate, HostKillsARunningCvm)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.footprint = 900;
    VmInstance& vm = bed.createVm("victim-of-ops", 3, vcfg);
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest("w", endlessWork(bed, vm.vcpu(i)));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 100 * msec);
    ASSERT_FALSE(vm.kvm->shutdownGate().isOpen());
    ASSERT_GT(vm.vcpu(0).guestCpuTime, 50 * msec);

    bool done = false;
    bed.sim().spawn("killer", terminateThenFlag(*vm.gapped, done));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(done);
    EXPECT_TRUE(vm.kvm->shutdownGate().isOpen());
    // The realm is gone and every core is back with the host.
    EXPECT_EQ(bed.rmm().realm(vm.kvm->realmId()), nullptr);
    for (sim::CoreId c : vm.guestCores) {
        EXPECT_TRUE(bed.kernel().isOnline(c)) << c;
        EXPECT_EQ(bed.machine().core(c).world(), hw::World::Normal);
        EXPECT_EQ(bed.rmm().dedicatedOwner(c), -1);
    }
    // The guest stopped making progress at termination.
    const Tick frozen = vm.vcpu(0).guestCpuTime;
    bed.run(bed.sim().now() + 100 * msec);
    EXPECT_EQ(vm.vcpu(0).guestCpuTime, frozen);
}

TEST(Terminate, ReclaimedCoresCarryNoGuestResidue)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.footprint = 1000; // big working set: lots of residue
    VmInstance& vm = bed.createVm("secretive", 3, vcfg);
    for (int i = 0; i < 2; ++i) {
        vm.vcpu(i).startGuest(
            "w", computeAndShutdown(bed, vm.vcpu(i), 80 * msec));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 1 * sim::sec);
    ASSERT_TRUE(vm.kvm->shutdownGate().isOpen());
    // Residue exists while the cores are still dedicated...
    bool any_residue = false;
    for (sim::CoreId c : vm.guestCores) {
        any_residue = any_residue ||
                      bed.machine().core(c).uarch().l1d.entriesOf(
                          vm.vm->domain()) > 0;
    }
    EXPECT_TRUE(any_residue);

    bool torn = false;
    bed.sim().spawn("teardown", teardownThenFlag(*vm.gapped, torn));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(torn);
    // ...and none once the host owns them again (I5 across reclaim).
    for (sim::CoreId c : vm.guestCores) {
        for (const hw::TaggedStructure* s :
             bed.machine().core(c).uarch().all()) {
            EXPECT_EQ(s->entriesOf(vm.vm->domain()), 0u)
                << "core " << c << " " << s->name();
            EXPECT_EQ(s->entriesOf(sim::monitorDomain), 0u)
                << "core " << c << " " << s->name();
        }
    }
}

TEST(Terminate, CoresAreReusableForTheNextTenant)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& first = bed.createVm("first", 3);
    for (int i = 0; i < 2; ++i)
        first.vcpu(i).startGuest("w", endlessWork(bed, first.vcpu(i)));
    bed.spawnStart();
    bed.run(bed.sim().now() + 50 * msec);
    bool done = false;
    bed.sim().spawn("killer", terminateThenFlag(*first.gapped, done));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(done);

    // A second CVM takes over the same physical cores.
    guest::VmConfig vcfg2;
    vcfg2.name = "second";
    VmInstance& second = bed.createVmOn(
        "second", first.guestCores, first.hostMask, 2, vcfg2);
    bool finished = false;
    struct Helper {
        static Proc<void>
        run(Testbed& bed, VmInstance& vm, bool& fin)
        {
            co_await vm.gapped->start();
            (void)bed;
            fin = true;
        }
    };
    for (int i = 0; i < 2; ++i) {
        second.vcpu(i).startGuest(
            "w", computeAndShutdown(bed, second.vcpu(i), 30 * msec));
    }
    bed.sim().spawn("start2", Helper::run(bed, second, finished));
    bed.run(bed.sim().now() + 5 * sim::sec);
    ASSERT_TRUE(finished);
    bed.run(bed.sim().now() + 5 * sim::sec);
    EXPECT_TRUE(second.kvm->shutdownGate().isOpen());
    EXPECT_EQ(bed.rmm().dedicatedOwner(first.guestCores[0]),
              second.kvm->realmId());
}
