/**
 * @file
 * Mixed tenancy: a core-gapped CVM and an ordinary shared-core VM on
 * the same machine at the same time — the realistic cloud node. The
 * dedicated cores are offline to the host, so the normal VM's threads
 * can never touch them, and the CVM's per-core structures stay free
 * of *everyone* else's residue (and vice versa: the normal VM never
 * observes CVM residue either).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "sim/simulation.hh"
#include "vmm/kvm.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace hw = cg::hw;
namespace guest = cg::guest;
namespace host = cg::host;
namespace vmm = cg::vmm;
using namespace cg::workloads;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;

namespace {

Proc<void>
computeAndShutdown(Testbed& bed, guest::VCpu& v, Tick work)
{
    co_await bed.started().wait();
    co_await Compute{work};
    co_await v.shutdown();
}

} // namespace

TEST(MixedTenancy, GappedCvmAndSharedVmCoexistIsolated)
{
    // The testbed's RMM is mode-global, so build the mixed node by
    // hand: gapped CVM on cores 1-2 (host core 0), a plain shared VM
    // pinned to cores 3-5.
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig ccfg;
    ccfg.footprint = 900;
    ccfg.name = "cvm";
    VmInstance& cvm = bed.createVm("cvm", 3, ccfg);

    // The neighbour: an ordinary VM run directly by KVM.
    guest::VmConfig ncfg;
    ncfg.numVcpus = 3;
    ncfg.name = "plain";
    ncfg.footprint = 900;
    auto plain_vm = std::make_unique<guest::Vm>(
        bed.machine(), ncfg, sim::firstVmDomain + 10);
    vmm::KickBroker kicks(bed.kernel());
    vmm::KvmConfig kcfg;
    kcfg.mode = vmm::VmMode::SharedCore;
    host::CpuMask plain_mask;
    for (sim::CoreId c : {3, 4, 5})
        plain_mask.set(c);
    kcfg.vcpuAffinity = plain_mask;
    vmm::KvmVm plain(bed.kernel(), *plain_vm, kicks, kcfg);

    for (int i = 0; i < cvm.numVcpus(); ++i) {
        cvm.vcpu(i).startGuest(
            "c", computeAndShutdown(bed, cvm.vcpu(i), 150 * msec));
    }
    for (int i = 0; i < 3; ++i) {
        plain_vm->vcpu(i).startGuest(
            "p", computeAndShutdown(bed, plain_vm->vcpu(i),
                                    150 * msec));
    }
    plain.start();
    bed.spawnStart();
    bed.run(10 * sim::sec);

    EXPECT_TRUE(cvm.kvm->shutdownGate().isOpen());
    EXPECT_TRUE(plain.shutdownGate().isOpen());

    // Both made full progress: no cross-interference on CPU time.
    EXPECT_GE(cvm.vcpu(0).guestCpuTime, 150 * msec);
    EXPECT_GE(plain_vm->vcpu(0).guestCpuTime, 150 * msec);

    // Isolation, both directions, on every physical core:
    for (sim::CoreId c : cvm.guestCores) {
        // The CVM's dedicated cores never held the neighbour's state.
        hw::CoreUarch& u = bed.machine().core(c).uarch();
        EXPECT_EQ(u.l1d.entriesOf(plain_vm->domain()), 0u) << c;
        EXPECT_EQ(u.btb.entriesOf(plain_vm->domain()), 0u) << c;
        EXPECT_EQ(u.l1d.entriesOf(sim::hostDomain), 0u) << c;
    }
    for (sim::CoreId c : {3, 4, 5}) {
        // And the CVM never ran on the neighbour's cores.
        hw::CoreUarch& u = bed.machine().core(c).uarch();
        EXPECT_EQ(u.l1d.entriesOf(cvm.vm->domain()), 0u) << c;
        EXPECT_EQ(u.tlb.entriesOf(cvm.vm->domain()), 0u) << c;
    }
}
