/**
 * @file
 * Tests for direct interrupt delivery — the "further changes to KVM
 * and RMM" the paper anticipates in section 5.3: a VF's MSI routed to
 * the REC's dedicated core and injected by the monitor, with no VM
 * exit and no host involvement on the receive path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulation.hh"
#include "workloads/netpipe.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using sim::Proc;
using sim::Tick;
using sim::msec;
using sim::usec;

namespace {

struct NetRun {
    NetPipe::Result np;
    std::uint64_t irqExits;
    std::uint64_t exits;
    std::uint64_t directInjections;
};

NetRun
runPing(bool direct, int iters = 20)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("np", 3, vcfg);
    bed.addSriovNic(vm, direct);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost remote(bed.sim(), bed.fabric(),
                      bed.machine().costs().remoteStack);
    NetPipeResponder responder(remote);
    NetPipe::Config ncfg;
    ncfg.messageBytes = 1448;
    ncfg.iterations = iters;
    NetPipe np(bed, vm, nic, remote, ncfg);
    np.install();
    bed.spawnStart();
    bed.run(20 * sim::sec);
    NetRun r;
    r.np = np.result();
    r.irqExits = bed.rmm().stats().irqRelatedExitsToHost.value();
    r.exits = bed.rmm().stats().exitsToHost.value();
    r.directInjections = vm.gapped->directInjections();
    return r;
}

} // namespace

TEST(DirectIrq, EliminatesRxExitsAndHostInvolvement)
{
    NetRun indirect = runPing(false);
    NetRun direct = runPing(true);
    ASSERT_EQ(indirect.np.completed, 20);
    ASSERT_EQ(direct.np.completed, 20);
    // Without direct delivery every RX is a host kick (irq exit).
    EXPECT_GT(indirect.irqExits, 20u);
    EXPECT_EQ(indirect.directInjections, 0u);
    // With it, the monitor injects on the dedicated core: no RX exits.
    EXPECT_GE(direct.directInjections, 23u); // 20 + warmup
    EXPECT_LT(direct.irqExits, 3u);
    EXPECT_LT(direct.exits, indirect.exits);
}

TEST(DirectIrq, ClosesTheLatencyGap)
{
    NetRun indirect = runPing(false);
    NetRun direct = runPing(true);
    // Section 5.3: the residual 10-20us SR-IOV latency penalty is the
    // indirect interrupt path; direct delivery removes most of it.
    EXPECT_LT(direct.np.latencyUs, indirect.np.latencyUs);
    EXPECT_LT(direct.np.latencyUs - 0.0,
              indirect.np.latencyUs * 0.75);
}

TEST(DirectIrq, SurvivesRebind)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("np", 2, vcfg); // 1 vCPU on core 1
    bed.addSriovNic(vm, true);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost remote(bed.sim(), bed.fabric(),
                      bed.machine().costs().remoteStack);
    NetPipeResponder responder(remote);
    NetPipe::Config ncfg;
    ncfg.messageBytes = 1448;
    ncfg.iterations = 400; // long enough to straddle the rebind
    ncfg.warmup = 0;
    NetPipe np(bed, vm, nic, remote, ncfg);
    np.install();
    bed.spawnStart();
    // Mid-run, migrate the vCPU to core 3: the MSI route must follow.
    struct Helper {
        static Proc<void>
        rebinder(Testbed& bed, VmInstance& vm)
        {
            co_await bed.started().wait();
            co_await sim::Delay{2 * msec};
            const bool ok = co_await vm.gapped->rebindVcpu(0, 3);
            EXPECT_TRUE(ok);
        }
    };
    bed.sim().spawn("rebinder", Helper::rebinder(bed, vm));
    bed.run(30 * sim::sec);
    EXPECT_EQ(np.result().completed, 400);
    EXPECT_EQ(vm.gapped->coreOf(0), 3);
    // The MSI is now routed at the new dedicated core.
    EXPECT_EQ(bed.machine().gic().spiRoute(64), 3);
    EXPECT_GT(vm.gapped->directInjections(), 300u);
}
