/**
 * @file
 * End-to-end tests for realm live migration (DESIGN.md section 12):
 * a running core-gapped CVM moves to a fresh dedicated-core pool with
 * byte-identical guest-visible I/O, injected faults at every phase
 * roll back or retry without stranding the realm, and the defrag-aware
 * planner policy picks strictly improving moves.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/migration.hh"
#include "core/planner.hh"
#include "sim/fault.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
using namespace cg::core;
using namespace cg::workloads;
using sim::CoreId;
using sim::Compute;
using sim::msec;
using sim::Proc;
using sim::Tick;

namespace {

constexpr std::uint64_t mmioBase = 0x0b000000;

/** Guest loop: compute, write a counter out, read an echo back. The
 * write/read streams are the guest-visible output under test. */
Proc<void>
mmioWorker(guest::VCpu& v, std::uint64_t base, int iters,
           std::vector<std::uint64_t>& reads)
{
    for (int i = 0; i < iters; ++i) {
        co_await Compute{3 * msec};
        co_await v.mmioWrite(base, static_cast<std::uint64_t>(i) * 257,
                             8);
        reads.push_back(co_await v.mmioRead(base + 8, 8));
    }
    co_await v.shutdown();
}

Proc<void>
migrateAfter(Testbed& bed, MigrationController& ctrl,
             std::vector<CoreId> dest, Tick when, MigrateResult& out)
{
    co_await bed.started().wait();
    co_await sim::Delay{when};
    if (dest.empty())
        out = co_await ctrl.migrate();
    else
        out = co_await ctrl.migrateTo(std::move(dest));
}

struct ScenarioResult {
    std::vector<std::vector<std::uint64_t>> writes; // per vCPU
    std::vector<std::vector<std::uint64_t>> reads;  // per vCPU
    MigrateResult result = MigrateResult::Refused;
    bool shutdown = false;
};

/** One fixed-seed run; optionally migrating to @p dest mid-run. */
ScenarioResult
runScenario(bool migrate, std::vector<CoreId> dest = {3, 4},
            const std::string& fault_plan = "",
            MigrationController** ctrl_out = nullptr,
            std::uint64_t* stalls_out = nullptr)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    if (!fault_plan.empty())
        bed.sim().faults().arm(23, sim::FaultPlan::parse(fault_plan));
    VmInstance& vm = bed.createVm("m", 3); // host 0, guests {1,2}

    ScenarioResult r;
    r.writes.resize(2);
    r.reads.resize(2);
    for (int i = 0; i < 2; ++i) {
        cg::vmm::MmioRange range;
        range.base = mmioBase + 0x100 * static_cast<std::uint64_t>(i);
        range.size = 0x100;
        auto* log = &r.writes[static_cast<size_t>(i)];
        range.onWrite = [log](const cg::rmm::ExitInfo& e) {
            log->push_back(e.data);
        };
        range.onRead = [](std::uint64_t addr, int len) {
            return addr ^ static_cast<std::uint64_t>(len);
        };
        vm.kvm->mapMmio(range);
        vm.vcpu(i).startGuest(
            "w" + std::to_string(i),
            mmioWorker(vm.vcpu(i), range.base, 25,
                       r.reads[static_cast<size_t>(i)]));
    }
    bed.spawnStart();

    MigrationController ctrl(*vm.gapped, nullptr);
    if (migrate) {
        bed.sim().spawn("migrate",
                        migrateAfter(bed, ctrl, dest, 30 * msec,
                                     r.result));
    }
    bed.run(20 * sim::sec);
    r.shutdown = bed.allShutdown();
    if (migrate && r.result == MigrateResult::Committed) {
        EXPECT_EQ(vm.gapped->coreOf(0), dest[0]);
        EXPECT_EQ(vm.gapped->coreOf(1), dest[1]);
        EXPECT_EQ(bed.rmm().dedicatedOwner(dest[0]),
                  vm.kvm->realmId());
        EXPECT_EQ(bed.rmm().dedicatedOwner(1), -1);
        EXPECT_TRUE(bed.kernel().isOnline(1)); // source handed back
        EXPECT_TRUE(bed.kernel().isOnline(2));
        EXPECT_FALSE(bed.kernel().isOnline(dest[0]));
        // The realm's granules all live in the migration window; the
        // source window was undelegated back to the host.
        for (const auto& [addr, state] :
             bed.rmm().granules().owned(vm.kvm->realmId())) {
            (void)state;
            EXPECT_GE(addr, 0x5ull << 44);
        }
        EXPECT_EQ(bed.rmm().stats().migrationsCommitted.value(), 1u);
    }
    if (ctrl_out)
        *ctrl_out = nullptr; // controller dies with this scope
    if (stalls_out)
        *stalls_out = bed.rmm().stats().migrationStalls.value();
    EXPECT_EQ(ctrl.committed() + ctrl.rolledBack() + ctrl.refused(),
              migrate ? 1u : 0u);
    return r;
}

} // namespace

TEST(Migration, MovesARunningVmWithByteIdenticalGuestOutput)
{
    ScenarioResult plain = runScenario(/*migrate=*/false);
    ScenarioResult moved = runScenario(/*migrate=*/true);
    ASSERT_TRUE(plain.shutdown);
    ASSERT_TRUE(moved.shutdown);
    ASSERT_EQ(moved.result, MigrateResult::Committed);
    // The guest cannot tell it moved: every MMIO write it issued and
    // every value it read back is byte-identical to the unmigrated
    // run, per vCPU, in order.
    EXPECT_EQ(plain.writes, moved.writes);
    EXPECT_EQ(plain.reads, moved.reads);
    ASSERT_EQ(plain.writes[0].size(), 25u);
}

TEST(Migration, InjectedAbortRollsBackThenRetryCommits)
{
    // The 2nd migration-abort query is the post-copy phase boundary:
    // attempt 1 aborts after a full copy, attempt 2 commits.
    ScenarioResult r = runScenario(/*migrate=*/true, {3, 4},
                                   "migration-abort:nth=2");
    ASSERT_TRUE(r.shutdown);
    EXPECT_EQ(r.result, MigrateResult::Committed);

    ScenarioResult plain = runScenario(/*migrate=*/false);
    EXPECT_EQ(plain.writes, r.writes);
    EXPECT_EQ(plain.reads, r.reads);
}

TEST(Migration, CopyStallsAreRetriedWithBackoff)
{
    std::uint64_t stalls = 0;
    ScenarioResult r = runScenario(/*migrate=*/true, {3, 4},
                                   "rtt-copy-stall:nth=1", nullptr,
                                   &stalls);
    ASSERT_TRUE(r.shutdown);
    EXPECT_EQ(r.result, MigrateResult::Committed);
    EXPECT_GE(stalls, 1u);
}

TEST(Migration, ExhaustedAttemptsRollBackToIntactSource)
{
    // Every abort query fires: all attempts fail, the realm stays on
    // its source cores, and the guest finishes untouched.
    ScenarioResult r = runScenario(/*migrate=*/true, {3, 4},
                                   "migration-abort:p=1:max=0");
    ASSERT_TRUE(r.shutdown);
    EXPECT_EQ(r.result, MigrateResult::RolledBack);

    ScenarioResult plain = runScenario(/*migrate=*/false);
    EXPECT_EQ(plain.writes, r.writes);
    EXPECT_EQ(plain.reads, r.reads);
}

TEST(Migration, DefragPolicyPicksStrictlyImprovingMoves)
{
    Testbed::Config cfg;
    cfg.numCores = 8;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    CorePlanner planner(bed.machine(), host::CpuMask::single(0));
    // Fragmented layout: this VM on {2,3}, another tenant pinned on
    // {5}. Free: {1}, {4}, {6,7} — largest run 2.
    planner.reserveExact({2, 3});
    planner.reserveExact({5});
    VmInstance& vm = bed.createVmOn("m", {2, 3},
                                    host::CpuMask::single(0), 2, {},
                                    &planner);
    std::vector<std::uint64_t> reads0, reads1;
    vm.vcpu(0).startGuest("w0", mmioWorker(vm.vcpu(0), mmioBase, 20,
                                           reads0));
    vm.vcpu(1).startGuest("w1",
                          mmioWorker(vm.vcpu(1), mmioBase + 0x100, 20,
                                     reads1));
    cg::vmm::MmioRange range;
    range.base = mmioBase;
    range.size = 0x200;
    range.onWrite = [](const cg::rmm::ExitInfo&) {};
    range.onRead = [](std::uint64_t addr, int len) {
        return addr + static_cast<std::uint64_t>(len);
    };
    vm.kvm->mapMmio(range);
    bed.spawnStart();

    MigrationController ctrl(*vm.gapped, &planner);
    MigrateResult res = MigrateResult::Refused;
    bed.sim().spawn("defrag",
                    migrateAfter(bed, ctrl, {}, 30 * msec, res));
    bed.run(20 * sim::sec);
    ASSERT_TRUE(bed.allShutdown());
    // {6,7} is the only improving move: free becomes {1,2,3,4} with a
    // run of 4 (was 2).
    EXPECT_EQ(res, MigrateResult::Committed);
    EXPECT_EQ(vm.gapped->coreOf(0), 6);
    EXPECT_EQ(vm.gapped->coreOf(1), 7);
    EXPECT_FALSE(planner.isReserved(2));
    EXPECT_FALSE(planner.isReserved(3));
    EXPECT_TRUE(planner.isReserved(6));
    EXPECT_EQ(planner.largestFreeRun(), 4);
    EXPECT_EQ(planner.fragmentation(), 0.0);

    // No further improving move exists: a second ask is refused and
    // reserves nothing.
    const int reserved = planner.reservedCores();
    MigrateResult again = MigrateResult::Committed;
    bed.sim().spawn("defrag2", [](MigrationController& c,
                                  MigrateResult& out) -> Proc<void> {
        out = co_await c.migrate();
    }(ctrl, again));
    bed.run(bed.sim().now() + 100 * msec);
    EXPECT_EQ(again, MigrateResult::Refused);
    EXPECT_EQ(planner.reservedCores(), reserved);
}
