/**
 * @file
 * Integration tests for the observability layer on a full core-gapped
 * testbed: every component registers its stats under the documented
 * dotted names, tracepoints land in the ring during a real run, and —
 * the load-bearing property — tracing changes nothing about the
 * simulated results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/simulation.hh"
#include "sim/trace.hh"
#include "workloads/coremark.hh"

namespace guest = cg::guest;
namespace sim = cg::sim;
using namespace cg::workloads;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;

namespace {

Proc<void>
faultComputeShutdown(Testbed& bed, guest::VCpu& v, int pages, Tick work)
{
    co_await bed.started().wait();
    for (int i = 0; i < pages; ++i)
        co_await v.pageFault(0x50000000ull +
                             static_cast<std::uint64_t>(i) * 4096);
    co_await Compute{work};
    co_await v.shutdown();
}

/** The observable end state of one deterministic gapped run. */
struct RunResult {
    Tick endTime = 0;
    std::uint64_t rmiCalls = 0;
    std::uint64_t kvmExits = 0;
    std::uint64_t gicDelivered = 0;
    std::uint64_t doorbellRings = 0;
    std::uint64_t syncRpcServed = 0;
    std::string traceJson;

    bool operator==(const RunResult& o) const
    {
        return endTime == o.endTime && rmiCalls == o.rmiCalls &&
               kvmExits == o.kvmExits &&
               gicDelivered == o.gicDelivered &&
               doorbellRings == o.doorbellRings &&
               syncRpcServed == o.syncRpcServed;
    }
};

RunResult
gappedRun(bool traced)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = 0x0b5e7e5u;
    Testbed bed(cfg);
    if (traced)
        bed.sim().tracer().enable();
    guest::VmConfig vcfg;
    VmInstance& vm = bed.createVm("vm0", 3, vcfg);
    for (int i = 0; i < vm.numVcpus(); ++i) {
        vm.vcpu(i).startGuest(
            "w", faultComputeShutdown(bed, vm.vcpu(i), 4, 2 * msec));
    }
    bed.spawnStart();
    bed.run();

    const sim::StatRegistry& reg = bed.sim().stats();
    RunResult r;
    r.endTime = bed.sim().now();
    r.rmiCalls = reg.counter("rmm.rmiCalls")->value();
    r.kvmExits = reg.counter("kvm.vm0.exits")->value();
    r.gicDelivered = reg.counter("hw.gic.delivered")->value();
    r.doorbellRings = reg.counter("doorbell.rings")->value();
    r.syncRpcServed = reg.counter("gapped.vm0.syncRpcServed")->value();
    if (traced)
        r.traceJson = bed.sim().tracer().exportJson();
    return r;
}

} // namespace

TEST(Observability, ComponentsRegisterUnderDocumentedNames)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    bed.createVm("vm0", 3, vcfg);

    const sim::StatRegistry& reg = bed.sim().stats();
    for (const char* name :
         {"rmm.exitsToHost", "rmm.rmiCalls", "rmm.rebinds",
          "host.contextSwitches", "host.ipis", "host.hotplugOps",
          "hw.gic.delivered", "doorbell.rings", "kvm.vm0.exits",
          "kvm.vm0.runToRun", "guest.vm0.vcpu0.ticksHandled",
          "guest.vm0.vcpu0.guestCpuTime", "gapped.vm0.runToRun",
          "gapped.vm0.syncRpcServed"}) {
        EXPECT_TRUE(reg.has(name)) << "missing stat: " << name;
    }

    EXPECT_GT(reg.size(), 0u);
}

TEST(Observability, SecondVmRegistersAndNamesStayDisjoint)
{
    Testbed::Config cfg;
    cfg.numCores = 10;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    bed.createVm("vm0", 3, vcfg);
    const std::size_t one_vm = bed.sim().stats().size();
    bed.createVm("vm1", 3, vcfg);
    const sim::StatRegistry& reg = bed.sim().stats();
    EXPECT_GT(reg.size(), one_vm);
    EXPECT_TRUE(reg.has("kvm.vm0.exits"));
    EXPECT_TRUE(reg.has("kvm.vm1.exits"));
    EXPECT_TRUE(reg.has("gapped.vm1.syncRpcServed"));
    // ~Testbed destroys the VMs (and their StatGroups) before the
    // simulation that owns the registry; the ASan build verifies no
    // entry dangles through that window.
}

TEST(Observability, TracingDoesNotPerturbTheSimulation)
{
    const RunResult off1 = gappedRun(false);
    const RunResult on = gappedRun(true);
    const RunResult off2 = gappedRun(false);

    // Same seed, same config: identical with tracing on, off, or on
    // again — tracing is pure observation.
    EXPECT_TRUE(off1 == off2) << "baseline run is not deterministic";
    EXPECT_TRUE(off1 == on) << "tracing perturbed the simulation";

    // And the run did real work, so the equality is meaningful.
    EXPECT_GT(off1.rmiCalls, 0u);
    EXPECT_GT(off1.kvmExits, 0u);
    EXPECT_GT(off1.doorbellRings, 0u);
    EXPECT_GT(off1.syncRpcServed, 0u);
}

TEST(Observability, TraceCapturesTheCoreGappedProtocol)
{
    const RunResult on = gappedRun(true);
    ASSERT_FALSE(on.traceJson.empty());

    // Every leg of the paper's transport shows up: REC execution
    // windows, the SyncRpc short-call protocol, the exit doorbell, the
    // IPIs underneath it, and the bring-up hotplug.
    for (const char* name :
         {"rec-run", "syncrpc-post", "syncrpc-pickup",
          "syncrpc-response", "doorbell-ring", "doorbell-wake",
          "ipi-send", "ipi-deliver", "hotplug-offline"}) {
        EXPECT_NE(on.traceJson.find(std::string("\"name\": \"") + name +
                                    "\""),
                  std::string::npos)
            << "tracepoint never fired: " << name;
    }
    // rec-run carries its ExitReason as an argument.
    EXPECT_NE(on.traceJson.find("\"args\": {\"exit\": "),
              std::string::npos);
}

TEST(Observability, StatsDumpCoversTheWholeTestbed)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    VmInstance& vm = bed.createVm("vm0", 3, vcfg);
    for (int i = 0; i < vm.numVcpus(); ++i) {
        vm.vcpu(i).startGuest(
            "w", faultComputeShutdown(bed, vm.vcpu(i), 2, 1 * msec));
    }
    bed.spawnStart();
    bed.run();

    const std::string text = bed.sim().stats().dumpText();
    EXPECT_NE(text.find("rmm.exitsToHost"), std::string::npos);
    EXPECT_NE(text.find("gapped.vm0.runToRun"), std::string::npos);
    const std::string json = bed.sim().stats().dumpJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"latency\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"value\""), std::string::npos);
}
