/**
 * @file
 * Tests for coarse-timescale vCPU-to-core rebinding — the future work
 * the paper defers in section 3, implemented here as an extension:
 * the monitor validates the move, rate-limits it, scrubs the old
 * core's residue, and the runner re-plumbs the dedicated core without
 * losing guest work.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "sim/simulation.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
namespace host = cg::host;
namespace guest = cg::guest;
namespace vmm = cg::vmm;
using namespace cg::core;
using guest::VCpu;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;

namespace {

Proc<void>
computeAndShutdown(VCpu& v, Tick work)
{
    co_await Compute{work};
    co_await v.shutdown();
}

Proc<void>
startGapped(GappedVm& g)
{
    co_await g.start();
}

Proc<void>
doRebind(GappedVm& g, int idx, sim::CoreId core, int& result)
{
    const bool ok = co_await g.rebindVcpu(idx, core);
    result = ok ? 1 : 0;
}

struct Rig {
    sim::Simulation sim;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<host::Kernel> kernel;
    std::unique_ptr<vmm::KickBroker> kicks;
    std::unique_ptr<cg::rmm::Rmm> rmm;
    std::unique_ptr<ExitDoorbell> doorbell;
    std::unique_ptr<guest::Vm> vm;
    std::unique_ptr<vmm::KvmVm> kvm;
    std::unique_ptr<GappedVm> gapped;

    void
    boot(int cores, Tick min_rebind_interval = 0)
    {
        hw::MachineConfig mcfg;
        mcfg.numCores = cores;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        kernel = std::make_unique<host::Kernel>(*machine);
        kicks = std::make_unique<vmm::KickBroker>(*kernel);
        cg::rmm::RmmConfig rcfg;
        rcfg.coreGapped = true;
        rcfg.delegateInterrupts = true;
        rcfg.localWfi = true;
        rcfg.minRebindInterval = min_rebind_interval;
        rmm = std::make_unique<cg::rmm::Rmm>(*machine, rcfg);
        doorbell = std::make_unique<ExitDoorbell>(*kernel);
        guest::VmConfig vcfg;
        vcfg.numVcpus = 1;
        vm = std::make_unique<guest::Vm>(*machine, vcfg,
                                         sim::firstVmDomain);
        vmm::KvmConfig kcfg;
        kcfg.mode = vmm::VmMode::SharedCoreCvm;
        kvm = std::make_unique<vmm::KvmVm>(*kernel, *vm, *kicks, kcfg);
        kvm->attachRealm(*rmm, vmm::createRealmFor(*rmm, *vm));
        GappedVmConfig gcfg;
        gcfg.guestCores = {1};
        gcfg.hostCores = host::CpuMask::single(0);
        gapped = std::make_unique<GappedVm>(*kvm, *doorbell, gcfg);
    }
};

struct RebindFixture : ::testing::Test, Rig {};

} // namespace

TEST_F(RebindFixture, MovesExecutionAndPreservesWork)
{
    boot(4);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 300 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.runFor(100 * msec);
    ASSERT_EQ(rmm->recBinding(kvm->realmId(), 0), 1);

    int ok = -1;
    sim.spawn("rebind", doRebind(*gapped, 0, 2, ok));
    sim.runFor(100 * msec);
    EXPECT_EQ(ok, 1);
    // The binding moved, the old core was released and is back online
    // for the host, and the new core is offline/dedicated.
    EXPECT_EQ(rmm->recBinding(kvm->realmId(), 0), 2);
    EXPECT_EQ(gapped->coreOf(0), 2);
    EXPECT_EQ(rmm->dedicatedOwner(1), -1);
    EXPECT_EQ(rmm->dedicatedOwner(2), kvm->realmId());
    EXPECT_TRUE(kernel->isOnline(1));
    EXPECT_FALSE(kernel->isOnline(2));
    // The old core holds no guest residue (the monitor scrubbed it).
    for (const hw::TaggedStructure* s : machine->core(1).uarch().all())
        EXPECT_EQ(s->entriesOf(vm->domain()), 0u) << s->name();
    // Guest work survives the move and completes.
    sim.run(30 * sim::sec);
    EXPECT_TRUE(gapped->shutdownGate().isOpen());
    EXPECT_GE(vm->vcpu(0).guestCpuTime, 300 * msec);
    EXPECT_EQ(rmm->stats().rebinds.value(), 1u);
}

TEST_F(RebindFixture, RateLimitEnforcesCoarseTimescales)
{
    boot(6, /*min_rebind_interval=*/10 * sim::sec);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 2 * sim::sec));
    sim.spawn("starter", startGapped(*gapped));
    sim.runFor(100 * msec);

    int first = -1;
    sim.spawn("r1", doRebind(*gapped, 0, 2, first));
    sim.runFor(100 * msec);
    ASSERT_EQ(first, 1);
    // An immediate second move is refused by the monitor's limiter
    // (Busy, counted), but the control plane does not drop it: it
    // holds the new core, backs off until the window opens, and
    // retries — so the rebind eventually lands.
    int second = -1;
    sim.spawn("r2", doRebind(*gapped, 0, 3, second));
    sim.runFor(200 * msec);
    // Still inside the rate-limit window: nothing moved yet.
    EXPECT_EQ(second, -1);
    EXPECT_EQ(rmm->recBinding(kvm->realmId(), 0), 2);
    EXPECT_GE(rmm->stats().rebindsRefused.value(), 1u);
    // After the window opens the retry succeeds.
    sim.runFor(11 * sim::sec);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(rmm->recBinding(kvm->realmId(), 0), 3);
    EXPECT_GE(gapped->rebindRetries(), 1u);
    EXPECT_TRUE(kernel->isOnline(2)); // old core back with the host
    // The guest keeps running across the backed-off move.
    sim.run(40 * sim::sec);
    EXPECT_TRUE(gapped->shutdownGate().isOpen());
}

TEST_F(RebindFixture, MigrationBusyIsNotMistakenForRateLimit)
{
    // The retry loop only backs off when the limiter refused the move
    // (rebindAllowedAt in the future). A Busy from an in-flight
    // migration reports allowed-at 0, so the control plane rolls back
    // instead of spinning on a refusal that backoff cannot cure.
    boot(6, /*min_rebind_interval=*/10 * sim::sec);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 2 * sim::sec));
    sim.spawn("starter", startGapped(*gapped));
    sim.runFor(100 * msec);

    int susp = -1;
    sim.spawn("susp", [](GappedVm& g, int& out) -> Proc<void> {
        out = (co_await g.trySuspend(GappedVm::parkDeadline)) ? 1 : 0;
    }(*gapped, susp));
    sim.runFor(100 * msec);
    ASSERT_EQ(susp, 1);
    ASSERT_EQ(rmm->migratePrepare(kvm->realmId()),
              cg::rmm::RmiStatus::Success);

    const auto refused_before = rmm->stats().rebindsRefused.value();
    EXPECT_EQ(rmm->recRebind(kvm->realmId(), 0, 3),
              cg::rmm::RmiStatus::Busy);
    EXPECT_EQ(rmm->stats().rebindsRefused.value(), refused_before + 1);
    // Not the limiter: the window is open (no rebind ever happened).
    EXPECT_EQ(rmm->rebindAllowedAt(kvm->realmId(), 0), 0u);

    ASSERT_EQ(rmm->migrateAbort(kvm->realmId()),
              cg::rmm::RmiStatus::Success);
    gapped->resume();
    sim.run(30 * sim::sec);
    EXPECT_TRUE(gapped->shutdownGate().isOpen());
}

TEST_F(RebindFixture, RefusesAnotherTenantsCore)
{
    boot(6);
    // A second realm dedicates core 3.
    guest::VmConfig vcfg2;
    vcfg2.numVcpus = 1;
    vcfg2.name = "other";
    guest::Vm vm2(*machine, vcfg2, sim::firstVmDomain + 1);
    vmm::KvmConfig kcfg2;
    kcfg2.mode = vmm::VmMode::SharedCoreCvm;
    vmm::KvmVm kvm2(*kernel, vm2, *kicks, kcfg2);
    kvm2.attachRealm(*rmm, vmm::createRealmFor(*rmm, vm2));
    GappedVmConfig gcfg2;
    gcfg2.guestCores = {3};
    gcfg2.hostCores = host::CpuMask::single(0);
    GappedVm gapped2(kvm2, *doorbell, gcfg2);

    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 500 * msec));
    vm2.vcpu(0).startGuest(
        "w2", computeAndShutdown(vm2.vcpu(0), 500 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.spawn("starter2", startGapped(gapped2));
    sim.runFor(100 * msec);

    // Direct monitor-level check: core 3 belongs to the other realm.
    EXPECT_EQ(rmm->recRebind(kvm->realmId(), 0, 3),
              cg::rmm::RmiStatus::WrongCore);
    EXPECT_EQ(rmm->recBinding(kvm->realmId(), 0), 1);
    sim.run(30 * sim::sec);
}

TEST_F(RebindFixture, MonitorLevelValidation)
{
    boot(4);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 200 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.runFor(50 * msec);
    // Same core: BadArgs. Out of range: BadArgs. Unknown REC: BadState.
    EXPECT_EQ(rmm->recRebind(kvm->realmId(), 0, 1),
              cg::rmm::RmiStatus::BadArgs);
    EXPECT_EQ(rmm->recRebind(kvm->realmId(), 0, 99),
              cg::rmm::RmiStatus::BadArgs);
    EXPECT_EQ(rmm->recRebind(kvm->realmId(), 7, 2),
              cg::rmm::RmiStatus::BadState);
    sim.run(30 * sim::sec);
}
