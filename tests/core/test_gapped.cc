/**
 * @file
 * End-to-end integration tests for core-gapped confidential VMs: the
 * full bring-up (hotplug, monitor handoff, RPC channels, wake-up
 * thread), execution, interrupt delegation, security invariants
 * (I1/I2), and teardown (I6).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "core/planner.hh"
#include "sim/simulation.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
namespace host = cg::host;
namespace guest = cg::guest;
namespace vmm = cg::vmm;
using namespace cg::core;
using guest::VCpu;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;
using sim::usec;

namespace {

Proc<void>
computeAndShutdown(VCpu& v, Tick work)
{
    co_await Compute{work};
    co_await v.shutdown();
}

Proc<void>
faultComputeShutdown(VCpu& v, int pages, Tick work)
{
    for (int i = 0; i < pages; ++i)
        co_await v.pageFault(0x50000000ull +
                             static_cast<std::uint64_t>(i) * 4096);
    co_await Compute{work};
    co_await v.shutdown();
}

Proc<void>
startGapped(GappedVm& g)
{
    co_await g.start();
}

Proc<void>
teardownGapped(GappedVm& g, bool& done)
{
    co_await g.teardown();
    done = true;
}

struct Rig {
    sim::Simulation sim;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<host::Kernel> kernel;
    std::unique_ptr<vmm::KickBroker> kicks;
    std::unique_ptr<cg::rmm::Rmm> rmm;
    std::unique_ptr<ExitDoorbell> doorbell;
    std::unique_ptr<guest::Vm> vm;
    std::unique_ptr<vmm::KvmVm> kvm;
    std::unique_ptr<GappedVm> gapped;

    void
    boot(int cores, guest::VmConfig vcfg, GappedVmConfig gcfg,
         cg::rmm::RmmConfig rcfg = defaultRmmConfig())
    {
        hw::MachineConfig mcfg;
        mcfg.numCores = cores;
        machine = std::make_unique<hw::Machine>(sim, mcfg);
        kernel = std::make_unique<host::Kernel>(*machine);
        kicks = std::make_unique<vmm::KickBroker>(*kernel);
        rmm = std::make_unique<cg::rmm::Rmm>(*machine, rcfg);
        doorbell = std::make_unique<ExitDoorbell>(*kernel);
        vm = std::make_unique<guest::Vm>(*machine, vcfg,
                                         sim::firstVmDomain);
        vmm::KvmConfig kcfg;
        kcfg.mode = vmm::VmMode::SharedCoreCvm;
        kvm = std::make_unique<vmm::KvmVm>(*kernel, *vm, *kicks, kcfg);
        const int realm = vmm::createRealmFor(*rmm, *vm);
        kvm->attachRealm(*rmm, realm);
        gapped = std::make_unique<GappedVm>(*kvm, *doorbell, gcfg);
    }

    static cg::rmm::RmmConfig
    defaultRmmConfig()
    {
        cg::rmm::RmmConfig r;
        r.coreGapped = true;
        r.delegateInterrupts = true;
        r.localWfi = true;
        return r;
    }
};

struct GappedFixture : ::testing::Test, Rig {};

} // namespace

TEST_F(GappedFixture, RunsCpuWorkloadToShutdown)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 2;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1, 2};
    gcfg.hostCores = host::CpuMask::single(0);
    boot(4, vcfg, gcfg);
    for (int i = 0; i < 2; ++i) {
        vm->vcpu(i).startGuest(
            "w", computeAndShutdown(vm->vcpu(i), 80 * msec));
    }
    sim.spawn("starter", startGapped(*gapped));
    sim.run(5 * sim::sec);
    EXPECT_TRUE(gapped->shutdownGate().isOpen());
    // Guest work completed despite hotplug etc.
    EXPECT_GE(vm->vcpu(0).guestCpuTime, 80 * msec);
    EXPECT_GE(vm->vcpu(1).guestCpuTime, 80 * msec);
    // The dedicated cores went offline and stayed offline.
    EXPECT_FALSE(kernel->isOnline(1));
    EXPECT_FALSE(kernel->isOnline(2));
    // The doorbell carried exit notifications.
    EXPECT_GT(doorbell->rings(), 0u);
}

TEST_F(GappedFixture, DelegationSuppressesInterruptExits)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1};
    boot(2, vcfg, gcfg);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 200 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.run(5 * sim::sec);
    ASSERT_TRUE(gapped->shutdownGate().isOpen());
    // 200ms at 250 Hz = 50 ticks; delegated => ~zero irq exits to host.
    EXPECT_GE(rmm->stats().delegatedTimerEvents.value(), 80u);
    EXPECT_LE(rmm->stats().irqRelatedExitsToHost.value(), 2u);
    EXPECT_EQ(vm->vcpu(0).ticksHandled.value(), 50u);
}

TEST_F(GappedFixture, WithoutDelegationTimerExitsReachHost)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1};
    cg::rmm::RmmConfig rcfg;
    rcfg.coreGapped = true;
    rcfg.delegateInterrupts = false;
    rcfg.localWfi = true;
    boot(2, vcfg, gcfg, rcfg);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 200 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.run(5 * sim::sec);
    ASSERT_TRUE(gapped->shutdownGate().isOpen());
    // Every tick now costs two host exits (table 4's contrast).
    EXPECT_GE(rmm->stats().irqRelatedExitsToHost.value(), 90u);
    EXPECT_EQ(rmm->stats().delegatedTimerEvents.value(), 0u);
}

TEST_F(GappedFixture, BindingEnforcedDuringRun)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    GappedVmConfig gcfg;
    gcfg.guestCores = {2};
    boot(4, vcfg, gcfg);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 100 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.runFor(50 * msec);
    // Invariant I1: the REC is bound to its dedicated core.
    EXPECT_EQ(rmm->recBinding(kvm->realmId(), 0), 2);
    EXPECT_EQ(rmm->dedicatedOwner(2), kvm->realmId());
    // Invariant I3: a dispatch anywhere else is rejected.
    EXPECT_EQ(rmm->recEnterCheck(kvm->realmId(), 0, 3),
              cg::rmm::RmiStatus::WrongCore);
    sim.run(5 * sim::sec);
    EXPECT_TRUE(gapped->shutdownGate().isOpen());
}

TEST_F(GappedFixture, OnlyTrustedDomainsTouchDedicatedCore)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1};
    boot(2, vcfg, gcfg);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 100 * msec));
    sim.spawn("starter", startGapped(*gapped));
    // Invariant I2: sample the dedicated core's occupant while the
    // CVM runs — only the monitor or the guest domain may appear.
    bool saw_guest = false;
    for (int i = 0; i < 40; ++i) {
        sim.runFor(3 * msec);
        const sim::DomainId occ = machine->core(1).occupant();
        if (gapped->shutdownGate().isOpen())
            break;
        if (sim.now() > 40 * msec) { // past bring-up
            EXPECT_TRUE(occ == sim::monitorDomain ||
                        occ == vm->domain())
                << "unexpected occupant " << occ;
            saw_guest = saw_guest || occ == vm->domain();
        }
    }
    EXPECT_TRUE(saw_guest);
    sim.run(5 * sim::sec);
}

TEST_F(GappedFixture, PageFaultsServedOverSyncRpc)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    vcfg.tickPeriod = 0;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1};
    boot(2, vcfg, gcfg);
    vm->vcpu(0).startGuest(
        "w", faultComputeShutdown(vm->vcpu(0), 8, 10 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.run(5 * sim::sec);
    ASSERT_TRUE(gapped->shutdownGate().isOpen());
    EXPECT_EQ(kvm->stats().pageFaultExits.value(), 8u);
    // Each fault needed granule-delegate + map RMI calls via RPC.
    EXPECT_GT(gapped->syncRpc().callsServed(), 8u);
}

TEST_F(GappedFixture, TeardownRestoresCores)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 2;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1, 2};
    boot(4, vcfg, gcfg);
    for (int i = 0; i < 2; ++i) {
        vm->vcpu(i).startGuest(
            "w", computeAndShutdown(vm->vcpu(i), 20 * msec));
    }
    sim.spawn("starter", startGapped(*gapped));
    sim.run(5 * sim::sec);
    ASSERT_TRUE(gapped->shutdownGate().isOpen());
    bool torn = false;
    sim.spawn("teardown", teardownGapped(*gapped, torn));
    sim.runFor(5 * sim::sec);
    ASSERT_TRUE(torn);
    // Invariant I6: cores are online and schedulable again.
    EXPECT_TRUE(kernel->isOnline(1));
    EXPECT_TRUE(kernel->isOnline(2));
    EXPECT_EQ(machine->core(1).world(), hw::World::Normal);
    EXPECT_EQ(rmm->dedicatedOwner(1), -1);
    EXPECT_EQ(rmm->realm(kvm->realmId()), nullptr);
}

TEST_F(GappedFixture, BusyWaitVariantAlsoCompletes)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 2;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1, 2};
    gcfg.busyWaitRun = true;
    boot(4, vcfg, gcfg);
    for (int i = 0; i < 2; ++i) {
        vm->vcpu(i).startGuest(
            "w", computeAndShutdown(vm->vcpu(i), 50 * msec));
    }
    sim.spawn("starter", startGapped(*gapped));
    sim.run(10 * sim::sec);
    EXPECT_TRUE(gapped->shutdownGate().isOpen());
}

TEST_F(GappedFixture, RunToRunLatencyIsMicroseconds)
{
    guest::VmConfig vcfg;
    vcfg.numVcpus = 1;
    GappedVmConfig gcfg;
    gcfg.guestCores = {1};
    cg::rmm::RmmConfig rcfg;
    rcfg.coreGapped = true;
    rcfg.delegateInterrupts = false; // force frequent exits
    rcfg.localWfi = true;
    boot(2, vcfg, gcfg, rcfg);
    vm->vcpu(0).startGuest(
        "w", computeAndShutdown(vm->vcpu(0), 100 * msec));
    sim.spawn("starter", startGapped(*gapped));
    sim.run(5 * sim::sec);
    ASSERT_TRUE(gapped->shutdownGate().isOpen());
    ASSERT_GT(gapped->runToRun().count(), 10u);
    // Fig. 6 reports ~26 us run-to-run on an uncontended host core;
    // accept a generous band around that.
    EXPECT_GT(gapped->runToRun().meanUs(), 1.5);
    EXPECT_LT(gapped->runToRun().meanUs(), 120.0);
}
