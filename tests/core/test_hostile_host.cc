/**
 * @file
 * Failure injection: a hostile hypervisor throws everything it legally
 * can at a running core-gapped CVM — wrong-core dispatch storms,
 * forged interrupt injections, kick floods, and bogus RMI sequences —
 * and the monitor's checks must hold while the guest keeps making
 * progress (denial of service is out of scope, section 2.4, but
 * integrity and confidentiality controls are not).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/gapped_vm.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace hw = cg::hw;
namespace guest = cg::guest;
namespace rmm = cg::rmm;
using namespace cg::workloads;
using sim::Proc;
using sim::Tick;
using sim::Compute;
using sim::msec;
using sim::usec;

namespace {

Proc<void>
computeAndShutdown(Testbed& bed, guest::VCpu& v, Tick work)
{
    co_await bed.started().wait();
    co_await Compute{work};
    co_await v.shutdown();
}

/** A malicious host thread hammering REC enter on the wrong cores. */
Proc<void>
wrongCoreStorm(Testbed& bed, int realm, int attempts, int& rejected)
{
    co_await bed.started().wait();
    // The binding is created by the FIRST legitimate dispatch; attack
    // once it exists (before that, placement is the host's to choose,
    // by design — wherever the vCPU first runs becomes dedicated).
    co_await sim::Delay{5 * msec};
    for (int i = 0; i < attempts; ++i) {
        // Probe every core except the bound one (which is 1).
        for (sim::CoreId c : {0, 2, 3}) {
            const rmm::RmiStatus s =
                bed.rmm().recEnterCheck(realm, 0, c);
            if (s != rmm::RmiStatus::Success)
                ++rejected;
        }
        co_await Compute{20 * usec};
    }
}

/** Forged injections: the host claims the timer fired, repeatedly. */
Proc<void>
forgedTickStorm(Testbed& bed, VmInstance& vm, int count)
{
    co_await bed.started().wait();
    for (int i = 0; i < count; ++i) {
        vm.kvm->queueInjection(0, hw::vtimerPpi);
        vm.kvm->queueInjection(0, hw::sgiBase + 1);
        co_await sim::Delay{200 * usec};
    }
}

} // namespace

TEST(HostileHost, WrongCoreStormNeverLandsAndGuestUnharmed)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("target", 2); // vCPU on core 1
    vm.vcpu(0).startGuest(
        "w", computeAndShutdown(bed, vm.vcpu(0), 100 * msec));
    int rejected = 0;
    bed.sim().spawn("attacker",
                    wrongCoreStorm(bed, vm.kvm->realmId(), 200,
                                   rejected));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    EXPECT_TRUE(vm.kvm->shutdownGate().isOpen());
    // Every single misplaced dispatch check failed closed.
    EXPECT_EQ(rejected, 600);
    // And the guest's progress was exactly its work, undisturbed.
    EXPECT_GE(vm.vcpu(0).guestCpuTime, 100 * msec);
    EXPECT_LT(vm.vcpu(0).guestCpuTime, 102 * msec);
}

TEST(HostileHost, ForgedDelegatedInterruptsAreFiltered)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped; // delegation on
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0; // no genuine ticks: any tick would be forged
    VmInstance& vm = bed.createVm("target", 2, vcfg);
    vm.vcpu(0).startGuest(
        "w", computeAndShutdown(bed, vm.vcpu(0), 50 * msec));
    bed.sim().spawn("forger", forgedTickStorm(bed, vm, 50));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    EXPECT_TRUE(vm.kvm->shutdownGate().isOpen());
    // The monitor owns the delegated ids: every forgery was dropped.
    EXPECT_EQ(vm.vcpu(0).ticksHandled.value(), 0u);
    EXPECT_GE(bed.rmm().stats().filteredInjections.value(), 90u);
}

TEST(HostileHost, WithoutDelegationHostInjectionsAreItsBusiness)
{
    // Baseline semantics check: without delegation the host manages
    // all virtual interrupts, so its injections do reach the guest.
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGappedNoDelegation;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("target", 2, vcfg);
    vm.vcpu(0).startGuest(
        "w", computeAndShutdown(bed, vm.vcpu(0), 30 * msec));
    bed.sim().spawn("injector", forgedTickStorm(bed, vm, 10));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    EXPECT_TRUE(vm.kvm->shutdownGate().isOpen());
    EXPECT_GT(vm.vcpu(0).virqsHandled.value(), 0u);
    EXPECT_EQ(bed.rmm().stats().filteredInjections.value(), 0u);
}

TEST(HostileHost, KickFloodOnlySlowsTheGuest)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("target", 2, vcfg);
    vm.vcpu(0).startGuest(
        "w", computeAndShutdown(bed, vm.vcpu(0), 50 * msec));
    // 500 gratuitous kicks: each forces an exit (a DoS vector the
    // threat model accepts), but integrity holds and work completes.
    struct Helper {
        static Proc<void>
        kicker(Testbed& bed, VmInstance& vm)
        {
            co_await bed.started().wait();
            for (int i = 0; i < 500; ++i) {
                bed.machine().gic().sendSgi(vm.guestCores[0], 15);
                co_await sim::Delay{150 * usec};
            }
        }
    };
    bed.sim().spawn("kicker", Helper::kicker(bed, vm));
    bed.spawnStart();
    bed.run(30 * sim::sec);
    EXPECT_TRUE(vm.kvm->shutdownGate().isOpen());
    EXPECT_GE(vm.vcpu(0).guestCpuTime, 50 * msec);
    // The kicks really did force exits (they are visible, not hidden).
    EXPECT_GT(bed.rmm().stats().exitsToHost.value(), 100u);
}

TEST(HostileHost, BogusRmiSequencesFailClosed)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("target", 2);
    rmm::Rmm& r = bed.rmm();
    const int realm = vm.kvm->realmId();
    // Destroy a realm with live RECs: refused.
    EXPECT_EQ(r.realmDestroy(realm), rmm::RmiStatus::BadState);
    // Activate twice: refused.
    EXPECT_EQ(r.realmActivate(realm), rmm::RmiStatus::BadState);
    // Create RECs after activation: refused.
    int rec = -1;
    EXPECT_EQ(r.recCreate(realm, 0xdead000, rec),
              rmm::RmiStatus::BadState);
    // Steal a data granule back while assigned: refused, and it stays
    // host-inaccessible (invariant I4).
    // (Granule addresses for this realm start at its private window.)
    const rmm::PhysAddr some_data =
        ((static_cast<std::uint64_t>(vm.vm->domain()) + 0x100) << 32) +
        5 * rmm::granuleSize;
    EXPECT_EQ(r.granuleUndelegate(some_data), rmm::RmiStatus::BadState);
    EXPECT_FALSE(r.granules().hostAccessible(some_data));
    // Attest a nonexistent realm: refused.
    rmm::AttestationToken t;
    EXPECT_EQ(r.attest(realm + 7, 1, t), rmm::RmiStatus::BadState);
}
