/**
 * @file
 * Tests for guest-initiated attestation (RSI_ATTESTATION_TOKEN): the
 * call is serviced wholly inside the monitor — the guest gets a
 * verifiable token over its realm's measurements and the host never
 * sees an exit for it.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

struct AttestOut {
    bool got = false;
    bool verified = false;
    cg::rmm::Digest rim = 0;
    Tick latency = 0;
};

Proc<void>
attestingGuest(Testbed& bed, guest::VCpu& v, AttestOut& out)
{
    co_await bed.started().wait();
    const Tick t0 = bed.sim().now();
    cg::rmm::AttestationToken t = co_await v.rsiAttest(0xfeed);
    out.latency = bed.sim().now() - t0;
    out.got = true;
    out.verified = bed.rmm().authority().verify(t, 0xfeed);
    out.rim = t.rim;
    co_await v.shutdown();
}

} // namespace

TEST(RsiAttest, GuestGetsVerifiableTokenWithoutHostExits)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("att", 2, vcfg);
    AttestOut out;
    vm.vcpu(0).startGuest("attester",
                          attestingGuest(bed, vm.vcpu(0), out));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    ASSERT_TRUE(out.got);
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.rim,
              bed.rmm().realm(vm.kvm->realmId())->measurement.rim());
    // Token signing dominates the call; and the host saw no exit for
    // it (the only host exit of this run is the final shutdown).
    EXPECT_GT(out.latency, 50 * sim::usec);
    EXPECT_EQ(bed.rmm().stats().rsiCalls.value(), 1u);
    EXPECT_LE(bed.rmm().stats().exitsToHost.value(), 2u);
}

TEST(RsiAttest, WorksInSharedCvmModeToo)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::SharedCoreCvm;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("att", 2, vcfg);
    AttestOut out;
    vm.vcpu(0).startGuest("attester",
                          attestingGuest(bed, vm.vcpu(0), out));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    ASSERT_TRUE(out.got);
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(bed.rmm().stats().rsiCalls.value(), 1u);
}

TEST(RsiAttest, DistinctRealmsGetDistinctMeasurements)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& a = bed.createVm("alpha", 2, vcfg);
    VmInstance& b = bed.createVm("beta", 2, vcfg);
    AttestOut out_a, out_b;
    a.vcpu(0).startGuest("att-a", attestingGuest(bed, a.vcpu(0), out_a));
    b.vcpu(0).startGuest("att-b", attestingGuest(bed, b.vcpu(0), out_b));
    bed.spawnStart();
    bed.run(10 * sim::sec);
    ASSERT_TRUE(out_a.got && out_b.got);
    EXPECT_TRUE(out_a.verified && out_b.verified);
    // Different realm contents (names measured at creation) must give
    // different initial measurements.
    EXPECT_NE(out_a.rim, out_b.rim);
}
