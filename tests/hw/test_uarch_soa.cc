/**
 * @file
 * Property test pinning the SoA share census to the PR 1 semantics.
 *
 * TaggedStructure's census moved from an array-of-structs
 * (SmallVec<DomainShare>) to parallel domain/count arrays. The
 * observable behaviour must be bit-identical: same per-domain counts
 * after every touch (including the proportional eviction's rounding
 * and sweep phases), same probe results, same used() occupancy, same
 * warm-up costs. ReferenceCensus below re-implements the PR 1
 * algorithm verbatim over a sorted vector of {dom, count} structs;
 * the test drives both through long randomized touch/probe/flush
 * sequences (seeded via sim::Rng, so failures replay) and compares
 * every observable after every operation. Count equality after each
 * step also pins the eviction *order*: a reordered eviction shows up
 * as a different count split on the first step where it diverges.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "hw/uarch.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace hw = cg::hw;
namespace sim = cg::sim;
using sim::DomainId;

namespace {

/** The PR 1 census algorithm, kept as the behavioural reference. */
class ReferenceCensus
{
  public:
    explicit ReferenceCensus(std::size_t capacity) : capacity_(capacity) {}

    void
    touch(DomainId d, std::size_t entries)
    {
        const std::size_t target = std::min(entries, capacity_);
        auto it = find(d);
        if (it == held_.end() || it->dom != d)
            it = held_.insert(it, Share{d, 0});
        if (target <= it->count)
            return;
        const std::size_t grow = target - it->count;
        std::size_t others = used_ - it->count;
        it->count = target;
        used_ += grow;
        if (used_ <= capacity_)
            return;
        const std::size_t total_overflow = used_ - capacity_;
        std::size_t overflow = total_overflow;
        for (auto& s : held_) {
            if (s.dom == d || s.count == 0 || overflow == 0)
                continue;
            std::size_t take = std::min(
                s.count,
                (s.count * total_overflow + others / 2) / others);
            take = std::min(take, overflow);
            s.count -= take;
            used_ -= take;
            overflow -= take;
        }
        for (auto& s : held_) {
            if (overflow == 0)
                break;
            if (s.dom == d || s.count == 0)
                continue;
            const std::size_t take = std::min(s.count, overflow);
            s.count -= take;
            used_ -= take;
            overflow -= take;
        }
    }

    std::size_t
    entriesOf(DomainId d) const
    {
        auto it = find(d);
        return (it == held_.end() || it->dom != d) ? 0 : it->count;
    }

    std::size_t
    foreignEntries(DomainId prober) const
    {
        std::size_t total = 0;
        for (const auto& s : held_) {
            if (s.dom != prober)
                total += s.count;
        }
        return total;
    }

    void
    flushAll()
    {
        held_.clear();
        used_ = 0;
    }

    void
    flushDomain(DomainId d)
    {
        auto it = find(d);
        if (it == held_.end() || it->dom != d)
            return;
        used_ -= it->count;
        held_.erase(it);
    }

    std::size_t used() const { return used_; }

  private:
    struct Share {
        DomainId dom;
        std::size_t count;
    };

    std::vector<Share>::iterator
    find(DomainId d)
    {
        return std::lower_bound(held_.begin(), held_.end(), d,
                                [](const Share& s, DomainId dom) {
                                    return s.dom < dom;
                                });
    }
    std::vector<Share>::const_iterator
    find(DomainId d) const
    {
        return std::lower_bound(held_.begin(), held_.end(), d,
                                [](const Share& s, DomainId dom) {
                                    return s.dom < dom;
                                });
    }

    std::size_t capacity_;
    std::size_t used_ = 0;
    std::vector<Share> held_;
};

constexpr DomainId maxDomain = 11; // spills past the inline capacity of 8

void
expectSame(const hw::TaggedStructure& ts, const ReferenceCensus& ref,
           std::size_t step)
{
    ASSERT_EQ(ts.used(), ref.used()) << "step " << step;
    for (DomainId d = 0; d <= maxDomain; ++d) {
        ASSERT_EQ(ts.entriesOf(d), ref.entriesOf(d))
            << "domain " << d << " at step " << step;
        ASSERT_EQ(ts.foreignEntries(d), ref.foreignEntries(d))
            << "prober " << d << " at step " << step;
    }
}

void
runSequence(std::uint64_t seed, std::size_t capacity, std::size_t steps)
{
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " capacity " << capacity);
    sim::Rng rng(seed);
    hw::TaggedStructure ts("prop", capacity, 10);
    ReferenceCensus ref(capacity);
    for (std::size_t step = 0; step < steps; ++step) {
        const auto d = static_cast<DomainId>(rng.uniformInt(0, maxDomain));
        switch (rng.uniformInt(0, 9)) {
          case 8:
            ts.flushDomain(d);
            ref.flushDomain(d);
            break;
          case 9:
            if (rng.chance(0.2)) {
                ts.flushAll();
                ref.flushAll();
            }
            break;
          default: {
            // Bias toward overflow so the eviction loops run often.
            const auto want = static_cast<std::size_t>(
                rng.uniformInt(1, 2 * capacity));
            ts.touch(d, want);
            ref.touch(d, want);
            break;
          }
        }
        expectSame(ts, ref, step);
    }
}

} // namespace

TEST(UarchSoaProperty, MatchesReferenceCensusSmallCapacity)
{
    // Tiny structure: every touch overflows; eviction dominates.
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        runSequence(seed, 56, 400);
}

TEST(UarchSoaProperty, MatchesReferenceCensusCacheLikeCapacity)
{
    for (std::uint64_t seed = 100; seed <= 104; ++seed)
        runSequence(seed, 1024, 400);
}

TEST(UarchSoaProperty, MatchesReferenceCensusLargeCapacity)
{
    // Rarely overflows: exercises the resident-fast-path and growth.
    for (std::uint64_t seed = 200; seed <= 202; ++seed)
        runSequence(seed, 1 << 16, 300);
}

TEST(UarchSoaProperty, WarmupCostMatchesResidency)
{
    sim::Rng rng(42);
    hw::TaggedStructure ts("warm", 512, 7);
    ReferenceCensus ref(512);
    for (int step = 0; step < 200; ++step) {
        const auto d = static_cast<DomainId>(rng.uniformInt(0, maxDomain));
        const auto want =
            static_cast<std::size_t>(rng.uniformInt(1, 1024));
        ts.touch(d, want);
        ref.touch(d, want);
        for (DomainId p = 0; p <= maxDomain; ++p) {
            const std::size_t fp = 256;
            const std::size_t wantFp = std::min<std::size_t>(fp, 512);
            const std::size_t have = ref.entriesOf(p);
            const cg::sim::Tick expect =
                have >= wantFp ? 0
                               : static_cast<cg::sim::Tick>(
                                     wantFp - have) * 7;
            ASSERT_EQ(ts.warmupCost(p, fp), expect)
                << "prober " << p << " at step " << step;
        }
    }
}
