/** @file Unit tests for tagged microarchitectural structures. */

#include <gtest/gtest.h>

#include "hw/uarch.hh"

using namespace cg::hw;
using cg::sim::DomainId;
using cg::sim::Tick;
using cg::sim::nsec;

namespace {
constexpr DomainId host = cg::sim::hostDomain;
constexpr DomainId vmA = cg::sim::firstVmDomain;
constexpr DomainId vmB = cg::sim::firstVmDomain + 1;
} // namespace

TEST(TaggedStructure, TouchFillsUpToWorkingSet)
{
    TaggedStructure s("t", 1000, 1 * nsec);
    s.touch(vmA, 300);
    EXPECT_EQ(s.entriesOf(vmA), 300u);
    EXPECT_EQ(s.used(), 300u);
    s.touch(vmA, 200); // smaller re-touch keeps resident entries
    EXPECT_EQ(s.entriesOf(vmA), 300u);
}

TEST(TaggedStructure, WorkingSetClampedToCapacity)
{
    TaggedStructure s("t", 100, 1 * nsec);
    s.touch(vmA, 100000);
    EXPECT_EQ(s.entriesOf(vmA), 100u);
    EXPECT_EQ(s.used(), 100u);
}

TEST(TaggedStructure, OverflowEvictsOtherDomains)
{
    TaggedStructure s("t", 100, 1 * nsec);
    s.touch(vmA, 80);
    s.touch(vmB, 60);
    EXPECT_EQ(s.used(), 100u);
    EXPECT_EQ(s.entriesOf(vmB), 60u);
    EXPECT_EQ(s.entriesOf(vmA), 40u); // lost 40 to vmB
}

TEST(TaggedStructure, ProportionalEvictionAcrossVictims)
{
    TaggedStructure s("t", 100, 1 * nsec);
    s.touch(vmA, 50);
    s.touch(vmB, 50);
    s.touch(host, 50); // evict 50 split across vmA and vmB
    EXPECT_EQ(s.entriesOf(host), 50u);
    EXPECT_EQ(s.entriesOf(vmA) + s.entriesOf(vmB), 50u);
    EXPECT_LE(s.used(), 100u);
    // Roughly even split.
    EXPECT_NEAR(static_cast<double>(s.entriesOf(vmA)), 25.0, 2.0);
}

TEST(TaggedStructure, ForeignEntriesVisibleToProber)
{
    TaggedStructure s("t", 1000, 1 * nsec);
    s.touch(vmA, 400);
    s.touch(host, 100);
    EXPECT_EQ(s.foreignEntries(host), 400u);
    EXPECT_EQ(s.foreignEntries(vmA), 100u);
    EXPECT_EQ(s.victimEntries(vmA), 400u);
}

TEST(TaggedStructure, FlushAllClearsEverything)
{
    TaggedStructure s("t", 1000, 1 * nsec);
    s.touch(vmA, 400);
    s.touch(host, 100);
    s.flushAll();
    EXPECT_EQ(s.used(), 0u);
    EXPECT_EQ(s.foreignEntries(host), 0u);
}

TEST(TaggedStructure, FlushDomainIsTargeted)
{
    TaggedStructure s("t", 1000, 1 * nsec);
    s.touch(vmA, 400);
    s.touch(host, 100);
    s.flushDomain(vmA);
    EXPECT_EQ(s.entriesOf(vmA), 0u);
    EXPECT_EQ(s.entriesOf(host), 100u);
    EXPECT_EQ(s.used(), 100u);
}

TEST(TaggedStructure, WarmupCostProportionalToMissingEntries)
{
    TaggedStructure s("t", 1000, 2 * nsec);
    EXPECT_EQ(s.warmupCost(vmA, 500), 1000 * nsec); // all cold
    s.touch(vmA, 500);
    EXPECT_EQ(s.warmupCost(vmA, 500), 0u); // fully warm
    s.touch(host, 800);                    // pollutes vmA
    const Tick cost = s.warmupCost(vmA, 500);
    EXPECT_GT(cost, 0u);
    EXPECT_LE(cost, 1000 * nsec);
}

TEST(TaggedStructure, WarmupCostClampedToCapacity)
{
    TaggedStructure s("t", 100, 1 * nsec);
    EXPECT_EQ(s.warmupCost(vmA, 100000), 100 * nsec);
}

TEST(CoreUarch, MitigationFlushSparesCachesAndTlb)
{
    Costs costs;
    CoreUarch u(costs);
    u.run(vmA, 512);
    EXPECT_GT(u.btb.entriesOf(vmA), 0u);
    EXPECT_GT(u.l1d.entriesOf(vmA), 0u);
    u.mitigationFlush();
    // The firmware flush clears predictors and buffers...
    EXPECT_EQ(u.btb.entriesOf(vmA), 0u);
    EXPECT_EQ(u.storeBuffer.entriesOf(vmA), 0u);
    // ...but residue remains in caches and TLB (the motivating leak).
    EXPECT_GT(u.l1d.entriesOf(vmA), 0u);
    EXPECT_GT(u.tlb.entriesOf(vmA), 0u);
}

TEST(CoreUarch, WarmupGrowsWithPollution)
{
    Costs costs;
    CoreUarch u(costs);
    u.run(vmA, 800);
    const Tick warm = u.warmupCost(vmA, 800);
    EXPECT_EQ(warm, 0u);
    u.run(cg::sim::hostDomain, 900); // host runs, evicting guest state
    const Tick after = u.warmupCost(vmA, 800);
    EXPECT_GT(after, warm);
}

TEST(SharedUarch, HasLlcAndStagingBuffer)
{
    Costs costs;
    SharedUarch s(costs);
    s.llc.touch(vmA, 10000);
    EXPECT_GT(s.llc.entriesOf(vmA), 0u);
    s.stagingBuffer.touch(vmA, 16);
    EXPECT_EQ(s.stagingBuffer.entriesOf(vmA), 16u);
}

// The domain shares moved from std::map to an inline flat vector; make
// sure behaviour holds past the inline capacity (many domains) and that
// eviction accounting stays exact through interleaved flushes.
TEST(TaggedStructure, ManyDomainsSpillPastInlineStorage)
{
    TaggedStructure s("t", 1200, 1 * nsec);
    for (DomainId d = 0; d < 24; ++d)
        s.touch(d, 50); // 24 domains x 50 = capacity
    EXPECT_EQ(s.used(), 1200u);
    for (DomainId d = 0; d < 24; ++d)
        EXPECT_EQ(s.entriesOf(d), 50u);
    EXPECT_EQ(s.foreignEntries(3), 1150u);
    // Flush odd domains and confirm used() tracks.
    for (DomainId d = 1; d < 24; d += 2)
        s.flushDomain(d);
    EXPECT_EQ(s.used(), 600u);
    for (DomainId d = 0; d < 24; ++d)
        EXPECT_EQ(s.entriesOf(d), (d % 2 == 0) ? 50u : 0u);
    // A new domain can still grow, evicting survivors.
    s.touch(100, 1200);
    EXPECT_EQ(s.entriesOf(100), 1200u);
    EXPECT_EQ(s.used(), 1200u);
    EXPECT_EQ(s.foreignEntries(100), 0u);
}

TEST(TaggedStructure, EvictionDeterministicAcrossIdenticalSequences)
{
    auto run_once = [] {
        TaggedStructure s("t", 500, 1 * nsec);
        // Touch in a non-sorted domain order to exercise sorted insert.
        const DomainId order[] = {7, 2, 9, 4, 0, 5, 8, 1, 6, 3};
        for (DomainId d : order)
            s.touch(d, 90);
        std::vector<std::size_t> held;
        for (DomainId d = 0; d < 10; ++d)
            held.push_back(s.entriesOf(d));
        return held;
    };
    EXPECT_EQ(run_once(), run_once());
}
