/** @file Unit tests for the GIC model and list registers. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hw/gic.hh"
#include "sim/simulation.hh"

using namespace cg::hw;
using cg::sim::Simulation;
using cg::sim::Tick;
using cg::sim::usec;

namespace {

struct GicFixture : ::testing::Test {
    Simulation sim;
    Costs costs;
    Gic gic{sim, costs, 4};
};

} // namespace

TEST_F(GicFixture, SgiDeliveredToSinkAfterLatency)
{
    std::vector<IntId> got;
    Tick when = 0;
    gic.setSink(1, [&](IntId id) {
        got.push_back(id);
        when = sim.now();
    });
    gic.sendSgi(1, 8);
    sim.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 8);
    EXPECT_GT(when, 0u);
    EXPECT_LT(when, 2 * usec);
}

TEST_F(GicFixture, InterruptsPendWithoutSinkAndFlushOnInstall)
{
    gic.sendSgi(2, 5);
    gic.sendSgi(2, 6);
    sim.run();
    std::vector<IntId> got;
    gic.setSink(2, [&](IntId id) { got.push_back(id); });
    // Delivery latency is jittered, so arrival order is unspecified.
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<IntId>{5, 6}));
}

TEST_F(GicFixture, ClearSinkPendsSubsequentDeliveries)
{
    std::vector<IntId> got;
    gic.setSink(0, [&](IntId id) { got.push_back(id); });
    gic.clearSink(0);
    gic.raisePpi(0, vtimerPpi);
    sim.run();
    EXPECT_TRUE(got.empty());
    gic.setSink(0, [&](IntId id) { got.push_back(id); });
    EXPECT_EQ(got, (std::vector<IntId>{vtimerPpi}));
}

TEST_F(GicFixture, SpiRoutingAndRetargeting)
{
    EXPECT_EQ(gic.spiRoute(40), 0); // default route
    gic.routeSpi(40, 3);
    EXPECT_EQ(gic.spiRoute(40), 3);
    std::vector<IntId> got;
    gic.setSink(3, [&](IntId id) { got.push_back(id); });
    gic.raiseSpi(40);
    sim.run();
    EXPECT_EQ(got, (std::vector<IntId>{40}));
}

TEST_F(GicFixture, MigrateSpisAwayForHotplug)
{
    gic.routeSpi(33, 2);
    gic.routeSpi(34, 2);
    gic.routeSpi(35, 1);
    gic.migrateSpisAway(2, 0);
    EXPECT_EQ(gic.spiRoute(33), 0);
    EXPECT_EQ(gic.spiRoute(34), 0);
    EXPECT_EQ(gic.spiRoute(35), 1);
}

TEST_F(GicFixture, DeliveredCountAccumulates)
{
    gic.setSink(0, [](IntId) {});
    gic.sendSgi(0, 1);
    gic.sendSgi(0, 2);
    gic.raisePpi(0, ptimerPpi);
    sim.run();
    EXPECT_EQ(gic.delivered(), 3u);
}

TEST(ListRegFile, InjectUsesFreeSlot)
{
    ListRegFile lrs;
    EXPECT_TRUE(lrs.inject(27));
    EXPECT_EQ(lrs.validCount(), 1);
    auto idx = lrs.findVintid(27);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(lrs.reg(*idx).state, ListReg::State::Pending);
}

TEST(ListRegFile, ReinjectOnActiveBecomesPendingActive)
{
    ListRegFile lrs;
    lrs.inject(30);
    auto idx = lrs.findVintid(30);
    ASSERT_TRUE(idx.has_value());
    lrs.reg(*idx).state = ListReg::State::Active; // guest acked it
    EXPECT_TRUE(lrs.inject(30));
    EXPECT_EQ(lrs.reg(*idx).state, ListReg::State::PendingActive);
    EXPECT_EQ(lrs.validCount(), 1); // reused, not duplicated
}

TEST(ListRegFile, FullFileRejectsInjection)
{
    ListRegFile lrs;
    for (int i = 0; i < ListRegFile::numRegs; ++i)
        EXPECT_TRUE(lrs.inject(32 + i));
    EXPECT_FALSE(lrs.findFree().has_value());
    EXPECT_FALSE(lrs.inject(99));
    EXPECT_TRUE(lrs.inject(33)); // existing vintid still fine
}

TEST(ListRegFile, PendingIdsAndClear)
{
    ListRegFile lrs;
    lrs.inject(27);
    lrs.inject(40);
    auto idx = lrs.findVintid(27);
    lrs.reg(*idx).state = ListReg::State::Active;
    EXPECT_EQ(lrs.pendingIds(), (std::vector<IntId>{40}));
    lrs.clearAll();
    EXPECT_EQ(lrs.validCount(), 0);
}
