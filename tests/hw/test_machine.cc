/** @file Unit tests for the machine, cores, worlds, and timers. */

#include <gtest/gtest.h>

#include "hw/machine.hh"
#include "hw/timer.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace cg::hw;
using cg::sim::Simulation;
using cg::sim::Tick;
using cg::sim::msec;
using cg::sim::usec;

TEST(Machine, ConstructsCoresWithNumaNodes)
{
    Simulation sim;
    MachineConfig cfg;
    cfg.numCores = 8;
    cfg.coresPerNumaNode = 4;
    Machine m(sim, cfg);
    EXPECT_EQ(m.numCores(), 8);
    EXPECT_EQ(m.core(0).numaNode(), 0);
    EXPECT_EQ(m.core(3).numaNode(), 0);
    EXPECT_EQ(m.core(4).numaNode(), 1);
    EXPECT_EQ(m.core(7).numaNode(), 1);
}

TEST(Machine, RejectsBadConfig)
{
    Simulation sim;
    MachineConfig cfg;
    cfg.numCores = 0;
    EXPECT_THROW(Machine(sim, cfg), cg::sim::FatalError);
}

TEST(Machine, WorldSwitchChargesBoundaryCrossing)
{
    Simulation sim;
    Machine m(sim, MachineConfig{});
    EXPECT_EQ(m.core(0).world(), World::Normal);
    const Tick to_realm = m.switchWorld(0, World::Realm);
    EXPECT_EQ(m.core(0).world(), World::Realm);
    // Boundary crossing includes the mitigation flush: several us.
    EXPECT_GT(to_realm, 4 * usec);
    // No-op switch costs nothing.
    EXPECT_EQ(m.switchWorld(0, World::Realm), 0u);
}

TEST(Machine, WorldSwitchFlushesMitigatedStructures)
{
    Simulation sim;
    Machine m(sim, MachineConfig{});
    Core& c = m.core(2);
    c.uarch().run(cg::sim::firstVmDomain, 256);
    EXPECT_GT(c.uarch().btb.entriesOf(cg::sim::firstVmDomain), 0u);
    m.switchWorld(2, World::Realm);
    m.switchWorld(2, World::Normal);
    EXPECT_EQ(c.uarch().btb.entriesOf(cg::sim::firstVmDomain), 0u);
    // Caches keep residue across the boundary (the leak).
    EXPECT_GT(c.uarch().l1d.entriesOf(cg::sim::firstVmDomain), 0u);
}

TEST(Machine, CostJitterStaysNearNominal)
{
    Simulation sim;
    Machine m(sim, MachineConfig{});
    double sum = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(m.cost(1000 * usec));
    EXPECT_NEAR(sum / n, static_cast<double>(1000 * usec),
                static_cast<double>(10 * usec));
}

TEST(Timer, FiresAtDeadline)
{
    Simulation sim;
    Tick fired_at = 0;
    Timer t(sim, [&] { fired_at = sim.now(); });
    t.armIn(5 * msec);
    EXPECT_TRUE(t.armed());
    sim.run();
    EXPECT_EQ(fired_at, 5 * msec);
    EXPECT_FALSE(t.armed());
    EXPECT_EQ(t.fireCount(), 1u);
}

TEST(Timer, DisarmPreventsFiring)
{
    Simulation sim;
    bool fired = false;
    Timer t(sim, [&] { fired = true; });
    t.armIn(5 * msec);
    t.disarm();
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Timer, RearmReplacesDeadline)
{
    Simulation sim;
    int count = 0;
    Tick last = 0;
    Timer t(sim, [&] {
        ++count;
        last = sim.now();
    });
    t.armIn(5 * msec);
    t.armIn(2 * msec); // replaces, does not add
    sim.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(last, 2 * msec);
}

TEST(Timer, PastCompareValueFiresImmediately)
{
    Simulation sim;
    sim.queue().schedule(10 * msec, [] {});
    sim.run();
    bool fired = false;
    Timer t(sim, [&] { fired = true; });
    t.arm(1 * msec); // already in the past
    sim.run();
    EXPECT_TRUE(fired);
}

TEST(Timer, PeriodicRearmFromCallback)
{
    Simulation sim;
    int ticks = 0;
    Timer t(sim, [&] { ++ticks; });
    // Re-arm from outside to avoid self-reference issues in this test:
    t.armIn(1 * msec);
    sim.run();
    for (int i = 0; i < 4; ++i) {
        t.armIn(1 * msec);
        sim.run();
    }
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(t.fireCount(), 5u);
}
