/**
 * @file
 * Security tests: the vulnerability catalogue's structure, and the
 * leakage matrix across configurations — invariant I5: a core-gapped
 * attacker observes zero victim residue on per-core structures, while
 * the shared-core configurations leak, and the out-of-scope shared
 * channels (LLC, CrossTalk staging buffer) leak everywhere.
 */

#include <gtest/gtest.h>

#include "attacks/catalog.hh"
#include "attacks/lab.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
using namespace cg::attacks;
using namespace cg::workloads;
using sim::Tick;
using sim::msec;

namespace {

/**
 * Victim and attacker VMs sharing (shared modes) or owning (gapped)
 * cores; the victim runs CPU work, the attacker probes.
 */
LeakReport
runLab(RunMode mode)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = mode;
    Testbed bed(cfg);

    guest::VmConfig vcfg;
    vcfg.footprint = 900;
    VmInstance *victim, *attacker;
    if (isGapped(mode)) {
        // Disjoint dedicated cores, as the monitor enforces.
        victim = &bed.createVm("victim", 3, vcfg);
        attacker = &bed.createVm("attacker", 3, vcfg);
    } else {
        // Cloud co-tenancy with overcommit: two 2-vCPU VMs timeslice
        // over the same two cores, so attacker and victim share them.
        std::vector<sim::CoreId> cores{0, 1};
        host::CpuMask mask;
        for (sim::CoreId c : cores)
            mask.set(c);
        victim = &bed.createVmOn("victim", cores, mask, 2, vcfg);
        attacker = &bed.createVmOn("attacker", cores, mask, 2, vcfg);
    }

    CoreMarkPro::Config wcfg;
    wcfg.duration = 250 * msec;
    CoreMarkPro victim_work(bed, *victim, wcfg);
    victim_work.install();

    AttackLab::Config acfg;
    acfg.duration = 250 * msec;
    AttackLab lab(bed, *attacker, victim->vm->domain(), acfg);
    lab.install();

    bed.spawnStart();
    bed.run(3 * sim::sec);
    return lab.report();
}

} // namespace

TEST(Catalog, HasThePapersTimeline)
{
    const auto& cat = vulnerabilityCatalog();
    EXPECT_GE(cat.size(), 35u);
    // Every year 2018-2024 saw disclosures (the "ceaseless tide").
    for (int year = 2018; year <= 2024; ++year)
        EXPECT_GT(countInYear(year), 0) << year;
}

TEST(Catalog, CrossTalkIsTheCrossCoreException)
{
    const auto not_mitigated = notMitigatedByCoreGapping();
    // Only CrossTalk, NetSpectre (remote), and the (M)WAIT coherence
    // channel evade core gapping — a handful out of 35+.
    EXPECT_LE(not_mitigated.size(), 3u);
    bool crosstalk = false;
    for (const auto& v : not_mitigated)
        crosstalk = crosstalk || v.name == "CrossTalk";
    EXPECT_TRUE(crosstalk);
    // The overwhelming majority is mitigated (paper: "all but one" of
    // the cloud-relevant ones).
    EXPECT_GE(mitigatedByCoreGapping().size(),
              vulnerabilityCatalog().size() - 3);
}

TEST(Catalog, SameCoreVulnsAreAllMitigated)
{
    for (const auto& v : vulnerabilityCatalog()) {
        if (v.scope == Scope::SameCore ||
            v.scope == Scope::SiblingSmt) {
            EXPECT_TRUE(v.mitigatedByCoreGapping) << v.name;
        }
    }
}

TEST(LeakMatrix, SharedCoreLeaksPerCoreState)
{
    LeakReport r = runLab(RunMode::SharedCore);
    // Co-scheduled attacker sees victim residue in caches and TLB.
    EXPECT_TRUE(r.at(Channel::L1d).leaked());
    EXPECT_TRUE(r.at(Channel::Tlb).leaked());
    EXPECT_TRUE(r.anySameCoreLeak());
    // No firmware flushes for normal VMs: predictors leak too.
    EXPECT_TRUE(r.at(Channel::Btb).leaked());
}

TEST(LeakMatrix, SharedCvmFlushesPredictorsButCachesStillLeak)
{
    LeakReport r = runLab(RunMode::SharedCoreCvm);
    // The mitigation flush on world switches clears predictors and
    // store buffers...
    EXPECT_EQ(r.at(Channel::Btb).victimEntriesSeen, 0u);
    EXPECT_EQ(r.at(Channel::StoreBuffer).victimEntriesSeen, 0u);
    // ...but caches and TLBs keep victim residue: the residual leak
    // that motivates core gapping (section 2.1).
    EXPECT_TRUE(r.at(Channel::L1d).leaked());
    EXPECT_TRUE(r.at(Channel::Tlb).leaked());
}

TEST(LeakMatrix, CoreGappingBlocksAllSameCoreChannels)
{
    LeakReport r = runLab(RunMode::CoreGapped);
    // Invariant I5: no victim residue in ANY per-core structure, ever.
    for (Channel c : {Channel::L1d, Channel::L1i, Channel::L2,
                      Channel::Tlb, Channel::Btb,
                      Channel::StoreBuffer}) {
        EXPECT_EQ(r.at(c).victimEntriesSeen, 0u) << channelName(c);
    }
    EXPECT_FALSE(r.anySameCoreLeak());
    EXPECT_GT(r.at(Channel::L1d).probes, 50u); // probes actually ran
}

TEST(LeakMatrix, SharedChannelsLeakInEveryMode)
{
    // The paper scopes LLC and the CrossTalk staging buffer out:
    // core gapping cannot block genuinely shared structures.
    for (RunMode m : {RunMode::SharedCore, RunMode::CoreGapped}) {
        LeakReport r = runLab(m);
        EXPECT_TRUE(r.at(Channel::Llc).leaked()) << runModeName(m);
        EXPECT_TRUE(r.at(Channel::StagingBuffer).leaked())
            << runModeName(m);
    }
}
