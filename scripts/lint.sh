#!/usr/bin/env bash
# The static gate: repo-invariant lint + (when available) clang-tidy.
#
#   1. tools/cg-lint -- stat registration, tracepoint catalog, domain
#      discipline in realm-side code, hot-path container rules and
#      include-guard hygiene (see the tool's docstring).
#   2. clang-tidy over src/ and bench/ with the curated .clang-tidy
#      profile, using build/compile_commands.json. Skipped with a note
#      when clang-tidy or the compilation database is missing -- the
#      reference container ships only gcc, and cg-lint carries the
#      repo-specific rules either way.
#
# Usage: scripts/lint.sh [--no-tidy]
set -euo pipefail

cd "$(dirname "$0")/.."

NO_TIDY=0
for arg in "$@"; do
    case "$arg" in
      --no-tidy) NO_TIDY=1 ;;
      *) echo "usage: scripts/lint.sh [--no-tidy]" >&2; exit 2 ;;
    esac
done

echo "==> cg-lint"
tools/cg-lint

if [ "$NO_TIDY" = 1 ]; then
    echo "==> clang-tidy: skipped (--no-tidy)"
    exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy: not installed, skipping (cg-lint is the" \
         "authoritative repo gate)"
    exit 0
fi

if [ ! -f build/compile_commands.json ]; then
    echo "==> clang-tidy: no build/compile_commands.json; configure" \
         "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first -- skipping"
    exit 0
fi

echo "==> clang-tidy"
# xargs -P parallelises across translation units; any finding fails
# the gate (WarningsAsErrors: '*' in .clang-tidy).
find src bench -name '*.cc' -print0 |
    xargs -0 -n 1 -P "$(nproc)" clang-tidy -p build --quiet

echo "==> lint green"
