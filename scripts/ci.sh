#!/usr/bin/env bash
# The full CI gate, as run before merging a PR:
#
#   1. lint:   tools/cg-lint (+ clang-tidy when installed) -- static
#              repo invariants: stat registration, tracepoint catalog,
#              realm-side domain discipline, hot-path containers,
#              stat-handle caching, include guards
#   2. tier-1: configure + build the primary tree and run every test
#   3. chaos:  re-run the fault-injection suites by name (unit fault
#              plans, full-testbed chaos runs, and the bench smokes
#              that drive fig7 / ext_fault_recovery under a plan) —
#              redundant with step 2 but kept as a separate, fast gate
#              so fault-injection regressions are named in CI output
#   4. check:  the isolation-checker gate --
#                a. fig7 under --check twice; both runs must succeed
#                   and print byte-identical tables (the checker is
#                   pure observation and replays deterministically)
#                b. the must-fire suite: a seeded scrub-skip fault MUST
#                   produce a leak edge, proving the checker can
#                   actually fail a run (a checker that cannot fire is
#                   worse than none)
#   5. perf:   tools/perf-gate -- build Release and compare
#              sim_microbench events/sec against the committed
#              BENCH_PR<N>.json baseline; >10% regression fails. The
#              gate skips itself (warning, exit 0) on non-Release or
#              sanitizer builds, where throughput is meaningless.
#   6. sanitize: rebuild under ASan+UBSan and run the whole suite
#   7. tsan:   rebuild under ThreadSanitizer and run the threaded
#              suites (ParallelRunner sweeps) with scripts/tsan.supp
#
# Usage: scripts/ci.sh [--skip-sanitize] [--skip-tsan] [--skip-perf]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
SKIP_TSAN=0
SKIP_PERF=0
for arg in "$@"; do
    case "$arg" in
      --skip-sanitize) SKIP_SANITIZE=1 ;;
      --skip-tsan) SKIP_TSAN=1 ;;
      --skip-perf) SKIP_PERF=1 ;;
      *)
        echo "usage: scripts/ci.sh [--skip-sanitize] [--skip-tsan]" \
             "[--skip-perf]" >&2
        exit 2
        ;;
    esac
done

echo "==> [1/7] lint (cg-lint + clang-tidy when available)"
scripts/lint.sh

echo "==> [2/7] tier-1 build + test"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [3/7] chaos gate (fault injection + recovery)"
ctest --test-dir build --output-on-failure -R '[Cc]haos|FaultPlan'
echo "  --> serving-path open-loop smoke (redundant with step 2, but"
echo "      named so a serving-path regression is visible in CI output)"
ctest --test-dir build --output-on-failure -R 'bench_openloop'
echo "  --> churn soak smoke: short deterministic create/migrate/"
echo "      hotplug/destroy soak, all fault sites armed, checker on;"
echo "      run twice and diffed (bit-identical replay is the gate)"
ctest --test-dir build --output-on-failure -R 'bench_soak_smoke'
build/bench/ext_soak_churn --quick --check > build/soak_replay_a.txt
build/bench/ext_soak_churn --quick --check > build/soak_replay_b.txt
diff build/soak_replay_a.txt build/soak_replay_b.txt

echo "==> [4/7] isolation-checker gate"
echo "  --> --check smoke + replay determinism (fig7)"
build/bench/fig7_multi_vm --check > build/check_fig7_a.txt
build/bench/fig7_multi_vm --check > build/check_fig7_b.txt
diff build/check_fig7_a.txt build/check_fig7_b.txt
echo "  --> must-fire: seeded scrub-skip fault raises a leak edge"
ctest --test-dir build --output-on-failure -R 'CheckMustFire'

if [ "$SKIP_PERF" = 1 ]; then
    echo "==> [5/7] perf gate: skipped (--skip-perf)"
else
    echo "==> [5/7] perf gate (sim_microbench vs committed baseline)"
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$(nproc)"
    tools/perf-gate --build-dir build-release
fi

if [ "$SKIP_SANITIZE" = 1 ]; then
    echo "==> [6/7] sanitize: skipped (--skip-sanitize)"
else
    echo "==> [6/7] sanitize build + test"
    scripts/sanitize.sh
fi

if [ "$SKIP_TSAN" = 1 ]; then
    echo "==> [7/7] tsan: skipped (--skip-tsan)"
else
    echo "==> [7/7] tsan build + threaded suites"
    scripts/sanitize.sh --tsan -R 'Parallel|Sweep|Request'
fi

echo "==> CI green"
