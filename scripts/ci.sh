#!/usr/bin/env bash
# The full CI gate, as run before merging a PR:
#
#   1. tier-1: configure + build the primary tree and run every test
#   2. chaos:  re-run the fault-injection suites by name (unit fault
#              plans, full-testbed chaos runs, and the bench smokes
#              that drive fig7 / ext_fault_recovery under a plan) —
#              redundant with step 1 but kept as a separate, fast gate
#              so fault-injection regressions are named in CI output
#   3. sanitize: rebuild under ASan+UBSan and run the whole suite
#
# Usage: scripts/ci.sh [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
for arg in "$@"; do
    case "$arg" in
      --skip-sanitize) SKIP_SANITIZE=1 ;;
      *) echo "usage: scripts/ci.sh [--skip-sanitize]" >&2; exit 2 ;;
    esac
done

echo "==> [1/3] tier-1 build + test"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [2/3] chaos gate (fault injection + recovery)"
ctest --test-dir build --output-on-failure -R '[Cc]haos|FaultPlan'

if [ "$SKIP_SANITIZE" = 1 ]; then
    echo "==> [3/3] sanitize: skipped (--skip-sanitize)"
else
    echo "==> [3/3] sanitize build + test"
    scripts/sanitize.sh
fi

echo "==> CI green"
