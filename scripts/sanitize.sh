#!/usr/bin/env bash
# Build and run the full test suite under a sanitizer.
#
# Usage: scripts/sanitize.sh [--tsan | sanitizers] [extra ctest args...]
#   default            AddressSanitizer + UBSan in build-sanitize/
#   --tsan             ThreadSanitizer in build-tsan/ with the curated
#                      suppressions file (scripts/tsan.supp). The only
#                      threaded code is sim::ParallelRunner fanning out
#                      independent Simulations, so this leg pins down
#                      the sweep harness and the request singletons.
#   <sanitizers>       any CG_SANITIZE value, e.g. "address,undefined"
#
# Each instrumented tree lives in its own build dir so it never
# disturbs the primary build/ directory. Exits non-zero on any
# sanitizer report (-fno-sanitize-recover=all) or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="address,undefined"
BUILD_DIR="build-sanitize"
if [ $# -gt 0 ]; then
    case "$1" in
      --tsan)
        SANITIZERS="thread"
        BUILD_DIR="build-tsan"
        shift
        ;;
      --*)
        echo "usage: scripts/sanitize.sh [--tsan | sanitizers]" \
             "[ctest args...]" >&2
        exit 2
        ;;
      *)
        SANITIZERS="$1"
        shift
        ;;
    esac
fi

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCG_SANITIZE="$SANITIZERS"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# detect_leaks needs ptrace; fall back gracefully inside containers.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
if [ "$SANITIZERS" = "thread" ]; then
    export TSAN_OPTIONS="${TSAN_OPTIONS:-suppressions=$(pwd)/scripts/tsan.supp history_size=7}"
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
