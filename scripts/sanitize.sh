#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer + UBSan.
#
# Usage: scripts/sanitize.sh [sanitizers] [extra ctest args...]
#   sanitizers defaults to "address,undefined" (CG_SANITIZE syntax).
#
# The instrumented tree lives in build-sanitize/ so it never disturbs
# the primary build/ directory. Exits non-zero on any sanitizer report
# (-fno-sanitize-recover=all) or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address,undefined}"
shift $(( $# > 0 ? 1 : 0 ))

BUILD_DIR="build-sanitize"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCG_SANITIZE="$SANITIZERS"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# detect_leaks needs ptrace; fall back gracefully inside containers.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
