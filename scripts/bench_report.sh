#!/usr/bin/env bash
# Build the Release tree, run every table/figure benchmark with
# --json plus the DES-kernel microbenchmarks, and merge the reports
# into one BENCH_PR<N>.json at the repo root (a flat JSON array of
# {bench, metric, paper, measured, baseline} rows) so successive PRs
# can track the perf trajectory mechanically.
#
# Tracked alongside the 13 paper metrics:
#   - sim_microbench events/sec (one row per microbenchmark), the raw
#     DES-kernel throughput that bounds every sweep's wall-clock;
#   - fig7_multi_vm wall-clock seconds (the heaviest paper bench:
#     15 VMs), the end-to-end number a perf regression actually costs;
#   - table5_redis's open-loop serving-path sweep: p50/p99/p999 per
#     offered-load point, each mode's p999-SLO knee, and the IPU
#     backend's data-path exit count (must stay 0);
#   - ext_soak_churn's 2-sim-hour fault-armed churn soak:
#     soak.migrations, soak.rollbacks, soak.ops, soak.quarantined and
#     soak.leakEdges (which must stay 0).
#
# The previous BENCH_PR<M>.json (highest M < N in the repo root) is
# carried forward as each row's "baseline" and the per-metric deltas
# are printed, so the trajectory is visible at a glance. The committed
# file is also what scripts/ci.sh's perf stage gates against (see
# tools/perf-gate).
#
# Usage: scripts/bench_report.sh <pr-number> [build-dir]
#   e.g. scripts/bench_report.sh 6        -> BENCH_PR6.json
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: $0 <pr-number> [build-dir]" >&2
    exit 2
fi
PR="$1"
BUILD_DIR="${2:-build-release}"
OUT="BENCH_PR${PR}.json"
REPORT_DIR="$BUILD_DIR/bench-reports"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$REPORT_DIR"

BENCHES=(
    table2_rmm_call_latency
    table3_vipi_latency
    table4_exit_counts
    table5_redis
    fig6_coremark_scaling
    fig7_multi_vm
    fig8_netpipe
    fig9_iozone
    fig10_kernel_build
    ext_soak_churn
)

for bench in "${BENCHES[@]}"; do
    echo "== $bench"
    start=$(date +%s.%N)
    "$BUILD_DIR/bench/$bench" --json "$REPORT_DIR/$bench.json"
    end=$(date +%s.%N)
    if [[ $bench == fig7_multi_vm ]]; then
        echo "$start $end" > "$REPORT_DIR/fig7_wallclock.txt"
    fi
done

echo "== sim_microbench"
# Three repetitions, best rate kept per benchmark (below): single runs
# on a shared box reliably catch one benchmark or another cold, which
# would commit a soft baseline for tools/perf-gate (itself best-of-N
# on the measuring side, so best-of on both sides is symmetric).
"$BUILD_DIR/bench/sim_microbench" --benchmark_format=json \
    --benchmark_min_time=0.2 --benchmark_repetitions=3 \
    > "$REPORT_DIR/sim_microbench.json" 2> /dev/null

# Merge the paper-bench rows, the kernel-throughput rows, and the
# fig7 wall-clock row into one array, attaching the prior report's
# measurements as each row's baseline.
python3 - "$PR" "$OUT" "$REPORT_DIR" "${BENCHES[@]}" <<'EOF'
import glob, json, re, sys

pr, out, report_dir = sys.argv[1], sys.argv[2], sys.argv[3]
benches = sys.argv[4:]

rows = []
for bench in benches:
    with open(f"{report_dir}/{bench}.json") as f:
        rows.extend(json.load(f))

with open(f"{report_dir}/sim_microbench.json") as f:
    micro = json.load(f)
best = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    ips = b.get("items_per_second")
    if ips is None:
        continue
    name = b.get("run_name", b["name"])
    best[name] = max(best.get(name, 0.0), ips)
for name, ips in best.items():
    rows.append({"bench": "sim_microbench",
                 "metric": f"{name} events/sec",
                 "paper": 0, "measured": round(ips, 1)})

with open(f"{report_dir}/fig7_wallclock.txt") as f:
    start, end = map(float, f.read().split())
rows.append({"bench": "fig7_multi_vm", "metric": "wall-clock sec",
             "paper": 0, "measured": round(end - start, 3)})

# Baseline: the highest-numbered earlier BENCH_PR<M>.json.
baseline, base_name = {}, None
nums = sorted(int(m.group(1))
              for p in glob.glob("BENCH_PR*.json")
              if (m := re.fullmatch(r"BENCH_PR(\d+)\.json", p))
              and int(m.group(1)) < int(pr))
if nums:
    base_name = f"BENCH_PR{nums[-1]}.json"
    with open(base_name) as f:
        for r in json.load(f):
            baseline[(r["bench"], r["metric"])] = r["measured"]

for r in rows:
    r["baseline"] = baseline.get((r["bench"], r["metric"]))

with open(out, "w") as f:
    f.write("[\n")
    f.write(",\n".join("  " + json.dumps(r) for r in rows))
    f.write("\n]\n")

print(f"wrote {out} ({len(rows)} rows)")
if base_name:
    print(f"\ndeltas vs {base_name}:")
    for r in rows:
        b = r["baseline"]
        if b is None:
            print(f"  {r['bench']}/{r['metric']:<42} "
                  f"{r['measured']:>12} (new)")
        elif b:
            pct = 100.0 * (r["measured"] - b) / b
            print(f"  {r['bench']}/{r['metric']:<42} "
                  f"{b:>12} -> {r['measured']:>12} ({pct:+.1f}%)")
EOF
