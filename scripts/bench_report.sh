#!/usr/bin/env bash
# Build the Release tree, run every table/figure benchmark with
# --json, and merge the per-bench reports into one BENCH_PR<N>.json
# at the repo root (a flat JSON array of
# {bench, metric, paper, measured} rows) so successive PRs can track
# the perf trajectory mechanically.
#
# Usage: scripts/bench_report.sh <pr-number> [build-dir]
#   e.g. scripts/bench_report.sh 2        -> BENCH_PR2.json
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: $0 <pr-number> [build-dir]" >&2
    exit 2
fi
PR="$1"
BUILD_DIR="${2:-build-release}"
OUT="BENCH_PR${PR}.json"
REPORT_DIR="$BUILD_DIR/bench-reports"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$REPORT_DIR"

BENCHES=(
    table2_rmm_call_latency
    table3_vipi_latency
    table4_exit_counts
    table5_redis
    fig6_coremark_scaling
    fig7_multi_vm
    fig8_netpipe
    fig9_iozone
    fig10_kernel_build
)

for bench in "${BENCHES[@]}"; do
    echo "== $bench"
    "$BUILD_DIR/bench/$bench" --json "$REPORT_DIR/$bench.json"
done

# Merge the per-bench JSON arrays into one array. The files are our
# own writeJsonReport() output ("[", rows, "]"), so stripping the
# brackets line-wise and re-joining with commas is exact.
{
    echo "["
    first=1
    for bench in "${BENCHES[@]}"; do
        f="$REPORT_DIR/$bench.json"
        [[ -s $f ]] || continue
        # Interior lines only; ensure the previous bench's last row
        # gets a trailing comma.
        rows=$(sed '1d;$d' "$f")
        [[ -n $rows ]] || continue
        if [[ $first -eq 0 ]]; then
            echo ","
        fi
        first=0
        # The last row of each file has no trailing comma; keep as is.
        printf '%s' "$rows"
        echo
    done
    echo "]"
} > "$OUT"

echo "wrote $OUT ($(grep -c '"metric"' "$OUT") rows)"
