/**
 * @file
 * Extension: long-haul churn soak for the realm-migration control
 * plane. A single testbed runs hours of *simulated* create / run /
 * migrate / hotplug / destroy churn with every fault site armed at a
 * nonzero rate, the isolation checker watching, and scrub
 * verification on — and asserts, at every checkpoint:
 *
 *   - zero leak edges (the dirty-handback oracle stays silent);
 *   - exact CorePlanner accounting: reserved cores equal the live
 *     VMs' pools plus quarantined (lost) cores, nothing leaks;
 *   - online-core conservation: every core is online unless dedicated
 *     to a live realm or quarantined;
 *   - migration bookkeeping in lockstep: the RMM's started count
 *     equals committed + aborted, and the controllers' outcome tally
 *     equals the ops issued;
 *   - bounded stat drift: checker events per op stay under a fixed
 *     ceiling (a runaway feedback loop would blow it).
 *
 * The whole run is deterministic in (seed, plan): stdout carries only
 * simulated time and counters, so two same-seed runs diff clean —
 * scripts/ci.sh replays the smoke mode twice and compares.
 *
 *   --sim-hours <h>   simulated soak length (default 2.0)
 *   --ops <n>         stop after n churn ops instead (0 = by time)
 *   --seed <n>        soak RNG / testbed seed
 *   --quick           ~60 simulated seconds (the ctest smoke mode)
 *
 * plus the common harness flags (bench/common.hh). Without --faults /
 * --check the soak arms its own all-site plan and checker.
 */

#include <algorithm>
#include <cinttypes>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/migration.hh"
#include "core/planner.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
namespace check = cg::check;
using namespace cg::workloads;
using cg::core::CorePlanner;
using cg::core::MigrateResult;
using cg::core::MigrationController;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

/** Every site armed at a nonzero rate (acceptance criterion). The
 * disruptive ones are rate-limited, not disabled: monitor-hang is
 * capped because each hang costs a terminate() escalation. */
constexpr const char* kDefaultPlan =
    "ipi-drop:p=0.002:max=0;"
    "ipi-delay:p=0.002:param=10us:max=0;"
    "doorbell-lost:p=0.002:max=0;"
    "syncrpc-stall:p=0.002:max=0;"
    "monitor-hang:p=0.0005:max=3;"
    "hotplug-offline-fail:p=0.02:max=0;"
    "hotplug-online-fail:p=0.02:max=0;"
    "rmi-transient-error:p=0.005:max=0;"
    "scrub-skip:p=0.05:max=0;"
    "virtio-lost-kick:p=0.005:max=0;"
    "migration-abort:p=0.05:max=0;"
    "rtt-copy-stall:p=0.05:max=0";

constexpr int kNumCores = 16;
constexpr int kHostCores = 2;
constexpr int kCoresPerVm = 2;
constexpr int kMaxLive = 4;
constexpr Tick kOpGap = 2 * sim::sec;
constexpr Tick kOpDeadline = 30 * sim::sec;
constexpr int kCheckpointEvery = 16;
/** Drift ceiling: checker events per churn op (loose; a feedback
 * loop — e.g. a retry storm — would exceed it by orders). */
constexpr double kMaxCheckerEventsPerOp = 2e6;

/** The churn guest: rounds of page faults + compute, then shutdown,
 * so both the teardown path (clean guests) and the terminate path
 * (guests still running, or a hung monitor) see traffic. */
Proc<void>
churnWorker(Testbed& bed, guest::VCpu& v, int idx, int rounds,
            std::uint64_t& completed)
{
    co_await bed.started().wait();
    for (int r = 0; r < rounds; ++r) {
        co_await v.pageFault(0x60000000ull +
                             (static_cast<std::uint64_t>(idx) * 1024 +
                              static_cast<std::uint64_t>(r) % 512) *
                                 4096);
        co_await sim::Compute{2 * msec};
        ++completed;
    }
    co_await v.shutdown();
}

struct Slot {
    VmInstance* inst = nullptr;
    std::unique_ptr<MigrationController> ctrl;
    std::vector<std::uint64_t> rounds;
    std::uint64_t lostSeen = 0; ///< coresLost() already accounted
    int id = 0;
};

Proc<void>
startSlot(cg::core::GappedVm& g, int& out)
{
    out = (co_await g.start()) ? 1 : -1;
}

Proc<void>
migrateSlot(MigrationController& c, std::vector<sim::CoreId> dest,
            MigrateResult& res, bool& done)
{
    if (dest.empty())
        res = co_await c.migrate();
    else
        res = co_await c.migrateTo(std::move(dest));
    done = true;
}

Proc<void>
teardownSlot(cg::core::GappedVm& g, bool& done)
{
    co_await g.teardown();
    done = true;
}

Proc<void>
terminateSlot(cg::core::GappedVm& g, bool& done)
{
    co_await g.terminate();
    done = true;
}

Proc<void>
hotplugRoundTrip(host::Kernel& k, sim::CoreId c, bool& done)
{
    bool off = co_await k.offlineCore(c);
    if (!off)
        off = co_await k.offlineCore(c);
    if (off) {
        while (!co_await k.onlineCore(c)) {
        }
    }
    done = true;
}

struct Tally {
    std::uint64_t ops = 0;
    std::uint64_t creates = 0;
    std::uint64_t createRefused = 0;
    std::uint64_t startFailures = 0;
    std::uint64_t migrateOps = 0;
    std::uint64_t committed = 0;
    std::uint64_t rolledBack = 0;
    std::uint64_t refused = 0;
    std::uint64_t hotplugs = 0;
    std::uint64_t destroys = 0;
    std::uint64_t terminates = 0;
    std::uint64_t workerRounds = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t failures = 0; ///< invariant violations
};

} // namespace

int
main(int argc, char** argv)
{
    double sim_hours = 2.0;
    std::uint64_t max_ops = 0;
    std::uint64_t seed = 0x50a7c4;
    // Pre-filter the soak-specific flags; everything else (including
    // --quick) goes to the common harness.
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sim-hours") == 0 && i + 1 < argc)
            sim_hours = std::strtod(argv[++i], nullptr);
        else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc)
            max_ops = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else
            rest.push_back(argv[i]);
    }
    cg::bench::initHarness(static_cast<int>(rest.size()), rest.data());

    const Tick soak_end = cg::bench::quick()
                              ? 60 * sim::sec
                              : static_cast<Tick>(sim_hours * 3600.0) *
                                    sim::sec;
    cg::bench::banner(
        "Extension: churn soak — create/run/migrate/hotplug/destroy "
        "under fault injection",
        "robustness extension (no paper counterpart)");
    std::printf("  seed %" PRIu64 ", horizon %.3f sim hours%s\n", seed,
                static_cast<double>(soak_end) /
                    static_cast<double>(3600 * sim::sec),
                cg::bench::quick() ? " (--quick)" : "");

    Testbed::Config cfg;
    cfg.numCores = kNumCores;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = seed;
    cfg.verifyScrubs = true; // fault-armed soak must run leak-free
    Testbed bed(cfg);

    std::unique_ptr<check::IsolationChecker> own_checker;
    check::IsolationChecker* checker = bed.checker();
    if (!checker) {
        own_checker = std::make_unique<check::IsolationChecker>(
            bed.sim().queue());
        bed.machine().attachChecker(own_checker.get());
        checker = own_checker.get();
    }
    if (!sim::FaultPlanRequest::requested()) {
        bed.sim().faults().arm(seed ^ 0x9e3779b97f4a7c15ull,
                               sim::FaultPlan::parse(kDefaultPlan));
    }

    CorePlanner planner(bed.machine(), host::CpuMask::firstN(kHostCores));
    bed.spawnStart(); // no VMs yet: opens started() for the workers

    std::mt19937_64 rng(seed);
    std::vector<std::unique_ptr<Slot>> live;
    Tally t;
    int next_id = 0;
    std::uint64_t last_ckpt_events = 0;
    std::uint64_t last_ckpt_ops = 0;

    auto fail = [&t](const char* what) {
        std::fprintf(stderr, "soak: INVARIANT VIOLATED: %s\n", what);
        ++t.failures;
    };

    /** Pick up newly quarantined cores on a slot since last look. */
    auto harvest_lost = [&t](Slot& s) {
        const std::uint64_t lost = s.inst->gapped->coresLost();
        t.quarantined += lost - s.lostSeen;
        s.lostSeen = lost;
    };

    auto checkpoint = [&]() {
        const std::uint64_t edges = checker->edgeTotal();
        if (edges != 0)
            fail("leak edges != 0");
        const int expect_reserved =
            static_cast<int>(live.size()) * kCoresPerVm +
            static_cast<int>(t.quarantined);
        if (planner.reservedCores() != expect_reserved)
            fail("planner reservation drift");
        const int expect_online =
            kNumCores - static_cast<int>(live.size()) * kCoresPerVm -
            static_cast<int>(t.quarantined);
        if (bed.kernel().onlineCount() != expect_online)
            fail("online-core conservation drift");
        const auto& rs = bed.rmm().stats();
        if (rs.migrationsStarted.value() !=
            rs.migrationsCommitted.value() +
                rs.migrationsAborted.value())
            fail("migration phase accounting drift");
        std::uint64_t outcomes = t.committed + t.rolledBack + t.refused;
        if (outcomes != t.migrateOps)
            fail("migration outcome tally drift");
        const std::uint64_t ev = checker->eventCount();
        if (t.ops > last_ckpt_ops) {
            const double per_op =
                static_cast<double>(ev - last_ckpt_events) /
                static_cast<double>(t.ops - last_ckpt_ops);
            if (per_op > kMaxCheckerEventsPerOp)
                fail("checker events per op above drift ceiling");
        }
        last_ckpt_events = ev;
        last_ckpt_ops = t.ops;
        std::printf("  ckpt t=%12.3fs ops=%6" PRIu64 " live=%zu "
                    "mig=%" PRIu64 "/%" PRIu64 "/%" PRIu64
                    " edges=%" PRIu64 " reserved=%d quarantined=%"
                    PRIu64 " rounds=%" PRIu64 "\n",
                    sim::toSec(bed.sim().now()), t.ops, live.size(),
                    t.committed, t.rolledBack, t.refused, edges,
                    planner.reservedCores(), t.quarantined,
                    t.workerRounds);
    };

    auto op_create = [&]() {
        if (live.size() >= kMaxLive) {
            ++t.createRefused;
            return;
        }
        auto cores = planner.reserve(kCoresPerVm);
        if (!cores) {
            ++t.createRefused;
            return;
        }
        auto slot = std::make_unique<Slot>();
        slot->id = next_id++;
        const host::CpuMask hmask =
            host::CpuMask::single(slot->id % kHostCores);
        guest::VmConfig vcfg;
        vcfg.tickPeriod = 0; // sparse guests: the soak is control-plane
        slot->inst = &bed.createVmOn("churn" + std::to_string(slot->id),
                                     *cores, hmask, kCoresPerVm, vcfg,
                                     &planner);
        slot->rounds.assign(kCoresPerVm, 0);
        const int rounds = 6 + static_cast<int>(rng() % 18);
        for (int i = 0; i < kCoresPerVm; ++i) {
            slot->inst->vcpu(i).startGuest(
                "w", churnWorker(bed, slot->inst->vcpu(i), i, rounds,
                                 slot->rounds[static_cast<size_t>(i)]));
        }
        int started = 0;
        bed.sim().spawn("churn-start",
                        startSlot(*slot->inst->gapped, started));
        const Tick limit = bed.sim().now() + kOpDeadline;
        while (started == 0 && bed.sim().now() < limit)
            bed.run(bed.sim().now() + 50 * msec);
        if (started != 1) {
            // Rolled back (or wedged, which fail()s the run): the
            // runner already released its reservations, minus any
            // core the double hotplug failure quarantined.
            if (started == 0)
                fail("VM start wedged");
            ++t.startFailures;
            harvest_lost(*slot);
            bed.destroyVm(*slot->inst);
            return;
        }
        slot->ctrl = std::make_unique<MigrationController>(
            *slot->inst->gapped, nullptr);
        live.push_back(std::move(slot));
        ++t.creates;
    };

    auto op_migrate = [&]() {
        if (live.empty())
            return;
        Slot& s = *live[rng() % live.size()];
        // Half defrag-policy moves, half explicit moves to a fresh
        // pool (released right back so the controller can take it).
        std::vector<sim::CoreId> dest;
        if (rng() % 2 == 0) {
            auto fresh = planner.reserve(kCoresPerVm);
            if (fresh) {
                planner.release(*fresh);
                dest = *fresh;
            }
        }
        MigrateResult res = MigrateResult::Refused;
        bool done = false;
        bed.sim().spawn("churn-migrate",
                        migrateSlot(*s.ctrl, dest, res, done));
        const Tick limit = bed.sim().now() + kOpDeadline;
        while (!done && bed.sim().now() < limit)
            bed.run(bed.sim().now() + 50 * msec);
        if (!done) {
            fail("migration wedged past its deadline");
            return;
        }
        ++t.migrateOps;
        switch (res) {
          case MigrateResult::Committed:
            ++t.committed;
            break;
          case MigrateResult::RolledBack:
            ++t.rolledBack;
            break;
          case MigrateResult::Refused:
            ++t.refused;
            break;
        }
        harvest_lost(s);
    };

    auto op_hotplug = [&]() {
        auto core = planner.reserve(1);
        if (!core)
            return;
        bool done = false;
        bed.sim().spawn("churn-hotplug",
                        hotplugRoundTrip(bed.kernel(), (*core)[0],
                                         done));
        const Tick limit = bed.sim().now() + kOpDeadline;
        while (!done && bed.sim().now() < limit)
            bed.run(bed.sim().now() + 50 * msec);
        if (!done)
            fail("hotplug round trip wedged");
        planner.release(*core);
        ++t.hotplugs;
    };

    auto op_destroy = [&]() {
        if (live.empty())
            return;
        const std::size_t idx = rng() % live.size();
        Slot& s = *live[idx];
        // Clean guests tear down; running (or monitor-hung) ones are
        // terminated — and a fifth of the clean ones too, to keep the
        // escalation path hot.
        const bool clean = s.inst->kvm->shutdownGate().isOpen();
        const bool use_teardown = clean && rng() % 5 != 0;
        bool done = false;
        if (use_teardown) {
            bed.sim().spawn("churn-teardown",
                            teardownSlot(*s.inst->gapped, done));
        } else {
            ++t.terminates;
            bed.sim().spawn("churn-terminate",
                            terminateSlot(*s.inst->gapped, done));
        }
        const Tick limit = bed.sim().now() + kOpDeadline;
        while (!done && bed.sim().now() < limit)
            bed.run(bed.sim().now() + 50 * msec);
        if (!done) {
            fail("destroy wedged past its deadline");
            return;
        }
        harvest_lost(s);
        for (std::uint64_t r : s.rounds)
            t.workerRounds += r;
        bed.destroyVm(*s.inst);
        live.erase(live.begin() +
                   static_cast<std::ptrdiff_t>(idx));
        ++t.destroys;
    };

    while (bed.sim().now() < soak_end &&
           (max_ops == 0 || t.ops < max_ops)) {
        const std::uint64_t dice = rng() % 100;
        if (dice < 30)
            op_create();
        else if (dice < 55)
            op_migrate();
        else if (dice < 70)
            op_hotplug();
        else
            op_destroy();
        ++t.ops;
        bed.run(bed.sim().now() + kOpGap);
        if (t.ops % kCheckpointEvery == 0)
            checkpoint();
    }

    // Drain: destroy every remaining realm, then the books must be
    // exactly empty — only quarantined cores stay reserved.
    while (!live.empty())
        op_destroy();
    checkpoint();
    if (planner.reservedCores() != static_cast<int>(t.quarantined))
        fail("cores leaked after full drain");

    const sim::FaultPlan& faults = bed.sim().faults();
    std::printf("\n  soak summary\n");
    std::printf("    sim time          %12.3f s\n",
                sim::toSec(bed.sim().now()));
    std::printf("    churn ops         %8" PRIu64
                "  (create %" PRIu64 ", migrate %" PRIu64
                ", hotplug %" PRIu64 ", destroy %" PRIu64 ")\n",
                t.ops, t.creates, t.migrateOps, t.hotplugs, t.destroys);
    std::printf("    migrations        %8" PRIu64 " committed, %"
                PRIu64 " rolled back, %" PRIu64 " refused\n",
                t.committed, t.rolledBack, t.refused);
    std::printf("    terminates        %8" PRIu64
                "  start failures %" PRIu64 "\n",
                t.terminates, t.startFailures);
    std::printf("    worker rounds     %8" PRIu64 "\n", t.workerRounds);
    std::printf("    faults injected   %8" PRIu64 "\n",
                faults.injectedTotal());
    std::printf("    quarantined cores %8" PRIu64 "\n", t.quarantined);
    std::printf("    leak edges        %8" PRIu64 "\n",
                checker->edgeTotal());
    std::printf("    invariant fails   %8" PRIu64 "\n", t.failures);

    cg::bench::jsonRow("soak.migrations", 0.0,
                       static_cast<double>(t.committed));
    cg::bench::jsonRow("soak.leakEdges", 0.0,
                       static_cast<double>(checker->edgeTotal()));
    cg::bench::jsonRow("soak.ops", 0.0, static_cast<double>(t.ops));
    cg::bench::jsonRow("soak.rollbacks", 0.0,
                       static_cast<double>(t.rolledBack));
    cg::bench::jsonRow("soak.quarantined", 0.0,
                       static_cast<double>(t.quarantined));
    cg::bench::jsonRow("soak.simHours", 0.0,
                       sim::toSec(bed.sim().now()) / 3600.0);
    cg::bench::sectionEnd();

    if (own_checker)
        bed.machine().attachChecker(nullptr);
    if (t.failures != 0 || checker->edgeTotal() != 0) {
        std::fprintf(stderr, "ext_soak_churn: FAILED (%" PRIu64
                             " invariant violations)\n",
                     t.failures);
        return 1;
    }
    return 0;
}
