/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel itself
 * (wall-clock performance of the event queue, coroutine processes, and
 * a full testbed boot). These bound how long the table/figure
 * harnesses take, and catch regressions in the simulator's hot paths.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "hw/uarch.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
using namespace cg::workloads;

namespace {

void
eventQueueChurn(benchmark::State& state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i) {
            q.schedule(static_cast<sim::Tick>(i) * sim::nsec,
                       [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(eventQueueChurn)->Arg(1000)->Arg(100000);

/** Schedule + cancel half the events: exercises the O(1) invalidation
 * path and the stale-entry skipping on pop. */
void
eventQueueCancelChurn(benchmark::State& state)
{
    std::vector<sim::EventId> ids(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i) {
            ids[static_cast<std::size_t>(i)] =
                q.schedule(static_cast<sim::Tick>(i) * sim::nsec,
                           [&sink] { ++sink; });
        }
        for (int i = 0; i < state.range(0); i += 2)
            q.cancel(ids[static_cast<std::size_t>(i)]);
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(eventQueueCancelChurn)->Arg(100000);

/** Out-of-order scheduling: every push lands before the newest pending
 * entry, forcing the heap path instead of the sorted-run append. */
void
eventQueueReverseChurn(benchmark::State& state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = state.range(0); i > 0; --i) {
            q.schedule(static_cast<sim::Tick>(i) * sim::nsec,
                       [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(eventQueueReverseChurn)->Arg(100000);

/** The six per-core structure touches CoreUarch::run() performs on
 * every scheduling quantum, alternating domains as context switches
 * do. */
void
taggedStructureTouch(benchmark::State& state)
{
    cg::hw::Costs costs;
    cg::hw::CoreUarch core(costs);
    sim::DomainId d = sim::firstVmDomain;
    for (auto _ : state) {
        core.run(d, 4096);
        benchmark::DoNotOptimize(core.l1d.used());
        d = d == sim::firstVmDomain ? sim::hostDomain
                                    : sim::firstVmDomain;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(taggedStructureTouch);

sim::Proc<void>
pingPong(sim::Channel<int>& a, sim::Channel<int>& b, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        a.send(i);
        (void)co_await b.recv();
    }
}

sim::Proc<void>
echo(sim::Channel<int>& a, sim::Channel<int>& b, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        int v = co_await a.recv();
        b.send(v);
    }
}

void
coroutineChannelPingPong(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation s;
        sim::Channel<int> a, b;
        s.spawn("ping", pingPong(a, b, static_cast<int>(state.range(0))));
        s.spawn("pong", echo(a, b, static_cast<int>(state.range(0))));
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(coroutineChannelPingPong)->Arg(10000);

std::uint64_t
bootOnce(RunMode mode, std::uint64_t seed)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = mode;
    cfg.seed = seed;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("boot", 16);
    CoreMarkPro::Config wcfg;
    wcfg.duration = 50 * sim::msec;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    bed.spawnStart();
    bed.run(2 * sim::sec);
    return cm.result().iterations;
}

void
coreGappedBoot(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(bootOnce(RunMode::CoreGapped,
                                          0xc0ffee));
    }
}
BENCHMARK(coreGappedBoot);

/** Eight independent boots fanned across a ParallelRunner: the
 * wall-clock shape of the converted fig6/fig7/table4 sweeps. */
void
parallelSweepBoot(benchmark::State& state)
{
    const auto seeds =
        sim::ParallelRunner::deriveSeeds(0xc0ffee, 8);
    for (auto _ : state) {
        const auto iters =
            sim::ParallelRunner::mapIndexed<std::uint64_t>(
                seeds.size(), [&](std::size_t i) {
                    return bootOnce(RunMode::CoreGapped, seeds[i]);
                });
        benchmark::DoNotOptimize(iters.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(parallelSweepBoot)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
