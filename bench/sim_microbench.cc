/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel itself
 * (wall-clock performance of the event queue, coroutine processes, and
 * a full testbed boot). These bound how long the table/figure
 * harnesses take, and catch regressions in the simulator's hot paths.
 */

#include <benchmark/benchmark.h>

#include "sim/simulation.hh"
#include "sim/sync.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
using namespace cg::workloads;

namespace {

void
eventQueueChurn(benchmark::State& state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i) {
            q.schedule(static_cast<sim::Tick>(i) * sim::nsec,
                       [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(eventQueueChurn)->Arg(1000)->Arg(100000);

sim::Proc<void>
pingPong(sim::Channel<int>& a, sim::Channel<int>& b, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        a.send(i);
        (void)co_await b.recv();
    }
}

sim::Proc<void>
echo(sim::Channel<int>& a, sim::Channel<int>& b, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        int v = co_await a.recv();
        b.send(v);
    }
}

void
coroutineChannelPingPong(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation s;
        sim::Channel<int> a, b;
        s.spawn("ping", pingPong(a, b, static_cast<int>(state.range(0))));
        s.spawn("pong", echo(a, b, static_cast<int>(state.range(0))));
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(coroutineChannelPingPong)->Arg(10000);

void
coreGappedBoot(benchmark::State& state)
{
    for (auto _ : state) {
        Testbed::Config cfg;
        cfg.numCores = 16;
        cfg.mode = RunMode::CoreGapped;
        Testbed bed(cfg);
        VmInstance& vm = bed.createVm("boot", 16);
        CoreMarkPro::Config wcfg;
        wcfg.duration = 50 * sim::msec;
        CoreMarkPro cm(bed, vm, wcfg);
        cm.install();
        bed.spawnStart();
        bed.run(2 * sim::sec);
        benchmark::DoNotOptimize(cm.result().iterations);
    }
}
BENCHMARK(coreGappedBoot);

} // namespace

BENCHMARK_MAIN();
