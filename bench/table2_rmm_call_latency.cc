/**
 * @file
 * Table 2: comparison of null RMM call latencies.
 *
 *   Core-gapped asynchronous (vCPU run calls)   2757.6 ns
 *   Core-gapped synchronous (page table update)  257.7 ns
 *   Same-core synchronous (EL3 + mitigations)   >12.8 us
 *
 * The asynchronous number is the full round trip of a run call whose
 * guest exits immediately (hypercall loop); the synchronous number is
 * a busy-wait RPC served by an idle dedicated core; the same-core
 * number is the SMC transport with the firmware's mitigation flushes.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;
using cg::bench::compareRow;
using sim::Proc;
using sim::Tick;

namespace {

Proc<void>
hypercallLoop(guest::VCpu& v, int n)
{
    for (int i = 0; i < n; ++i)
        co_await v.hypercall(0);
    co_await v.shutdown();
}

Proc<void>
syncCaller(cg::core::SyncRpcQueue& q, int n, sim::LatencyStat& lat,
           sim::Simulation& s)
{
    for (int i = 0; i < n; ++i) {
        const Tick t0 = s.now();
        co_await q.call([] { return cg::rmm::RmiStatus::Success; });
        lat.sample(s.now() - t0);
    }
}

Proc<void>
smcCaller(cg::vmm::LocalSmcTransport& t, int n, sim::LatencyStat& lat,
          sim::Simulation& s)
{
    for (int i = 0; i < n; ++i) {
        const Tick t0 = s.now();
        co_await t.call([] { return cg::rmm::RmiStatus::Success; });
        lat.sample(s.now() - t0);
    }
}

struct Results {
    double asyncNs;
    double syncNs;
    double smcNs;
};

Results
measure()
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0; // a null-call microbenchmark: no tick noise
    VmInstance& vm = bed.createVm("null", 2, vcfg);
    vm.vcpu(0).startGuest("hcloop", hypercallLoop(vm.vcpu(0), 3000));
    bed.spawnStart();

    // Synchronous calls from a separate host thread; they are served
    // by the dedicated core while its vCPU is exited, so issue them
    // after shutdown when the core only polls.
    bed.run(5 * sim::sec);

    sim::LatencyStat sync_lat;
    bed.kernel().createThread(
        "sync-caller",
        syncCaller(vm.gapped->syncRpc(), 2000, sync_lat, bed.sim()),
        cg::host::SchedClass::Fair, vm.hostMask);
    bed.run(10 * sim::sec);

    sim::LatencyStat smc_lat;
    cg::vmm::LocalSmcTransport smc(bed.machine());
    bed.kernel().createThread(
        "smc-caller", smcCaller(smc, 500, smc_lat, bed.sim()),
        cg::host::SchedClass::Fair, vm.hostMask);
    bed.run(15 * sim::sec);

    Results r;
    r.asyncNs = vm.gapped->runCallRtt().meanNs();
    r.syncNs = sync_lat.meanNs();
    r.smcNs = smc_lat.meanNs();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Table 2: null RMM call latencies",
           "table 2, section 4.3");
    Results r = measure();
    std::printf("  %-46s %10s\n", "Call", "Latency");
    std::printf("  %-46s %8.1f ns\n",
                "Core-gapped asynchronous (vCPU run calls)", r.asyncNs);
    std::printf("  %-46s %8.1f ns\n",
                "Core-gapped synchronous (page table update)",
                r.syncNs);
    std::printf("  %-46s %8.1f ns\n",
                "Same-core synchronous (SMC + mitigations)", r.smcNs);
    std::printf("\npaper vs measured:\n");
    compareRow("async run call", 2757.6, r.asyncNs, "ns");
    compareRow("sync short call", 257.7, r.syncNs, "ns");
    compareRow("same-core call (paper: >12800)", 12800.0, r.smcNs,
               "ns");
    cg::bench::sectionEnd();
    return 0;
}
