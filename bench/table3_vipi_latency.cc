/**
 * @file
 * Table 3: virtual inter-processor interrupt latency.
 *
 *   Core-gapped CVM, without delegation   43.9 us
 *   Core-gapped CVM, with delegation      2.22 us
 *   Shared-core VM                        3.85 us
 *
 * vCPU 0 writes ICC_SGI1R targeting vCPU 1; vCPU 1's handler
 * acknowledges in shared (guest) memory, which vCPU 0 spins on. With
 * delegation the RMM injects on the target's dedicated core directly;
 * without, the exit travels to the host, which must kick the target.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace hw = cg::hw;
using namespace cg::workloads;
using cg::bench::banner;
using cg::bench::compareRow;
using sim::Proc;
using sim::Tick;

namespace {

struct Shared {
    bool ack = false;
};

Proc<void>
sender(Testbed& bed, guest::VCpu& v, Shared& mem, int iters,
       sim::LatencyStat& lat)
{
    co_await bed.started().wait();
    sim::Simulation& s = bed.sim();
    // Let the receiver reach its idle loop.
    co_await sim::Compute{2 * sim::msec};
    for (int i = 0; i < iters; ++i) {
        mem.ack = false;
        const Tick t0 = s.now();
        co_await v.sendVIpi(1);
        while (!mem.ack)
            co_await sim::Compute{100 * sim::nsec};
        lat.sample(s.now() - t0);
        co_await sim::Compute{50 * sim::usec}; // spacing
    }
    co_await v.shutdown();
}

Proc<void>
receiver(Testbed& bed, guest::VCpu& v)
{
    co_await bed.started().wait();
    for (;;)
        co_await v.idle();
}

double
measure(RunMode mode, int iters = 200)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = mode;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0; // isolate the IPI path
    VmInstance& vm = bed.createVm("vipi", 3, vcfg);
    auto mem = std::make_unique<Shared>();
    sim::LatencyStat lat;
    vm.vcpu(1).setVirqHandler(hw::sgiBase + 1,
                              [m = mem.get()] { m->ack = true; });
    vm.vcpu(0).startGuest("sender",
                          sender(bed, vm.vcpu(0), *mem, iters, lat));
    vm.vcpu(1).startGuest("receiver", receiver(bed, vm.vcpu(1)));
    bed.spawnStart();
    bed.run(30 * sim::sec);
    return lat.meanUs();
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Table 3: virtual inter-processor interrupt latency",
           "table 3, section 4.4");
    const double no_deleg = measure(RunMode::CoreGappedNoDelegation);
    const double deleg = measure(RunMode::CoreGapped);
    const double shared = measure(RunMode::SharedCore);
    std::printf("  %-42s %10s\n", "", "IPI latency");
    std::printf("  %-42s %8.2f us\n",
                "Core-gapped CVM, without delegation", no_deleg);
    std::printf("  %-42s %8.2f us\n",
                "Core-gapped CVM, with delegation", deleg);
    std::printf("  %-42s %8.2f us\n", "Shared-core VM", shared);
    std::printf("\npaper vs measured:\n");
    compareRow("gapped, no delegation", 43.9, no_deleg, "us");
    compareRow("gapped, delegated", 2.22, deleg, "us");
    compareRow("shared-core VM", 3.85, shared, "us");
    cg::bench::note("shape check: delegated < shared < no-delegation");
    cg::bench::sectionEnd();
    return 0;
}
