/**
 * @file
 * Fig. 6: CoreMark-PRO scaling for shared-core (baseline) VMs and
 * core-gapped CVMs, with the busy-waiting and no-delegation ablations
 * that reproduce Quarantine's scalability collapse.
 *
 * X axis: total physical cores N (the gapped configurations run N-1
 * dedicated cores plus 1 host core). Y: aggregate iterations/second.
 *
 * The sweep points are independent simulations, so they are fanned
 * across a ParallelRunner; each point's simulated result depends only
 * on its (mode, core count) configuration, never on the host thread
 * schedule, and the printed table is bit-identical to a serial run.
 */

#include <iterator>

#include "bench/common.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Tick;
using sim::msec;

namespace {

struct Point {
    double score = 0.0;
    double runToRunUs = 0.0; ///< only set for no-delegation runs
};

Point
runPoint(RunMode mode, int phys_cores)
{
    Testbed::Config cfg;
    cfg.numCores = phys_cores;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("cm", phys_cores);
    CoreMarkPro::Config wcfg;
    wcfg.duration = 1 * sim::sec;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    bed.spawnStart();
    bed.run(wcfg.duration + 3 * sim::sec);
    Point p;
    p.score = cm.result().score;
    if (vm.gapped && vm.gapped->runToRun().count() > 0)
        p.runToRunUs = vm.gapped->runToRun().meanUs();
    return p;
}

constexpr RunMode modes[] = {
    RunMode::SharedCore,         RunMode::SharedCoreCvm,
    RunMode::CoreGapped,         RunMode::CoreGappedBusyWait,
    RunMode::CoreGappedNoDelegation,
};
constexpr int numModes = static_cast<int>(std::size(modes));

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Fig. 6: CoreMark-PRO scaling (aggregate score vs cores)",
           "fig. 6, section 5.2");
    const int sweep[] = {2, 4, 8, 16, 24, 32, 48, 64};
    const int numSweep = static_cast<int>(std::size(sweep));

    // One job per (core count, mode); results land in index order, so
    // aggregation below sees them exactly as the old serial loop did.
    const auto points = sim::ParallelRunner::mapIndexed<Point>(
        static_cast<std::size_t>(numSweep * numModes),
        [&](std::size_t i) {
            return runPoint(modes[i % numModes],
                            sweep[i / numModes]);
        });
    const auto at = [&](int sweep_idx, int mode_idx) -> const Point& {
        return points[static_cast<std::size_t>(sweep_idx) * numModes +
                      static_cast<std::size_t>(mode_idx)];
    };

    std::printf("  %-6s %12s %12s %12s %14s %14s\n", "cores", "shared",
                "shared-cvm", "core-gapped", "gapped-busywt",
                "gapped-nodeleg");
    double shared16 = 0, gapped16 = 0, busy64 = 0, gapped64 = 0;
    double scvm16 = 0;
    sim::Accumulator run_to_run;
    for (int si = 0; si < numSweep; ++si) {
        const int n = sweep[si];
        const double s = at(si, 0).score;
        const double sc = at(si, 1).score;
        const double g = at(si, 2).score;
        const double b = at(si, 3).score;
        const double d = at(si, 4).score;
        if (at(si, 4).runToRunUs > 0.0)
            run_to_run.sample(at(si, 4).runToRunUs);
        std::printf("  %-6d %12.0f %12.0f %12.0f %14.0f %14.0f\n", n,
                    s, sc, g, b, d);
        if (n == 16) {
            shared16 = s;
            gapped16 = g;
            scvm16 = sc;
        }
        if (n == 64) {
            busy64 = b;
            gapped64 = g;
        }
    }
    std::printf("\n  run-to-run latency across the no-delegation "
                "sweep: %.2f +- %.2f us (paper: 26.18 +- 0.96 us, "
                "stable across core counts)\n",
                run_to_run.mean(), run_to_run.stddev());
    cg::bench::jsonRow("run-to-run latency mean (us)", 26.18,
                       run_to_run.mean());
    std::printf("\nshape checks (paper, section 5.2 and section 7):\n");
    std::printf("  gapped/shared at 16 cores: %.2f "
                "(paper: ~15/16 = 0.94, competitive)\n",
                shared16 > 0 ? gapped16 / shared16 : 0.0);
    std::printf("  busy-wait/gapped at 64 cores: %.2f "
                "(paper/Quarantine: busy waiting saturates the host "
                "core and falls far behind)\n",
                gapped64 > 0 ? busy64 / gapped64 : 0.0);
    std::printf("  gapped/shared-CVM at 16 cores: %.2f "
                "(section 5.5's comparison the paper could not run: "
                "for this CPU-bound, delegation-friendly workload the "
                "shared CVM's per-exit flushes cost < 1%%, so the "
                "N-1/N handicap still dominates; the shared-CVM "
                "penalty grows with exit rate -- see the I/O "
                "benches)\n",
                scvm16 > 0 ? gapped16 / scvm16 : 0.0);
    cg::bench::jsonRow("gapped/shared score ratio at 16 cores", 0.94,
                       shared16 > 0 ? gapped16 / shared16 : 0.0);
    cg::bench::sectionEnd();
    return 0;
}
