/**
 * @file
 * Fig. 6: CoreMark-PRO scaling for shared-core (baseline) VMs and
 * core-gapped CVMs, with the busy-waiting and no-delegation ablations
 * that reproduce Quarantine's scalability collapse.
 *
 * X axis: total physical cores N (the gapped configurations run N-1
 * dedicated cores plus 1 host core). Y: aggregate iterations/second.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Tick;
using sim::msec;

namespace {

double
score(RunMode mode, int phys_cores, double* run_to_run_us = nullptr)
{
    Testbed::Config cfg;
    cfg.numCores = phys_cores;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("cm", phys_cores);
    CoreMarkPro::Config wcfg;
    wcfg.duration = 1 * sim::sec;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    bed.spawnStart();
    bed.run(wcfg.duration + 3 * sim::sec);
    if (run_to_run_us && vm.gapped &&
        vm.gapped->runToRun().count() > 0) {
        *run_to_run_us = vm.gapped->runToRun().meanUs();
    }
    return cm.result().score;
}

} // namespace

int
main()
{
    banner("Fig. 6: CoreMark-PRO scaling (aggregate score vs cores)",
           "fig. 6, section 5.2");
    const int sweep[] = {2, 4, 8, 16, 24, 32, 48, 64};
    std::printf("  %-6s %12s %12s %12s %14s %14s\n", "cores", "shared",
                "shared-cvm", "core-gapped", "gapped-busywt",
                "gapped-nodeleg");
    double shared16 = 0, gapped16 = 0, busy64 = 0, gapped64 = 0;
    double scvm16 = 0;
    sim::Accumulator run_to_run;
    for (int n : sweep) {
        double rtr = 0.0;
        const double s = score(RunMode::SharedCore, n);
        const double sc = score(RunMode::SharedCoreCvm, n);
        const double g = score(RunMode::CoreGapped, n);
        const double b = score(RunMode::CoreGappedBusyWait, n);
        const double d =
            score(RunMode::CoreGappedNoDelegation, n, &rtr);
        if (rtr > 0.0)
            run_to_run.sample(rtr);
        std::printf("  %-6d %12.0f %12.0f %12.0f %14.0f %14.0f\n", n,
                    s, sc, g, b, d);
        if (n == 16) {
            shared16 = s;
            gapped16 = g;
            scvm16 = sc;
        }
        if (n == 64) {
            busy64 = b;
            gapped64 = g;
        }
    }
    std::printf("\n  run-to-run latency across the no-delegation "
                "sweep: %.2f +- %.2f us (paper: 26.18 +- 0.96 us, "
                "stable across core counts)\n",
                run_to_run.mean(), run_to_run.stddev());
    std::printf("\nshape checks (paper, section 5.2 and section 7):\n");
    std::printf("  gapped/shared at 16 cores: %.2f "
                "(paper: ~15/16 = 0.94, competitive)\n",
                shared16 > 0 ? gapped16 / shared16 : 0.0);
    std::printf("  busy-wait/gapped at 64 cores: %.2f "
                "(paper/Quarantine: busy waiting saturates the host "
                "core and falls far behind)\n",
                gapped64 > 0 ? busy64 / gapped64 : 0.0);
    std::printf("  gapped/shared-CVM at 16 cores: %.2f "
                "(section 5.5's comparison the paper could not run: "
                "for this CPU-bound, delegation-friendly workload the "
                "shared CVM's per-exit flushes cost < 1%%, so the "
                "N-1/N handicap still dominates; the shared-CVM "
                "penalty grows with exit rate -- see the I/O "
                "benches)\n",
                scvm16 > 0 ? gapped16 / scvm16 : 0.0);
    cg::bench::sectionEnd();
    return 0;
}
