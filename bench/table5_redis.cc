/**
 * @file
 * Table 5: redis-benchmark, 50 clients, 512-byte objects, over SR-IOV
 * (16 physical cores: 16-vCPU shared VM vs 15-vCPU core-gapped CVM).
 *
 *                    Throughput    Latency (ms)
 *                       (krps)   mean   p95   p99
 *   SET  shared core     51.7    0.52  0.60  1.20
 *        core gapped     56.2    0.63  0.97  1.44
 *   GET  shared core     48.8    0.54  0.64  1.20
 *        core gapped     55.3    0.57  0.78  1.24
 *   LRANGE 100 shared    11.6    1.51  2.03  2.38
 *        core gapped     14.5    1.24  1.56  1.82
 */

#include <map>

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/redis.hh"

namespace sim = cg::sim;
using namespace cg::workloads;
using cg::bench::banner;

namespace {

RedisBenchmark::Result
runRedis(RunMode mode, RedisOp op)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("redis", 16);
    bed.addSriovNic(vm);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost clients(bed.sim(), bed.fabric(),
                       bed.machine().costs().remoteStack);
    RedisBenchmark::Config rcfg;
    rcfg.op = op;
    rcfg.clients = 50;
    rcfg.duration = 2 * sim::sec;
    RedisBenchmark rb(bed, vm, nic, clients, rcfg);
    rb.install();
    bed.spawnStart();
    bed.run(6 * sim::sec);
    return rb.result();
}

void
row(const char* label, const RedisBenchmark::Result& r)
{
    std::printf("  %-22s %8.1f %8.2f %8.2f %8.2f\n", label,
                r.throughputKrps, r.meanMs, r.p95Ms, r.p99Ms);
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Table 5: Redis benchmark (50 clients, 512-byte objects)",
           "table 5, section 5.4");
    std::printf("  %-22s %8s %8s %8s %8s\n", "", "krps", "mean",
                "p95", "p99");
    struct PaperRow {
        double krps, mean, p95, p99;
    };
    const std::map<RedisOp, std::pair<PaperRow, PaperRow>> paper = {
        {RedisOp::Set,
         {{51.7, 0.52, 0.60, 1.20}, {56.2, 0.63, 0.97, 1.44}}},
        {RedisOp::Get,
         {{48.8, 0.54, 0.64, 1.20}, {55.3, 0.57, 0.78, 1.24}}},
        {RedisOp::Lrange100,
         {{11.6, 1.51, 2.03, 2.38}, {14.5, 1.24, 1.56, 1.82}}},
    };
    for (RedisOp op :
         {RedisOp::Set, RedisOp::Get, RedisOp::Lrange100}) {
        RedisBenchmark::Result shared =
            runRedis(RunMode::SharedCore, op);
        RedisBenchmark::Result gapped =
            runRedis(RunMode::CoreGapped, op);
        std::printf("%s\n", redisOpName(op));
        row("  shared core", shared);
        row("  core gapped", gapped);
        const auto& p = paper.at(op);
        std::printf("    paper: shared %.1f krps, gapped %.1f krps "
                    "(gapped/shared throughput: paper %.2fx, "
                    "measured %.2fx)\n",
                    p.first.krps, p.second.krps,
                    p.second.krps / p.first.krps,
                    shared.throughputKrps > 0
                        ? gapped.throughputKrps / shared.throughputKrps
                        : 0.0);
    }
    cg::bench::note("paper shape: core gapping wins throughput ~10-25% "
                    "on all three ops. This model reproduces absolute "
                    "magnitudes and latency tails but measures parity "
                    "between modes: with NAPI coalescing a saturated "
                    "server takes no interrupt-path exits in either "
                    "configuration, and the paper's residual shared-"
                    "core interference is finer-grained than the "
                    "structural warm-up model (see EXPERIMENTS.md).");
    cg::bench::sectionEnd();
    return 0;
}
