/**
 * @file
 * Table 5: redis-benchmark, 50 clients, 512-byte objects, over SR-IOV
 * (16 physical cores: 16-vCPU shared VM vs 15-vCPU core-gapped CVM).
 *
 *                    Throughput    Latency (ms)
 *                       (krps)   mean   p95   p99
 *   SET  shared core     51.7    0.52  0.60  1.20
 *        core gapped     56.2    0.63  0.97  1.44
 *   GET  shared core     48.8    0.54  0.64  1.20
 *        core gapped     55.3    0.57  0.78  1.24
 *   LRANGE 100 shared    11.6    1.51  2.03  2.38
 *        core gapped     14.5    1.24  1.56  1.82
 *
 * Plus the serving-path extension (DESIGN.md section 11): an open-loop
 * Poisson GET sweep over the multi-queue NIC, reporting p50/p99/p999
 * per offered-load point for three configurations —
 *
 *   hosted      shared-core CVM, trapped multi-queue virtio
 *   gapped      core-gapped CVM, trapped multi-queue virtio +
 *               adaptive wake-up spin
 *   gapped-ipu  core-gapped CVM, IPU-offloaded device on reserved I/O
 *               cores, direct-injected RX, adaptive wake-up spin
 *               (zero VM exits on the data path, asserted below)
 *
 * — and the offered load at which each mode's p999 crosses the 2 ms
 * SLO (the "knee"), the tracked tail-latency metric. The measured
 * shape: gapped+trapped knees earliest (all emulation and kick-exit
 * relays share the one host core), hosted in the middle, gapped-ipu
 * latest with zero data-path exits. `--quick` runs a single
 * gapped-ipu point for the ctest smoke.
 */

#include <map>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/redis.hh"

namespace sim = cg::sim;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Tick;

namespace {

RedisBenchmark::Result
runRedis(RunMode mode, RedisOp op)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("redis", 16);
    bed.addSriovNic(vm);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost clients(bed.sim(), bed.fabric(),
                       bed.machine().costs().remoteStack);
    RedisBenchmark::Config rcfg;
    rcfg.op = op;
    rcfg.clients = 50;
    rcfg.duration = 2 * sim::sec;
    RedisBenchmark rb(bed, vm, nic, clients, rcfg);
    rb.install();
    bed.spawnStart();
    bed.run(6 * sim::sec);
    return rb.result();
}

void
row(const char* label, const RedisBenchmark::Result& r)
{
    std::printf("  %-22s %8.1f %8.2f %8.2f %8.2f\n", label,
                r.throughputKrps, r.meanMs, r.p95Ms, r.p99Ms);
}

// --------------------------------------------------- open-loop sweep

/** The three serving-path configurations the sweep compares. */
enum class SweepMode { Hosted, Gapped, GappedIpu };

const char*
sweepModeName(SweepMode m)
{
    switch (m) {
      case SweepMode::Hosted:
        return "hosted";
      case SweepMode::Gapped:
        return "gapped";
      case SweepMode::GappedIpu:
        return "gapped-ipu";
    }
    return "?";
}

/** One load point's outcome: the workload result plus the device's
 * trapped-doorbell count (the data-path VM exits). */
struct SweepPoint {
    RedisOpenLoop::Result r;
    std::uint64_t kickExits = 0;
    std::uint64_t kickRescues = 0;
};

/** p999 SLO for the knee metric, milliseconds. */
constexpr double kneeSloMs = 2.0;

SweepPoint
runOpenLoop(SweepMode m, double offered_krps, Tick duration)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = m == SweepMode::Hosted ? RunMode::SharedCoreCvm
                                      : RunMode::CoreGapped;
    if (m != SweepMode::Hosted)
        cfg.wakeSpinMax = 4 * sim::usec;
    Testbed bed(cfg);
    // 12 physical cores for the VM in every mode (shared: 12 vCPUs;
    // gapped: 11 vCPUs + 1 host core); the gapped-ipu mode reserves 4
    // of the remaining cores as the device's I/O cores.
    VmInstance& vm = bed.createVm("redis", 12);
    Testbed::MqNicOptions nopt;
    nopt.queues = 4;
    if (m == SweepMode::GappedIpu) {
        nopt.ipuOffload = true;
        nopt.ipuCores = 4;
        nopt.directRx = true;
    }
    bed.addMqNic(vm, nopt);
    MqGuestNic nic(*vm.mqnet);
    // Enough remote CPUs that the client machine never bottlenecks
    // the offered load (one remote core serialises at ~1/remoteStack
    // pps, below the sweep's top points).
    RemoteHost clients(bed.sim(), bed.fabric(),
                       bed.machine().costs().remoteStack, 8);
    RedisOpenLoop::Config rcfg;
    rcfg.op = RedisOp::Get;
    rcfg.offeredKrps = offered_krps;
    rcfg.duration = duration;
    rcfg.serverThreads = 4;
    RedisOpenLoop ol(bed, vm, nic, clients, rcfg);
    ol.install();
    ol.registerStats(bed.sim().stats());
    bed.spawnStart();
    bed.run(duration + 10 * sim::sec);
    // Dump --stats/--trace while the workload's openloop.* StatGroup
    // is still registered (it detaches when ol goes out of scope).
    bed.writeObservability();
    SweepPoint p;
    p.r = ol.result();
    p.kickExits = vm.mqnet->dataPathKickExits();
    p.kickRescues = vm.mqnet->kickRescues();
    return p;
}

/**
 * Offered load (krps) at which p999 first crosses the SLO, linearly
 * interpolated between the bracketing sweep points. Returns the top
 * offered load if the sweep never crosses (the knee is off the right
 * edge of the sweep — a better number than pretending it's infinite).
 */
double
kneeKrps(const std::vector<SweepPoint>& pts)
{
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].r.p999Ms <= kneeSloMs)
            continue;
        if (i == 0)
            return pts[0].r.offeredKrps;
        const double x0 = pts[i - 1].r.offeredKrps;
        const double x1 = pts[i].r.offeredKrps;
        const double y0 = pts[i - 1].r.p999Ms;
        const double y1 = pts[i].r.p999Ms;
        if (y1 <= y0)
            return x1;
        return x0 + (x1 - x0) * (kneeSloMs - y0) / (y1 - y0);
    }
    return pts.empty() ? 0.0 : pts.back().r.offeredKrps;
}

void
openLoopSweep(bool quick)
{
    banner("Open-loop GET sweep (multi-queue serving path)",
           "extension of table 5 / section 5.3; DESIGN.md section 11");
    std::printf("  %-12s %8s %9s %8s %8s %8s %8s %10s\n", "mode",
                "offered", "achieved", "mean", "p50", "p99", "p999",
                "kick-exits");
    std::printf("  %-12s %8s %9s %8s %8s %8s %8s\n", "", "(krps)",
                "(krps)", "(ms)", "(ms)", "(ms)", "(ms)");

    const std::vector<SweepMode> modes =
        quick ? std::vector<SweepMode>{SweepMode::GappedIpu}
              : std::vector<SweepMode>{SweepMode::Hosted,
                                       SweepMode::Gapped,
                                       SweepMode::GappedIpu};
    const std::vector<double> loads =
        quick ? std::vector<double>{80.0}
              : std::vector<double>{40.0,  80.0,  120.0,
                                    160.0, 200.0, 240.0};
    const Tick duration = quick ? 100 * sim::msec : 400 * sim::msec;

    for (SweepMode m : modes) {
        std::vector<SweepPoint> pts;
        std::uint64_t ipu_dataplane_exits = 0;
        for (double load : loads) {
            SweepPoint p = runOpenLoop(m, load, duration);
            std::printf("  %-12s %8.0f %9.1f %8.2f %8.2f %8.2f "
                        "%8.2f %10llu\n",
                        sweepModeName(m), load, p.r.achievedKrps,
                        p.r.meanMs, p.r.p50Ms, p.r.p99Ms, p.r.p999Ms,
                        static_cast<unsigned long long>(p.kickExits));
            const std::string tag = sim::strFormat(
                "openloop GET %s @%.0fkrps", sweepModeName(m), load);
            cg::bench::jsonRow(tag + " p50 ms", 0, p.r.p50Ms);
            cg::bench::jsonRow(tag + " p99 ms", 0, p.r.p99Ms);
            cg::bench::jsonRow(tag + " p999 ms", 0, p.r.p999Ms);
            cg::bench::jsonRow(tag + " achieved krps", load,
                               p.r.achievedKrps);
            if (m == SweepMode::GappedIpu)
                ipu_dataplane_exits += p.kickExits + p.r.irqExits;
            pts.push_back(p);
        }
        const double knee = kneeKrps(pts);
        std::printf("  %-12s p999 %.1fms-SLO knee: %.1f krps\n",
                    sweepModeName(m), kneeSloMs, knee);
        cg::bench::jsonRow(
            sim::strFormat("openloop GET %s p999 knee krps",
                           sweepModeName(m)),
            0, knee);
        if (m == SweepMode::GappedIpu) {
            // The IPU backend's whole point: posted doorbells plus
            // direct-injected RX leave nothing for the host to trap
            // on the data path. Tracked so a regression that
            // reintroduces exits is visible in the report.
            std::printf("  %-12s data-path VM exits across sweep: "
                        "%llu\n",
                        sweepModeName(m),
                        static_cast<unsigned long long>(
                            ipu_dataplane_exits));
            cg::bench::jsonRow(
                "openloop ipu dataplane exits", 0,
                static_cast<double>(ipu_dataplane_exits));
        }
    }
    cg::bench::note("open loop: arrivals are Poisson at the offered "
                    "rate regardless of completions, so queueing "
                    "delay lands in p99/p999 instead of throttling "
                    "the load. The knee is where p999 crosses the "
                    "2 ms SLO. Trapped emulation on a core-gapped "
                    "CVM knees earliest: every queue's I/O thread "
                    "and every relayed kick exit serialises on the "
                    "single host core, which is exactly why the "
                    "serving path wants the IPU backend -- emulation "
                    "on reserved I/O cores with posted doorbells and "
                    "direct-injected RX knees latest, with zero VM "
                    "exits on the data path.");
    cg::bench::sectionEnd();
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    if (cg::bench::quick()) {
        // Smoke mode: one gapped-ipu load point, shortened window;
        // skips the closed-loop table entirely.
        openLoopSweep(true);
        return 0;
    }
    banner("Table 5: Redis benchmark (50 clients, 512-byte objects)",
           "table 5, section 5.4");
    std::printf("  %-22s %8s %8s %8s %8s\n", "", "krps", "mean",
                "p95", "p99");
    struct PaperRow {
        double krps, mean, p95, p99;
    };
    const std::map<RedisOp, std::pair<PaperRow, PaperRow>> paper = {
        {RedisOp::Set,
         {{51.7, 0.52, 0.60, 1.20}, {56.2, 0.63, 0.97, 1.44}}},
        {RedisOp::Get,
         {{48.8, 0.54, 0.64, 1.20}, {55.3, 0.57, 0.78, 1.24}}},
        {RedisOp::Lrange100,
         {{11.6, 1.51, 2.03, 2.38}, {14.5, 1.24, 1.56, 1.82}}},
    };
    for (RedisOp op :
         {RedisOp::Set, RedisOp::Get, RedisOp::Lrange100}) {
        RedisBenchmark::Result shared =
            runRedis(RunMode::SharedCore, op);
        RedisBenchmark::Result gapped =
            runRedis(RunMode::CoreGapped, op);
        std::printf("%s\n", redisOpName(op));
        row("  shared core", shared);
        row("  core gapped", gapped);
        const auto& p = paper.at(op);
        std::printf("    paper: shared %.1f krps, gapped %.1f krps "
                    "(gapped/shared throughput: paper %.2fx, "
                    "measured %.2fx)\n",
                    p.first.krps, p.second.krps,
                    p.second.krps / p.first.krps,
                    shared.throughputKrps > 0
                        ? gapped.throughputKrps / shared.throughputKrps
                        : 0.0);
    }
    cg::bench::note("paper shape: core gapping wins throughput ~10-25% "
                    "on all three ops. This model reproduces absolute "
                    "magnitudes and latency tails but measures parity "
                    "between modes: with NAPI coalescing a saturated "
                    "server takes no interrupt-path exits in either "
                    "configuration, and the paper's residual shared-"
                    "core interference is finer-grained than the "
                    "structural warm-up model (see EXPERIMENTS.md).");
    cg::bench::sectionEnd();
    openLoopSweep(false);
    return 0;
}
