/**
 * @file
 * Fig. 10: parallel (Linux-kernel-style) build over a virtio disk.
 * Paper shape: despite one fewer vCPU and a disadvantage on emulated
 * disk I/O, core-gapped CVMs scale like the shared-core baseline.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/kbuild.hh"

namespace sim = cg::sim;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Tick;

namespace {

Tick
buildTime(RunMode mode, int phys_cores)
{
    Testbed::Config cfg;
    cfg.numCores = phys_cores;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("kb", phys_cores);
    bed.addVirtioBlk(vm);
    KernelBuild::Config kcfg; // defaults: 240 jobs x ~220 ms + link
    KernelBuild kb(bed, vm, kcfg);
    kb.install();
    bed.spawnStart();
    bed.run(600 * sim::sec);
    KernelBuild::Result r = kb.result();
    if (!r.finished)
        std::fprintf(stderr, "warning: build did not finish (%d/%d)\n",
                     r.jobsDone, kcfg.jobs);
    return r.buildTime;
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Fig. 10: parallel kernel-style build over virtio disk",
           "fig. 10, section 5.4");
    std::printf("  %-6s %14s %14s %10s\n", "cores", "shared (s)",
                "gapped (s)", "gap/shr");
    double r4 = 0, r16 = 0;
    for (int n : {4, 8, 12, 16}) {
        const Tick s = buildTime(RunMode::SharedCore, n);
        const Tick g = buildTime(RunMode::CoreGapped, n);
        const double ratio =
            s > 0 ? sim::toSec(g) / sim::toSec(s) : 0.0;
        std::printf("  %-6d %14.2f %14.2f %10.2f\n", n, sim::toSec(s),
                    sim::toSec(g), ratio);
        if (n == 4)
            r4 = ratio;
        if (n == 16)
            r16 = ratio;
    }
    std::printf("\nshape checks:\n");
    std::printf("  gapped/shared build time at 4 cores: %.2f and at "
                "16 cores: %.2f (paper: comparable despite one fewer "
                "vCPU; the N-1/N handicap shrinks as N grows)\n",
                r4, r16);
    cg::bench::sectionEnd();
    return 0;
}
