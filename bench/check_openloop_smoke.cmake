# Validates the bench_openloop_smoke outputs: the trace must be
# Chrome trace_event JSON containing the serving-path tracepoints and
# the stats dump must carry the open-loop workload's and the
# multi-queue NIC's registry rows.
# Run as: cmake -DTRACE=<path> -DSTATS=<path> -P check_openloop_smoke.cmake

foreach(var TRACE STATS)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=<path>")
    endif()
    if(NOT EXISTS "${${var}}")
        message(FATAL_ERROR "missing output file: ${${var}}")
    endif()
endforeach()

file(READ "${TRACE}" trace_body)
if(NOT trace_body MATCHES "^\\{\"traceEvents\": \\[")
    message(FATAL_ERROR "trace is not trace_event object format")
endif()
if(NOT trace_body MATCHES "mq-queue-depth")
    message(FATAL_ERROR "trace has no mq-queue-depth tracepoints")
endif()
if(NOT trace_body MATCHES "mq-kick-flush")
    message(FATAL_ERROR "trace has no mq-kick-flush tracepoints")
endif()

file(READ "${STATS}" stats_body)
if(NOT stats_body MATCHES "openloop\\.")
    message(FATAL_ERROR "stats dump has no openloop.* rows")
endif()
if(NOT stats_body MATCHES "mqnet\\.")
    message(FATAL_ERROR "stats dump has no mqnet.* rows")
endif()

message(STATUS "open-loop smoke outputs look good")
