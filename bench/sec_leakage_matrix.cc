/**
 * @file
 * The security matrix (sections 2.2-2.4): victim residue an attacker
 * VM can observe per microarchitectural channel, per configuration.
 * Not a paper table, but the measurable form of its security claims:
 * core gapping zeroes every per-core channel; flush-based mitigations
 * only cover predictors/buffers; shared LLC and the CrossTalk staging
 * buffer remain out of scope in every configuration.
 */

#include "attacks/lab.hh"
#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
namespace host = cg::host;
using namespace cg::attacks;
using namespace cg::workloads;
using cg::bench::banner;
using sim::msec;

namespace {

LeakReport
runLab(RunMode mode)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = mode;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.footprint = 900;
    VmInstance *victim, *attacker;
    if (isGapped(mode)) {
        victim = &bed.createVm("victim", 3, vcfg);
        attacker = &bed.createVm("attacker", 3, vcfg);
    } else {
        std::vector<sim::CoreId> cores{0, 1};
        host::CpuMask mask;
        for (sim::CoreId c : cores)
            mask.set(c);
        victim = &bed.createVmOn("victim", cores, mask, 2, vcfg);
        attacker = &bed.createVmOn("attacker", cores, mask, 2, vcfg);
    }
    CoreMarkPro::Config wcfg;
    wcfg.duration = 400 * msec;
    CoreMarkPro victim_work(bed, *victim, wcfg);
    victim_work.install();
    AttackLab::Config acfg;
    acfg.duration = 400 * msec;
    AttackLab lab(bed, *attacker, victim->vm->domain(), acfg);
    lab.install();
    bed.spawnStart();
    bed.run(5 * sim::sec);
    return lab.report();
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Security matrix: observable victim residue per channel",
           "sections 2.2-2.4 (threat model), invariant I5");
    const RunMode modes[] = {RunMode::SharedCore,
                             RunMode::SharedCoreCvm,
                             RunMode::CoreGapped};
    std::vector<LeakReport> reports;
    for (RunMode m : modes)
        reports.push_back(runLab(m));

    std::printf("  mean victim entries observed per positive probe "
                "(0 = channel closed)\n");
    std::printf("  %-16s %14s %16s %14s\n", "channel", "shared VM",
                "shared-core CVM", "core-gapped");
    for (Channel c :
         {Channel::L1d, Channel::L1i, Channel::L2, Channel::Tlb,
          Channel::Btb, Channel::StoreBuffer, Channel::Llc,
          Channel::StagingBuffer}) {
        std::printf("  %-16s", channelName(c));
        for (const LeakReport& r : reports) {
            const ChannelReading& ch = r.at(c);
            const double mean =
                ch.probes > 0 ? static_cast<double>(ch.victimEntriesSeen) /
                                    static_cast<double>(ch.probes)
                              : 0.0;
            std::printf(" %14.1f", mean);
        }
        const bool shared_struct =
            c == Channel::Llc || c == Channel::StagingBuffer;
        std::printf("   %s\n",
                    shared_struct ? "(shared: out of scope)" : "");
    }
    std::printf("\nclaims verified:\n");
    std::printf("  - shared VM leaks per-core state:        %s\n",
                reports[0].anySameCoreLeak() ? "yes (as expected)"
                                             : "NO (unexpected)");
    std::printf("  - CVM flushes cover only predictors:     %s\n",
                reports[1].at(Channel::Btb).victimEntriesSeen == 0 &&
                        reports[1].at(Channel::L1d).leaked()
                    ? "yes (caches/TLB still leak)"
                    : "NO (unexpected)");
    std::printf("  - core gapping closes all same-core:     %s\n",
                !reports[2].anySameCoreLeak() ? "yes (zero residue)"
                                              : "NO (unexpected)");
    std::printf("  - CrossTalk staging buffer remains open: %s\n",
                reports[2].at(Channel::StagingBuffer).leaked()
                    ? "yes (as the paper concedes)"
                    : "NO (unexpected)");
    cg::bench::sectionEnd();
    return 0;
}
