/**
 * @file
 * Extension ablation (not in the paper's evaluation): the cost of the
 * coarse-timescale vCPU-to-core rebinding that section 3 defers to
 * future work. Measures the guest-visible stall of one migration and
 * the throughput lost relative to an undisturbed run, supporting the
 * paper's intuition that rare rebinds (10s-of-seconds scale) are
 * practically free while fixing long-term fragmentation.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

Proc<void>
rebindAt(Testbed& bed, VmInstance& vm, Tick when, sim::CoreId to,
         Tick& stall)
{
    co_await bed.started().wait();
    co_await sim::Delay{when};
    guest::VCpu& v = vm.vcpu(0);
    const Tick before = v.guestCpuTime;
    const Tick t0 = bed.sim().now();
    (void)co_await vm.gapped->rebindVcpu(0, to);
    // Guest-visible stall: wall time of the migration minus the guest
    // CPU time it still managed to accrue (none, while parked).
    stall = (bed.sim().now() - t0) - (v.guestCpuTime - before);
}

double
runScore(bool with_rebind, Tick& stall)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("cm", 2); // 1 vCPU + 1 host core
    CoreMarkPro::Config wcfg;
    wcfg.duration = 1 * sim::sec;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    if (with_rebind) {
        bed.sim().spawn("rebinder",
                        rebindAt(bed, vm, 500 * msec, 3, stall));
    }
    bed.spawnStart();
    bed.run(20 * sim::sec);
    return cm.result().score;
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Extension: coarse-timescale vCPU rebinding cost",
           "section 3 (deferred future work)");
    Tick stall = 0;
    const double base = runScore(false, stall);
    const double moved = runScore(true, stall);
    std::printf("  CoreMark score, undisturbed 1 s run: %10.0f\n",
                base);
    std::printf("  CoreMark score, one rebind at 0.5 s: %10.0f "
                "(%.2f%% lost)\n",
                moved, base > 0 ? (base - moved) / base * 100.0 : 0.0);
    std::printf("  guest-visible migration stall:       %10.2f ms\n",
                sim::toMsec(stall));
    cg::bench::note("one migration costs a hotplug round trip (a few ms "
                    "here); at the 10s-of-seconds cadence the paper "
                    "envisages, the amortised overhead is < 0.1%.");
    cg::bench::sectionEnd();
    return 0;
}
