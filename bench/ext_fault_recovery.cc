/**
 * @file
 * Extension: recovery cost of the self-healing control plane.
 * For each injectable fault site (sim/fault.hh) this harness runs a
 * fault-heavy guest workload with exactly one fault injected, and
 * reports how quickly the control plane detected and recovered from
 * it, plus the end-to-end slowdown against a fault-free run of the
 * same workload. IPI faults are absorbed by the redundant wake paths
 * (re-ring + bounded waits), so they show no explicit detection — the
 * slowdown column is the whole story there.
 */

#include <algorithm>
#include <vector>

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

constexpr int kRounds = 24;

/** Rounds of page faults plus compute: exits, doorbell rings, sync
 * RPCs, and RMI calls keep flowing, so every fault site stays hot. */
Proc<void>
faultingWorker(Testbed& bed, guest::VCpu& v, int idx, Tick& finished,
               std::uint64_t& rounds)
{
    co_await bed.started().wait();
    for (int r = 0; r < kRounds; ++r) {
        for (int p = 0; p < 3; ++p) {
            co_await v.pageFault(
                0x50000000ull +
                static_cast<std::uint64_t>(idx * 4096 + r * 3 + p) *
                    4096);
        }
        co_await sim::Compute{2 * msec};
        ++rounds;
    }
    finished = bed.sim().now();
    co_await v.shutdown();
}

/** Endless variant for the monitor-hang run: the wedged monitor never
 * lets its vCPU finish, so completion is the wrong success metric. */
Proc<void>
endlessWorker(Testbed& bed, guest::VCpu& v, int idx)
{
    co_await bed.started().wait();
    for (std::uint64_t i = 0;; ++i) {
        co_await v.pageFault(
            0x80000000ull +
            static_cast<std::uint64_t>(idx * 512 + i % 256) * 4096);
        co_await sim::Compute{3 * msec};
    }
}

Proc<void>
teardownThenFlag(cg::core::GappedVm& g, bool& done)
{
    co_await g.teardown();
    done = true;
}

Proc<void>
terminateThenStamp(cg::core::GappedVm& g, sim::Simulation& s,
                   Tick& finished)
{
    co_await g.terminate();
    finished = s.now();
}

struct Row {
    bool completed = false;
    Tick elapsed = 0;           //!< started -> last worker finished
    std::uint64_t rounds = 0;
    std::uint64_t injected = 0;
    double detectUs = -1.0;     //!< -1: no explicit detection event
    double recoverUs = -1.0;
};

/** Run the fixed workload with one fault from `plan` injected; empty
 * plan is the fault-free baseline. */
Row
run(const std::string& plan, sim::FaultSite site)
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = 17;
    Testbed bed(cfg);
    if (!plan.empty())
        bed.sim().faults().arm(5, sim::FaultPlan::parse(plan));
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("rec", 4, vcfg);
    const int vcpus = vm.vm->numVcpus();
    Tick start = bed.sim().now();
    std::vector<Tick> finished(static_cast<std::size_t>(vcpus), 0);
    Row r;
    for (int i = 0; i < vcpus; ++i) {
        vm.vcpu(i).startGuest(
            "worker", faultingWorker(bed, vm.vcpu(i), i,
                                     finished[static_cast<size_t>(i)],
                                     r.rounds));
    }
    bed.spawnStart();
    bed.run(bed.sim().now() + 2 * sim::sec);
    r.completed = bed.allShutdown();
    for (Tick f : finished)
        r.elapsed = std::max(r.elapsed, f > start ? f - start : Tick{0});
    bool torn = false;
    bed.sim().spawn("teardown",
                    teardownThenFlag(*vm.gapped, torn));
    bed.run(bed.sim().now() + 1 * sim::sec);
    const sim::FaultPlan& faults = bed.sim().faults();
    r.injected = faults.injected(site);
    if (faults.detectionLatency(site).count() > 0)
        r.detectUs = faults.detectionLatency(site).meanUs();
    if (faults.recoveryLatency(site).count() > 0)
        r.recoverUs = faults.recoveryLatency(site).meanUs();
    r.completed = r.completed && torn;
    return r;
}

/** Monitor-hang is recovered by terminate()'s escalation, not by the
 * workload finishing: wedge the monitor mid-run, then terminate. */
Row
runMonitorHang()
{
    Testbed::Config cfg;
    cfg.numCores = 6;
    cfg.mode = RunMode::CoreGapped;
    cfg.seed = 17;
    Testbed bed(cfg);
    bed.sim().faults().arm(
        5, sim::FaultPlan::parse("monitor-hang:from=20ms:max=1"));
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("rec", 4, vcfg);
    for (int i = 0; i < vm.vm->numVcpus(); ++i)
        vm.vcpu(i).startGuest("worker",
                              endlessWorker(bed, vm.vcpu(i), i));
    bed.spawnStart();
    bed.run(bed.sim().now() + 100 * msec);
    Tick done_at = 0;
    const Tick t0 = bed.sim().now();
    bed.sim().spawn("killer",
                    terminateThenStamp(*vm.gapped, bed.sim(), done_at));
    bed.run(bed.sim().now() + 5 * sim::sec);
    const sim::FaultPlan& faults = bed.sim().faults();
    Row r;
    r.completed = done_at != 0;
    r.elapsed = done_at > t0 ? done_at - t0 : Tick{0};
    r.injected = faults.injected(sim::FaultSite::MonitorHang);
    if (faults.detectionLatency(sim::FaultSite::MonitorHang).count())
        r.detectUs = faults.detectionLatency(sim::FaultSite::MonitorHang)
                         .meanUs();
    if (faults.recoveryLatency(sim::FaultSite::MonitorHang).count())
        r.recoverUs = faults.recoveryLatency(sim::FaultSite::MonitorHang)
                          .meanUs();
    return r;
}

struct SiteCase {
    sim::FaultSite site;
    const char* plan;
};

void
printRow(const char* label, const Row& r, const Row& base)
{
    char detect[32];
    char recover[32];
    if (r.detectUs >= 0)
        std::snprintf(detect, sizeof(detect), "%10.2f", r.detectUs);
    else
        std::snprintf(detect, sizeof(detect), "%10s", "absorbed");
    if (r.recoverUs >= 0)
        std::snprintf(recover, sizeof(recover), "%10.2f", r.recoverUs);
    else
        std::snprintf(recover, sizeof(recover), "%10s", "-");
    const double slowdown =
        base.elapsed > 0
            ? static_cast<double>(r.elapsed) /
                  static_cast<double>(base.elapsed)
            : 0.0;
    std::printf("  %-22s %8llu %s %s %12.3f %9.3fx  %s\n", label,
                static_cast<unsigned long long>(r.injected), detect,
                recover, sim::toMsec(r.elapsed), slowdown,
                r.completed ? "ok" : "FAILED");
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Extension: fault-recovery latency of the control plane",
           "robustness extension (no paper counterpart)");

    const Row base = run("", sim::FaultSite::IpiDrop);
    std::printf("  %-22s %8s %10s %10s %12s %10s\n", "fault site",
                "injected", "detect us", "recover us", "elapsed ms",
                "slowdown");
    printRow("none (baseline)", base, base);

    const SiteCase cases[] = {
        {sim::FaultSite::IpiDrop, "ipi-drop:nth=4:max=1"},
        {sim::FaultSite::IpiDelay, "ipi-delay:nth=7:param=20us:max=1"},
        {sim::FaultSite::DoorbellLost, "doorbell-lost:nth=3:max=1"},
        {sim::FaultSite::SyncRpcStall, "syncrpc-stall:nth=5:max=1"},
        {sim::FaultSite::RmiTransientError,
         "rmi-transient-error:nth=6:max=1"},
        {sim::FaultSite::HotplugOfflineFail,
         "hotplug-offline-fail:nth=1:max=1"},
        {sim::FaultSite::HotplugOnlineFail,
         "hotplug-online-fail:nth=1:max=1"},
    };
    bool all_ok = base.completed && base.rounds == 3u * kRounds;
    for (const SiteCase& c : cases) {
        const Row r = run(c.plan, c.site);
        const char* name = sim::faultSiteName(c.site);
        printRow(name, r, base);
        all_ok = all_ok && r.completed && r.injected >= 1 &&
                 r.rounds == 3u * kRounds;
        if (r.recoverUs >= 0)
            cg::bench::jsonRow(std::string("recover-us/") + name, 0.0,
                               r.recoverUs);
        cg::bench::jsonRow(std::string("slowdown/") + name, 1.0,
                           base.elapsed > 0
                               ? static_cast<double>(r.elapsed) /
                                     static_cast<double>(base.elapsed)
                               : 0.0);
    }

    const Row hang = runMonitorHang();
    printRow("monitor-hang", hang, base);
    all_ok = all_ok && hang.completed && hang.injected >= 1 &&
             hang.recoverUs >= 0;
    cg::bench::jsonRow("recover-us/monitor-hang", 0.0, hang.recoverUs);

    cg::bench::note("every fault is injected exactly once mid-run; "
                    "'absorbed' means the redundant wake paths "
                    "(watchdog re-ring, bounded poke timeouts, RMI "
                    "retries) hid the fault with no dedicated "
                    "detection event. monitor-hang's elapsed column is "
                    "the terminate() escalation time, not workload "
                    "completion.");
    cg::bench::sectionEnd();
    if (!all_ok) {
        std::fprintf(stderr, "ext_fault_recovery: FAILED — a run did "
                             "not complete or a fault was not "
                             "injected\n");
        return 1;
    }
    return 0;
}
