/**
 * @file
 * Extension: direct interrupt delivery for SR-IOV (section 5.3
 * anticipates it as "further changes to KVM and RMM"). The paper
 * attributes the core-gapped SR-IOV latency penalty (10-20 us over
 * the shared baseline) to the host-mediated interrupt path; this
 * harness shows direct delivery reclaiming it.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/netpipe.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;

namespace {

struct Row {
    NetPipe::Result np;
    std::uint64_t irqExits = 0;
    std::uint64_t direct = 0;
};

Row
run(RunMode mode, bool direct_irq, std::uint64_t bytes)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("np", 16);
    bed.addSriovNic(vm, direct_irq);
    SriovGuestNic nic(*vm.sriov);
    RemoteHost remote(bed.sim(), bed.fabric(),
                      bed.machine().costs().remoteStack);
    NetPipeResponder responder(remote);
    NetPipe::Config ncfg;
    ncfg.messageBytes = bytes;
    ncfg.iterations = 25;
    NetPipe np(bed, vm, nic, remote, ncfg);
    np.install();
    bed.spawnStart();
    bed.run(30 * sim::sec);
    Row r;
    r.np = np.result();
    if (mode != RunMode::SharedCore)
        r.irqExits = bed.rmm().stats().irqRelatedExitsToHost.value();
    if (vm.gapped)
        r.direct = vm.gapped->directInjections();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Extension: direct interrupt delivery over SR-IOV",
           "section 5.3 (anticipated further changes to KVM and RMM)");
    std::printf("  %-10s | %13s | %13s | %17s\n", "", "shared",
                "gapped", "gapped + direct");
    std::printf("  %-10s | %13s | %13s | %17s\n", "msg bytes",
                "lat us", "lat us", "lat us");
    double closed = 0, gap = 0;
    for (std::uint64_t bytes : {64ull, 1448ull, 16384ull, 262144ull}) {
        Row s = run(RunMode::SharedCore, false, bytes);
        Row g = run(RunMode::CoreGapped, false, bytes);
        Row d = run(RunMode::CoreGapped, true, bytes);
        std::printf("  %-10llu | %13.1f | %13.1f | %17.1f\n",
                    static_cast<unsigned long long>(bytes),
                    s.np.latencyUs, g.np.latencyUs, d.np.latencyUs);
        if (bytes == 1448) {
            gap = g.np.latencyUs - s.np.latencyUs;
            closed = g.np.latencyUs - d.np.latencyUs;
        }
    }
    std::printf("\n  at 1448 B the indirect interrupt path costs "
                "+%.1f us over shared; direct delivery reclaims "
                "%.1f us of it (%.0f%%), with zero interrupt-related "
                "exits on the receive path.\n",
                gap, closed, gap > 0 ? closed / gap * 100.0 : 0.0);
    cg::bench::sectionEnd();
    return 0;
}
