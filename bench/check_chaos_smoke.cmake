# Validates the bench_chaos_smoke output: the observed testbed must
# have armed the fault plan (fault stats registered in the dump) and
# produced all three stat families.
# Run as: cmake -DSTATS=<path> -P check_chaos_smoke.cmake

if(NOT DEFINED STATS)
    message(FATAL_ERROR "pass -DSTATS=<path>")
endif()
if(NOT EXISTS "${STATS}")
    message(FATAL_ERROR "missing output file: ${STATS}")
endif()

file(READ "${STATS}" stats_body)
foreach(family "faults.injected." "faults.detected." "faults.recovered.")
    if(NOT stats_body MATCHES "${family}")
        message(FATAL_ERROR
            "stats dump has no ${family}* rows: the fault plan was "
            "not armed in the observed testbed")
    endif()
endforeach()

message(STATUS "chaos smoke stats look good")
