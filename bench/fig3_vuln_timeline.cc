/**
 * @file
 * Fig. 3: the timeline of transient-execution vulnererabilities and CPU
 * bugs that broke security isolation, 2018-2024, annotated with the
 * paper's key observation: only NetSpectre and CrossTalk demonstrated
 * cross-core leaks in typical cloud settings.
 */

#include "attacks/catalog.hh"
#include "bench/common.hh"

using namespace cg::attacks;
using cg::bench::banner;

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Fig. 3: processor vulnerability timeline",
           "fig. 3, section 2.2");
    for (int year = 2018; year <= 2024; ++year) {
        std::printf("  %d |", year);
        for (const auto& v : vulnerabilityCatalog()) {
            if (v.year != year)
                continue;
            std::printf(" %s%s", v.name.c_str(),
                        v.scope == Scope::CrossCore     ? " [CROSS-CORE]"
                        : v.scope == Scope::Remote      ? " [REMOTE]"
                        : v.scope == Scope::SiblingSmt  ? " [SMT]"
                                                        : "");
            std::printf(";");
        }
        std::printf("\n");
    }
    std::printf("\n  per-year counts: ");
    for (int year = 2018; year <= 2024; ++year)
        std::printf("%d:%d  ", year, countInYear(year));
    std::printf("\n");

    const auto mitigated = mitigatedByCoreGapping();
    const auto residual = notMitigatedByCoreGapping();
    std::printf("\n  total catalogued: %zu\n",
                vulnerabilityCatalog().size());
    std::printf("  mitigated by core gapping: %zu\n", mitigated.size());
    std::printf("  NOT mitigated (cross-core/remote residue): %zu\n",
                residual.size());
    for (const auto& v : residual) {
        std::printf("    - %s (%d, %s via %s)\n", v.name.c_str(),
                    v.year, scopeName(v.scope), v.channel.c_str());
    }
    cg::bench::note("paper: 30+ of the vulnerabilities are not "
                    "exploitable across core boundaries; CrossTalk is "
                    "the lone cloud-relevant cross-core leak.");
    cg::bench::sectionEnd();
    return 0;
}
