/**
 * @file
 * Extension: Intel-TDX-style address-space management (section 6.1).
 * The paper expects a core-gapped TDX to perform moderately better
 * than core-gapped CCA because the host edits untrusted page-table
 * levels directly, needing fewer cross-core RPCs per stage-2 fault.
 * This harness measures a fault-heavy first-touch workload both ways.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/testbed.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Proc;
using sim::Tick;
using sim::usec;

namespace {

/** First-touch a sparse region: every page faults; every 2 MiB region
 * also needs fresh intermediate tables. */
Proc<void>
firstTouch(Testbed& bed, guest::VCpu& v, int pages, Tick& elapsed)
{
    co_await bed.started().wait();
    const Tick t0 = bed.sim().now();
    for (int i = 0; i < pages; ++i) {
        // Stride 2 MiB so each fault needs a new leaf table.
        co_await v.pageFault(0x100000000ull +
                             static_cast<std::uint64_t>(i) *
                                 (2ull << 20));
        co_await sim::Compute{5 * usec}; // touch the fresh page
    }
    elapsed = bed.sim().now() - t0;
    co_await v.shutdown();
}

struct Row {
    Tick elapsed = 0;
    std::uint64_t syncCalls = 0;
};

Row
run(bool tdx_style, int pages = 400)
{
    Testbed::Config cfg;
    cfg.numCores = 4;
    cfg.mode = RunMode::CoreGapped;
    Testbed bed(cfg);
    guest::VmConfig vcfg;
    vcfg.tickPeriod = 0;
    VmInstance& vm = bed.createVm("ft", 2, vcfg);
    // Flip the address-space management style (the transport stays
    // the core-gapped sync RPC either way).
    vm.kvm->setTdxStylePageTables(tdx_style);
    Row r;
    Tick elapsed = 0;
    vm.vcpu(0).startGuest("toucher",
                          firstTouch(bed, vm.vcpu(0), pages, elapsed));
    bed.spawnStart();
    bed.run(60 * sim::sec);
    r.elapsed = elapsed;
    r.syncCalls = vm.gapped->syncRpc().callsServed();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Extension: TDX-style page tables vs CCA-style RMIs",
           "section 6.1 (discussion)");
    Row cca = run(false);
    Row tdx = run(true);
    std::printf("  400 first-touch faults (2 MiB stride, cold "
                "tables):\n");
    std::printf("  %-34s %10.2f ms   %6llu sync RPCs\n",
                "Arm-CCA style (every RTT op an RMI)",
                sim::toMsec(cca.elapsed),
                static_cast<unsigned long long>(cca.syncCalls));
    std::printf("  %-34s %10.2f ms   %6llu sync RPCs\n",
                "TDX style (host-managed tables)",
                sim::toMsec(tdx.elapsed),
                static_cast<unsigned long long>(tdx.syncCalls));
    std::printf("\n  %.1fx fewer cross-core RPCs, %.2fx end-to-end "
                "fault-path speedup.\n",
                tdx.syncCalls > 0
                    ? static_cast<double>(cca.syncCalls) /
                          static_cast<double>(tdx.syncCalls)
                    : 0.0,
                tdx.elapsed > 0 ? sim::toMsec(cca.elapsed) /
                                      sim::toMsec(tdx.elapsed)
                                : 0.0);
    cg::bench::note("section 6.1 predicts \"moderately better "
                    "relative performance, due to fewer cross-core "
                    "RPCs\": the RPC count indeed halves, but in this "
                    "model the end-to-end gain is small because each "
                    "fault's cost is dominated by the asynchronous "
                    "run-call exit (~25 us), not the ~0.26 us "
                    "synchronous page-table RPCs it saves.");
    cg::bench::sectionEnd();
    return 0;
}
