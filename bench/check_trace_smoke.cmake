# Validates the bench_trace_smoke outputs: the trace file must be a
# Chrome trace_event JSON object and the stats dump must be non-empty.
# Run as: cmake -DTRACE=<path> -DSTATS=<path> -P check_trace_smoke.cmake

foreach(var TRACE STATS)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "pass -D${var}=<path>")
    endif()
    if(NOT EXISTS "${${var}}")
        message(FATAL_ERROR "missing output file: ${${var}}")
    endif()
endforeach()

file(READ "${TRACE}" trace_body)
if(NOT trace_body MATCHES "^\\{\"traceEvents\": \\[")
    message(FATAL_ERROR "trace is not trace_event object format")
endif()
if(NOT trace_body MATCHES "\"displayTimeUnit\"")
    message(FATAL_ERROR "trace is missing displayTimeUnit")
endif()
if(NOT trace_body MATCHES "\"ph\": \"M\"")
    message(FATAL_ERROR "trace has no metadata events")
endif()

file(READ "${STATS}" stats_body)
string(LENGTH "${stats_body}" stats_len)
if(stats_len EQUAL 0)
    message(FATAL_ERROR "stats dump is empty")
endif()

message(STATUS "trace + stats smoke outputs look good")
