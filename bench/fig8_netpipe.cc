/**
 * @file
 * Fig. 8: NetPIPE-style TCP ping-pong over the two NIC paths (emulated
 * virtio vs SR-IOV passthrough), shared-core baseline vs core-gapped
 * CVM. The paper's shapes: virtio suffers up to 2x latency and 30-70%
 * lower throughput core-gapped (exit- and emulation-intensive), while
 * SR-IOV stays within 10-20 us of the baseline and edges ahead on
 * throughput for larger, more compute-intensive messages.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/netpipe.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;

namespace {

NetPipe::Result
run(RunMode mode, bool sriov, std::uint64_t bytes)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("np", 16);
    std::unique_ptr<GuestNic> nic;
    if (sriov) {
        bed.addSriovNic(vm);
        nic = std::make_unique<SriovGuestNic>(*vm.sriov);
    } else {
        bed.addVirtioNet(vm);
        nic = std::make_unique<VirtioGuestNic>(*vm.vnet);
    }
    RemoteHost remote(bed.sim(), bed.fabric(),
                      bed.machine().costs().remoteStack);
    NetPipeResponder responder(remote);
    NetPipe::Config ncfg;
    ncfg.messageBytes = bytes;
    ncfg.iterations = bytes >= (1u << 20) ? 8 : 20;
    NetPipe np(bed, vm, *nic, remote, ncfg);
    np.install();
    bed.spawnStart();
    bed.run(60 * sim::sec);
    return np.result();
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Fig. 8: NetPIPE TCP latency and throughput",
           "fig. 8, section 5.3");
    std::printf("  %-10s | %-23s | %-23s | %-23s | %-23s\n", "",
                "virtio shared", "virtio gapped", "sriov shared",
                "sriov gapped");
    std::printf("  %-10s | %10s %12s | %10s %12s | %10s %12s | %10s "
                "%12s\n",
                "msg bytes", "lat us", "Gbps", "lat us", "Gbps",
                "lat us", "Gbps", "lat us", "Gbps");
    double v_ratio_small = 0, s_diff_small = 0;
    for (std::uint64_t bytes :
         {64ull, 256ull, 1448ull, 4096ull, 16384ull, 65536ull,
          262144ull, 1048576ull, 4194304ull}) {
        NetPipe::Result vs = run(RunMode::SharedCore, false, bytes);
        NetPipe::Result vg = run(RunMode::CoreGapped, false, bytes);
        NetPipe::Result ss = run(RunMode::SharedCore, true, bytes);
        NetPipe::Result sg = run(RunMode::CoreGapped, true, bytes);
        std::printf("  %-10llu | %10.1f %12.2f | %10.1f %12.2f | "
                    "%10.1f %12.2f | %10.1f %12.2f\n",
                    static_cast<unsigned long long>(bytes),
                    vs.latencyUs, vs.throughputGbps, vg.latencyUs,
                    vg.throughputGbps, ss.latencyUs, ss.throughputGbps,
                    sg.latencyUs, sg.throughputGbps);
        if (bytes == 1448) {
            v_ratio_small =
                vs.latencyUs > 0 ? vg.latencyUs / vs.latencyUs : 0;
            s_diff_small = sg.latencyUs - ss.latencyUs;
        }
    }
    std::printf("\nshape checks:\n");
    std::printf("  virtio gapped/shared latency at 1448 B: %.2fx "
                "(paper: up to 2x)\n",
                v_ratio_small);
    std::printf("  sriov gapped - shared latency at 1448 B: %.1f us "
                "(paper: within 10-20 us)\n",
                s_diff_small);
    cg::bench::sectionEnd();
    return 0;
}
