/**
 * @file
 * Shared helpers for the benchmark binaries: table formatting and
 * paper-vs-measured comparison rows.
 *
 * Note on methodology: these harnesses report *simulated* time and
 * throughput from the discrete-event model, not host wall-clock time —
 * which is why they print tables directly instead of wrapping runs in
 * google-benchmark's timing loop (that would measure the simulator,
 * not the system under study). A google-benchmark microbenchmark of
 * the simulation kernel itself lives in sim_microbench.cc.
 */

#ifndef CG_BENCH_COMMON_HH
#define CG_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

namespace cg::bench {

inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================"
                "============================\n");
}

inline void
note(const std::string& text)
{
    std::printf("note: %s\n", text.c_str());
}

/** "paper X, measured Y" comparison row. */
inline void
compareRow(const std::string& what, double paper, double measured,
           const std::string& unit)
{
    const double ratio = paper != 0.0 ? measured / paper : 0.0;
    std::printf("  %-44s paper %10.2f %-6s measured %10.2f %-6s "
                "(x%.2f)\n",
                what.c_str(), paper, unit.c_str(), measured,
                unit.c_str(), ratio);
}

inline void
sectionEnd()
{
    std::printf("\n");
}

} // namespace cg::bench

#endif // CG_BENCH_COMMON_HH
