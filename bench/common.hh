/**
 * @file
 * Shared helpers for the benchmark binaries: table formatting,
 * paper-vs-measured comparison rows, and machine-readable JSON output.
 *
 * Note on methodology: these harnesses report *simulated* time and
 * throughput from the discrete-event model, not host wall-clock time —
 * which is why they print tables directly instead of wrapping runs in
 * google-benchmark's timing loop (that would measure the simulator,
 * not the system under study). A google-benchmark microbenchmark of
 * the simulation kernel itself lives in sim_microbench.cc.
 *
 * Every harness calls initHarness(argc, argv) first. With
 * `--json <path>` the comparison rows recorded via compareRow()/
 * jsonRow() are additionally written to <path> as a JSON array of
 * {bench, metric, paper, measured} objects, so successive PRs can
 * track the perf trajectory mechanically (BENCH_*.json files).
 */

#ifndef CG_BENCH_COMMON_HH
#define CG_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "sim/fault.hh"
#include "sim/trace.hh"

namespace cg::bench {

/** One paper-vs-measured data point, for the JSON report. */
struct JsonRow {
    std::string metric;
    double paper;
    double measured;
};

namespace detail {

inline std::string json_path;   // empty: no JSON output
inline std::string bench_name;  // argv[0] basename
inline std::vector<JsonRow> json_rows;
inline bool quick_requested = false;

/** Minimal JSON string escaping (quotes and backslashes). */
inline std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

inline void
writeJsonReport()
{
    if (json_path.empty())
        return;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write JSON report to '%s'\n",
                     json_path.c_str());
        return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
        const JsonRow& r = json_rows[i];
        std::fprintf(f,
                     "  {\"bench\": \"%s\", \"metric\": \"%s\", "
                     "\"paper\": %.6g, \"measured\": %.6g}%s\n",
                     jsonEscape(bench_name).c_str(),
                     jsonEscape(r.metric).c_str(), r.paper, r.measured,
                     i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
}

} // namespace detail

/**
 * Parse common harness flags and register the JSON report writer to
 * run at exit. Call first in main().
 *
 *   --json <path>    write the compareRow()/jsonRow() points as JSON
 *   --stats <path>   dump the stats registry of the first Testbed the
 *                    run constructs (".json" suffix selects JSON)
 *   --trace <path>   record that Testbed's tracepoints and write them
 *                    as Chrome trace_event JSON (chrome://tracing)
 *   --faults <plan>  arm the fault plan (FaultPlan::parse grammar) in
 *                    every Testbed the run constructs
 *   --fault-seed <n> seed for the plan's probabilistic triggers
 *                    (default 1; mixed with each Testbed's sim seed)
 *   --check          arm the isolation checker (check::IsolationChecker)
 *                    in every Testbed; leak edges land in the stats
 *                    dump ("check.leakEdges.*") and the trace
 *   --check-abort    as --check, but abort on the first leak edge
 *   --quick          shrink the run for smoke tests (harnesses that
 *                    support it check bench::quick() and cut sweep
 *                    points / durations; others ignore it)
 */
inline void
initHarness(int argc, char** argv)
{
    const char* slash = std::strrchr(argv[0], '/');
    detail::bench_name = slash ? slash + 1 : argv[0];
    std::string stats_path;
    std::string trace_path;
    std::string fault_plan;
    std::uint64_t fault_seed = 1;
    bool check_requested = false;
    bool check_abort = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            detail::json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--stats") == 0 &&
                   i + 1 < argc) {
            stats_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--faults") == 0 &&
                   i + 1 < argc) {
            fault_plan = argv[++i];
            if (fault_plan == "help" || fault_plan == "list") {
                std::printf("fault sites (plan grammar: "
                            "\"<site>[:key=val]...;...\" with keys "
                            "nth=, p=, from=, until=, max=, param=):\n"
                            "%s",
                            cg::sim::faultSiteListText().c_str());
                std::exit(0);
            }
        } else if (std::strcmp(argv[i], "--fault-seed") == 0 &&
                   i + 1 < argc) {
            fault_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check_requested = true;
        } else if (std::strcmp(argv[i], "--check-abort") == 0) {
            check_requested = true;
            check_abort = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            detail::quick_requested = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] [--stats <path>] "
                         "[--trace <path>] [--faults <plan>] "
                         "[--fault-seed <n>] [--check] "
                         "[--check-abort] [--quick]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    cg::sim::ObservabilityRequest::configure(stats_path, trace_path);
    if (!fault_plan.empty())
        cg::sim::FaultPlanRequest::configure(fault_plan, fault_seed);
    if (check_requested)
        cg::check::CheckRequest::configure(check_abort);
    std::atexit(detail::writeJsonReport);
}

/** Was --quick passed? Harnesses shrink sweeps/durations when set. */
inline bool
quick()
{
    return detail::quick_requested;
}

/** Record a data point for the JSON report only (no table output). */
inline void
jsonRow(const std::string& metric, double paper, double measured)
{
    detail::json_rows.push_back(JsonRow{metric, paper, measured});
}

inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================"
                "============================\n");
}

inline void
note(const std::string& text)
{
    std::printf("note: %s\n", text.c_str());
}

/** "paper X, measured Y" comparison row; also recorded for --json. */
inline void
compareRow(const std::string& what, double paper, double measured,
           const std::string& unit)
{
    const double ratio = paper != 0.0 ? measured / paper : 0.0;
    std::printf("  %-44s paper %10.2f %-6s measured %10.2f %-6s "
                "(x%.2f)\n",
                what.c_str(), paper, unit.c_str(), measured,
                unit.c_str(), ratio);
    jsonRow(what, paper, measured);
}

inline void
sectionEnd()
{
    std::printf("\n");
}

} // namespace cg::bench

#endif // CG_BENCH_COMMON_HH
