/**
 * @file
 * Fig. 7: scaling to multiple VMs — aggregate CoreMark-PRO score for an
 * increasing count of 4-core VMs/CVMs. In the core-gapped
 * configuration every VMM is pinned to one shared host core (up to 15
 * VMMs here; the paper shows 16 on a larger part), demonstrating that
 * a single host core can service many CVMs thanks to asynchronous
 * calls and delegation.
 */

#include <iterator>

#include "bench/common.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace host = cg::host;
using namespace cg::workloads;
using cg::bench::banner;
using sim::Tick;

namespace {

double
aggregate(RunMode mode, int num_vms)
{
    Testbed::Config cfg;
    cfg.numCores = 64;
    cfg.mode = mode;
    Testbed bed(cfg);
    std::vector<std::unique_ptr<CoreMarkPro>> works;
    for (int k = 0; k < num_vms; ++k) {
        VmInstance* vm = nullptr;
        if (isGapped(mode)) {
            // 4 dedicated cores per CVM; every VMM shares host core 0.
            std::vector<sim::CoreId> guests;
            for (int i = 0; i < 4; ++i)
                guests.push_back(1 + 4 * k + i);
            vm = &bed.createVmOn(sim::strFormat("vm%d", k), guests,
                                 host::CpuMask::single(0), 4);
        } else {
            vm = &bed.createVm(sim::strFormat("vm%d", k), 4);
        }
        CoreMarkPro::Config wcfg;
        wcfg.duration = 1 * sim::sec;
        works.push_back(
            std::make_unique<CoreMarkPro>(bed, *vm, wcfg));
        works.back()->install();
    }
    bed.spawnStart();
    bed.run(10 * sim::sec);
    double total = 0.0;
    for (const auto& w : works)
        total += w->result().score;
    return total;
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Fig. 7: aggregate CoreMark-PRO for K 4-core VMs",
           "fig. 7, section 5.2");
    std::printf("  %-6s %14s %14s %10s\n", "VMs", "shared",
                "core-gapped", "gap/shr");
    const int counts[] = {1, 2, 4, 8, 12, 15};
    const std::size_t nk = std::size(counts);
    // Independent sweep points (one Testbed each): job 2i is the
    // shared run for counts[i], job 2i+1 the core-gapped run.
    const auto scores = sim::ParallelRunner::mapIndexed<double>(
        2 * nk, [&](std::size_t i) {
            return aggregate(i % 2 == 0 ? RunMode::SharedCore
                                        : RunMode::CoreGapped,
                             counts[i / 2]);
        });
    double first_gapped = 0.0;
    int first_k = 0;
    double last_gapped = 0.0;
    int last_k = 0;
    for (std::size_t i = 0; i < nk; ++i) {
        const int k = counts[i];
        const double s = scores[2 * i];
        const double g = scores[2 * i + 1];
        std::printf("  %-6d %14.0f %14.0f %10.2f\n", k, s, g,
                    s > 0 ? g / s : 0.0);
        if (first_k == 0) {
            first_k = k;
            first_gapped = g;
        }
        last_k = k;
        last_gapped = g;
    }
    const double linearity =
        (last_gapped / last_k) / (first_gapped / first_k);
    std::printf("\n  gapped per-VM score at %d VMs vs %d VM: %.2f "
                "(paper: linear scaling; one host core serves all "
                "VMMs without harming throughput)\n",
                last_k, first_k, linearity);
    cg::bench::jsonRow("gapped per-VM linearity (15 vs 1 VMs)", 1.0,
                       linearity);
    cg::bench::sectionEnd();
    return 0;
}
