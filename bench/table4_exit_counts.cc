/**
 * @file
 * Table 4: interrupt delegation effect on CoreMark-PRO exit counts
 * (core-gapped CVM, 15 vCPUs + 1 host core, ~4.5 s run, 5 seeds):
 *
 *                            Without delegation   With delegation
 *   Interrupt-related exits        33954 +- 161         390 +- 3
 *   Total exits                    37712 +- 504        1324 +- 60
 *
 * Interrupt-related exits come from the guest tick (2 per tick without
 * delegation) and host-initiated kicks; the remainder is console MMIO
 * and stage-2 faults.
 */

#include "bench/common.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "workloads/coremark.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;
using cg::bench::compareRow;
using sim::Proc;
using sim::Tick;
using sim::msec;

namespace {

/** Console chatter: periodic MMIO writes; every 2nd gets an echo IRQ
 * from the host side (a kick), as a console/ack device would cause. */
Proc<void>
consoleChatter(Testbed& bed, VmInstance& vm, int vcpu_idx, Tick period,
               Tick duration)
{
    co_await bed.started().wait();
    guest::VCpu& v = vm.vcpu(vcpu_idx);
    const Tick deadline = bed.sim().now() + duration;
    int n = 0;
    while (bed.sim().now() < deadline) {
        co_await sim::Delay{period};
        co_await v.mmioWrite(0x0a000000 + 0x10, 0x41, 1);
        if (++n % 2 == 0)
            vm.kvm->queueInjection(vcpu_idx, 44); // console IRQ
    }
}

struct Counts {
    double irq;
    double total;
};

Counts
runOnce(bool delegation, std::uint64_t seed)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = delegation ? RunMode::CoreGapped
                          : RunMode::CoreGappedNoDelegation;
    cfg.seed = seed;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("cmpro", 16); // 15 vCPUs + host core
    // A console device whose writes land in unclaimed MMIO space.
    cg::vmm::MmioRange console;
    console.base = 0x0a000000;
    console.size = 0x1000;
    console.onWrite = [](const cg::rmm::ExitInfo&) {};
    console.onRead = [](std::uint64_t, int) { return 0ull; };
    vm.kvm->mapMmio(console);
    vm.vcpu(0).setVirqHandler(44, [] {});

    const Tick duration = 4500 * msec;
    CoreMarkPro::Config wcfg;
    wcfg.duration = duration;
    CoreMarkPro cm(bed, vm, wcfg);
    cm.install();
    for (int i = 0; i < vm.numVcpus(); ++i) {
        bed.sim().spawn(sim::strFormat("console%d", i),
                        consoleChatter(bed, vm, i, 70 * msec,
                                       duration));
    }
    bed.spawnStart();
    bed.run(duration + 3 * sim::sec);
    Counts c;
    c.irq = static_cast<double>(
        bed.rmm().stats().irqRelatedExitsToHost.value());
    c.total =
        static_cast<double>(bed.rmm().stats().exitsToHost.value());
    return c;
}

void
meanStd(const std::vector<Counts>& runs, Counts& mean, Counts& sd)
{
    sim::Accumulator irq, total;
    for (const Counts& c : runs) {
        irq.sample(c.irq);
        total.sample(c.total);
    }
    mean = Counts{irq.mean(), total.mean()};
    sd = Counts{irq.stddev(), total.stddev()};
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Table 4: interrupt delegation effect on CoreMark-PRO",
           "table 4, sections 4.4 and 5.2");
    // 5 seeds x {without, with} delegation, each an independent
    // Testbed: fan the 10 runs across the pool. Seeds stay the
    // explicit 1..5 of the paper setup, so results match serial runs.
    const auto runs = sim::ParallelRunner::mapIndexed<Counts>(
        10, [](std::size_t i) {
            return runOnce(/*delegation=*/i % 2 == 1,
                           /*seed=*/1 + i / 2);
        });
    std::vector<Counts> without, with_d;
    for (std::size_t i = 0; i < runs.size(); ++i)
        (i % 2 == 0 ? without : with_d).push_back(runs[i]);
    Counts wo_m, wo_s, wi_m, wi_s;
    meanStd(without, wo_m, wo_s);
    meanStd(with_d, wi_m, wi_s);

    std::printf("  %-26s %22s %20s\n", "",
                "Without delegation", "With delegation");
    std::printf("  %-26s %12.0f +- %-6.0f %12.0f +- %-4.0f\n",
                "Interrupt-related exits", wo_m.irq, wo_s.irq, wi_m.irq,
                wi_s.irq);
    std::printf("  %-26s %12.0f +- %-6.0f %12.0f +- %-4.0f\n",
                "Total exits", wo_m.total, wo_s.total, wi_m.total,
                wi_s.total);
    std::printf("\npaper vs measured:\n");
    compareRow("irq exits, no delegation", 33954, wo_m.irq, "");
    compareRow("total exits, no delegation", 37712, wo_m.total, "");
    compareRow("irq exits, delegated", 390, wi_m.irq, "");
    compareRow("total exits, delegated", 1324, wi_m.total, "");
    const double reduction = wo_m.total / wi_m.total;
    std::printf("  total-exit reduction: paper 28x, measured %.0fx\n",
                reduction);
    cg::bench::sectionEnd();
    return 0;
}
