/**
 * @file
 * Fig. 9: IOzone-style sync read/write throughput to a virtio block
 * device (O_DIRECT). Paper shape: core-gapping pays for the exit- and
 * emulation-heavy path at small records and converges with the shared
 * baseline only on large (> 10 MiB) I/Os.
 */

#include "bench/common.hh"
#include "sim/simulation.hh"
#include "workloads/iozone.hh"

namespace sim = cg::sim;
namespace guest = cg::guest;
using namespace cg::workloads;
using cg::bench::banner;

namespace {

IoZone::Result
run(RunMode mode, std::uint64_t record, bool write)
{
    Testbed::Config cfg;
    cfg.numCores = 16;
    cfg.mode = mode;
    Testbed bed(cfg);
    VmInstance& vm = bed.createVm("io", 16);
    bed.addVirtioBlk(vm);
    IoZone::Config icfg;
    icfg.recordBytes = record;
    icfg.fileBytes = 512ull << 20;
    icfg.maxOps = 512;
    icfg.write = write;
    IoZone io(bed, vm, icfg);
    io.install();
    bed.spawnStart();
    bed.run(120 * sim::sec);
    return io.result();
}

} // namespace

int
main(int argc, char** argv)
{
    cg::bench::initHarness(argc, argv);
    banner("Fig. 9: IOzone sync read/write over virtio-blk (O_DIRECT)",
           "fig. 9, section 5.3");
    std::printf("  %-12s | %-21s | %-21s\n", "",
                "read MB/s", "write MB/s");
    std::printf("  %-12s | %10s %10s | %10s %10s\n", "record",
                "shared", "gapped", "shared", "gapped");
    double small_ratio = 0, large_ratio = 0;
    for (std::uint64_t record :
         {4096ull, 65536ull, 262144ull, 1048576ull, 4194304ull,
          16777216ull, 67108864ull}) {
        IoZone::Result rs = run(RunMode::SharedCore, record, false);
        IoZone::Result rg = run(RunMode::CoreGapped, record, false);
        IoZone::Result ws = run(RunMode::SharedCore, record, true);
        IoZone::Result wg = run(RunMode::CoreGapped, record, true);
        std::printf("  %-12llu | %10.1f %10.1f | %10.1f %10.1f\n",
                    static_cast<unsigned long long>(record),
                    rs.throughputMBps, rg.throughputMBps,
                    ws.throughputMBps, wg.throughputMBps);
        if (record == 65536)
            small_ratio = rs.throughputMBps > 0
                              ? rg.throughputMBps / rs.throughputMBps
                              : 0;
        if (record == 67108864)
            large_ratio = rs.throughputMBps > 0
                              ? rg.throughputMBps / rs.throughputMBps
                              : 0;
    }
    std::printf("\nshape checks:\n");
    std::printf("  gapped/shared read throughput at 64 KiB: %.2f "
                "(paper: well below 1)\n",
                small_ratio);
    std::printf("  gapped/shared read throughput at 64 MiB: %.2f "
                "(paper: converges to ~1 above 10 MiB)\n",
                large_ratio);
    cg::bench::sectionEnd();
    return 0;
}
