/**
 * @file
 * The attack laboratory: a co-tenant attacker VM probing
 * microarchitectural structures for a victim VM's residue.
 *
 * We cannot execute real speculation, but the paper's security argument
 * reduces to reachability: which tagged structures can an attacker
 * observe that still hold victim-domain entries without an intervening
 * flush? The lab measures exactly that, per channel, under any testbed
 * mode — turning section 2.4's threat model into checkable numbers:
 *
 *  - shared cores: victim residue visible in per-core structures
 *    (caches and TLB even when the firmware flushes predictors);
 *  - core-gapped: zero victim residue in any per-core structure
 *    (invariant I5), while the out-of-scope shared channels (LLC, the
 *    CrossTalk staging buffer) still show residue in every mode.
 */

#ifndef CG_ATTACKS_LAB_HH
#define CG_ATTACKS_LAB_HH

#include <map>
#include <string>

#include "workloads/testbed.hh"

namespace cg::attacks {

using workloads::Testbed;
using workloads::VmInstance;
using sim::Tick;

/** The probe channels, named after the structures they sample. */
enum class Channel {
    L1d,
    L1i,
    L2,
    Tlb,
    Btb,
    StoreBuffer,
    Llc,           ///< shared: out of scope for core gapping
    StagingBuffer, ///< shared: the CrossTalk channel
};

const char* channelName(Channel c);

/** What one channel accumulated over a run. */
struct ChannelReading {
    std::uint64_t probes = 0;
    std::uint64_t victimEntriesSeen = 0; ///< total residue observed
    std::uint64_t positiveProbes = 0;    ///< probes seeing any residue

    bool leaked() const { return victimEntriesSeen > 0; }
};

/** Results across channels. */
class LeakReport
{
  public:
    ChannelReading& at(Channel c) { return readings_[c]; }
    const ChannelReading& at(Channel c) const
    {
        static const ChannelReading empty;
        auto it = readings_.find(c);
        return it == readings_.end() ? empty : it->second;
    }

    /** Residue observed in any per-core structure? */
    bool anySameCoreLeak() const;

    /** Residue observed in any shared structure? */
    bool anySharedLeak() const;

  private:
    std::map<Channel, ChannelReading> readings_;
};

/**
 * Runs an attacker workload inside @p attacker_vm that periodically
 * probes the structures of whatever core it is executing on, plus the
 * shared LLC and staging buffer, looking for @p victim_domain residue.
 * The victim VM should run a workload that touches memory (e.g.
 * CoreMarkPro).
 */
class AttackLab
{
  public:
    struct Config {
        Tick probePeriod = 300 * sim::usec;
        Tick duration = 300 * sim::msec;
    };

    AttackLab(Testbed& bed, VmInstance& attacker_vm,
              sim::DomainId victim_domain, Config cfg);

    /** Install one prober per attacker vCPU. */
    void install();

    const LeakReport& report() const { return report_; }

  private:
    sim::Proc<void> prober(int vcpu_idx);
    void probeCore(sim::CoreId core);
    void probeShared();
    void record(Channel ch, std::size_t victim_entries);

    Testbed& bed_;
    VmInstance& vm_;
    sim::DomainId victim_;
    Config cfg_;
    LeakReport report_;
};

} // namespace cg::attacks

#endif // CG_ATTACKS_LAB_HH
