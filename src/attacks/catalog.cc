#include "attacks/catalog.hh"

namespace cg::attacks {

const char*
scopeName(Scope s)
{
    switch (s) {
      case Scope::SameThread:
        return "same-thread";
      case Scope::SiblingSmt:
        return "sibling-smt";
      case Scope::SameCore:
        return "same-core";
      case Scope::CrossCore:
        return "cross-core";
      case Scope::Remote:
        return "remote";
    }
    return "?";
}

const char*
kindName(Kind k)
{
    return k == Kind::TransientExecution ? "transient-execution"
                                         : "architectural-bug";
}

const std::vector<Vulnerability>&
vulnerabilityCatalog()
{
    using K = Kind;
    using S = Scope;
    // Compiled from the paper's fig. 3 and its reference list. A
    // vulnerability is "mitigated by core gapping" when its reach is
    // confined to one core (time-sliced contexts or SMT siblings, which
    // core gapping co-dedicates; footnote 1 in the paper).
    static const std::vector<Vulnerability> catalog = {
        {"Spectre", 2018, K::TransientExecution, S::SameCore,
         "branch predictor", true},
        {"Meltdown", 2018, K::TransientExecution, S::SameCore,
         "L1D / permission check", true},
        {"Speculative Store Bypass", 2018, K::TransientExecution,
         S::SameCore, "store buffer", true},
        {"LazyFP", 2018, K::TransientExecution, S::SameCore,
         "FPU register state", true},
        {"Foreshadow/L1TF", 2018, K::TransientExecution, S::SiblingSmt,
         "L1D", true},
        {"NetSpectre", 2019, K::TransientExecution, S::Remote,
         "cache via network timing", false},
        {"ZombieLoad", 2019, K::TransientExecution, S::SiblingSmt,
         "fill buffers", true},
        {"RIDL", 2019, K::TransientExecution, S::SiblingSmt,
         "line fill buffers", true},
        {"Fallout", 2019, K::TransientExecution, S::SameCore,
         "store buffer", true},
        {"SWAPGS speculation", 2019, K::TransientExecution, S::SameCore,
         "branch predictor", true},
        {"iTLB multihit", 2019, K::ArchitecturalBug, S::SameCore,
         "iTLB", true},
        {"Plundervolt", 2020, K::ArchitecturalBug, S::SameCore,
         "voltage fault injection", true},
        {"LVI", 2020, K::TransientExecution, S::SameCore,
         "load value injection", true},
        {"CacheOut", 2020, K::TransientExecution, S::SiblingSmt,
         "L1D eviction sampling", true},
        {"Snoop-assisted L1 sampling", 2020, K::TransientExecution,
         S::SameCore, "L1D snoops", true},
        {"Straight-line speculation", 2020, K::TransientExecution,
         S::SameCore, "speculative fetch", true},
        {"CrossTalk", 2020, K::TransientExecution, S::CrossCore,
         "shared staging buffer (CPUID/RDRAND)", false},
        {"I see dead uops", 2021, K::TransientExecution, S::SiblingSmt,
         "micro-op cache", true},
        {"CacheWarp precursor (MMIO stale data)", 2022,
         K::ArchitecturalBug, S::SameCore, "fill/store buffers", true},
        {"Branch History Injection", 2022, K::TransientExecution,
         S::SameCore, "branch history buffer", true},
        {"Retbleed", 2022, K::TransientExecution, S::SameCore,
         "return stack / BTB", true},
        {"AEPIC leak", 2022, K::ArchitecturalBug, S::SameCore,
         "APIC MMIO / staging", true},
        {"PACMAN", 2022, K::TransientExecution, S::SameCore,
         "pointer authentication oracle", true},
        {"Augury", 2022, K::TransientExecution, S::SameCore,
         "data memory-dependent prefetcher", true},
        {"Hide-and-seek spectres", 2023, K::TransientExecution,
         S::SameCore, "assorted speculative leaks", true},
        {"Downfall", 2023, K::TransientExecution, S::SameCore,
         "gather data sampling", true},
        {"Inception", 2023, K::TransientExecution, S::SameCore,
         "return stack training", true},
        {"Zenbleed", 2023, K::ArchitecturalBug, S::SameCore,
         "vector register file", true},
        {"Reptar", 2023, K::ArchitecturalBug, S::SameCore,
         "instruction decode", true},
        {"Speculation at fault", 2023, K::TransientExecution,
         S::SameCore, "exception transients", true},
        {"(M)WAIT side channel", 2023, K::TransientExecution,
         S::CrossCore, "monitor/mwait coherence", false},
        {"GhostRace", 2024, K::TransientExecution, S::CrossCore,
         "speculative races (shared kernel)", true},
        {"CacheWarp", 2024, K::ArchitecturalBug, S::SameCore,
         "selective state reset (SEV)", true},
        {"GoFetch", 2024, K::TransientExecution, S::SameCore,
         "data memory-dependent prefetcher", true},
        {"TikTag", 2024, K::TransientExecution, S::SameCore,
         "MTE tag check transients", true},
        {"InSpectre Gadget", 2024, K::TransientExecution, S::SameCore,
         "residual Spectre-v2 gadgets", true},
        {"Leaky Address Masking", 2024, K::TransientExecution,
         S::SameCore, "non-canonical translation", true},
    };
    return catalog;
}

int
countInYear(int year)
{
    int n = 0;
    for (const auto& v : vulnerabilityCatalog())
        n += v.year == year ? 1 : 0;
    return n;
}

std::vector<Vulnerability>
mitigatedByCoreGapping()
{
    std::vector<Vulnerability> out;
    for (const auto& v : vulnerabilityCatalog()) {
        if (v.mitigatedByCoreGapping)
            out.push_back(v);
    }
    return out;
}

std::vector<Vulnerability>
notMitigatedByCoreGapping()
{
    std::vector<Vulnerability> out;
    for (const auto& v : vulnerabilityCatalog()) {
        if (!v.mitigatedByCoreGapping)
            out.push_back(v);
    }
    return out;
}

} // namespace cg::attacks
