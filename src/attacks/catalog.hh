/**
 * @file
 * The catalogue of disclosed transient-execution vulnerabilities and
 * CPU bugs that broke security isolation on mainstream CPUs since 2018
 * — the data behind fig. 3 and the paper's core observation: of 35+
 * such vulnerabilities, only CrossTalk demonstrated a cross-core leak
 * in a typical cloud VM setting (NetSpectre is remote but extremely
 * low rate), so isolating distrusting code on distinct cores removes
 * nearly the entire class.
 */

#ifndef CG_ATTACKS_CATALOG_HH
#define CG_ATTACKS_CATALOG_HH

#include <string>
#include <vector>

namespace cg::attacks {

/** How far the leak reaches. */
enum class Scope {
    SameThread,  ///< within one hardware thread (e.g. same-address-space)
    SiblingSmt,  ///< across SMT siblings of one core
    SameCore,    ///< across time-sliced contexts on one core
    CrossCore,   ///< across physical cores
    Remote,      ///< over the network
};

enum class Kind {
    TransientExecution, ///< speculation / out-of-order leak
    ArchitecturalBug,   ///< CPU erratum leaking or corrupting state
};

const char* scopeName(Scope s);
const char* kindName(Kind k);

struct Vulnerability {
    std::string name;
    int year;
    Kind kind;
    Scope scope;
    /** Which structure class it exploits (free text, for reports). */
    std::string channel;
    /** Does binding distrusting code to distinct cores block it? */
    bool mitigatedByCoreGapping;
};

/** The full catalogue (fig. 3's timeline). */
const std::vector<Vulnerability>& vulnerabilityCatalog();

/** Count of catalogue entries disclosed in @p year. */
int countInYear(int year);

/** Entries core gapping mitigates / does not mitigate. */
std::vector<Vulnerability> mitigatedByCoreGapping();
std::vector<Vulnerability> notMitigatedByCoreGapping();

} // namespace cg::attacks

#endif // CG_ATTACKS_CATALOG_HH
