#include "attacks/lab.hh"

#include "sim/simulation.hh"

namespace cg::attacks {

using sim::Compute;

const char*
channelName(Channel c)
{
    switch (c) {
      case Channel::L1d:
        return "l1d";
      case Channel::L1i:
        return "l1i";
      case Channel::L2:
        return "l2";
      case Channel::Tlb:
        return "tlb";
      case Channel::Btb:
        return "btb";
      case Channel::StoreBuffer:
        return "store-buffer";
      case Channel::Llc:
        return "llc";
      case Channel::StagingBuffer:
        return "staging-buffer";
    }
    return "?";
}

bool
LeakReport::anySameCoreLeak() const
{
    for (Channel c : {Channel::L1d, Channel::L1i, Channel::L2,
                      Channel::Tlb, Channel::Btb, Channel::StoreBuffer}) {
        if (at(c).leaked())
            return true;
    }
    return false;
}

bool
LeakReport::anySharedLeak() const
{
    return at(Channel::Llc).leaked() ||
           at(Channel::StagingBuffer).leaked();
}

AttackLab::AttackLab(Testbed& bed, VmInstance& attacker_vm,
                     sim::DomainId victim_domain, Config cfg)
    : bed_(bed), vm_(attacker_vm), victim_(victim_domain), cfg_(cfg)
{}

void
AttackLab::install()
{
    for (int i = 0; i < vm_.numVcpus(); ++i) {
        vm_.vcpu(i).startGuest(
            sim::strFormat("%s/prober%d", vm_.vm->name().c_str(), i),
            prober(i));
    }
}

void
AttackLab::record(Channel ch, std::size_t victim_entries)
{
    ChannelReading& r = report_.at(ch);
    ++r.probes;
    r.victimEntriesSeen += victim_entries;
    if (victim_entries > 0)
        ++r.positiveProbes;
}

void
AttackLab::probeCore(sim::CoreId core)
{
    hw::CoreUarch& u = bed_.machine().core(core).uarch();
    record(Channel::L1d, u.l1d.victimEntries(victim_));
    record(Channel::L1i, u.l1i.victimEntries(victim_));
    record(Channel::L2, u.l2.victimEntries(victim_));
    record(Channel::Tlb, u.tlb.victimEntries(victim_));
    record(Channel::Btb, u.btb.victimEntries(victim_));
    record(Channel::StoreBuffer, u.storeBuffer.victimEntries(victim_));
}

void
AttackLab::probeShared()
{
    hw::SharedUarch& s = bed_.machine().shared();
    record(Channel::Llc, s.llc.victimEntries(victim_));
    record(Channel::StagingBuffer,
           s.stagingBuffer.victimEntries(victim_));
}

sim::Proc<void>
AttackLab::prober(int vcpu_idx)
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(vcpu_idx);
    sim::Simulation& s = bed_.sim();
    const Tick deadline = s.now() + cfg_.duration;
    while (s.now() < deadline) {
        // The probing code itself takes guest CPU (flush+reload sweep).
        co_await Compute{cfg_.probePeriod};
        const sim::CoreId core = v.currentCore();
        if (core != sim::invalidCore)
            probeCore(core);
        probeShared();
    }
    co_await v.shutdown();
}

} // namespace cg::attacks
