/**
 * @file
 * A NetPIPE-style ping-pong benchmark (fig. 8): the guest sends a
 * message of configurable size (as 1500-byte packets) to the remote
 * machine, which echoes it back; round-trip time and throughput are
 * recorded per message size, over either NIC path.
 */

#ifndef CG_WORKLOADS_NETPIPE_HH
#define CG_WORKLOADS_NETPIPE_HH

#include <map>

#include "workloads/nic.hh"
#include "workloads/remote.hh"
#include "workloads/testbed.hh"

namespace cg::workloads {

/** Reassembles NetPIPE messages at the remote host and echoes them. */
class NetPipeResponder
{
  public:
    explicit NetPipeResponder(RemoteHost& host);

  private:
    void onPacket(const vmm::Packet& pkt);

    RemoteHost& host_;
    std::map<std::uint64_t, int> rxCount_; ///< msgId -> packets seen
};

class NetPipe
{
  public:
    static constexpr std::uint64_t mtuPayload = 1448;
    static constexpr std::uint64_t frameOverhead = 52;

    struct Config {
        std::uint64_t messageBytes = 1448;
        int iterations = 20;
        int warmup = 3;
    };

    struct Result {
        double rttMeanUs = 0.0;
        double latencyUs = 0.0;      ///< one-way, rtt/2
        double throughputGbps = 0.0; ///< message bits / one-way time
        int completed = 0;
    };

    /** @p nic is the guest-side interface; @p remote must respond. */
    NetPipe(Testbed& bed, VmInstance& vm, GuestNic& nic,
            RemoteHost& remote, Config cfg);

    /** Install the client process on vCPU 0. */
    void install();

    Result result() const;

    /** Encode/decode the message framing cookie. */
    static std::uint64_t
    cookieOf(std::uint64_t msg_id, std::uint64_t total_packets)
    {
        return (msg_id << 16) | (total_packets & 0xffff);
    }
    static std::uint64_t msgIdOf(std::uint64_t c) { return c >> 16; }
    static int
    packetsOf(std::uint64_t c)
    {
        return static_cast<int>(c & 0xffff);
    }

  private:
    sim::Proc<void> client();

    Testbed& bed_;
    VmInstance& vm_;
    GuestNic& nic_;
    RemoteHost& remote_;
    Config cfg_;
    sim::Distribution rtts_; ///< picoseconds
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_NETPIPE_HH
