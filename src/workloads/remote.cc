#include "workloads/remote.hh"

#include <algorithm>

namespace cg::workloads {

RemoteHost::RemoteHost(sim::Simulation& sim, vmm::NetworkFabric& fabric,
                       Tick per_packet_cost)
    : sim_(sim), fabric_(fabric), perPacket_(per_packet_cost)
{
    port_ = fabric_.attach([this](const vmm::Packet& p) { onRx(p); });
}

void
RemoteHost::becomeEcho()
{
    setHandler([this](const vmm::Packet& p) {
        send(p.srcPort, p.bytes, p.cookie);
    });
}

void
RemoteHost::onRx(const vmm::Packet& pkt)
{
    // Serialise on the remote machine's CPU: each packet costs the
    // stack time before its handler runs.
    const Tick start = std::max(sim_.now(), cpuFreeAt_);
    cpuFreeAt_ = start + sim_.rng().jittered(perPacket_, 0.05);
    vmm::Packet copy = pkt;
    sim_.queue().schedule(cpuFreeAt_, [this, copy] {
        ++received_;
        if (handler_)
            handler_(copy);
    });
}

void
RemoteHost::send(int dst_port, std::uint64_t bytes,
                 std::uint64_t cookie)
{
    vmm::Packet p;
    p.bytes = bytes;
    p.srcPort = port_;
    p.dstPort = dst_port;
    p.cookie = cookie;
    fabric_.send(p);
}

} // namespace cg::workloads
