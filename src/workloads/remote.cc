#include "workloads/remote.hh"

#include <algorithm>

namespace cg::workloads {

RemoteHost::RemoteHost(sim::Simulation& sim, vmm::NetworkFabric& fabric,
                       Tick per_packet_cost, int num_cpus)
    : sim_(sim),
      fabric_(fabric),
      perPacket_(per_packet_cost),
      cpuFreeAt_(static_cast<size_t>(num_cpus < 1 ? 1 : num_cpus), 0)
{
    port_ = fabric_.attach([this](const vmm::Packet& p) { onRx(p); });
}

void
RemoteHost::becomeEcho()
{
    setHandler([this](const vmm::Packet& p) {
        send(p.srcPort, p.bytes, p.cookie);
    });
}

void
RemoteHost::onRx(const vmm::Packet& pkt)
{
    // Serialise on the flow's remote CPU: each packet costs the stack
    // time before its handler runs (RSS steers flows to cores by
    // cookie, as on the guest side).
    Tick& free_at = cpuFreeAt_[static_cast<size_t>(
        pkt.cookie % cpuFreeAt_.size())];
    const Tick start = std::max(sim_.now(), free_at);
    free_at = start + sim_.rng().jittered(perPacket_, 0.05);
    vmm::Packet copy = pkt;
    sim_.queue().schedule(free_at, [this, copy] {
        ++received_;
        if (handler_)
            handler_(copy);
    });
}

void
RemoteHost::send(int dst_port, std::uint64_t bytes,
                 std::uint64_t cookie)
{
    vmm::Packet p;
    p.bytes = bytes;
    p.srcPort = port_;
    p.dstPort = dst_port;
    p.cookie = cookie;
    fabric_.send(p);
}

} // namespace cg::workloads
