/**
 * @file
 * A CoreMark-PRO-like CPU-bound workload (figs. 6/7, table 4): one
 * worker per vCPU iterating a fixed unit of compute. The score is
 * iterations completed per second over the measurement window,
 * aggregated across workers — sensitive to exit overheads, interrupt
 * handling, and microarchitectural pollution, like the real benchmark.
 */

#ifndef CG_WORKLOADS_COREMARK_HH
#define CG_WORKLOADS_COREMARK_HH

#include "workloads/testbed.hh"

namespace cg::workloads {

class CoreMarkPro
{
  public:
    struct Config {
        /** Compute per iteration (the "workload unit"). */
        Tick iterationWork = 250 * sim::usec;
        /** Measurement window after the testbed is up. */
        Tick duration = 2 * sim::sec;
        /** Working-set size in cache lines per iteration batch. */
        std::size_t footprint = 640;
    };

    struct Result {
        double score = 0.0; ///< iterations per second, aggregate
        std::uint64_t iterations = 0;
        Tick elapsed = 0;
    };

    CoreMarkPro(Testbed& bed, VmInstance& vm, Config cfg);

    /** Install the worker processes (call before the sim runs). */
    void install();

    /** Collect results (after the run completes). */
    Result result() const;

    const Config& config() const { return cfg_; }

  private:
    sim::Proc<void> worker(int vcpu_idx);

    Testbed& bed_;
    VmInstance& vm_;
    Config cfg_;
    std::vector<std::uint64_t> iters_;
    Tick measuredStart_ = 0;
    Tick measuredEnd_ = 0;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_COREMARK_HH
