/**
 * @file
 * A uniform guest-side NIC interface over the two network paths the
 * paper evaluates (fig. 8): emulated virtio and SR-IOV passthrough.
 */

#ifndef CG_WORKLOADS_NIC_HH
#define CG_WORKLOADS_NIC_HH

#include "vmm/sriov.hh"
#include "vmm/virtio.hh"

namespace cg::workloads {

class GuestNic
{
  public:
    virtual ~GuestNic() = default;

    virtual sim::Proc<void> send(guest::VCpu& v, std::uint64_t bytes,
                                 int dst_port,
                                 std::uint64_t cookie) = 0;
    virtual sim::Proc<vmm::Packet> recv(guest::VCpu& v) = 0;
    virtual int port() const = 0;
};

class VirtioGuestNic : public GuestNic
{
  public:
    explicit VirtioGuestNic(vmm::VirtioNet& n) : nic_(n) {}

    sim::Proc<void>
    send(guest::VCpu& v, std::uint64_t bytes, int dst_port,
         std::uint64_t cookie) override
    {
        return nic_.guestSend(v, bytes, dst_port, cookie);
    }

    sim::Proc<vmm::Packet>
    recv(guest::VCpu& v) override
    {
        return nic_.guestRecv(v);
    }

    int port() const override { return nic_.port(); }

  private:
    vmm::VirtioNet& nic_;
};

class SriovGuestNic : public GuestNic
{
  public:
    explicit SriovGuestNic(vmm::SriovNic& n) : nic_(n) {}

    sim::Proc<void>
    send(guest::VCpu& v, std::uint64_t bytes, int dst_port,
         std::uint64_t cookie) override
    {
        return nic_.guestSend(v, bytes, dst_port, cookie);
    }

    sim::Proc<vmm::Packet>
    recv(guest::VCpu& v) override
    {
        return nic_.guestRecv(v);
    }

    int port() const override { return nic_.port(); }

  private:
    vmm::SriovNic& nic_;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_NIC_HH
