/**
 * @file
 * A uniform guest-side NIC interface over the network paths the paper
 * evaluates: emulated virtio and SR-IOV passthrough (fig. 8), plus the
 * multi-queue / IPU-offload serving path (DESIGN.md section 11).
 */

#ifndef CG_WORKLOADS_NIC_HH
#define CG_WORKLOADS_NIC_HH

#include "vmm/sriov.hh"
#include "vmm/virtio.hh"
#include "vmm/virtio_mq.hh"

namespace cg::workloads {

class GuestNic
{
  public:
    virtual ~GuestNic() = default;

    virtual sim::Proc<void> send(guest::VCpu& v, std::uint64_t bytes,
                                 int dst_port,
                                 std::uint64_t cookie) = 0;
    virtual sim::Proc<vmm::Packet> recv(guest::VCpu& v) = 0;
    virtual int port() const = 0;

    /** @{ Queue-aware API for multi-queue devices. Single-queue NICs
     * have one queue and ignore the index, so workloads can be
     * written against queues unconditionally. */
    virtual int numQueues() const { return 1; }

    virtual sim::Proc<vmm::Packet>
    recvQueue(guest::VCpu& v, int queue)
    {
        (void)queue;
        return recv(v);
    }

    /** Flush any batched doorbells on @p queue (no-op by default). */
    virtual sim::Proc<void>
    flushQueue(guest::VCpu& v, int queue)
    {
        (void)v;
        (void)queue;
        co_return;
    }
    /** @} */
};

class VirtioGuestNic : public GuestNic
{
  public:
    explicit VirtioGuestNic(vmm::VirtioNet& n) : nic_(n) {}

    sim::Proc<void>
    send(guest::VCpu& v, std::uint64_t bytes, int dst_port,
         std::uint64_t cookie) override
    {
        return nic_.guestSend(v, bytes, dst_port, cookie);
    }

    sim::Proc<vmm::Packet>
    recv(guest::VCpu& v) override
    {
        return nic_.guestRecv(v);
    }

    int port() const override { return nic_.port(); }

  private:
    vmm::VirtioNet& nic_;
};

class SriovGuestNic : public GuestNic
{
  public:
    explicit SriovGuestNic(vmm::SriovNic& n) : nic_(n) {}

    sim::Proc<void>
    send(guest::VCpu& v, std::uint64_t bytes, int dst_port,
         std::uint64_t cookie) override
    {
        return nic_.guestSend(v, bytes, dst_port, cookie);
    }

    sim::Proc<vmm::Packet>
    recv(guest::VCpu& v) override
    {
        return nic_.guestRecv(v);
    }

    int port() const override { return nic_.port(); }

  private:
    vmm::SriovNic& nic_;
};

/** The multi-queue serving-path NIC (Trapped or IpuOffload backend);
 * recv(v) with no queue index reads queue 0. */
class MqGuestNic : public GuestNic
{
  public:
    explicit MqGuestNic(vmm::MqVirtioNet& n) : nic_(n) {}

    sim::Proc<void>
    send(guest::VCpu& v, std::uint64_t bytes, int dst_port,
         std::uint64_t cookie) override
    {
        return nic_.guestSend(v, bytes, dst_port, cookie);
    }

    sim::Proc<vmm::Packet>
    recv(guest::VCpu& v) override
    {
        return nic_.guestRecv(v, 0);
    }

    sim::Proc<vmm::Packet>
    recvQueue(guest::VCpu& v, int queue) override
    {
        return nic_.guestRecv(v, queue);
    }

    sim::Proc<void>
    flushQueue(guest::VCpu& v, int queue) override
    {
        return nic_.guestFlush(v, queue);
    }

    int numQueues() const override { return nic_.numQueues(); }
    int port() const override { return nic_.port(); }

  private:
    vmm::MqVirtioNet& nic_;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_NIC_HH
