/**
 * @file
 * The experiment testbed: assembles machine, host kernel, RMM,
 * doorbell/kick brokers, fabric and disk, and builds VMs in any of the
 * evaluated configurations. Benchmarks and examples sit on top of this.
 *
 * Core accounting follows section 5.1: an experiment "with N cores"
 * means an N-vCPU VM in the shared baselines, and an (N-1)-vCPU CVM
 * plus one host core when core-gapped — the same number of *physical*
 * cores in all comparisons.
 */

#ifndef CG_WORKLOADS_TESTBED_HH
#define CG_WORKLOADS_TESTBED_HH

#include <memory>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "core/doorbell.hh"
#include "core/gapped_vm.hh"
#include "core/planner.hh"
#include "vmm/disk.hh"
#include "vmm/kvm.hh"
#include "vmm/netfabric.hh"
#include "vmm/sriov.hh"
#include "vmm/virtio.hh"
#include "vmm/virtio_mq.hh"

namespace cg::workloads {

using sim::Proc;
using sim::Tick;

/** The evaluated system configurations. */
enum class RunMode {
    SharedCore,             ///< non-confidential VM (paper baseline)
    SharedCoreCvm,          ///< baseline CCA confidential VM
    CoreGapped,             ///< the paper's design (async + delegation)
    CoreGappedBusyWait,     ///< fig. 6 ablation: Quarantine-style polling
    CoreGappedNoDelegation, ///< fig. 6 / table 4 ablation
};

const char* runModeName(RunMode m);
bool isGapped(RunMode m);

/** One VM with its runner and optional devices. */
struct VmInstance {
    std::unique_ptr<guest::Vm> vm;
    std::unique_ptr<vmm::KvmVm> kvm;
    std::unique_ptr<cg::core::GappedVm> gapped; ///< null in shared modes
    std::vector<sim::CoreId> physCores;         ///< all cores accounted
    std::vector<sim::CoreId> guestCores;        ///< dedicated (gapped)
    host::CpuMask hostMask;                     ///< VMM-thread cores
    std::unique_ptr<vmm::VirtioNet> vnet;
    std::unique_ptr<vmm::VirtioBlk> vblk;
    std::unique_ptr<vmm::SriovNic> sriov;
    std::unique_ptr<vmm::MqVirtioNet> mqnet;

    guest::VCpu& vcpu(int i) { return vm->vcpu(i); }
    int numVcpus() const { return vm->numVcpus(); }
};

class Testbed
{
  public:
    struct Config {
        int numCores = 16;
        RunMode mode = RunMode::SharedCore;
        std::uint64_t seed = 0xc0ffee;
        hw::Costs costs{};
        vmm::NetworkFabric::Config fabric{};
        vmm::Disk::Config disk{};
        /** Gapped wake-up thread adaptive spin cap (0 = off; see
         * GappedVmConfig::wakeSpinMax). */
        Tick wakeSpinMax = 0;
        /** Scrub verification (detect-and-repair of scrub-skip
         * injections) in the RMM and every gapped runner; see
         * rmm::RmmConfig::verifyScrubs. Fault-armed soaks turn this
         * on to run leak-free. */
        bool verifyScrubs = false;
    };

    explicit Testbed(Config cfg);
    ~Testbed();

    sim::Simulation& sim() { return *sim_; }
    hw::Machine& machine() { return *machine_; }
    host::Kernel& kernel() { return *kernel_; }
    rmm::Rmm& rmm() { return *rmm_; }
    vmm::NetworkFabric& fabric() { return *fabric_; }
    vmm::Disk& disk() { return *disk_; }
    RunMode mode() const { return cfg_.mode; }
    const Config& config() const { return cfg_; }

    /** The isolation checker, when `--check` armed one (else null). */
    check::IsolationChecker* checker() { return checker_.get(); }

    /**
     * Build a VM occupying @p phys_cores physical cores starting at
     * the next free core (paper accounting: shared modes get
     * phys_cores vCPUs; gapped modes get phys_cores-1 vCPUs plus one
     * host core).
     */
    VmInstance& createVm(const std::string& name, int phys_cores,
                         guest::VmConfig base = {});

    /**
     * Full-control variant: @p guest_cores dedicated cores (gapped) or
     * vCPU affinity (shared) and an explicit host mask for VMM
     * threads; @p num_vcpus vCPUs. Used by fig. 7's many-VMs-one-host-
     * core setup. If @p planner is given (gapped modes), the VM's
     * runner owns releasing its reservations (see GappedVmConfig).
     */
    VmInstance& createVmOn(const std::string& name,
                           std::vector<sim::CoreId> guest_cores,
                           host::CpuMask host_mask, int num_vcpus,
                           guest::VmConfig base = {},
                           cg::core::CorePlanner* planner = nullptr);

    /** @{ Attach devices (before start). */
    void addVirtioNet(VmInstance& v);
    void addVirtioBlk(VmInstance& v);
    /**
     * @p direct enables direct interrupt delivery (gapped modes only):
     * the VF's MSI bypasses the host and the monitor injects it on the
     * dedicated core — the extension section 5.3 anticipates.
     */
    void addSriovNic(VmInstance& v, bool direct = false);

    /** Multi-queue NIC build options (see vmm::MqVirtioNet::Config). */
    struct MqNicOptions {
        int queues = 4;
        /** Emulate on reserved I/O cores with posted doorbells
         * instead of trapped-MMIO VMM threads. */
        bool ipuOffload = false;
        /** Reserved I/O cores to allocate for ipuOffload (taken from
         * the testbed's free cores, one per queue up to this). */
        int ipuCores = 2;
        /** Monitor-injected RX interrupts (gapped VMs only). */
        bool directRx = false;
        int kickBatchLimit = 8;
        sim::Tick eventIdxPublishDelay = 0;
        bool recordTxLog = false;
    };

    void addMqNic(VmInstance& v, MqNicOptions opt);
    void addMqNic(VmInstance& v) { addMqNic(v, MqNicOptions()); }
    /** @} */

    /** Bring every VM up; opens started() when done. */
    Proc<void> startAll();

    /** Convenience: spawn startAll() as a process. */
    void spawnStart();

    /** Open once every VM is running (workloads gate on this). */
    sim::Gate& started() { return started_; }

    /** All VMs' guests have shut down? */
    bool allShutdown() const;

    /** Gapped VMs whose start() rolled back (fault injection). */
    int startFailures() const { return startFailures_; }

    /** Run until everything quiesces or @p limit; @return end time. */
    Tick run(Tick limit = sim::maxTick);

    /**
     * Write the claimed --stats/--trace outputs now, while workload
     * objects whose StatGroups detach on destruction are still
     * registered. Idempotent; the destructor calls it as a fallback
     * for benches that never do (covering everything owned by the
     * testbed itself).
     */
    void writeObservability();

    const std::vector<std::unique_ptr<VmInstance>>& vms() const
    {
        return vms_;
    }
    VmInstance& vmAt(std::size_t i) { return *vms_.at(i); }

    /**
     * Drop a VM the churn driver is done with (guest shut down and —
     * for gapped VMs — teardown()/terminate() awaited first, so the
     * cores and planner reservations are already back). Invalidates
     * @p v and every reference into it.
     */
    void destroyVm(VmInstance& v);

  private:
    rmm::RmmConfig rmmConfigFor(RunMode m) const;
    vmm::KvmConfig kvmConfigFor(RunMode m, host::CpuMask vcpu_mask) const;

    Config cfg_;
    std::unique_ptr<sim::Simulation> sim_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<check::IsolationChecker> checker_;
    std::unique_ptr<host::Kernel> kernel_;
    std::unique_ptr<vmm::KickBroker> kicks_;
    std::unique_ptr<rmm::Rmm> rmm_;
    std::unique_ptr<cg::core::ExitDoorbell> doorbell_;
    std::unique_ptr<vmm::NetworkFabric> fabric_;
    std::unique_ptr<vmm::Disk> disk_;
    std::vector<std::unique_ptr<VmInstance>> vms_;
    sim::Gate started_;
    int nextCore_ = 0;
    int startFailures_ = 0;
    bool observed_ = false; ///< this testbed owns --stats/--trace output
    bool observabilityWritten_ = false;
    int nextDomain_ = sim::firstVmDomain;
    std::uint64_t nextMmioBase_ = 0x0a000000;
    hw::IntId nextIrq_ = 40;
    hw::IntId nextSpi_ = 64;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_TESTBED_HH
