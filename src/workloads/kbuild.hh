/**
 * @file
 * A parallel-build workload (fig. 10: Linux kernel build over virtio
 * disk): a pool of compile jobs, each reading sources from the block
 * device, computing, and writing an object back; one worker per vCPU
 * pulls jobs until the pool drains, then a serial link step finishes.
 */

#ifndef CG_WORKLOADS_KBUILD_HH
#define CG_WORKLOADS_KBUILD_HH

#include "workloads/testbed.hh"

namespace cg::workloads {

class KernelBuild
{
  public:
    struct Config {
        int jobs = 240;
        Tick compilePerJob = 220 * sim::msec;
        std::uint64_t sourceBytes = 64 * 1024;
        std::uint64_t objectBytes = 48 * 1024;
        Tick linkCompute = 1500 * sim::msec;
        std::uint64_t linkReadBytes = 12ull << 20;
        std::uint64_t linkWriteBytes = 30ull << 20;
    };

    struct Result {
        Tick buildTime = 0;
        int jobsDone = 0;
        bool finished = false;
    };

    KernelBuild(Testbed& bed, VmInstance& vm, Config cfg);

    /** Install one worker per vCPU (VM must have virtio-blk). */
    void install();

    Result result() const;

  private:
    sim::Proc<void> worker(int vcpu_idx);
    sim::Proc<void> link(guest::VCpu& v);

    Testbed& bed_;
    VmInstance& vm_;
    Config cfg_;
    int nextJob_ = 0;
    int jobsDone_ = 0;
    int workersDone_ = 0;
    /** All vCPUs stay up (IRQ delivery!) until the build finishes. */
    sim::Gate buildDone_;
    Tick start_ = 0;
    Tick end_ = 0;
    bool finished_ = false;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_KBUILD_HH
