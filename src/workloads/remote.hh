/**
 * @file
 * The remote client machine: "another equivalent but unmodified system"
 * in the paper's network experiments (section 5.3). An uncontended
 * endpoint on the fabric with its own serialised CPU model, usable as
 * a NetPIPE echo server or as a fleet of closed-loop request clients
 * (redis-benchmark).
 */

#ifndef CG_WORKLOADS_REMOTE_HH
#define CG_WORKLOADS_REMOTE_HH

#include <deque>
#include <functional>
#include <vector>

#include "sim/simulation.hh"
#include "vmm/netfabric.hh"

namespace cg::workloads {

using sim::Tick;

/**
 * A remote machine attached to the fabric. Packets are processed in
 * order with a per-packet stack cost on the remote CPU; the handler
 * decides what (if anything) to send back.
 */
class RemoteHost
{
  public:
    /** Handler: called per received packet, after stack costs. */
    using Handler = std::function<void(const vmm::Packet&)>;

    /** @p num_cpus remote cores; packets steer to cpu cookie % cpus,
     * each core serialising its own flow set (RSS on the remote end).
     * The default single CPU caps the remote at ~1/per_packet_cost
     * pps, which the open-loop sweeps must not bottleneck on. */
    RemoteHost(sim::Simulation& sim, vmm::NetworkFabric& fabric,
               Tick per_packet_cost, int num_cpus = 1);

    int port() const { return port_; }

    void setHandler(Handler h) { handler_ = std::move(h); }

    /** Convenience: echo every packet back to its sender. */
    void becomeEcho();

    /** Send a packet from this host (serialises on the remote CPU). */
    void send(int dst_port, std::uint64_t bytes, std::uint64_t cookie);

    std::uint64_t received() const { return received_; }

  private:
    void onRx(const vmm::Packet& pkt);

    sim::Simulation& sim_;
    vmm::NetworkFabric& fabric_;
    Tick perPacket_;
    int port_;
    Handler handler_;
    /** Per-CPU busy-until times; each remote core handles its share
     * of the flows in series. */
    std::vector<Tick> cpuFreeAt_;
    std::uint64_t received_ = 0;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_REMOTE_HH
