/**
 * @file
 * An IOzone-style synchronous block-I/O sweep (fig. 9): O_DIRECT
 * read/write of a file at varying record sizes through virtio-blk,
 * reporting sustained throughput per record size.
 */

#ifndef CG_WORKLOADS_IOZONE_HH
#define CG_WORKLOADS_IOZONE_HH

#include "workloads/testbed.hh"

namespace cg::workloads {

class IoZone
{
  public:
    struct Config {
        std::uint64_t recordBytes = 64 * 1024;
        std::uint64_t fileBytes = 256ull << 20;
        bool write = false;
        /** Cap on operations so huge sweeps stay bounded. */
        int maxOps = 2048;
    };

    struct Result {
        double throughputMBps = 0.0;
        int ops = 0;
        Tick elapsed = 0;
    };

    IoZone(Testbed& bed, VmInstance& vm, Config cfg);

    /** Install the I/O process on vCPU 0 (VM must have virtio-blk). */
    void install();

    Result result() const;

  private:
    sim::Proc<void> runner();

    Testbed& bed_;
    VmInstance& vm_;
    Config cfg_;
    int ops_ = 0;
    Tick start_ = 0;
    Tick end_ = 0;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_IOZONE_HH
