#include "workloads/netpipe.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

NetPipeResponder::NetPipeResponder(RemoteHost& host) : host_(host)
{
    host_.setHandler([this](const vmm::Packet& p) { onPacket(p); });
}

void
NetPipeResponder::onPacket(const vmm::Packet& pkt)
{
    const std::uint64_t msg = NetPipe::msgIdOf(pkt.cookie);
    const int total = NetPipe::packetsOf(pkt.cookie);
    int& seen = rxCount_[msg];
    if (++seen < total)
        return;
    rxCount_.erase(msg);
    // Whole message received: echo it back, packet by packet.
    for (int i = 0; i < total; ++i)
        host_.send(pkt.srcPort, pkt.bytes, pkt.cookie);
}

NetPipe::NetPipe(Testbed& bed, VmInstance& vm, GuestNic& nic,
                 RemoteHost& remote, Config cfg)
    : bed_(bed), vm_(vm), nic_(nic), remote_(remote), cfg_(cfg)
{}

void
NetPipe::install()
{
    vm_.vcpu(0).startGuest(
        sim::strFormat("%s/netpipe", vm_.vm->name().c_str()), client());
}

sim::Proc<void>
NetPipe::client()
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(0);
    sim::Simulation& s = bed_.sim();
    const std::uint64_t npkts =
        std::max<std::uint64_t>(1, (cfg_.messageBytes + mtuPayload - 1) /
                                       mtuPayload);
    std::uint64_t msg_id = 1;
    for (int it = 0; it < cfg_.warmup + cfg_.iterations; ++it) {
        const Tick t0 = s.now();
        const std::uint64_t cookie = cookieOf(msg_id, npkts);
        std::uint64_t left = cfg_.messageBytes;
        for (std::uint64_t p = 0; p < npkts; ++p) {
            const std::uint64_t payload =
                std::min<std::uint64_t>(left, mtuPayload);
            left -= payload;
            co_await nic_.send(v, payload + frameOverhead,
                               remote_.port(), cookie);
        }
        // Wait for the echoed message.
        std::uint64_t got = 0;
        while (got < npkts) {
            vmm::Packet reply = co_await nic_.recv(v);
            if (msgIdOf(reply.cookie) == msg_id)
                ++got;
        }
        ++msg_id;
        if (it >= cfg_.warmup)
            rtts_.sample(static_cast<double>(s.now() - t0));
    }
    co_await v.shutdown();
}

NetPipe::Result
NetPipe::result() const
{
    Result r;
    r.completed = static_cast<int>(rtts_.count());
    if (r.completed == 0)
        return r;
    const double rtt_ps = rtts_.mean();
    r.rttMeanUs = rtt_ps / 1e6;
    r.latencyUs = r.rttMeanUs / 2.0;
    const double one_way_s = rtt_ps / 2.0 / 1e12;
    r.throughputGbps = static_cast<double>(cfg_.messageBytes) * 8.0 /
                       one_way_s / 1e9;
    return r;
}

} // namespace cg::workloads
