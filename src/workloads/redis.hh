/**
 * @file
 * A redis-benchmark-style workload (table 5): a single-threaded
 * in-guest server handling SET/GET/LRANGE requests over SR-IOV, driven
 * by a fleet of closed-loop clients on the remote machine. Reports
 * throughput and mean/p95/p99 latency.
 */

#ifndef CG_WORKLOADS_REDIS_HH
#define CG_WORKLOADS_REDIS_HH

#include <vector>

#include "workloads/nic.hh"
#include "workloads/remote.hh"
#include "workloads/testbed.hh"

namespace cg::workloads {

enum class RedisOp { Set, Get, Lrange100 };

const char* redisOpName(RedisOp op);

class RedisBenchmark
{
  public:
    struct Config {
        RedisOp op = RedisOp::Get;
        int clients = 50;
        std::uint64_t valueBytes = 512;
        Tick duration = 2 * sim::sec;
        /** Single-threaded server service time per operation. */
        Tick setService = 16500 * sim::nsec;
        Tick getService = 15500 * sim::nsec;
        Tick lrangeService = 72 * sim::usec;
        /** Mean exponential client think time between requests (adds
         * arrival noise so the server's queue occasionally drains and
         * interrupt-path costs show, as on real deployments). */
        Tick clientThink = 120 * sim::usec;
        /** Occasional slow operations (rehashing, expiry cycles, lazy
         * freeing): probability and cost multiplier. These produce the
         * latency tail redis-benchmark reports (table 5's p99 is ~2x
         * the mean). */
        double slowOpProbability = 0.012;
        double slowOpFactor = 9.0;
    };

    struct Result {
        double throughputKrps = 0.0;
        double meanMs = 0.0;
        double p95Ms = 0.0;
        double p99Ms = 0.0;
        std::uint64_t completed = 0;
    };

    RedisBenchmark(Testbed& bed, VmInstance& vm, GuestNic& nic,
                   RemoteHost& clients, Config cfg);

    /** Install server process + client behaviour. */
    void install();

    Result result() const;

  private:
    sim::Proc<void> server();
    void onClientRx(const vmm::Packet& pkt);
    void clientSend(int client_id);
    void clientSendLater(int client_id);
    std::uint64_t requestBytes() const;
    std::uint64_t responseBytes() const;
    Tick serviceTime() const;

    Testbed& bed_;
    VmInstance& vm_;
    GuestNic& nic_;
    RemoteHost& remote_;
    Config cfg_;
    std::vector<Tick> sentAt_;
    sim::Distribution latencies_; ///< picoseconds
    std::uint64_t completed_ = 0;
    Tick measureStart_ = 0;
    Tick measureEnd_ = 0;
    bool clientsStarted_ = false;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_REDIS_HH
