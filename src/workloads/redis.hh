/**
 * @file
 * Redis-style workloads.
 *
 * RedisBenchmark (table 5): a single-threaded in-guest server handling
 * SET/GET/LRANGE requests over SR-IOV, driven by a fleet of
 * closed-loop clients on the remote machine. Reports throughput and
 * mean/p95/p99 latency.
 *
 * RedisOpenLoop (the serving-path sweep, DESIGN.md section 11): an
 * open-loop Poisson arrival process against a multi-threaded server —
 * one server thread per NIC queue — measuring the latency distribution
 * at a fixed *offered* load. Unlike the closed-loop fleet, arrivals do
 * not wait for responses, so queueing delay shows up in the tail
 * (p99/p999) instead of silently throttling the offered rate.
 */

#ifndef CG_WORKLOADS_REDIS_HH
#define CG_WORKLOADS_REDIS_HH

#include <vector>

#include "workloads/nic.hh"
#include "workloads/remote.hh"
#include "workloads/testbed.hh"

namespace cg::workloads {

enum class RedisOp { Set, Get, Lrange100 };

const char* redisOpName(RedisOp op);

class RedisBenchmark
{
  public:
    struct Config {
        RedisOp op = RedisOp::Get;
        int clients = 50;
        std::uint64_t valueBytes = 512;
        Tick duration = 2 * sim::sec;
        /** Single-threaded server service time per operation. */
        Tick setService = 16500 * sim::nsec;
        Tick getService = 15500 * sim::nsec;
        Tick lrangeService = 72 * sim::usec;
        /** Mean exponential client think time between requests (adds
         * arrival noise so the server's queue occasionally drains and
         * interrupt-path costs show, as on real deployments). */
        Tick clientThink = 120 * sim::usec;
        /** Occasional slow operations (rehashing, expiry cycles, lazy
         * freeing): probability and cost multiplier. These produce the
         * latency tail redis-benchmark reports (table 5's p99 is ~2x
         * the mean). */
        double slowOpProbability = 0.012;
        double slowOpFactor = 9.0;
    };

    struct Result {
        double throughputKrps = 0.0;
        double meanMs = 0.0;
        double p95Ms = 0.0;
        double p99Ms = 0.0;
        std::uint64_t completed = 0;
    };

    RedisBenchmark(Testbed& bed, VmInstance& vm, GuestNic& nic,
                   RemoteHost& clients, Config cfg);

    /** Install server process + client behaviour. */
    void install();

    Result result() const;

    /** The raw latency samples (ticks), for regression tests. */
    const sim::Distribution& latencies() const { return latencies_; }

  private:
    sim::Proc<void> server();
    void onClientRx(const vmm::Packet& pkt);
    void clientSend(int client_id);
    void clientSendLater(int client_id);
    std::uint64_t requestBytes() const;
    std::uint64_t responseBytes() const;
    Tick serviceTime() const;

    Testbed& bed_;
    VmInstance& vm_;
    GuestNic& nic_;
    RemoteHost& remote_;
    Config cfg_;
    std::vector<Tick> sentAt_;
    sim::Distribution latencies_; ///< picoseconds
    std::uint64_t completed_ = 0;
    Tick measureStart_ = 0;
    Tick measureEnd_ = 0;
    bool clientsStarted_ = false;
};

/**
 * The open-loop Poisson load sweep workload. Requests arrive at the
 * configured offered rate regardless of completions; the request's
 * send tick travels as the flow cookie, so in-flight tracking needs no
 * per-client state and RSS steering (cookie % queues) spreads flows
 * across the NIC's queues. Server thread t runs on vCPU t and serves
 * queue t.
 */
class RedisOpenLoop
{
  public:
    struct Config {
        RedisOp op = RedisOp::Get;
        /** Offered load, thousands of requests per second. */
        double offeredKrps = 100.0;
        std::uint64_t valueBytes = 512;
        Tick duration = 1 * sim::sec;
        /** Per-thread service time per operation (same model as the
         * closed-loop benchmark). */
        Tick setService = 16500 * sim::nsec;
        Tick getService = 15500 * sim::nsec;
        Tick lrangeService = 72 * sim::usec;
        double slowOpProbability = 0.012;
        double slowOpFactor = 9.0;
        /** Server threads (capped at the VM's vCPU count and the
         * NIC's queue count). */
        int serverThreads = 4;
    };

    struct Result {
        double offeredKrps = 0.0;
        double achievedKrps = 0.0;
        double meanMs = 0.0;
        double p50Ms = 0.0;
        double p99Ms = 0.0;
        double p999Ms = 0.0;
        std::uint64_t sent = 0;
        std::uint64_t completed = 0;
        std::uint64_t maxInFlight = 0;
        /** KVM exit/injection deltas across the measurement window
         * (table 4 methodology): the data-path cost of this load. */
        std::uint64_t vmExits = 0;
        std::uint64_t irqExits = 0;
    };

    RedisOpenLoop(Testbed& bed, VmInstance& vm, GuestNic& nic,
                  RemoteHost& remote, Config cfg);

    /** Install server threads + the arrival process. */
    void install();

    Result result() const;

    const sim::LatencyStat& latencies() const { return latencies_; }

    /** Register "openloop.<vm>.*" rows. */
    void registerStats(sim::StatRegistry& reg);

  private:
    sim::Proc<void> serverThread(int t);
    void scheduleNextArrival();
    void sendOne();
    void onClientRx(const vmm::Packet& pkt);
    std::uint64_t requestBytes() const;
    std::uint64_t responseBytes() const;
    Tick serviceTime() const;

    Testbed& bed_;
    VmInstance& vm_;
    GuestNic& nic_;
    RemoteHost& remote_;
    Config cfg_;
    sim::LatencyStat latencies_;
    sim::Counter sent_;
    sim::Counter completed_;
    sim::Accumulator inFlightDepth_; ///< sampled at each arrival
    std::uint64_t inFlight_ = 0;
    Tick measureStart_ = 0;
    Tick measureEnd_ = 0;
    bool started_ = false;
    bool stopSent_ = false;
    std::uint64_t exitsAtStart_ = 0;
    std::uint64_t irqExitsAtStart_ = 0;
    std::uint64_t exitsAtEnd_ = 0;
    std::uint64_t irqExitsAtEnd_ = 0;
    sim::StatGroup statGroup_;
};

} // namespace cg::workloads

#endif // CG_WORKLOADS_REDIS_HH
