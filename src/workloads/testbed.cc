#include "workloads/testbed.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

const char*
runModeName(RunMode m)
{
    switch (m) {
      case RunMode::SharedCore:
        return "shared-core";
      case RunMode::SharedCoreCvm:
        return "shared-core-cvm";
      case RunMode::CoreGapped:
        return "core-gapped";
      case RunMode::CoreGappedBusyWait:
        return "core-gapped-busywait";
      case RunMode::CoreGappedNoDelegation:
        return "core-gapped-nodelegation";
    }
    return "?";
}

bool
isGapped(RunMode m)
{
    return m == RunMode::CoreGapped ||
           m == RunMode::CoreGappedBusyWait ||
           m == RunMode::CoreGappedNoDelegation;
}

Testbed::Testbed(Config cfg) : cfg_(cfg)
{
    sim_ = std::make_unique<sim::Simulation>(cfg_.seed);
    hw::MachineConfig mcfg;
    mcfg.numCores = cfg_.numCores;
    mcfg.costs = cfg_.costs;
    machine_ = std::make_unique<hw::Machine>(*sim_, mcfg);
    kernel_ = std::make_unique<host::Kernel>(*machine_);
    kicks_ = std::make_unique<vmm::KickBroker>(*kernel_);
    rmm_ = std::make_unique<rmm::Rmm>(*machine_,
                                      rmmConfigFor(cfg_.mode));
    doorbell_ = std::make_unique<cg::core::ExitDoorbell>(*kernel_);
    fabric_ = std::make_unique<vmm::NetworkFabric>(*sim_, cfg_.fabric);
    disk_ = std::make_unique<vmm::Disk>(*sim_, cfg_.disk);

    kernel_->registerStats(sim_->stats());
    rmm_->registerStats(sim_->stats());
    machine_->gic().registerStats(sim_->stats());
    doorbell_->registerStats(sim_->stats());

    // --stats/--trace from the bench harness: exactly one Testbed per
    // process claims the request (sweeps build many testbeds in
    // parallel; the first one constructed is the one observed).
    observed_ = sim::ObservabilityRequest::claim();
    if (observed_ && !sim::ObservabilityRequest::tracePath().empty())
        sim_->tracer().enable();

    // --faults from the bench harness: unlike --stats/--trace there is
    // no claim — every testbed in a sweep arms the same plan, each
    // mixed with its own simulation seed, so the sweep as a whole
    // stays deterministic (I9).
    if (sim::FaultPlanRequest::requested()) {
        sim_->faults().arm(
            sim::FaultPlanRequest::seed() ^
                (cfg_.seed * 0x9e3779b97f4a7c15ull),
            sim::FaultPlan::parse(sim::FaultPlanRequest::planText()));
        if (observed_)
            sim_->faults().registerStats(sim_->stats());
    }

    // --check from the bench harness: like --faults every testbed in a
    // sweep gets its own checker. The checker is pure observation, so
    // arming it cannot change any simulated result.
    if (check::CheckRequest::requested()) {
        check::IsolationChecker::Config ccfg;
        ccfg.abortOnLeak = check::CheckRequest::abortOnLeak();
        checker_ = std::make_unique<check::IsolationChecker>(
            sim_->queue(), ccfg);
        machine_->attachChecker(checker_.get());
        checker_->setTracer(&sim_->tracer());
        if (observed_)
            checker_->registerStats(sim_->stats());
    }
}

void
Testbed::writeObservability()
{
    if (!observed_ || observabilityWritten_)
        return;
    observabilityWritten_ = true;
    const std::string& sp = sim::ObservabilityRequest::statsPath();
    const std::string& tp = sim::ObservabilityRequest::tracePath();
    if (!sp.empty())
        sim_->stats().writeFile(sp);
    if (!tp.empty())
        sim_->tracer().writeFile(tp);
}

Testbed::~Testbed()
{
    // Write observability outputs first, while every component (and
    // thus every registered stat) is still alive. Benches whose
    // workloads register stats of their own call writeObservability()
    // before those workloads die; this is the fallback.
    writeObservability();
    // VMs reference the kernel/RMM: drop them first, in reverse order.
    while (!vms_.empty())
        vms_.pop_back();
}

rmm::RmmConfig
Testbed::rmmConfigFor(RunMode m) const
{
    rmm::RmmConfig r;
    switch (m) {
      case RunMode::SharedCore:
      case RunMode::SharedCoreCvm:
        break;
      case RunMode::CoreGapped:
        r.coreGapped = true;
        r.delegateInterrupts = true;
        r.localWfi = true;
        break;
      case RunMode::CoreGappedBusyWait:
      case RunMode::CoreGappedNoDelegation:
        // The fig. 6 ablations: the paper's "busy waiting" lines use
        // Quarantine-style polling with delegation disabled.
        r.coreGapped = true;
        r.delegateInterrupts = false;
        r.localWfi = true;
        break;
    }
    r.verifyScrubs = cfg_.verifyScrubs;
    return r;
}

vmm::KvmConfig
Testbed::kvmConfigFor(RunMode m, host::CpuMask vcpu_mask) const
{
    vmm::KvmConfig k;
    k.mode = m == RunMode::SharedCore ? vmm::VmMode::SharedCore
                                      : vmm::VmMode::SharedCoreCvm;
    k.vcpuAffinity = vcpu_mask;
    return k;
}

VmInstance&
Testbed::createVm(const std::string& name, int phys_cores,
                  guest::VmConfig base)
{
    if (phys_cores < 1 || (isGapped(cfg_.mode) && phys_cores < 2))
        sim::fatal("VM '%s': need >= %d physical cores", name.c_str(),
                   isGapped(cfg_.mode) ? 2 : 1);
    if (nextCore_ + phys_cores > machine_->numCores())
        sim::fatal("out of physical cores for VM '%s'", name.c_str());
    std::vector<sim::CoreId> cores;
    for (int i = 0; i < phys_cores; ++i)
        cores.push_back(nextCore_++);

    if (isGapped(cfg_.mode)) {
        // First core hosts the VMM threads; the rest are dedicated.
        host::CpuMask host_mask = host::CpuMask::single(cores[0]);
        std::vector<sim::CoreId> guests(cores.begin() + 1, cores.end());
        VmInstance& v = createVmOn(name, guests, host_mask,
                                   phys_cores - 1, base);
        v.physCores = cores;
        return v;
    }
    host::CpuMask mask;
    for (sim::CoreId c : cores)
        mask.set(c);
    VmInstance& v = createVmOn(name, cores, mask, phys_cores, base);
    v.physCores = cores;
    return v;
}

VmInstance&
Testbed::createVmOn(const std::string& name,
                    std::vector<sim::CoreId> guest_cores,
                    host::CpuMask host_mask, int num_vcpus,
                    guest::VmConfig base, cg::core::CorePlanner* planner)
{
    auto inst = std::make_unique<VmInstance>();
    base.name = name;
    base.numVcpus = num_vcpus;
    inst->vm = std::make_unique<guest::Vm>(*machine_, base,
                                           nextDomain_++);
    inst->guestCores = guest_cores;
    inst->hostMask = host_mask;
    inst->physCores = guest_cores;

    const bool gapped = isGapped(cfg_.mode);
    host::CpuMask vcpu_mask = host_mask;
    if (!gapped) {
        vcpu_mask = host::CpuMask{};
        for (sim::CoreId c : guest_cores)
            vcpu_mask.set(c);
    }
    inst->kvm = std::make_unique<vmm::KvmVm>(
        *kernel_, *inst->vm, *kicks_,
        kvmConfigFor(cfg_.mode, vcpu_mask));

    if (cfg_.mode != RunMode::SharedCore) {
        const int realm = vmm::createRealmFor(*rmm_, *inst->vm);
        inst->kvm->attachRealm(*rmm_, realm);
        CG_ASSERT(rmm_->realm(realm)->domain == inst->vm->domain(),
                  "domain bookkeeping out of sync for '%s'",
                  name.c_str());
    }
    if (gapped) {
        cg::core::GappedVmConfig gcfg;
        gcfg.guestCores = guest_cores;
        gcfg.hostCores = host_mask;
        gcfg.busyWaitRun = cfg_.mode == RunMode::CoreGappedBusyWait;
        gcfg.wakeSpinMax = cfg_.wakeSpinMax;
        gcfg.planner = planner;
        gcfg.verifyScrubs = cfg_.verifyScrubs;
        inst->gapped = std::make_unique<cg::core::GappedVm>(
            *inst->kvm, *doorbell_, gcfg);
    }
    inst->vm->registerStats(sim_->stats());
    inst->kvm->registerStats(sim_->stats());
    if (inst->gapped)
        inst->gapped->registerStats(sim_->stats());
    vms_.push_back(std::move(inst));
    return *vms_.back();
}

void
Testbed::addVirtioNet(VmInstance& v)
{
    vmm::VirtioNet::Config c;
    c.mmioBase = nextMmioBase_;
    nextMmioBase_ += 0x1000;
    c.irq = nextIrq_++;
    c.ioThreadAffinity = v.hostMask;
    v.vnet = std::make_unique<vmm::VirtioNet>(*v.kvm, *fabric_, c);
}

void
Testbed::addVirtioBlk(VmInstance& v)
{
    vmm::VirtioBlk::Config c;
    c.mmioBase = nextMmioBase_;
    nextMmioBase_ += 0x1000;
    c.irq = nextIrq_++;
    c.ioThreadAffinity = v.hostMask;
    v.vblk = std::make_unique<vmm::VirtioBlk>(*v.kvm, *disk_, c);
}

void
Testbed::addMqNic(VmInstance& v, MqNicOptions opt)
{
    vmm::MqVirtioNet::Config c;
    c.numQueues = opt.queues;
    c.mmioBase = nextMmioBase_;
    nextMmioBase_ += 0x1000;
    c.irqBase = nextIrq_;
    nextIrq_ += opt.queues;
    c.msiSpiBase = nextSpi_;
    nextSpi_ += opt.queues;
    c.backend = opt.ipuOffload ? vmm::MqVirtioNet::Backend::IpuOffload
                               : vmm::MqVirtioNet::Backend::Trapped;
    c.directRx = opt.directRx;
    c.kickBatchLimit = opt.kickBatchLimit;
    c.eventIdxPublishDelay = opt.eventIdxPublishDelay;
    c.recordTxLog = opt.recordTxLog;
    c.ioThreadAffinity = v.hostMask;
    if (opt.directRx && !v.gapped)
        sim::fatal("direct interrupt delivery needs a gapped VM");
    if (opt.ipuOffload) {
        // Reserve the IPU's I/O cores from the testbed's free pool:
        // they belong to the device, not to any VM's core budget.
        const int n = std::min(opt.ipuCores, opt.queues);
        if (nextCore_ + n > machine_->numCores()) {
            sim::fatal("testbed: out of cores for the IPU (%d + %d > "
                       "%d)", nextCore_, n, machine_->numCores());
        }
        for (int i = 0; i < n; ++i)
            c.ipuCores.push_back(nextCore_++);
    } else {
        // Hosted MSI path lands on one of this VM's host cores.
        for (sim::CoreId i = 0; i < machine_->numCores(); ++i) {
            if (v.hostMask.test(i)) {
                c.msiTargetCore = i;
                break;
            }
        }
    }
    v.mqnet = std::make_unique<vmm::MqVirtioNet>(*v.kvm, *fabric_, c);
    v.mqnet->registerStats(sim_->stats());
    if (opt.directRx) {
        for (int q = 0; q < opt.queues; ++q) {
            v.gapped->mapDirectIrq(c.msiSpiBase + q, c.irqBase + q,
                                   q % v.numVcpus());
        }
    }
}

void
Testbed::addSriovNic(VmInstance& v, bool direct)
{
    vmm::SriovNic::Config c;
    c.msiSpi = nextSpi_++;
    c.virq = nextIrq_++;
    if (direct && !v.gapped)
        sim::fatal("direct interrupt delivery needs a gapped VM");
    c.directToGuest = direct;
    // The VF's MSI lands on a VMM host core for this VM.
    for (sim::CoreId i = 0; i < machine_->numCores(); ++i) {
        if (v.hostMask.test(i)) {
            c.msiTargetCore = i;
            break;
        }
    }
    v.sriov = std::make_unique<vmm::SriovNic>(*v.kvm, *fabric_, c);
    if (direct)
        v.gapped->mapDirectIrq(c.msiSpi, c.virq, c.irqVcpu);
}

Proc<void>
Testbed::startAll()
{
    for (auto& v : vms_) {
        if (v->gapped) {
            if (!co_await v->gapped->start()) {
                ++startFailures_;
                sim::warn("testbed: VM '%s' failed to start (cores "
                          "handed back)", v->vm->name().c_str());
            }
        } else {
            v->kvm->start();
        }
    }
    started_.open();
}

void
Testbed::spawnStart()
{
    sim_->spawn("testbed-start", startAll());
}

void
Testbed::destroyVm(VmInstance& v)
{
    for (auto it = vms_.begin(); it != vms_.end(); ++it) {
        if (it->get() == &v) {
            vms_.erase(it);
            return;
        }
    }
    sim::fatal("destroyVm: VM is not in this testbed");
}

bool
Testbed::allShutdown() const
{
    for (const auto& v : vms_) {
        if (!v->kvm->shutdownGate().isOpen())
            return false;
    }
    return true;
}

Tick
Testbed::run(Tick limit)
{
    return sim_->run(limit);
}

} // namespace cg::workloads
