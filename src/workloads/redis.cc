#include "workloads/redis.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

using sim::Compute;

const char*
redisOpName(RedisOp op)
{
    switch (op) {
      case RedisOp::Set:
        return "SET";
      case RedisOp::Get:
        return "GET";
      case RedisOp::Lrange100:
        return "LRANGE 100";
    }
    return "?";
}

RedisBenchmark::RedisBenchmark(Testbed& bed, VmInstance& vm,
                               GuestNic& nic, RemoteHost& clients,
                               Config cfg)
    : bed_(bed),
      vm_(vm),
      nic_(nic),
      remote_(clients),
      cfg_(cfg),
      sentAt_(static_cast<size_t>(cfg.clients), 0)
{}

std::uint64_t
RedisBenchmark::requestBytes() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return 64 + cfg_.valueBytes;
      case RedisOp::Get:
        return 64;
      case RedisOp::Lrange100:
        return 72;
    }
    return 64;
}

std::uint64_t
RedisBenchmark::responseBytes() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return 8; // +OK
      case RedisOp::Get:
        return 16 + cfg_.valueBytes;
      case RedisOp::Lrange100:
        return 100 * cfg_.valueBytes + 400;
    }
    return 8;
}

Tick
RedisBenchmark::serviceTime() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return cfg_.setService;
      case RedisOp::Get:
        return cfg_.getService;
      case RedisOp::Lrange100:
        return cfg_.lrangeService;
    }
    return cfg_.getService;
}

void
RedisBenchmark::install()
{
    vm_.vcpu(0).startGuest(
        sim::strFormat("%s/redis-server", vm_.vm->name().c_str()),
        server());
    remote_.setHandler(
        [this](const vmm::Packet& p) { onClientRx(p); });
}

sim::Proc<void>
RedisBenchmark::server()
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(0);
    sim::Simulation& s = bed_.sim();
    // Kick the client fleet off, now that the server is listening.
    measureStart_ = s.now();
    measureEnd_ = measureStart_ + cfg_.duration;
    if (!clientsStarted_) {
        clientsStarted_ = true;
        for (int c = 0; c < cfg_.clients; ++c)
            clientSend(c);
    }
    for (;;) {
        vmm::Packet req = co_await nic_.recv(v);
        Tick service = s.rng().jittered(serviceTime(), 0.08);
        if (s.rng().chance(cfg_.slowOpProbability)) {
            // Housekeeping strikes: rehash step, expiry cycle, etc.
            service = static_cast<Tick>(
                static_cast<double>(service) * cfg_.slowOpFactor);
        }
        co_await Compute{service};
        co_await nic_.send(v, responseBytes(), remote_.port(),
                           req.cookie);
        if (s.now() >= measureEnd_)
            break;
    }
    co_await v.shutdown();
}

void
RedisBenchmark::clientSend(int client_id)
{
    sentAt_[static_cast<size_t>(client_id)] = bed_.sim().now();
    remote_.send(nic_.port(), requestBytes(),
                 static_cast<std::uint64_t>(client_id));
}

void
RedisBenchmark::clientSendLater(int client_id)
{
    if (cfg_.clientThink == 0) {
        clientSend(client_id);
        return;
    }
    const Tick think = static_cast<Tick>(bed_.sim().rng().exponential(
        static_cast<double>(cfg_.clientThink)));
    bed_.sim().queue().scheduleIn(think, [this, client_id] {
        if (bed_.sim().now() < measureEnd_)
            clientSend(client_id);
    });
}

void
RedisBenchmark::onClientRx(const vmm::Packet& pkt)
{
    const int client = static_cast<int>(pkt.cookie);
    if (client < 0 || client >= cfg_.clients)
        return;
    const Tick now = bed_.sim().now();
    const Tick sent = sentAt_[static_cast<size_t>(client)];
    if (sent > 0) {
        latencies_.sample(static_cast<double>(now - sent));
        ++completed_;
    }
    if (now < measureEnd_)
        clientSendLater(client);
}

RedisBenchmark::Result
RedisBenchmark::result() const
{
    Result r;
    r.completed = completed_;
    const Tick window =
        measureEnd_ > measureStart_ ? measureEnd_ - measureStart_ : 0;
    if (window > 0) {
        r.throughputKrps = static_cast<double>(completed_) /
                           sim::toSec(window) / 1e3;
    }
    if (latencies_.count() > 0) {
        r.meanMs = sim::ticksToMs(latencies_.mean());
        r.p95Ms = sim::ticksToMs(latencies_.percentile(95));
        r.p99Ms = sim::ticksToMs(latencies_.percentile(99));
    }
    return r;
}

// ------------------------------------------------------- RedisOpenLoop

RedisOpenLoop::RedisOpenLoop(Testbed& bed, VmInstance& vm,
                             GuestNic& nic, RemoteHost& remote,
                             Config cfg)
    : bed_(bed), vm_(vm), nic_(nic), remote_(remote), cfg_(cfg)
{
    cfg_.serverThreads = std::min(
        {cfg_.serverThreads, vm_.numVcpus(), nic_.numQueues()});
    if (cfg_.serverThreads < 1)
        cfg_.serverThreads = 1;
}

std::uint64_t
RedisOpenLoop::requestBytes() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return 64 + cfg_.valueBytes;
      case RedisOp::Get:
        return 64;
      case RedisOp::Lrange100:
        return 72;
    }
    return 64;
}

std::uint64_t
RedisOpenLoop::responseBytes() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return 8;
      case RedisOp::Get:
        return 16 + cfg_.valueBytes;
      case RedisOp::Lrange100:
        return 100 * cfg_.valueBytes + 400;
    }
    return 8;
}

Tick
RedisOpenLoop::serviceTime() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return cfg_.setService;
      case RedisOp::Get:
        return cfg_.getService;
      case RedisOp::Lrange100:
        return cfg_.lrangeService;
    }
    return cfg_.getService;
}

void
RedisOpenLoop::install()
{
    for (int t = 0; t < cfg_.serverThreads; ++t) {
        vm_.vcpu(t).startGuest(
            sim::strFormat("%s/redis-srv%d", vm_.vm->name().c_str(),
                           t),
            serverThread(t));
    }
    remote_.setHandler(
        [this](const vmm::Packet& p) { onClientRx(p); });
}

void
RedisOpenLoop::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, sim::strFormat(
        "openloop.%s", vm_.vm->name().c_str()));
    statGroup_.add("latency", latencies_);
    statGroup_.add("sent", sent_);
    statGroup_.add("completed", completed_);
    statGroup_.add("inFlightDepth", inFlightDepth_);
}

void
RedisOpenLoop::scheduleNextArrival()
{
    // Open loop: exponential inter-arrival gaps at the offered rate,
    // independent of completions — queueing delay lands in the
    // latency tail instead of throttling the arrival process.
    const double mean_gap_ticks =
        static_cast<double>(sim::sec) / (cfg_.offeredKrps * 1e3);
    const Tick gap = static_cast<Tick>(
        bed_.sim().rng().exponential(mean_gap_ticks));
    bed_.sim().queue().scheduleIn(gap, [this] {
        if (bed_.sim().now() >= measureEnd_)
            return;
        sendOne();
        scheduleNextArrival();
    });
}

void
RedisOpenLoop::sendOne()
{
    sent_.inc();
    ++inFlight_;
    inFlightDepth_.sample(static_cast<double>(inFlight_));
    // The send tick rides as the flow cookie: the response's latency
    // is now - cookie, with no per-client bookkeeping to alias when
    // arrivals overtake completions. It also spreads flows across the
    // NIC's queues (RSS is cookie % queues).
    remote_.send(nic_.port(), requestBytes(), bed_.sim().now());
}

void
RedisOpenLoop::onClientRx(const vmm::Packet& pkt)
{
    const Tick now = bed_.sim().now();
    latencies_.sample(now - static_cast<Tick>(pkt.cookie));
    completed_.inc();
    if (inFlight_ > 0)
        --inFlight_;
    if (now >= measureEnd_ && inFlight_ == 0 && !stopSent_) {
        // Load is off and the last response is in: poison every
        // queue so the server threads shut their vCPUs down and the
        // testbed can quiesce.
        stopSent_ = true;
        for (int q = 0; q < nic_.numQueues(); ++q) {
            remote_.send(nic_.port(), 64,
                         static_cast<std::uint64_t>(q));
        }
    }
}

sim::Proc<void>
RedisOpenLoop::serverThread(int t)
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(t);
    sim::Simulation& s = bed_.sim();
    if (t == 0 && !started_) {
        started_ = true;
        measureStart_ = s.now();
        measureEnd_ = measureStart_ + cfg_.duration;
        exitsAtStart_ = bed_.rmm().stats().exitsToHost.value();
        irqExitsAtStart_ =
            bed_.rmm().stats().irqRelatedExitsToHost.value();
        // Snapshot the exit counters when the offered load stops, so
        // the delta covers exactly the measurement window.
        s.queue().schedule(measureEnd_, [this] {
            exitsAtEnd_ = bed_.rmm().stats().exitsToHost.value();
            irqExitsAtEnd_ =
                bed_.rmm().stats().irqRelatedExitsToHost.value();
        });
        scheduleNextArrival();
    }
    for (;;) {
        vmm::Packet req = co_await nic_.recvQueue(v, t);
        if (req.cookie <
            static_cast<std::uint64_t>(nic_.numQueues())) {
            // Poison pill (real cookies are send ticks, far larger):
            // the sweep is over.
            break;
        }
        Tick service = s.rng().jittered(serviceTime(), 0.08);
        if (s.rng().chance(cfg_.slowOpProbability)) {
            service = static_cast<Tick>(
                static_cast<double>(service) * cfg_.slowOpFactor);
        }
        co_await Compute{service};
        co_await nic_.send(v, responseBytes(), remote_.port(),
                           req.cookie);
    }
    co_await v.shutdown();
}

RedisOpenLoop::Result
RedisOpenLoop::result() const
{
    Result r;
    r.offeredKrps = cfg_.offeredKrps;
    r.sent = sent_.value();
    r.completed = completed_.value();
    r.maxInFlight =
        static_cast<std::uint64_t>(inFlightDepth_.max());
    const Tick window =
        measureEnd_ > measureStart_ ? measureEnd_ - measureStart_ : 0;
    if (window > 0) {
        r.achievedKrps = static_cast<double>(r.completed) /
                         sim::toSec(window) / 1e3;
    }
    if (latencies_.count() > 0) {
        r.meanMs = latencies_.meanMs();
        r.p50Ms = latencies_.p50Ms();
        r.p99Ms = latencies_.p99Ms();
        r.p999Ms = latencies_.p999Ms();
    }
    r.vmExits = exitsAtEnd_ > exitsAtStart_
                    ? exitsAtEnd_ - exitsAtStart_
                    : 0;
    r.irqExits = irqExitsAtEnd_ > irqExitsAtStart_
                     ? irqExitsAtEnd_ - irqExitsAtStart_
                     : 0;
    return r;
}

} // namespace cg::workloads
