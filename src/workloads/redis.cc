#include "workloads/redis.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

using sim::Compute;

const char*
redisOpName(RedisOp op)
{
    switch (op) {
      case RedisOp::Set:
        return "SET";
      case RedisOp::Get:
        return "GET";
      case RedisOp::Lrange100:
        return "LRANGE 100";
    }
    return "?";
}

RedisBenchmark::RedisBenchmark(Testbed& bed, VmInstance& vm,
                               GuestNic& nic, RemoteHost& clients,
                               Config cfg)
    : bed_(bed),
      vm_(vm),
      nic_(nic),
      remote_(clients),
      cfg_(cfg),
      sentAt_(static_cast<size_t>(cfg.clients), 0)
{}

std::uint64_t
RedisBenchmark::requestBytes() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return 64 + cfg_.valueBytes;
      case RedisOp::Get:
        return 64;
      case RedisOp::Lrange100:
        return 72;
    }
    return 64;
}

std::uint64_t
RedisBenchmark::responseBytes() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return 8; // +OK
      case RedisOp::Get:
        return 16 + cfg_.valueBytes;
      case RedisOp::Lrange100:
        return 100 * cfg_.valueBytes + 400;
    }
    return 8;
}

Tick
RedisBenchmark::serviceTime() const
{
    switch (cfg_.op) {
      case RedisOp::Set:
        return cfg_.setService;
      case RedisOp::Get:
        return cfg_.getService;
      case RedisOp::Lrange100:
        return cfg_.lrangeService;
    }
    return cfg_.getService;
}

void
RedisBenchmark::install()
{
    vm_.vcpu(0).startGuest(
        sim::strFormat("%s/redis-server", vm_.vm->name().c_str()),
        server());
    remote_.setHandler(
        [this](const vmm::Packet& p) { onClientRx(p); });
}

sim::Proc<void>
RedisBenchmark::server()
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(0);
    sim::Simulation& s = bed_.sim();
    // Kick the client fleet off, now that the server is listening.
    measureStart_ = s.now();
    measureEnd_ = measureStart_ + cfg_.duration;
    if (!clientsStarted_) {
        clientsStarted_ = true;
        for (int c = 0; c < cfg_.clients; ++c)
            clientSend(c);
    }
    for (;;) {
        vmm::Packet req = co_await nic_.recv(v);
        Tick service = s.rng().jittered(serviceTime(), 0.08);
        if (s.rng().chance(cfg_.slowOpProbability)) {
            // Housekeeping strikes: rehash step, expiry cycle, etc.
            service = static_cast<Tick>(
                static_cast<double>(service) * cfg_.slowOpFactor);
        }
        co_await Compute{service};
        co_await nic_.send(v, responseBytes(), remote_.port(),
                           req.cookie);
        if (s.now() >= measureEnd_)
            break;
    }
    co_await v.shutdown();
}

void
RedisBenchmark::clientSend(int client_id)
{
    sentAt_[static_cast<size_t>(client_id)] = bed_.sim().now();
    remote_.send(nic_.port(), requestBytes(),
                 static_cast<std::uint64_t>(client_id));
}

void
RedisBenchmark::clientSendLater(int client_id)
{
    if (cfg_.clientThink == 0) {
        clientSend(client_id);
        return;
    }
    const Tick think = static_cast<Tick>(bed_.sim().rng().exponential(
        static_cast<double>(cfg_.clientThink)));
    bed_.sim().queue().scheduleIn(think, [this, client_id] {
        if (bed_.sim().now() < measureEnd_)
            clientSend(client_id);
    });
}

void
RedisBenchmark::onClientRx(const vmm::Packet& pkt)
{
    const int client = static_cast<int>(pkt.cookie);
    if (client < 0 || client >= cfg_.clients)
        return;
    const Tick now = bed_.sim().now();
    const Tick sent = sentAt_[static_cast<size_t>(client)];
    if (sent > 0) {
        latencies_.sample(static_cast<double>(now - sent));
        ++completed_;
    }
    if (now < measureEnd_)
        clientSendLater(client);
}

RedisBenchmark::Result
RedisBenchmark::result() const
{
    Result r;
    r.completed = completed_;
    const Tick window =
        measureEnd_ > measureStart_ ? measureEnd_ - measureStart_ : 0;
    if (window > 0) {
        r.throughputKrps = static_cast<double>(completed_) /
                           sim::toSec(window) / 1e3;
    }
    if (latencies_.count() > 0) {
        r.meanMs = latencies_.mean() / 1e9;
        r.p95Ms = latencies_.percentile(95) / 1e9;
        r.p99Ms = latencies_.percentile(99) / 1e9;
    }
    return r;
}

} // namespace cg::workloads
