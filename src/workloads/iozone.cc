#include "workloads/iozone.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

IoZone::IoZone(Testbed& bed, VmInstance& vm, Config cfg)
    : bed_(bed), vm_(vm), cfg_(cfg)
{
    if (!vm_.vblk)
        sim::fatal("IoZone needs a virtio-blk device on '%s'",
                   vm_.vm->name().c_str());
}

void
IoZone::install()
{
    vm_.vcpu(0).startGuest(
        sim::strFormat("%s/iozone", vm_.vm->name().c_str()), runner());
}

sim::Proc<void>
IoZone::runner()
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(0);
    sim::Simulation& s = bed_.sim();
    const int total_ops = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(cfg_.maxOps),
        std::max<std::uint64_t>(1, cfg_.fileBytes / cfg_.recordBytes)));
    start_ = s.now();
    for (int i = 0; i < total_ops; ++i) {
        co_await vm_.vblk->guestIo(v, cfg_.recordBytes, cfg_.write);
        ++ops_;
    }
    end_ = s.now();
    co_await v.shutdown();
}

IoZone::Result
IoZone::result() const
{
    Result r;
    r.ops = ops_;
    r.elapsed = end_ > start_ ? end_ - start_ : 0;
    if (r.elapsed > 0) {
        const double bytes = static_cast<double>(ops_) *
                             static_cast<double>(cfg_.recordBytes);
        r.throughputMBps = bytes / (1 << 20) / sim::toSec(r.elapsed);
    }
    return r;
}

} // namespace cg::workloads
