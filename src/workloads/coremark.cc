#include "workloads/coremark.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

using sim::Compute;

CoreMarkPro::CoreMarkPro(Testbed& bed, VmInstance& vm, Config cfg)
    : bed_(bed),
      vm_(vm),
      cfg_(cfg),
      iters_(static_cast<size_t>(vm.numVcpus()), 0)
{}

void
CoreMarkPro::install()
{
    for (int i = 0; i < vm_.numVcpus(); ++i) {
        vm_.vcpu(i).startGuest(
            sim::strFormat("%s/coremark%d", vm_.vm->name().c_str(), i),
            worker(i));
    }
}

sim::Proc<void>
CoreMarkPro::worker(int vcpu_idx)
{
    // Wait for the whole testbed to be up before measuring, so
    // bring-up (hotplug, realm build) is excluded, as a benchmark
    // harness would do.
    co_await bed_.started().wait();
    sim::Simulation& s = bed_.sim();
    const Tick start = s.now();
    if (measuredStart_ == 0 || start < measuredStart_)
        measuredStart_ = start;
    const Tick deadline = start + cfg_.duration;
    std::uint64_t& count = iters_[static_cast<size_t>(vcpu_idx)];
    while (s.now() < deadline) {
        co_await Compute{cfg_.iterationWork};
        ++count;
    }
    if (s.now() > measuredEnd_)
        measuredEnd_ = s.now();
    co_await vm_.vcpu(vcpu_idx).shutdown();
}

CoreMarkPro::Result
CoreMarkPro::result() const
{
    Result r;
    for (std::uint64_t c : iters_)
        r.iterations += c;
    r.elapsed = measuredEnd_ > measuredStart_
                    ? measuredEnd_ - measuredStart_
                    : 0;
    if (r.elapsed > 0) {
        r.score = static_cast<double>(r.iterations) /
                  sim::toSec(r.elapsed);
    }
    return r;
}

} // namespace cg::workloads
