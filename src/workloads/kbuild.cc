#include "workloads/kbuild.hh"

#include "sim/simulation.hh"

namespace cg::workloads {

using sim::Compute;

KernelBuild::KernelBuild(Testbed& bed, VmInstance& vm, Config cfg)
    : bed_(bed), vm_(vm), cfg_(cfg)
{
    if (!vm_.vblk)
        sim::fatal("KernelBuild needs a virtio-blk device on '%s'",
                   vm_.vm->name().c_str());
}

void
KernelBuild::install()
{
    for (int i = 0; i < vm_.numVcpus(); ++i) {
        vm_.vcpu(i).startGuest(
            sim::strFormat("%s/cc%d", vm_.vm->name().c_str(), i),
            worker(i));
    }
}

sim::Proc<void>
KernelBuild::worker(int vcpu_idx)
{
    co_await bed_.started().wait();
    guest::VCpu& v = vm_.vcpu(vcpu_idx);
    sim::Simulation& s = bed_.sim();
    if (start_ == 0)
        start_ = s.now();
    for (;;) {
        if (nextJob_ >= cfg_.jobs)
            break;
        ++nextJob_;
        co_await vm_.vblk->guestIo(v, cfg_.sourceBytes, false);
        co_await Compute{s.rng().jittered(cfg_.compilePerJob, 0.15)};
        co_await vm_.vblk->guestIo(v, cfg_.objectBytes, true);
        ++jobsDone_;
    }
    // Last worker out runs the serial link step; everyone else keeps
    // its vCPU alive until then (vCPU 0 handles the disk interrupts).
    if (++workersDone_ == vm_.numVcpus()) {
        co_await link(v);
        buildDone_.open();
    } else {
        co_await buildDone_.wait();
    }
    co_await v.shutdown();
}

sim::Proc<void>
KernelBuild::link(guest::VCpu& v)
{
    co_await vm_.vblk->guestIo(v, cfg_.linkReadBytes, false);
    co_await Compute{cfg_.linkCompute};
    co_await vm_.vblk->guestIo(v, cfg_.linkWriteBytes, true);
    end_ = bed_.sim().now();
    finished_ = true;
}

KernelBuild::Result
KernelBuild::result() const
{
    Result r;
    r.jobsDone = jobsDone_;
    r.finished = finished_;
    r.buildTime = end_ > start_ ? end_ - start_ : 0;
    return r;
}

} // namespace cg::workloads
