/**
 * @file
 * The interface through which the security monitor (or, for
 * non-confidential VMs, the hypervisor directly) executes guest vCPU
 * code. Implemented by guest::VCpu; declared here so the RMM does not
 * depend on the guest model.
 */

#ifndef CG_RMM_GUEST_CONTEXT_HH
#define CG_RMM_GUEST_CONTEXT_HH

#include "hw/gic.hh"
#include "rmm/exit.hh"
#include "rmm/measurement.hh"
#include "sim/proc.hh"
#include "sim/types.hh"

namespace cg::rmm {

/** Hypercall function id for RSI_ATTESTATION_TOKEN (simplified). */
constexpr std::uint64_t rsiAttestCall = 0xC4000194ull;

class GuestContext
{
  public:
    virtual ~GuestContext() = default;

    /**
     * Execute guest code on @p core until the next exit-worthy event
     * (trap, interrupt, WFI, host kick). May complete immediately if an
     * event is already pending.
     */
    virtual sim::Proc<ExitInfo> runUntilExit(sim::CoreId core) = 0;

    /**
     * Inject a virtual interrupt through a list register.
     * @return false if all list registers are occupied.
     */
    virtual bool injectVirq(hw::IntId vintid) = 0;

    /** Force the current runUntilExit to complete with @p reason. */
    virtual void forceExit(ExitReason reason) = 0;

    /** Deliver the completion value of a pending emulated MMIO read. */
    virtual void completeMmio(std::uint64_t data) = 0;

    /**
     * Deliver the result of an RSI attestation call. RSI calls are
     * serviced entirely inside the monitor (never exposed to the
     * host), so this completes before the trap retires.
     */
    virtual void completeAttest(const AttestationToken& token)
    {
        (void)token;
    }

    /** True while the vCPU is entered (guest code can make progress). */
    virtual bool entered() const = 0;

    /** The vCPU's list registers (the *true* list of fig. 5). */
    virtual hw::ListRegFile& listRegs() = 0;
};

} // namespace cg::rmm

#endif // CG_RMM_GUEST_CONTEXT_HH
