#include "rmm/exit.hh"

namespace cg::rmm {

const char*
exitReasonName(ExitReason r)
{
    switch (r) {
      case ExitReason::None:
        return "none";
      case ExitReason::TimerIrq:
        return "timer-irq";
      case ExitReason::TimerWrite:
        return "timer-write";
      case ExitReason::SgiWrite:
        return "sgi-write";
      case ExitReason::Wfi:
        return "wfi";
      case ExitReason::Mmio:
        return "mmio";
      case ExitReason::PageFault:
        return "page-fault";
      case ExitReason::Hypercall:
        return "hypercall";
      case ExitReason::HostKick:
        return "host-kick";
      case ExitReason::Shutdown:
        return "shutdown";
    }
    return "?";
}

} // namespace cg::rmm
