/**
 * @file
 * VM exit information: the reason a running vCPU (REC) stopped
 * executing guest code, plus the payload the handler needs. This is the
 * data the RMM copies into shared memory for the host — locally on a
 * shared core in baseline CCA, or across cores in the core-gapped
 * design (section 3, change 2).
 */

#ifndef CG_RMM_EXIT_HH
#define CG_RMM_EXIT_HH

#include <cstdint>

namespace cg::rmm {

enum class ExitReason {
    None,
    /** The guest's virtual timer fired (physical IRQ to the monitor). */
    TimerIrq,
    /** Guest wrote CNTV_CTL/CNTV_CVAL (trapped register access). */
    TimerWrite,
    /** Guest wrote ICC_SGI1R: wants to send a virtual IPI. */
    SgiWrite,
    /** Guest executed WFI with no pending virtual interrupt. */
    Wfi,
    /** Guest accessed emulated MMIO (device emulation needed). */
    Mmio,
    /** Stage-2 translation fault: the host must map memory. */
    PageFault,
    /** PSCI or other hypercall. */
    Hypercall,
    /** The host asked for an exit (kick IPI), e.g. to inject an IRQ. */
    HostKick,
    /** The guest shut down (PSCI SYSTEM_OFF). */
    Shutdown,
};

const char* exitReasonName(ExitReason r);

struct ExitInfo {
    ExitReason reason = ExitReason::None;
    std::uint64_t addr = 0;  ///< Mmio: GPA; PageFault: faulting IPA
    std::uint64_t data = 0;  ///< Mmio write: value; TimerWrite: deadline
    int len = 0;             ///< Mmio: access size in bytes
    bool isWrite = false;    ///< Mmio: direction
    int target = -1;         ///< SgiWrite: destination vCPU index
    std::uint64_t code = 0;  ///< Hypercall: function id

    /** Is this exit caused by interrupt management (paper table 4)? */
    bool
    interruptRelated() const
    {
        return reason == ExitReason::TimerIrq ||
               reason == ExitReason::TimerWrite ||
               reason == ExitReason::SgiWrite ||
               reason == ExitReason::HostKick;
    }
};

} // namespace cg::rmm

#endif // CG_RMM_EXIT_HH
