#include "rmm/measurement.hh"

#include "sim/logging.hh"

namespace cg::rmm {

Digest
digestExtend(Digest d, std::uint64_t v)
{
    constexpr Digest prime = 0x100000001b3ULL;
    for (int i = 0; i < 8; ++i) {
        d ^= (v >> (i * 8)) & 0xff;
        d *= prime;
    }
    return d;
}

Digest
digestOf(const std::string& data)
{
    Digest d = digestInit;
    constexpr Digest prime = 0x100000001b3ULL;
    for (unsigned char c : data) {
        d ^= c;
        d *= prime;
    }
    return d;
}

void
Measurement::extendRim(std::uint64_t v)
{
    rim_ = digestExtend(rim_, v);
}

void
Measurement::extendRem(int index, std::uint64_t v)
{
    CG_ASSERT(index >= 0 && index < 4, "bad REM index %d", index);
    rem_[static_cast<size_t>(index)] =
        digestExtend(rem_[static_cast<size_t>(index)], v);
}

Digest
AttestationAuthority::sign(const AttestationToken& t) const
{
    Digest d = digestExtend(digestInit, secret_);
    d = digestExtend(d, t.rim);
    for (Digest r : t.rem)
        d = digestExtend(d, r);
    d = digestExtend(d, t.challenge);
    d = digestExtend(d, t.platformKeyId);
    return d;
}

AttestationToken
AttestationAuthority::issue(const Measurement& m,
                            std::uint64_t challenge) const
{
    AttestationToken t;
    t.rim = m.rim();
    for (int i = 0; i < 4; ++i)
        t.rem[static_cast<size_t>(i)] = m.rem(i);
    t.challenge = challenge;
    t.platformKeyId = digestExtend(digestInit, secret_);
    t.signature = sign(t);
    return t;
}

bool
AttestationAuthority::verify(const AttestationToken& t,
                             std::uint64_t challenge) const
{
    return t.challenge == challenge && t.signature == sign(t);
}

} // namespace cg::rmm
