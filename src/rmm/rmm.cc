#include "rmm/rmm.hh"

#include <algorithm>

#include "check/checker.hh"
#include "sim/simulation.hh"

namespace cg::rmm {

using sim::Compute;

const char*
migrationPhaseName(MigrationPhase p)
{
    switch (p) {
      case MigrationPhase::Idle:
        return "idle";
      case MigrationPhase::Prepared:
        return "prepared";
      case MigrationPhase::Copying:
        return "copying";
      case MigrationPhase::Copied:
        return "copied";
    }
    return "?";
}

Rmm::Rmm(hw::Machine& machine, RmmConfig cfg)
    : machine_(machine), cfg_(cfg), authority_(0x9a7f01c3b5d2e4f6ULL)
{}

Tick
Rmm::cost(Tick nominal)
{
    return machine_.cost(nominal);
}

void
Rmm::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "rmm");
    statGroup_.add("exitsToHost", stats_.exitsToHost);
    statGroup_.add("irqRelatedExitsToHost", stats_.irqRelatedExitsToHost);
    statGroup_.add("delegatedTimerEvents", stats_.delegatedTimerEvents);
    statGroup_.add("delegatedIpis", stats_.delegatedIpis);
    statGroup_.add("localWfiWaits", stats_.localWfiWaits);
    statGroup_.add("rmiCalls", stats_.rmiCalls);
    statGroup_.add("wrongCoreRejections", stats_.wrongCoreRejections);
    statGroup_.add("rebinds", stats_.rebinds);
    statGroup_.add("rebindsRefused", stats_.rebindsRefused);
    statGroup_.add("forcedStops", stats_.forcedStops);
    statGroup_.add("rsiCalls", stats_.rsiCalls);
    statGroup_.add("filteredInjections", stats_.filteredInjections);
    statGroup_.add("migrationsStarted", stats_.migrationsStarted);
    statGroup_.add("migrationsCommitted", stats_.migrationsCommitted);
    statGroup_.add("migrationsAborted", stats_.migrationsAborted);
    statGroup_.add("migrationGranulesCopied",
                   stats_.migrationGranulesCopied);
    statGroup_.add("migrationStalls", stats_.migrationStalls);
    statGroup_.add("scrubRepairs", stats_.scrubRepairs);
}

// --------------------------------------------------------------- granules

RmiStatus
Rmm::granuleDelegate(PhysAddr addr)
{
    stats_.rmiCalls.inc();
    return granules_.delegate(addr);
}

RmiStatus
Rmm::granuleUndelegate(PhysAddr addr)
{
    stats_.rmiCalls.inc();
    return granules_.undelegate(addr);
}

// ----------------------------------------------------------------- realms

RmiStatus
Rmm::realmCreate(PhysAddr rd, const RealmParams& params, int& realm_out)
{
    stats_.rmiCalls.inc();
    const RmiStatus s =
        granules_.assign(rd, GranuleState::Rd,
                         static_cast<int>(realms_.size()));
    if (s != RmiStatus::Success)
        return s;
    auto r = std::make_unique<Realm>();
    r->id = static_cast<int>(realms_.size());
    r->state = RealmState::New;
    r->domain = nextDomain_++;
    r->params = params;
    r->rdGranule = rd;
    r->measurement.extendRim(digestOf(params.name));
    r->measurement.extendRim(params.personalization);
    realm_out = r->id;
    realms_.push_back(std::move(r));
    return RmiStatus::Success;
}

Realm*
Rmm::realm(int id)
{
    if (id < 0 || id >= static_cast<int>(realms_.size()))
        return nullptr;
    Realm* r = realms_[static_cast<size_t>(id)].get();
    return r->state == RealmState::Destroyed ? nullptr : r;
}

RmiStatus
Rmm::realmActivate(int realm_id)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->state != RealmState::New)
        return RmiStatus::BadState;
    r->state = RealmState::Active;
    return RmiStatus::Success;
}

RmiStatus
Rmm::realmDestroy(int realm_id)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r)
        return RmiStatus::BadState;
    for (const Rec& rec : r->recs) {
        if (rec.state != RecState::Destroyed)
            return RmiStatus::BadState; // destroy RECs first
    }
    // Scrub and release every granule the realm owns (data, RTT, RD)
    // back to the Delegated state, ready for host undelegation.
    granules_.releaseOwned(r->id);
    r->state = RealmState::Destroyed;
    return RmiStatus::Success;
}

// --------------------------------------------------------------- rtt/data

RmiStatus
Rmm::rttCreate(int realm_id, Ipa ipa, int level, PhysAddr table)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r)
        return RmiStatus::BadState;
    RmiStatus s = granules_.assign(table, GranuleState::Rtt, realm_id);
    if (s != RmiStatus::Success)
        return s;
    s = r->rtt.createTable(ipa, level, table);
    if (s != RmiStatus::Success) {
        granules_.release(table, GranuleState::Rtt, realm_id);
        return s;
    }
    return RmiStatus::Success;
}

RmiStatus
Rmm::dataCreate(int realm_id, Ipa ipa, PhysAddr data,
                std::uint64_t content)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->state != RealmState::New)
        return RmiStatus::BadState;
    RmiStatus s = granules_.assign(data, GranuleState::Data, realm_id);
    if (s != RmiStatus::Success)
        return s;
    s = r->rtt.mapPage(ipa, data);
    if (s != RmiStatus::Success) {
        granules_.release(data, GranuleState::Data, realm_id);
        return s;
    }
    r->measurement.extendRim(ipa);
    r->measurement.extendRim(content);
    return RmiStatus::Success;
}

RmiStatus
Rmm::dataCreateUnknown(int realm_id, Ipa ipa, PhysAddr data)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->state != RealmState::Active)
        return RmiStatus::BadState;
    RmiStatus s = granules_.assign(data, GranuleState::Data, realm_id);
    if (s != RmiStatus::Success)
        return s;
    s = r->rtt.mapPage(ipa, data);
    if (s != RmiStatus::Success) {
        granules_.release(data, GranuleState::Data, realm_id);
        return s;
    }
    return RmiStatus::Success;
}

RmiStatus
Rmm::dataDestroy(int realm_id, Ipa ipa)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r)
        return RmiStatus::BadState;
    auto pa = r->rtt.translate(ipa);
    if (!pa)
        return RmiStatus::BadState;
    const RmiStatus s = r->rtt.unmapPage(ipa);
    if (s != RmiStatus::Success)
        return s;
    return granules_.release(*pa & ~(granuleSize - 1),
                             GranuleState::Data, realm_id);
}

// ------------------------------------------------------------------- recs

RmiStatus
Rmm::recCreate(int realm_id, PhysAddr granule, int& rec_out)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->state != RealmState::New)
        return RmiStatus::BadState;
    const RmiStatus s =
        granules_.assign(granule, GranuleState::Rec, realm_id);
    if (s != RmiStatus::Success)
        return s;
    Rec rec;
    rec.index = static_cast<int>(r->recs.size());
    rec.state = RecState::Ready;
    rec.granule = granule;
    r->recs.push_back(rec);
    r->measurement.extendRim(static_cast<std::uint64_t>(rec.index));
    rec_out = rec.index;
    return RmiStatus::Success;
}

Rec*
Rmm::findRec(int realm_id, int rec_id)
{
    Realm* r = realm(realm_id);
    if (!r || rec_id < 0 || rec_id >= static_cast<int>(r->recs.size()))
        return nullptr;
    Rec* rec = &r->recs[static_cast<size_t>(rec_id)];
    return rec->state == RecState::Destroyed ? nullptr : rec;
}

const Rec*
Rmm::findRec(int realm_id, int rec_id) const
{
    return const_cast<Rmm*>(this)->findRec(realm_id, rec_id);
}

RmiStatus
Rmm::recDestroy(int realm_id, int rec_id)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (r && r->mig.phase != MigrationPhase::Idle)
        return RmiStatus::Busy; // abort or commit the migration first
    Rec* rec = findRec(realm_id, rec_id);
    if (!rec || rec->state == RecState::Running)
        return rec ? RmiStatus::Busy : RmiStatus::BadState;
    // Core-gapping: only REC destruction releases the dedicated core
    // (section 4.2) — until then no other CVM may be scheduled there.
    if (rec->boundCore != sim::invalidCore) {
        dedicated_.erase(rec->boundCore);
        rec->boundCore = sim::invalidCore;
    }
    granules_.release(rec->granule, GranuleState::Rec, realm_id);
    rec->state = RecState::Destroyed;
    rec->guest = nullptr;
    return RmiStatus::Success;
}

RmiStatus
Rmm::recForceStop(int realm_id, int rec_id)
{
    stats_.rmiCalls.inc();
    Rec* rec = findRec(realm_id, rec_id);
    if (!rec || rec->state == RecState::Destroyed)
        return RmiStatus::BadState;
    if (rec->state == RecState::Running) {
        // The monitor context that was running this REC is discarded,
        // not resumed: only valid when the caller has already taken the
        // core away from the hung monitor loop.
        rec->state = RecState::Stopped;
        stats_.forcedStops.inc();
    }
    return RmiStatus::Success;
}

void
Rmm::setGuestContext(int realm_id, int rec_id, GuestContext* guest)
{
    Rec* rec = findRec(realm_id, rec_id);
    CG_ASSERT(rec, "setGuestContext on missing REC %d/%d", realm_id,
              rec_id);
    rec->guest = guest;
}

CoreId
Rmm::recBinding(int realm_id, int rec_id) const
{
    const Rec* rec = findRec(realm_id, rec_id);
    return rec ? rec->boundCore : sim::invalidCore;
}

int
Rmm::dedicatedOwner(CoreId core) const
{
    auto it = dedicated_.find(core);
    return it == dedicated_.end() ? -1 : it->second.first;
}

RmiStatus
Rmm::recRebind(int realm_id, int rec_id, CoreId new_core)
{
    stats_.rmiCalls.inc();
    if (!cfg_.coreGapped) {
        stats_.rebindsRefused.inc();
        return RmiStatus::BadState;
    }
    Realm* r = realm(realm_id);
    Rec* rec = findRec(realm_id, rec_id);
    if (!r || !rec || rec->boundCore == sim::invalidCore) {
        stats_.rebindsRefused.inc();
        return RmiStatus::BadState;
    }
    if (new_core < 0 || new_core >= machine_.numCores() ||
        new_core == rec->boundCore) {
        stats_.rebindsRefused.inc();
        return RmiStatus::BadArgs;
    }
    if (r->mig.phase != MigrationPhase::Idle) {
        // Migration owns the realm's bindings until commit/abort.
        stats_.rebindsRefused.inc();
        return RmiStatus::Busy;
    }
    if (dedicated_.count(new_core)) {
        stats_.rebindsRefused.inc();
        return RmiStatus::WrongCore; // someone else's dedicated core
    }
    if (rec->state == RecState::Running) {
        // The runner must park the vCPU (exit and hold the run call)
        // before the binding can change.
        stats_.rebindsRefused.inc();
        return RmiStatus::Busy;
    }
    const Tick now = machine_.sim().now();
    if (rec->lastRebind != 0 &&
        now - rec->lastRebind < cfg_.minRebindInterval) {
        // Coarse time scales only: refuse rapid re-placement, which
        // would hand the host a scheduling-control channel back.
        stats_.rebindsRefused.inc();
        return RmiStatus::Busy;
    }
    // Scrub the guest's microarchitectural residue from the old core
    // before anyone else can run there. The scrub-skip fault site
    // models a buggy monitor that forgets; the isolation checker must
    // catch the residue at the next handback or dispatch — unless
    // verifyScrubs audits and repairs the skip on the spot.
    if (!machine_.sim().faults().query(sim::FaultSite::ScrubSkip))
        scrubCore(rec->boundCore, r->domain);
    else if (cfg_.verifyScrubs)
        repairSkippedScrub(rec->boundCore, r->domain);
    dedicated_.erase(rec->boundCore);
    dedicated_[new_core] = {realm_id, rec_id};
    rec->boundCore = new_core;
    rec->lastRebind = now;
    stats_.rebinds.inc();
    machine_.sim().tracer().instant(
        "vcpu-rebind", sim::Tracer::coresPid, new_core, "realm",
        static_cast<std::uint64_t>(realm_id));
    return RmiStatus::Success;
}

Tick
Rmm::rebindAllowedAt(int realm_id, int rec_id) const
{
    const Rec* rec = findRec(realm_id, rec_id);
    if (!rec || rec->lastRebind == 0)
        return 0;
    return rec->lastRebind + cfg_.minRebindInterval;
}

void
Rmm::scrubCore(CoreId core, sim::DomainId d)
{
    hw::CoreUarch& uarch = machine_.core(core).uarch();
    for (hw::TaggedStructure* s : uarch.all())
        s->flushDomain(d);
}

bool
Rmm::repairSkippedScrub(CoreId core, sim::DomainId d)
{
    // Audit the census without probe events: the monitor inspecting
    // its own scrub work is not an attacker observation.
    bool residue = false;
    hw::CoreUarch& uarch = machine_.core(core).uarch();
    for (hw::TaggedStructure* s : uarch.all()) {
        if (s->auditEntriesOf(d) != 0) {
            residue = true;
            break;
        }
    }
    if (!residue)
        return false;
    machine_.sim().faults().noteDetected(sim::FaultSite::ScrubSkip);
    scrubCore(core, d);
    machine_.sim().faults().noteRecovered(sim::FaultSite::ScrubSkip);
    stats_.scrubRepairs.inc();
    return true;
}

// -------------------------------------------------------------- migration

RmiStatus
Rmm::migratePrepare(int realm_id)
{
    stats_.rmiCalls.inc();
    if (!cfg_.coreGapped)
        return RmiStatus::BadState; // nothing to migrate off
    Realm* r = realm(realm_id);
    if (!r || r->state != RealmState::Active)
        return RmiStatus::BadState;
    if (r->mig.phase != MigrationPhase::Idle)
        return RmiStatus::BadState;
    for (const Rec& rec : r->recs) {
        if (rec.state == RecState::Running)
            return RmiStatus::Busy; // pause every REC first
    }
    r->mig = RealmMigration{};
    r->mig.srcGranules = granules_.owned(realm_id);
    if (r->mig.srcGranules.empty())
        return RmiStatus::BadState; // a realm always owns its RD
    for (const Rec& rec : r->recs) {
        if (rec.state != RecState::Destroyed &&
            rec.boundCore != sim::invalidCore) {
            r->mig.savedBindings.push_back(RealmMigration::SavedBinding{
                rec.index, rec.boundCore, rec.lastRebind});
        }
    }
    r->mig.phase = MigrationPhase::Prepared;
    stats_.migrationsStarted.inc();
    return RmiStatus::Success;
}

RmiStatus
Rmm::migrateCopy(int realm_id, PhysAddr dest_base,
                 std::size_t max_granules, std::size_t& copied_out)
{
    stats_.rmiCalls.inc();
    copied_out = 0;
    Realm* r = realm(realm_id);
    if (!r)
        return RmiStatus::BadState;
    RealmMigration& m = r->mig;
    if (m.phase != MigrationPhase::Prepared &&
        m.phase != MigrationPhase::Copying) {
        return RmiStatus::BadState;
    }
    if (!granuleAligned(dest_base))
        return RmiStatus::BadAddress;
    if (m.phase == MigrationPhase::Prepared) {
        m.destBase = dest_base;
        m.phase = MigrationPhase::Copying;
    } else if (dest_base != m.destBase) {
        return RmiStatus::BadArgs; // one window per migration
    }
    if (machine_.sim().faults().query(sim::FaultSite::RttCopyStall)) {
        // The copy engine stalled: no progress this batch. The control
        // plane backs off and retries from the same cursor.
        stats_.migrationStalls.inc();
        return RmiStatus::Busy;
    }
    const std::size_t end =
        max_granules == 0
            ? m.srcGranules.size()
            : std::min(m.srcGranules.size(), m.copied + max_granules);
    while (m.copied < end) {
        const auto& [src, state] = m.srcGranules[m.copied];
        const PhysAddr dst =
            m.destBase + m.copied * granuleSize;
        // The host must have delegated the whole destination window.
        const RmiStatus s = granules_.assign(dst, state, realm_id);
        if (s != RmiStatus::Success)
            return s;
        ++m.copied;
        ++copied_out;
        stats_.migrationGranulesCopied.inc();
        (void)src;
    }
    if (m.copied == m.srcGranules.size())
        m.phase = MigrationPhase::Copied;
    return RmiStatus::Success;
}

RmiStatus
Rmm::migrateBindRec(int realm_id, int rec_id, CoreId new_core)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->mig.phase != MigrationPhase::Copied)
        return RmiStatus::BadState;
    Rec* rec = findRec(realm_id, rec_id);
    if (!rec || rec->boundCore == sim::invalidCore)
        return RmiStatus::BadState;
    if (rec->state == RecState::Running)
        return RmiStatus::Busy;
    if (new_core < 0 || new_core >= machine_.numCores() ||
        new_core == rec->boundCore) {
        return RmiStatus::BadArgs;
    }
    if (dedicated_.count(new_core))
        return RmiStatus::WrongCore;
    for (int already : r->mig.rebound) {
        if (already == rec_id)
            return RmiStatus::BadState; // one move per REC
    }
    // No scrub here: the source cores are scrubbed together at the
    // commit handback (the scrub-verified teardown), after the last
    // REC has left. Rollback restores the binding verbatim.
    dedicated_.erase(rec->boundCore);
    dedicated_[new_core] = {realm_id, rec_id};
    rec->boundCore = new_core;
    rec->lastRebind = machine_.sim().now();
    r->mig.rebound.push_back(rec_id);
    stats_.rebinds.inc();
    machine_.sim().tracer().instant(
        "vcpu-rebind", sim::Tracer::coresPid, new_core, "realm",
        static_cast<std::uint64_t>(realm_id));
    return RmiStatus::Success;
}

RmiStatus
Rmm::migrateCommit(int realm_id)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->mig.phase != MigrationPhase::Copied)
        return RmiStatus::BadState;
    RealmMigration& m = r->mig;
    // Every REC bound at prepare must have been moved: committing with
    // a REC still bound to a source core would strand it there.
    for (const auto& sb : m.savedBindings) {
        bool moved = false;
        for (int rec_id : m.rebound)
            moved = moved || rec_id == sb.rec;
        const Rec* rec = findRec(realm_id, sb.rec);
        if (rec && !moved)
            return RmiStatus::BadState;
    }
    // Rewrite every granule reference to the destination window, then
    // release (scrub) the source granules back to Delegated.
    std::map<PhysAddr, PhysAddr> reloc;
    for (std::size_t i = 0; i < m.srcGranules.size(); ++i)
        reloc[m.srcGranules[i].first] = m.destBase + i * granuleSize;
    if (auto it = reloc.find(r->rdGranule); it != reloc.end())
        r->rdGranule = it->second;
    for (Rec& rec : r->recs) {
        if (auto it = reloc.find(rec.granule); it != reloc.end())
            rec.granule = it->second;
    }
    r->rtt.relocate(reloc);
    for (const auto& [src, state] : m.srcGranules)
        granules_.release(src, state, realm_id);
    r->mig = RealmMigration{};
    stats_.migrationsCommitted.inc();
    machine_.sim().tracer().instant(
        "realm-migrate", sim::Tracer::domainsPid, r->domain, "realm",
        static_cast<std::uint64_t>(realm_id));
    return RmiStatus::Success;
}

RmiStatus
Rmm::migrateAbort(int realm_id)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->mig.phase == MigrationPhase::Idle)
        return RmiStatus::BadState;
    RealmMigration& m = r->mig;
    // Release whatever reached the destination window (the RMM scrubs
    // on release, so the partial copy leaks nothing).
    for (std::size_t i = 0; i < m.copied; ++i) {
        granules_.release(m.destBase + i * granuleSize,
                          m.srcGranules[i].second, realm_id);
    }
    // Restore core bindings in reverse bind order.
    for (auto it = m.rebound.rbegin(); it != m.rebound.rend(); ++it) {
        Rec* rec = findRec(realm_id, *it);
        if (!rec)
            continue;
        for (const auto& sb : m.savedBindings) {
            if (sb.rec != *it)
                continue;
            dedicated_.erase(rec->boundCore);
            dedicated_[sb.core] = {realm_id, *it};
            rec->boundCore = sb.core;
            rec->lastRebind = sb.lastRebind;
            break;
        }
    }
    r->mig = RealmMigration{};
    stats_.migrationsAborted.inc();
    machine_.sim().tracer().instant(
        "migrate-rollback", sim::Tracer::domainsPid, r->domain, "realm",
        static_cast<std::uint64_t>(realm_id));
    return RmiStatus::Success;
}

MigrationPhase
Rmm::migrationPhase(int realm_id) const
{
    const Realm* r = const_cast<Rmm*>(this)->realm(realm_id);
    return r ? r->mig.phase : MigrationPhase::Idle;
}

std::size_t
Rmm::migrationGranuleCount(int realm_id) const
{
    const Realm* r = const_cast<Rmm*>(this)->realm(realm_id);
    return r ? r->mig.srcGranules.size() : 0;
}

// -------------------------------------------------------------- rec enter

RmiStatus
Rmm::recEnterCheck(int realm_id, int rec_id, CoreId core) const
{
    const Realm* r = const_cast<Rmm*>(this)->realm(realm_id);
    if (!r || r->state != RealmState::Active)
        return RmiStatus::BadState;
    if (r->mig.phase != MigrationPhase::Idle)
        return RmiStatus::Busy; // paused for migration
    const Rec* rec = findRec(realm_id, rec_id);
    if (!rec || !rec->guest || rec->state == RecState::Stopped)
        return RmiStatus::BadState;
    // The core-gapping placement check comes first: a dispatch on the
    // wrong core is a security rejection regardless of REC state.
    if (cfg_.coreGapped) {
        if (rec->boundCore != sim::invalidCore) {
            if (rec->boundCore != core)
                return RmiStatus::WrongCore;
        } else {
            auto it = dedicated_.find(core);
            if (it != dedicated_.end())
                return RmiStatus::WrongCore; // core owned by another CVM
        }
    }
    if (rec->state == RecState::Running)
        return RmiStatus::Busy;
    return RmiStatus::Success;
}

Proc<RecRunResult>
Rmm::recEnter(int realm_id, int rec_id, RecEnterArgs args, CoreId core,
              GuestRunFn run_fn)
{
    stats_.rmiCalls.inc();
    RecRunResult res;
    res.status = recEnterCheck(realm_id, rec_id, core);
    if (res.status != RmiStatus::Success) {
        if (res.status == RmiStatus::WrongCore)
            stats_.wrongCoreRejections.inc();
        co_return res;
    }
    Realm& r = *realm(realm_id);
    Rec& rec = *findRec(realm_id, rec_id);
    if (cfg_.coreGapped && rec.boundCore == sim::invalidCore) {
        rec.boundCore = core;
        dedicated_[core] = {realm_id, rec_id};
    }
    rec.state = RecState::Running;
    // A REC dispatch onto a core still carrying another realm's
    // residue is a dirty-enter leak edge; audit before the guest runs.
    if (auto* chk = machine_.checker())
        chk->onRecEnter(core, r.domain);
    machine_.sim().tracer().begin("rec-run", sim::Tracer::coresPid,
                                  core);
    GuestContext& g = *rec.guest;

    const hw::Costs& costs = machine_.costs();
    hw::Core& hw_core = machine_.core(core);

    // Entry: validate args, restore context, synchronise list regs.
    co_await Compute{cost(costs.rmmEntryExit) + cost(costs.rmmLrSync)};
    hw_core.uarch().run(sim::monitorDomain, 64);
    for (hw::IntId id : args.injectVirqs) {
        // Fig. 5's other direction: when interrupts are delegated, the
        // monitor owns the virtual timer and the SGIs — a (possibly
        // malicious) host may not forge them into the guest.
        if (cfg_.delegateInterrupts &&
            (id == hw::vtimerPpi || hw::isSgi(id))) {
            stats_.filteredInjections.inc();
            continue;
        }
        g.injectVirq(id);
    }
    if (args.mmioResponse)
        g.completeMmio(*args.mmioResponse);

    ExitInfo exit;
    bool to_host = false;
    while (!to_host) {
        hw_core.setOccupant(r.domain);
        if (run_fn)
            exit = co_await run_fn(g, core);
        else
            exit = co_await g.runUntilExit(core);
        hw_core.setOccupant(sim::monitorDomain);
        switch (exit.reason) {
          case ExitReason::TimerIrq:
            if (cfg_.delegateInterrupts) {
                stats_.delegatedTimerEvents.inc();
                co_await Compute{cost(costs.rmmTimerEmulate)};
                g.injectVirq(hw::vtimerPpi);
                continue;
            }
            to_host = true;
            break;
          case ExitReason::TimerWrite:
            if (cfg_.delegateInterrupts) {
                stats_.delegatedTimerEvents.inc();
                co_await Compute{cost(costs.rmmTimerEmulate)};
                continue;
            }
            to_host = true;
            break;
          case ExitReason::SgiWrite:
            if (cfg_.delegateInterrupts) {
                stats_.delegatedIpis.inc();
                co_await Compute{cost(costs.rmmIpiEmulate)};
                co_await deliverVIpi(r, exit.target);
                continue;
            }
            to_host = true;
            break;
          case ExitReason::Hypercall:
            if (exit.code == rsiAttestCall) {
                // RSI calls are realm services: the monitor answers
                // without ever exposing them to the host. Token
                // signing is the expensive part.
                co_await Compute{cost(60 * sim::usec)};
                g.completeAttest(
                    authority_.issue(r.measurement, exit.data));
                stats_.rsiCalls.inc();
                continue;
            }
            to_host = true;
            break;
          case ExitReason::Wfi:
            if (cfg_.localWfi) {
                // Nothing else can use this dedicated core; idle here
                // until the guest has a reason to run (section 4.3).
                stats_.localWfiWaits.inc();
                continue;
            }
            to_host = true;
            break;
          default:
            to_host = true;
            break;
        }
    }

    // Exit: save and wipe guest context, sync + filter list registers.
    co_await Compute{cost(costs.rmmEntryExit) + cost(costs.rmmLrSync)};
    rec.state = exit.reason == ExitReason::Shutdown ? RecState::Stopped
                                                    : RecState::Ready;
    res.exit = exit;
    res.hostLrView = hostLrViewOf(g);
    stats_.exitsToHost.inc();
    if (exit.interruptRelated())
        stats_.irqRelatedExitsToHost.inc();
    machine_.sim().tracer().end("rec-run", sim::Tracer::coresPid, core,
                                "exit", exitReasonName(exit.reason));
    if (auto* chk = machine_.checker())
        chk->onRecExit(core, r.domain);
    co_return res;
}

Proc<void>
Rmm::deliverVIpi(Realm& r, int target_rec)
{
    if (target_rec < 0 ||
        target_rec >= static_cast<int>(r.recs.size())) {
        co_return;
    }
    Rec& target = r.recs[static_cast<size_t>(target_rec)];
    if (!target.guest || target.state == RecState::Destroyed)
        co_return;
    // Physical SGI latency to the target core, then inject directly in
    // the target's list registers — no exit on either side (table 3).
    co_await sim::Delay{cost(machine_.costs().sgiDeliver)};
    target.guest->injectVirq(hw::sgiBase + 1);
}

std::vector<hw::IntId>
Rmm::hostLrViewOf(GuestContext& g) const
{
    std::vector<hw::IntId> out;
    const hw::ListRegFile& lrs = g.listRegs();
    for (int i = 0; i < hw::ListRegFile::numRegs; ++i) {
        const hw::ListReg& lr = lrs.reg(i);
        if (!lr.valid())
            continue;
        // Fig. 5: delegated interrupts (virtual timer, virtual IPIs)
        // are hidden from the host's view.
        if (cfg_.delegateInterrupts &&
            (lr.vintid == hw::vtimerPpi || hw::isSgi(lr.vintid))) {
            continue;
        }
        out.push_back(lr.vintid);
    }
    return out;
}

// ------------------------------------------------------------ attestation

RmiStatus
Rmm::attest(int realm_id, std::uint64_t challenge,
            AttestationToken& out)
{
    stats_.rmiCalls.inc();
    Realm* r = realm(realm_id);
    if (!r || r->state != RealmState::Active)
        return RmiStatus::BadState;
    out = authority_.issue(r->measurement, challenge);
    return RmiStatus::Success;
}

} // namespace cg::rmm
