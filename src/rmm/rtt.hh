/**
 * @file
 * Realm Translation Tables: the stage-2 page tables the RMM maintains
 * for each realm, mapping intermediate physical addresses (IPA) to
 * physical granules.
 *
 * Modelled as the architectural 4-level radix tree with 512 entries per
 * level (4 KiB pages, 48-bit IPA space). Table granules at levels 1-3
 * must be created explicitly (RMI_RTT_CREATE), as in the real interface,
 * so the host's fault-handling RMI traffic is faithfully reproduced.
 */

#ifndef CG_RMM_RTT_HH
#define CG_RMM_RTT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "rmm/granule.hh"

namespace cg::rmm {

/** Intermediate physical address within a realm. */
using Ipa = std::uint64_t;

constexpr int rttPageShift = 12;
constexpr int rttLevelBits = 9;
constexpr int rttStartLevel = 0;
constexpr int rttLeafLevel = 3;

/** Index of @p ipa at table @p level. */
constexpr std::uint64_t
rttIndex(Ipa ipa, int level)
{
    const int shift = rttPageShift + rttLevelBits * (rttLeafLevel - level);
    return (ipa >> shift) & ((1ULL << rttLevelBits) - 1);
}

class Rtt
{
  public:
    Rtt();

    /**
     * Install a table granule for the walk of @p ipa at @p level
     * (1..3). Fails with NoMemory if the parent table is absent, or
     * BadState if a table already exists there.
     */
    RmiStatus createTable(Ipa ipa, int level, PhysAddr table_granule);

    /**
     * Map the leaf page containing @p ipa to @p pa. Fails with
     * NoMemory if intermediate tables are missing (the host must
     * RMI_RTT_CREATE them first, which is what generates the RTT RMI
     * traffic the paper's table 2 "synchronous" calls consist of).
     */
    RmiStatus mapPage(Ipa ipa, PhysAddr pa);

    /** Remove the leaf mapping of @p ipa. */
    RmiStatus unmapPage(Ipa ipa);

    /** Translate; nullopt on fault (missing table or page). */
    std::optional<PhysAddr> translate(Ipa ipa) const;

    /** All intermediate tables for @p ipa exist (only the leaf may be
     * missing)? Disambiguates walkLevel() == rttLeafLevel. */
    bool tablesComplete(Ipa ipa) const;

    /**
     * The level at which a walk of @p ipa stops: rttLeafLevel+1 if
     * fully mapped, else the level whose table/entry is missing.
     * Mirrors the walk information RMI faults report to the host.
     */
    int walkLevel(Ipa ipa) const;

    std::size_t mappedPages() const { return mapped_; }
    std::size_t tableCount() const { return tables_; }

    /**
     * Rewrite every table granule and leaf page address through
     * @p map (old physical address -> new), the final step of a
     * committed realm migration. Addresses absent from the map are
     * left untouched. @return the number of rewrites applied.
     */
    std::size_t relocate(const std::map<PhysAddr, PhysAddr>& map);

  private:
    struct Node {
        PhysAddr granule = 0;
        std::map<std::uint64_t, std::unique_ptr<Node>> children;
        std::map<std::uint64_t, PhysAddr> leaves; // level 3 only
    };

    const Node* walk(Ipa ipa, int to_level) const;
    Node* walk(Ipa ipa, int to_level);
    static std::size_t relocateNode(Node& n,
                                    const std::map<PhysAddr, PhysAddr>& map);

    Node root_;
    std::size_t mapped_ = 0;
    std::size_t tables_ = 0;
};

} // namespace cg::rmm

#endif // CG_RMM_RTT_HH
