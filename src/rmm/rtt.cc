#include "rmm/rtt.hh"

namespace cg::rmm {

Rtt::Rtt() = default;

const Rtt::Node*
Rtt::walk(Ipa ipa, int to_level) const
{
    const Node* n = &root_;
    for (int level = rttStartLevel; level < to_level; ++level) {
        auto it = n->children.find(rttIndex(ipa, level));
        if (it == n->children.end())
            return nullptr;
        n = it->second.get();
    }
    return n;
}

Rtt::Node*
Rtt::walk(Ipa ipa, int to_level)
{
    return const_cast<Node*>(
        static_cast<const Rtt*>(this)->walk(ipa, to_level));
}

RmiStatus
Rtt::createTable(Ipa ipa, int level, PhysAddr table_granule)
{
    if (level <= rttStartLevel || level > rttLeafLevel)
        return RmiStatus::BadArgs;
    if (!granuleAligned(table_granule))
        return RmiStatus::BadAddress;
    Node* parent = walk(ipa, level - 1);
    if (!parent)
        return RmiStatus::NoMemory;
    const std::uint64_t idx = rttIndex(ipa, level - 1);
    if (parent->children.count(idx))
        return RmiStatus::BadState;
    auto node = std::make_unique<Node>();
    node->granule = table_granule;
    parent->children[idx] = std::move(node);
    ++tables_;
    return RmiStatus::Success;
}

RmiStatus
Rtt::mapPage(Ipa ipa, PhysAddr pa)
{
    if (!granuleAligned(pa))
        return RmiStatus::BadAddress;
    Node* leaf_table = walk(ipa, rttLeafLevel);
    if (!leaf_table)
        return RmiStatus::NoMemory;
    const std::uint64_t idx = rttIndex(ipa, rttLeafLevel);
    if (leaf_table->leaves.count(idx))
        return RmiStatus::BadState;
    leaf_table->leaves[idx] = pa;
    ++mapped_;
    return RmiStatus::Success;
}

RmiStatus
Rtt::unmapPage(Ipa ipa)
{
    Node* leaf_table = walk(ipa, rttLeafLevel);
    if (!leaf_table)
        return RmiStatus::NoMemory;
    auto it = leaf_table->leaves.find(rttIndex(ipa, rttLeafLevel));
    if (it == leaf_table->leaves.end())
        return RmiStatus::BadState;
    leaf_table->leaves.erase(it);
    --mapped_;
    return RmiStatus::Success;
}

std::optional<PhysAddr>
Rtt::translate(Ipa ipa) const
{
    const Node* leaf_table = walk(ipa, rttLeafLevel);
    if (!leaf_table)
        return std::nullopt;
    auto it = leaf_table->leaves.find(rttIndex(ipa, rttLeafLevel));
    if (it == leaf_table->leaves.end())
        return std::nullopt;
    return it->second | (ipa & (granuleSize - 1));
}

bool
Rtt::tablesComplete(Ipa ipa) const
{
    return walk(ipa, rttLeafLevel) != nullptr;
}

std::size_t
Rtt::relocateNode(Node& n, const std::map<PhysAddr, PhysAddr>& map)
{
    std::size_t rewrites = 0;
    if (n.granule != 0) {
        auto it = map.find(n.granule);
        if (it != map.end()) {
            n.granule = it->second;
            ++rewrites;
        }
    }
    for (auto& [idx, pa] : n.leaves) {
        auto it = map.find(pa);
        if (it != map.end()) {
            pa = it->second;
            ++rewrites;
        }
    }
    for (auto& [idx, child] : n.children)
        rewrites += relocateNode(*child, map);
    return rewrites;
}

std::size_t
Rtt::relocate(const std::map<PhysAddr, PhysAddr>& map)
{
    return relocateNode(root_, map);
}

int
Rtt::walkLevel(Ipa ipa) const
{
    const Node* n = &root_;
    for (int level = rttStartLevel; level < rttLeafLevel; ++level) {
        auto it = n->children.find(rttIndex(ipa, level));
        if (it == n->children.end())
            return level + 1;
        n = it->second.get();
    }
    if (n->leaves.count(rttIndex(ipa, rttLeafLevel)))
        return rttLeafLevel + 1;
    return rttLeafLevel;
}

} // namespace cg::rmm
