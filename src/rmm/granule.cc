#include "rmm/granule.hh"

namespace cg::rmm {

const char*
granuleStateName(GranuleState s)
{
    switch (s) {
      case GranuleState::Undelegated:
        return "undelegated";
      case GranuleState::Delegated:
        return "delegated";
      case GranuleState::Rd:
        return "rd";
      case GranuleState::Rec:
        return "rec";
      case GranuleState::Rtt:
        return "rtt";
      case GranuleState::Data:
        return "data";
    }
    return "?";
}

const char*
rmiStatusName(RmiStatus s)
{
    switch (s) {
      case RmiStatus::Success:
        return "success";
      case RmiStatus::BadAddress:
        return "bad-address";
      case RmiStatus::BadState:
        return "bad-state";
      case RmiStatus::BadArgs:
        return "bad-args";
      case RmiStatus::WrongCore:
        return "wrong-core";
      case RmiStatus::NoMemory:
        return "no-memory";
      case RmiStatus::Busy:
        return "busy";
      case RmiStatus::Timeout:
        return "timeout";
    }
    return "?";
}

GranuleState
GranuleTracker::stateOf(PhysAddr addr) const
{
    auto it = entries_.find(addr);
    return it == entries_.end() ? GranuleState::Undelegated
                                : it->second.state;
}

int
GranuleTracker::ownerOf(PhysAddr addr) const
{
    auto it = entries_.find(addr);
    return it == entries_.end() ? -1 : it->second.owner;
}

RmiStatus
GranuleTracker::delegate(PhysAddr addr)
{
    if (!granuleAligned(addr))
        return RmiStatus::BadAddress;
    if (stateOf(addr) != GranuleState::Undelegated)
        return RmiStatus::BadState;
    entries_[addr] = Entry{GranuleState::Delegated, -1};
    return RmiStatus::Success;
}

RmiStatus
GranuleTracker::undelegate(PhysAddr addr)
{
    if (!granuleAligned(addr))
        return RmiStatus::BadAddress;
    auto it = entries_.find(addr);
    if (it == entries_.end() ||
        it->second.state != GranuleState::Delegated) {
        return RmiStatus::BadState;
    }
    entries_.erase(it);
    return RmiStatus::Success;
}

RmiStatus
GranuleTracker::assign(PhysAddr addr, GranuleState to, int realm)
{
    if (!granuleAligned(addr))
        return RmiStatus::BadAddress;
    if (to == GranuleState::Undelegated || to == GranuleState::Delegated)
        return RmiStatus::BadArgs;
    auto it = entries_.find(addr);
    if (it == entries_.end() ||
        it->second.state != GranuleState::Delegated) {
        return RmiStatus::BadState;
    }
    it->second = Entry{to, realm};
    return RmiStatus::Success;
}

RmiStatus
GranuleTracker::release(PhysAddr addr, GranuleState from, int realm)
{
    auto it = entries_.find(addr);
    if (it == entries_.end() || it->second.state != from ||
        it->second.owner != realm) {
        return RmiStatus::BadState;
    }
    // The RMM scrubs contents before returning a granule to Delegated.
    it->second = Entry{GranuleState::Delegated, -1};
    return RmiStatus::Success;
}

void
GranuleTracker::releaseOwned(int realm)
{
    for (auto& [addr, e] : entries_) {
        if (e.owner == realm)
            e = Entry{GranuleState::Delegated, -1};
    }
}

std::vector<std::pair<PhysAddr, GranuleState>>
GranuleTracker::owned(int realm) const
{
    std::vector<std::pair<PhysAddr, GranuleState>> out;
    for (const auto& [addr, e] : entries_) {
        if (e.owner == realm)
            out.emplace_back(addr, e.state);
    }
    return out;
}

bool
GranuleTracker::hostAccessible(PhysAddr addr) const
{
    // The granule protection table only exposes undelegated memory to
    // the normal world.
    return stateOf(addr & ~(granuleSize - 1)) ==
           GranuleState::Undelegated;
}

std::size_t
GranuleTracker::countInState(GranuleState s) const
{
    if (s == GranuleState::Undelegated)
        return 0; // untracked; infinite in principle
    std::size_t n = 0;
    for (const auto& [addr, e] : entries_)
        n += e.state == s ? 1 : 0;
    return n;
}

} // namespace cg::rmm
