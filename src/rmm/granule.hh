/**
 * @file
 * Physical-memory granule tracking, after the RMM specification's
 * granule state machine.
 *
 * All physical memory is divided into 4 KiB granules. A granule is
 * either untracked normal-world memory (Undelegated), delegated to
 * realm world but unassigned (Delegated), or assigned a realm-world
 * purpose (RD, REC, RTT, Data). The host can only read/write
 * Undelegated granules; the state machine enforces the paper's
 * invariant I4 (no confidential granule is host-accessible).
 */

#ifndef CG_RMM_GRANULE_HH
#define CG_RMM_GRANULE_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace cg::rmm {

/** Physical address of a granule (4 KiB aligned). */
using PhysAddr = std::uint64_t;

constexpr std::uint64_t granuleSize = 4096;

constexpr bool
granuleAligned(PhysAddr a)
{
    return (a & (granuleSize - 1)) == 0;
}

enum class GranuleState {
    Undelegated, ///< normal world memory, host accessible
    Delegated,   ///< realm world, not yet assigned
    Rd,          ///< realm descriptor
    Rec,         ///< realm execution context
    Rtt,         ///< realm translation table
    Data,        ///< realm data (guest memory)
};

const char* granuleStateName(GranuleState s);

/** Result codes shared by granule ops and RMI commands. */
enum class RmiStatus {
    Success,
    BadAddress,   ///< unaligned or out-of-range address
    BadState,     ///< granule/realm/REC in the wrong state
    BadArgs,      ///< malformed arguments
    WrongCore,    ///< core-gapping binding violation (paper section 3)
    NoMemory,     ///< table walk needs an absent RTT level
    Busy,         ///< REC already running
    Timeout,      ///< cross-core transport gave up (host-side status)
};

const char* rmiStatusName(RmiStatus s);

/** Tracks the state and owner of every delegated granule. */
class GranuleTracker
{
  public:
    /** State of @p addr (Undelegated if never seen). */
    GranuleState stateOf(PhysAddr addr) const;

    /** Owning realm id, or -1 for unowned states. */
    int ownerOf(PhysAddr addr) const;

    /** NS -> Delegated. */
    RmiStatus delegate(PhysAddr addr);

    /** Delegated -> NS (only unassigned granules can leave). */
    RmiStatus undelegate(PhysAddr addr);

    /** Delegated -> an assigned state, owned by @p realm. */
    RmiStatus assign(PhysAddr addr, GranuleState to, int realm);

    /** Assigned -> Delegated (scrubbed and released by the owner). */
    RmiStatus release(PhysAddr addr, GranuleState from, int realm);

    /** Release every granule owned by @p realm (realm teardown). */
    void releaseOwned(int realm);

    /** Every granule owned by @p realm with its state, ascending
     * address (the deterministic migration-copy snapshot). */
    std::vector<std::pair<PhysAddr, GranuleState>> owned(int realm) const;

    /** Would a host access to @p addr be permitted by hardware? */
    bool hostAccessible(PhysAddr addr) const;

    /** Number of granules in a given state. */
    std::size_t countInState(GranuleState s) const;

  private:
    struct Entry {
        GranuleState state = GranuleState::Undelegated;
        int owner = -1;
    };

    std::map<PhysAddr, Entry> entries_;
};

} // namespace cg::rmm

#endif // CG_RMM_GRANULE_HH
