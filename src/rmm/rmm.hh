/**
 * @file
 * The Realm Management Monitor: the CVM security monitor of the paper's
 * unified model (table 1: RMM / TDX module / TSM).
 *
 * Owns the granule state machine, realm translation tables, realm and
 * REC lifecycles, measurements, and the REC-enter path. Two behaviours
 * from the paper's ~860-line RMM patch are controlled by RmmConfig:
 *
 *  - coreGapped: enforce a static binding of each REC to the physical
 *    core of its first dispatch, and refuse dispatch anywhere else
 *    (RmiStatus::WrongCore) — design change 1 in section 3.
 *  - delegateInterrupts: emulate the virtual timer and virtual IPIs
 *    inside the RMM instead of exiting to the host, hiding the
 *    delegated interrupts from the host's list-register view
 *    (section 4.4, fig. 5).
 *
 * The RMM never charges transport costs itself: callers (the same-core
 * SMC path or the cross-core RPC path) charge those, so table 2's three
 * transports share this one implementation.
 */

#ifndef CG_RMM_RMM_HH
#define CG_RMM_RMM_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/machine.hh"
#include "rmm/exit.hh"
#include "rmm/granule.hh"
#include "rmm/guest_context.hh"
#include "rmm/measurement.hh"
#include "rmm/rtt.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace cg::rmm {

using sim::CoreId;
using sim::Proc;
using sim::Tick;

/** Realm lifecycle states (RMM specification). */
enum class RealmState { New, Active, Destroyed };

/** REC (vCPU context) states. */
enum class RecState { Ready, Running, Stopped, Destroyed };

/**
 * Live-migration phases of one realm (DESIGN.md section 12). Idle ->
 * Prepared -> Copying -> Copied -> (commit | abort) -> Idle. While the
 * phase is not Idle every other lifecycle RMI on the realm bounces
 * with Busy, so a migration can never interleave with enter/destroy.
 */
enum class MigrationPhase { Idle, Prepared, Copying, Copied };

const char* migrationPhaseName(MigrationPhase p);

struct RealmParams {
    std::string name = "realm";
    std::uint64_t personalization = 0;
};

/** One realm execution context (confidential vCPU). */
class Rec
{
  public:
    int index = -1;
    RecState state = RecState::Destroyed;
    PhysAddr granule = 0;
    /** Core-gapping: the core this REC is statically bound to. */
    CoreId boundCore = sim::invalidCore;
    /** When the binding last changed (rebind rate limiting). */
    Tick lastRebind = 0;
    GuestContext* guest = nullptr;
};

/** In-flight live-migration bookkeeping for one realm. */
struct RealmMigration {
    MigrationPhase phase = MigrationPhase::Idle;
    /** Base of the destination granule window (set by first copy). */
    PhysAddr destBase = 0;
    /** Source granules snapshotted at prepare, ascending address;
     * srcGranules[i] is mirrored to destBase + i * granuleSize. */
    std::vector<std::pair<PhysAddr, GranuleState>> srcGranules;
    /** Copy cursor into srcGranules (resumable after a stall). */
    std::size_t copied = 0;
    /** Core bindings at prepare time, for rollback. */
    struct SavedBinding {
        int rec = -1;
        CoreId core = sim::invalidCore;
        Tick lastRebind = 0;
    };
    std::vector<SavedBinding> savedBindings;
    /** RECs already rebound onto destination cores. */
    std::vector<int> rebound;
};

/** One confidential VM. */
class Realm
{
  public:
    int id = -1;
    RealmState state = RealmState::Destroyed;
    sim::DomainId domain = sim::invalidDomain;
    RealmParams params;
    PhysAddr rdGranule = 0;
    Rtt rtt;
    Measurement measurement;
    std::vector<Rec> recs;
    RealmMigration mig;
};

struct RmmConfig {
    bool coreGapped = false;
    bool delegateInterrupts = false;
    /**
     * Minimum interval between rebinds of one REC (section 3 envisages
     * binding changes only at coarse, tens-of-seconds time scales, to
     * bound fragmentation-driven migration without reopening the
     * scheduling side channel).
     */
    Tick minRebindInterval = 10 * sim::sec;
    /**
     * Handle WFI without exiting to the host by idling on the
     * dedicated core until an event (only meaningful when coreGapped;
     * there is no other work for that core anyway, section 4.3).
     */
    bool localWfi = false;
    /**
     * Scrub verification: after a scrub point, audit the core's tagged
     * structures for leftover realm residue and re-flush if any is
     * found (detect-and-repair for the scrub-skip fault). Off by
     * default — the default monitor *trusts* its scrub code, which is
     * exactly what lets the isolation checker prove a skipped scrub
     * leaks (the dirty-handback oracle). Long soaks turn this on to
     * run fault-armed yet leak-free.
     */
    bool verifyScrubs = false;
};

/** Arguments to REC enter (subset of RmiRecEnter). */
struct RecEnterArgs {
    /** Virtual interrupts the host wants installed (fig. 5, step 1). */
    std::vector<hw::IntId> injectVirqs;
    /** Completion value for a pending MMIO read. */
    std::optional<std::uint64_t> mmioResponse;
};

/**
 * How to execute guest code during recEnter. The default strategy is
 * GuestContext::runUntilExit (free-running, for dedicated cores); the
 * shared-core transport substitutes a host-scheduler-coupled run.
 */
using GuestRunFn =
    std::function<Proc<ExitInfo>(GuestContext&, CoreId)>;

/** Result of REC enter (subset of RmiRecExit). */
struct RecRunResult {
    RmiStatus status = RmiStatus::Success;
    ExitInfo exit;
    /** The host-visible (filtered) list-register view (fig. 5). */
    std::vector<hw::IntId> hostLrView;
};

struct RmmStats {
    sim::Counter exitsToHost;
    sim::Counter irqRelatedExitsToHost;
    sim::Counter delegatedTimerEvents;
    sim::Counter delegatedIpis;
    sim::Counter localWfiWaits;
    sim::Counter rmiCalls;
    sim::Counter wrongCoreRejections;
    sim::Counter rebinds;
    sim::Counter rebindsRefused;
    /** Running RECs force-stopped by the host (hung-monitor reclaim). */
    sim::Counter forcedStops;
    /** Guest-initiated realm services handled inside the monitor. */
    sim::Counter rsiCalls;
    /** Host-supplied injections of monitor-owned interrupt ids that
     * the monitor refused (forged timer ticks / virtual IPIs). */
    sim::Counter filteredInjections;
    /** @{ Live migration (DESIGN.md section 12). */
    sim::Counter migrationsStarted;
    sim::Counter migrationsCommitted;
    sim::Counter migrationsAborted;
    sim::Counter migrationGranulesCopied;
    /** Copy batches bounced by an injected rtt-copy-stall. */
    sim::Counter migrationStalls;
    /** @} */
    /** Skipped scrubs caught and re-flushed (verifyScrubs). */
    sim::Counter scrubRepairs;
};

class Rmm
{
  public:
    Rmm(hw::Machine& machine, RmmConfig cfg);

    const RmmConfig& config() const { return cfg_; }
    RmmStats& stats() { return stats_; }

    /** Register the monitor's counters under "rmm." in @p reg. */
    void registerStats(sim::StatRegistry& reg);
    GranuleTracker& granules() { return granules_; }
    hw::Machine& machine() { return machine_; }

    /** @{ RMI: granule management. */
    RmiStatus granuleDelegate(PhysAddr addr);
    RmiStatus granuleUndelegate(PhysAddr addr);
    /** @} */

    /** @{ RMI: realm lifecycle. */
    RmiStatus realmCreate(PhysAddr rd, const RealmParams& params,
                          int& realm_out);
    RmiStatus realmActivate(int realm);
    RmiStatus realmDestroy(int realm);
    Realm* realm(int id);
    /** @} */

    /** @{ RMI: RTT and data. */
    RmiStatus rttCreate(int realm, Ipa ipa, int level, PhysAddr table);
    RmiStatus dataCreate(int realm, Ipa ipa, PhysAddr data,
                         std::uint64_t content);
    RmiStatus dataCreateUnknown(int realm, Ipa ipa, PhysAddr data);
    RmiStatus dataDestroy(int realm, Ipa ipa);
    /** @} */

    /** @{ RMI: RECs. */
    RmiStatus recCreate(int realm, PhysAddr granule, int& rec_out);
    RmiStatus recDestroy(int realm, int rec);

    /**
     * Host-forced stop of a REC whose monitor core loop stopped
     * responding (EL3-assisted reclamation; the "terminated by the
     * host" case of section 4.2). A Running REC is marked Stopped so
     * recDestroy can release its granule and core binding; the caller
     * must kill the monitor loop and scrub the core afterwards
     * (GappedVm::terminate does both).
     */
    RmiStatus recForceStop(int realm, int rec);
    /** Attach the guest executor (done by the VMM model at boot). */
    void setGuestContext(int realm, int rec, GuestContext* guest);
    /** @} */

    /**
     * RMI: REC enter — run a confidential vCPU on @p core until an
     * exit the host must handle. Internally loops over delegated
     * events when configured. Must be awaited from a process running
     * on @p core (the caller models that placement).
     */
    Proc<RecRunResult> recEnter(int realm, int rec, RecEnterArgs args,
                                CoreId core, GuestRunFn run_fn = {});

    /** Validation part of recEnter, applied before any cost: exposed
     * so transports can reject cheaply (and tests can probe I1/I3). */
    RmiStatus recEnterCheck(int realm, int rec, CoreId core) const;

    /**
     * Change a REC's core binding (the paper's deferred future work,
     * section 3). Only allowed when the REC is not running, onto a
     * core not dedicated to anyone, and no more often than
     * minRebindInterval; the monitor scrubs the guest's residue from
     * the old core before releasing it, so invariant I5 survives the
     * move.
     */
    RmiStatus recRebind(int realm, int rec, CoreId new_core);

    /**
     * @{ RMI: realm live migration (DESIGN.md section 12).
     *
     * The flow mirrors the granule-by-granule style of the paged RMIs:
     * prepare snapshots the realm's granules and core bindings (all
     * RECs must be paused), copy moves batches into a host-delegated
     * destination window (resumable; an injected rtt-copy-stall
     * bounces a batch with Busy and no progress), bindRec moves each
     * REC's dedicated-core binding, and commit atomically rewrites
     * every granule reference (RD, RECs, RTT tables and leaves) to the
     * destination and releases the source granules. Abort at any
     * pre-commit point restores bindings and releases the partial
     * destination copy — the realm keeps running on the source as if
     * nothing happened. The RMM charges no transport/copy costs here
     * (same contract as every other RMI); the control plane charges
     * Costs::granuleCopy per granule.
     */
    RmiStatus migratePrepare(int realm);
    RmiStatus migrateCopy(int realm, PhysAddr dest_base,
                          std::size_t max_granules,
                          std::size_t& copied_out);
    RmiStatus migrateBindRec(int realm, int rec, CoreId new_core);
    RmiStatus migrateCommit(int realm);
    RmiStatus migrateAbort(int realm);
    MigrationPhase migrationPhase(int realm) const;
    /** Total granules a prepared migration must copy (0 if idle). */
    std::size_t migrationGranuleCount(int realm) const;
    /** @} */

    /**
     * Earliest tick at which recRebind would pass the rate limiter for
     * this REC (0 = immediately). The control plane uses this to back
     * off instead of dropping a refused rebind.
     */
    Tick rebindAllowedAt(int realm, int rec) const;

    /** RSI-equivalent: produce an attestation token for a realm. */
    RmiStatus attest(int realm, std::uint64_t challenge,
                     AttestationToken& out);

    /** The core a REC is bound to (invalidCore if unbound). */
    CoreId recBinding(int realm, int rec) const;

    /** Realm owning the dedicated @p core, or -1. */
    int dedicatedOwner(CoreId core) const;

    /** The attestation authority (shared with verifiers). */
    const AttestationAuthority& authority() const { return authority_; }

  private:
    Rec* findRec(int realm, int rec);
    const Rec* findRec(int realm, int rec) const;
    /** flushDomain(@p d) across @p core's tagged structures. */
    void scrubCore(CoreId core, sim::DomainId d);
    /** verifyScrubs audit: re-flush @p core if @p d residue remains;
     * @return true when a skipped scrub was caught and repaired. */
    bool repairSkippedScrub(CoreId core, sim::DomainId d);
    Proc<void> deliverVIpi(Realm& r, int target_rec);
    std::vector<hw::IntId> hostLrViewOf(GuestContext& g) const;
    Tick cost(Tick nominal);

    hw::Machine& machine_;
    RmmConfig cfg_;
    GranuleTracker granules_;
    std::vector<std::unique_ptr<Realm>> realms_;
    /** Core-gapping dedication table: core -> (realm, rec). */
    std::map<CoreId, std::pair<int, int>> dedicated_;
    AttestationAuthority authority_;
    RmmStats stats_;
    sim::StatGroup statGroup_;
    sim::DomainId nextDomain_ = sim::firstVmDomain;
};

} // namespace cg::rmm

#endif // CG_RMM_RMM_HH
