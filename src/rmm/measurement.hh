/**
 * @file
 * Realm measurement and attestation, modelling the RMM's RIM/REM
 * registers and CCA attestation tokens.
 *
 * A realm's initial measurement (RIM) is extended with every
 * configuration step and data granule populated before activation;
 * runtime extensible measurements (REM) can be extended by the guest.
 * Attestation tokens bind the measurements to a platform key. We use a
 * 64-bit FNV-1a construction instead of SHA-512 — the simulator needs
 * collision resistance against accidents, not adversaries.
 */

#ifndef CG_RMM_MEASUREMENT_HH
#define CG_RMM_MEASUREMENT_HH

#include <array>
#include <cstdint>
#include <string>

namespace cg::rmm {

/** A measurement value (stand-in for a SHA-512 digest). */
using Digest = std::uint64_t;

/** FNV-1a step: extend @p d with @p v. */
Digest digestExtend(Digest d, std::uint64_t v);

/** Hash a byte string into a digest. */
Digest digestOf(const std::string& data);

constexpr Digest digestInit = 0xcbf29ce484222325ULL;

/** The measurement state of one realm. */
class Measurement
{
  public:
    /** Extend the initial measurement (pre-activation only). */
    void extendRim(std::uint64_t v);

    /** Extend a runtime measurement register (0..3). */
    void extendRem(int index, std::uint64_t v);

    Digest rim() const { return rim_; }
    Digest rem(int index) const { return rem_.at(index); }

  private:
    Digest rim_ = digestInit;
    std::array<Digest, 4> rem_{digestInit, digestInit, digestInit,
                               digestInit};
};

/** An attestation token signed (notionally) by the platform key. */
struct AttestationToken {
    Digest rim;
    std::array<Digest, 4> rem;
    std::uint64_t challenge;
    Digest platformKeyId;
    Digest signature;
};

/** The platform's (simulated) attestation signing identity. */
class AttestationAuthority
{
  public:
    explicit AttestationAuthority(std::uint64_t platform_secret)
        : secret_(platform_secret)
    {}

    /** Produce a token over @p m for a verifier-chosen @p challenge. */
    AttestationToken issue(const Measurement& m,
                           std::uint64_t challenge) const;

    /** Verify a token's signature and challenge binding. */
    bool verify(const AttestationToken& t,
                std::uint64_t challenge) const;

  private:
    Digest sign(const AttestationToken& t) const;

    std::uint64_t secret_;
};

} // namespace cg::rmm

#endif // CG_RMM_MEASUREMENT_HH
