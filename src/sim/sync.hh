/**
 * @file
 * Synchronisation primitives for simulated processes.
 *
 * Everything is built on Notify, an edge-triggered wait queue: wait()
 * always suspends until the next notifyOne()/notifyAll(). Higher-level
 * primitives (Gate, Channel, Semaphore) implement the classic
 * condition-variable loop over it, so spurious wakeups are harmless and
 * processes can be killed while waiting.
 */

#ifndef CG_SIM_SYNC_HH
#define CG_SIM_SYNC_HH

#include <coroutine>
#include <deque>
#include <vector>

#include "sim/proc.hh"

namespace cg::sim {

/** Base for anything a Process can block on; supports kill-time unlink. */
class Waitable
{
  public:
    virtual ~Waitable() = default;

    /** Remove @p p from this wait queue (process is being killed). */
    virtual void unlink(Process& p) = 0;
};

/** Edge-triggered wait queue (the one true primitive). */
class Notify : public Waitable
{
  public:
    /**
     * Waiters may legitimately outlive the primitive (e.g. a process
     * blocked on a component that is being torn down): detach them so
     * their later kill/finish never touches freed memory.
     */
    ~Notify() override;
    /** Awaitable: suspends the process until the next notify. */
    struct WaitAwaiter {
        Notify& notify;

        bool await_ready() const { return false; }

        template <typename P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            Process& proc = detail::processOf(h);
            proc.suspendAt(h);
            proc.setWaitingOn(&notify);
            notify.waiters_.push_back(&proc);
            proc.dispatcher().blocked(proc);
        }

        void await_resume() const {}
    };

    /** Suspend until the next notifyOne()/notifyAll(). */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

    /** Wake the longest-waiting process, if any. @return true if woken. */
    bool notifyOne();

    /** Wake every waiting process. @return number woken. */
    std::size_t notifyAll();

    /** Number of processes currently waiting. */
    std::size_t waiterCount() const { return waiters_.size(); }

    void unlink(Process& p) override;

  private:
    std::vector<Process*> waiters_;
};

/**
 * Level-triggered gate: wait() returns immediately while open.
 * open() releases all current and future waiters until reset().
 */
class Gate
{
  public:
    bool isOpen() const { return open_; }
    void open();
    void reset() { open_ = false; }

    /** Suspend until the gate is open (returns at once if it is). */
    Proc<void> wait();

  private:
    bool open_ = false;
    Notify notify_;
};

/** Unbounded MPMC queue of T with blocking receive. */
template <typename T>
class Channel
{
  public:
    /** Enqueue a value and wake one receiver. */
    void
    send(T v)
    {
        queue_.push_back(std::move(v));
        notify_.notifyOne();
    }

    /** Dequeue, suspending while the channel is empty. */
    Proc<T>
    recv()
    {
        while (queue_.empty())
            co_await notify_.wait();
        T v = std::move(queue_.front());
        queue_.pop_front();
        co_return v;
    }

    /** Non-blocking receive. @return true and fills @p out if available. */
    bool
    tryRecv(T& out)
    {
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

  private:
    std::deque<T> queue_;
    Notify notify_;
};

/** Suspend until @p p completes (returns at once if it already has). */
Proc<void> join(Process& p);

/** Counting semaphore. */
class Semaphore
{
  public:
    explicit Semaphore(std::uint64_t initial = 0) : count_(initial) {}

    /** Decrement, suspending while the count is zero. */
    Proc<void> acquire();

    /** Increment and wake one waiter. */
    void release(std::uint64_t n = 1);

    std::uint64_t count() const { return count_; }

  private:
    std::uint64_t count_;
    Notify notify_;
};

} // namespace cg::sim

#endif // CG_SIM_SYNC_HH
