/**
 * @file
 * The Simulation: owns the event queue, the root RNG, and all spawned
 * processes. One Simulation corresponds to one experiment run.
 */

#ifndef CG_SIM_SIMULATION_HH
#define CG_SIM_SIMULATION_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/proc.hh"
#include "sim/rng.hh"
#include "sim/stat_registry.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace cg::sim {

class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 0xc0de5eed);
    ~Simulation();

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    EventQueue& queue() { return queue_; }
    Tick now() const { return queue_.now(); }
    Rng& rng() { return rng_; }
    FreeDispatcher& freeDispatcher() { return freeDisp_; }

    /** The run's statistics directory (see stat_registry.hh). */
    StatRegistry& stats() { return stats_; }
    const StatRegistry& stats() const { return stats_; }

    /** The run's tracepoint ring (disabled by default; trace.hh). */
    Tracer& tracer() { return tracer_; }
    const Tracer& tracer() const { return tracer_; }

    /** The run's fault-injection plan (inert by default; fault.hh). */
    FaultPlan& faults() { return faults_; }
    const FaultPlan& faults() const { return faults_; }

    /** Spawn a free-running process (hardware, firmware, fabric). */
    Process& spawn(std::string name, Proc<void> body);

    /**
     * Spawn a process under a specific dispatcher. With
     * @p auto_start false, the dispatcher's wake() is not called; the
     * caller must arrange the first wake (used by dispatchers that need
     * to attach bookkeeping to the process before it first runs).
     */
    Process& spawnOn(std::string name, Dispatcher& disp, Proc<void> body,
                     bool auto_start = true);

    /** Run the event loop until drained or @p limit reached. */
    Tick run(Tick limit = maxTick);

    /** Advance simulated time by @p amount (runs due events). */
    Tick runFor(Tick amount) { return run(now() + amount); }

    /** All processes ever spawned (including completed ones). */
    const std::vector<std::unique_ptr<Process>>& processes() const
    {
        return processes_;
    }

  private:
    EventQueue queue_;
    Rng rng_;
    FreeDispatcher freeDisp_;
    StatRegistry stats_;
    Tracer tracer_{queue_};
    FaultPlan faults_{queue_};
    std::vector<std::unique_ptr<Process>> processes_;
};

} // namespace cg::sim

#endif // CG_SIM_SIMULATION_HH
