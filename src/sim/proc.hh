/**
 * @file
 * Coroutine-based simulated processes.
 *
 * A simulated process is a C++20 coroutine returning Proc<T>. Code between
 * awaits executes in zero simulated time; simulated time passes only at
 * awaitables:
 *
 *   co_await Delay{t};     sleep for simulated time t (no CPU consumed)
 *   co_await Compute{t};   consume t of CPU time under the process's
 *                          Dispatcher (which may preempt / delay it)
 *   co_await gate.wait();  block until signalled (see sync.hh)
 *   co_await child(args);  run a sub-process to completion (same Process)
 *
 * Each top-level spawned coroutine gets a Process control block that tracks
 * its state and its Dispatcher. Dispatchers give the same coroutine code
 * different execution semantics: free-running (hardware, firmware on a
 * dedicated core), host-kernel thread (preemptively scheduled on host
 * cores), or guest vCPU (advances only while the vCPU is entered).
 */

#ifndef CG_SIM_PROC_HH
#define CG_SIM_PROC_HH

#include <coroutine>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/slab.hh"
#include "sim/types.hh"

namespace cg::sim {

class Notify;
class Process;
class Simulation;
class Waitable;

/** State shared by every Proc<T> promise. */
struct PromiseBase {
    /** Control block of the process this coroutine runs in. */
    Process* proc = nullptr;
    /** Parent coroutine awaiting this one (empty for top level). */
    std::coroutine_handle<> continuation{};
    /** Uncaught exception, rethrown at the await site. */
    std::exception_ptr exception{};
};

/**
 * Execution policy for a Process.
 *
 * Implementations decide *when* a ready process actually resumes: the
 * FreeDispatcher resumes immediately (at the correct simulated time),
 * while the host-kernel and vCPU dispatchers gate resumption on CPU
 * scheduling.
 */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    /** @p p was suspended and wants @p amount of CPU time before resuming. */
    virtual void compute(Process& p, Tick amount) = 0;

    /** @p p was suspended awaiting an external wake(). */
    virtual void blocked(Process& p) = 0;

    /** Make a blocked process ready; must eventually resume it. */
    virtual void wake(Process& p) = 0;

    /** @p p finished or was killed; drop any scheduling state for it. */
    virtual void detach(Process& p) = 0;
};

/** Coroutine return object for simulated processes. */
template <typename T = void>
class [[nodiscard]] Proc;

namespace detail {

template <typename T>
struct ProcPromise;

struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename P>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<P> h) noexcept;

    void await_resume() const noexcept {}
};

struct PromiseCommon : PromiseBase {
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }

    /**
     * Coroutine frames are the dominant steady-state allocation (every
     * co_await chain); recycle them through the slab pool. The sized
     * delete is required so the pool can bucket without per-frame
     * headers.
     */
    static void* operator new(std::size_t sz) { return slabAlloc(sz); }
    static void
    operator delete(void* p, std::size_t sz) noexcept
    {
        slabFree(p, sz);
    }
};

template <typename T>
struct ProcPromise : PromiseCommon {
    T value{};

    Proc<T> get_return_object();

    void
    return_value(T v)
    {
        value = std::move(v);
    }
};

template <>
struct ProcPromise<void> : PromiseCommon {
    Proc<void> get_return_object();
    void return_void() const {}
};

} // namespace detail

/**
 * The process control block for a spawned top-level coroutine.
 *
 * Created via Simulation::spawn(); never constructed directly. Lives until
 * the Simulation is destroyed, so references stay valid after completion.
 */
class Process
{
  public:
    enum class State {
        Ready,    ///< created or woken; waiting for the dispatcher
        Running,  ///< currently executing coroutine code
        Blocked,  ///< suspended: sleeping, computing, or waiting
        Done,     ///< finished or killed
    };

    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;
    ~Process();

    const std::string& name() const { return name_; }
    State state() const { return state_; }
    bool done() const { return state_ == State::Done; }
    Simulation& simulation() const { return sim_; }
    Dispatcher& dispatcher() const { return *disp_; }

    /**
     * Wake a blocked process (make it Ready). Called by sync primitives
     * and dispatchers; safe to call redundantly.
     */
    void wake();

    /**
     * Resume the coroutine right now. Only dispatchers call this, from
     * event context, when the process is Ready.
     */
    void resumeNow();

    /**
     * Destroy the process: cancel pending wakeups, unlink from wait
     * queues, destroy coroutine frames. Joiners are woken.
     */
    void kill();

    /** Signalled (notifyAll) when the process completes or is killed. */
    Notify& doneNotify();

    /** @{ Used by awaitables; not for component code. */
    void suspendAt(std::coroutine_handle<> h);
    void setWaitingOn(Waitable* w) { waitingOn_ = w; }
    Waitable* waitingOn() const { return waitingOn_; }
    void setPendingEvent(EventId id) { pendingEvent_ = id; }
    EventId pendingEvent() const { return pendingEvent_; }
    /** @} */

    /** Opaque per-dispatcher slot (e.g. points at the owning Thread). */
    void* schedCookie = nullptr;

  private:
    friend class Simulation;

    Process(Simulation& sim, Dispatcher& disp, std::string name,
            Proc<void>&& top);

    void onTopDone();
    void finish();

    Simulation& sim_;
    Dispatcher* disp_;
    std::string name_;
    State state_ = State::Ready;
    std::coroutine_handle<detail::ProcPromise<void>> top_{};
    std::coroutine_handle<> resumePoint_{};
    Waitable* waitingOn_ = nullptr;
    EventId pendingEvent_ = invalidEventId;
    std::unique_ptr<Notify> doneNotify_;
    bool killRequested_ = false;

    friend struct detail::FinalAwaiter;
};

template <typename T>
class [[nodiscard]] Proc
{
  public:
    using promise_type = detail::ProcPromise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Proc() = default;
    explicit Proc(Handle h) : handle_(h) {}
    Proc(Proc&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Proc&
    operator=(Proc&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Proc(const Proc&) = delete;
    Proc& operator=(const Proc&) = delete;
    ~Proc() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    Handle release() { return std::exchange(handle_, {}); }

    /** Awaiting a Proc runs it as a sub-process of the awaiter. */
    struct Awaiter {
        Handle child;

        bool
        await_ready() const
        {
            CG_ASSERT(child, "awaiting an empty Proc");
            return child.done();
        }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> parent)
        {
            auto& parent_pb = static_cast<PromiseBase&>(parent.promise());
            auto& child_pb = static_cast<PromiseBase&>(child.promise());
            child_pb.proc = parent_pb.proc;
            child_pb.continuation = parent;
            return child; // start the child coroutine
        }

        T
        await_resume()
        {
            auto& p = child.promise();
            if (p.exception)
                std::rethrow_exception(p.exception);
            if constexpr (!std::is_void_v<T>)
                return std::move(p.value);
        }
    };

    Awaiter operator co_await() && { return Awaiter{handle_}; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_{};
};

namespace detail {

template <typename P>
std::coroutine_handle<>
FinalAwaiter::await_suspend(std::coroutine_handle<P> h) noexcept
{
    auto& pb = static_cast<PromiseBase&>(h.promise());
    if (pb.continuation)
        return pb.continuation;
    if (pb.proc)
        pb.proc->onTopDone();
    return std::noop_coroutine();
}

template <typename T>
Proc<T>
ProcPromise<T>::get_return_object()
{
    return Proc<T>(
        std::coroutine_handle<ProcPromise<T>>::from_promise(*this));
}

inline Proc<void>
ProcPromise<void>::get_return_object()
{
    return Proc<void>(
        std::coroutine_handle<ProcPromise<void>>::from_promise(*this));
}

/** Fetch the Process from an awaiting coroutine's promise. */
template <typename P>
Process&
processOf(std::coroutine_handle<P> h)
{
    auto& pb = static_cast<PromiseBase&>(h.promise());
    CG_ASSERT(pb.proc, "awaitable used outside a spawned process");
    return *pb.proc;
}

} // namespace detail

/** Sleep for a simulated duration without consuming CPU. */
struct Delay {
    Tick amount;

    bool await_ready() const { return amount == 0; }

    template <typename P>
    void
    await_suspend(std::coroutine_handle<P> h) const
    {
        Process& proc = detail::processOf(h);
        proc.suspendAt(h);
        sleepProcess(proc, amount);
    }

    void await_resume() const {}

  private:
    static void sleepProcess(Process& p, Tick amount);
};

/** Consume CPU time under the process's dispatcher (may be preempted). */
struct Compute {
    Tick amount;

    bool await_ready() const { return amount == 0; }

    template <typename P>
    void
    await_suspend(std::coroutine_handle<P> h) const
    {
        Process& proc = detail::processOf(h);
        proc.suspendAt(h);
        proc.dispatcher().compute(proc, amount);
    }

    void await_resume() const {}
};

/**
 * Dispatcher that resumes processes as soon as simulated time permits.
 * Used for hardware components, the network fabric, and firmware running
 * with exclusive use of a core.
 */
class FreeDispatcher : public Dispatcher
{
  public:
    explicit FreeDispatcher(EventQueue& q) : queue_(q) {}

    void compute(Process& p, Tick amount) override;
    void blocked(Process& p) override;
    void wake(Process& p) override;
    void detach(Process& p) override;

  private:
    EventQueue& queue_;
};

} // namespace cg::sim

#endif // CG_SIM_PROC_HH
