#include "sim/slab.hh"

#include <new>
#include <vector>

// Sanitizer passthrough: recycling a freed block would hide the
// use-after-free the ASan/TSan suites are there to find.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CG_SLAB_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CG_SLAB_PASSTHROUGH 1
#endif
#endif

namespace cg::sim {

#ifdef CG_SLAB_PASSTHROUGH

void*
slabAlloc(std::size_t bytes)
{
    return ::operator new(bytes ? bytes : 1);
}

void
slabFree(void* p, std::size_t) noexcept
{
    ::operator delete(p);
}

SlabStats
slabStats()
{
    return {};
}

bool
slabPassthrough()
{
    return true;
}

#else // !CG_SLAB_PASSTHROUGH

namespace {

constexpr std::size_t granule = 64;
constexpr std::size_t maxPooled = 8192;
constexpr std::size_t numBuckets = maxPooled / granule;

/** size -> bucket index; only valid for sizes <= maxPooled. */
std::size_t
bucketOf(std::size_t bytes)
{
    return (bytes + granule - 1) / granule - 1;
}

/**
 * Set once this thread's Cache has been destroyed. Thread-local
 * destructors run before static-storage destructors, and statics may
 * legitimately release coroutine frames or RPC tokens on their way
 * out; after this flips, alloc/free pass straight through to the
 * global heap instead of touching the dead pool. Trivially
 * destructible, so reading it during TLS teardown is safe.
 */
thread_local bool cacheDead = false;

struct Cache {
    std::vector<void*> buckets[numBuckets];
    SlabStats stats;

    ~Cache()
    {
        for (auto& b : buckets)
            for (void* p : b)
                ::operator delete(p);
        cacheDead = true;
    }
};

Cache&
cache()
{
    thread_local Cache c;
    return c;
}

} // namespace

void*
slabAlloc(std::size_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    if (cacheDead)
        return ::operator new(bytes);
    Cache& c = cache();
    ++c.stats.liveBlocks;
    if (bytes > maxPooled) {
        ++c.stats.poolMisses;
        return ::operator new(bytes);
    }
    auto& bucket = c.buckets[bucketOf(bytes)];
    if (!bucket.empty()) {
        void* p = bucket.back();
        bucket.pop_back();
        ++c.stats.poolHits;
        return p;
    }
    ++c.stats.poolMisses;
    return ::operator new((bucketOf(bytes) + 1) * granule);
}

void
slabFree(void* p, std::size_t bytes) noexcept
{
    if (!p)
        return;
    if (bytes == 0)
        bytes = 1;
    if (cacheDead) {
        ::operator delete(p);
        return;
    }
    Cache& c = cache();
    --c.stats.liveBlocks;
    if (bytes > maxPooled) {
        ::operator delete(p);
        return;
    }
    c.buckets[bucketOf(bytes)].push_back(p);
}

SlabStats
slabStats()
{
    if (cacheDead)
        return {};
    return cache().stats;
}

bool
slabPassthrough()
{
    return false;
}

#endif // CG_SLAB_PASSTHROUGH

} // namespace cg::sim
