/**
 * @file
 * Lightweight statistics package: counters, accumulators (mean/stddev),
 * and sample histograms with percentile queries.
 *
 * Benchmarks reproduce the paper's tables from these objects; they are
 * intentionally simple value types that components embed directly.
 */

#ifndef CG_SIM_STATS_HH
#define CG_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cg::sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Online mean / standard deviation (Welford's algorithm). */
class Accumulator
{
  public:
    void sample(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample-retaining distribution for percentile queries.
 *
 * Keeps every sample (simulations here produce at most a few million);
 * percentile() maintains a separate sorted cache, so samples() always
 * returns the stable insertion-order view no matter which queries ran
 * in between.
 *
 * The cache is kept fresh *structurally* rather than by a validity
 * flag: sorted_ is always a sorted permutation of the first
 * sorted_.size() samples, and a query merges in whatever tail arrived
 * since the last one (sort the tail, then one inplace_merge). Freely
 * interleaved sample()/percentile() sequences therefore cannot observe
 * a stale cache — there is no flag to forget to invalidate — and a
 * query after k new samples costs O(k log k + n) instead of re-sorting
 * all n (the open-loop latency sweeps query p50/p99/p999 repeatedly
 * over growing sample sets).
 */
class Distribution
{
  public:
    void sample(double x);
    void reset();

    std::uint64_t count() const { return samples_.size(); }
    double mean() const;
    double min() const;
    double max() const;

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    /** The samples in insertion order (never reordered by queries). */
    const std::vector<double>& samples() const { return samples_; }

  private:
    std::vector<double> samples_; ///< insertion order, query-immutable
    /** Sorted copy of samples_[0, sorted_.size()); tail merged on
     * demand. Invariant: sorted_.size() <= samples_.size() always. */
    mutable std::vector<double> sorted_;

    const std::vector<double>& ensureSorted() const;
};

/** Convenience: record Tick latencies, report in ns/us/ms. All unit
 * conversions route through ticksToUs/ticksToMs (types.hh) so reports
 * cannot drift from the tick-per-picosecond convention. */
class LatencyStat
{
  public:
    void sample(Tick t);
    void reset();

    std::uint64_t count() const { return dist_.count(); }
    double meanNs() const { return dist_.mean() / 1e3; }
    double meanUs() const { return ticksToUs(dist_.mean()); }
    double meanMs() const { return ticksToMs(dist_.mean()); }
    double p50Us() const { return ticksToUs(dist_.percentile(50)); }
    double p95Us() const { return ticksToUs(dist_.percentile(95)); }
    double p99Us() const { return ticksToUs(dist_.percentile(99)); }
    /** The SLO tail the open-loop sweeps report (1-in-1000). */
    double p999Us() const { return ticksToUs(dist_.percentile(99.9)); }
    double p50Ms() const { return ticksToMs(dist_.percentile(50)); }
    double p99Ms() const { return ticksToMs(dist_.percentile(99)); }
    double p999Ms() const { return ticksToMs(dist_.percentile(99.9)); }
    double maxUs() const { return ticksToUs(dist_.max()); }
    const Distribution& dist() const { return dist_; }

  private:
    Distribution dist_; // samples stored in picoseconds
};

/** Format helper: "12345.6" with the given precision. */
std::string fmtDouble(double v, int precision = 1);

} // namespace cg::sim

#endif // CG_SIM_STATS_HH
