/**
 * @file
 * EventFn: a move-only callable wrapper with small-buffer optimization,
 * used for event-queue callbacks instead of std::function.
 *
 * Nearly every event callback in the simulator captures one or two
 * pointers (a Process*, a component reference); std::function heap-
 * allocates for some of these and drags in copyability machinery the
 * queue never uses. EventFn stores any callable up to inlineSize bytes
 * directly in the object (no allocation on schedule), falls back to the
 * heap only for oversized captures, and is move-only, so it also accepts
 * lambdas that capture move-only state.
 */

#ifndef CG_SIM_CALLBACK_HH
#define CG_SIM_CALLBACK_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cg::sim {

/** Move-only `void()` callable with small-buffer optimization. */
class EventFn
{
  public:
    /**
     * Callables at most this large (and suitably aligned) are inline.
     * Sized for the dominant capture shape (one to three pointers)
     * while keeping EventFn — and so the queue's slot pool — compact;
     * bigger closures take the heap fallback.
     */
    static constexpr std::size_t inlineSize = 24;

    EventFn() noexcept = default;
    EventFn(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventFn> && std::is_invocable_v<D&>>>
    EventFn(F&& f)
    {
        init<F>(std::forward<F>(f));
    }

    EventFn(EventFn&& o) noexcept : ops_(o.ops_)
    {
        if (ops_) {
            ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
    }

    EventFn&
    operator=(EventFn&& o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_) {
                ops_->relocate(o.buf_, buf_);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** Drop the held callable (becomes empty). */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /**
     * Construct a callable in place, replacing any held one. Lets a
     * recycled storage slot take a fresh callable with no EventFn
     * temporary and no relocation.
     */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventFn> && std::is_invocable_v<D&>>>
    void
    emplace(F&& f)
    {
        reset();
        init<F>(std::forward<F>(f));
    }

  private:
    template <typename F, typename D = std::decay_t<F>>
    void
    init(F&& f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            ::new (static_cast<void*>(buf_))
                D*(new D(std::forward<F>(f)));
            ops_ = &heapOps<D>;
        }
    }

    struct Ops {
        void (*invoke)(void* self);
        /** Move-construct into @p dst and destroy @p src. */
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void* self) noexcept;
    };

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= inlineSize &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void* self) { (*std::launder(static_cast<D*>(self)))(); },
        [](void* src, void* dst) noexcept {
            D* s = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void* self) noexcept {
            std::launder(static_cast<D*>(self))->~D();
        },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void* self) { (**std::launder(static_cast<D**>(self)))(); },
        [](void* src, void* dst) noexcept {
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
        },
        [](void* self) noexcept {
            delete *std::launder(static_cast<D**>(self));
        },
    };

    alignas(std::max_align_t) unsigned char buf_[inlineSize];
    const Ops* ops_ = nullptr;
};

} // namespace cg::sim

#endif // CG_SIM_CALLBACK_HH
