/**
 * @file
 * Deterministic fault injection for the control plane.
 *
 * A FaultPlan is a seed-derived, schedule-based fault source owned by
 * the Simulation (alongside tracer() and stats()). Injection points in
 * the stack query it at well-known, typed sites — "should the SGI I am
 * about to send be dropped?" — and the plan answers from declarative
 * trigger predicates (nth occurrence of the site, tick window,
 * probability). All probabilistic triggers draw from the plan's own
 * xoshiro256++ stream, seeded from the plan seed, so a given
 * (simulation seed, fault plan) pair replays bit-identically
 * (invariant I9 extended).
 *
 * The disarmed plan is the determinism contract: every query is a
 * single branch on armed(), schedules no events, consumes no
 * randomness, and registers no stats — a run without a plan is
 * byte-identical to a build without this subsystem.
 */

#ifndef CG_SIM_FAULT_HH
#define CG_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace cg::sim {

class EventQueue;
class Tracer;

/**
 * The typed injection sites. Each names one control-plane hazard of
 * the core-gapped design (DESIGN.md section 9 catalogs the recovery
 * policy per site).
 */
enum class FaultSite : int {
    IpiDrop,            ///< an SGI vanishes in the interconnect
    IpiDelay,           ///< an SGI is delayed by the spec's param
    DoorbellLost,       ///< a monitor exit-doorbell ring is lost
    SyncRpcStall,       ///< a sync-RPC wire poke never lands
    MonitorHang,        ///< a monitor core loop stops responding
    HotplugOfflineFail, ///< a core refuses to offline
    HotplugOnlineFail,  ///< a core refuses to come back online
    RmiTransientError,  ///< an RMI call bounces with a Busy status
    ScrubSkip,          ///< a teardown/rebind scrub is silently skipped
    VirtioLostKick,     ///< EVENT_IDX recheck-after-publish is skipped
    MigrationAbort,     ///< a realm migration phase aborts mid-flight
    RttCopyStall,       ///< a migration RTT/granule copy batch stalls
};

constexpr int numFaultSites = 12;

/** Stable kebab-case site name ("ipi-drop", ...). */
const char* faultSiteName(FaultSite s);

/** Parse a site name; nullopt if unknown. */
std::optional<FaultSite> faultSiteFromName(const std::string& name);

/**
 * One line per site, "  <name>\n" — the menu printed by `--faults
 * help` and appended to the unknown-site parse error.
 */
std::string faultSiteListText();

/**
 * One fault declaration. All predicates must hold for the fault to
 * fire: the site's occurrence count reaches @c nth (if nonzero), the
 * current tick lies in [windowStart, windowEnd], and a Bernoulli draw
 * with @c probability succeeds (drawn from the plan RNG only when the
 * other predicates already hold). A spec stops firing after
 * @c maxInjections hits (0 = unbounded).
 */
struct FaultSpec {
    FaultSite site = FaultSite::IpiDrop;
    /** Fire on the nth occurrence of the site (1-based; 0 = any). */
    std::uint64_t nth = 0;
    /** Bernoulli trigger probability (1.0 = always). */
    double probability = 1.0;
    /** Only fire inside this simulated-time window. */
    Tick windowStart = 0;
    Tick windowEnd = maxTick;
    /** Stop after this many injections from this spec (0 = never). */
    std::uint64_t maxInjections = 1;
    /** Site-specific magnitude (e.g. added delay); 0 = site default. */
    Tick param = 0;
};

/**
 * The simulation's fault source. Disarmed (the default) it is inert;
 * arm(seed) + add(spec) turn specific queries into injections.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const EventQueue& q) : queue_(q) {}

    FaultPlan(const FaultPlan&) = delete;
    FaultPlan& operator=(const FaultPlan&) = delete;

    /** Enable injection; resets counters and reseeds the plan RNG. */
    void arm(std::uint64_t seed);

    /** Back to inert (counters keep their values for inspection). */
    void disarm() { armed_ = false; }

    bool armed() const { return armed_; }

    /** Declare a fault (plan must be armed first). */
    void add(const FaultSpec& spec);

    /** Convenience: arm and add every spec of a parsed plan. */
    void arm(std::uint64_t seed, const std::vector<FaultSpec>& specs);

    /**
     * The injection-point query: records one occurrence of @p site and
     * returns the firing spec's param if a declared fault triggers
     * here. Callers interpret a 0 param as the site default. Disarmed,
     * this is a single branch: no counting, no randomness, no events.
     */
    std::optional<Tick> query(FaultSite site);

    /** @{ Recovery bookkeeping: the recovery paths report back so the
     * plan can expose detection/recovery latency per site (measured
     * from the most recent injection at that site). */
    void noteDetected(FaultSite site);
    void noteRecovered(FaultSite site);
    /** @} */

    /** Occurrences of @p site observed while armed. */
    std::uint64_t occurrences(FaultSite site) const
    {
        return occ_[static_cast<size_t>(site)];
    }

    /** Injections fired at @p site. */
    std::uint64_t injected(FaultSite site) const
    {
        return injected_[static_cast<size_t>(site)].value();
    }

    std::uint64_t injectedTotal() const;

    const LatencyStat& detectionLatency(FaultSite site) const
    {
        return detected_[static_cast<size_t>(site)];
    }
    const LatencyStat& recoveryLatency(FaultSite site) const
    {
        return recovered_[static_cast<size_t>(site)];
    }

    /**
     * Register "faults.injected.<site>" / "faults.detected.<site>" /
     * "faults.recovered.<site>" in @p reg. Only armed runs should
     * call this, so disarmed stat dumps stay identical to pre-fault
     * builds.
     */
    void registerStats(StatRegistry& reg);

    /** Emit "fault-inject" tracepoints through @p t (may be null). */
    void setTracer(Tracer* t) { tracer_ = t; }

    /**
     * Parse a textual plan: ';'-separated clauses, each
     * "<site>[:key=value]..." with keys nth=<n>, p=<probability>,
     * from=<time>, until=<time>, max=<n>, param=<time>; times take
     * ns/us/ms/s suffixes ("ipi-drop:nth=3;syncrpc-stall:p=0.1:max=2").
     * Throws FatalError on malformed input.
     */
    static std::vector<FaultSpec> parse(const std::string& text);

  private:
    struct ArmedSpec {
        FaultSpec spec;
        std::uint64_t fired = 0;
    };

    const EventQueue& queue_;
    Tracer* tracer_ = nullptr;
    bool armed_ = false;
    Rng rng_;
    std::vector<ArmedSpec> specs_;
    std::array<std::uint64_t, numFaultSites> occ_{};
    std::array<Counter, numFaultSites> injected_{};
    std::array<Tick, numFaultSites> lastInjectedAt_{};
    std::array<LatencyStat, numFaultSites> detected_{};
    std::array<LatencyStat, numFaultSites> recovered_{};
    StatGroup statGroup_;
};

/**
 * Process-global fault-plan request, set by the benchmark harness
 * (`--faults <plan>` / `--fault-seed <n>` in bench/common.hh) and
 * applied by every Testbed it constructs: unlike ObservabilityRequest
 * there is no claim — each run in a sweep arms the same plan against
 * its own seed, so the whole sweep stays deterministic.
 */
class FaultPlanRequest
{
  public:
    static void configure(std::string plan_text, std::uint64_t seed);

    static bool requested();

    /** Forget the request (tests). */
    static void reset();

    static const std::string& planText();
    static std::uint64_t seed();
};

} // namespace cg::sim

#endif // CG_SIM_FAULT_HH
