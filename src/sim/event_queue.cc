#include "sim/event_queue.hh"

#include <new>
#include <utility>

#include "sim/logging.hh"
#include "sim/slab.hh"

namespace cg::sim {

void
EventQueue::ChunkDeleter::operator()(Chunk* c) const noexcept
{
    c->~Chunk();
    slabFree(c, sizeof(Chunk));
}

std::uint32_t
EventQueue::appendSlot()
{
    const std::size_t idx = gens_.size();
    CG_ASSERT(idx < UINT32_MAX, "event slot pool exhausted");
    if ((idx & (chunkSize - 1)) == 0)
        chunks_.push_back(ChunkPtr(new (slabAlloc(sizeof(Chunk))) Chunk));
    gens_.push_back(1); // odd: occupied from birth
    return static_cast<std::uint32_t>(idx);
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    fnAt(idx).reset();
    ++gens_[idx]; // odd -> even: free; invalidates outstanding ids
    freeSlots_.push_back(idx);
}

void
EventQueue::heapPush(Entry e)
{
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
        const std::size_t parent = (i - 1) / heapArity;
        if (!e.before(heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::heapPopTop()
{
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return;
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = heapArity * i + 1;
        if (first >= n)
            break;
        const std::size_t end =
            first + heapArity < n ? first + heapArity : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
            if (heap_[c].before(heap_[best]))
                best = c;
        }
        if (!heap_[best].before(last))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = last;
}

EventId
EventQueue::schedule(Tick when, EventFn fn)
{
    CG_ASSERT(when >= now_, "scheduling into the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const std::uint32_t idx = acquireSlot();
    fnAt(idx) = std::move(fn);
    const std::uint32_t gen = gens_[idx];
    pushEntry(when, idx, gen);
    return makeId(idx, gen);
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId)
        return false;
    const std::uint64_t slot_plus1 = id & 0xffffffffULL;
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (slot_plus1 == 0 || slot_plus1 > gens_.size())
        return false;
    const auto idx = static_cast<std::uint32_t>(slot_plus1 - 1);
    if (gens_[idx] != gen)
        return false; // already ran, already cancelled, or slot reused
    releaseSlot(idx);
    CG_ASSERT(live_ > 0, "cancel accounting underflow");
    --live_;
    return true;
}

const EventQueue::Entry*
EventQueue::peekMin()
{
    // Drop stale (cancelled) entries from both candidate fronts.
    while (sortedHead_ < sorted_.size() &&
           !entryLive(sorted_[sortedHead_]))
        ++sortedHead_;
    while (!heap_.empty() && !entryLive(heap_[0]))
        heapPopTop();

    const bool has_sorted = sortedHead_ < sorted_.size();
    const bool has_heap = !heap_.empty();
    if (has_sorted && has_heap) {
        return sorted_[sortedHead_].before(heap_[0]) ? &sorted_[sortedHead_]
                                                     : &heap_[0];
    }
    if (has_sorted)
        return &sorted_[sortedHead_];
    if (has_heap)
        return &heap_[0];
    if (!sorted_.empty()) {
        sorted_.clear();
        sortedHead_ = 0;
    }
    return nullptr;
}

void
EventQueue::dropMin(const Entry* top)
{
    if (!heap_.empty() && top == &heap_[0]) {
        heapPopTop();
        return;
    }
    ++sortedHead_;
    // Compact the consumed prefix once it dominates the run.
    if (sortedHead_ >= 4096 && sortedHead_ * 2 >= sorted_.size()) {
        sorted_.erase(sorted_.begin(),
                      sorted_.begin() +
                          static_cast<std::ptrdiff_t>(sortedHead_));
        sortedHead_ = 0;
    }
}

void
EventQueue::runSlot(std::uint32_t idx)
{
    // Consume before invoking: the callback may schedule or try to
    // cancel its own id (must fail). The slot joins the free list only
    // after the call returns, even if the callback throws.
    ++gens_[idx]; // odd -> even: consumed
    --live_;
    EventFn& fn = fnAt(idx);
    struct Recycle {
        EventQueue* q;
        EventFn* fn;
        std::uint32_t idx;
        ~Recycle()
        {
            fn->reset();
            q->freeSlots_.push_back(idx);
        }
    } recycle{this, &fn, idx};
    fn();
}

bool
EventQueue::consumeOne()
{
    const Entry* top = peekMin();
    if (!top)
        return false;
    const Entry e = *top;
    dropMin(top);
    CG_ASSERT(e.when >= now_, "event queue time went backwards");
    now_ = e.when;
    runSlot(e.slot);
    return true;
}

bool
EventQueue::step()
{
    return consumeOne();
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        const Entry* top = peekMin();
        if (!top)
            break;
        if (top->when > limit) {
            now_ = limit;
            return now_;
        }
        const Entry e = *top;
        dropMin(top);
        now_ = e.when;
        runSlot(e.slot);
    }
    if (limit != maxTick && limit > now_)
        now_ = limit;
    return now_;
}

} // namespace cg::sim
