#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace cg::sim {

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    CG_ASSERT(when >= now_, "scheduling into the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    ++live_;
    return id;
}

EventId
EventQueue::scheduleIn(Tick delay, std::function<void()> fn)
{
    CG_ASSERT(delay <= maxTick - now_, "tick overflow");
    return schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId)
        return false;
    // We cannot remove from the heap cheaply; mark and skip on pop.
    // Only mark if the id is plausibly pending.
    if (id >= nextId_)
        return false;
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (inserted && live_ > 0) {
        --live_;
        return true;
    }
    return false;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        CG_ASSERT(e.when >= now_, "event queue time went backwards");
        now_ = e.when;
        --live_;
        e.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty()) {
        const Entry& top = heap_.top();
        if (cancelled_.count(top.id)) {
            cancelled_.erase(top.id);
            heap_.pop();
            continue;
        }
        if (top.when > limit) {
            now_ = limit;
            return now_;
        }
        step();
    }
    if (limit != maxTick && limit > now_)
        now_ = limit;
    return now_;
}

} // namespace cg::sim
