#include "sim/proc.hh"

#include "sim/simulation.hh"
#include "sim/sync.hh"

namespace cg::sim {

Process::Process(Simulation& sim, Dispatcher& disp, std::string name,
                 Proc<void>&& top)
    : sim_(sim),
      disp_(&disp),
      name_(std::move(name)),
      top_(top.release()),
      doneNotify_(std::make_unique<Notify>())
{
    CG_ASSERT(top_, "spawning an empty Proc");
    top_.promise().proc = this;
    resumePoint_ = top_;
}

Process::~Process()
{
    if (top_) {
        top_.destroy();
        top_ = {};
    }
}

void
Process::suspendAt(std::coroutine_handle<> h)
{
    CG_ASSERT(state_ == State::Running || state_ == State::Ready,
              "process '%s' suspending in state %d", name_.c_str(),
              static_cast<int>(state_));
    resumePoint_ = h;
    state_ = State::Blocked;
}

void
Process::wake()
{
    if (state_ != State::Blocked)
        return;
    state_ = State::Ready;
    disp_->wake(*this);
}

void
Process::resumeNow()
{
    CG_ASSERT(state_ == State::Ready,
              "resuming process '%s' in state %d", name_.c_str(),
              static_cast<int>(state_));
    CG_ASSERT(resumePoint_, "process '%s' has no resume point",
              name_.c_str());
    state_ = State::Running;
    auto rp = resumePoint_;
    resumePoint_ = {};
    rp.resume();
    // After resume() returns the coroutine either suspended again
    // (state_ == Blocked, set via suspendAt), finished (state_ == Done,
    // set via onTopDone), or a kill was requested from within.
    if (killRequested_ && state_ != State::Done)
        finish();
    else if (state_ == State::Running)
        state_ = State::Blocked; // defensive; should not happen
}

void
Process::onTopDone()
{
    if (top_.promise().exception) {
        try {
            std::rethrow_exception(top_.promise().exception);
        } catch (const std::exception& e) {
            panic("uncaught exception in process '%s': %s", name_.c_str(),
                  e.what());
        } catch (...) {
            panic("uncaught exception in process '%s'", name_.c_str());
        }
    }
    finish();
}

void
Process::finish()
{
    if (state_ == State::Done)
        return;
    state_ = State::Done;
    if (pendingEvent_ != invalidEventId) {
        sim_.queue().cancel(pendingEvent_);
        pendingEvent_ = invalidEventId;
    }
    if (waitingOn_) {
        waitingOn_->unlink(*this);
        waitingOn_ = nullptr;
    }
    disp_->detach(*this);
    doneNotify_->notifyAll();
}

void
Process::kill()
{
    if (state_ == State::Done)
        return;
    if (state_ == State::Running) {
        // Killed from inside its own call chain: defer until the
        // coroutine next suspends.
        killRequested_ = true;
        return;
    }
    // Destroy the coroutine frames first (legal: it is suspended).
    // Locals in the frames may own child Procs, which cascade.
    if (top_ && !top_.done()) {
        top_.destroy();
        top_ = {};
    }
    finish();
}

Notify&
Process::doneNotify()
{
    return *doneNotify_;
}

void
Delay::sleepProcess(Process& p, Tick amount)
{
    EventQueue& q = p.simulation().queue();
    const EventId id = q.scheduleIn(amount, [&p] {
        p.setPendingEvent(invalidEventId);
        p.wake();
    });
    p.setPendingEvent(id);
    p.dispatcher().blocked(p);
}

void
FreeDispatcher::compute(Process& p, Tick amount)
{
    // Free-running processes have exclusive CPU: compute == delay.
    const EventId id = queue_.scheduleIn(amount, [&p] {
        p.setPendingEvent(invalidEventId);
        p.wake();
    });
    p.setPendingEvent(id);
}

void
FreeDispatcher::blocked(Process& p)
{
    (void)p; // nothing to do: resumption is driven by wake()
}

void
FreeDispatcher::wake(Process& p)
{
    // Resume from event context at the current instant (never recurse
    // into the waker's stack).
    queue_.scheduleIn(0, [&p] {
        if (p.state() == Process::State::Ready)
            p.resumeNow();
    });
}

void
FreeDispatcher::detach(Process& p)
{
    (void)p;
}

} // namespace cg::sim
