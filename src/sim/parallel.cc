#include "sim/parallel.hh"

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cg::sim {

unsigned
ParallelRunner::parseThreads(const char* text, unsigned hardware)
{
    CG_ASSERT(hardware >= 1, "hardware thread count must be positive");
    if (!text)
        return hardware;
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1) {
        warn("ignoring invalid CG_THREADS='%s' (want 1..%u)", text,
             hardware);
        return hardware;
    }
    if (static_cast<unsigned long>(v) > hardware) {
        warn("clamping CG_THREADS=%ld to %u hardware threads", v,
             hardware);
        return hardware;
    }
    return static_cast<unsigned>(v);
}

unsigned
ParallelRunner::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned fallback = hw > 0 ? hw : 4;
    return parseThreads(std::getenv("CG_THREADS"), fallback);
}

std::vector<std::uint64_t>
ParallelRunner::deriveSeeds(std::uint64_t root, std::size_t n)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(n);
    std::uint64_t state = root;
    for (std::size_t i = 0; i < n; ++i)
        seeds.push_back(splitmix64(state));
    return seeds;
}

ParallelRunner::ParallelRunner(unsigned num_threads)
{
    const unsigned n = num_threads > 0 ? num_threads : defaultThreads();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelRunner::~ParallelRunner()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    jobReady_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
ParallelRunner::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        CG_ASSERT(!stopping_, "submit() on a stopping ParallelRunner");
        jobs_.push_back(std::move(job));
        ++inFlight_;
    }
    jobReady_.notify_one();
}

void
ParallelRunner::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ParallelRunner::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobReady_.wait(lock, [this] {
                return stopping_ || !jobs_.empty();
            });
            if (jobs_.empty())
                return; // stopping and drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace cg::sim
