/**
 * @file
 * The discrete-event heart of the simulator.
 *
 * Events are closures scheduled at an absolute Tick. Scheduling returns an
 * EventId that can later be cancelled. Ties are broken by insertion order,
 * which together with the deterministic Rng gives bit-identical replays.
 *
 * Internals are optimised for the schedule/run/cancel churn that dominates
 * simulation wall-clock time:
 *
 *  - Callbacks are EventFn (small-buffer optimised, move-only): the
 *    pointer-capture lambdas that make up nearly all events never touch
 *    the heap on schedule.
 *  - schedule() is a header template: the callable is constructed
 *    directly into its slot (no EventFn temporary, no type-erased
 *    relocation), and the monotone-append ordering fast path inlines
 *    into the caller.
 *  - Callback slots live in fixed-size chunks whose addresses never
 *    move, so a callback is invoked in place — growth of the slot pool
 *    from inside a running callback is safe, and the consume path pays
 *    one type-erased call (invoke) instead of three
 *    (relocate/invoke/destroy-moved).
 *  - Slot liveness is generation parity: a slot's generation is odd
 *    while occupied and even while free, so the heap entries and
 *    EventIds need no separate live flag and staleness checks read one
 *    dense uint32 array (gens_) instead of striding through the
 *    EventFn pool.
 *  - Ordering is two-tier. Pushes that sort at-or-after the newest
 *    pending entry — monotone timer chains, same-tick FIFO bursts,
 *    zero-delay wakes, bulk loads: the overwhelming majority — append
 *    O(1) to a sorted run consumed front-to-back. Only out-of-order
 *    arrivals go to a 4-ary min-heap (half the levels of a binary heap,
 *    cache-line-friendly sift). A pop takes whichever candidate is
 *    earlier, so events still execute in the exact (when, seq) total
 *    order: the split is invisible to simulated results.
 *  - Cancellation is O(1) generation invalidation: an EventId encodes its
 *    slot and the slot's generation at schedule time. Cancelling (or
 *    running) an event bumps the generation, so stale heap entries are
 *    skipped on pop and stale EventIds — including ids of events that
 *    already executed — fail to cancel, keeping pending() exact. No
 *    lazy-delete side table is needed.
 */

#ifndef CG_SIM_EVENT_QUEUE_HH
#define CG_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cg::sim {

/**
 * Handle to a scheduled event; 0 is "no event". Encodes (generation,
 * slot) — opaque to callers, unique across the queue's lifetime.
 */
using EventId = std::uint64_t;

constexpr EventId invalidEventId = 0;

/** Priority queue of timed callbacks with O(1) cancellation. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callable at absolute time @p when (>= now). The
     * callable is constructed directly into its recycled slot; small
     * captures never touch the heap.
     */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                          std::is_invocable_v<D&>>>
    EventId
    schedule(Tick when, F&& fn)
    {
        CG_ASSERT(when >= now_, "scheduling into the past: %llu < %llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
        const std::uint32_t idx = acquireSlot();
        fnAt(idx).emplace(std::forward<F>(fn));
        const std::uint32_t gen = gens_[idx];
        pushEntry(when, idx, gen);
        return makeId(idx, gen);
    }

    /** Schedule a pre-built EventFn (type-erased callers). */
    EventId schedule(Tick when, EventFn fn);

    /** Schedule after a delay relative to now. */
    template <typename F>
    EventId
    scheduleIn(Tick delay, F&& fn)
    {
        CG_ASSERT(delay <= maxTick - now_, "tick overflow");
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled; false
     *         for invalid ids and events that already ran or were
     *         already cancelled.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return live_; }

    /**
     * Execute events in time order until the queue drains or @p limit
     * is reached (events at exactly @p limit still run).
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Execute a single event if one exists. @return false if empty. */
    bool step();

  private:
    /**
     * Callback storage: fixed-size chunks, addresses stable for the
     * queue's lifetime. Slots are recycled through a free list; a
     * slot's entry in gens_ counts occupancies twice (odd = occupied,
     * even = free), invalidating any outstanding EventId/heap entry
     * that still references a consumed occupancy.
     */
    static constexpr std::size_t chunkShift = 8;
    static constexpr std::size_t chunkSize = std::size_t{1} << chunkShift;

    struct Chunk {
        EventFn fns[chunkSize];
    };

    /**
     * Chunks live on the slab recycler (sim/slab.hh): a chunk is
     * exactly one top-bucket slab block, so growing a queue reuses
     * the chunks a destroyed queue gave back instead of hitting the
     * heap. Sweep-style workloads that build and tear down whole
     * simulations in a loop otherwise spend double-digit percent of
     * their time in glibc heap grow/trim for these.
     */
    struct ChunkDeleter {
        void operator()(Chunk* c) const noexcept;
    };
    using ChunkPtr = std::unique_ptr<Chunk, ChunkDeleter>;

    /** Heap entry: plain data, cheap to sift. */
    struct Entry {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;

        /** Total order: earlier time first, then insertion order. */
        bool
        before(const Entry& o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    /** Children per heap node (see file comment). */
    static constexpr std::size_t heapArity = 4;

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        // slot+1 keeps 0 reserved for invalidEventId.
        return (static_cast<EventId>(gen) << 32) |
               (static_cast<EventId>(slot) + 1);
    }

    EventFn&
    fnAt(std::uint32_t idx)
    {
        return chunks_[idx >> chunkShift]->fns[idx & (chunkSize - 1)];
    }

    std::uint32_t
    acquireSlot()
    {
        if (!freeSlots_.empty()) {
            const std::uint32_t idx = freeSlots_.back();
            freeSlots_.pop_back();
            ++gens_[idx]; // even -> odd: occupied
            return idx;
        }
        return appendSlot();
    }

    /** Grow the pool by one slot (new chunk when needed). */
    std::uint32_t appendSlot();

    /** Insert into the ordering structure (see file comment). */
    void
    pushEntry(Tick when, std::uint32_t idx, std::uint32_t gen)
    {
        const Entry e{when, nextSeq_++, idx, gen};
        if (sortedHead_ == sorted_.size()) {
            // Fully consumed: recycle the run. Anything may start it.
            sorted_.clear();
            sortedHead_ = 0;
            sorted_.push_back(e);
        } else if (!e.before(sorted_.back())) {
            sorted_.push_back(e); // monotone arrival: O(1) fast path
        } else {
            heapPush(e); // out-of-order arrival
        }
        ++live_;
    }

    void releaseSlot(std::uint32_t idx);

    void heapPush(Entry e);
    void heapPopTop();

    bool entryLive(const Entry& e) const
    {
        return gens_[e.slot] == e.gen;
    }

    /**
     * Earliest live pending entry, dropping stale (cancelled) entries
     * encountered on the way; nullptr if drained. The pointer is
     * invalidated by the next push/pop.
     */
    const Entry* peekMin();

    /** Remove the entry peekMin() just returned. */
    void dropMin(const Entry* top);

    /**
     * Invoke slot @p idx in place and recycle it. The slot is marked
     * consumed (generation bump) before the call, so the callback may
     * schedule (growing the pool — chunk addresses are stable) and a
     * cancel of its own id correctly fails; it is returned to the free
     * list only after the call, so the running callable's captures are
     * never overwritten.
     */
    void runSlot(std::uint32_t idx);

    /** Pop and run the earliest live event; false if none (drained). */
    bool consumeOne();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    /**
     * Append-only sorted run: ascending (when, seq), consumed from
     * sortedHead_. The consumed prefix is compacted away periodically.
     */
    std::vector<Entry> sorted_;
    std::size_t sortedHead_ = 0;
    std::vector<Entry> heap_; ///< implicit min-heap, arity heapArity
    std::vector<ChunkPtr> chunks_;
    std::vector<std::uint32_t> gens_; ///< per-slot; odd = occupied
    std::vector<std::uint32_t> freeSlots_;
};

} // namespace cg::sim

#endif // CG_SIM_EVENT_QUEUE_HH
