/**
 * @file
 * The discrete-event heart of the simulator.
 *
 * Events are closures scheduled at an absolute Tick. Scheduling returns an
 * EventId that can later be cancelled (lazy deletion: cancelled entries are
 * skipped when popped). Ties are broken by insertion order, which together
 * with the deterministic Rng gives bit-identical replays.
 */

#ifndef CG_SIM_EVENT_QUEUE_HH
#define CG_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace cg::sim {

/** Handle to a scheduled event; 0 is "no event". */
using EventId = std::uint64_t;

constexpr EventId invalidEventId = 0;

/** Priority queue of timed callbacks with cancellation. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn after a delay relative to now. */
    EventId scheduleIn(Tick delay, std::function<void()> fn);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return live_; }

    /**
     * Execute events in time order until the queue drains or @p limit
     * is reached (events at exactly @p limit still run).
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Execute a single event if one exists. @return false if empty. */
    bool step();

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry& o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::size_t live_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace cg::sim

#endif // CG_SIM_EVENT_QUEUE_HH
