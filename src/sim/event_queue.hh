/**
 * @file
 * The discrete-event heart of the simulator.
 *
 * Events are closures scheduled at an absolute Tick. Scheduling returns an
 * EventId that can later be cancelled. Ties are broken by insertion order,
 * which together with the deterministic Rng gives bit-identical replays.
 *
 * Internals are optimised for the schedule/run/cancel churn that dominates
 * simulation wall-clock time:
 *
 *  - Callbacks are EventFn (small-buffer optimised, move-only): the
 *    pointer-capture lambdas that make up nearly all events never touch
 *    the heap on schedule.
 *  - Callbacks live in a recycled slot pool; the heap orders small POD
 *    entries (when, seq, slot, generation), so heap sift operations
 *    move 24-byte values instead of std::function objects.
 *  - Ordering is two-tier. Pushes that sort at-or-after the newest
 *    pending entry — monotone timer chains, same-tick FIFO bursts,
 *    zero-delay wakes, bulk loads: the overwhelming majority — append
 *    O(1) to a sorted run consumed front-to-back. Only out-of-order
 *    arrivals go to a 4-ary min-heap (half the levels of a binary heap,
 *    cache-line-friendly sift). A pop takes whichever candidate is
 *    earlier, so events still execute in the exact (when, seq) total
 *    order: the split is invisible to simulated results.
 *  - Cancellation is O(1) generation invalidation: an EventId encodes its
 *    slot and the slot's generation at schedule time. Cancelling (or
 *    running) an event bumps the generation, so stale heap entries are
 *    skipped on pop and stale EventIds — including ids of events that
 *    already executed — fail to cancel, keeping pending() exact. No
 *    lazy-delete side table is needed.
 */

#ifndef CG_SIM_EVENT_QUEUE_HH
#define CG_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace cg::sim {

/**
 * Handle to a scheduled event; 0 is "no event". Encodes (generation,
 * slot) — opaque to callers, unique across the queue's lifetime.
 */
using EventId = std::uint64_t;

constexpr EventId invalidEventId = 0;

/** Priority queue of timed callbacks with O(1) cancellation. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId schedule(Tick when, EventFn fn);

    /** Schedule @p fn after a delay relative to now. */
    EventId scheduleIn(Tick delay, EventFn fn);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled; false
     *         for invalid ids and events that already ran or were
     *         already cancelled.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) pending events. */
    std::size_t pending() const { return live_; }

    /**
     * Execute events in time order until the queue drains or @p limit
     * is reached (events at exactly @p limit still run).
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Execute a single event if one exists. @return false if empty. */
    bool step();

  private:
    /**
     * Callback storage, recycled through a free list. gen counts how
     * many events have occupied the slot; it is bumped whenever the
     * occupant is consumed (run or cancelled), invalidating any
     * outstanding EventId/heap entry that still references it.
     */
    struct Slot {
        EventFn fn;
        std::uint32_t gen = 1;
        bool live = false;
    };

    /** Heap entry: plain data, cheap to sift. */
    struct Entry {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;

        /** Total order: earlier time first, then insertion order. */
        bool
        before(const Entry& o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    /** Children per heap node (see file comment). */
    static constexpr std::size_t heapArity = 4;

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        // slot+1 keeps 0 reserved for invalidEventId.
        return (static_cast<EventId>(gen) << 32) |
               (static_cast<EventId>(slot) + 1);
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t idx);

    void heapPush(Entry e);
    void heapPopTop();

    bool entryLive(const Entry& e) const
    {
        const Slot& s = slots_[e.slot];
        return s.live && s.gen == e.gen;
    }

    /**
     * Earliest live pending entry, dropping stale (cancelled) entries
     * encountered on the way; nullptr if drained. The pointer is
     * invalidated by the next push/pop.
     */
    const Entry* peekMin();

    /** Remove the entry peekMin() just returned. */
    void dropMin(const Entry* top);

    /** Pop and run the earliest live event; false if none (drained). */
    bool consumeOne();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    /**
     * Append-only sorted run: ascending (when, seq), consumed from
     * sortedHead_. The consumed prefix is compacted away periodically.
     */
    std::vector<Entry> sorted_;
    std::size_t sortedHead_ = 0;
    std::vector<Entry> heap_; ///< implicit min-heap, arity heapArity
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
};

} // namespace cg::sim

#endif // CG_SIM_EVENT_QUEUE_HH
