#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cg::sim {

void
Accumulator::sample(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::sample(double x)
{
    // The sorted cache needs no invalidation: ensureSorted() compares
    // sizes and merges the new tail on the next query.
    samples_.push_back(x);
}

void
Distribution::reset()
{
    samples_.clear();
    sorted_.clear();
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

const std::vector<double>&
Distribution::ensureSorted() const
{
    const size_t merged = sorted_.size();
    if (merged == samples_.size())
        return sorted_;
    sorted_.insert(sorted_.end(), samples_.begin() +
                   static_cast<std::ptrdiff_t>(merged), samples_.end());
    const auto mid = sorted_.begin() + static_cast<std::ptrdiff_t>(merged);
    std::sort(mid, sorted_.end());
    std::inplace_merge(sorted_.begin(), mid, sorted_.end());
    return sorted_;
}

double
Distribution::min() const
{
    if (samples_.empty())
        return 0.0;
    return ensureSorted().front();
}

double
Distribution::max() const
{
    if (samples_.empty())
        return 0.0;
    return ensureSorted().back();
}

double
Distribution::percentile(double p) const
{
    CG_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    if (samples_.empty())
        return 0.0;
    const std::vector<double>& s = ensureSorted();
    if (s.size() == 1)
        return s[0];
    const double rank = (p / 100.0) * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

void
LatencyStat::sample(Tick t)
{
    dist_.sample(static_cast<double>(t));
}

void
LatencyStat::reset()
{
    dist_.reset();
}

std::string
fmtDouble(double v, int precision)
{
    return strFormat("%.*f", precision, v);
}

} // namespace cg::sim
