/**
 * @file
 * The statistics registry: a per-simulation directory of named,
 * hierarchical statistics.
 *
 * Components own their Counter/Accumulator/Distribution/LatencyStat
 * objects exactly as before (stats.hh); the registry holds non-owning,
 * typed references under dotted hierarchical names ("rmm.exitsToHost",
 * "kvm.vm2.exits", "guest.cm.vcpu3.ticksHandled") so that any run can
 * enumerate and dump every statistic in one place — the paper's tables
 * are all read off these objects, and the `--stats <path>` bench flag
 * writes the dump for offline comparison.
 *
 * Lifetime: a registered stat must outlive its registry entry. The
 * StatGroup RAII helper makes that automatic — a component keeps a
 * StatGroup member next to its stats and every name the group added is
 * removed when the component is destroyed, so teardown order can never
 * leave the registry pointing at freed memory.
 *
 * Registration is pure bookkeeping: it schedules no events, consumes
 * no randomness, and therefore cannot perturb simulated results.
 */

#ifndef CG_SIM_STAT_REGISTRY_HH
#define CG_SIM_STAT_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace cg::sim {

class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry&) = delete;
    StatRegistry& operator=(const StatRegistry&) = delete;

    /** @{ Register a stat under @p name (non-owning; name must be
     * unique within the registry). */
    void add(const std::string& name, const Counter& c);
    void add(const std::string& name, const Accumulator& a);
    void add(const std::string& name, const Distribution& d);
    void add(const std::string& name, const LatencyStat& l);
    /** A bare monotonic value kept as a raw integer (legacy stats). */
    void addValue(const std::string& name, const std::uint64_t& v);
    /** @} */

    /** Remove one entry; unknown names are ignored. */
    void remove(const std::string& name);

    /** Remove every entry whose name starts with @p prefix. */
    void removePrefix(const std::string& prefix);

    std::size_t size() const { return entries_.size(); }
    bool has(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Discriminator for what a registered name refers to. */
    enum class Kind { Counter, Accumulator, Distribution, Latency, Value };

    /**
     * Resolved handle to a registered stat: the result of one
     * string-keyed lookup, reusable for the registration's lifetime.
     *
     * String-keyed lookup costs a map walk plus per-character
     * comparisons, which is fine at dump time and poison inside event
     * callbacks. Code that reads a stat repeatedly must call find()
     * once (at construction / bind time) and keep the StatRef; the
     * stat-handle lint rule (tools/cg-lint) flags lookups that remain
     * inside callback bodies. The handle is invalidated by remove()/
     * removePrefix() of its name — the same lifetime contract as the
     * underlying stat object.
     */
    struct StatRef {
        Kind kind = Kind::Value;
        const void* ptr = nullptr; ///< nullptr: name was not registered

        explicit operator bool() const { return ptr != nullptr; }

        /** @{ Typed access; nullptr if empty or of another kind. */
        const Counter*
        counter() const
        {
            return kind == Kind::Counter
                       ? static_cast<const Counter*>(ptr)
                       : nullptr;
        }
        const Accumulator*
        accumulator() const
        {
            return kind == Kind::Accumulator
                       ? static_cast<const Accumulator*>(ptr)
                       : nullptr;
        }
        const Distribution*
        distribution() const
        {
            return kind == Kind::Distribution
                       ? static_cast<const Distribution*>(ptr)
                       : nullptr;
        }
        const LatencyStat*
        latency() const
        {
            return kind == Kind::Latency
                       ? static_cast<const LatencyStat*>(ptr)
                       : nullptr;
        }
        const std::uint64_t*
        value() const
        {
            return kind == Kind::Value
                       ? static_cast<const std::uint64_t*>(ptr)
                       : nullptr;
        }
        /** @} */
    };

    /** One string-keyed lookup; empty StatRef if @p name is absent. */
    StatRef find(const std::string& name) const;

    /** @{ Typed lookup; nullptr if absent or of another kind.
     * Convenience over find() — same cost, same caching rule. */
    const Counter* counter(const std::string& name) const;
    const Accumulator* accumulator(const std::string& name) const;
    const Distribution* distribution(const std::string& name) const;
    const LatencyStat* latency(const std::string& name) const;
    const std::uint64_t* value(const std::string& name) const;
    /** @} */

    /**
     * Human-readable dump: one line per stat, sorted by name.
     * Counters/values print the count; sample stats print count, mean,
     * spread, and tail percentiles.
     */
    std::string dumpText() const;

    /**
     * Machine-readable dump: one JSON object keyed by stat name, each
     * value an object with a "kind" discriminator and the stat's
     * fields. Deterministic (sorted by name).
     */
    std::string dumpJson() const;

    /**
     * Write the dump to @p path; a ".json" suffix selects the JSON
     * format, anything else the text format.
     * @return false if the file could not be written.
     */
    bool writeFile(const std::string& path) const;

  private:
    struct Entry {
        Kind kind;
        const void* ptr;
    };

    void addEntry(const std::string& name, Kind kind, const void* p);

    /** Ordered so enumeration and dumps are deterministic. */
    std::map<std::string, Entry> entries_;
};

/**
 * RAII registration scope: registers stats under a common prefix and
 * removes every one of them on destruction. Embed one per component:
 *
 *     statGroup_.attach(registry, "kvm." + vmName);
 *     statGroup_.add("exits", stats_.exits);       // kvm.<vm>.exits
 */
class StatGroup
{
  public:
    StatGroup() = default;
    StatGroup(StatRegistry& r, std::string prefix);
    ~StatGroup();

    StatGroup(StatGroup&& o) noexcept;
    StatGroup& operator=(StatGroup&& o) noexcept;
    StatGroup(const StatGroup&) = delete;
    StatGroup& operator=(const StatGroup&) = delete;

    /** Bind to a registry under @p prefix, dropping prior entries. */
    void attach(StatRegistry& r, std::string prefix);

    bool attached() const { return reg_ != nullptr; }
    const std::string& prefix() const { return prefix_; }

    /** @{ Register "<prefix>.<leaf>"; no-ops when unattached, so
     * components work unregistered (unit tests, ad-hoc assemblies). */
    void add(const std::string& leaf, const Counter& c);
    void add(const std::string& leaf, const Accumulator& a);
    void add(const std::string& leaf, const Distribution& d);
    void add(const std::string& leaf, const LatencyStat& l);
    void addValue(const std::string& leaf, const std::uint64_t& v);
    /** @} */

    /** Remove everything this group registered. */
    void clear();

  private:
    std::string fullName(const std::string& leaf) const;

    StatRegistry* reg_ = nullptr;
    std::string prefix_;
    std::vector<std::string> names_;
};

} // namespace cg::sim

#endif // CG_SIM_STAT_REGISTRY_HH
