/**
 * @file
 * Slab recycling for the simulator's steady-state allocations.
 *
 * Two allocation sites survive in the hot loop once EventFn keeps
 * callbacks inline: coroutine frames (every co_await chain) and the
 * shared SyncCall tokens of the RPC transports. Both are small,
 * fixed-size, and churned millions of times per simulated second —
 * exactly the malloc/free traffic a bucketed free list absorbs.
 *
 * slabAlloc/slabFree round sizes up to a 64-byte granule and recycle
 * blocks per size class through a thread-local LIFO free list, so
 * steady-state simulation allocates nothing after warm-up. Oversized
 * requests (> 8 KiB) fall through to the global heap.
 *
 * Under AddressSanitizer or ThreadSanitizer the pool is compiled out
 * and every call forwards to ::operator new/delete: recycling would
 * mask use-after-free by handing the poisoned block straight back, and
 * the sanitizer suites (scripts/ci.sh) exist to catch exactly those
 * bugs. Perf builds get the pool; checking builds get the checking.
 */

#ifndef CG_SIM_SLAB_HH
#define CG_SIM_SLAB_HH

#include <cstddef>
#include <cstdint>

namespace cg::sim {

/** Allocate @p bytes from the thread-local slab pool. */
void* slabAlloc(std::size_t bytes);

/**
 * Return a slabAlloc'd block. @p bytes must be the size passed to
 * slabAlloc (both callers — sized operator delete and
 * SlabAllocator::deallocate — know it, so no per-block header is
 * needed).
 */
void slabFree(void* p, std::size_t bytes) noexcept;

/** Running totals for tests and the --stats dump. */
struct SlabStats {
    std::uint64_t poolHits = 0;    ///< served from a free list
    std::uint64_t poolMisses = 0;  ///< fresh block (cold or oversized)
    std::uint64_t liveBlocks = 0;  ///< currently allocated via slabAlloc
};

/** This thread's slab counters (zeros in sanitizer passthrough builds). */
SlabStats slabStats();

/** True when the pool is compiled out (sanitizer build). */
bool slabPassthrough();

/**
 * Minimal std allocator over the slab pool, for
 * std::allocate_shared and friends.
 */
template <typename T>
struct SlabAllocator {
    using value_type = T;

    SlabAllocator() noexcept = default;
    template <typename U>
    SlabAllocator(const SlabAllocator<U>&) noexcept
    {
    }

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(slabAlloc(n * sizeof(T)));
    }

    void
    deallocate(T* p, std::size_t n) noexcept
    {
        slabFree(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const SlabAllocator<U>&) const noexcept
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const SlabAllocator<U>&) const noexcept
    {
        return false;
    }
};

} // namespace cg::sim

#endif // CG_SIM_SLAB_HH
