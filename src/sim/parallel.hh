/**
 * @file
 * ParallelRunner: a thread pool for fanning *independent* Simulation
 * instances across host cores.
 *
 * The discrete-event kernel itself is strictly single-threaded — one
 * Simulation must only ever be driven from one thread. Experiment
 * sweeps, however, run many Simulations that share nothing (one per
 * (mode, core count, seed) point), and those parallelize perfectly.
 *
 * Determinism rules (see DESIGN.md, "Parallel sweeps"):
 *  - every job must construct its own Simulation/Testbed and derive all
 *    inputs (including the seed) from the job's index, never from
 *    shared mutable state or thread identity;
 *  - results are written to per-index slots, so collection order is
 *    the submission order regardless of completion order;
 *  - per-run seeds come from deriveSeeds(), a splitmix64 stream of the
 *    root seed, computed *before* dispatch.
 * Under these rules a sweep produces bit-identical simulated results
 * for any thread count, including 1.
 */

#ifndef CG_SIM_PARALLEL_HH
#define CG_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cg::sim {

/** Fixed-size worker pool executing submitted jobs. */
class ParallelRunner
{
  public:
    /**
     * @p num_threads 0 picks defaultThreads() (host parallelism,
     * overridable with the CG_THREADS environment variable).
     */
    explicit ParallelRunner(unsigned num_threads = 0);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner&) = delete;
    ParallelRunner& operator=(const ParallelRunner&) = delete;

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue @p job; runs on some worker thread. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has completed. */
    void wait();

    /** Worker count used for num_threads == 0. */
    static unsigned defaultThreads();

    /**
     * Parse a CG_THREADS-style override. The accepted range is
     * [1, hardware]: values above @p hardware are clamped to it (a
     * sweep gains nothing from oversubscription), and anything else —
     * null, empty, non-numeric, trailing garbage, zero, or negative —
     * falls back to @p hardware with a warning. Never returns 0.
     */
    static unsigned parseThreads(const char* text, unsigned hardware);

    /**
     * Derive @p n independent per-run seeds from @p root via a
     * splitmix64 stream. Deterministic in (root, n) and independent of
     * any thread scheduling; seed i is the i-th stream output.
     */
    static std::vector<std::uint64_t> deriveSeeds(std::uint64_t root,
                                                  std::size_t n);

    /**
     * Run fn(i) for every i in [0, n) across a pool and return the
     * results indexed by i. R must be default-constructible; each job
     * writes only its own slot. This is the one-call form the sweep
     * benches use.
     */
    template <typename R, typename Fn>
    static std::vector<R>
    mapIndexed(std::size_t n, Fn fn, unsigned num_threads = 0)
    {
        std::vector<R> results(n);
        ParallelRunner pool(num_threads);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&results, &fn, i] { results[i] = fn(i); });
        pool.wait();
        return results;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mu_;
    std::condition_variable jobReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; // queued + currently executing
    bool stopping_ = false;
};

} // namespace cg::sim

#endif // CG_SIM_PARALLEL_HH
