/**
 * @file
 * Fundamental simulation types: simulated time and identifiers.
 *
 * Simulated time is counted in integer ticks, with 1 tick = 1 picosecond.
 * Picosecond resolution lets latency statistics reproduce sub-nanosecond
 * means (e.g. the paper's 257.7 ns RMM call latency) without floating-point
 * event times, while a 64-bit tick still spans ~213 days of simulated time.
 */

#ifndef CG_SIM_TYPES_HH
#define CG_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace cg::sim {

/** Simulated time in ticks; 1 tick = 1 picosecond. */
using Tick = std::uint64_t;

/** Sentinel for "no deadline / never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** @{ Time unit literals (multiply: `5 * usec`). */
constexpr Tick psec = 1;
constexpr Tick nsec = 1000 * psec;
constexpr Tick usec = 1000 * nsec;
constexpr Tick msec = 1000 * usec;
constexpr Tick sec = 1000 * msec;
/** @} */

/** Convert ticks to (double) nanoseconds, for reporting. */
constexpr double
toNsec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(nsec);
}

/** Convert ticks to (double) microseconds, for reporting. */
constexpr double
toUsec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(usec);
}

/** Convert ticks to (double) milliseconds, for reporting. */
constexpr double
toMsec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(msec);
}

/** Convert ticks to (double) seconds, for reporting. */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sec);
}

/**
 * @{ Unit conversion for latency *statistics*. Distribution/LatencyStat
 * store tick-denominated samples as doubles, so percentile/mean results
 * come back as double tick counts; every path from those to printed
 * us/ms numbers must go through these two helpers — hand-rolled
 * constants (/1e6 here, /1e9 there) are how units silently drift apart
 * between reports (the table 5 vs LatencyStat mismatch this replaced).
 */
constexpr double
ticksToUs(double t)
{
    return t / static_cast<double>(usec);
}

constexpr double
ticksToUs(Tick t)
{
    return ticksToUs(static_cast<double>(t));
}

constexpr double
ticksToMs(double t)
{
    return t / static_cast<double>(msec);
}

constexpr double
ticksToMs(Tick t)
{
    return ticksToMs(static_cast<double>(t));
}
/** @} */

/** Physical core identifier within a Machine. */
using CoreId = int;

/** Sentinel for "no core". */
constexpr CoreId invalidCore = -1;

/**
 * Security domain identifier used to tag microarchitectural state.
 *
 * Domains 0 and 1 are reserved for the untrusted host software stack and
 * the trusted security monitor respectively; confidential VMs are assigned
 * domains >= firstVmDomain.
 */
using DomainId = int;

constexpr DomainId hostDomain = 0;
constexpr DomainId monitorDomain = 1;
constexpr DomainId firstVmDomain = 2;
constexpr DomainId invalidDomain = -1;

} // namespace cg::sim

#endif // CG_SIM_TYPES_HH
