/**
 * @file
 * SmallVec: a vector with inline storage for the first N elements.
 *
 * Used for collections that are almost always tiny (domains touching a
 * microarchitectural structure, wait lists) where std::map/std::vector
 * node or heap churn shows up in the simulator's hot paths. Elements
 * stay contiguous; growing past N spills to the heap like std::vector.
 */

#ifndef CG_SIM_SMALL_VEC_HH
#define CG_SIM_SMALL_VEC_HH

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cg::sim {

template <typename T, std::size_t N>
class SmallVec
{
    static_assert(N > 0, "SmallVec needs at least one inline element");

  public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    SmallVec() noexcept : data_(inlinePtr()) {}

    SmallVec(const SmallVec& o) : data_(inlinePtr()) { appendAll(o); }

    SmallVec(SmallVec&& o) noexcept : data_(inlinePtr())
    {
        if (o.onHeap()) {
            // Steal the heap buffer.
            data_ = o.data_;
            size_ = o.size_;
            cap_ = o.cap_;
            o.data_ = o.inlinePtr();
            o.size_ = 0;
            o.cap_ = N;
        } else {
            for (std::size_t i = 0; i < o.size_; ++i)
                ::new (data_ + i) T(std::move(o.data_[i]));
            size_ = o.size_;
            o.clear();
        }
    }

    SmallVec&
    operator=(const SmallVec& o)
    {
        if (this != &o) {
            clear();
            appendAll(o);
        }
        return *this;
    }

    SmallVec&
    operator=(SmallVec&& o) noexcept
    {
        if (this != &o) {
            destroyAll();
            if (o.onHeap()) {
                data_ = o.data_;
                size_ = o.size_;
                cap_ = o.cap_;
                o.data_ = o.inlinePtr();
                o.size_ = 0;
                o.cap_ = N;
            } else {
                data_ = inlinePtr();
                for (std::size_t i = 0; i < o.size_; ++i)
                    ::new (data_ + i) T(std::move(o.data_[i]));
                size_ = o.size_;
                o.clear();
            }
        }
        return *this;
    }

    ~SmallVec() { destroyAll(); }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return cap_; }

    T* data() noexcept { return data_; }
    const T* data() const noexcept { return data_; }

    iterator begin() noexcept { return data_; }
    iterator end() noexcept { return data_ + size_; }
    const_iterator begin() const noexcept { return data_; }
    const_iterator end() const noexcept { return data_ + size_; }

    T& operator[](std::size_t i) noexcept { return data_[i]; }
    const T& operator[](std::size_t i) const noexcept { return data_[i]; }

    T& front() noexcept { return data_[0]; }
    T& back() noexcept { return data_[size_ - 1]; }

    void
    push_back(const T& v)
    {
        emplace_back(v);
    }

    void
    push_back(T&& v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T&
    emplace_back(Args&&... args)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        T* p = ::new (data_ + size_) T(std::forward<Args>(args)...);
        ++size_;
        return *p;
    }

    /** Insert @p v before @p pos; returns an iterator to the element. */
    iterator
    insert(const_iterator pos, T v)
    {
        const std::size_t idx = static_cast<std::size_t>(pos - data_);
        emplace_back(std::move(v)); // may reallocate
        std::rotate(data_ + idx, data_ + size_ - 1, data_ + size_);
        return data_ + idx;
    }

    /** Remove the element at @p pos, preserving order. */
    iterator
    erase(const_iterator pos)
    {
        const std::size_t idx = static_cast<std::size_t>(pos - data_);
        std::move(data_ + idx + 1, data_ + size_, data_ + idx);
        data_[size_ - 1].~T();
        --size_;
        return data_ + idx;
    }

    void
    clear() noexcept
    {
        for (std::size_t i = 0; i < size_; ++i)
            data_[i].~T();
        size_ = 0;
    }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

  private:
    T* inlinePtr() noexcept
    {
        return std::launder(reinterpret_cast<T*>(inline_));
    }

    bool onHeap() const noexcept
    {
        return data_ !=
               std::launder(reinterpret_cast<const T*>(inline_));
    }

    void
    grow(std::size_t new_cap)
    {
        new_cap = std::max(new_cap, cap_ * 2);
        T* fresh = static_cast<T*>(
            ::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (fresh + i) T(std::move(data_[i]));
            data_[i].~T();
        }
        if (onHeap())
            ::operator delete(data_, std::align_val_t{alignof(T)});
        data_ = fresh;
        cap_ = new_cap;
    }

    void
    destroyAll() noexcept
    {
        clear();
        if (onHeap()) {
            ::operator delete(data_, std::align_val_t{alignof(T)});
            data_ = inlinePtr();
            cap_ = N;
        }
    }

    void
    appendAll(const SmallVec& o)
    {
        reserve(o.size_);
        for (std::size_t i = 0; i < o.size_; ++i)
            ::new (data_ + i) T(o.data_[i]);
        size_ = o.size_;
    }

    std::size_t size_ = 0;
    std::size_t cap_ = N;
    T* data_;
    alignas(T) unsigned char inline_[N * sizeof(T)];
};

} // namespace cg::sim

#endif // CG_SIM_SMALL_VEC_HH
