#include "sim/simulation.hh"

#include <utility>

namespace cg::sim {

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed), freeDisp_(queue_)
{
    faults_.setTracer(&tracer_);
}

Simulation::~Simulation()
{
    // Kill processes in reverse spawn order so higher-level processes
    // (which may reference lower-level ones from coroutine locals) are
    // destroyed first.
    for (auto it = processes_.rbegin(); it != processes_.rend(); ++it)
        (*it)->kill();
}

Process&
Simulation::spawn(std::string name, Proc<void> body)
{
    return spawnOn(std::move(name), freeDisp_, std::move(body));
}

Process&
Simulation::spawnOn(std::string name, Dispatcher& disp, Proc<void> body,
                    bool auto_start)
{
    auto proc = std::unique_ptr<Process>(
        new Process(*this, disp, std::move(name), std::move(body)));
    Process& ref = *proc;
    processes_.push_back(std::move(proc));
    // Initial resume goes through the dispatcher like any wake.
    if (auto_start)
        disp.wake(ref);
    return ref;
}

Tick
Simulation::run(Tick limit)
{
    return queue_.run(limit);
}

} // namespace cg::sim
