#include "sim/sync.hh"

#include <algorithm>

namespace cg::sim {

Notify::~Notify()
{
    for (Process* p : waiters_)
        p->setWaitingOn(nullptr);
}

bool
Notify::notifyOne()
{
    if (waiters_.empty())
        return false;
    Process* p = waiters_.front();
    waiters_.erase(waiters_.begin());
    p->setWaitingOn(nullptr);
    p->wake();
    return true;
}

std::size_t
Notify::notifyAll()
{
    std::vector<Process*> taken;
    taken.swap(waiters_);
    for (Process* p : taken) {
        p->setWaitingOn(nullptr);
        p->wake();
    }
    return taken.size();
}

void
Notify::unlink(Process& p)
{
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &p),
                   waiters_.end());
}

void
Gate::open()
{
    open_ = true;
    notify_.notifyAll();
}

Proc<void>
Gate::wait()
{
    while (!open_)
        co_await notify_.wait();
}

Proc<void>
join(Process& p)
{
    while (!p.done())
        co_await p.doneNotify().wait();
}

Proc<void>
Semaphore::acquire()
{
    while (count_ == 0)
        co_await notify_.wait();
    --count_;
}

void
Semaphore::release(std::uint64_t n)
{
    count_ += n;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!notify_.notifyOne())
            break;
    }
}

} // namespace cg::sim
