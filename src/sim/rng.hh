/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * We implement xoshiro256++ (Blackman & Vigna) rather than relying on
 * std::mt19937 so that simulation results are bit-identical across
 * standard-library implementations. All randomness in a Simulation flows
 * from one seeded Rng; identical seeds therefore give identical runs
 * (invariant I9 in DESIGN.md).
 */

#ifndef CG_SIM_RNG_HH
#define CG_SIM_RNG_HH

#include <cstdint>

#include "sim/types.hh"

namespace cg::sim {

/**
 * Advance a splitmix64 state and return the next output. Used for Rng
 * seeding and for deriving independent per-run seeds in sweeps (see
 * ParallelRunner::deriveSeeds); exposed so seed derivation is identical
 * everywhere.
 */
std::uint64_t splitmix64(std::uint64_t& state);

/** xoshiro256++ PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed0c0de) { reseed(seed); }

    /** Re-initialise the state from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** Normal deviate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential deviate with the given mean. */
    double exponential(double mean);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * A simulated duration jittered around a nominal value.
     *
     * Returns max(0, normal(nominal, rel_sd * nominal)) as a Tick. Used by
     * cost models to produce realistic +/- spreads deterministically.
     */
    Tick jittered(Tick nominal, double rel_sd);

    /** Derive an independent child generator (for per-component streams). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace cg::sim

#endif // CG_SIM_RNG_HH
