/**
 * @file
 * The simulation tracer: a bounded per-simulation event ring with
 * Chrome trace_event JSON export.
 *
 * Components emit tracepoints at the load-bearing transitions of the
 * core-gapped design — REC enter/exit, SyncRpc post/pickup/response,
 * doorbell ring/wake, IPI send/deliver, hotplug offline/online, vCPU
 * rebind — onto two track families:
 *
 *  - pid coresPid:   one track (tid) per physical core;
 *  - pid domainsPid: one track (tid) per security domain (host = 0,
 *                    monitor = 1, VMs >= 2).
 *
 * The tracer is disabled by default and every emit call is a cheap
 * early-out in that state. Enabling it records into a fixed-capacity
 * ring (oldest events are overwritten and counted as dropped), so
 * memory stays bounded no matter how long the run is. Tracing is pure
 * observation: it schedules no events and consumes no randomness, so
 * simulated results are bit-identical with tracing on or off.
 *
 * Event names and argument names/values must be string literals (or
 * otherwise outlive the tracer): the ring stores the pointers.
 *
 * exportJson() produces the Chrome trace_event "JSON Object Format"
 * ({"traceEvents": [...], "displayTimeUnit": "ns"}) loadable in
 * chrome://tracing and Perfetto; timestamps are microseconds.
 */

#ifndef CG_SIM_TRACE_HH
#define CG_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cg::sim {

class Tracer
{
  public:
    /** Track families (trace_event pids). */
    static constexpr int coresPid = 1;
    static constexpr int domainsPid = 2;

    static constexpr std::size_t defaultCapacity = 1 << 16;

    /** One recorded tracepoint. */
    struct Event {
        Tick ts = 0;
        const char* name = nullptr;
        char phase = 'i'; ///< 'B' begin, 'E' end, 'i' instant
        std::int32_t pid = 0;
        std::int32_t tid = 0;
        const char* argName = nullptr; ///< nullptr: no argument
        std::uint64_t argValue = 0;
        const char* argStr = nullptr; ///< string argument (else numeric)
    };

    explicit Tracer(const EventQueue& q) : queue_(q) {}
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    bool enabled() const { return enabled_; }

    /** Start recording into a ring of @p capacity events. */
    void enable(std::size_t capacity = defaultCapacity);

    /** Stop recording (the ring's contents stay exportable). */
    void disable() { enabled_ = false; }

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return count_; }
    std::uint64_t dropped() const { return dropped_; }

    /** @{ Emission; all no-ops while disabled. */
    void begin(const char* name, int pid, int tid);
    void end(const char* name, int pid, int tid);
    void end(const char* name, int pid, int tid, const char* arg_name,
             const char* arg_value);
    void instant(const char* name, int pid, int tid);
    void instant(const char* name, int pid, int tid,
                 const char* arg_name, std::uint64_t arg_value);
    void instant(const char* name, int pid, int tid,
                 const char* arg_name, const char* arg_value);
    /** @} */

    /** Recorded events, oldest first. */
    std::vector<Event> events() const;

    /** Chrome trace_event JSON (object format, ts in microseconds). */
    std::string exportJson() const;

    /** Write exportJson() to @p path; false on I/O failure. */
    bool writeFile(const std::string& path) const;

  private:
    void push(Event e);

    const EventQueue& queue_;
    bool enabled_ = false;
    std::vector<Event> ring_;
    std::size_t head_ = 0; ///< next write position
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Process-global observability request, set by the benchmark harness
 * (`--stats <path>` / `--trace <path>` in bench/common.hh). The first
 * Testbed constructed after the request claims it and becomes the
 * observed run: it enables its simulation's tracer and writes the
 * requested files on destruction. claim() is atomic, so parallel
 * sweeps observe exactly one of their runs.
 */
class ObservabilityRequest
{
  public:
    static void configure(std::string stats_path,
                          std::string trace_path);

    static bool requested();

    /** True exactly once per configure() (thread-safe). */
    static bool claim();

    /** Forget the request and any claim (tests). */
    static void reset();

    static const std::string& statsPath();
    static const std::string& tracePath();
};

} // namespace cg::sim

#endif // CG_SIM_TRACE_HH
