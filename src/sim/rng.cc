#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace cg::sim {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    haveSpareNormal_ = false;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    CG_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next64();
    // Modulo bias is negligible for simulation purposes (span << 2^64).
    return lo + next64() % span;
}

double
Rng::normal()
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    haveSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double mean)
{
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Tick
Rng::jittered(Tick nominal, double rel_sd)
{
    if (nominal == 0 || rel_sd <= 0.0)
        return nominal;
    const double v =
        normal(static_cast<double>(nominal),
               rel_sd * static_cast<double>(nominal));
    return v <= 0.0 ? 0 : static_cast<Tick>(v);
}

Rng
Rng::fork()
{
    return Rng(next64());
}

} // namespace cg::sim
