/**
 * @file
 * Error-reporting and diagnostic helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * - panic():  an internal simulator invariant was violated (a bug in this
 *             code base); aborts.
 * - fatal():  the simulation cannot continue due to a user error (bad
 *             configuration, impossible topology); throws FatalError so
 *             library users and tests can catch it.
 * - warn()/inform(): diagnostics on stderr, never stop the simulation.
 */

#ifndef CG_SIM_LOGGING_HH
#define CG_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace cg::sim {

/** Exception thrown by fatal(): a user (configuration) error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string strFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Throw FatalError: the user's configuration is unusable. */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert an internal invariant with a formatted explanation.
 * Active in all build types (simulation correctness depends on it).
 */
#define CG_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::cg::sim::panic("assertion '%s' failed at %s:%d: %s", #cond, \
                             __FILE__, __LINE__,                          \
                             ::cg::sim::strFormat(__VA_ARGS__).c_str());  \
        }                                                                 \
    } while (0)

} // namespace cg::sim

#endif // CG_SIM_LOGGING_HH
