#include "sim/stat_registry.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace cg::sim {

// ------------------------------------------------------------ StatRegistry

void
StatRegistry::addEntry(const std::string& name, Kind kind, const void* p)
{
    CG_ASSERT(!name.empty(), "stat with empty name");
    const auto [it, inserted] = entries_.emplace(name, Entry{kind, p});
    (void)it;
    CG_ASSERT(inserted, "duplicate stat name '%s'", name.c_str());
}

void
StatRegistry::add(const std::string& name, const Counter& c)
{
    addEntry(name, Kind::Counter, &c);
}

void
StatRegistry::add(const std::string& name, const Accumulator& a)
{
    addEntry(name, Kind::Accumulator, &a);
}

void
StatRegistry::add(const std::string& name, const Distribution& d)
{
    addEntry(name, Kind::Distribution, &d);
}

void
StatRegistry::add(const std::string& name, const LatencyStat& l)
{
    addEntry(name, Kind::Latency, &l);
}

void
StatRegistry::addValue(const std::string& name, const std::uint64_t& v)
{
    addEntry(name, Kind::Value, &v);
}

void
StatRegistry::remove(const std::string& name)
{
    entries_.erase(name);
}

void
StatRegistry::removePrefix(const std::string& prefix)
{
    auto it = entries_.lower_bound(prefix);
    while (it != entries_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0) {
        it = entries_.erase(it);
    }
}

bool
StatRegistry::has(const std::string& name) const
{
    return entries_.count(name) != 0;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_)
        out.push_back(name);
    return out;
}

StatRegistry::StatRef
StatRegistry::find(const std::string& name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return {};
    return StatRef{it->second.kind, it->second.ptr};
}

const Counter*
StatRegistry::counter(const std::string& name) const
{
    return find(name).counter();
}

const Accumulator*
StatRegistry::accumulator(const std::string& name) const
{
    return find(name).accumulator();
}

const Distribution*
StatRegistry::distribution(const std::string& name) const
{
    return find(name).distribution();
}

const LatencyStat*
StatRegistry::latency(const std::string& name) const
{
    return find(name).latency();
}

const std::uint64_t*
StatRegistry::value(const std::string& name) const
{
    return find(name).value();
}

std::string
StatRegistry::dumpText() const
{
    std::string out;
    for (const auto& [name, e] : entries_) {
        switch (e.kind) {
          case Kind::Counter:
            out += strFormat(
                "%-48s %llu\n", name.c_str(),
                static_cast<unsigned long long>(
                    static_cast<const Counter*>(e.ptr)->value()));
            break;
          case Kind::Value:
            out += strFormat(
                "%-48s %llu\n", name.c_str(),
                static_cast<unsigned long long>(
                    *static_cast<const std::uint64_t*>(e.ptr)));
            break;
          case Kind::Accumulator: {
            const auto& a = *static_cast<const Accumulator*>(e.ptr);
            out += strFormat(
                "%-48s count %llu mean %.3f stddev %.3f min %.3f "
                "max %.3f\n",
                name.c_str(),
                static_cast<unsigned long long>(a.count()), a.mean(),
                a.stddev(), a.min(), a.max());
            break;
          }
          case Kind::Distribution: {
            const auto& d = *static_cast<const Distribution*>(e.ptr);
            out += strFormat(
                "%-48s count %llu mean %.3f p50 %.3f p95 %.3f "
                "p99 %.3f max %.3f\n",
                name.c_str(),
                static_cast<unsigned long long>(d.count()), d.mean(),
                d.percentile(50), d.percentile(95), d.percentile(99),
                d.max());
            break;
          }
          case Kind::Latency: {
            const auto& l = *static_cast<const LatencyStat*>(e.ptr);
            out += strFormat(
                "%-48s count %llu meanUs %.3f p50Us %.3f p95Us %.3f "
                "p99Us %.3f maxUs %.3f\n",
                name.c_str(),
                static_cast<unsigned long long>(l.count()), l.meanUs(),
                l.p50Us(), l.p95Us(), l.p99Us(), l.maxUs());
            break;
          }
        }
    }
    return out;
}

std::string
StatRegistry::dumpJson() const
{
    std::string out = "{\n";
    bool first = true;
    for (const auto& [name, e] : entries_) {
        if (!first)
            out += ",\n";
        first = false;
        out += strFormat("  \"%s\": ", name.c_str());
        switch (e.kind) {
          case Kind::Counter:
            out += strFormat(
                "{\"kind\": \"counter\", \"value\": %llu}",
                static_cast<unsigned long long>(
                    static_cast<const Counter*>(e.ptr)->value()));
            break;
          case Kind::Value:
            out += strFormat(
                "{\"kind\": \"value\", \"value\": %llu}",
                static_cast<unsigned long long>(
                    *static_cast<const std::uint64_t*>(e.ptr)));
            break;
          case Kind::Accumulator: {
            const auto& a = *static_cast<const Accumulator*>(e.ptr);
            out += strFormat(
                "{\"kind\": \"accumulator\", \"count\": %llu, "
                "\"mean\": %.6g, \"stddev\": %.6g, \"min\": %.6g, "
                "\"max\": %.6g}",
                static_cast<unsigned long long>(a.count()), a.mean(),
                a.stddev(), a.min(), a.max());
            break;
          }
          case Kind::Distribution: {
            const auto& d = *static_cast<const Distribution*>(e.ptr);
            out += strFormat(
                "{\"kind\": \"distribution\", \"count\": %llu, "
                "\"mean\": %.6g, \"p50\": %.6g, \"p95\": %.6g, "
                "\"p99\": %.6g, \"max\": %.6g}",
                static_cast<unsigned long long>(d.count()), d.mean(),
                d.percentile(50), d.percentile(95), d.percentile(99),
                d.max());
            break;
          }
          case Kind::Latency: {
            const auto& l = *static_cast<const LatencyStat*>(e.ptr);
            out += strFormat(
                "{\"kind\": \"latency\", \"count\": %llu, "
                "\"meanUs\": %.6g, \"p50Us\": %.6g, \"p95Us\": %.6g, "
                "\"p99Us\": %.6g, \"maxUs\": %.6g}",
                static_cast<unsigned long long>(l.count()), l.meanUs(),
                l.p50Us(), l.p95Us(), l.p99Us(), l.maxUs());
            break;
          }
        }
    }
    out += "\n}\n";
    return out;
}

bool
StatRegistry::writeFile(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write stats dump to '%s'", path.c_str());
        return false;
    }
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    const std::string body = json ? dumpJson() : dumpText();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

// --------------------------------------------------------------- StatGroup

StatGroup::StatGroup(StatRegistry& r, std::string prefix)
    : reg_(&r), prefix_(std::move(prefix))
{}

StatGroup::~StatGroup()
{
    clear();
}

StatGroup::StatGroup(StatGroup&& o) noexcept
    : reg_(o.reg_), prefix_(std::move(o.prefix_)),
      names_(std::move(o.names_))
{
    o.reg_ = nullptr;
    o.names_.clear();
}

StatGroup&
StatGroup::operator=(StatGroup&& o) noexcept
{
    if (this != &o) {
        clear();
        reg_ = o.reg_;
        prefix_ = std::move(o.prefix_);
        names_ = std::move(o.names_);
        o.reg_ = nullptr;
        o.names_.clear();
    }
    return *this;
}

void
StatGroup::attach(StatRegistry& r, std::string prefix)
{
    clear();
    reg_ = &r;
    prefix_ = std::move(prefix);
}

std::string
StatGroup::fullName(const std::string& leaf) const
{
    return prefix_.empty() ? leaf : prefix_ + "." + leaf;
}

void
StatGroup::add(const std::string& leaf, const Counter& c)
{
    if (!reg_)
        return;
    names_.push_back(fullName(leaf));
    reg_->add(names_.back(), c);
}

void
StatGroup::add(const std::string& leaf, const Accumulator& a)
{
    if (!reg_)
        return;
    names_.push_back(fullName(leaf));
    reg_->add(names_.back(), a);
}

void
StatGroup::add(const std::string& leaf, const Distribution& d)
{
    if (!reg_)
        return;
    names_.push_back(fullName(leaf));
    reg_->add(names_.back(), d);
}

void
StatGroup::add(const std::string& leaf, const LatencyStat& l)
{
    if (!reg_)
        return;
    names_.push_back(fullName(leaf));
    reg_->add(names_.back(), l);
}

void
StatGroup::addValue(const std::string& leaf, const std::uint64_t& v)
{
    if (!reg_)
        return;
    names_.push_back(fullName(leaf));
    reg_->addValue(names_.back(), v);
}

void
StatGroup::clear()
{
    if (reg_) {
        for (const std::string& n : names_)
            reg_->remove(n);
    }
    names_.clear();
}

} // namespace cg::sim
