#include "sim/trace.hh"

#include <atomic>
#include <cstdio>
#include <set>
#include <utility>

#include "sim/logging.hh"

namespace cg::sim {

// ----------------------------------------------------------------- Tracer

void
Tracer::enable(std::size_t capacity)
{
    CG_ASSERT(capacity > 0, "tracer needs a non-empty ring");
    ring_.assign(capacity, Event{});
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    enabled_ = true;
}

void
Tracer::push(Event e)
{
    e.ts = queue_.now();
    if (count_ == ring_.size())
        ++dropped_; // overwriting the oldest event
    else
        ++count_;
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
}

void
Tracer::begin(const char* name, int pid, int tid)
{
    if (!enabled_)
        return;
    Event e;
    e.name = name;
    e.phase = 'B';
    e.pid = pid;
    e.tid = tid;
    push(e);
}

void
Tracer::end(const char* name, int pid, int tid)
{
    if (!enabled_)
        return;
    Event e;
    e.name = name;
    e.phase = 'E';
    e.pid = pid;
    e.tid = tid;
    push(e);
}

void
Tracer::end(const char* name, int pid, int tid, const char* arg_name,
            const char* arg_value)
{
    if (!enabled_)
        return;
    Event e;
    e.name = name;
    e.phase = 'E';
    e.pid = pid;
    e.tid = tid;
    e.argName = arg_name;
    e.argStr = arg_value;
    push(e);
}

void
Tracer::instant(const char* name, int pid, int tid)
{
    if (!enabled_)
        return;
    Event e;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    push(e);
}

void
Tracer::instant(const char* name, int pid, int tid,
                const char* arg_name, std::uint64_t arg_value)
{
    if (!enabled_)
        return;
    Event e;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.argName = arg_name;
    e.argValue = arg_value;
    push(e);
}

void
Tracer::instant(const char* name, int pid, int tid,
                const char* arg_name, const char* arg_value)
{
    if (!enabled_)
        return;
    Event e;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.argName = arg_name;
    e.argStr = arg_value;
    push(e);
}

std::vector<Tracer::Event>
Tracer::events() const
{
    std::vector<Event> out;
    out.reserve(count_);
    if (count_ == 0)
        return out;
    // Oldest event: head_ when the ring has wrapped, 0 otherwise.
    const std::size_t start =
        count_ == ring_.size() ? head_ : (head_ + ring_.size() - count_)
                                             % ring_.size();
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

namespace {

/** Minimal JSON string escaping (the names are literals, but be safe). */
std::string
jsonEscape(const char* s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out.push_back('\\');
        out.push_back(*s);
    }
    return out;
}

} // namespace

std::string
Tracer::exportJson() const
{
    const std::vector<Event> evs = events();
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    const auto append = [&](const std::string& s) {
        if (!first)
            out += ",\n";
        first = false;
        out += s;
    };

    // Metadata: name the two process tracks and every thread track
    // that appears, so viewers label rows "core 3" / "domain 2".
    append(strFormat("{\"name\": \"process_name\", \"ph\": \"M\", "
                     "\"pid\": %d, \"tid\": 0, \"args\": {\"name\": "
                     "\"cores\"}}",
                     coresPid));
    append(strFormat("{\"name\": \"process_name\", \"ph\": \"M\", "
                     "\"pid\": %d, \"tid\": 0, \"args\": {\"name\": "
                     "\"vm-domains\"}}",
                     domainsPid));
    std::set<std::pair<std::int32_t, std::int32_t>> tracks;
    for (const Event& e : evs)
        tracks.insert({e.pid, e.tid});
    for (const auto& [pid, tid] : tracks) {
        append(strFormat(
            "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
            "\"tid\": %d, \"args\": {\"name\": \"%s %d\"}}",
            pid, tid, pid == coresPid ? "core" : "domain", tid));
    }

    for (const Event& e : evs) {
        // trace_event timestamps are microseconds; ticks are ps.
        std::string line = strFormat(
            "{\"name\": \"%s\", \"ph\": \"%c\", \"ts\": %.6f, "
            "\"pid\": %d, \"tid\": %d",
            jsonEscape(e.name).c_str(), e.phase,
            static_cast<double>(e.ts) / 1e6, e.pid, e.tid);
        if (e.phase == 'i')
            line += ", \"s\": \"t\""; // instant scope: thread
        if (e.argName) {
            if (e.argStr) {
                line += strFormat(", \"args\": {\"%s\": \"%s\"}",
                                  jsonEscape(e.argName).c_str(),
                                  jsonEscape(e.argStr).c_str());
            } else {
                line += strFormat(
                    ", \"args\": {\"%s\": %llu}",
                    jsonEscape(e.argName).c_str(),
                    static_cast<unsigned long long>(e.argValue));
            }
        }
        line += "}";
        append(line);
    }
    out += strFormat("\n], \"displayTimeUnit\": \"ns\", "
                     "\"droppedEvents\": %llu}\n",
                     static_cast<unsigned long long>(dropped_));
    return out;
}

bool
Tracer::writeFile(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write trace to '%s'", path.c_str());
        return false;
    }
    const std::string body = exportJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

// -------------------------------------------------- ObservabilityRequest

namespace {

std::string g_statsPath;
std::string g_tracePath;
bool g_requested = false;
std::atomic<bool> g_claimed{false};

} // namespace

void
ObservabilityRequest::configure(std::string stats_path,
                                std::string trace_path)
{
    g_statsPath = std::move(stats_path);
    g_tracePath = std::move(trace_path);
    g_requested = !g_statsPath.empty() || !g_tracePath.empty();
    g_claimed.store(false);
}

bool
ObservabilityRequest::requested()
{
    return g_requested;
}

bool
ObservabilityRequest::claim()
{
    if (!g_requested)
        return false;
    bool expected = false;
    return g_claimed.compare_exchange_strong(expected, true);
}

void
ObservabilityRequest::reset()
{
    g_statsPath.clear();
    g_tracePath.clear();
    g_requested = false;
    g_claimed.store(false);
}

const std::string&
ObservabilityRequest::statsPath()
{
    return g_statsPath;
}

const std::string&
ObservabilityRequest::tracePath()
{
    return g_tracePath;
}

} // namespace cg::sim
