#include "sim/fault.hh"

#include <cstdlib>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cg::sim {

namespace {

constexpr const char* siteNames[numFaultSites] = {
    "ipi-drop",
    "ipi-delay",
    "doorbell-lost",
    "syncrpc-stall",
    "monitor-hang",
    "hotplug-offline-fail",
    "hotplug-online-fail",
    "rmi-transient-error",
    "scrub-skip",
    "virtio-lost-kick",
    "migration-abort",
    "rtt-copy-stall",
};

} // namespace

std::string
faultSiteListText()
{
    std::string out;
    for (int i = 0; i < numFaultSites; ++i) {
        out += "  ";
        out += siteNames[i];
        out += '\n';
    }
    return out;
}

const char*
faultSiteName(FaultSite s)
{
    const int i = static_cast<int>(s);
    CG_ASSERT(i >= 0 && i < numFaultSites, "bad fault site %d", i);
    return siteNames[i];
}

std::optional<FaultSite>
faultSiteFromName(const std::string& name)
{
    for (int i = 0; i < numFaultSites; ++i) {
        if (name == siteNames[i])
            return static_cast<FaultSite>(i);
    }
    return std::nullopt;
}

void
FaultPlan::arm(std::uint64_t seed)
{
    armed_ = true;
    rng_.reseed(seed);
    specs_.clear();
    occ_.fill(0);
    lastInjectedAt_.fill(0);
}

void
FaultPlan::arm(std::uint64_t seed, const std::vector<FaultSpec>& specs)
{
    arm(seed);
    for (const FaultSpec& s : specs)
        add(s);
}

void
FaultPlan::add(const FaultSpec& spec)
{
    CG_ASSERT(armed_, "adding a fault spec to a disarmed plan");
    if (spec.probability < 0.0 || spec.probability > 1.0)
        fatal("fault spec probability %g out of [0,1]", spec.probability);
    if (spec.windowEnd < spec.windowStart)
        fatal("fault spec window ends before it starts");
    specs_.push_back(ArmedSpec{spec, 0});
}

std::optional<Tick>
FaultPlan::query(FaultSite site)
{
    if (!armed_)
        return std::nullopt;
    const auto i = static_cast<size_t>(site);
    const std::uint64_t occ = ++occ_[i];
    const Tick now = queue_.now();
    for (ArmedSpec& as : specs_) {
        const FaultSpec& s = as.spec;
        if (s.site != site)
            continue;
        if (s.maxInjections != 0 && as.fired >= s.maxInjections)
            continue;
        if (now < s.windowStart || now > s.windowEnd)
            continue;
        if (s.nth != 0 && occ != s.nth)
            continue;
        // Draw only once every deterministic predicate already holds,
        // so the number of draws (and thus the stream position) is a
        // pure function of the simulated event sequence.
        if (s.probability < 1.0 && !rng_.chance(s.probability))
            continue;
        ++as.fired;
        injected_[i].inc();
        lastInjectedAt_[i] = now;
        if (tracer_) {
            tracer_->instant("fault-inject", Tracer::domainsPid, 0,
                             "site", faultSiteName(site));
        }
        return s.param;
    }
    return std::nullopt;
}

void
FaultPlan::noteDetected(FaultSite site)
{
    const auto i = static_cast<size_t>(site);
    if (injected_[i].value() == 0)
        return; // spurious (e.g. a watchdog pass with nothing lost)
    detected_[i].sample(queue_.now() - lastInjectedAt_[i]);
    if (tracer_) {
        tracer_->instant("fault-detected", Tracer::domainsPid, 0,
                         "site", faultSiteName(site));
    }
}

void
FaultPlan::noteRecovered(FaultSite site)
{
    const auto i = static_cast<size_t>(site);
    if (injected_[i].value() == 0)
        return;
    recovered_[i].sample(queue_.now() - lastInjectedAt_[i]);
    if (tracer_) {
        tracer_->instant("fault-recovered", Tracer::domainsPid, 0,
                         "site", faultSiteName(site));
    }
}

std::uint64_t
FaultPlan::injectedTotal() const
{
    std::uint64_t n = 0;
    for (const Counter& c : injected_)
        n += c.value();
    return n;
}

void
FaultPlan::registerStats(StatRegistry& reg)
{
    statGroup_.attach(reg, "faults");
    for (int i = 0; i < numFaultSites; ++i) {
        const std::string site = siteNames[i];
        statGroup_.add("injected." + site,
                       injected_[static_cast<size_t>(i)]);
        statGroup_.add("detected." + site,
                       detected_[static_cast<size_t>(i)]);
        statGroup_.add("recovered." + site,
                       recovered_[static_cast<size_t>(i)]);
    }
}

// ------------------------------------------------------------ plan text

namespace {

/** "50us" -> ticks; bare numbers are nanoseconds. */
Tick
parseTime(const std::string& text)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &pos);
    } catch (const std::exception&) {
        fatal("fault plan: bad time '%s'", text.c_str());
    }
    if (v < 0.0)
        fatal("fault plan: negative time '%s'", text.c_str());
    const std::string unit = text.substr(pos);
    Tick scale = nsec;
    if (unit == "ns" || unit.empty())
        scale = nsec;
    else if (unit == "us")
        scale = usec;
    else if (unit == "ms")
        scale = msec;
    else if (unit == "s")
        scale = sec;
    else
        fatal("fault plan: bad time unit '%s'", unit.c_str());
    return static_cast<Tick>(v * static_cast<double>(scale));
}

std::uint64_t
parseCount(const std::string& text)
{
    try {
        return std::stoull(text);
    } catch (const std::exception&) {
        fatal("fault plan: bad count '%s'", text.c_str());
    }
}

std::vector<std::string>
split(const std::string& text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
}

} // namespace

std::vector<FaultSpec>
FaultPlan::parse(const std::string& text)
{
    std::vector<FaultSpec> out;
    for (const std::string& clause : split(text, ';')) {
        if (clause.empty())
            continue;
        const std::vector<std::string> parts = split(clause, ':');
        FaultSpec spec;
        const auto site = faultSiteFromName(parts[0]);
        if (!site) {
            fatal("fault plan: unknown site '%s'; known sites:\n%s",
                  parts[0].c_str(), faultSiteListText().c_str());
        }
        spec.site = *site;
        for (std::size_t i = 1; i < parts.size(); ++i) {
            const std::size_t eq = parts[i].find('=');
            if (eq == std::string::npos) {
                fatal("fault plan: expected key=value, got '%s'",
                      parts[i].c_str());
            }
            const std::string key = parts[i].substr(0, eq);
            const std::string val = parts[i].substr(eq + 1);
            if (key == "nth") {
                spec.nth = parseCount(val);
            } else if (key == "p") {
                try {
                    spec.probability = std::stod(val);
                } catch (const std::exception&) {
                    fatal("fault plan: bad probability '%s'",
                          val.c_str());
                }
            } else if (key == "from") {
                spec.windowStart = parseTime(val);
            } else if (key == "until") {
                spec.windowEnd = parseTime(val);
            } else if (key == "max") {
                spec.maxInjections = parseCount(val);
            } else if (key == "param") {
                spec.param = parseTime(val);
            } else {
                fatal("fault plan: unknown key '%s'", key.c_str());
            }
        }
        out.push_back(spec);
    }
    return out;
}

// ---------------------------------------------------- FaultPlanRequest

namespace {

std::string g_planText;
std::uint64_t g_planSeed = 0;
bool g_planRequested = false;

} // namespace

void
FaultPlanRequest::configure(std::string plan_text, std::uint64_t seed)
{
    g_planText = std::move(plan_text);
    g_planSeed = seed;
    g_planRequested = !g_planText.empty();
}

bool
FaultPlanRequest::requested()
{
    return g_planRequested;
}

void
FaultPlanRequest::reset()
{
    g_planText.clear();
    g_planSeed = 0;
    g_planRequested = false;
}

const std::string&
FaultPlanRequest::planText()
{
    return g_planText;
}

std::uint64_t
FaultPlanRequest::seed()
{
    return g_planSeed;
}

} // namespace cg::sim
