/**
 * @file
 * cg::check — a dynamic information-flow checker for domain isolation.
 *
 * The paper's core claim (§2.4, §4) is an *invariant*, not a data
 * point: after core gapping, no per-core microarchitectural structure
 * ever holds realm-domain residue observable by the untrusted host
 * without an intervening scrub. The attack suite samples that claim at
 * a few probe points; this checker proves it continuously, the way
 * KCSAN/lockdep turned the kernel's implicit concurrency rules into
 * machine-checked ones.
 *
 * Every access to a tagged structure — touch, probe, flush — and every
 * control-plane transition (REC enter/exit, world switch back to
 * normal, hotplug handoff/reclaim) becomes an event
 * (structure, core, domain, tick, kind). The checker maintains
 * per-(core, structure) residency state (which realm domains hold
 * entries, when they last touched, when the structure was last
 * scrubbed) and flags three kinds of **leak edges**:
 *
 *  - probe-residue:   a probe observes realm-domain residue on a
 *                     per-core structure from a different domain with
 *                     no flushDomain/flushAll since the realm's last
 *                     touch;
 *  - dirty-enter:     a realm is dispatched onto a core whose per-core
 *                     structures still hold a *different* realm's
 *                     residue (no scrub between tenants);
 *  - dirty-handback:  a core is returned to the normal world (teardown,
 *                     terminate, rebind, start rollback, hotplug
 *                     online) while a per-core structure still holds
 *                     realm entries.
 *
 * Violations become structured LeakEdge reports (structure, core, the
 * offending domains, the residue's touch tick and the observation
 * tick, and the number of intervening events), counters in the
 * StatRegistry ("check.leakEdges.*"), and "leak-edge" tracepoints.
 * With Config::abortOnLeak the first edge panics, turning any test or
 * bench run into a hard isolation gate.
 *
 * Determinism contract (same as the Tracer and a disarmed FaultPlan):
 * the checker schedules no events, consumes no randomness, and never
 * mutates the structures it watches. An unbound structure pays a
 * single branch per choke point, so builds and runs without `--check`
 * are byte-identical to a tree without this subsystem.
 */

#ifndef CG_CHECK_CHECKER_HH
#define CG_CHECK_CHECKER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace cg::sim {
class EventQueue;
class Tracer;
}

namespace cg::check {

using sim::CoreId;
using sim::DomainId;
using sim::Tick;

/** The three ways "sharing is leaking" can manifest (see file hdr). */
enum class LeakKind : int {
    ProbeResidue,
    DirtyEnter,
    DirtyHandback,
};

constexpr int numLeakKinds = 3;

/** Stable kebab-case kind name ("probe-residue", ...). */
const char* leakKindName(LeakKind k);

/** One detected isolation violation. */
struct LeakEdge {
    LeakKind kind = LeakKind::ProbeResidue;
    /** Structure name as registered ("core3.l1d", "llc"). */
    std::string structure;
    CoreId core = sim::invalidCore;
    /** The realm domain whose residue leaks. */
    DomainId victim = sim::invalidDomain;
    /** The domain that can observe it (prober, next tenant, or the
     * host for a dirty handback). */
    DomainId observer = sim::invalidDomain;
    /** When the victim last touched the structure. */
    Tick touchTick = 0;
    /** When the leak became observable (probe / enter / handback). */
    Tick leakTick = 0;
    /** Checker events between the two ticks (the event window). */
    std::uint64_t eventsBetween = 0;
};

/**
 * The per-simulation isolation checker. Construct one, attach it with
 * hw::Machine::attachChecker(), and every tagged structure and
 * control-plane choke point reports through it. One checker per
 * Machine; like the Tracer it is observation-only.
 */
class IsolationChecker
{
  public:
    struct Config {
        /** panic() on the first leak edge instead of recording it. */
        bool abortOnLeak = false;
        /** Stored LeakEdge cap (counters keep exact totals). */
        std::size_t maxStoredEdges = 256;
    };

    explicit IsolationChecker(const sim::EventQueue& queue);
    IsolationChecker(const sim::EventQueue& queue, Config cfg);

    IsolationChecker(const IsolationChecker&) = delete;
    IsolationChecker& operator=(const IsolationChecker&) = delete;

    /** @{ Binding (done by hw::Machine::attachChecker). */
    /** Register one structure; @p core is invalidCore for shared
     * structures (LLC, staging buffer), which never produce edges —
     * they are out of core gapping's scope. @return the structure id
     * the structure passes back in every event. */
    int registerStructure(std::string name, CoreId core);
    /** @} */

    /** @{ Data-path events (from hw::TaggedStructure). */
    /** Domain @p d now holds @p entries entries after a touch. */
    void onTouch(int sid, DomainId d, std::size_t entries);
    /** Eviction drove @p d's share to zero (no scrub happened). */
    void onEvict(int sid, DomainId d);
    /** A probe read @p probed's entry count (@p count observed). */
    void onProbe(int sid, DomainId probed, std::size_t count);
    /** A probe read the foreign-entry aggregate seen by @p prober. */
    void onProbeForeign(int sid, DomainId prober, std::size_t count);
    void onFlushDomain(int sid, DomainId d);
    void onFlushAll(int sid);
    /** @} */

    /** @{ Control-plane events. */
    /** The executing domain on @p core changed (hw::Core occupant). */
    void onOccupant(CoreId core, DomainId d);
    /** A REC of realm domain @p d is dispatched onto @p core. */
    void onRecEnter(CoreId core, DomainId d);
    /** The REC exited back to the monitor (event-window bookkeeping). */
    void onRecExit(CoreId core, DomainId d);
    /** @p core crossed back into the normal world. */
    void onNormalWorldReturn(CoreId core);
    /** Migration handed @p core's source back to the host: the
     * explicit scrub-verification choke point before the world
     * switch (suppresses a duplicate edge at the switch itself). */
    void onMigrationHandback(CoreId core);
    /** Hotplug: the host handed @p core away / reclaimed it. */
    void onHotplug(CoreId core, bool offline);
    /** @} */

    /** @{ Results. */
    /** Stored edges, oldest first (capped at maxStoredEdges). */
    const std::vector<LeakEdge>& edges() const { return edges_; }
    std::uint64_t edgeCount(LeakKind k) const
    {
        return perKind_[static_cast<std::size_t>(k)].value();
    }
    std::uint64_t edgeTotal() const { return total_.value(); }
    std::uint64_t eventCount() const { return events_.value(); }
    /** One line per stored edge, deterministic order. */
    std::string dumpText() const;
    /** @} */

    /**
     * Register "check.events", "check.probes", "check.leakEdges.*" in
     * @p reg. Only armed runs should call this, so unarmed stat dumps
     * stay identical to pre-checker builds.
     */
    void registerStats(sim::StatRegistry& reg);

    /** Emit "leak-edge" tracepoints through @p t (may be null). */
    void setTracer(sim::Tracer* t) { tracer_ = t; }

  private:
    /** Residency of one realm domain in one structure. */
    struct Residue {
        DomainId dom;
        Tick lastTouch;
        std::uint64_t touchSeq;
        /** A dirty-handback edge was already reported for this
         * residue; suppress repeats until the next touch. */
        bool handbackReported;
    };

    struct StructState {
        std::string name;
        CoreId core; ///< invalidCore: shared (never an edge)
        /** Realm domains (>= firstVmDomain) currently holding
         * entries; a handful per structure, linear scan. */
        std::vector<Residue> resident;
    };

    StructState& state(int sid);
    Residue* findResidue(StructState& st, DomainId d);
    void dropResidue(StructState& st, DomainId d);
    DomainId occupantOf(CoreId core) const;
    std::uint64_t bumpEvent();
    void report(LeakKind kind, const StructState& st,
                const Residue& res, DomainId observer);
    /** Flag every realm residue on @p core's structures observable by
     * @p observer as a @p kind edge. */
    void sweepCore(CoreId core, DomainId observer, LeakKind kind);

    const sim::EventQueue& queue_;
    Config cfg_;
    sim::Tracer* tracer_ = nullptr;
    std::vector<StructState> structs_;
    /** Structure ids per core, for the control-plane sweeps. */
    std::vector<std::vector<int>> byCore_;
    /** Last-set occupant per core (hostDomain before anyone runs). */
    std::vector<DomainId> occupants_;
    std::uint64_t seq_ = 0;
    std::vector<LeakEdge> edges_;
    sim::Counter events_;
    sim::Counter probes_;
    sim::Counter total_;
    std::array<sim::Counter, numLeakKinds> perKind_{};
    sim::StatGroup statGroup_;
};

/**
 * Process-global check request, set by the benchmark harness
 * (`--check` / `--check-abort` in bench/common.hh) and applied by
 * every Testbed it constructs. Like FaultPlanRequest there is no
 * claim: each run in a sweep gets its own checker, and because the
 * checker is pure observation the sweep's simulated results are
 * byte-identical with or without it.
 */
class CheckRequest
{
  public:
    static void configure(bool abort_on_leak);

    static bool requested();
    static bool abortOnLeak();

    /** Forget the request (tests). */
    static void reset();
};

} // namespace cg::check

#endif // CG_CHECK_CHECKER_HH
