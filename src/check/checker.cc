#include "check/checker.hh"

#include <atomic>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace cg::check {

const char*
leakKindName(LeakKind k)
{
    switch (k) {
      case LeakKind::ProbeResidue:
        return "probe-residue";
      case LeakKind::DirtyEnter:
        return "dirty-enter";
      case LeakKind::DirtyHandback:
        return "dirty-handback";
    }
    return "?";
}

IsolationChecker::IsolationChecker(const sim::EventQueue& queue)
    : IsolationChecker(queue, Config{})
{
}

IsolationChecker::IsolationChecker(const sim::EventQueue& queue,
                                   Config cfg)
    : queue_(queue), cfg_(cfg)
{
}

int
IsolationChecker::registerStructure(std::string name, CoreId core)
{
    int sid = static_cast<int>(structs_.size());
    structs_.push_back(StructState{std::move(name), core, {}});
    if (core != sim::invalidCore) {
        if (static_cast<std::size_t>(core) >= byCore_.size())
            byCore_.resize(core + 1);
        byCore_[core].push_back(sid);
    }
    return sid;
}

IsolationChecker::StructState&
IsolationChecker::state(int sid)
{
    CG_ASSERT(sid >= 0 && static_cast<std::size_t>(sid) < structs_.size(),
              "bad checker structure id");
    return structs_[sid];
}

IsolationChecker::Residue*
IsolationChecker::findResidue(StructState& st, DomainId d)
{
    for (auto& r : st.resident)
        if (r.dom == d)
            return &r;
    return nullptr;
}

void
IsolationChecker::dropResidue(StructState& st, DomainId d)
{
    for (auto it = st.resident.begin(); it != st.resident.end(); ++it) {
        if (it->dom == d) {
            st.resident.erase(it);
            return;
        }
    }
}

DomainId
IsolationChecker::occupantOf(CoreId core) const
{
    if (core < 0 || static_cast<std::size_t>(core) >= occupants_.size())
        return sim::hostDomain;
    return occupants_[core];
}

std::uint64_t
IsolationChecker::bumpEvent()
{
    events_.inc();
    return seq_++;
}

void
IsolationChecker::report(LeakKind kind, const StructState& st,
                         const Residue& res, DomainId observer)
{
    total_.inc();
    perKind_[static_cast<std::size_t>(kind)].inc();

    LeakEdge e;
    e.kind = kind;
    e.structure = st.name;
    e.core = st.core;
    e.victim = res.dom;
    e.observer = observer;
    e.touchTick = res.lastTouch;
    e.leakTick = queue_.now();
    // seq_ - 1 is the observing event itself; count what lies strictly
    // between it and the victim's touch.
    e.eventsBetween =
        seq_ >= res.touchSeq + 2 ? seq_ - res.touchSeq - 2 : 0;
    if (edges_.size() < cfg_.maxStoredEdges)
        edges_.push_back(e);

    if (tracer_) {
        tracer_->instant("leak-edge", sim::Tracer::coresPid,
                         st.core, leakKindName(kind),
                         static_cast<std::uint64_t>(res.dom));
    }

    if (cfg_.abortOnLeak) {
        sim::panic("isolation leak edge: %s on %s (core %d): victim domain "
              "%d observable by domain %d (touch @%llu, leak @%llu, %llu "
              "events between)",
              leakKindName(kind), st.name.c_str(), int(st.core),
              int(res.dom), int(observer),
              static_cast<unsigned long long>(res.lastTouch),
              static_cast<unsigned long long>(e.leakTick),
              static_cast<unsigned long long>(e.eventsBetween));
    }
}

void
IsolationChecker::sweepCore(CoreId core, DomainId observer, LeakKind kind)
{
    if (core < 0 || static_cast<std::size_t>(core) >= byCore_.size())
        return;
    for (int sid : byCore_[core]) {
        auto& st = structs_[sid];
        for (auto& res : st.resident) {
            if (res.dom == observer)
                continue;
            if (kind == LeakKind::DirtyHandback) {
                if (res.handbackReported)
                    continue;
                res.handbackReported = true;
            }
            report(kind, st, res, observer);
        }
    }
}

void
IsolationChecker::onTouch(int sid, DomainId d, std::size_t entries)
{
    auto& st = state(sid);
    bumpEvent();
    if (d < sim::firstVmDomain)
        return; // host/monitor residue is not confidential
    if (entries == 0) {
        dropResidue(st, d);
        return;
    }
    if (auto* res = findResidue(st, d)) {
        res->lastTouch = queue_.now();
        res->touchSeq = seq_ - 1;
        res->handbackReported = false;
    } else {
        st.resident.push_back(
            Residue{d, queue_.now(), seq_ - 1, false});
    }
}

void
IsolationChecker::onEvict(int sid, DomainId d)
{
    auto& st = state(sid);
    bumpEvent();
    if (d < sim::firstVmDomain)
        return;
    dropResidue(st, d);
}

void
IsolationChecker::onProbe(int sid, DomainId probed, std::size_t count)
{
    auto& st = state(sid);
    bumpEvent();
    probes_.inc();
    if (st.core == sim::invalidCore)
        return; // shared structures are out of core gapping's scope
    if (count == 0 || probed < sim::firstVmDomain)
        return;
    auto* res = findResidue(st, probed);
    if (!res)
        return;
    DomainId observer = occupantOf(st.core);
    if (observer == probed)
        return; // a domain may observe itself
    report(LeakKind::ProbeResidue, st, *res, observer);
}

void
IsolationChecker::onProbeForeign(int sid, DomainId prober,
                                 std::size_t count)
{
    auto& st = state(sid);
    bumpEvent();
    probes_.inc();
    if (st.core == sim::invalidCore || count == 0)
        return;
    // The prober saw `count` foreign entries; every resident realm
    // domain other than the prober is an observable victim.
    for (auto& res : st.resident) {
        if (res.dom == prober)
            continue;
        report(LeakKind::ProbeResidue, st, res, prober);
    }
}

void
IsolationChecker::onFlushDomain(int sid, DomainId d)
{
    auto& st = state(sid);
    bumpEvent();
    dropResidue(st, d);
}

void
IsolationChecker::onFlushAll(int sid)
{
    auto& st = state(sid);
    bumpEvent();
    st.resident.clear();
}

void
IsolationChecker::onOccupant(CoreId core, DomainId d)
{
    if (core < 0)
        return;
    bumpEvent();
    if (static_cast<std::size_t>(core) >= occupants_.size())
        occupants_.resize(core + 1, sim::hostDomain);
    occupants_[core] = d;
}

void
IsolationChecker::onRecEnter(CoreId core, DomainId d)
{
    bumpEvent();
    sweepCore(core, d, LeakKind::DirtyEnter);
}

void
IsolationChecker::onRecExit(CoreId core, DomainId d)
{
    (void)core;
    (void)d;
    bumpEvent();
}

void
IsolationChecker::onNormalWorldReturn(CoreId core)
{
    bumpEvent();
    sweepCore(core, sim::hostDomain, LeakKind::DirtyHandback);
}

void
IsolationChecker::onMigrationHandback(CoreId core)
{
    bumpEvent();
    sweepCore(core, sim::hostDomain, LeakKind::DirtyHandback);
}

void
IsolationChecker::onHotplug(CoreId core, bool offline)
{
    bumpEvent();
    if (!offline) {
        // The host reclaimed the core: anything confidential still
        // resident is observable from the normal world.
        sweepCore(core, sim::hostDomain, LeakKind::DirtyHandback);
    }
}

std::string
IsolationChecker::dumpText() const
{
    std::ostringstream os;
    os << "leak edges: " << total_.value() << " ("
       << edges_.size() << " stored, " << events_.value()
       << " events observed)\n";
    for (const auto& e : edges_) {
        os << "  " << leakKindName(e.kind) << " " << e.structure
           << " core=" << e.core << " victim=" << e.victim
           << " observer=" << e.observer << " touch@" << e.touchTick
           << " leak@" << e.leakTick << " window=" << e.eventsBetween
           << "\n";
    }
    return os.str();
}

void
IsolationChecker::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "check");
    statGroup_.add("events", events_);
    statGroup_.add("probes", probes_);
    statGroup_.add("leakEdges.total", total_);
    for (int k = 0; k < numLeakKinds; ++k) {
        statGroup_.add(std::string("leakEdges.") +
                           leakKindName(static_cast<LeakKind>(k)),
                       perKind_[k]);
    }
}

namespace {

struct CheckRequestState {
    std::atomic<bool> requested{false};
    std::atomic<bool> abortOnLeak{false};
};

CheckRequestState&
checkRequestState()
{
    static CheckRequestState s;
    return s;
}

} // namespace

void
CheckRequest::configure(bool abort_on_leak)
{
    auto& s = checkRequestState();
    s.requested.store(true, std::memory_order_relaxed);
    s.abortOnLeak.store(abort_on_leak, std::memory_order_relaxed);
}

bool
CheckRequest::requested()
{
    return checkRequestState().requested.load(std::memory_order_relaxed);
}

bool
CheckRequest::abortOnLeak()
{
    return checkRequestState().abortOnLeak.load(
        std::memory_order_relaxed);
}

void
CheckRequest::reset()
{
    auto& s = checkRequestState();
    s.requested.store(false, std::memory_order_relaxed);
    s.abortOnLeak.store(false, std::memory_order_relaxed);
}

} // namespace cg::check
