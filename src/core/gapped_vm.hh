/**
 * @file
 * The core-gapped confidential VM runner — the paper's primary
 * contribution assembled: dedicated cores taken from the host via
 * hotplug and handed to the security monitor, vCPU run calls as
 * asynchronous cross-core RPCs with IPI-notified wake-up (fig. 4),
 * short RMM calls as busy-wait synchronous RPCs, and a kick path that
 * targets the REC's bound core.
 *
 * The Quarantine-style ablation (busyWaitRun) replaces the blocking
 * run call with yield-polling, reproducing the scalability collapse of
 * fig. 6's "busy waiting" lines.
 */

#ifndef CG_CORE_GAPPED_VM_HH
#define CG_CORE_GAPPED_VM_HH

#include <map>
#include <memory>
#include <vector>

#include "core/doorbell.hh"
#include "core/rpc.hh"
#include "vmm/kvm.hh"

namespace cg::core {

class CorePlanner;

struct GappedVmConfig {
    /** Dedicated guest cores, one per vCPU (from the CorePlanner). */
    std::vector<sim::CoreId> guestCores;
    /** Host cores for the vCPU threads, wake-up thread, and VMM. */
    host::CpuMask hostCores = host::CpuMask::single(0);
    /** Quarantine-style yield-polling instead of blocking run calls. */
    bool busyWaitRun = false;
    /**
     * Adaptive spin-then-sleep in the wake-up thread: before blocking
     * on the doorbell, spin up to this long polling for it. The spin
     * budget doubles after a hit (the doorbell arrived while spinning
     * — the workload is in a request burst, stay hot) and halves
     * after a miss, so idle VMs decay back to pure blocking. 0
     * disables the spin entirely; runs with 0 are byte-identical to
     * builds without this knob.
     */
    sim::Tick wakeSpinMax = 0;
    /**
     * The planner that reserved guestCores, if any. The runner then
     * owns the reservations' release: exactly once, on teardown or on
     * a failed start, with cores lost to hotplug failures quarantined
     * (kept reserved) so they are never handed out again (I7).
     */
    CorePlanner* planner = nullptr;
    /**
     * Scrub verification at teardown/migration handback: audit the
     * core's tagged structures after the scrub point and re-flush if
     * residue remains (detect-and-repair for scrub-skip injections).
     * Default off so the checker's must-fire tests still observe a
     * skipped scrub as a dirty-handback leak edge; long fault-armed
     * soaks turn it on (see rmm::RmmConfig::verifyScrubs).
     */
    bool verifyScrubs = false;
};

class GappedVm
{
  public:
    /**
     * @p kvm must be a SharedCoreCvm-mode KvmVm with a realm attached
     * via createRealmFor(); this runner replaces its vCPU threads and
     * its RMI transport with the cross-core machinery.
     */
    GappedVm(vmm::KvmVm& kvm, ExitDoorbell& doorbell,
             GappedVmConfig cfg);
    ~GappedVm();

    /**
     * Bring the CVM up: offline the dedicated cores (hotplug), hand
     * them to the monitor, and start the host-side threads. Await from
     * a process not running on the dedicated cores.
     * @return false if a dedicated core could not be offlined (after
     * one retry): every core taken so far is handed back, planner
     * reservations are released, and the VM is not running.
     */
    sim::Proc<bool> start();

    /**
     * After guest shutdown: destroy RECs (releasing the core binding),
     * scrub the dedicated cores of guest residue, stop monitor loops,
     * and hotplug the cores back online.
     */
    sim::Proc<void> teardown();

    /**
     * Host-initiated termination of a possibly-running CVM (the
     * "terminated by the host" case of section 4.2): force every vCPU
     * out of guest execution, stop its run loop, then tear down. The
     * guest gets no say; its state is scrubbed before the cores return
     * to the host.
     */
    sim::Proc<void> terminate();

    vmm::KvmVm& kvm() { return kvm_; }
    sim::Gate& shutdownGate() { return kvm_.shutdownGate(); }
    SyncRpcQueue& syncRpc() { return syncRpc_; }

    /**
     * Move a vCPU to a fresh dedicated core at runtime (the paper's
     * deferred coarse-timescale rebinding, section 3): park the vCPU
     * thread after its next exit, retire the old monitor loop,
     * dedicate @p new_core via hotplug, have the monitor rebind (and
     * scrub the old core), then resume on the new placement and hand
     * the old core back to the host.
     * @return false if the monitor refused the rebind.
     */
    sim::Proc<bool> rebindVcpu(int idx, sim::CoreId new_core);

    /** Current dedicated core of a vCPU. */
    sim::CoreId coreOf(int idx) const
    {
        return cfg_.guestCores.at(static_cast<size_t>(idx));
    }

    /**
     * Direct interrupt delivery (section 5.3's anticipated extension):
     * route physical interrupt @p spi to @p vcpu_idx's dedicated core
     * and have the monitor inject @p virq there without any VM exit.
     * Routes follow the vCPU across rebinds.
     */
    void mapDirectIrq(hw::IntId spi, hw::IntId virq, int vcpu_idx);

    /** Virtual interrupts delivered directly by the monitor (stat). */
    std::uint64_t directInjections() const
    {
        return directInjections_.value();
    }

    /** Register this runner's stats under "gapped.<vm>." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

    /**
     * Host-initiated suspend (section 7 lists it among the VM
     * lifecycle operations core gapping keeps, unlike Core Slicing):
     * every vCPU is forced out of guest execution and its run loop is
     * parked. The cores stay dedicated; guest state stays in place.
     */
    sim::Proc<void> suspend();

    /**
     * suspend() with a bounded wait per vCPU: if a run loop fails to
     * park within @p deadline (a hung monitor never publishes the
     * exit), every park is rolled back and false is returned — the VM
     * keeps running and the caller escalates (terminate()). Used by
     * the migration controller, which must never wedge on a fault.
     */
    sim::Proc<bool> trySuspend(sim::Tick deadline);

    /** Resume a suspended VM: run loops repost their run calls. */
    void resume();

    bool suspended() const { return suspended_; }

    const GappedVmConfig& config() const { return cfg_; }

    /** Rebind retries after a rate-limit refusal (satellite: refused
     * rebinds are backed off and retried, not dropped). */
    std::uint64_t rebindRetries() const { return rebindRetries_.value(); }

    /** Monitor-side run-to-run latency (exit to next run call). */
    sim::LatencyStat& runToRun() { return runToRun_; }

    /** Host-side async run-call round trip (post to response taken). */
    sim::LatencyStat& runCallRtt() { return runCallRtt_; }

    /** Response visible to vCPU thread woken (the wake-up thread's
     * contribution to the serving-path tail). */
    sim::LatencyStat& wakeLatency() { return wakeLatency_; }

    /** @{ Adaptive-spin outcome counts (wakeSpinMax > 0 only). */
    std::uint64_t wakeSpinHits() const { return wakeSpinHits_.value(); }
    std::uint64_t wakeSpinSleeps() const
    {
        return wakeSpinSleeps_.value();
    }
    /** @} */

    /** Hung monitor loops reclaimed by terminate(). */
    std::uint64_t hangReclaims() const { return hangReclaims_.value(); }

    /** Cores lost to double hotplug failures (quarantined). */
    std::uint64_t coresLost() const { return coresLost_.value(); }

    /** Skipped scrubs caught and redone by verifyScrubs audits. */
    std::uint64_t scrubRepairs() const { return scrubRepairs_.value(); }

    /** @{ Recovery policy (effective only with faults armed). */
    /** Wake-up thread watchdog sweep period (lost-doorbell rescue). */
    static constexpr sim::Tick watchdogPeriod = 250 * sim::usec;
    /** terminate() wait per vCPU before declaring the monitor hung. */
    static constexpr sim::Tick parkDeadline = 3 * sim::msec;
    /** Rate-limited rebinds are retried at most this many times. */
    static constexpr int maxRebindRetries = 3;
    /** @} */

  private:
    /** Drives migrations through this runner's internals (park /
     * monitor-retire / respawn); see core/migration.hh. */
    friend class MigrationController;
    struct Park {
        bool requested = false;
        bool parked = false;
        sim::Notify parkedNotify;
        sim::Gate resume;
    };

    sim::Proc<void> monitorCoreLoop(int idx, sim::CoreId core,
                                    std::uint64_t gen);
    sim::Proc<void> vcpuThreadBody(int idx);
    sim::Proc<void> wakeupThreadBody();

    /** Online a reclaimed core, retrying once; false = core lost. */
    sim::Proc<bool> onlineWithRetry(sim::CoreId core);

    /** Release planner reservations exactly once (lost cores stay). */
    void releasePlannerReservations();

    bool isLostCore(sim::CoreId c) const;

    vmm::KvmVm& kvm_;
    rmm::Rmm& rmm_;
    int realm_;
    ExitDoorbell& doorbell_;
    GappedVmConfig cfg_;
    sim::Notify monitorWork_;
    SyncRpcQueue syncRpc_;
    SyncRpcTransport transport_;
    std::vector<std::unique_ptr<RunSlot>> slots_;
    std::vector<host::Thread*> vcpuThreads_;
    host::Thread* wakeupThread_ = nullptr;
    sim::Notify wakeupNotify_;
    bool doorbellPending_ = false;
    std::uint64_t doorbellSub_ = 0;
    std::vector<sim::Process*> monitorProcs_;
    std::vector<std::uint64_t> monGen_;
    std::vector<std::unique_ptr<Park>> parks_;
    bool stopMonitors_ = false;
    bool started_ = false;
    sim::CoreId doorbellTarget_ = 0;
    sim::LatencyStat runToRun_;
    sim::LatencyStat runCallRtt_;
    sim::LatencyStat wakeLatency_;
    sim::Counter wakeSpinHits_;
    sim::Counter wakeSpinSleeps_;
    /** Current adaptive spin budget (0 until first doorbell wait). */
    sim::Tick wakeSpinBudget_ = 0;
    /** spi -> (vcpu index, virq) for direct delivery. */
    std::map<hw::IntId, std::pair<int, hw::IntId>> directIrqs_;
    sim::Counter directInjections_;
    sim::StatGroup statGroup_;
    bool suspended_ = false;
    /** A hung monitor loop blocks here forever (fault injection). */
    sim::Notify hangNotify_;
    /** Armed watchdog timer of the wake-up thread (see destructor). */
    sim::EventId watchdogEvent_ = sim::invalidEventId;
    /** A rering went out; the next delivery confirms the recovery. */
    bool reringOutstanding_ = false;
    bool plannerReleased_ = false;
    std::vector<sim::CoreId> lostCores_;
    sim::Counter hangReclaims_;
    sim::Counter coresLost_;
    sim::Counter hotplugRetries_;
    sim::Counter rebindRetries_;
    /** Skipped scrubs caught and re-flushed (verifyScrubs). */
    sim::Counter scrubRepairs_;
};

} // namespace cg::core

#endif // CG_CORE_GAPPED_VM_HH
