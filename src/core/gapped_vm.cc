#include "core/gapped_vm.hh"

#include <algorithm>

#include "core/planner.hh"
#include "sim/simulation.hh"

namespace cg::core {

using guest::VCpu;
using rmm::ExitReason;
using sim::Compute;
using sim::Tick;

namespace {

/** Any SGI works as a kick: the monitor exits the REC on all of them. */
constexpr hw::IntId kickSgi = 15;

} // namespace

GappedVm::GappedVm(vmm::KvmVm& kvm, ExitDoorbell& doorbell,
                   GappedVmConfig cfg)
    : kvm_(kvm),
      rmm_(*kvm.rmm()),
      realm_(kvm.realmId()),
      doorbell_(doorbell),
      cfg_(std::move(cfg)),
      syncRpc_(kvm.kernel().machine(), monitorWork_),
      transport_(syncRpc_)
{
    if (!kvm_.rmm() || realm_ < 0)
        sim::fatal("GappedVm needs a realm-attached KvmVm");
    const int n = kvm_.guestVm().numVcpus();
    if (static_cast<int>(cfg_.guestCores.size()) != n) {
        sim::fatal("GappedVm: %d dedicated cores for %d vCPUs",
                   static_cast<int>(cfg_.guestCores.size()), n);
    }
    if (cfg_.hostCores.empty())
        sim::fatal("GappedVm needs at least one host core");
    syncRpc_.setTraceDomain(kvm_.guestVm().domain());
    for (int i = 0; i < n; ++i) {
        slots_.push_back(std::make_unique<RunSlot>(
            kvm_.kernel().machine(), monitorWork_));
        parks_.push_back(std::make_unique<Park>());
        monGen_.push_back(0);
    }
    monitorProcs_.resize(static_cast<size_t>(n), nullptr);
    // Short RMI calls now travel by cross-core RPC.
    kvm_.attachRealm(rmm_, realm_, &transport_);
    // Host-initiated exits target the REC's dedicated core directly.
    kvm_.setKickOverride([this](int idx) {
        kvm_.kernel().machine().gic().sendSgi(
            cfg_.guestCores[static_cast<size_t>(idx)], kickSgi);
    });
    for (sim::CoreId c = 0; c < 64; ++c) {
        if (cfg_.hostCores.test(c)) {
            doorbellTarget_ = c;
            break;
        }
    }
}

GappedVm::~GappedVm()
{
    kvm_.kernel().machine().sim().queue().cancel(watchdogEvent_);
    stopMonitors_ = true;
    monitorWork_.notifyAll();
    if (doorbellSub_ != 0)
        doorbell_.unsubscribe(doorbellTarget_, doorbellSub_);
    if (wakeupThread_ && !wakeupThread_->done())
        wakeupThread_->process().kill();
    for (host::Thread* t : vcpuThreads_) {
        if (t && !t->done())
            t->process().kill();
    }
    for (sim::Process* p : monitorProcs_) {
        if (p)
            p->kill();
    }
}

void
GappedVm::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "gapped." + kvm_.guestVm().name());
    statGroup_.add("runToRun", runToRun_);
    statGroup_.add("runCallRtt", runCallRtt_);
    statGroup_.add("wakeLatency", wakeLatency_);
    statGroup_.add("wakeSpinHits", wakeSpinHits_);
    statGroup_.add("wakeSpinSleeps", wakeSpinSleeps_);
    statGroup_.add("directInjections", directInjections_);
    statGroup_.add("syncRpcServed", syncRpc_.servedStat());
    statGroup_.add("rpcTimeouts", syncRpc_.timeoutStat());
    statGroup_.add("rpcRepokes", syncRpc_.repokeStat());
    statGroup_.add("hangReclaims", hangReclaims_);
    statGroup_.add("coresLost", coresLost_);
    statGroup_.add("hotplugRetries", hotplugRetries_);
    statGroup_.add("rebindRetries", rebindRetries_);
    statGroup_.add("scrubRepairs", scrubRepairs_);
}

bool
GappedVm::isLostCore(sim::CoreId c) const
{
    return std::find(lostCores_.begin(), lostCores_.end(), c) !=
           lostCores_.end();
}

void
GappedVm::releasePlannerReservations()
{
    if (!cfg_.planner || plannerReleased_)
        return;
    plannerReleased_ = true;
    // A quarantined core stays reserved forever: releasing it would
    // let the planner hand an offline core to the next VM (I7).
    std::vector<sim::CoreId> back;
    for (sim::CoreId c : cfg_.guestCores) {
        if (!isLostCore(c))
            back.push_back(c);
    }
    if (!back.empty())
        cfg_.planner->release(back);
}

sim::Proc<bool>
GappedVm::onlineWithRetry(sim::CoreId core)
{
    host::Kernel& kernel = kvm_.kernel();
    if (co_await kernel.onlineCore(core))
        co_return true;
    hotplugRetries_.inc();
    if (co_await kernel.onlineCore(core)) {
        kernel.sim().faults().noteRecovered(
            sim::FaultSite::HotplugOnlineFail);
        co_return true;
    }
    coresLost_.inc();
    lostCores_.push_back(core);
    sim::warn("%s: core %d failed to come back online twice; "
              "quarantining it (stays reserved, never reused)",
              kvm_.guestVm().name().c_str(), core);
    co_return false;
}

sim::Proc<bool>
GappedVm::start()
{
    CG_ASSERT(!started_, "GappedVm started twice");
    started_ = true;
    host::Kernel& kernel = kvm_.kernel();
    hw::Machine& machine = kernel.machine();
    const int n = kvm_.guestVm().numVcpus();

    // Dedicate the guest cores: hotplug them out of the host and hand
    // them to the monitor in realm world (section 4.2). A core that
    // refuses to offline gets one retry; if it still refuses, the
    // whole bring-up rolls back — no half-dedicated VM, and a failed
    // start leaks no planner reservation (I7).
    std::vector<sim::CoreId> dedicated;
    for (sim::CoreId core : cfg_.guestCores) {
        bool ok = co_await kernel.offlineCore(core);
        if (!ok) {
            hotplugRetries_.inc();
            ok = co_await kernel.offlineCore(core);
            if (ok) {
                machine.sim().faults().noteRecovered(
                    sim::FaultSite::HotplugOfflineFail);
            }
        }
        if (!ok) {
            sim::warn("%s: could not dedicate core %d; rolling back",
                      kvm_.guestVm().name().c_str(), core);
            break;
        }
        const Tick t = machine.switchWorld(core, hw::World::Realm);
        co_await sim::Delay{t};
        machine.core(core).setOccupant(sim::monitorDomain);
        dedicated.push_back(core);
    }
    if (dedicated.size() != cfg_.guestCores.size()) {
        // Hand back everything taken so far. The monitor never ran a
        // guest here, but it did own the cores: scrub its residue
        // before normal world returns (I10).
        for (sim::CoreId core : dedicated) {
            hw::CoreUarch& u = machine.core(core).uarch();
            for (hw::TaggedStructure* st : u.all())
                st->flushDomain(sim::monitorDomain);
            co_await sim::Delay{machine.switchWorld(
                core, hw::World::Normal)};
            co_await onlineWithRetry(core);
        }
        releasePlannerReservations();
        started_ = false;
        co_return false;
    }
    for (int i = 0; i < n; ++i) {
        monitorProcs_[static_cast<size_t>(i)] = &machine.sim().spawn(
            sim::strFormat("%s/rmm-core%d",
                           kvm_.guestVm().name().c_str(),
                           cfg_.guestCores[static_cast<size_t>(i)]),
            monitorCoreLoop(i, cfg_.guestCores[static_cast<size_t>(i)],
                            monGen_[static_cast<size_t>(i)]));
    }

    // Re-apply direct-delivery MSI routes: hotplug migrated all SPIs
    // away from the cores we just offlined, but directly-delivered
    // interrupts belong ON the dedicated cores.
    for (const auto& [spi, target] : directIrqs_) {
        machine.gic().routeSpi(
            spi, cfg_.guestCores[static_cast<size_t>(target.first)]);
    }

    // Host side: wake-up thread plus one FIFO thread per vCPU. The
    // doorbell sets a level-triggered flag: rings can coalesce while
    // the wake-up thread is mid-sweep.
    doorbellSub_ = doorbell_.subscribe(doorbellTarget_, [this] {
        doorbellPending_ = true;
        wakeupNotify_.notifyAll();
    });
    wakeupThread_ = &kernel.createThread(
        sim::strFormat("%s/wakeup", kvm_.guestVm().name().c_str()),
        wakeupThreadBody(), host::SchedClass::Fifo, cfg_.hostCores);
    wakeupThread_->footprint = 32;
    kvm_.setAliveVcpus(n);
    for (int i = 0; i < n; ++i) {
        VCpu& v = kvm_.guestVm().vcpu(i);
        v.setTickPeriod(kvm_.guestVm().config().tickPeriod);
        host::Thread& t = kernel.createThread(
            sim::strFormat("%s/vcpu%d-thread",
                           kvm_.guestVm().name().c_str(), i),
            vcpuThreadBody(i),
            cfg_.busyWaitRun ? host::SchedClass::Fair
                             : host::SchedClass::Fifo,
            cfg_.hostCores);
        t.footprint = kvm_.config().vcpuThreadFootprint;
        vcpuThreads_.push_back(&t);
    }
    co_return true;
}

sim::Proc<void>
GappedVm::teardown()
{
    host::Kernel& kernel = kvm_.kernel();
    hw::Machine& machine = kernel.machine();
    const sim::DomainId guest_domain = kvm_.guestVm().domain();
    // Destroy RECs: this is what releases the dedicated-core binding.
    for (int i = 0; i < kvm_.guestVm().numVcpus(); ++i)
        rmm_.recDestroy(realm_, i);
    stopMonitors_ = true;
    monitorWork_.notifyAll();
    // Reclaim the cores: the monitor scrubs the guest's (and its own)
    // microarchitectural residue before normal world ever runs here
    // again — without this, the cores would hand the host exactly the
    // per-core side channel core gapping exists to close.
    for (sim::CoreId core : cfg_.guestCores) {
        // Fault site for the checker's must-fire test: a skipped scrub
        // is exactly the broken mitigation the paper's invariant (I10)
        // forbids, and check::IsolationChecker must flag it.
        const bool skip_scrub =
            machine.sim().faults().query(sim::FaultSite::ScrubSkip)
                .has_value();
        hw::CoreUarch& u = machine.core(core).uarch();
        if (!skip_scrub) {
            for (hw::TaggedStructure* st : u.all()) {
                st->flushDomain(guest_domain);
                st->flushDomain(sim::monitorDomain);
            }
        } else if (cfg_.verifyScrubs) {
            // Scrub verification: audit the census (probe-free) and
            // repair the skipped scrub before the handback.
            bool residue = false;
            for (hw::TaggedStructure* st : u.all()) {
                if (st->auditEntriesOf(guest_domain) != 0 ||
                    st->auditEntriesOf(sim::monitorDomain) != 0) {
                    residue = true;
                    break;
                }
            }
            if (residue) {
                machine.sim().faults().noteDetected(
                    sim::FaultSite::ScrubSkip);
                for (hw::TaggedStructure* st : u.all()) {
                    st->flushDomain(guest_domain);
                    st->flushDomain(sim::monitorDomain);
                }
                machine.sim().faults().noteRecovered(
                    sim::FaultSite::ScrubSkip);
                scrubRepairs_.inc();
            }
        }
        const Tick t = machine.switchWorld(core, hw::World::Normal);
        co_await sim::Delay{t};
        co_await onlineWithRetry(core);
    }
    rmm_.realmDestroy(realm_);
    releasePlannerReservations();
}

sim::Proc<void>
GappedVm::terminate()
{
    CG_ASSERT(started_, "terminate before start");
    hw::Machine& machine = kvm_.kernel().machine();
    const int n = kvm_.guestVm().numVcpus();
    // Force every live vCPU out of guest execution and park its run
    // loop; vCPUs that already shut down need nothing.
    for (int i = 0; i < n; ++i) {
        if (vcpuThreads_[static_cast<size_t>(i)]->done())
            continue;
        Park& park = *parks_[static_cast<size_t>(i)];
        park.requested = true;
        park.resume.reset();
        VCpu& v = kvm_.guestVm().vcpu(i);
        if (v.entered()) {
            machine.gic().sendSgi(
                cfg_.guestCores[static_cast<size_t>(i)], kickSgi);
        }
    }
    // Wait for each run loop to reach the park gate. With faults
    // armed the wait is bounded: a hung monitor never publishes the
    // exit, so its vCPU thread never parks — after parkDeadline the
    // host stops cooperating and reclaims the core by force.
    const bool bounded = machine.sim().faults().armed();
    for (int i = 0; i < n; ++i) {
        if (vcpuThreads_[static_cast<size_t>(i)]->done())
            continue;
        Park& park = *parks_[static_cast<size_t>(i)];
        if (!bounded) {
            while (!park.parked)
                co_await park.parkedNotify.wait();
            continue;
        }
        bool hung = false;
        while (!park.parked) {
            const Tick deadline = machine.sim().now() + parkDeadline;
            const sim::EventId timer = machine.sim().queue().scheduleIn(
                parkDeadline,
                [&park] { park.parkedNotify.notifyAll(); });
            co_await park.parkedNotify.wait();
            machine.sim().queue().cancel(timer);
            if (!park.parked && machine.sim().now() >= deadline) {
                hung = true;
                break;
            }
        }
        if (!hung)
            continue;
        machine.sim().faults().noteDetected(
            sim::FaultSite::MonitorHang);
        sim::warn("%s/vcpu%d: monitor on core %d unresponsive; "
                  "force-stopping its REC and reclaiming the core",
                  kvm_.guestVm().name().c_str(), i,
                  cfg_.guestCores[static_cast<size_t>(i)]);
        // Kill the wedged monitor loop, force the REC out of Running
        // so teardown()'s recDestroy succeeds, and drop the vCPU
        // thread (its run call can never complete). teardown() then
        // scrubs the core like any other before the host gets it
        // back (I10).
        if (monitorProcs_[static_cast<size_t>(i)]) {
            monitorProcs_[static_cast<size_t>(i)]->kill();
            monitorProcs_[static_cast<size_t>(i)] = nullptr;
        }
        rmm_.recForceStop(realm_, i);
        if (!vcpuThreads_[static_cast<size_t>(i)]->done())
            vcpuThreads_[static_cast<size_t>(i)]->process().kill();
        hangReclaims_.inc();
        machine.sim().faults().noteRecovered(
            sim::FaultSite::MonitorHang);
    }
    // The host kills the VMM's threads outright.
    for (host::Thread* t : vcpuThreads_) {
        if (t && !t->done())
            t->process().kill();
    }
    if (wakeupThread_ && !wakeupThread_->done())
        wakeupThread_->process().kill();
    co_await teardown();
    kvm_.shutdownGate().open();
}

// --------------------------------------------------------- monitor side

sim::Proc<void>
GappedVm::monitorCoreLoop(int idx, sim::CoreId core, std::uint64_t gen)
{
    RunSlot& slot = *slots_[static_cast<size_t>(idx)];
    VCpu& v = kvm_.guestVm().vcpu(idx);
    hw::Machine& machine = kvm_.kernel().machine();

    // Physical interrupts on a dedicated core are delivered to the
    // monitor: device MSIs mapped for direct delivery are injected
    // straight into the guest (no exit); anything else is a host kick
    // that must force the REC to exit so the host regains service.
    machine.gic().setSink(core, [this, &v, idx](hw::IntId id) {
        if (hw::isSpi(id)) {
            auto it = directIrqs_.find(id);
            if (it != directIrqs_.end() && it->second.first == idx) {
                directInjections_.inc();
                v.injectVirq(it->second.second);
                return;
            }
        }
        v.forceExit(ExitReason::HostKick);
    });

    Tick last_exit = 0;
    const auto retired = [this, idx, gen] {
        return stopMonitors_ || monGen_[static_cast<size_t>(idx)] != gen;
    };
    for (;;) {
        while (!slot.posted() && !syncRpc_.pending()) {
            if (retired())
                co_return;
            co_await monitorWork_.wait();
        }
        if (retired())
            co_return;
        if (machine.sim().faults().armed() &&
            machine.sim().faults().query(
                sim::FaultSite::MonitorHang)) {
            // The monitor wedges (modelling a monitor bug): it keeps
            // the core but never services work again. Nothing on the
            // cooperative path can wake it; only terminate()'s
            // escalation reclaims the core.
            co_await hangNotify_.wait();
            co_return;
        }
        if (syncRpc_.pending()) {
            co_await syncRpc_.serviceOne();
            continue;
        }
        rmm::RecEnterArgs args = co_await slot.takeArgs();
        if (last_exit != 0)
            runToRun_.sample(machine.sim().now() - last_exit);
        rmm::RecRunResult res =
            co_await rmm_.recEnter(realm_, idx, std::move(args), core);
        last_exit = machine.sim().now();
        slot.publish(std::move(res));
        doorbell_.ring(doorbellTarget_);
    }
}

// ------------------------------------------------------------ host side

sim::Proc<void>
GappedVm::wakeupThreadBody()
{
    const hw::Costs& costs = kvm_.kernel().machine().costs();
    hw::Machine& machine = kvm_.kernel().machine();
    sim::Simulation& sim = machine.sim();
    // With faults armed the doorbell wait is bounded by a watchdog: a
    // sweep finding an undelivered response without a pending doorbell
    // means the ring was lost in flight — re-ring it. Delivery is
    // at-least-once; the per-slot delivered_ flag dedups extra rings.
    const bool watchdog = sim.faults().armed();
    for (;;) {
        if (cfg_.wakeSpinMax > 0 && !doorbellPending_) {
            // Adaptive spin-then-sleep: burn the spin budget polling
            // the doorbell flag before paying the blocking-wait wake
            // path. A hit means the workload is bursting — double the
            // budget (up to the cap) to stay hot for the next
            // response; a miss halves it so idle VMs decay back to
            // pure blocking and stop wasting the host core.
            if (wakeSpinBudget_ == 0) {
                wakeSpinBudget_ = std::max<Tick>(
                    cfg_.wakeSpinMax / 2, costs.pollReaction);
            }
            const Tick spin_start = sim.now();
            while (!doorbellPending_ &&
                   sim.now() - spin_start < wakeSpinBudget_)
                co_await Compute{machine.cost(costs.pollReaction)};
            if (doorbellPending_) {
                wakeSpinHits_.inc();
                sim.tracer().instant("wake-spin-hit",
                                     sim::Tracer::domainsPid,
                                     kvm_.guestVm().domain());
                wakeSpinBudget_ = std::min(wakeSpinBudget_ * 2,
                                           cfg_.wakeSpinMax);
            } else {
                wakeSpinSleeps_.inc();
                wakeSpinBudget_ = std::max<Tick>(
                    wakeSpinBudget_ / 2, costs.pollReaction);
            }
        }
        while (!doorbellPending_) {
            if (!watchdog) {
                co_await wakeupNotify_.wait();
                continue;
            }
            watchdogEvent_ = sim.queue().scheduleIn(
                watchdogPeriod, [this] { wakeupNotify_.notifyAll(); });
            co_await wakeupNotify_.wait();
            sim.queue().cancel(watchdogEvent_);
            watchdogEvent_ = sim::invalidEventId;
            if (doorbellPending_)
                break;
            bool missed = false;
            for (auto& slot : slots_) {
                if (slot->needsDelivery()) {
                    missed = true;
                    break;
                }
            }
            if (missed) {
                sim.faults().noteDetected(sim::FaultSite::DoorbellLost);
                reringOutstanding_ = true;
                doorbell_.rering(doorbellTarget_);
            }
        }
        doorbellPending_ = false;
        // Sweep the channels until a pass finds nothing, then suspend
        // until the next doorbell (fig. 4, steps 3-6).
        bool found = true;
        while (found) {
            found = false;
            for (auto& slot : slots_) {
                co_await Compute{machine.cost(costs.pollReaction)};
                if (slot->needsDelivery()) {
                    slot->markDelivered();
                    // The wake-up thread's own contribution to the
                    // serving tail: response visible -> vCPU woken.
                    wakeLatency_.sample(sim.now() - slot->readyAt());
                    slot->hostNotify().notifyAll();
                    found = true;
                    if (reringOutstanding_) {
                        reringOutstanding_ = false;
                        sim.faults().noteRecovered(
                            sim::FaultSite::DoorbellLost);
                    }
                }
            }
        }
    }
}

sim::Proc<void>
GappedVm::vcpuThreadBody(int idx)
{
    RunSlot& slot = *slots_[static_cast<size_t>(idx)];
    host::Kernel& kernel = kvm_.kernel();
    hw::Machine& machine = kernel.machine();
    const hw::Costs& costs = machine.costs();

    Park& park = *parks_[static_cast<size_t>(idx)];
    for (;;) {
        if (park.requested) {
            // A rebind is in progress: hold the run loop here until
            // the vCPU has a new dedicated core.
            park.parked = true;
            park.parkedNotify.notifyAll();
            co_await park.resume.wait();
            park.parked = false;
        }
        rmm::RecEnterArgs args;
        args.injectVirqs = kvm_.drainInjections(idx);
        args.mmioResponse = kvm_.takeMmioResponse(idx);
        const Tick posted_at = machine.sim().now();
        slot.post(std::move(args));
        if (cfg_.busyWaitRun) {
            // Quarantine-style: stay runnable, poll, yield. With many
            // vCPU threads this saturates the host core (fig. 6).
            while (!slot.responseReady()) {
                co_await Compute{machine.cost(costs.pollReaction)};
                co_await kernel.yield();
            }
        } else {
            while (!slot.responseReady())
                co_await slot.hostNotify().wait();
            // Futex-style block/unblock cost of the blocking design.
            co_await Compute{machine.cost(costs.threadBlockUnblock)};
        }
        rmm::RecRunResult res = co_await slot.takeResponse();
        runCallRtt_.sample(machine.sim().now() - posted_at);
        // The run call returns to the userspace VMM, which decides how
        // to handle the exit before issuing the next call.
        co_await Compute{machine.cost(costs.vmmRunLoop)};
        if (res.status != rmm::RmiStatus::Success) {
            sim::warn("%s/vcpu%d: run call failed: %s",
                      kvm_.guestVm().name().c_str(), idx,
                      rmm::rmiStatusName(res.status));
            break;
        }
        co_await kvm_.applyExit(idx, res.exit);
        if (res.exit.reason == ExitReason::Shutdown)
            break;
        if (res.exit.reason == ExitReason::Wfi)
            co_await kvm_.waitRunnable(idx);
    }
    kvm_.notifyVcpuShutdown();
}

sim::Proc<void>
GappedVm::suspend()
{
    CG_ASSERT(started_ && !suspended_, "bad suspend");
    suspended_ = true;
    hw::Machine& machine = kvm_.kernel().machine();
    const int n = kvm_.guestVm().numVcpus();
    for (int i = 0; i < n; ++i) {
        if (vcpuThreads_[static_cast<size_t>(i)]->done())
            continue; // guest already shut down
        Park& park = *parks_[static_cast<size_t>(i)];
        park.requested = true;
        park.resume.reset();
        VCpu& v = kvm_.guestVm().vcpu(i);
        if (v.entered()) {
            machine.gic().sendSgi(
                cfg_.guestCores[static_cast<size_t>(i)], kickSgi);
        }
    }
    for (int i = 0; i < n; ++i) {
        if (vcpuThreads_[static_cast<size_t>(i)]->done())
            continue;
        Park& park = *parks_[static_cast<size_t>(i)];
        while (!park.parked)
            co_await park.parkedNotify.wait();
    }
}

sim::Proc<bool>
GappedVm::trySuspend(Tick deadline)
{
    CG_ASSERT(started_ && !suspended_, "bad trySuspend");
    hw::Machine& machine = kvm_.kernel().machine();
    const int n = kvm_.guestVm().numVcpus();
    for (int i = 0; i < n; ++i) {
        if (vcpuThreads_[static_cast<size_t>(i)]->done())
            continue;
        Park& park = *parks_[static_cast<size_t>(i)];
        park.requested = true;
        park.resume.reset();
        VCpu& v = kvm_.guestVm().vcpu(i);
        if (v.entered()) {
            machine.gic().sendSgi(
                cfg_.guestCores[static_cast<size_t>(i)], kickSgi);
        }
    }
    bool hung = false;
    for (int i = 0; i < n && !hung; ++i) {
        if (vcpuThreads_[static_cast<size_t>(i)]->done())
            continue;
        Park& park = *parks_[static_cast<size_t>(i)];
        while (!park.parked) {
            const Tick limit = machine.sim().now() + deadline;
            const sim::EventId timer = machine.sim().queue().scheduleIn(
                deadline, [&park] { park.parkedNotify.notifyAll(); });
            co_await park.parkedNotify.wait();
            machine.sim().queue().cancel(timer);
            if (!park.parked && machine.sim().now() >= limit) {
                hung = true;
                break;
            }
        }
    }
    if (hung) {
        // Roll the parks back: the VM keeps running; the caller
        // escalates (terminate() reclaims hung monitors by force).
        for (auto& park : parks_) {
            park->requested = false;
            park->resume.open();
        }
        co_return false;
    }
    suspended_ = true;
    co_return true;
}

void
GappedVm::resume()
{
    CG_ASSERT(suspended_, "resume without suspend");
    suspended_ = false;
    for (auto& park : parks_) {
        park->requested = false;
        park->resume.open();
    }
}

void
GappedVm::mapDirectIrq(hw::IntId spi, hw::IntId virq, int vcpu_idx)
{
    CG_ASSERT(hw::isSpi(spi), "direct delivery needs an SPI");
    CG_ASSERT(vcpu_idx >= 0 && vcpu_idx < kvm_.guestVm().numVcpus(),
              "bad vCPU index %d", vcpu_idx);
    directIrqs_[spi] = {vcpu_idx, virq};
    kvm_.kernel().machine().gic().routeSpi(
        spi, cfg_.guestCores[static_cast<size_t>(vcpu_idx)]);
}

sim::Proc<bool>
GappedVm::rebindVcpu(int idx, sim::CoreId new_core)
{
    CG_ASSERT(started_, "rebind before start");
    CG_ASSERT(!suspended_, "rebind while suspended is not supported");
    CG_ASSERT(idx >= 0 && idx < kvm_.guestVm().numVcpus(),
              "bad vCPU index %d", idx);
    host::Kernel& kernel = kvm_.kernel();
    hw::Machine& machine = kernel.machine();
    VCpu& v = kvm_.guestVm().vcpu(idx);
    Park& park = *parks_[static_cast<size_t>(idx)];
    const sim::CoreId old_core =
        cfg_.guestCores[static_cast<size_t>(idx)];

    // 1. Park the host-side run loop: ask, kick the guest out of its
    //    current run call, and wait for the thread to reach the gate.
    park.requested = true;
    park.resume.reset();
    if (v.entered())
        machine.gic().sendSgi(old_core, kickSgi);
    while (!park.parked)
        co_await park.parkedNotify.wait();

    // 2. Retire the old monitor loop (bump its generation).
    ++monGen_[static_cast<size_t>(idx)];
    monitorWork_.notifyAll();
    co_await sim::join(*monitorProcs_[static_cast<size_t>(idx)]);

    // 3. Dedicate the new core: hotplug it away from the host and
    //    switch it into realm world. On failure (after one retry)
    //    restart the old monitor loop and report the rebind refused.
    bool took = co_await kernel.offlineCore(new_core);
    if (!took) {
        hotplugRetries_.inc();
        took = co_await kernel.offlineCore(new_core);
        if (took) {
            machine.sim().faults().noteRecovered(
                sim::FaultSite::HotplugOfflineFail);
        }
    }
    if (!took) {
        sim::warn("%s/vcpu%d: rebind: could not dedicate core %d",
                  kvm_.guestVm().name().c_str(), idx, new_core);
        monitorProcs_[static_cast<size_t>(idx)] =
            &machine.sim().spawn(
                sim::strFormat("%s/rmm-core%d",
                               kvm_.guestVm().name().c_str(), old_core),
                monitorCoreLoop(idx, old_core,
                                monGen_[static_cast<size_t>(idx)]));
        park.requested = false;
        park.resume.open();
        co_return false;
    }
    co_await sim::Delay{machine.switchWorld(new_core,
                                            hw::World::Realm)};
    machine.core(new_core).setOccupant(sim::monitorDomain);

    // 4. The monitor validates and performs the rebind, scrubbing the
    //    old core's guest residue. A rate-limit refusal (Busy with a
    //    known allowed-at tick) is not dropped: the control plane
    //    holds the dedicated new core, backs off until the limiter
    //    window opens, and retries — bounded so a Busy of any other
    //    cause still rolls back.
    rmm::RmiStatus s = rmm_.recRebind(realm_, idx, new_core);
    for (int attempt = 0;
         s == rmm::RmiStatus::Busy && attempt < maxRebindRetries;
         ++attempt) {
        const Tick allowed = rmm_.rebindAllowedAt(realm_, idx);
        const Tick now = machine.sim().now();
        if (allowed <= now)
            break; // Busy for a non-rate-limit reason
        rebindRetries_.inc();
        co_await sim::Delay{allowed - now};
        s = rmm_.recRebind(realm_, idx, new_core);
    }
    if (s != rmm::RmiStatus::Success) {
        // Roll back: return the new core to the host, restart the old
        // monitor loop, unpark.
        sim::warn("%s/vcpu%d: rebind to core %d refused: %s",
                  kvm_.guestVm().name().c_str(), idx, new_core,
                  rmm::rmiStatusName(s));
        co_await sim::Delay{machine.switchWorld(new_core,
                                                hw::World::Normal)};
        co_await onlineWithRetry(new_core);
        monitorProcs_[static_cast<size_t>(idx)] =
            &machine.sim().spawn(
                sim::strFormat("%s/rmm-core%d",
                               kvm_.guestVm().name().c_str(), old_core),
                monitorCoreLoop(idx, old_core,
                                monGen_[static_cast<size_t>(idx)]));
        park.requested = false;
        park.resume.open();
        co_return false;
    }

    // 5. New monitor loop on the new core; unpark the run loop.
    monitorProcs_[static_cast<size_t>(idx)] = &machine.sim().spawn(
        sim::strFormat("%s/rmm-core%d", kvm_.guestVm().name().c_str(),
                       new_core),
        monitorCoreLoop(idx, new_core,
                        monGen_[static_cast<size_t>(idx)]));
    cfg_.guestCores[static_cast<size_t>(idx)] = new_core;
    // Directly-delivered interrupts follow the vCPU to its new core.
    for (const auto& [spi, target] : directIrqs_) {
        if (target.first == idx)
            machine.gic().routeSpi(spi, new_core);
    }
    park.requested = false;
    park.resume.open();

    // 6. Hand the old core back to the host.
    co_await sim::Delay{machine.switchWorld(old_core,
                                            hw::World::Normal)};
    co_await onlineWithRetry(old_core);
    co_return true;
}

} // namespace cg::core
