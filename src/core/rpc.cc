#include "core/rpc.hh"

#include "sim/simulation.hh"
#include "sim/slab.hh"

namespace cg::core {

using sim::Compute;
using sim::Delay;

// ------------------------------------------------------------ SyncRpcQueue

SyncRpcQueue::~SyncRpcQueue()
{
    // Cancel in-flight wire events so they never touch freed memory
    // (the poke callbacks reference both this queue and the external
    // monitor Notify; either may be gone by the time they would fire).
    sim::EventQueue& q = machine_.sim().queue();
    for (const PendingPoke& p : pendingPokes_)
        q.cancel(p.ev);
}

void
SyncRpcQueue::completePoke(std::uint64_t token)
{
    for (auto it = pendingPokes_.begin(); it != pendingPokes_.end();
         ++it) {
        if (it->token == token) {
            pendingPokes_.erase(it);
            break;
        }
    }
    monitorPoke_.notifyAll();
}

void
SyncRpcQueue::sendPoke(bool repoke)
{
    sim::Simulation& sim = machine_.sim();
    sim::FaultPlan& faults = sim.faults();
    if (faults.armed() &&
        faults.query(sim::FaultSite::SyncRpcStall)) {
        // The wire poke is lost: the call sits in the queue and the
        // monitor is never notified. The caller's bounded busy-wait
        // detects the stall and re-pokes.
        return;
    }
    if (repoke) {
        repokes_.inc();
        sim.tracer().instant("syncrpc-repoke", sim::Tracer::domainsPid,
                             traceDomain_);
    }
    const std::uint64_t tok = nextPokeToken_++;
    const sim::EventId ev = sim.queue().scheduleIn(
        machine_.cost(machine_.costs().cacheLineTransfer),
        [this, tok] { completePoke(tok); });
    pendingPokes_.push_back({tok, ev});
}

bool
SyncRpcQueue::withdraw(const std::shared_ptr<SyncCall>& call)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == call) {
            queue_.erase(it);
            return true;
        }
    }
    return false;
}

Proc<rmm::RmiStatus>
SyncRpcQueue::call(std::function<rmm::RmiStatus()> op)
{
    // The token's shared_ptr semantics are load-bearing for teardown
    // (caller killed mid-call, queue destroyed with pokes in flight --
    // see tests/core/test_rpc_teardown.cc); allocate_shared over the
    // slab keeps those semantics while recycling the control-block+
    // token allocation that every call otherwise pays.
    auto call = std::allocate_shared<SyncCall>(
        sim::SlabAllocator<SyncCall>{});
    call->op = std::move(op);
    queue_.push_back(call);
    // The argument cache line travels to the polling monitor core.
    sim::Simulation& sim = machine_.sim();
    const hw::Costs& costs = machine_.costs();
    sim.tracer().instant("syncrpc-post", sim::Tracer::domainsPid,
                         traceDomain_);
    sendPoke(false);
    // Busy-wait for the response: the host thread spins (and thus
    // consumes CPU) until the response line arrives. With faults armed
    // the spin is bounded; a stalled poke is retried with exponential
    // backoff and eventually surfaced as RmiStatus::Timeout.
    const bool bounded = sim.faults().armed();
    Tick backoff = pokeTimeout;
    Tick deadline = sim.now() + backoff;
    int repokes = 0;
    bool stalled = false;
    while (!call->done) {
        co_await Compute{machine_.cost(costs.pollReaction)};
        if (!bounded || call->done || sim.now() < deadline)
            continue;
        // Deadline passed. A call already picked up by a monitor core
        // is in service and will complete; only a still-queued call
        // has genuinely stalled.
        if (!withdraw(call)) {
            deadline = sim.now() + backoff;
            continue;
        }
        sim.faults().noteDetected(sim::FaultSite::SyncRpcStall);
        stalled = true;
        if (repokes >= maxRepokes) {
            // Give up: the op never ran, so the caller can retry.
            timeouts_.inc();
            sim.tracer().instant("syncrpc-timeout",
                                 sim::Tracer::domainsPid, traceDomain_);
            co_return rmm::RmiStatus::Timeout;
        }
        ++repokes;
        queue_.push_back(call);
        sendPoke(true);
        backoff *= 2;
        deadline = sim.now() + backoff;
    }
    if (stalled)
        sim.faults().noteRecovered(sim::FaultSite::SyncRpcStall);
    co_return call->result;
}

Proc<void>
SyncRpcQueue::serviceOne()
{
    if (queue_.empty())
        co_return;
    std::shared_ptr<SyncCall> call = queue_.front();
    queue_.pop_front();
    machine_.sim().tracer().instant(
        "syncrpc-pickup", sim::Tracer::domainsPid, traceDomain_);
    const hw::Costs& costs = machine_.costs();
    // Poll pickup, handler body, response line back to the caller.
    co_await Compute{machine_.cost(costs.pollReaction) +
                     machine_.cost(costs.rmiShortCall)};
    call->result = call->op();
    co_await Delay{machine_.cost(costs.cacheLineTransfer)};
    call->done = true;
    served_.inc();
    machine_.sim().tracer().instant(
        "syncrpc-response", sim::Tracer::domainsPid, traceDomain_);
}

// ----------------------------------------------------------------- RunSlot

RunSlot::~RunSlot()
{
    // Cancel in-flight wire events so they never touch freed memory.
    machine_.sim().queue().cancel(pendingPost_);
    machine_.sim().queue().cancel(pendingPublish_);
}

const char*
RunSlot::stateName() const
{
    switch (state_) {
      case State::Idle:
        return "Idle";
      case State::Posted:
        return "Posted";
      case State::Running:
        return "Running";
      case State::Done:
        return "Done";
    }
    return "?";
}

void
RunSlot::post(rmm::RecEnterArgs args)
{
    // Retry/recovery paths must never double-post: overwriting args_
    // while the monitor owns the slot would corrupt an in-flight run.
    CG_ASSERT(state_ == State::Idle,
              "RunSlot::post from state %s (only Idle may post; a "
              "pending run call would be overwritten)", stateName());
    args_ = std::move(args);
    state_ = State::Posted;
    delivered_ = false;
    pendingPost_ = machine_.sim().queue().scheduleIn(
        machine_.cost(machine_.costs().cacheLineTransfer), [this] {
            pendingPost_ = sim::invalidEventId;
            monitorPoke_.notifyAll();
        });
}

Proc<rmm::RecEnterArgs>
RunSlot::takeArgs()
{
    CG_ASSERT(state_ == State::Posted,
              "RunSlot::takeArgs from state %s (nothing posted)",
              stateName());
    state_ = State::Running;
    co_await Compute{machine_.cost(machine_.costs().pollReaction)};
    co_return std::move(args_);
}

void
RunSlot::publish(rmm::RecRunResult result)
{
    CG_ASSERT(state_ == State::Running,
              "RunSlot::publish from state %s (only a Running slot "
              "may publish; no run call is in flight)", stateName());
    result_ = std::move(result);
    // The exit record becomes host-visible after the line transfer;
    // the caller rings the doorbell separately.
    pendingPublish_ = machine_.sim().queue().scheduleIn(
        machine_.cost(machine_.costs().cacheLineTransfer), [this] {
            pendingPublish_ = sim::invalidEventId;
            state_ = State::Done;
            readyAt_ = machine_.sim().now();
            hostNotify_.notifyAll();
        });
}

Proc<rmm::RecRunResult>
RunSlot::takeResponse()
{
    CG_ASSERT(state_ == State::Done,
              "RunSlot::takeResponse from state %s (no response "
              "published)", stateName());
    state_ = State::Idle;
    co_await Compute{
        machine_.cost(machine_.costs().cacheLineTransfer)};
    co_return std::move(result_);
}

} // namespace cg::core
