#include "core/rpc.hh"

#include "sim/simulation.hh"

namespace cg::core {

using sim::Compute;
using sim::Delay;

// ------------------------------------------------------------ SyncRpcQueue

SyncRpcQueue::~SyncRpcQueue()
{
    // Cancel in-flight wire events so they never touch freed memory
    // (the poke callbacks reference both this queue and the external
    // monitor Notify; either may be gone by the time they would fire).
    sim::EventQueue& q = machine_.sim().queue();
    for (const PendingPoke& p : pendingPokes_)
        q.cancel(p.ev);
}

void
SyncRpcQueue::completePoke(std::uint64_t token)
{
    for (auto it = pendingPokes_.begin(); it != pendingPokes_.end();
         ++it) {
        if (it->token == token) {
            pendingPokes_.erase(it);
            break;
        }
    }
    monitorPoke_.notifyAll();
}

Proc<rmm::RmiStatus>
SyncRpcQueue::call(std::function<rmm::RmiStatus()> op)
{
    auto call = std::make_shared<SyncCall>();
    call->op = std::move(op);
    queue_.push_back(call);
    // The argument cache line travels to the polling monitor core.
    sim::Simulation& sim = machine_.sim();
    const hw::Costs& costs = machine_.costs();
    sim.tracer().instant("syncrpc-post", sim::Tracer::domainsPid,
                         traceDomain_);
    const std::uint64_t tok = nextPokeToken_++;
    const sim::EventId ev = sim.queue().scheduleIn(
        machine_.cost(costs.cacheLineTransfer),
        [this, tok] { completePoke(tok); });
    pendingPokes_.push_back({tok, ev});
    // Busy-wait for the response: the host thread spins (and thus
    // consumes CPU) until the response line arrives.
    while (!call->done)
        co_await Compute{machine_.cost(costs.pollReaction)};
    co_return call->result;
}

Proc<void>
SyncRpcQueue::serviceOne()
{
    if (queue_.empty())
        co_return;
    std::shared_ptr<SyncCall> call = queue_.front();
    queue_.pop_front();
    machine_.sim().tracer().instant(
        "syncrpc-pickup", sim::Tracer::domainsPid, traceDomain_);
    const hw::Costs& costs = machine_.costs();
    // Poll pickup, handler body, response line back to the caller.
    co_await Compute{machine_.cost(costs.pollReaction) +
                     machine_.cost(costs.rmiShortCall)};
    call->result = call->op();
    co_await Delay{machine_.cost(costs.cacheLineTransfer)};
    call->done = true;
    served_.inc();
    machine_.sim().tracer().instant(
        "syncrpc-response", sim::Tracer::domainsPid, traceDomain_);
}

// ----------------------------------------------------------------- RunSlot

RunSlot::~RunSlot()
{
    // Cancel in-flight wire events so they never touch freed memory.
    machine_.sim().queue().cancel(pendingPost_);
    machine_.sim().queue().cancel(pendingPublish_);
}

void
RunSlot::post(rmm::RecEnterArgs args)
{
    CG_ASSERT(state_ == State::Idle, "posting to a busy run slot");
    args_ = std::move(args);
    state_ = State::Posted;
    delivered_ = false;
    pendingPost_ = machine_.sim().queue().scheduleIn(
        machine_.cost(machine_.costs().cacheLineTransfer), [this] {
            pendingPost_ = sim::invalidEventId;
            monitorPoke_.notifyAll();
        });
}

Proc<rmm::RecEnterArgs>
RunSlot::takeArgs()
{
    CG_ASSERT(state_ == State::Posted, "takeArgs with nothing posted");
    state_ = State::Running;
    co_await Compute{machine_.cost(machine_.costs().pollReaction)};
    co_return std::move(args_);
}

void
RunSlot::publish(rmm::RecRunResult result)
{
    CG_ASSERT(state_ == State::Running, "publish without a run");
    result_ = std::move(result);
    // The exit record becomes host-visible after the line transfer;
    // the caller rings the doorbell separately.
    pendingPublish_ = machine_.sim().queue().scheduleIn(
        machine_.cost(machine_.costs().cacheLineTransfer), [this] {
            pendingPublish_ = sim::invalidEventId;
            state_ = State::Done;
            hostNotify_.notifyAll();
        });
}

Proc<rmm::RecRunResult>
RunSlot::takeResponse()
{
    CG_ASSERT(state_ == State::Done, "takeResponse with no response");
    state_ = State::Idle;
    co_await Compute{
        machine_.cost(machine_.costs().cacheLineTransfer)};
    co_return std::move(result_);
}

} // namespace cg::core
