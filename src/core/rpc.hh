/**
 * @file
 * Cross-core RPC channels on shared (non-confidential) memory — the
 * transport that replaces same-core privilege transitions in the
 * core-gapped design (sections 3 and 4.3).
 *
 * Two kinds, mirroring the paper's split:
 *
 *  - SyncRpc: short RMM calls (page-table updates etc.). The host
 *    thread writes arguments and busy-polls for the response; a
 *    dedicated monitor core that is otherwise idle picks the call up
 *    from its polling loop. Round trip: ~2 cache-line transfers plus
 *    poll reactions (table 2: 257.7 ns).
 *
 *  - RunSlot: the asynchronous vCPU run call. The host posts arguments
 *    and blocks; the monitor runs the guest, writes the exit record,
 *    and rings the doorbell; the wake-up thread unblocks the vCPU
 *    thread (table 2: 2757.6 ns; fig. 4).
 */

#ifndef CG_CORE_RPC_HH
#define CG_CORE_RPC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hw/machine.hh"
#include "rmm/rmm.hh"
#include "sim/sync.hh"
#include "vmm/kvm.hh"

namespace cg::core {

using sim::Proc;
using sim::Tick;

/**
 * A pending short synchronous call. Shared between the caller's
 * coroutine frame and the service queue so that a caller killed
 * mid-call (VM teardown) leaves no dangling queue entry.
 */
struct SyncCall {
    std::function<rmm::RmiStatus()> op;
    rmm::RmiStatus result = rmm::RmiStatus::Success;
    bool done = false;
};

/**
 * The shared-memory mailbox for short calls of one VM. Host side posts;
 * any of the VM's dedicated monitor cores services it while idle.
 *
 * With the simulation's fault plan armed, the busy-wait is bounded:
 * after pokeTimeout of spinning without pickup the caller re-pokes the
 * monitor (exponential backoff), and after maxRepokes the call is
 * withdrawn from the queue and fails with RmiStatus::Timeout — the op
 * never ran, so callers may retry safely (vmm::KvmVm does). Disarmed,
 * the wait is unbounded and byte-identical to the pre-fault model.
 */
class SyncRpcQueue
{
  public:
    /** @p monitor_poke is notified (after wire delay) on each post. */
    SyncRpcQueue(hw::Machine& m, sim::Notify& monitor_poke)
        : machine_(m), monitorPoke_(monitor_poke)
    {}

    ~SyncRpcQueue();

    SyncRpcQueue(const SyncRpcQueue&) = delete;
    SyncRpcQueue& operator=(const SyncRpcQueue&) = delete;

    /** Host side: post and busy-wait (caller is a host thread). */
    Proc<rmm::RmiStatus> call(std::function<rmm::RmiStatus()> op);

    /** Monitor side: anything to service? */
    bool pending() const { return !queue_.empty(); }

    /** Monitor side: service one call (charges handler+response). */
    Proc<void> serviceOne();

    std::uint64_t callsServed() const { return served_.value(); }
    const sim::Counter& servedStat() const { return served_; }
    const sim::Counter& timeoutStat() const { return timeouts_; }
    const sim::Counter& repokeStat() const { return repokes_; }

    /** VM-domain trace track for this queue's tracepoints. */
    void setTraceDomain(int domain) { traceDomain_ = domain; }

    /** @{ Bounded-wait policy (effective only with faults armed). */
    /** Base deadline before the first re-poke; doubles per retry. */
    static constexpr Tick pokeTimeout = 500 * sim::usec;
    /** Re-pokes before the call is withdrawn with Timeout. */
    static constexpr int maxRepokes = 4;
    /** @} */

  private:
    /** A wire-delay poke event that has not fired yet. */
    struct PendingPoke {
        std::uint64_t token;
        sim::EventId ev;
    };

    void completePoke(std::uint64_t token);

    /** Schedule the wire poke for a post (fault: may be stalled). */
    void sendPoke(bool repoke);

    /** Withdraw an unserviced call; false if already picked up. */
    bool withdraw(const std::shared_ptr<SyncCall>& call);

    hw::Machine& machine_;
    sim::Notify& monitorPoke_;
    std::deque<std::shared_ptr<SyncCall>> queue_;
    sim::Counter served_;
    sim::Counter timeouts_;
    sim::Counter repokes_;
    int traceDomain_ = 0;
    /** In-flight wire events, cancelled if we are destroyed first. */
    std::vector<PendingPoke> pendingPokes_;
    std::uint64_t nextPokeToken_ = 1;
};

/** RmiTransport backed by a SyncRpcQueue (for KvmVm::cvmMapPage). */
class SyncRpcTransport : public vmm::RmiTransport
{
  public:
    explicit SyncRpcTransport(SyncRpcQueue& q) : queue_(q) {}

    Proc<rmm::RmiStatus>
    call(std::function<rmm::RmiStatus()> op) override
    {
        return queue_.call(std::move(op));
    }

  private:
    SyncRpcQueue& queue_;
};

/** The per-vCPU asynchronous run-call mailbox (fig. 4). */
class RunSlot
{
  public:
    /** @p monitor_poke is notified (after wire delay) on each post. */
    RunSlot(hw::Machine& m, sim::Notify& monitor_poke)
        : machine_(m), monitorPoke_(monitor_poke)
    {}

    ~RunSlot();

    /** @{ Host side. */
    /** Post run arguments; visible to the monitor after wire delay. */
    void post(rmm::RecEnterArgs args);

    /** Response arrived and not yet consumed? */
    bool responseReady() const { return state_ == State::Done; }

    /** @{ Wake-up thread bookkeeping: notify each response once. */
    bool needsDelivery() const
    {
        return state_ == State::Done && !delivered_;
    }
    void markDelivered() { delivered_ = true; }
    /** When the current response became host-visible (the wake-up
     * thread measures its own reaction latency from this). */
    Tick readyAt() const { return readyAt_; }
    /** @} */

    /** Consume the response (host thread; charges the read). */
    Proc<rmm::RecRunResult> takeResponse();

    /** The vCPU thread blocks here; poked by the wake-up thread. */
    sim::Notify& hostNotify() { return hostNotify_; }
    /** @} */

    /** @{ Monitor side. */
    bool posted() const { return state_ == State::Posted; }

    /** Begin executing a posted call (charges the pickup). */
    Proc<rmm::RecEnterArgs> takeArgs();

    /** Publish the result and make it host-visible. */
    void publish(rmm::RecRunResult result);
    /** @} */

    bool idle() const { return state_ == State::Idle; }

  private:
    enum class State { Idle, Posted, Running, Done };

    /** For panic messages from the state-machine guards. */
    const char* stateName() const;

    hw::Machine& machine_;
    sim::Notify& monitorPoke_;
    State state_ = State::Idle;
    bool delivered_ = false;
    Tick readyAt_ = 0;
    rmm::RecEnterArgs args_;
    rmm::RecRunResult result_;
    sim::Notify hostNotify_;
    /** In-flight wire-delay events, cancelled if we die first. */
    sim::EventId pendingPost_ = sim::invalidEventId;
    sim::EventId pendingPublish_ = sim::invalidEventId;
};

} // namespace cg::core

#endif // CG_CORE_RPC_HH
