#include "core/doorbell.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace cg::core {

ExitDoorbell::ExitDoorbell(host::Kernel& kernel)
    : kernel_(kernel), ipi_(kernel.allocateIpi())
{
    kernel_.setIpiHandler(ipi_, [this](sim::CoreId c) { onIpi(c); });
}

ExitDoorbell::~ExitDoorbell()
{
    // The handler installed above captures `this`; an IPI delivered
    // after our death (e.g. one still in flight through the GIC at
    // teardown) must find no handler rather than a dangling one.
    kernel_.clearIpiHandler(ipi_);
}

void
ExitDoorbell::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "doorbell");
    statGroup_.add("rings", rings_);
    statGroup_.add("lostRings", lostRings_);
    statGroup_.add("rerings", rerings_);
}

std::uint64_t
ExitDoorbell::subscribe(sim::CoreId core, Handler fn)
{
    const std::uint64_t id = nextSubId_++;
    subs_[core].emplace_back(id, std::move(fn));
    return id;
}

void
ExitDoorbell::unsubscribe(sim::CoreId core, std::uint64_t id)
{
    auto it = subs_.find(core);
    if (it == subs_.end())
        return;
    auto& v = it->second;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [id](const auto& p) { return p.first == id; }),
            v.end());
}

void
ExitDoorbell::ring(sim::CoreId core)
{
    rings_.inc();
    kernel_.sim().tracer().instant("doorbell-ring",
                                   sim::Tracer::coresPid, core);
    sim::FaultPlan& faults = kernel_.sim().faults();
    if (faults.armed() &&
        faults.query(sim::FaultSite::DoorbellLost)) {
        // The exit record is in shared memory but the IPI never went
        // out: exactly the hazard the wake-up watchdog re-rings for.
        lostRings_.inc();
        return;
    }
    kernel_.sendIpi(core, ipi_);
}

void
ExitDoorbell::rering(sim::CoreId core)
{
    rerings_.inc();
    kernel_.sim().tracer().instant("doorbell-rering",
                                   sim::Tracer::coresPid, core);
    ring(core);
}

void
ExitDoorbell::onIpi(sim::CoreId core)
{
    kernel_.sim().tracer().instant("doorbell-wake",
                                   sim::Tracer::coresPid, core);
    auto it = subs_.find(core);
    if (it == subs_.end())
        return;
    for (auto& [id, fn] : it->second)
        fn();
}

} // namespace cg::core
