#include "core/doorbell.hh"

#include <algorithm>

namespace cg::core {

ExitDoorbell::ExitDoorbell(host::Kernel& kernel)
    : kernel_(kernel), ipi_(kernel.allocateIpi())
{
    kernel_.setIpiHandler(ipi_, [this](sim::CoreId c) { onIpi(c); });
}

std::uint64_t
ExitDoorbell::subscribe(sim::CoreId core, Handler fn)
{
    const std::uint64_t id = nextSubId_++;
    subs_[core].emplace_back(id, std::move(fn));
    return id;
}

void
ExitDoorbell::unsubscribe(sim::CoreId core, std::uint64_t id)
{
    auto it = subs_.find(core);
    if (it == subs_.end())
        return;
    auto& v = it->second;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [id](const auto& p) { return p.first == id; }),
            v.end());
}

void
ExitDoorbell::ring(sim::CoreId core)
{
    ++rings_;
    kernel_.sendIpi(core, ipi_);
}

void
ExitDoorbell::onIpi(sim::CoreId core)
{
    auto it = subs_.find(core);
    if (it == subs_.end())
        return;
    for (auto& [id, fn] : it->second)
        fn();
}

} // namespace cg::core
