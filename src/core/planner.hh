/**
 * @file
 * The user-mode core planner (section 3): admission control for
 * core-gapped CVMs and NUMA-aware placement of vCPUs onto dedicated
 * cores. Logically an extension of cluster-level VM allocators into
 * the node, and of vCPU-affinity schedulers into enforced placement.
 */

#ifndef CG_CORE_PLANNER_HH
#define CG_CORE_PLANNER_HH

#include <optional>
#include <vector>

#include "host/cpumask.hh"
#include "hw/machine.hh"

namespace cg::core {

class CorePlanner
{
  public:
    /**
     * @p host_reserved cores are never handed to guests (they run the
     * hypervisor, VMM I/O threads, and wake-up threads).
     */
    CorePlanner(hw::Machine& machine, host::CpuMask host_reserved);

    /**
     * Admission control: reserve @p n dedicated cores for one CVM.
     * Prefers a single NUMA node and low fragmentation (longest
     * contiguous runs first). Returns nullopt when the node cannot
     * host the VM (invariant I7: never over-commits).
     */
    std::optional<std::vector<sim::CoreId>> reserve(int n);

    /** Return previously reserved cores to the free pool. */
    void release(const std::vector<sim::CoreId>& cores);

    /**
     * Reserve exactly @p cores (all must be free). Used to take a
     * destination pool a defrag plan picked; panics on a non-free
     * core, so callers must plan and reserve atomically (the DES has
     * no preemption inside a call).
     */
    void reserveExact(const std::vector<sim::CoreId>& cores);

    /**
     * Defrag-aware placement: the tightest contiguous free run that
     * fits @p n (ties to the lowest core id), falling back to
     * reserve()'s NUMA best-fit when no contiguous run fits.
     */
    std::optional<std::vector<sim::CoreId>> reserveCompact(int n);

    /**
     * Plan a defrag move for a VM currently holding @p current:
     * treating @p current as free, pick the tightest contiguous free
     * run (disjoint from @p current) that fits, and return it only if
     * the move strictly grows the largest free run afterwards. Pure
     * planning — reserves nothing; pair with reserveExact().
     */
    std::optional<std::vector<sim::CoreId>>
    planDefragMove(const std::vector<sim::CoreId>& current) const;

    /** Longest run of consecutive free core ids. */
    int largestFreeRun() const;

    /** 1 - largestFreeRun/freeCores in [0,1]; 0 when empty or whole. */
    double fragmentation() const;

    int freeCores() const;
    int reservedCores() const;
    bool isReserved(sim::CoreId c) const;
    host::CpuMask hostReserved() const { return hostReserved_; }

  private:
    hw::Machine& machine_;
    host::CpuMask hostReserved_;
    std::vector<bool> reserved_;
};

} // namespace cg::core

#endif // CG_CORE_PLANNER_HH
