#include "core/planner.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace cg::core {

using sim::CoreId;

CorePlanner::CorePlanner(hw::Machine& machine,
                         host::CpuMask host_reserved)
    : machine_(machine),
      hostReserved_(host_reserved),
      reserved_(static_cast<size_t>(machine.numCores()), false)
{
    if ((host_reserved & host::CpuMask::firstN(machine.numCores()))
            .empty()) {
        sim::fatal("planner: no host cores reserved");
    }
}

bool
CorePlanner::isReserved(CoreId c) const
{
    return reserved_.at(static_cast<size_t>(c));
}

int
CorePlanner::freeCores() const
{
    int n = 0;
    for (CoreId c = 0; c < machine_.numCores(); ++c) {
        if (!hostReserved_.test(c) &&
            !reserved_[static_cast<size_t>(c)]) {
            ++n;
        }
    }
    return n;
}

int
CorePlanner::reservedCores() const
{
    int n = 0;
    for (bool r : reserved_)
        n += r ? 1 : 0;
    return n;
}

std::optional<std::vector<CoreId>>
CorePlanner::reserve(int n)
{
    if (n <= 0)
        sim::fatal("planner: reserve(%d)", n);
    if (n > freeCores())
        return std::nullopt; // admission control: never over-commit

    // Collect free cores per NUMA node.
    std::map<int, std::vector<CoreId>> by_node;
    for (CoreId c = 0; c < machine_.numCores(); ++c) {
        if (!hostReserved_.test(c) && !reserved_[static_cast<size_t>(c)])
            by_node[machine_.core(c).numaNode()].push_back(c);
    }
    // Prefer the node that fits with the least leftover (best fit);
    // fall back to spilling across nodes in node order.
    int best_node = -1;
    std::size_t best_slack = ~0ull;
    for (const auto& [node, cores] : by_node) {
        if (static_cast<int>(cores.size()) >= n &&
            cores.size() - static_cast<size_t>(n) < best_slack) {
            best_node = node;
            best_slack = cores.size() - static_cast<size_t>(n);
        }
    }
    std::vector<CoreId> out;
    if (best_node >= 0) {
        const auto& cores = by_node[best_node];
        out.assign(cores.begin(), cores.begin() + n);
    } else {
        for (const auto& [node, cores] : by_node) {
            for (CoreId c : cores) {
                if (static_cast<int>(out.size()) == n)
                    break;
                out.push_back(c);
            }
        }
    }
    CG_ASSERT(static_cast<int>(out.size()) == n,
              "planner accounting broken");
    for (CoreId c : out)
        reserved_[static_cast<size_t>(c)] = true;
    return out;
}

void
CorePlanner::release(const std::vector<CoreId>& cores)
{
    for (CoreId c : cores) {
        if (c < 0 || c >= machine_.numCores())
            sim::panic("planner: releasing nonexistent core %d", c);
        if (!reserved_[static_cast<size_t>(c)]) {
            sim::panic("planner: releasing core %d that is not "
                       "reserved (double release, or a core the "
                       "planner never handed out)", c);
        }
        reserved_[static_cast<size_t>(c)] = false;
    }
}

} // namespace cg::core
