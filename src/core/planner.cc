#include "core/planner.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace cg::core {

using sim::CoreId;

CorePlanner::CorePlanner(hw::Machine& machine,
                         host::CpuMask host_reserved)
    : machine_(machine),
      hostReserved_(host_reserved),
      reserved_(static_cast<size_t>(machine.numCores()), false)
{
    if ((host_reserved & host::CpuMask::firstN(machine.numCores()))
            .empty()) {
        sim::fatal("planner: no host cores reserved");
    }
}

bool
CorePlanner::isReserved(CoreId c) const
{
    return reserved_.at(static_cast<size_t>(c));
}

int
CorePlanner::freeCores() const
{
    int n = 0;
    for (CoreId c = 0; c < machine_.numCores(); ++c) {
        if (!hostReserved_.test(c) &&
            !reserved_[static_cast<size_t>(c)]) {
            ++n;
        }
    }
    return n;
}

int
CorePlanner::reservedCores() const
{
    int n = 0;
    for (bool r : reserved_)
        n += r ? 1 : 0;
    return n;
}

std::optional<std::vector<CoreId>>
CorePlanner::reserve(int n)
{
    if (n <= 0)
        sim::fatal("planner: reserve(%d)", n);
    if (n > freeCores())
        return std::nullopt; // admission control: never over-commit

    // Collect free cores per NUMA node.
    std::map<int, std::vector<CoreId>> by_node;
    for (CoreId c = 0; c < machine_.numCores(); ++c) {
        if (!hostReserved_.test(c) && !reserved_[static_cast<size_t>(c)])
            by_node[machine_.core(c).numaNode()].push_back(c);
    }
    // Prefer the node that fits with the least leftover (best fit);
    // fall back to spilling across nodes in node order.
    int best_node = -1;
    std::size_t best_slack = ~0ull;
    for (const auto& [node, cores] : by_node) {
        if (static_cast<int>(cores.size()) >= n &&
            cores.size() - static_cast<size_t>(n) < best_slack) {
            best_node = node;
            best_slack = cores.size() - static_cast<size_t>(n);
        }
    }
    std::vector<CoreId> out;
    if (best_node >= 0) {
        const auto& cores = by_node[best_node];
        out.assign(cores.begin(), cores.begin() + n);
    } else {
        for (const auto& [node, cores] : by_node) {
            for (CoreId c : cores) {
                if (static_cast<int>(out.size()) == n)
                    break;
                out.push_back(c);
            }
        }
    }
    CG_ASSERT(static_cast<int>(out.size()) == n,
              "planner accounting broken");
    for (CoreId c : out)
        reserved_[static_cast<size_t>(c)] = true;
    return out;
}

void
CorePlanner::reserveExact(const std::vector<CoreId>& cores)
{
    for (CoreId c : cores) {
        if (c < 0 || c >= machine_.numCores() || hostReserved_.test(c) ||
            reserved_[static_cast<size_t>(c)]) {
            sim::panic("planner: reserveExact on unavailable core %d",
                       c);
        }
    }
    for (CoreId c : cores)
        reserved_[static_cast<size_t>(c)] = true;
}

namespace {

/** One maximal run of consecutive core ids satisfying a predicate. */
struct Run {
    CoreId start = 0;
    int len = 0;
};

template <typename FreePred>
std::vector<Run>
collectRuns(int num_cores, FreePred&& is_free)
{
    std::vector<Run> runs;
    Run cur;
    for (CoreId c = 0; c < num_cores; ++c) {
        if (is_free(c)) {
            if (cur.len == 0)
                cur.start = c;
            ++cur.len;
        } else if (cur.len > 0) {
            runs.push_back(cur);
            cur.len = 0;
        }
    }
    if (cur.len > 0)
        runs.push_back(cur);
    return runs;
}

/** The tightest run fitting @p n (ties to the lowest start). */
std::optional<Run>
tightestFit(const std::vector<Run>& runs, int n)
{
    std::optional<Run> best;
    for (const Run& r : runs) {
        if (r.len < n)
            continue;
        if (!best || r.len < best->len)
            best = r;
    }
    return best;
}

} // namespace

int
CorePlanner::largestFreeRun() const
{
    int best = 0;
    const auto runs = collectRuns(machine_.numCores(), [&](CoreId c) {
        return !hostReserved_.test(c) &&
               !reserved_[static_cast<size_t>(c)];
    });
    for (const Run& r : runs)
        best = std::max(best, r.len);
    return best;
}

double
CorePlanner::fragmentation() const
{
    const int free = freeCores();
    if (free == 0)
        return 0.0;
    return 1.0 - static_cast<double>(largestFreeRun()) /
                     static_cast<double>(free);
}

std::optional<std::vector<CoreId>>
CorePlanner::reserveCompact(int n)
{
    if (n <= 0)
        sim::fatal("planner: reserveCompact(%d)", n);
    const auto runs = collectRuns(machine_.numCores(), [&](CoreId c) {
        return !hostReserved_.test(c) &&
               !reserved_[static_cast<size_t>(c)];
    });
    const auto best = tightestFit(runs, n);
    if (!best)
        return reserve(n); // no contiguous fit: NUMA best-fit fallback
    std::vector<CoreId> out;
    for (int i = 0; i < n; ++i)
        out.push_back(best->start + i);
    for (CoreId c : out)
        reserved_[static_cast<size_t>(c)] = true;
    return out;
}

std::optional<std::vector<CoreId>>
CorePlanner::planDefragMove(const std::vector<CoreId>& current) const
{
    if (current.empty())
        return std::nullopt;
    const int n = static_cast<int>(current.size());
    const auto held = [&](CoreId c) {
        return std::find(current.begin(), current.end(), c) !=
               current.end();
    };
    const auto free_now = [&](CoreId c) {
        return !hostReserved_.test(c) &&
               !reserved_[static_cast<size_t>(c)];
    };
    // Candidate destinations must be free *today* (the realm keeps
    // running on `current` until the copy commits).
    const auto best =
        tightestFit(collectRuns(machine_.numCores(), free_now), n);
    if (!best)
        return std::nullopt;
    std::vector<CoreId> dest;
    for (int i = 0; i < n; ++i)
        dest.push_back(best->start + i);
    // Only move if it strictly grows the largest free run: free' =
    // (free \ dest) + current.
    const auto free_after = [&](CoreId c) {
        if (std::find(dest.begin(), dest.end(), c) != dest.end())
            return false;
        return free_now(c) || held(c);
    };
    int run_after = 0;
    for (const Run& r : collectRuns(machine_.numCores(), free_after))
        run_after = std::max(run_after, r.len);
    if (run_after <= largestFreeRun())
        return std::nullopt;
    return dest;
}

void
CorePlanner::release(const std::vector<CoreId>& cores)
{
    for (CoreId c : cores) {
        if (c < 0 || c >= machine_.numCores())
            sim::panic("planner: releasing nonexistent core %d", c);
        if (!reserved_[static_cast<size_t>(c)]) {
            sim::panic("planner: releasing core %d that is not "
                       "reserved (double release, or a core the "
                       "planner never handed out)", c);
        }
        reserved_[static_cast<size_t>(c)] = false;
    }
}

} // namespace cg::core
