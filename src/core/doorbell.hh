/**
 * @file
 * The CVM-exit doorbell: the single additional IPI the paper's
 * prototype allocates (section 4.3 — Arm has 16 SGIs, Linux reserves 7,
 * so no information can travel in the IPI itself). The security monitor
 * rings it at a host core after writing exit information to shared
 * memory; the handler activates the wake-up threads subscribed on that
 * core, which then poll the RPC channels to find the exited vCPU.
 */

#ifndef CG_CORE_DOORBELL_HH
#define CG_CORE_DOORBELL_HH

#include <functional>
#include <map>
#include <vector>

#include "host/kernel.hh"
#include "sim/sync.hh"

namespace cg::core {

class ExitDoorbell
{
  public:
    using Handler = std::function<void()>;

    explicit ExitDoorbell(host::Kernel& kernel);
    ~ExitDoorbell();

    ExitDoorbell(const ExitDoorbell&) = delete;
    ExitDoorbell& operator=(const ExitDoorbell&) = delete;

    /**
     * Subscribe a wake-up handler for rings on @p core. Handlers must
     * be level-triggered on their side (set a flag, then notify): the
     * IPI carries no information and rings can coalesce.
     * @return a subscription id for unsubscribe().
     */
    std::uint64_t subscribe(sim::CoreId core, Handler fn);

    void unsubscribe(sim::CoreId core, std::uint64_t id);

    /** Ring the doorbell at @p core (called by the monitor side). */
    void ring(sim::CoreId core);

    /**
     * Ring again for a delivery the wake-up watchdog found missing
     * (at-least-once delivery; duplicates coalesce in the subscribers'
     * level-triggered flags and in RunSlot's delivered_ dedup).
     */
    void rering(sim::CoreId core);

    int ipiNumber() const { return ipi_; }
    std::uint64_t rings() const { return rings_.value(); }
    std::uint64_t lostRings() const { return lostRings_.value(); }
    std::uint64_t rerings() const { return rerings_.value(); }

    /** Register the doorbell's counters under "doorbell." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

  private:
    void onIpi(sim::CoreId core);

    host::Kernel& kernel_;
    int ipi_;
    std::map<sim::CoreId,
             std::vector<std::pair<std::uint64_t, Handler>>> subs_;
    std::uint64_t nextSubId_ = 1;
    sim::Counter rings_;
    sim::Counter lostRings_;
    sim::Counter rerings_;
    sim::StatGroup statGroup_;
};

} // namespace cg::core

#endif // CG_CORE_DOORBELL_HH
