#include "core/migration.hh"

#include <algorithm>

#include "check/checker.hh"
#include "core/planner.hh"
#include "sim/simulation.hh"

namespace cg::core {

using rmm::granuleSize;
using rmm::PhysAddr;
using rmm::RmiStatus;
using sim::CoreId;
using sim::Tick;

const char*
migrateResultName(MigrateResult r)
{
    switch (r) {
      case MigrateResult::Committed:
        return "Committed";
      case MigrateResult::RolledBack:
        return "RolledBack";
      case MigrateResult::Refused:
        return "Refused";
    }
    return "?";
}

MigrationController::MigrationController(GappedVm& vm,
                                         CorePlanner* planner,
                                         MigrationConfig cfg)
    : vm_(vm),
      planner_(planner ? planner : vm.config().planner),
      cfg_(cfg)
{
    // Reservation bookkeeping must go through one planner: the VM's
    // teardown releases whatever pool it ends up on.
    if (planner && vm.config().planner &&
        planner != vm.config().planner) {
        sim::fatal("MigrationController: planner differs from the "
                   "VM's planner");
    }
}

void
MigrationController::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "migrate." + vm_.kvm_.guestVm().name());
    statGroup_.add("committed", committed_);
    statGroup_.add("rolledBack", rolledBack_);
    statGroup_.add("refused", refused_);
    statGroup_.add("copyRetries", copyRetries_);
}

PhysAddr
MigrationController::nextWindowBase()
{
    // Disjoint from every createRealmFor() window ((domain + 0x100)
    // << 32) and from every other migration's: (domain, seq) -> base
    // is injective while seq < 2^12 (a window is 2^24 bytes = 4096
    // granules, far above any realm's granule count).
    CG_ASSERT(seq_ < (1ull << 12), "migration window space exhausted");
    const auto domain = static_cast<std::uint64_t>(
        vm_.kvm_.guestVm().domain());
    return (0x5ull << 44) + (domain << 36) + (seq_++ << 24);
}

sim::Proc<void>
MigrationController::rollbackAttempt(
    const std::vector<CoreId>& dest_taken, bool prepared,
    std::size_t delegated, PhysAddr base, bool monitors_retired)
{
    rmm::Rmm& rmm = vm_.rmm_;
    hw::Machine& machine = vm_.kvm_.kernel().machine();

    // Undo the RMM's side: abort restores core bindings and releases
    // the partial destination copy back to Delegated.
    if (prepared &&
        rmm.migrationPhase(vm_.realm_) != rmm::MigrationPhase::Idle) {
        const RmiStatus s = rmm.migrateAbort(vm_.realm_);
        CG_ASSERT(s == RmiStatus::Success, "migrateAbort failed: %s",
                  rmm::rmiStatusName(s));
    }
    // The destination window returns to the host.
    for (std::size_t i = 0; i < delegated; ++i) {
        const RmiStatus s =
            rmm.granuleUndelegate(base + i * granuleSize);
        CG_ASSERT(s == RmiStatus::Success,
                  "rollback undelegate failed: %s",
                  rmm::rmiStatusName(s));
    }
    // Destination cores go back online. No guest ever ran there, but
    // the monitor owned them: scrub its residue first (I10), exactly
    // like a failed start().
    for (CoreId core : dest_taken) {
        hw::CoreUarch& u = machine.core(core).uarch();
        for (hw::TaggedStructure* st : u.all())
            st->flushDomain(sim::monitorDomain);
        co_await sim::Delay{
            machine.switchWorld(core, hw::World::Normal)};
        co_await vm_.onlineWithRetry(core);
    }
    // The realm keeps running where it was: respawn the source
    // monitor loops if we already retired them.
    if (monitors_retired) {
        const int n = vm_.kvm_.guestVm().numVcpus();
        for (int i = 0; i < n; ++i) {
            const CoreId core =
                vm_.cfg_.guestCores[static_cast<size_t>(i)];
            vm_.monitorProcs_[static_cast<size_t>(i)] =
                &machine.sim().spawn(
                    sim::strFormat("%s/rmm-core%d",
                                   vm_.kvm_.guestVm().name().c_str(),
                                   core),
                    vm_.monitorCoreLoop(
                        i, core, vm_.monGen_[static_cast<size_t>(i)]));
        }
    }
    vm_.resume();
}

sim::Proc<bool>
MigrationController::attempt(const std::vector<CoreId>& dest,
                             bool& refused_out, bool& abort_out)
{
    rmm::Rmm& rmm = vm_.rmm_;
    const int realm = vm_.realm_;
    hw::Machine& machine = vm_.kvm_.kernel().machine();
    sim::Simulation& sim = machine.sim();
    host::Kernel& kernel = vm_.kvm_.kernel();
    const hw::Costs& costs = machine.costs();
    const std::string& name = vm_.kvm_.guestVm().name();
    const int n = vm_.kvm_.guestVm().numVcpus();
    const std::vector<CoreId> src = vm_.cfg_.guestCores;

    const auto abort_injected = [&sim] {
        return sim.faults()
            .query(sim::FaultSite::MigrationAbort)
            .has_value();
    };

    // 1. Pause the realm (bounded): a hung monitor refuses the whole
    //    migration rather than wedging it.
    if (!co_await vm_.trySuspend(GappedVm::parkDeadline)) {
        sim::warn("%s: migration refused: a monitor never parked its "
                  "vCPU (hung?)", name.c_str());
        refused_out = true;
        co_return false;
    }

    if (abort_injected()) {
        sim.faults().noteDetected(sim::FaultSite::MigrationAbort);
        abort_out = true;
        co_await rollbackAttempt({}, false, 0, 0, false);
        co_return false;
    }

    // Snapshot the source granule addresses now: after commit they
    // are Delegated and must be handed back to the host.
    const auto src_granules = rmm.granules().owned(realm);

    // 2. Prepare: the RMM snapshots granules and core bindings.
    RmiStatus s = rmm.migratePrepare(realm);
    if (s != RmiStatus::Success) {
        sim::warn("%s: migratePrepare refused: %s", name.c_str(),
                  rmm::rmiStatusName(s));
        refused_out = true;
        co_await rollbackAttempt({}, false, 0, 0, false);
        co_return false;
    }

    // 3. Delegate the destination window.
    const std::size_t total = rmm.migrationGranuleCount(realm);
    const PhysAddr base = nextWindowBase();
    for (std::size_t i = 0; i < total; ++i) {
        s = rmm.granuleDelegate(base + i * granuleSize);
        if (s != RmiStatus::Success) {
            sim::warn("%s: migration delegate failed: %s",
                      name.c_str(), rmm::rmiStatusName(s));
            co_await rollbackAttempt({}, true, i, base, false);
            co_return false;
        }
    }

    // 4. Copy, in batches, with stall retry/backoff. The RMM charges
    //    nothing (same contract as every RMI); the control plane
    //    charges the copy+measurement cost per granule moved.
    Tick backoff = cfg_.retryBackoff;
    int stall_retries = 0;
    bool stalled = false;
    while (rmm.migrationPhase(realm) != rmm::MigrationPhase::Copied) {
        std::size_t copied = 0;
        s = rmm.migrateCopy(realm, base, cfg_.copyBatch, copied);
        if (s == RmiStatus::Busy) {
            // An injected rtt-copy-stall bounced the batch. Back off
            // (doubling) and resume from the cursor.
            if (!stalled) {
                sim.faults().noteDetected(
                    sim::FaultSite::RttCopyStall);
                stalled = true;
            }
            copyRetries_.inc();
            if (++stall_retries > cfg_.maxCopyRetries) {
                sim::warn("%s: migration copy stalled %d times; "
                          "rolling back", name.c_str(), stall_retries);
                co_await rollbackAttempt({}, true, total, base, false);
                co_return false;
            }
            co_await sim::Delay{backoff};
            backoff *= 2;
            continue;
        }
        if (s != RmiStatus::Success) {
            sim::warn("%s: migrateCopy failed: %s", name.c_str(),
                      rmm::rmiStatusName(s));
            co_await rollbackAttempt({}, true, total, base, false);
            co_return false;
        }
        if (stalled) {
            sim.faults().noteRecovered(sim::FaultSite::RttCopyStall);
            stalled = false;
            stall_retries = 0;
            backoff = cfg_.retryBackoff;
        }
        co_await sim::Delay{machine.cost(
            costs.granuleCopy * static_cast<Tick>(copied))};
    }

    if (abort_injected()) {
        sim.faults().noteDetected(sim::FaultSite::MigrationAbort);
        abort_out = true;
        co_await rollbackAttempt({}, true, total, base, false);
        co_return false;
    }

    // 5. Retire the source monitor loops (they are idle: the realm is
    //    suspended, so no run call or sync RPC is pending).
    for (int i = 0; i < n; ++i)
        ++vm_.monGen_[static_cast<size_t>(i)];
    vm_.monitorWork_.notifyAll();
    for (int i = 0; i < n; ++i) {
        if (vm_.monitorProcs_[static_cast<size_t>(i)])
            co_await sim::join(
                *vm_.monitorProcs_[static_cast<size_t>(i)]);
    }

    // 6. Dedicate the destination pool: hotplug each core out of the
    //    host and hand it to the monitor in realm world.
    std::vector<CoreId> dest_taken;
    for (CoreId core : dest) {
        bool ok = co_await kernel.offlineCore(core);
        if (!ok) {
            vm_.hotplugRetries_.inc();
            ok = co_await kernel.offlineCore(core);
            if (ok) {
                sim.faults().noteRecovered(
                    sim::FaultSite::HotplugOfflineFail);
            }
        }
        if (!ok) {
            sim::warn("%s: migration could not dedicate core %d; "
                      "rolling back", name.c_str(), core);
            co_await rollbackAttempt(dest_taken, true, total, base,
                                     true);
            co_return false;
        }
        co_await sim::Delay{
            machine.switchWorld(core, hw::World::Realm)};
        machine.core(core).setOccupant(sim::monitorDomain);
        dest_taken.push_back(core);
    }

    // 7. Move each bound REC onto its destination core.
    for (int i = 0; i < n; ++i) {
        if (rmm.recBinding(realm, i) == sim::invalidCore)
            continue; // never dispatched: binds on first enter
        s = rmm.migrateBindRec(realm, i,
                               dest[static_cast<size_t>(i)]);
        if (s != RmiStatus::Success) {
            sim::warn("%s: migrateBindRec(%d) refused: %s",
                      name.c_str(), i, rmm::rmiStatusName(s));
            co_await rollbackAttempt(dest_taken, true, total, base,
                                     true);
            co_return false;
        }
    }

    if (abort_injected()) {
        sim.faults().noteDetected(sim::FaultSite::MigrationAbort);
        abort_out = true;
        co_await rollbackAttempt(dest_taken, true, total, base, true);
        co_return false;
    }

    // 8. Commit: every granule reference rewrites to the destination
    //    window and the source granules release. Point of no return.
    s = rmm.migrateCommit(realm);
    CG_ASSERT(s == RmiStatus::Success, "migrateCommit failed: %s",
              rmm::rmiStatusName(s));

    // 9. The realm now lives on the destination pool: monitors, kick
    //    targets, and direct-delivery routes follow it.
    vm_.cfg_.guestCores = dest;
    for (int i = 0; i < n; ++i) {
        vm_.monitorProcs_[static_cast<size_t>(i)] =
            &machine.sim().spawn(
                sim::strFormat("%s/rmm-core%d", name.c_str(),
                               dest[static_cast<size_t>(i)]),
                vm_.monitorCoreLoop(
                    i, dest[static_cast<size_t>(i)],
                    vm_.monGen_[static_cast<size_t>(i)]));
    }
    for (const auto& [spi, target] : vm_.directIrqs_) {
        machine.gic().routeSpi(
            spi, dest[static_cast<size_t>(target.first)]);
    }

    // 10. Scrub-verified source handback: each source core is scrubbed
    //     of guest and monitor residue (or, under verifyScrubs, the
    //     skipped scrub is caught and repaired), the isolation checker
    //     audits the handback, and the core returns to the host.
    const sim::DomainId guest_domain = vm_.kvm_.guestVm().domain();
    for (CoreId core : src) {
        const bool skip_scrub =
            sim.faults().query(sim::FaultSite::ScrubSkip).has_value();
        hw::CoreUarch& u = machine.core(core).uarch();
        if (!skip_scrub) {
            for (hw::TaggedStructure* st : u.all()) {
                st->flushDomain(guest_domain);
                st->flushDomain(sim::monitorDomain);
            }
        } else if (vm_.cfg_.verifyScrubs) {
            bool residue = false;
            for (hw::TaggedStructure* st : u.all()) {
                if (st->auditEntriesOf(guest_domain) != 0 ||
                    st->auditEntriesOf(sim::monitorDomain) != 0) {
                    residue = true;
                    break;
                }
            }
            if (residue) {
                sim.faults().noteDetected(sim::FaultSite::ScrubSkip);
                for (hw::TaggedStructure* st : u.all()) {
                    st->flushDomain(guest_domain);
                    st->flushDomain(sim::monitorDomain);
                }
                sim.faults().noteRecovered(sim::FaultSite::ScrubSkip);
                vm_.scrubRepairs_.inc();
            }
        }
        if (machine.checker())
            machine.checker()->onMigrationHandback(core);
        co_await sim::Delay{
            machine.switchWorld(core, hw::World::Normal)};
        co_await vm_.onlineWithRetry(core);
    }
    // The released source granules return to the host.
    for (const auto& [addr, state] : src_granules) {
        (void)state;
        const RmiStatus us = rmm.granuleUndelegate(addr);
        CG_ASSERT(us == RmiStatus::Success,
                  "source undelegate failed: %s",
                  rmm::rmiStatusName(us));
    }

    vm_.resume();
    co_return true;
}

sim::Proc<MigrateResult>
MigrationController::migrateTo(std::vector<CoreId> dest)
{
    CG_ASSERT(vm_.started_, "migrate before start");
    hw::Machine& machine = vm_.kvm_.kernel().machine();
    const std::string& name = vm_.kvm_.guestVm().name();
    const int n = vm_.kvm_.guestVm().numVcpus();

    const auto refuse = [&](const char* why) {
        sim::warn("%s: migration refused: %s", name.c_str(), why);
        refused_.inc();
        return MigrateResult::Refused;
    };
    if (vm_.suspended_)
        co_return refuse("VM is suspended");
    if (static_cast<int>(dest.size()) != n)
        co_return refuse("destination pool size != vCPU count");
    for (CoreId c : dest) {
        if (c < 0 || c >= machine.numCores())
            co_return refuse("destination core out of range");
        if (std::find(vm_.cfg_.guestCores.begin(),
                      vm_.cfg_.guestCores.end(),
                      c) != vm_.cfg_.guestCores.end())
            co_return refuse("destination overlaps current pool");
    }
    if (planner_) {
        for (CoreId c : dest) {
            if (planner_->isReserved(c) ||
                planner_->hostReserved().test(c))
                co_return refuse("destination core not free");
        }
        planner_->reserveExact(dest);
    }

    const std::vector<CoreId> src = vm_.cfg_.guestCores;
    const auto release_skipping_lost =
        [this](const std::vector<CoreId>& cores) {
            if (!planner_)
                return;
            std::vector<CoreId> back;
            for (CoreId c : cores) {
                if (!vm_.isLostCore(c))
                    back.push_back(c);
            }
            if (!back.empty())
                planner_->release(back);
        };

    bool abort_seen = false;
    Tick backoff = cfg_.retryBackoff;
    for (int a = 0; a < cfg_.maxAttempts; ++a) {
        bool att_refused = false;
        bool att_abort = false;
        const bool ok = co_await attempt(dest, att_refused, att_abort);
        abort_seen = abort_seen || att_abort;
        if (ok) {
            if (abort_seen) {
                machine.sim().faults().noteRecovered(
                    sim::FaultSite::MigrationAbort);
            }
            committed_.inc();
            release_skipping_lost(src);
            co_return MigrateResult::Committed;
        }
        if (att_refused) {
            release_skipping_lost(dest);
            refused_.inc();
            co_return MigrateResult::Refused;
        }
        if (a + 1 < cfg_.maxAttempts) {
            co_await sim::Delay{backoff};
            backoff *= 2;
        }
    }
    sim::warn("%s: migration rolled back after %d attempts; realm "
              "intact on its source cores", name.c_str(),
              cfg_.maxAttempts);
    release_skipping_lost(dest);
    rolledBack_.inc();
    co_return MigrateResult::RolledBack;
}

sim::Proc<MigrateResult>
MigrationController::migrate()
{
    if (!planner_) {
        sim::warn("%s: defrag migrate needs a planner",
                  vm_.kvm_.guestVm().name().c_str());
        refused_.inc();
        co_return MigrateResult::Refused;
    }
    const auto dest = planner_->planDefragMove(vm_.cfg_.guestCores);
    if (!dest) {
        // No strictly improving contiguous move exists.
        refused_.inc();
        co_return MigrateResult::Refused;
    }
    co_return co_await migrateTo(*dest);
}

} // namespace cg::core
