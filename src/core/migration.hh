/**
 * @file
 * Realm live migration between core pools (DESIGN.md section 12).
 *
 * Core gapping's weak spot at scale is stranded dedicated cores: once
 * realms fragment the pools, the only release valve is migrating a
 * running realm — the fragmentation-driven rebind section 3 of the
 * paper anticipates. The MigrationController drives one GappedVm
 * through the RMM's migration RMIs as a fault-tolerant flow:
 *
 *   pause (bounded)   -> trySuspend: park every vCPU run loop
 *   prepare           -> rmm::migratePrepare snapshots granules+bindings
 *   copy (resumable)  -> delegate a destination window, batched
 *                        migrateCopy with stall retry/backoff
 *   switch cores      -> retire source monitor loops, dedicate the
 *                        destination pool via hotplug, migrateBindRec
 *   commit            -> migrateCommit rewrites granule refs (point of
 *                        no return)
 *   handback          -> scrub-verified source teardown: scrub (or
 *                        verify-and-repair) each source core, tell the
 *                        checker (onMigrationHandback), return the
 *                        cores to the host, release planner holds
 *   resume            -> unpark the run loops on the new cores
 *
 * Every pre-commit failure — an injected migration-abort, a copy that
 * stalls past its retry budget, a hotplug refusal, a bind rejection —
 * rolls back to the source placement completely: destination granules
 * are released and undelegated, bindings restored, monitors respawned
 * on the source cores, and the guest resumes as if nothing happened.
 * A realm is never stranded mid-flight and no granule leaks. A hung
 * monitor (trySuspend timeout) refuses the migration; terminate() is
 * the caller's escalation, exactly as for any other hang.
 */

#ifndef CG_CORE_MIGRATION_HH
#define CG_CORE_MIGRATION_HH

#include <vector>

#include "core/gapped_vm.hh"
#include "rmm/granule.hh"

namespace cg::core {

class CorePlanner;

struct MigrationConfig {
    /** Whole-flow attempts (an aborted attempt is retried). */
    int maxAttempts = 3;
    /** Copy-batch retries after an injected stall. */
    int maxCopyRetries = 8;
    /** Initial retry backoff; doubles per retry. */
    sim::Tick retryBackoff = 200 * sim::usec;
    /** Granules per migrateCopy batch. */
    std::size_t copyBatch = 64;
};

enum class MigrateResult {
    Committed,  ///< realm now runs on the destination pool
    RolledBack, ///< all attempts failed; realm intact on the source
    Refused,    ///< could not start (no plan / hung monitor / state)
};

const char* migrateResultName(MigrateResult r);

class MigrationController
{
  public:
    MigrationController(GappedVm& vm, CorePlanner* planner,
                        MigrationConfig cfg = {});

    /**
     * Defrag policy entry point: ask the planner for a strictly
     * improving contiguous destination (planDefragMove), reserve it,
     * and migrate. Refused when no improving move exists or the VM
     * has no planner.
     */
    sim::Proc<MigrateResult> migrate();

    /** Migrate to an explicit destination pool (one core per vCPU).
     * Reserves @p dest with the VM's planner when it has one. */
    sim::Proc<MigrateResult> migrateTo(std::vector<sim::CoreId> dest);

    /** @{ Outcome counters (also in stats as "migrate.<vm>."). */
    std::uint64_t committed() const { return committed_.value(); }
    std::uint64_t rolledBack() const { return rolledBack_.value(); }
    std::uint64_t refused() const { return refused_.value(); }
    std::uint64_t copyRetries() const { return copyRetries_.value(); }
    /** @} */

    /** Register counters under "migrate.<vm>." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

  private:
    /** One end-to-end attempt; false = rolled back (retryable,
     * unless @p refused_out). @p abort_out reports an injected
     * migration-abort (noteRecovered fires on a later commit). */
    sim::Proc<bool> attempt(const std::vector<sim::CoreId>& dest,
                            bool& refused_out, bool& abort_out);
    /** Undo a partial attempt back to the source placement. */
    sim::Proc<void> rollbackAttempt(
        const std::vector<sim::CoreId>& dest_taken, bool prepared,
        std::size_t delegated, rmm::PhysAddr base,
        bool monitors_retired);
    /** Fresh, collision-free destination granule window base. */
    rmm::PhysAddr nextWindowBase();

    GappedVm& vm_;
    CorePlanner* planner_;
    MigrationConfig cfg_;
    /** Per-VM migration sequence number (window addressing). */
    std::uint64_t seq_ = 0;
    sim::Counter committed_;
    sim::Counter rolledBack_;
    sim::Counter refused_;
    sim::Counter copyRetries_;
    sim::StatGroup statGroup_;
};

} // namespace cg::core

#endif // CG_CORE_MIGRATION_HH
