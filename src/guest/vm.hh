/**
 * @file
 * A guest virtual machine: a set of vCPUs sharing a security domain,
 * working-set footprint, and guest-kernel configuration. The Vm object
 * is the guest *software* model; whether it runs as a confidential
 * realm VM or a normal shared-core VM is decided by the runner that
 * drives its vCPUs (src/vmm and src/core).
 */

#ifndef CG_GUEST_VM_HH
#define CG_GUEST_VM_HH

#include <memory>
#include <string>
#include <vector>

#include "guest/vcpu.hh"
#include "hw/machine.hh"
#include "sim/stat_registry.hh"

namespace cg::guest {

struct VmConfig {
    std::string name = "vm";
    int numVcpus = 1;
    /** Guest kernel tick: Linux arm64 defaults to 250 Hz. */
    Tick tickPeriod = 4 * sim::msec;
    /** Per-vCPU working set, in cache lines (for warm-up accounting). */
    std::size_t footprint = 768;
    /** Guest memory size in bytes (drives RTT population). */
    std::uint64_t memBytes = 16ull << 30;
};

class Vm
{
  public:
    Vm(hw::Machine& machine, VmConfig cfg, sim::DomainId domain);

    hw::Machine& machine() { return machine_; }
    const VmConfig& config() const { return cfg_; }
    sim::DomainId domain() const { return domain_; }
    const std::string& name() const { return cfg_.name; }

    int numVcpus() const { return static_cast<int>(vcpus_.size()); }
    VCpu& vcpu(int i) { return *vcpus_.at(static_cast<size_t>(i)); }

    /** Marked when the VM is bound to a realm (by createRealmFor). */
    bool confidential() const { return confidential_; }
    void setConfidential(bool c) { confidential_ = c; }

    /** Register per-vCPU stats under "guest.<name>.vcpuN." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

  private:
    hw::Machine& machine_;
    VmConfig cfg_;
    sim::DomainId domain_;
    bool confidential_ = false;
    std::vector<std::unique_ptr<VCpu>> vcpus_;
    sim::StatGroup statGroup_;
};

} // namespace cg::guest

#endif // CG_GUEST_VM_HH
