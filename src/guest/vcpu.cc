#include "guest/vcpu.hh"

#include <algorithm>

#include "guest/vm.hh"
#include "sim/simulation.hh"

namespace cg::guest {

using sim::Process;

VCpu::VCpu(Vm& vm, int index)
    : vm_(vm),
      index_(index),
      name_(sim::strFormat("%s/vcpu%d", vm.name().c_str(), index))
{
    vtimer_ = std::make_unique<hw::Timer>(machine().sim(),
                                          [this] { onVTimerFire(); });
}

VCpu::~VCpu()
{
    // A host thread may be mid-runGuest on us: tell its kernel to drop
    // the reference before our state goes away.
    if (abandonHook_)
        abandonHook_();
    // Guest processes reference this dispatcher; they must not outlive
    // it. Kill them now (idempotent for finished processes).
    std::vector<Process*> procs = guestProcs_;
    for (Process* p : procs)
        p->kill();
}

hw::Machine&
VCpu::machine()
{
    return vm_.machine();
}

sim::DomainId
VCpu::domain() const
{
    return vm_.domain();
}

bool
VCpu::confidential() const
{
    return vm_.confidential();
}

// ----------------------------------------------------------------- runner

void
VCpu::enterOn(CoreId core)
{
    CG_ASSERT(!entered_, "vCPU %s entered twice", name_.c_str());
    entered_ = true;
    curCore_ = core;
    if (stopped_)
        return;

    // Cold microarchitectural state: the guest pays to refill whatever
    // other domains evicted from this core since it last ran here,
    // charged as a delay before its next instruction completes.
    hw::Core& hw_core = machine().core(core);
    // Record who is executing so a probe on this core has a correct
    // observer identity (shared modes enter guests without the RMM).
    hw_core.setOccupant(domain());
    stealGuestCpu(
        hw_core.uarch().warmupCost(domain(), vm_.config().footprint));
    hw_core.uarch().run(domain(), vm_.config().footprint);
    // Shared structures fill too: the LLC holds a multiple of the
    // per-core working set, and instructions like RDRAND leave residue
    // in the cross-core staging buffer (the CrossTalk channel).
    machine().shared().llc.touch(domain(), vm_.config().footprint * 4);
    machine().shared().stagingBuffer.touch(domain(), 4);

    // A guest instruction stalled at a trap retires now.
    if (trapResume_.notifyOne())
        stalled_ = false;
    // Deliver interrupts injected while we were exited.
    handlePendingVirqs();
    resumeExecution();
}

void
VCpu::pause()
{
    CG_ASSERT(entered_, "pausing vCPU %s while exited", name_.c_str());
    pauseExecution();
    entered_ = false;
    curCore_ = sim::invalidCore;
}

void
VCpu::setExitReadyHook(std::function<void()> fn)
{
    exitReadyHook_ = std::move(fn);
}

void
VCpu::setAbandonHook(std::function<void()> fn)
{
    abandonHook_ = std::move(fn);
}

ExitInfo
VCpu::takeExit()
{
    CG_ASSERT(!pendingEvents_.empty(), "takeExit on %s with no exit",
              name_.c_str());
    ExitInfo exit = pendingEvents_.front();
    pendingEvents_.pop_front();
    exitsGenerated.inc();
    return exit;
}

Proc<ExitInfo>
VCpu::runUntilExit(CoreId core)
{
    if (stopped_ && pendingEvents_.empty()) {
        ExitInfo off;
        off.reason = ExitReason::Shutdown;
        co_return off;
    }
    enterOn(core);
    while (pendingEvents_.empty())
        co_await exitNotify_.wait();
    pause();
    co_return takeExit();
}

bool
VCpu::injectVirq(hw::IntId vintid)
{
    if (!lrs_.inject(vintid))
        return false;
    if (entered_)
        handlePendingVirqs();
    else
        hostWait_.notifyAll(); // a blocked runner should re-enter
    return true;
}

void
VCpu::forceExit(ExitReason reason)
{
    ExitInfo info;
    info.reason = reason;
    pushEvent(info);
}

void
VCpu::completeMmio(std::uint64_t data)
{
    mmioData_ = data;
}

void
VCpu::completeAttest(const rmm::AttestationToken& token)
{
    attestResult_ = token;
}

Proc<void>
VCpu::waitForEvent()
{
    while (pendingEvents_.empty())
        co_await hostWait_.wait();
}

Proc<void>
VCpu::waitForRunnable()
{
    while (pendingEvents_.empty() && lrs_.pendingIds().empty() &&
           !hasRunnableGuestWork()) {
        co_await hostWait_.wait();
    }
}

void
VCpu::maybeIdle()
{
    // A guest with no runnable work executes its idle loop and ends up
    // in WFI. Detect that a little after the last activity so
    // transient gaps (deferred interrupt handlers, trap retirement)
    // don't produce spurious WFIs.
    if (idleReported_ || stopped_ ||
        idleCheckEvent_ != sim::invalidEventId) {
        return;
    }
    idleCheckEvent_ = machine().sim().queue().scheduleIn(
        2 * sim::usec, [this] { onIdleCheck(); });
}

void
VCpu::onIdleCheck()
{
    idleCheckEvent_ = sim::invalidEventId;
    if (stopped_ || idleReported_ || stalled_ || currentProc_ ||
        !readyQueue_.empty() || !pendingEvents_.empty()) {
        return;
    }
    idleReported_ = true;
    ExitInfo info;
    info.reason = ExitReason::Wfi;
    pushEvent(info);
}

void
VCpu::pushEvent(ExitInfo info)
{
    pendingEvents_.push_back(info);
    if (entered_)
        exitNotify_.notifyAll();
    else
        hostWait_.notifyAll();
    if (exitReadyHook_)
        exitReadyHook_();
}

// ------------------------------------------------------- virtual interrupts

void
VCpu::setVirqHandler(hw::IntId vintid, std::function<void()> fn)
{
    virqHandlers_[vintid] = std::move(fn);
}

void
VCpu::setTickPeriod(Tick period)
{
    tickPeriod_ = period;
    if (period > 0)
        vtimer_->armIn(period);
    else
        vtimer_->disarm();
}

void
VCpu::onVTimerFire()
{
    if (stopped_)
        return;
    // The guest's virtual timer condition is met: the hardware raises
    // it as a physical interrupt that the monitor intercepts.
    ExitInfo info;
    info.reason = ExitReason::TimerIrq;
    pushEvent(info);
}

void
VCpu::handlePendingVirqs()
{
    for (int i = 0; i < hw::ListRegFile::numRegs; ++i) {
        hw::ListReg& lr = lrs_.reg(i);
        if (lr.state == hw::ListReg::State::Pending ||
            lr.state == hw::ListReg::State::PendingActive) {
            const hw::IntId id = lr.vintid;
            lr = hw::ListReg{}; // guest acks and EOIs
            handleVirq(id);
        }
    }
}

void
VCpu::handleVirq(hw::IntId vintid)
{
    virqsHandled.inc();
    idleReported_ = false;
    // The handler's CPU time both delays the interrupted guest code
    // (steal) and gates the handler's own side effects.
    const Tick cost =
        machine().cost(machine().costs().guestIrqHandler);
    stealGuestCpu(cost);
    machine().sim().queue().scheduleIn(cost, [this, vintid] {
        if (stopped_)
            return;
        if (vintid == hw::vtimerPpi) {
            ticksHandled.inc();
            // The tick handler reprograms CNTV_CVAL: a trapped register
            // write (the second exit of the pair in section 4.4).
            if (tickPeriod_ > 0) {
                vtimer_->armIn(tickPeriod_);
                ExitInfo info;
                info.reason = ExitReason::TimerWrite;
                info.data = machine().sim().now() + tickPeriod_;
                pushEvent(info);
            }
        }
        auto it = virqHandlers_.find(vintid);
        if (it != virqHandlers_.end())
            it->second();
        idleNotify_.notifyAll();
    });
}

// -------------------------------------------------------- guest-code API

Process&
VCpu::startGuest(std::string name, Proc<void> body)
{
    Process& p =
        machine().sim().spawnOn(std::move(name), *this, std::move(body),
                                false);
    guestProcs_.push_back(&p);
    procState_[&p] = GuestProcState{};
    idleReported_ = false;
    // First resume happens when the vCPU is entered.
    GuestProcState& st = procState_[&p];
    st.needsResume = true;
    st.ready = true;
    readyQueue_.push_back(&p);
    if (entered_ && !currentProc_ && !stalled_)
        pickNextGuestProc();
    return p;
}

Proc<void>
VCpu::trapAndWait(ExitInfo info)
{
    stalled_ = true;
    pushEvent(info);
    co_await trapResume_.wait();
}

Proc<void>
VCpu::mmioWrite(std::uint64_t addr, std::uint64_t data, int len)
{
    ExitInfo info;
    info.reason = ExitReason::Mmio;
    info.addr = addr;
    info.data = data;
    info.len = len;
    info.isWrite = true;
    co_await trapAndWait(info);
}

Proc<std::uint64_t>
VCpu::mmioRead(std::uint64_t addr, int len)
{
    ExitInfo info;
    info.reason = ExitReason::Mmio;
    info.addr = addr;
    info.len = len;
    info.isWrite = false;
    co_await trapAndWait(info);
    CG_ASSERT(mmioData_.has_value(),
              "MMIO read on %s resumed without a response",
              name_.c_str());
    const std::uint64_t v = *mmioData_;
    mmioData_.reset();
    co_return v;
}

Proc<void>
VCpu::idle()
{
    ExitInfo info;
    info.reason = ExitReason::Wfi;
    pushEvent(info);
    co_await idleNotify_.wait();
}

Proc<void>
VCpu::sendVIpi(int target_vcpu)
{
    ExitInfo info;
    info.reason = ExitReason::SgiWrite;
    info.target = target_vcpu;
    co_await trapAndWait(info);
}

Proc<void>
VCpu::pageFault(std::uint64_t ipa)
{
    ExitInfo info;
    info.reason = ExitReason::PageFault;
    info.addr = ipa;
    co_await trapAndWait(info);
}

Proc<void>
VCpu::hypercall(std::uint64_t code)
{
    ExitInfo info;
    info.reason = ExitReason::Hypercall;
    info.code = code;
    co_await trapAndWait(info);
}

Proc<rmm::AttestationToken>
VCpu::rsiAttest(std::uint64_t challenge)
{
    CG_ASSERT(vm_.confidential(),
              "%s: RSI calls need a confidential VM", name_.c_str());
    ExitInfo info;
    info.reason = ExitReason::Hypercall;
    info.code = rmm::rsiAttestCall;
    info.data = challenge;
    co_await trapAndWait(info);
    CG_ASSERT(attestResult_.has_value(),
              "%s: RSI attest resumed without a token", name_.c_str());
    rmm::AttestationToken t = *attestResult_;
    attestResult_.reset();
    co_return t;
}

Proc<void>
VCpu::shutdown()
{
    stopped_ = true;
    vtimer_->disarm();
    ExitInfo info;
    info.reason = ExitReason::Shutdown;
    pushEvent(info);
    co_return;
}

// ------------------------------------------------------ guest dispatching

VCpu::GuestProcState&
VCpu::stateOf(Process& p)
{
    auto it = procState_.find(&p);
    CG_ASSERT(it != procState_.end(),
              "process '%s' is not a guest of %s", p.name().c_str(),
              name_.c_str());
    return it->second;
}

void
VCpu::stealGuestCpu(Tick t)
{
    pendingSteal_ += t;
}

void
VCpu::compute(Process& p, Tick amount)
{
    GuestProcState& st = stateOf(p);
    CG_ASSERT(currentProc_ == &p,
              "guest compute from a non-current process '%s'",
              p.name().c_str());
    st.wantsCpu = true;
    st.remaining = amount;
    if (entered_)
        scheduleGuestRun();
}

void
VCpu::blocked(Process& p)
{
    GuestProcState& st = stateOf(p);
    st.ready = false;
    if (currentProc_ == &p) {
        if (guestRunEvent_ != sim::invalidEventId) {
            machine().sim().queue().cancel(guestRunEvent_);
            guestRunEvent_ = sim::invalidEventId;
        }
        currentProc_ = nullptr;
        if (entered_ && !stalled_)
            pickNextGuestProc();
        if (!currentProc_ && !stalled_)
            maybeIdle();
    }
}

void
VCpu::wake(Process& p)
{
    idleReported_ = false;
    if (currentProc_ == &p) {
        CG_ASSERT(entered_, "completion wake for %s while exited",
                  name_.c_str());
        p.resumeNow();
        return;
    }
    GuestProcState& st = stateOf(p);
    if (st.ready)
        return; // already queued
    st.ready = true;
    st.needsResume = true;
    readyQueue_.push_back(&p);
    if (entered_ && !currentProc_ && !stalled_) {
        pickNextGuestProc();
    } else if (!entered_) {
        // A task became runnable on a WFI'd vCPU: the guest scheduler
        // would raise a resched IPI; tell a blocked runner to
        // re-enter.
        hostWait_.notifyAll();
    }
}

void
VCpu::detach(Process& p)
{
    auto it = procState_.find(&p);
    if (it == procState_.end())
        return;
    if (currentProc_ == &p) {
        if (guestRunEvent_ != sim::invalidEventId) {
            machine().sim().queue().cancel(guestRunEvent_);
            guestRunEvent_ = sim::invalidEventId;
        }
        currentProc_ = nullptr;
    }
    readyQueue_.erase(
        std::remove(readyQueue_.begin(), readyQueue_.end(), &p),
        readyQueue_.end());
    guestProcs_.erase(
        std::remove(guestProcs_.begin(), guestProcs_.end(), &p),
        guestProcs_.end());
    procState_.erase(it);
    if (entered_ && !currentProc_ && !stalled_)
        pickNextGuestProc();
}

void
VCpu::pickNextGuestProc()
{
    CG_ASSERT(!currentProc_, "pickNext with a current guest process");
    if (readyQueue_.empty())
        return;
    Process* p = readyQueue_.front();
    readyQueue_.pop_front();
    stateOf(*p).ready = false;
    currentProc_ = p;
    scheduleGuestRun();
}

void
VCpu::scheduleGuestRun()
{
    CG_ASSERT(entered_ && currentProc_, "scheduleGuestRun while paused");
    GuestProcState& st = stateOf(*currentProc_);
    if (guestRunEvent_ != sim::invalidEventId) {
        machine().sim().queue().cancel(guestRunEvent_);
        guestRunEvent_ = sim::invalidEventId;
    }
    const Tick steal = pendingSteal_;
    pendingSteal_ = 0;
    const Tick work = st.wantsCpu ? st.remaining : 0;
    chargeStart_ = machine().sim().now() + steal;
    guestRunEvent_ = machine().sim().queue().scheduleIn(
        steal + work, [this] { onGuestRunEvent(); });
}

void
VCpu::onGuestRunEvent()
{
    guestRunEvent_ = sim::invalidEventId;
    CG_ASSERT(currentProc_, "guest run event with no current process");
    // Interrupt handlers stole time mid-run: extend.
    if (pendingSteal_ > 0) {
        const Tick steal = pendingSteal_;
        pendingSteal_ = 0;
        guestRunEvent_ = machine().sim().queue().scheduleIn(
            steal, [this] { onGuestRunEvent(); });
        return;
    }
    Process& p = *currentProc_;
    GuestProcState& st = stateOf(p);
    if (st.wantsCpu) {
        guestCpuTime += st.remaining;
        st.wantsCpu = false;
        st.remaining = 0;
    }
    st.needsResume = false;
    if (p.state() == Process::State::Blocked)
        p.wake(); // routes back into our wake() -> resumeNow
    else if (p.state() == Process::State::Ready)
        p.resumeNow();
    else
        sim::panic("guest run event for '%s' in unexpected state",
                   p.name().c_str());
}

void
VCpu::pauseExecution()
{
    if (guestRunEvent_ != sim::invalidEventId) {
        machine().sim().queue().cancel(guestRunEvent_);
        guestRunEvent_ = sim::invalidEventId;
        if (currentProc_) {
            GuestProcState& st = stateOf(*currentProc_);
            if (st.wantsCpu) {
                const Tick now = machine().sim().now();
                const Tick consumed =
                    now > chargeStart_ ? now - chargeStart_ : 0;
                const Tick used = std::min(consumed, st.remaining);
                st.remaining -= used;
                guestCpuTime += used;
            }
        }
    }
}

void
VCpu::resumeExecution()
{
    if (currentProc_) {
        scheduleGuestRun();
    } else if (!stalled_) {
        pickNextGuestProc();
    }
    if (!currentProc_ && !stalled_)
        maybeIdle();
}

} // namespace cg::guest
