/**
 * @file
 * The guest vCPU model.
 *
 * A VCpu executes guest software — workload coroutines spawned with
 * startGuest() — but only while it is *entered* on a physical core by a
 * runner (the RMM for confidential VMs, KVM directly for normal VMs).
 * The VCpu is both:
 *
 *  - a rmm::GuestContext: runUntilExit()/injectVirq()/forceExit(), the
 *    interface runners drive; and
 *  - a sim::Dispatcher for its guest processes: their Compute time
 *    advances only while entered, pausing across VM exits.
 *
 * Guest-visible events are modelled faithfully enough to reproduce the
 * paper's exit accounting (table 4): each virtual-timer tick costs an
 * interrupt exit plus a trapped timer reprogram (two exits without
 * delegation, zero with); sending a virtual IPI traps on the ICC_SGI1R
 * write; MMIO accesses trap for device emulation.
 */

#ifndef CG_GUEST_VCPU_HH
#define CG_GUEST_VCPU_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "host/kernel.hh"
#include "hw/machine.hh"
#include "hw/timer.hh"
#include "rmm/guest_context.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace cg::guest {

using rmm::ExitInfo;
using rmm::ExitReason;
using sim::CoreId;
using sim::Proc;
using sim::Tick;

class Vm;

class VCpu : public rmm::GuestContext,
             public host::GuestExecutor,
             public sim::Dispatcher
{
  public:
    VCpu(Vm& vm, int index);
    ~VCpu() override;

    Vm& vm() { return vm_; }
    int index() const { return index_; }
    sim::DomainId domain() const;
    const std::string& name() const { return name_; }

    /** @{ rmm::GuestContext — the runner-facing interface. */
    Proc<ExitInfo> runUntilExit(CoreId core) override;
    bool injectVirq(hw::IntId vintid) override;
    void forceExit(ExitReason reason) override;
    void completeMmio(std::uint64_t data) override;
    void completeAttest(const rmm::AttestationToken& token) override;
    bool entered() const override { return entered_; }
    hw::ListRegFile& listRegs() override { return lrs_; }
    /** @} */

    /** @{ host::GuestExecutor — the scheduler-coupled interface. */
    void enterOn(CoreId core) override;
    void pause() override;
    bool exitReady() const override { return !pendingEvents_.empty(); }
    void setExitReadyHook(std::function<void()> fn) override;
    void setAbandonHook(std::function<void()> fn) override;
    sim::DomainId executorDomain() const override { return domain(); }
    bool confidential() const override;
    /** @} */

    /** Pop the oldest pending exit (requires exitReady()). */
    ExitInfo takeExit();

    /** Core this vCPU is currently entered on (invalidCore if not). */
    CoreId currentCore() const { return curCore_; }

    /**
     * Block the runner until the vCPU has a pending exit-worthy event
     * (used by runners after a WFI exit, instead of spinning).
     */
    Proc<void> waitForEvent();

    /** True if an exit-worthy event is already queued. */
    bool hasPendingEvent() const { return !pendingEvents_.empty(); }

    /** A guest process is runnable (re-entering would make progress). */
    bool
    hasRunnableGuestWork() const
    {
        return currentProc_ != nullptr || !readyQueue_.empty();
    }

    /**
     * Block the runner until the vCPU is worth re-entering: a pending
     * exit-worthy event or an undelivered virtual interrupt (KVM's
     * WFI block).
     */
    Proc<void> waitForRunnable();

    /**
     * Notified whenever this vCPU becomes worth re-entering; external
     * producers (e.g. KVM's injection queue) may poke it too.
     */
    sim::Notify& runnerNotify() { return hostWait_; }

    /** @{ Guest-code API (use from processes started via startGuest). */
    /** Spawn a guest process whose CPU time this vCPU dispatches. */
    sim::Process& startGuest(std::string name, Proc<void> body);

    /** Access emulated MMIO: traps to the host for device emulation. */
    Proc<void> mmioWrite(std::uint64_t addr, std::uint64_t data, int len);
    Proc<std::uint64_t> mmioRead(std::uint64_t addr, int len);

    /** WFI: wait until a virtual interrupt is delivered. */
    Proc<void> idle();

    /** Send a virtual IPI to another vCPU of this VM (ICC_SGI1R). */
    Proc<void> sendVIpi(int target_vcpu);

    /** Take a stage-2 fault at @p ipa (first touch of new memory). */
    Proc<void> pageFault(std::uint64_t ipa);

    /** Issue a hypercall (a null exit to the host; benchmarks use it
     * to measure the bare run-call path of table 2). */
    Proc<void> hypercall(std::uint64_t code);

    /**
     * RSI_ATTESTATION_TOKEN: request an attestation token from the
     * monitor (confidential VMs only). Serviced inside the monitor;
     * the host never observes the call.
     */
    Proc<rmm::AttestationToken> rsiAttest(std::uint64_t challenge);

    /** PSCI SYSTEM_OFF: the vCPU stops after this exit. */
    Proc<void> shutdown();
    /** @} */

    /**
     * Register the guest driver handler for a virtual interrupt.
     * Handler logic runs when the interrupt is handled by the guest;
     * its CPU cost is charged to the guest automatically.
     */
    void setVirqHandler(hw::IntId vintid, std::function<void()> fn);

    /**
     * Configure the guest kernel periodic tick (0 disables). Each tick
     * fires the virtual timer, and the handler reprograms it through a
     * trapped register write.
     */
    void setTickPeriod(Tick period);
    Tick tickPeriod() const { return tickPeriod_; }

    /** @{ sim::Dispatcher for guest processes. */
    void compute(sim::Process& p, Tick amount) override;
    void blocked(sim::Process& p) override;
    void wake(sim::Process& p) override;
    void detach(sim::Process& p) override;
    /** @} */

    /** @{ Statistics. */
    sim::Counter ticksHandled;
    sim::Counter virqsHandled;
    sim::Counter exitsGenerated;
    /** Accumulated guest CPU time actually executed. */
    Tick guestCpuTime = 0;
    /** @} */

  private:
    struct GuestProcState {
        bool ready = false;
        Tick remaining = 0;
        bool wantsCpu = false;
        bool needsResume = false;
    };

    hw::Machine& machine();
    void pushEvent(ExitInfo info);
    void maybeIdle();
    void onIdleCheck();
    void onVTimerFire();
    void handlePendingVirqs();
    void handleVirq(hw::IntId vintid);
    void stealGuestCpu(Tick t);
    void pauseExecution();
    void resumeExecution();
    void scheduleGuestRun();
    void onGuestRunEvent();
    GuestProcState& stateOf(sim::Process& p);
    void pickNextGuestProc();
    Proc<void> trapAndWait(ExitInfo info);

    Vm& vm_;
    int index_;
    std::string name_;

    // Entry state.
    bool entered_ = false;
    CoreId curCore_ = sim::invalidCore;
    bool stopped_ = false;
    /** A guest instruction is stalled at a trap: nothing else runs. */
    bool stalled_ = false;

    // Exit-worthy events and runner signalling.
    std::deque<ExitInfo> pendingEvents_;
    sim::Notify exitNotify_;  ///< wakes an active runUntilExit
    sim::Notify hostWait_;    ///< wakes waitForEvent()
    std::function<void()> exitReadyHook_;
    std::function<void()> abandonHook_;
    sim::Notify trapResume_;  ///< releases a guest proc stopped at a trap
    std::optional<std::uint64_t> mmioData_;
    std::optional<rmm::AttestationToken> attestResult_;

    // Virtual interrupt state.
    hw::ListRegFile lrs_;
    std::map<hw::IntId, std::function<void()>> virqHandlers_;
    sim::Notify idleNotify_; ///< wakes a guest proc waiting in idle()

    // Virtual timer / guest tick.
    std::unique_ptr<hw::Timer> vtimer_;
    Tick tickPeriod_ = 0;

    /** The guest idle loop executed WFI and nothing woke it since. */
    bool idleReported_ = false;
    sim::EventId idleCheckEvent_ = sim::invalidEventId;

    // Guest process dispatching.
    std::vector<sim::Process*> guestProcs_;
    std::map<sim::Process*, GuestProcState> procState_;
    sim::Process* currentProc_ = nullptr;
    std::deque<sim::Process*> readyQueue_;
    sim::EventId guestRunEvent_ = sim::invalidEventId;
    Tick chargeStart_ = 0;
    Tick pendingSteal_ = 0;
};

} // namespace cg::guest

#endif // CG_GUEST_VCPU_HH
