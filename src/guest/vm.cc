#include "guest/vm.hh"

#include "sim/logging.hh"

namespace cg::guest {

Vm::Vm(hw::Machine& machine, VmConfig cfg, sim::DomainId domain)
    : machine_(machine), cfg_(cfg), domain_(domain)
{
    if (cfg_.numVcpus <= 0)
        sim::fatal("VM '%s' needs at least one vCPU", cfg_.name.c_str());
    for (int i = 0; i < cfg_.numVcpus; ++i)
        vcpus_.push_back(std::make_unique<VCpu>(*this, i));
}

void
Vm::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "guest." + cfg_.name);
    for (int i = 0; i < numVcpus(); ++i) {
        VCpu& v = vcpu(i);
        const std::string leaf = "vcpu" + std::to_string(i);
        statGroup_.add(leaf + ".ticksHandled", v.ticksHandled);
        statGroup_.add(leaf + ".virqsHandled", v.virqsHandled);
        statGroup_.add(leaf + ".exitsGenerated", v.exitsGenerated);
        statGroup_.addValue(leaf + ".guestCpuTime", v.guestCpuTime);
    }
}

} // namespace cg::guest
