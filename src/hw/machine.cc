#include "hw/machine.hh"

#include "check/checker.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace cg::hw {

const char*
worldName(World w)
{
    switch (w) {
      case World::Normal:
        return "normal";
      case World::Realm:
        return "realm";
      case World::Root:
        return "root";
    }
    return "?";
}

Core::Core(CoreId id, int numa_node, const Costs& costs)
    : id_(id), numaNode_(numa_node), uarch_(costs)
{}

void
Core::setOccupant(DomainId d)
{
    occupant_ = d;
    if (checker_)
        checker_->onOccupant(id_, d);
}

Machine::Machine(sim::Simulation& sim, MachineConfig cfg)
    : sim_(sim), cfg_(cfg)
{
    if (cfg_.numCores <= 0)
        sim::fatal("machine needs at least one core (got %d)",
                   cfg_.numCores);
    if (cfg_.coresPerNumaNode <= 0)
        sim::fatal("coresPerNumaNode must be positive");
    cores_.reserve(static_cast<size_t>(cfg_.numCores));
    for (int i = 0; i < cfg_.numCores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            i, i / cfg_.coresPerNumaNode, cfg_.costs));
    }
    gic_ = std::make_unique<Gic>(sim_, cfg_.costs, cfg_.numCores);
    shared_ = std::make_unique<SharedUarch>(cfg_.costs);
}

Core&
Machine::core(CoreId id)
{
    CG_ASSERT(id >= 0 && id < numCores(), "bad core id %d", id);
    return *cores_[static_cast<size_t>(id)];
}

const Core&
Machine::core(CoreId id) const
{
    CG_ASSERT(id >= 0 && id < numCores(), "bad core id %d", id);
    return *cores_[static_cast<size_t>(id)];
}

sim::Tick
Machine::cost(sim::Tick nominal)
{
    return sim_.rng().jittered(nominal, cfg_.costs.jitter);
}

sim::Tick
Machine::switchWorld(CoreId core_id, World to)
{
    Core& c = core(core_id);
    if (c.world() == to)
        return 0;
    // Crossing between normal and realm world transits EL3 and applies
    // the firmware's transient-execution mitigations.
    sim::Tick t = cost(cfg_.costs.worldSwitchHalf);
    const bool boundary =
        (c.world() == World::Normal && to == World::Realm) ||
        (c.world() == World::Realm && to == World::Normal);
    if (boundary) {
        t += cost(cfg_.costs.mitigationFlush);
        c.uarch().mitigationFlush();
    }
    // The checker audits the realm -> normal direction: after the
    // firmware flush, nothing confidential may remain on the core.
    if (checker_ && boundary && to == World::Normal)
        checker_->onNormalWorldReturn(core_id);
    c.setWorld(to);
    return t;
}

void
Machine::attachChecker(check::IsolationChecker* checker)
{
    checker_ = checker;
    for (auto& core : cores_) {
        core->checker_ = checker;
        for (TaggedStructure* s : core->uarch().all()) {
            if (!checker) {
                s->bindChecker(nullptr, -1);
                continue;
            }
            const std::string name =
                "core" + std::to_string(core->id()) + "." + s->name();
            s->bindChecker(checker,
                           checker->registerStructure(name, core->id()));
        }
    }
    for (TaggedStructure* s : {&shared_->llc, &shared_->stagingBuffer}) {
        if (!checker) {
            s->bindChecker(nullptr, -1);
            continue;
        }
        s->bindChecker(checker, checker->registerStructure(
                                    s->name(), sim::invalidCore));
    }
}

} // namespace cg::hw
