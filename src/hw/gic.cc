#include "hw/gic.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace cg::hw {

std::optional<int>
ListRegFile::findFree() const
{
    for (int i = 0; i < numRegs; ++i) {
        if (!regs_[i].valid())
            return i;
    }
    return std::nullopt;
}

std::optional<int>
ListRegFile::findVintid(IntId vintid) const
{
    for (int i = 0; i < numRegs; ++i) {
        if (regs_[i].valid() && regs_[i].vintid == vintid)
            return i;
    }
    return std::nullopt;
}

bool
ListRegFile::inject(IntId vintid)
{
    if (auto idx = findVintid(vintid)) {
        ListReg& lr = regs_[*idx];
        lr.state = lr.state == ListReg::State::Active
                       ? ListReg::State::PendingActive
                       : ListReg::State::Pending;
        return true;
    }
    if (auto idx = findFree()) {
        regs_[*idx] = ListReg{ListReg::State::Pending, vintid};
        return true;
    }
    return false;
}

int
ListRegFile::validCount() const
{
    int n = 0;
    for (const auto& r : regs_)
        n += r.valid() ? 1 : 0;
    return n;
}

std::vector<IntId>
ListRegFile::pendingIds() const
{
    std::vector<IntId> out;
    for (const auto& r : regs_) {
        if (r.state == ListReg::State::Pending ||
            r.state == ListReg::State::PendingActive) {
            out.push_back(r.vintid);
        }
    }
    return out;
}

void
ListRegFile::clearAll()
{
    regs_.fill(ListReg{});
}

Gic::Gic(sim::Simulation& sim, const Costs& costs, int num_cores)
    : sim_(sim), costs_(costs), percore_(static_cast<size_t>(num_cores))
{
    CG_ASSERT(num_cores > 0, "GIC needs at least one core");
}

void
Gic::setSink(CoreId core, Sink sink)
{
    PerCore& pc = percore_.at(core);
    pc.sink = std::move(sink);
    while (pc.sink && !pc.pending.empty()) {
        IntId id = pc.pending.front();
        pc.pending.pop_front();
        pc.sink(id);
    }
}

void
Gic::clearSink(CoreId core)
{
    percore_.at(core).sink = nullptr;
}

void
Gic::registerStats(sim::StatRegistry& reg)
{
    statGroup_.attach(reg, "hw.gic");
    statGroup_.add("delivered", delivered_);
}

void
Gic::deliver(CoreId core, IntId id)
{
    PerCore& pc = percore_.at(core);
    delivered_.inc();
    if (isSgi(id)) {
        sim_.tracer().instant("ipi-deliver", sim::Tracer::coresPid,
                              core, "ipi",
                              static_cast<std::uint64_t>(id));
    }
    if (pc.sink)
        pc.sink(id);
    else
        pc.pending.push_back(id);
}

void
Gic::sendSgi(CoreId target, IntId sgi)
{
    CG_ASSERT(isSgi(sgi), "sendSgi with non-SGI id %d", sgi);
    Tick extra = 0;
    if (sim_.faults().armed()) {
        if (sim_.faults().query(sim::FaultSite::IpiDrop)) {
            // The SGI vanishes in the interconnect: no delivery event
            // is ever scheduled. Recovery is the receiver's problem
            // (doorbell watchdog, sync-RPC re-poke, guest timer tick).
            return;
        }
        if (auto d = sim_.faults().query(sim::FaultSite::IpiDelay))
            extra = *d != 0 ? *d : 64 * costs_.sgiDeliver;
    }
    const Tick d = extra +
        sim_.rng().jittered(costs_.sgiDeliver, costs_.jitter);
    sim_.queue().scheduleIn(d, [this, target, sgi] {
        deliver(target, sgi);
    });
}

void
Gic::raisePpi(CoreId target, IntId ppi)
{
    CG_ASSERT(isPpi(ppi), "raisePpi with non-PPI id %d", ppi);
    // Private peripherals are local to the core: negligible wire delay.
    sim_.queue().scheduleIn(0, [this, target, ppi] {
        deliver(target, ppi);
    });
}

void
Gic::raiseSpi(IntId spi)
{
    CG_ASSERT(isSpi(spi), "raiseSpi with non-SPI id %d", spi);
    const CoreId target = spiRoute(spi);
    const Tick d = sim_.rng().jittered(costs_.spiDeliver, costs_.jitter);
    sim_.queue().scheduleIn(d, [this, target, spi] {
        deliver(target, spi);
    });
}

void
Gic::routeSpi(IntId spi, CoreId target)
{
    CG_ASSERT(isSpi(spi), "routeSpi with non-SPI id %d", spi);
    CG_ASSERT(target >= 0 && target < numCores(), "bad SPI route");
    auto it = std::lower_bound(
        spiRoutes_.begin(), spiRoutes_.end(), spi,
        [](const SpiRoute& r, IntId id) { return r.spi < id; });
    if (it != spiRoutes_.end() && it->spi == spi)
        it->target = target;
    else
        spiRoutes_.insert(it, SpiRoute{spi, target});
}

CoreId
Gic::spiRoute(IntId spi) const
{
    auto it = std::lower_bound(
        spiRoutes_.begin(), spiRoutes_.end(), spi,
        [](const SpiRoute& r, IntId id) { return r.spi < id; });
    return (it == spiRoutes_.end() || it->spi != spi) ? 0 : it->target;
}

void
Gic::migrateSpisAway(CoreId core, CoreId fallback)
{
    for (SpiRoute& r : spiRoutes_) {
        if (r.target == core)
            r.target = fallback;
    }
}

} // namespace cg::hw
