/**
 * @file
 * The calibrated hardware cost model.
 *
 * All latency constants the simulator charges live here, in one place, so
 * experiments can tweak them and EXPERIMENTS.md can cite them. Defaults
 * are calibrated against the paper's AmpereOne (Armv8.6, 3 GHz) numbers:
 *
 *  - Table 2: sync cross-core RPC 257.7 ns, async 2757.6 ns, EL3 null
 *    call > 12.8 us (dominated by transient-execution mitigations).
 *  - Table 3: virtual IPI 43.9 us (exit path) / 2.22 us (delegated) /
 *    3.85 us (shared-core KVM).
 *
 * Where the paper gives no number we use public figures for comparable
 * Arm server parts (cache-line transfer ~100-150 ns cross-socket-free,
 * hardware SGI delivery ~1 us, Linux context switch ~1-2 us).
 */

#ifndef CG_HW_COSTS_HH
#define CG_HW_COSTS_HH

#include "sim/types.hh"

namespace cg::hw {

using sim::Tick;
using sim::nsec;
using sim::usec;
using sim::msec;

struct Costs {
    /** @{ Cross-core shared memory communication. */
    /** One cache-line transfer between cores (producer to consumer). */
    Tick cacheLineTransfer = 90 * nsec;
    /** Polling loop reaction once the line arrives (spin iteration). */
    Tick pollReaction = 20 * nsec;
    /** @} */

    /** @{ Interrupts. */
    /** Hardware SGI (IPI) delivery: write to GIC until target traps. */
    Tick sgiDeliver = 750 * nsec;
    /** SPI (wired/MSI device interrupt) delivery to the target core. */
    Tick spiDeliver = 600 * nsec;
    /** Host kernel IRQ entry/dispatch to handler. */
    Tick irqEntry = 350 * nsec;
    /** Guest kernel IRQ handler (ack, EOI, minimal work). */
    Tick guestIrqHandler = 700 * nsec;
    /** @} */

    /** @{ Privilege transitions. */
    /** Null SMC to EL3 firmware and back, without mitigations. */
    Tick smcRoundTrip = 1500 * nsec;
    /**
     * Mitigation cost applied on each security-boundary transition
     * (branch-predictor invalidate, store-buffer drain, ...). Charged
     * twice on an EL3 round trip; calibrated so a null EL3 call costs
     * > 12.8 us as measured in the paper (table 2).
     */
    Tick mitigationFlush = 5700 * nsec;
    /** World switch Normal<->Realm: EL2 context save or restore. */
    Tick worldSwitchHalf = 800 * nsec;
    /** RMM bookkeeping on REC enter or exit (validate, copy exit info). */
    Tick rmmEntryExit = 260 * nsec;
    /** Host kernel thread context switch (switch_to + runqueue). */
    Tick hostContextSwitch = 800 * nsec;
    /** KVM exit dispatch in the host kernel (decode, handler). */
    Tick kvmExitDispatch = 900 * nsec;
    /** Syscall-level block/unblock of a host thread (futex-like). */
    Tick threadBlockUnblock = 350 * nsec;
    /**
     * Userspace VMM (kvmtool) turnaround per run call: ioctl return,
     * exit decode and handling in the VMM, and the next ioctl. The
     * paper's prototype routes every core-gapped run call through the
     * userspace VMM; this constant makes its measured ~26 us
     * run-to-run latency (section 5.2) come out of the model.
     */
    Tick vmmRunLoop = 20 * usec;
    /** @} */

    /** @{ RMM internals. */
    /** A short RMI call handler body (e.g. install one page mapping). */
    Tick rmiShortCall = 45 * nsec;
    /** Delegated virtual-timer emulation in the RMM (trap + emulate). */
    Tick rmmTimerEmulate = 250 * nsec;
    /** Delegated virtual-IPI emulation in the RMM. */
    Tick rmmIpiEmulate = 220 * nsec;
    /** List-register synchronisation on exit path. */
    Tick rmmLrSync = 110 * nsec;
    /** @} */

    /** @{ Guest and VMM I/O stacks. */
    /** Guest kernel network stack, per packet (TCP/IP + driver). */
    Tick guestNetStack = 1600 * nsec;
    /** Guest kernel block layer, per request. */
    Tick guestBlkStack = 1900 * nsec;
    /** Guest-side copy bandwidth (bytes/second). */
    double guestCopyBw = 18e9;
    /** VMM emulation copy bandwidth (bytes/second). */
    double vmmCopyBw = 11e9;
    /** VMM per-descriptor processing (virtqueue pop/push). */
    Tick virtioDescCost = 700 * nsec;
    /** SR-IOV doorbell write (posted, uncached). */
    Tick sriovDoorbell = 250 * nsec;
    /** Remote client machine network stack, per packet. */
    Tick remoteStack = 2500 * nsec;
    /** @} */

    /** @{ CPU hotplug. */
    /** Host-side hotplug offline path (migrate tasks, retarget IRQs). */
    Tick hotplugOffline = 4 * msec;
    /** Host-side hotplug online path. */
    Tick hotplugOnline = 3 * msec;
    /** @} */

    /** @{ Realm migration. */
    /**
     * RMM copy + measurement of one 4 KiB granule during realm
     * migration (validate source state, copy, re-tag destination).
     * ~10 GB/s effective including the RMM's per-page bookkeeping.
     */
    Tick granuleCopy = 400 * nsec;
    /** @} */

    /** @{ Microarchitectural refill costs (per entry, amortised). */
    Tick l1RefillPerEntry = 4 * nsec;
    Tick l2RefillPerEntry = 9 * nsec;
    Tick tlbRefillPerEntry = 14 * nsec;
    Tick btbRefillPerEntry = 1 * nsec;
    /** @} */

    /** Relative jitter applied to charged costs (deterministic RNG). */
    double jitter = 0.03;
};

} // namespace cg::hw

#endif // CG_HW_COSTS_HH
