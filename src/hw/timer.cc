#include "hw/timer.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace cg::hw {

Timer::Timer(sim::Simulation& sim, FireFn on_fire)
    : sim_(sim), onFire_(std::move(on_fire))
{
    CG_ASSERT(onFire_, "timer needs a fire callback");
}

Timer::~Timer()
{
    disarm();
}

void
Timer::arm(Tick at)
{
    disarm();
    armed_ = true;
    deadline_ = at;
    // A compare value in the past fires immediately (next event slot),
    // matching the generic timer's condition CNT >= CVAL.
    const Tick when = std::max(at, sim_.now());
    event_ = sim_.queue().schedule(when, [this] { fire(); });
}

void
Timer::armIn(Tick delay)
{
    arm(sim_.now() + delay);
}

void
Timer::disarm()
{
    if (event_ != sim::invalidEventId) {
        sim_.queue().cancel(event_);
        event_ = sim::invalidEventId;
    }
    armed_ = false;
}

void
Timer::fire()
{
    event_ = sim::invalidEventId;
    armed_ = false;
    ++fires_;
    onFire_();
}

} // namespace cg::hw
