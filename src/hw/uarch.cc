#include "hw/uarch.hh"

#include <algorithm>

#include "check/checker.hh"
#include "sim/logging.hh"

namespace cg::hw {

TaggedStructure::TaggedStructure(std::string name, std::size_t capacity,
                                 Tick refill_per_entry)
    : name_(std::move(name)),
      capacity_(capacity),
      refillPerEntry_(refill_per_entry)
{
    CG_ASSERT(capacity_ > 0, "structure '%s' has zero capacity",
              name_.c_str());
}

std::size_t
TaggedStructure::shareIndex(DomainId d) const
{
    const DomainId* first = doms_.begin();
    return static_cast<std::size_t>(
        std::lower_bound(first, doms_.end(), d) - first);
}

void
TaggedStructure::touch(DomainId d, std::size_t entries)
{
    CG_ASSERT(d != sim::invalidDomain,
              "touch on '%s' with invalid domain", name_.c_str());
    const std::size_t target = std::min(entries, capacity_);
    std::size_t i = shareIndex(d);
    if (i == doms_.size() || doms_[i] != d) {
        doms_.insert(doms_.begin() + i, d);
        counts_.insert(counts_.begin() + i, 0);
    }
    if (target <= counts_[i]) {
        // Working set already resident; still an access for the
        // checker's last-touch bookkeeping.
        if (checker_)
            checker_->onTouch(checkId_, d, counts_[i]);
        return;
    }
    const std::size_t grow = target - counts_[i];
    std::size_t others = used_ - counts_[i];
    counts_[i] = target;
    used_ += grow;
    if (checker_)
        checker_->onTouch(checkId_, d, target);
    if (used_ <= capacity_)
        return;
    // Evict the overflow proportionally from other domains. Each
    // victim's share is computed against the original overflow so the
    // eviction is fair regardless of iteration order. The loops sweep
    // the dense counts_ array; doms_ is consulted only to skip the
    // toucher and to name fully-evicted victims to the checker.
    const std::size_t total_overflow = used_ - capacity_;
    std::size_t overflow = total_overflow;
    CG_ASSERT(others >= overflow, "eviction accounting broken in '%s'",
              name_.c_str());
    const std::size_t n = counts_.size();
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t cnt = counts_[j];
        if (j == i || cnt == 0 || overflow == 0)
            continue;
        // Round to nearest so we track the fair share closely.
        std::size_t take =
            std::min(cnt, (cnt * total_overflow + others / 2) / others);
        take = std::min(take, overflow);
        counts_[j] = cnt - take;
        used_ -= take;
        overflow -= take;
        if (counts_[j] == 0 && checker_)
            checker_->onEvict(checkId_, doms_[j]);
    }
    // Rounding may leave a few entries; sweep them up.
    for (std::size_t j = 0; j < n && overflow != 0; ++j) {
        const std::size_t cnt = counts_[j];
        if (j == i || cnt == 0)
            continue;
        const std::size_t take = std::min(cnt, overflow);
        counts_[j] = cnt - take;
        used_ -= take;
        overflow -= take;
        if (counts_[j] == 0 && checker_)
            checker_->onEvict(checkId_, doms_[j]);
    }
    CG_ASSERT(used_ <= capacity_, "'%s' overfull after eviction",
              name_.c_str());
}

std::size_t
TaggedStructure::residentCount(DomainId d) const
{
    const std::size_t i = shareIndex(d);
    return (i == doms_.size() || doms_[i] != d) ? 0 : counts_[i];
}

std::size_t
TaggedStructure::entriesOf(DomainId d) const
{
    const std::size_t count = residentCount(d);
    if (checker_)
        checker_->onProbe(checkId_, d, count);
    return count;
}

std::size_t
TaggedStructure::foreignEntries(DomainId prober) const
{
    // used_ is the sum of all counts by invariant, so the foreign
    // total is one subtraction instead of a sweep.
    const std::size_t total = used_ - residentCount(prober);
    if (checker_)
        checker_->onProbeForeign(checkId_, prober, total);
    return total;
}

void
TaggedStructure::flushAll()
{
    doms_.clear();
    counts_.clear();
    used_ = 0;
    if (checker_)
        checker_->onFlushAll(checkId_);
}

void
TaggedStructure::flushDomain(DomainId d)
{
    CG_ASSERT(d != sim::invalidDomain,
              "flushDomain on '%s' with invalid domain", name_.c_str());
    const std::size_t i = shareIndex(d);
    if (i == doms_.size() || doms_[i] != d) {
        if (checker_)
            checker_->onFlushDomain(checkId_, d);
        return;
    }
    used_ -= counts_[i];
    doms_.erase(doms_.begin() + i);
    counts_.erase(counts_.begin() + i);
    if (checker_)
        checker_->onFlushDomain(checkId_, d);
}

Tick
TaggedStructure::warmupCost(DomainId d, std::size_t footprint) const
{
    const std::size_t want = std::min(footprint, capacity_);
    const std::size_t have = residentCount(d);
    if (have >= want)
        return 0;
    return static_cast<Tick>(want - have) * refillPerEntry_;
}

namespace {

// Typical Arm server core (Neoverse-class) structure sizes, in entries.
constexpr std::size_t l1iEntries = 64 * 1024 / 64;   // 64 KiB / line
constexpr std::size_t l1dEntries = 64 * 1024 / 64;   // 64 KiB / line
constexpr std::size_t l2Entries = 1024 * 1024 / 64;  // 1 MiB / line
constexpr std::size_t tlbEntries = 1280;             // unified L2 TLB
constexpr std::size_t btbEntries = 8192;
constexpr std::size_t sbEntries = 56;                // store buffer slots
constexpr std::size_t llcEntries = 32 * 1024 * 1024 / 64; // 32 MiB SLC
constexpr std::size_t stagingEntries = 16;

} // namespace

CoreUarch::CoreUarch(const Costs& costs)
    : l1i("l1i", l1iEntries, costs.l1RefillPerEntry),
      l1d("l1d", l1dEntries, costs.l1RefillPerEntry),
      l2("l2", l2Entries, costs.l2RefillPerEntry),
      tlb("tlb", tlbEntries, costs.tlbRefillPerEntry),
      btb("btb", btbEntries, costs.btbRefillPerEntry),
      storeBuffer("store-buffer", sbEntries, costs.l1RefillPerEntry)
{}

std::vector<TaggedStructure*>
CoreUarch::all()
{
    return {&l1i, &l1d, &l2, &tlb, &btb, &storeBuffer};
}

std::vector<const TaggedStructure*>
CoreUarch::all() const
{
    return {&l1i, &l1d, &l2, &tlb, &btb, &storeBuffer};
}

void
CoreUarch::mitigationFlush()
{
    btb.flushAll();
    storeBuffer.flushAll();
}

void
CoreUarch::run(DomainId d, std::size_t footprint)
{
    // Instruction-side structures see a fraction of the data footprint;
    // the TLB sees pages (footprint is expressed in cache lines).
    l1d.touch(d, footprint);
    l1i.touch(d, std::max<std::size_t>(1, footprint / 4));
    l2.touch(d, footprint);
    tlb.touch(d, std::max<std::size_t>(1, footprint / 64));
    btb.touch(d, std::max<std::size_t>(1, footprint / 2));
    storeBuffer.touch(d, sbEntries);
}

Tick
CoreUarch::warmupCost(DomainId d, std::size_t footprint) const
{
    Tick total = 0;
    total += l1d.warmupCost(d, footprint);
    total += l1i.warmupCost(d, std::max<std::size_t>(1, footprint / 4));
    total += l2.warmupCost(d, footprint) / 4; // L2 misses overlap more
    total += tlb.warmupCost(d, std::max<std::size_t>(1, footprint / 64));
    total += btb.warmupCost(d, std::max<std::size_t>(1, footprint / 2));
    return total;
}

SharedUarch::SharedUarch(const Costs& costs)
    : llc("llc", llcEntries, costs.l2RefillPerEntry),
      stagingBuffer("staging-buffer", stagingEntries,
                    costs.l1RefillPerEntry)
{}

} // namespace cg::hw
