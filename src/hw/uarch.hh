/**
 * @file
 * Microarchitectural state with security-domain tagging.
 *
 * Each structure (cache, TLB, branch predictor, buffers) tracks how many
 * of its entries are held by each security domain. This serves two
 * purposes:
 *
 *  1. Performance: when a domain resumes on a core whose structures were
 *     polluted by another domain, it pays a warm-up cost proportional to
 *     the entries it lost (the locality effect core gapping exploits).
 *
 *  2. Security: a prober can count entries tagged with foreign domains.
 *     Observing a victim's entries without an intervening flush models a
 *     same-core side channel / transient-execution leak. The attack suite
 *     (src/attacks) asserts that core gapping reduces the observable
 *     foreign state of confidential VMs to zero on per-core structures,
 *     while shared structures (LLC, CrossTalk staging buffer) retain
 *     residue, matching the paper's threat model (section 2.4).
 */

#ifndef CG_HW_UARCH_HH
#define CG_HW_UARCH_HH

#include <cstddef>
#include <string>
#include <vector>

#include "hw/costs.hh"
#include "sim/small_vec.hh"
#include "sim/types.hh"

namespace cg::check {
class IsolationChecker;
}

namespace cg::hw {

using sim::DomainId;
using sim::Tick;

/** One tagged microarchitectural structure (cache / TLB / predictor). */
class TaggedStructure
{
  public:
    TaggedStructure(std::string name, std::size_t capacity,
                    Tick refill_per_entry);

    const std::string& name() const { return name_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t used() const { return used_; }

    /**
     * Report every touch/probe/flush on this structure to @p checker
     * as structure @p sid (see check::IsolationChecker). Unbound
     * structures pay one branch per operation.
     */
    void bindChecker(check::IsolationChecker* checker, int sid)
    {
        checker_ = checker;
        checkId_ = sid;
    }

    /**
     * Domain @p d references a working set of @p entries entries.
     * Grows d's share toward min(entries, capacity); on overflow, other
     * domains' entries are evicted proportionally (LRU approximation).
     */
    void touch(DomainId d, std::size_t entries);

    /** Entries currently held by @p d. */
    std::size_t entriesOf(DomainId d) const;

    /**
     * entriesOf() for trusted control-plane audits (scrub
     * verification): reads the census without raising a checker probe
     * event, since the RMM inspecting its own scrub work is not an
     * attacker observation.
     */
    std::size_t auditEntriesOf(DomainId d) const
    {
        return residentCount(d);
    }

    /** Entries held by domains other than @p prober (leakable state). */
    std::size_t foreignEntries(DomainId prober) const;

    /** Entries held by @p victim specifically, as seen by a prober. */
    std::size_t victimEntries(DomainId victim) const
    {
        return entriesOf(victim);
    }

    /** Invalidate everything (mitigation flush / reset). */
    void flushAll();

    /** Invalidate only @p d's entries (targeted scrub). */
    void flushDomain(DomainId d);

    /**
     * Warm-up cost for @p d resuming with working set @p footprint:
     * (missing entries) x (refill cost per entry).
     */
    Tick warmupCost(DomainId d, std::size_t footprint) const;

  private:
    /**
     * The share census is struct-of-arrays: domain ids and counts in
     * parallel inline vectors, both ordered by ascending domain id.
     * touch() runs on every scheduling quantum for six structures per
     * core, and its proportional-eviction loops read every count while
     * consulting a domain id only to skip the toucher (and to name
     * eviction victims to the checker); splitting the arrays keeps the
     * counts the loops actually sweep densely packed instead of
     * interleaved with ids and padding. The ascending-id order
     * preserves the previous sorted-AoS (and original std::map)
     * iteration order, keeping eviction results bit-identical.
     *
     * Invariant: doms_.size() == counts_.size(), and used_ is exactly
     * the sum of counts_.
     */
    using DomVec = sim::SmallVec<DomainId, 8>;
    using CountVec = sim::SmallVec<std::size_t, 8>;

    /** Index of @p d in doms_, or the insertion point (lower bound). */
    std::size_t shareIndex(DomainId d) const;

    /** entriesOf() without the checker probe event (internal reads —
     * warm-up accounting — are not attacker observations). */
    std::size_t residentCount(DomainId d) const;

    std::string name_;
    std::size_t capacity_;
    Tick refillPerEntry_;
    std::size_t used_ = 0;
    DomVec doms_;     ///< ascending domain id
    CountVec counts_; ///< counts_[i] belongs to doms_[i]
    check::IsolationChecker* checker_ = nullptr;
    int checkId_ = -1;
};

/** Per-core private microarchitectural state. */
class CoreUarch
{
  public:
    explicit CoreUarch(const Costs& costs);

    TaggedStructure l1i;
    TaggedStructure l1d;
    TaggedStructure l2;
    TaggedStructure tlb;
    TaggedStructure btb;         ///< branch predictor / BTB / BHB
    TaggedStructure storeBuffer; ///< store/fill buffers (MDS class)

    /** All per-core structures, for iteration. */
    std::vector<TaggedStructure*> all();
    std::vector<const TaggedStructure*> all() const;

    /**
     * The subset of state that firmware mitigations actually flush on a
     * security-boundary transition (predictor + buffers). Caches and
     * TLBs are NOT flushed, modelling the residual leakage that
     * motivates core gapping.
     */
    void mitigationFlush();

    /** Touch all structures for a domain executing with a working set. */
    void run(DomainId d, std::size_t footprint);

    /** Total warm-up cost for @p d across all structures. */
    Tick warmupCost(DomainId d, std::size_t footprint) const;
};

/** Structures shared between cores (out of core gapping's scope). */
class SharedUarch
{
  public:
    explicit SharedUarch(const Costs& costs);

    TaggedStructure llc;
    /**
     * The CPUID/RDRAND staging buffer exploited by CrossTalk, shared by
     * all cores: the one disclosed cross-core transient-execution leak
     * (fig. 3). Core gapping does not protect it; the attack suite
     * verifies this residual channel remains, as the paper concedes.
     */
    TaggedStructure stagingBuffer;
};

} // namespace cg::hw

#endif // CG_HW_UARCH_HH
