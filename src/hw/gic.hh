/**
 * @file
 * A GICv3-like interrupt controller model.
 *
 * Supports the three Arm interrupt classes:
 *  - SGIs (0-15): inter-processor interrupts, sent core-to-core;
 *  - PPIs (16-31): per-core private peripherals (generic timers);
 *  - SPIs (32+): shared peripherals (devices), routed by an affinity table.
 *
 * Delivery is asynchronous with modelled wire latency. Each core has at
 * most one "sink" — the software that currently owns the core (host
 * kernel or security monitor) — which receives delivered interrupt IDs.
 * Interrupts delivered while a core has no sink (e.g. mid-handover)
 * stay pending and flush to the next sink installed.
 *
 * Each core also has a file of 16 virtual-interrupt list registers
 * (ich_lr<n>_el2), the mechanism KVM and the RMM use to inject
 * interrupts into guests; section 4.4 / fig. 5 of the paper is about
 * who writes these.
 */

#ifndef CG_HW_GIC_HH
#define CG_HW_GIC_HH

#include <array>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "hw/costs.hh"
#include "sim/small_vec.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace cg::sim {
class Simulation;
}

namespace cg::hw {

using sim::CoreId;

/** Interrupt identifier (INTID). */
using IntId = int;

constexpr IntId sgiBase = 0;
constexpr IntId ppiBase = 16;
constexpr IntId spiBase = 32;

/** Arm architectural PPI assignments we model. */
constexpr IntId vtimerPpi = 27; ///< EL1 virtual timer
constexpr IntId ptimerPpi = 30; ///< EL1 physical timer

/** Is @p id a software-generated (inter-processor) interrupt? */
constexpr bool isSgi(IntId id) { return id >= sgiBase && id < ppiBase; }
constexpr bool isPpi(IntId id) { return id >= ppiBase && id < spiBase; }
constexpr bool isSpi(IntId id) { return id >= spiBase; }

/** One virtual-interrupt list register (ich_lr<n>_el2). */
struct ListReg {
    enum class State { Invalid, Pending, Active, PendingActive };

    State state = State::Invalid;
    IntId vintid = 0;

    bool valid() const { return state != State::Invalid; }
};

/** The per-core file of 16 list registers. */
class ListRegFile
{
  public:
    static constexpr int numRegs = 16;

    ListReg& reg(int i) { return regs_.at(i); }
    const ListReg& reg(int i) const { return regs_.at(i); }

    /** Index of a free (invalid) register, or nullopt if full. */
    std::optional<int> findFree() const;

    /** Index of the register holding @p vintid, or nullopt. */
    std::optional<int> findVintid(IntId vintid) const;

    /** Mark @p vintid pending, reusing its register if present. */
    bool inject(IntId vintid);

    /** Number of valid registers. */
    int validCount() const;

    /** Pending vintids, in register order. */
    std::vector<IntId> pendingIds() const;

    void clearAll();

  private:
    std::array<ListReg, numRegs> regs_{};
};

/** The interrupt controller. */
class Gic
{
  public:
    /** Callback owning software registers to receive interrupts. */
    using Sink = std::function<void(IntId)>;

    Gic(sim::Simulation& sim, const Costs& costs, int num_cores);

    int numCores() const { return static_cast<int>(percore_.size()); }

    /**
     * Install the interrupt sink for @p core (the software that owns
     * it). Pending interrupts are flushed to the new sink immediately.
     */
    void setSink(CoreId core, Sink sink);

    /** Remove the sink; subsequent deliveries stay pending. */
    void clearSink(CoreId core);

    /** Send an SGI (IPI) to @p target; delivered after wire latency. */
    void sendSgi(CoreId target, IntId sgi);

    /** Raise a per-core private interrupt (timers). */
    void raisePpi(CoreId target, IntId ppi);

    /** Raise a shared peripheral interrupt; routed by affinity. */
    void raiseSpi(IntId spi);

    /** Route @p spi to @p target (irq affinity). */
    void routeSpi(IntId spi, CoreId target);

    /** Current route of @p spi (default: core 0). */
    CoreId spiRoute(IntId spi) const;

    /** Re-target all SPIs away from @p core (hotplug offline path). */
    void migrateSpisAway(CoreId core, CoreId fallback);

    /** List registers of @p core. */
    ListRegFile& lrs(CoreId core) { return percore_.at(core).lrs; }
    const ListRegFile& lrs(CoreId core) const
    {
        return percore_.at(core).lrs;
    }

    /** Total interrupts delivered (stat). */
    std::uint64_t delivered() const { return delivered_.value(); }

    /** Register the GIC's counters under "hw.gic." in @p reg. */
    void registerStats(sim::StatRegistry& reg);

  private:
    struct PerCore {
        Sink sink;
        std::deque<IntId> pending;
        ListRegFile lrs;
    };

    void deliver(CoreId core, IntId id);

    /** One SPI's affinity; kept sorted by spi id. */
    struct SpiRoute {
        IntId spi;
        CoreId target;
    };

    sim::Simulation& sim_;
    const Costs& costs_;
    std::vector<PerCore> percore_;
    /**
     * SPI affinity table. A handful of routed SPIs per machine, looked
     * up on every SPI raise: a sorted inline vector (the same idiom as
     * the uarch share census) beats a node-based map. Ascending-spi
     * order matches the old std::map iteration order, so
     * migrateSpisAway rewrites routes in the identical sequence.
     */
    sim::SmallVec<SpiRoute, 8> spiRoutes_;
    sim::Counter delivered_;
    sim::StatGroup statGroup_;
};

} // namespace cg::hw

#endif // CG_HW_GIC_HH
