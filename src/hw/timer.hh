/**
 * @file
 * A one-shot programmable timer, modelling the Arm generic timer's
 * compare-value interface (CNT*_CVAL). The counter is the global
 * simulated clock, so a timer keeps counting while its owner (e.g. a
 * descheduled vCPU) is not running — as real virtual timers do.
 */

#ifndef CG_HW_TIMER_HH
#define CG_HW_TIMER_HH

#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cg::sim {
class Simulation;
}

namespace cg::hw {

using sim::Tick;

class Timer
{
  public:
    using FireFn = std::function<void()>;

    Timer(sim::Simulation& sim, FireFn on_fire);
    ~Timer();

    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /** Program the compare value: fire at absolute time @p at. */
    void arm(Tick at);

    /** Program relative to now. */
    void armIn(Tick delay);

    /** Disable the timer (CNT*_CTL.ENABLE = 0). */
    void disarm();

    bool armed() const { return armed_; }
    Tick deadline() const { return deadline_; }

    /** Number of times this timer has fired (stat). */
    std::uint64_t fireCount() const { return fires_; }

  private:
    void fire();

    sim::Simulation& sim_;
    FireFn onFire_;
    bool armed_ = false;
    Tick deadline_ = 0;
    sim::EventId event_ = sim::invalidEventId;
    std::uint64_t fires_ = 0;
};

} // namespace cg::hw

#endif // CG_HW_TIMER_HH
