/**
 * @file
 * The physical machine: cores with worlds and microarchitectural state,
 * the interrupt controller, shared structures, and the cost model.
 *
 * Modelled after the paper's evaluation platform: an AmpereOne-class
 * Arm server (one hardware thread per core, so "core" == "hardware
 * thread" throughout; see footnote 1 in the paper) with two NUMA-ish
 * core clusters.
 */

#ifndef CG_HW_MACHINE_HH
#define CG_HW_MACHINE_HH

#include <memory>
#include <vector>

#include "hw/costs.hh"
#include "hw/gic.hh"
#include "hw/uarch.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cg::sim {
class Simulation;
}

namespace cg::hw {

using sim::CoreId;
using sim::DomainId;

/** Arm security state a core currently executes in. */
enum class World {
    Normal, ///< host hypervisor / VMM / normal VMs
    Realm,  ///< the RMM and confidential VMs
    Root,   ///< EL3 trusted firmware
};

const char* worldName(World w);

/** One physical CPU core. */
class Core
{
  public:
    Core(CoreId id, int numa_node, const Costs& costs);

    CoreId id() const { return id_; }
    int numaNode() const { return numaNode_; }

    World world() const { return world_; }
    void setWorld(World w) { world_ = w; }

    /** The security domain whose code is (or last was) executing. */
    DomainId occupant() const { return occupant_; }
    void setOccupant(DomainId d);

    CoreUarch& uarch() { return uarch_; }
    const CoreUarch& uarch() const { return uarch_; }

  private:
    friend class Machine; ///< binds checker_ in attachChecker()

    CoreId id_;
    int numaNode_;
    World world_ = World::Normal;
    DomainId occupant_ = sim::hostDomain;
    CoreUarch uarch_;
    check::IsolationChecker* checker_ = nullptr;
};

struct MachineConfig {
    int numCores = 16;
    int coresPerNumaNode = 64; // AmpereOne: one big monolithic socket
    Costs costs{};
};

/** The machine ties cores, GIC, and shared structures together. */
class Machine
{
  public:
    Machine(sim::Simulation& sim, MachineConfig cfg);

    sim::Simulation& sim() { return sim_; }
    int numCores() const { return static_cast<int>(cores_.size()); }
    Core& core(CoreId id);
    const Core& core(CoreId id) const;
    Gic& gic() { return *gic_; }
    SharedUarch& shared() { return *shared_; }
    const Costs& costs() const { return cfg_.costs; }
    const MachineConfig& config() const { return cfg_; }

    /** Jitter a nominal cost through the simulation RNG. */
    sim::Tick cost(sim::Tick nominal);

    /**
     * World transition on a core, charging the mitigation flush the
     * firmware applies when crossing a security boundary.
     * @return the simulated cost the caller must charge.
     */
    sim::Tick switchWorld(CoreId core, World to);

    /**
     * Attach an isolation checker: registers every per-core and shared
     * structure with it and routes occupant/world transitions through
     * it. Pass nullptr to detach. Observation only — simulated results
     * are bit-identical with or without a checker attached.
     */
    void attachChecker(check::IsolationChecker* checker);

    /** The attached checker, or nullptr. */
    check::IsolationChecker* checker() const { return checker_; }

  private:
    sim::Simulation& sim_;
    MachineConfig cfg_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<Gic> gic_;
    std::unique_ptr<SharedUarch> shared_;
    check::IsolationChecker* checker_ = nullptr;
};

} // namespace cg::hw

#endif // CG_HW_MACHINE_HH
